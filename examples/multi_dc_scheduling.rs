//! The paper's headline evaluation (§V-C): full inter-DC scheduling.
//!
//! Runs three experiments against the 4-city scenario:
//!  1. the de-location benefit (one overloaded home DC vs freedom),
//!  2. Figure 6 — full scheduling through a flash crowd,
//!  3. Figure 7 / Table III — Static-Global vs Dynamic.
//!
//! ```sh
//! cargo run --release --example multi_dc_scheduling            # quick
//! cargo run --release --example multi_dc_scheduling -- --full  # 24 h arms
//! ```

use pamdc::manager::experiments::{deloc, fig6, fig7_table3};

fn main() {
    let full = std::env::args().any(|a| a == "--full");

    // ---- De-location benefit ----
    let dl_cfg = if full {
        deloc::DelocConfig::default()
    } else {
        deloc::DelocConfig::quick(6)
    };
    println!(
        "De-location experiment: {} VMs pinned to DC {} vs free to move ({} h)...",
        dl_cfg.vms, dl_cfg.home_dc, dl_cfg.hours
    );
    let dl = deloc::run(&dl_cfg);
    println!("\n{}", deloc::render(&dl, dl_cfg.vms));

    // ---- Figure 6: flash crowd ----
    let f6_cfg = if full {
        fig6::Fig6Config::default()
    } else {
        fig6::Fig6Config::quick(7)
    };
    println!(
        "Figure 6: hierarchical scheduling with a {}x flash crowd at minutes 70-90 ({} h)...",
        f6_cfg.flash_multiplier, f6_cfg.hours
    );
    let f6 = fig6::run(&f6_cfg, None);
    println!("\n{}", fig6::render(&f6));

    // ---- Figure 7 / Table III: static vs dynamic ----
    let t3_cfg = if full {
        fig7_table3::Table3Config::default()
    } else {
        fig7_table3::Table3Config::quick(8)
    };
    println!(
        "Table III: Static-Global vs Dynamic for {} VMs ({} h)...",
        t3_cfg.vms, t3_cfg.hours
    );
    let t3 = fig7_table3::run(&t3_cfg, None);
    println!("\n{}", fig7_table3::render(&t3));

    println!(
        "Dynamic saves {:.1}% energy vs static while holding SLA ({:.4} -> {:.4}).",
        100.0 * t3.energy_saving_frac(),
        t3.static_global.mean_sla,
        t3.dynamic.mean_sla
    );
}
