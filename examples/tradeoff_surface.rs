//! The paper's Figure 8 (SLA vs energy vs load) plus the §IV-C solver
//! scaling study, both exercising the parallel sweep harness.
//!
//! ```sh
//! cargo run --release --example tradeoff_surface            # quick
//! cargo run --release --example tradeoff_surface -- --full  # denser sweep
//! ```

use pamdc::manager::experiments::{fig8, solver_scaling};

fn main() {
    let full = std::env::args().any(|a| a == "--full");

    // ---- Figure 8 surface (parallel sweep) ----
    let f8_cfg = if full {
        fig8::Fig8Config {
            load_scales: vec![0.25, 0.5, 0.75, 1.0, 1.5, 2.0, 2.5],
            pms_per_dc: vec![1, 2, 3],
            hours: 8,
            vms: 5,
            seed: 9,
        }
    } else {
        fig8::Fig8Config::default()
    };
    let n_points = f8_cfg.load_scales.len() * f8_cfg.pms_per_dc.len();
    println!(
        "Sweeping {} (load x energy-budget) points in parallel, {} h each...",
        n_points, f8_cfg.hours
    );
    let surface = fig8::run(&f8_cfg);
    println!("\n{}", fig8::render(&surface));

    // For a fixed load, more energy (hosts) must buy equal-or-better SLA.
    for &ls in &f8_cfg.load_scales {
        let mut row: Vec<_> = surface
            .points
            .iter()
            .filter(|p| p.load_scale == ls)
            .collect();
        row.sort_by_key(|p| p.pms_per_dc);
        if row.len() >= 2 {
            println!(
                "load x{:.2}: SLA {:.3} @ {:.0} W  ->  SLA {:.3} @ {:.0} W",
                ls,
                row.first().unwrap().mean_sla,
                row.first().unwrap().avg_watts,
                row.last().unwrap().mean_sla,
                row.last().unwrap().avg_watts,
            );
        }
    }

    // ---- Solver scaling ----
    let sc_cfg = if full {
        solver_scaling::ScalingConfig::default()
    } else {
        solver_scaling::ScalingConfig {
            sizes: vec![(2, 4), (4, 8), (6, 12)],
            exact_vm_cap: 6,
            ..solver_scaling::ScalingConfig::default()
        }
    };
    println!("\nSolver scaling study (the paper's 'MILP needs minutes' observation)...");
    let points = solver_scaling::run(&sc_cfg);
    println!("\n{}", solver_scaling::render(&points));
}
