//! On-line learning under concept drift: a fleet-wide "software update"
//! changes every VM's memory footprint mid-run. The frozen Table-I model
//! never recovers; a sliding-window learner does; a Page–Hinkley-guarded
//! learner recovers fastest — the paper's future-work item 4, measured.
//!
//! ```sh
//! cargo run --release --example online_learning
//! ```

use pamdc::manager::experiments::online_drift::{render, run, OnlineDriftConfig};

fn main() {
    let cfg = OnlineDriftConfig::default();
    println!(
        "{} VMs, {} h; at hour {} every VM's base memory grows 1.8x and its",
        cfg.vms,
        cfg.hours,
        cfg.hours / 2
    );
    println!("per-request memory 2.5x. Three MEM predictors ride the same prequential");
    println!("stream (predict first, then learn):\n");

    let result = run(&cfg);
    println!("{}", render(&result));

    println!("\nReading the table:");
    println!(" * pre        — all three agree: the world is learnable (paper Table I).");
    println!(" * transition — the update lands; everyone's error spikes.");
    println!(" * recovered  — frozen stays broken; the online learners re-converge,");
    println!("                the drift-aware one without old-regime pollution.");
}
