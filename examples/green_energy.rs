//! Follow-the-sun: give every datacenter on-site solar and let the
//! profit function chase daylight around the planet — the paper's §II
//! claim that *"a 'follow the sun/wind' policy could also be introduced
//! easily into the energy cost computation"*, made runnable.
//!
//! ```sh
//! cargo run --release --example green_energy
//! ```

use pamdc::manager::experiments::green::{render, run, GreenConfig};
use pamdc::prelude::*;

fn main() {
    let cfg = GreenConfig::default();
    println!(
        "Two identical hierarchical schedulers over {} VMs, {} DCs x {} hosts, {} h.",
        cfg.vms, 4, cfg.pms_per_dc, cfg.hours
    );
    println!(
        "DCs {:?} have {:.0} W of solar per host (Brisbane and Barcelona by default —",
        cfg.solar_dcs, cfg.solar_per_pm_w
    );
    println!("nine timezones apart, so one is usually lit). One arm is quoted the live");
    println!("marginal price (green headroom ~= free), the other only posted tariffs.\n");

    let result = run(&cfg);
    println!("{}", render(&result));

    // Show the sun being followed: hourly green coverage of the aware arm.
    let series = &result.sun_aware.series;
    if let (Some(green), Some(watts)) = (series.get("green_watts"), series.get("watts")) {
        println!("Sun-aware arm, green coverage by simulated hour (first day):");
        for hour in 0..24u64 {
            let from = SimTime::from_hours(hour);
            let to = SimTime::from_hours(hour + 1);
            let g = green.mean_in_window(from, to);
            let w = watts.mean_in_window(from, to).max(1e-9);
            let bar = "#".repeat((g / w * 40.0).round() as usize);
            println!("  {hour:>2}h |{bar:<40}| {:>5.1}%", 100.0 * g / w);
        }
    }
}
