//! Failure injection: crash the busiest host mid-run and watch the
//! reactive scheduler evacuate its VMs while the static baseline leaves
//! them dark until the repair. Also demonstrates monitor dropout and
//! bandwidth-shared migrations — the operational realities around the
//! paper's clean testbed.
//!
//! ```sh
//! cargo run --release --example fault_tolerance
//! ```

use pamdc::prelude::*;
use pamdc_sched::oracle::TrueOracle;

fn run(label: &str, policy: Box<dyn PlacementPolicy>) -> RunOutcome {
    let scenario = ScenarioBuilder::paper_intra_dc()
        .vms(4)
        .seed(5)
        // Host 0 dies 45 minutes in; repair takes 5 hours.
        .fault(0, SimTime::from_mins(45), SimDuration::from_hours(5))
        .build();
    let (outcome, _) = SimulationRunner::new(scenario, policy).run(SimDuration::from_hours(4));
    println!(
        "{label:<20} mean SLA {:.4}   migrations {:<3} dropped requests {:>8.0}",
        outcome.mean_sla, outcome.migrations, outcome.dropped_requests
    );
    outcome
}

fn main() {
    println!("Intra-DC fleet, 4 VMs on 4 Atom hosts. Host 0 crashes at minute 45.\n");
    let reactive = run(
        "reactive best-fit",
        Box::new(BestFitPolicy::new(TrueOracle::new())),
    );
    let frozen = run(
        "static placement",
        Box::new(StaticPolicy(TrueOracle::new())),
    );

    // The SLA dip and recovery, minute by minute around the crash.
    println!("\nMean SLA around the crash (reactive arm):");
    let sla = reactive.series.get("sla").expect("series kept");
    for (t, v) in sla.iter() {
        let m = t.as_mins();
        if (40..=70).contains(&m) && m % 5 == 0 {
            let bar = "#".repeat((v * 40.0).round() as usize);
            println!("  min {m:>3} |{bar:<40}| {v:.3}");
        }
    }
    println!(
        "\nReactive SLA {:.4} vs static {:.4}: evacuation wins {:.1} SLA points.",
        reactive.mean_sla,
        frozen.mean_sla,
        100.0 * (reactive.mean_sla - frozen.mean_sla)
    );
}
