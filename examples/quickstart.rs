//! Quickstart: build the paper's 4-city cloud, run it for a few hours
//! under the hierarchical power-aware scheduler, and print what happened.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use pamdc::prelude::*;
use pamdc_sched::oracle::TrueOracle;

fn main() {
    // The paper's §V-C world: Brisbane, Bangalore, Barcelona and Boston,
    // one Atom host each, five customer web-services with worldwide
    // clients following their local time zones.
    let scenario = ScenarioBuilder::paper_multi_dc().vms(5).seed(7).build();
    println!(
        "Scenario '{}': {} DCs, {} hosts, {} VMs",
        scenario.name,
        scenario.cluster.dc_count(),
        scenario.cluster.pm_count(),
        scenario.cluster.vm_count()
    );

    // The paper's contribution: the two-layer hierarchical scheduler.
    // (`TrueOracle` = ground-truth beliefs; see `intra_dc_ml` for the
    // ML-trained variant.)
    let policy = Box::new(HierarchicalPolicy::new(TrueOracle::new()));
    let (outcome, _) = SimulationRunner::new(scenario, policy).run(SimDuration::from_hours(6));

    println!("\nAfter {} simulated:", outcome.duration);
    println!("  mean SLA        : {:.4}", outcome.mean_sla);
    println!(
        "  avg power       : {:.1} W (facility, incl. cooling)",
        outcome.avg_watts
    );
    println!("  energy          : {:.1} Wh", outcome.total_wh);
    println!("  migrations      : {}", outcome.migrations);
    println!("  revenue         : {:.4} EUR", outcome.profit.revenue_eur);
    println!("  energy cost     : {:.4} EUR", outcome.profit.energy_eur);
    println!(
        "  net profit      : {:.4} EUR ({:.4} EUR/h)",
        outcome.profit.profit_eur(),
        outcome.eur_per_hour()
    );
    println!("  avg hosts on    : {:.2} / 4", outcome.avg_active_pms);

    // Every run records plot-ready series.
    let sla = outcome.series.get("sla").expect("sla series");
    let (t_last, v_last) = sla.last().expect("non-empty run");
    println!(
        "\nRecorded {} SLA samples; last at {}: {:.3}",
        sla.len(),
        t_last,
        v_last
    );
    println!(
        "Series available: {}",
        outcome.series.names().collect::<Vec<_>>().join(", ")
    );
}
