//! The paper's Figure 5 sanity check: one VM, clients everywhere, load
//! peaking at local noon in each region — watch the VM chase the sun
//! through Brisbane, Bangalore, Barcelona and Boston.
//!
//! ```sh
//! cargo run --release --example follow_the_load
//! ```

use pamdc::manager::experiments::fig5;

fn main() {
    let cfg = fig5::Fig5Config { hours: 48, seed: 5 };
    println!(
        "Simulating {} h of follow-the-load scheduling...",
        cfg.hours
    );
    let result = fig5::run(&cfg);
    println!("\n{}", fig5::render(&result));

    println!(
        "The VM visited {} of 4 DCs over {} simulated hours (paper: the VM \
         \"follows the main source load to reduce the average latency\").",
        result.dcs_visited, 48
    );

    // Emit the raw placement series as CSV for plotting.
    if let Some(trace) = result.outcome.series.get("vm0_dc") {
        println!("\nminutes,dc_index");
        for (t, dc) in trace.resample(pamdc::simcore::time::SimDuration::from_mins(30)) {
            println!("{},{}", t.as_mins(), dc);
        }
    }
}
