//! The scenario engine as a library: parse a spec, tweak it, run it,
//! and round-trip a demand trace — everything `pamdc` does on the
//! command line, programmatically.
//!
//! ```sh
//! cargo run --release --example scenario_specs
//! ```

use pamdc_scenario::prelude::*;
use pamdc_workload::trace::{DemandTrace, TraceSource};
use std::path::Path;

fn main() {
    // 1. The registry: every paper experiment as data.
    println!("built-in scenarios:");
    for b in builtins() {
        println!("  {:12} {}", b.name, b.title);
    }

    // 2. Specs are plain text. Parse one, inspect it, emit it back.
    let spec = ScenarioSpec::parse(
        r#"
name = "example"
seed = 5

[topology]
preset = "intra-dc"

[workload]
preset = "intra-dc"
vms = 3

[policy]
kind = "bestfit"

[run]
hours = 2

[[faults]]
pm = 0
at_min = 30
repair_after_min = 240
"#,
    )
    .expect("valid spec");
    assert_eq!(
        ScenarioSpec::parse(&spec.emit()).unwrap(),
        spec,
        "emit/parse round-trips"
    );

    // 3. Run it (the generic path: build world, build policy, simulate).
    let report = run_spec(&spec, Path::new("."), false).expect("run");
    println!("\n{}", report.text);

    // 4. Sweeps are spec edits: same scenario, three load levels.
    let variants: Vec<SpecReport> = [0.5, 1.0, 1.5]
        .iter()
        .map(|k| {
            let mut v = spec
                .with_param("workload.load_scale", &k.to_string())
                .unwrap();
            v.name = format!("example[load={k}]");
            run_spec(&v, Path::new("."), false).expect("run")
        })
        .collect();
    println!("{}", reports_csv(&variants));

    // 5. Record the spec's demand to a trace and replay it verbatim:
    //    the replayed world sees bit-identical demand.
    let scenario = build_scenario(&spec, Path::new(".")).expect("build");
    let trace = DemandTrace::record(
        &scenario.workload,
        pamdc_simcore::time::SimDuration::from_hours(2),
        pamdc_simcore::time::SimDuration::from_mins(1),
    );
    println!(
        "recorded {} ticks x {} services; csv is {} bytes",
        trace.tick_count(),
        trace.service_count(),
        trace.to_csv().len()
    );
    let replay = TraceSource::new(trace);
    let replayed = pamdc_core::scenario::ScenarioBuilder::paper_intra_dc()
        .vms(3)
        .seed(5)
        .demand(replay)
        .build();
    let t = pamdc_simcore::time::SimTime::from_mins(45);
    assert_eq!(
        replayed.workload.sample(0, t),
        scenario.workload.sample(0, t)
    );
    println!("replayed demand matches the generator sample-for-sample.");
}
