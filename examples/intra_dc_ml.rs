//! The paper's §V-B pipeline end to end: learn the Table-I models from
//! monitored exploration runs, print the learning table, then fight the
//! Figure-4 battle — BF vs BF-OB vs BF-ML (vs the BF-True upper bound).
//!
//! ```sh
//! cargo run --release --example intra_dc_ml            # quick (~30 s)
//! cargo run --release --example intra_dc_ml -- --full  # paper scale
//! ```

use pamdc::manager::experiments::{fig4, table1};

fn main() {
    let full = std::env::args().any(|a| a == "--full");

    // ---- Table I: train and validate the seven predictors ----
    let t1_cfg = if full {
        table1::Table1Config::default()
    } else {
        table1::Table1Config::quick(2013)
    };
    println!(
        "Collecting monitored samples ({} load scales x {} h, {} VMs)...",
        t1_cfg.scales.len(),
        t1_cfg.hours_per_scale,
        t1_cfg.vms
    );
    let training = table1::run(&t1_cfg);
    println!("\n{}", table1::render(&training));
    println!("{}", table1::render_comparison(&training));
    println!(
        "(collected {} VM-ticks, {} PM-ticks)\n",
        training.sample_counts.0, training.sample_counts.1
    );

    // ---- Figure 4: the intra-DC comparatives ----
    let f4_cfg = if full {
        fig4::Fig4Config::default()
    } else {
        fig4::Fig4Config::quick(4)
    };
    println!(
        "Running Figure 4 arms ({} h x {} VMs, round every 10 min)...",
        f4_cfg.hours, f4_cfg.vms
    );
    let result = fig4::run(&f4_cfg, &training);
    println!("\n{}", fig4::render(&result));

    // The paper's qualitative claim, checked live:
    let bf = &result.outcomes[0];
    let ml = &result.outcomes[2];
    if ml.mean_sla >= bf.mean_sla {
        println!(
            "BF-ML holds SLA at {:.4} vs plain BF {:.4} (paper: ML deconsolidates to protect QoS)",
            ml.mean_sla, bf.mean_sla
        );
    } else {
        println!(
            "note: BF-ML {:.4} vs BF {:.4} — shapes vary at short horizons; try --full",
            ml.mean_sla, bf.mean_sla
        );
    }
}
