//! Price adaptation: Boston's tariff quadruples mid-run. The scheduler
//! that is quoted live prices evacuates on its own; the one configured
//! with posted prices keeps paying — the result the paper mentions but
//! does not report (§V-B: ML-augmented versions "automatically adapt to
//! changes in … power price", ad-hoc ones need a human).
//!
//! ```sh
//! cargo run --release --example price_shock
//! ```

use pamdc::manager::experiments::price_adaptation::{render, run, PriceAdaptationConfig};

fn main() {
    let cfg = PriceAdaptationConfig::default();
    println!(
        "Fleet of {} VMs starts consolidated in Boston (cheapest posted tariff).",
        cfg.vms
    );
    println!(
        "At hour {} Boston's price spikes x{:.0}; run lasts {} h.\n",
        cfg.hours / 2,
        cfg.spike_factor,
        cfg.hours
    );

    let result = run(&cfg);
    println!("{}", render(&result));

    let saved = result.posted.outcome.profit.energy_eur - result.adaptive.outcome.profit.energy_eur;
    println!(
        "\nAdaptive arm saved {:.4} EUR of electricity ({:.1}% of the posted arm's bill)",
        saved,
        100.0 * saved / result.posted.outcome.profit.energy_eur.max(1e-12)
    );
}
