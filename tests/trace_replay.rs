//! End-to-end trace record → replay determinism: a replayed run must
//! reproduce the recorded run's demand series and scheduler decisions
//! bit-for-bit (satellite acceptance of the scenario-engine PR).

use pamdc_core::policy::{BestFitPolicy, HierarchicalPolicy, PlacementPolicy};
use pamdc_core::scenario::ScenarioBuilder;
use pamdc_core::simulation::{RunOutcome, SimulationRunner};
use pamdc_sched::oracle::TrueOracle;
use pamdc_simcore::time::SimDuration;
use pamdc_workload::source::DemandSource;
use pamdc_workload::trace::{DemandTrace, TraceSource};

fn run(scenario: pamdc_core::scenario::Scenario, hierarchical: bool) -> RunOutcome {
    let policy: Box<dyn PlacementPolicy> = if hierarchical {
        Box::new(HierarchicalPolicy::new(TrueOracle::new()))
    } else {
        Box::new(BestFitPolicy::new(TrueOracle::new()))
    };
    SimulationRunner::new(scenario, policy)
        .run(SimDuration::from_hours(3))
        .0
}

/// Demand series and scheduler decisions must match bit-for-bit.
fn assert_identical_runs(a: &RunOutcome, b: &RunOutcome) {
    let (rps_a, rps_b) = (a.series.get("rps").unwrap(), b.series.get("rps").unwrap());
    assert_eq!(rps_a.len(), rps_b.len(), "same demand sample count");
    for ((ta, va), (tb, vb)) in rps_a.iter().zip(rps_b.iter()) {
        assert_eq!(ta, tb);
        assert_eq!(va.to_bits(), vb.to_bits(), "demand at {ta}");
    }
    assert_eq!(a.migrations, b.migrations, "same migration count");
    for vm in 0.. {
        let key = format!("vm{vm}_dc");
        match (a.series.get(&key), b.series.get(&key)) {
            (Some(pa), Some(pb)) => {
                let (da, db): (Vec<_>, Vec<_>) = (pa.iter().collect(), pb.iter().collect());
                assert_eq!(da, db, "identical placement trace for vm{vm}");
            }
            (None, None) => break,
            other => panic!("placement series mismatch for vm{vm}: {other:?}"),
        }
    }
    assert_eq!(a.mean_sla.to_bits(), b.mean_sla.to_bits());
    assert_eq!(a.total_wh.to_bits(), b.total_wh.to_bits());
    assert_eq!(
        a.profit.profit_eur().to_bits(),
        b.profit.profit_eur().to_bits()
    );
}

#[test]
fn replayed_run_reproduces_synthetic_run() {
    let synthetic = ScenarioBuilder::paper_multi_dc().vms(5).seed(21).build();
    // Record the demand the synthetic run will see (3 h at the 1-minute
    // simulation tick), then build the identical world driven by the
    // trace instead of the generator.
    let trace = DemandTrace::record(
        &synthetic.workload,
        SimDuration::from_hours(3),
        SimDuration::from_mins(1),
    );
    let replayed = ScenarioBuilder::paper_multi_dc()
        .vms(5)
        .seed(21)
        .demand(TraceSource::new(trace))
        .build();

    let a = run(synthetic, true);
    let b = run(replayed, true);
    assert_identical_runs(&a, &b);
}

#[test]
fn replay_survives_the_csv_wire_format() {
    let synthetic = ScenarioBuilder::paper_intra_dc().vms(4).seed(33).build();
    let trace = DemandTrace::record(
        &synthetic.workload,
        SimDuration::from_hours(3),
        SimDuration::from_mins(1),
    );
    // Through the wire: emit CSV, reparse, replay.
    let parsed = DemandTrace::parse_csv(&trace.to_csv()).expect("parse");
    assert_eq!(trace, parsed);
    let replayed = ScenarioBuilder::paper_intra_dc()
        .vms(4)
        .seed(33)
        .demand(TraceSource::new(parsed))
        .build();
    let a = run(synthetic, false);
    let b = run(replayed, false);
    assert_identical_runs(&a, &b);
}

#[test]
fn transformed_replay_differs_predictably() {
    let base = ScenarioBuilder::paper_multi_dc().vms(3).seed(9).build();
    let trace = DemandTrace::record(
        &base.workload,
        SimDuration::from_hours(3),
        SimDuration::from_mins(1),
    );
    let doubled = TraceSource::new(trace.clone()).with_rate_scale(2.0);
    // Offered load doubles sample-for-sample.
    for m in [0u64, 45, 119] {
        let t = pamdc_simcore::time::SimTime::from_mins(m);
        for s in 0..3 {
            let raw: f64 = TraceSource::new(trace.clone())
                .sample(s, t)
                .iter()
                .map(|f| f.rps)
                .sum();
            let scaled: f64 = doubled.sample(s, t).iter().map(|f| f.rps).sum();
            assert_eq!(scaled.to_bits(), (raw * 2.0).to_bits());
        }
    }
    // And a stretched replay serves the early-trace demand later.
    let stretched = TraceSource::new(trace.clone()).with_time_stretch(3.0);
    assert_eq!(
        stretched.sample(0, pamdc_simcore::time::SimTime::from_mins(90)),
        TraceSource::new(trace).sample(0, pamdc_simcore::time::SimTime::from_mins(30)),
    );
}
