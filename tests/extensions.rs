//! Integration tests for the future-work extensions, driven through the
//! public facade: green energy, dynamic tariffs, priced networks,
//! failure injection and monitor dropout composing with the paper's
//! schedulers in one world.

use pamdc::manager::energy::EnergyEnvironment;
use pamdc::prelude::*;
use pamdc_sched::oracle::TrueOracle;

/// A world exercising every extension at once: solar everywhere, a spot
/// tariff in Barcelona, a priced network, one host crash and lossy
/// monitors — the run must stay deterministic and account consistently.
fn kitchen_sink(seed: u64) -> RunOutcome {
    let mut scenario = ScenarioBuilder::paper_multi_dc()
        .vms(5)
        .pms_per_dc(2)
        .seed(seed)
        .fault(2, SimTime::from_hours(3), SimDuration::from_hours(2))
        .build();
    scenario.energy = EnergyEnvironment::paper_default(&scenario.cluster)
        .with_solar_everywhere(&scenario.cluster, 100.0, 0.6, 2, seed)
        .with_tariff(2, Tariff::spot(0.1513, 0.1, 0.2, 2, seed));
    scenario.cluster.net.eur_per_gb_interdc = 0.02;
    scenario.monitor.dropout_prob = 0.05;

    let policy = Box::new(HierarchicalPolicy::new(TrueOracle::new()));
    SimulationRunner::new(scenario, policy)
        .run(SimDuration::from_hours(8))
        .0
}

#[test]
fn kitchen_sink_runs_and_accounts_consistently() {
    let o = kitchen_sink(13);
    // QoS sane despite the crash.
    assert!(o.mean_sla > 0.5 && o.mean_sla <= 1.0, "sla {}", o.mean_sla);
    // Energy ledger closes: green + brown == total metered energy.
    assert!(
        (o.energy.total_wh() - o.total_wh).abs() < 1e-6 * o.total_wh.max(1.0),
        "ledger {} vs meter {}",
        o.energy.total_wh(),
        o.total_wh
    );
    // Solar actually served some of it.
    assert!(o.energy.green_fraction() > 0.0);
    assert!(o.energy.green_fraction() < 1.0, "night exists");
    // Carbon intensity lies between pure-green and the dirtiest grid.
    let g = o.energy.intensity_g_per_kwh();
    assert!(g > 30.0 && g < 850.0, "intensity {g}");
    // The priced network billed the remote flows.
    assert!(o.profit.network_eur > 0.0);
    // Profit identity.
    let p = o.profit;
    assert!(
        (p.profit_eur() - (p.revenue_eur - p.energy_eur - p.migration_eur - p.network_eur)).abs()
            < 1e-12
    );
}

#[test]
fn kitchen_sink_is_deterministic() {
    let a = kitchen_sink(21);
    let b = kitchen_sink(21);
    assert_eq!(a.mean_sla.to_bits(), b.mean_sla.to_bits());
    assert_eq!(a.total_wh.to_bits(), b.total_wh.to_bits());
    assert_eq!(a.energy.co2_g.to_bits(), b.energy.co2_g.to_bits());
    assert_eq!(
        a.profit.network_eur.to_bits(),
        b.profit.network_eur.to_bits()
    );
    assert_eq!(a.migrations, b.migrations);
}

#[test]
fn green_quote_steers_hierarchical_scheduler() {
    // With enormous free solar in Brisbane only, a long-horizon
    // scheduler should host more VM-ticks there than the same scheduler
    // quoted flat prices.
    let run = |aware: bool| {
        let mut scenario = ScenarioBuilder::paper_multi_dc()
            .vms(4)
            .pms_per_dc(2)
            .load_scale(0.6)
            .seed(9)
            .build();
        let mut env = EnergyEnvironment::paper_default(&scenario.cluster);
        // Brisbane: 24/7 wind farm covering any draw, nearly free.
        env = env.with_site(
            0,
            SiteEnergy::flat(0.1314, 850.0).with_wind(WindFarm::new(5000.0, 14.0, 2, 3)),
        );
        if !aware {
            env = env.price_blind();
        }
        scenario.energy = env;
        let cfg = RunConfig {
            plan_horizon_ticks: Some(60),
            ..RunConfig::default()
        };
        SimulationRunner::new(
            scenario,
            Box::new(HierarchicalPolicy::new(TrueOracle::new())),
        )
        .config(cfg)
        .run(SimDuration::from_hours(12))
        .0
    };
    let aware = run(true);
    let blind = run(false);
    let brisbane_ticks = |o: &RunOutcome| {
        (0..4)
            .filter_map(|vm| o.series.get(&format!("vm{vm}_dc")))
            .flat_map(|s| s.values().iter())
            .filter(|&&dc| dc as usize == 0)
            .count()
    };
    assert!(
        brisbane_ticks(&aware) > brisbane_ticks(&blind),
        "green quotes must attract the fleet: aware {} vs blind {}",
        brisbane_ticks(&aware),
        brisbane_ticks(&blind)
    );
    assert!(aware.energy.green_fraction() > blind.energy.green_fraction());
}

#[test]
fn migration_storm_is_bandwidth_limited() {
    // Same-link storm: two VMs co-located in one DC, both leaving for
    // the same destination DC at the same instant — the second transfer
    // must run at half bandwidth and complete strictly later.
    let now = SimTime::from_mins(30);
    let mut s2 = ScenarioBuilder::paper_multi_dc()
        .vms(8)
        .pms_per_dc(2)
        .build();
    s2.cluster.tick(now);
    // VMs 0 and 4 both home in DC 0 (i % 4 == 0).
    let first = s2
        .cluster
        .migrate(pamdc_infra::ids::VmId(0), pamdc_infra::ids::PmId(7), now)
        .expect("first migration");
    let second = s2
        .cluster
        .migrate(pamdc_infra::ids::VmId(4), pamdc_infra::ids::PmId(6), now)
        .expect("second migration");
    assert!(
        second.duration() > first.duration(),
        "sharing the link must stretch the second transfer: {:?} vs {:?}",
        second.duration(),
        first.duration()
    );
}
