//! Integration tests for the learning side: the Table-I pipeline driving
//! the multi-DC scheduler, the direct-SLA ablation, and the online
//! retraining extension (the paper's future-work item 4).

use pamdc::manager::experiments::ablations;
use pamdc::manager::training::{build_stage1_datasets, collect_training_data, train_suite};
use pamdc::ml::prelude::*;
use pamdc::prelude::*;
use pamdc_sched::oracle::MlOracle;
use pamdc_simcore::rng::RngStream;

/// The trained suite must actually drive the hierarchical scheduler on
/// the 4-city scenario: sane SLA, consolidation below the full fleet.
#[test]
fn ml_suite_drives_the_multi_dc_scheduler() {
    let collector = collect_training_data(4, &[0.6, 1.2], 4, 31);
    let training = train_suite(&collector, 31);
    let scenario = ScenarioBuilder::paper_multi_dc().vms(5).seed(31).build();
    let policy = Box::new(HierarchicalPolicy::new(MlOracle::new(
        training.suite.clone(),
    )));
    let (outcome, _) = SimulationRunner::new(scenario, policy).run(SimDuration::from_hours(6));
    assert!(outcome.mean_sla > 0.6, "ML-driven SLA {}", outcome.mean_sla);
    assert!(
        outcome.avg_active_pms < 4.0,
        "ML scheduler should consolidate below the full fleet: {}",
        outcome.avg_active_pms
    );
    assert!(outcome.profit.profit_eur() > 0.0);
}

/// E-AB1: direct SLA prediction (k-NN) is at least as good as predicting
/// RT and converting through the formula — the paper's §IV-B finding.
#[test]
fn direct_sla_beats_or_matches_via_rt() {
    let collector = collect_training_data(4, &[0.6, 1.4], 4, 33);
    let stage1 = build_stage1_datasets(&collector);
    let (_, cpu_data) = &stage1[0];
    let mut rng = RngStream::root(33).derive("cpu");
    let cpu_model = TrainedPredictor::train(PredictionTarget::VmCpu, cpu_data, &mut rng);
    let result = ablations::sla_direct_vs_via_rt(&collector, &cpu_model, 33);
    assert!(
        result.direct.correlation >= result.via_rt_correlation - 0.03,
        "direct {} should not trail via-RT {} meaningfully",
        result.direct.correlation,
        result.via_rt_correlation
    );
    assert!(result.direct.mae <= result.via_rt_mae + 0.02);
}

/// E-AB2: monitors under-report demand exactly when it matters.
#[test]
fn monitor_bias_is_real_and_directional() {
    let collector = collect_training_data(4, &[0.8, 1.6], 4, 35);
    let bias = ablations::monitor_bias(&collector);
    assert!(
        bias.counts.0 > 50 && bias.counts.1 > 50,
        "need both regimes: {:?}",
        bias.counts
    );
    assert!(
        bias.saturated_ratio < bias.unsaturated_ratio - 0.1,
        "saturated obs/demand {} must sit well below unsaturated {}",
        bias.saturated_ratio,
        bias.unsaturated_ratio
    );
    assert!(
        (bias.unsaturated_ratio - 1.0).abs() < 0.35,
        "unsaturated observations should be roughly unbiased: {}",
        bias.unsaturated_ratio
    );
}

/// Future work #4: an online learner tracks workload drift that a batch
/// model fitted once cannot.
#[test]
fn online_learner_tracks_drift() {
    let features = ["rps"];
    let fit = |d: &Dataset| Box::new(LinearRegression::fit(d)) as Box<dyn Regressor>;
    let mut online = OnlineLearner::new(&features, 200, 25, 20, fit);

    // Regime A: cpu = 0.6 * rps. Also fit a frozen batch model here.
    let mut batch_data = Dataset::with_features(&features);
    for i in 0..200 {
        let rps = (i % 50) as f64 * 4.0;
        let cpu = 0.6 * rps;
        online.observe(vec![rps], cpu);
        batch_data.push(vec![rps], cpu);
    }
    let batch = LinearRegression::fit(&batch_data);

    // Regime B (software update doubles the per-request cost).
    for i in 0..400 {
        let rps = (i % 50) as f64 * 4.0;
        online.observe(vec![rps], 1.2 * rps);
    }

    let q = vec![100.0];
    let online_pred = online.predict(&q).expect("fitted");
    let batch_pred = batch.predict(&q);
    let truth = 120.0;
    assert!(
        (online_pred - truth).abs() < 6.0,
        "online model must track the new regime: {online_pred} vs {truth}"
    );
    assert!(
        (batch_pred - truth).abs() > 30.0,
        "frozen batch model must be stale: {batch_pred} vs {truth}"
    );
}

/// The ML oracle's resource estimates agree with ground truth within a
/// usable band on in-distribution loads.
#[test]
fn ml_demand_estimates_track_truth() {
    use pamdc_sched::oracle::{QosOracle, TrueOracle};
    use pamdc_sched::problem::synthetic;

    let collector = collect_training_data(4, &[0.5, 1.0, 1.5], 4, 37);
    let training = train_suite(&collector, 37);
    let ml = MlOracle::new(training.suite.clone());
    let truth = TrueOracle::new();

    let mut checked = 0;
    for rps in [40.0, 120.0, 250.0] {
        let p = synthetic::problem(2, 2, rps);
        for vm in &p.vms {
            let d_ml = ml.demand(vm);
            let d_true = truth.demand(vm);
            if d_true.cpu > 20.0 {
                let ratio = d_ml.cpu / d_true.cpu;
                assert!(
                    (0.5..2.0).contains(&ratio),
                    "cpu estimate off at rps {rps}: ml {} vs true {}",
                    d_ml.cpu,
                    d_true.cpu
                );
                checked += 1;
            }
        }
    }
    assert!(checked >= 4, "need enough comparisons, got {checked}");
}
