//! Reproducibility guarantees: every experiment is a pure function of
//! its seed, and parallel execution does not change results.

use pamdc::prelude::*;
use pamdc_sched::oracle::TrueOracle;

fn run_once(seed: u64) -> RunOutcome {
    let scenario = ScenarioBuilder::paper_multi_dc().vms(4).seed(seed).build();
    SimulationRunner::new(
        scenario,
        Box::new(HierarchicalPolicy::new(TrueOracle::new())),
    )
    .run(SimDuration::from_hours(3))
    .0
}

#[test]
fn same_seed_same_world() {
    let a = run_once(42);
    let b = run_once(42);
    assert_eq!(a.mean_sla.to_bits(), b.mean_sla.to_bits());
    assert_eq!(a.total_wh.to_bits(), b.total_wh.to_bits());
    assert_eq!(a.migrations, b.migrations);
    assert_eq!(
        a.profit.revenue_eur.to_bits(),
        b.profit.revenue_eur.to_bits()
    );
}

#[test]
fn different_seeds_different_worlds() {
    let a = run_once(1);
    let b = run_once(2);
    assert_ne!(
        (a.mean_sla.to_bits(), a.total_wh.to_bits()),
        (b.mean_sla.to_bits(), b.total_wh.to_bits()),
        "distinct seeds must produce distinct traces"
    );
}

#[test]
fn parallel_arms_match_sequential_arms() {
    // The parallel-sweep helper used by experiment drivers must not
    // perturb results: run the same pair sequentially and in parallel.
    let seq: Vec<f64> = [11u64, 13].iter().map(|&s| run_once(s).mean_sla).collect();
    let par: Vec<f64> = pamdc_simcore::par::parallel_map(vec![11u64, 13], |s| run_once(s).mean_sla);
    assert_eq!(seq, par);
}

#[test]
fn training_pipeline_is_deterministic() {
    use pamdc::manager::training::{collect_training_data, train_suite};
    let c1 = collect_training_data(3, &[0.8], 2, 5);
    let c2 = collect_training_data(3, &[0.8], 2, 5);
    assert_eq!(c1.vm_ticks.len(), c2.vm_ticks.len());
    let t1 = train_suite(&c1, 5);
    let t2 = train_suite(&c2, 5);
    for ((_, a), (_, b)) in t1.reports.iter().zip(&t2.reports) {
        assert_eq!(a.correlation.to_bits(), b.correlation.to_bits());
        assert_eq!(a.mae.to_bits(), b.mae.to_bits());
    }
}
