//! Cross-crate integration tests: the paper's headline claims, asserted
//! against live (shortened) experiment runs.

use pamdc::manager::experiments::{deloc, fig5, fig6, fig7_table3, solver_scaling, table1, table2};
use pamdc::prelude::*;
use pamdc_sched::oracle::TrueOracle;

#[test]
fn quickstart_shape() {
    let scenario = ScenarioBuilder::paper_multi_dc().vms(5).seed(7).build();
    let outcome = SimulationRunner::new(
        scenario,
        Box::new(HierarchicalPolicy::new(TrueOracle::new())),
    )
    .run(SimDuration::from_hours(2))
    .0;
    assert!(
        outcome.mean_sla > 0.5 && outcome.mean_sla <= 1.0,
        "sla {}",
        outcome.mean_sla
    );
    assert!(outcome.avg_watts > 0.0);
    assert!(outcome.profit.revenue_eur > 0.0);
    assert!(outcome.series.get("sla").is_some());
}

#[test]
fn table2_constants_hold() {
    table2::verify();
    let rendered = table2::render();
    assert!(rendered.contains("0.1314") && rendered.contains("265"));
}

/// E-T1: the learning pipeline reaches paper-band quality on every
/// target, and the method assignments match the paper's choices.
#[test]
fn table1_learning_quality() {
    let outcome = table1::run(&table1::Table1Config::quick(2013));
    assert_eq!(outcome.reports.len(), 7);
    for (name, rep) in &outcome.reports {
        assert!(
            rep.correlation > 0.7,
            "{name}: correlation {} below the paper band",
            rep.correlation
        );
        assert!(rep.n_train > 100, "{name}: too few training examples");
    }
    let sla = &outcome
        .reports
        .iter()
        .find(|(n, _)| n == "Predict VM SLA")
        .unwrap()
        .1;
    assert_eq!(sla.method, "K-NN");
    assert!(sla.correlation > 0.9, "SLA k-NN corr {}", sla.correlation);
}

/// E-F5: the follow-the-load VM visits at least 3 of the 4 DCs over two
/// simulated days.
#[test]
fn fig5_vm_follows_the_sun() {
    let result = fig5::run(&fig5::Fig5Config { hours: 48, seed: 5 });
    assert!(
        result.dcs_visited >= 3,
        "VM should chase the load around the planet, visited {}",
        result.dcs_visited
    );
    assert!(result.outcome.migrations >= 3);
}

/// E-DL: allowing de-location from an overloaded home DC raises SLA.
#[test]
fn deloc_improves_sla() {
    let cfg = deloc::DelocConfig::quick(6);
    let result = deloc::run(&cfg);
    assert!(
        result.sla_gain() > 0.02,
        "de-location must buy SLA: fixed {} vs deloc {}",
        result.fixed.mean_sla,
        result.delocating.mean_sla
    );
    assert!(result.benefit_eur_per_vm_day(cfg.vms) > 0.0);
}

/// E-F6: the flash crowd dents SLA and the system recovers afterwards.
#[test]
fn fig6_flash_crowd_dents_and_recovers() {
    let result = fig6::run(&fig6::Fig6Config::quick(7), None);
    assert!(
        result.sla_during_crowd < result.sla_before_crowd - 0.1,
        "crowd must dent SLA: before {} during {}",
        result.sla_before_crowd,
        result.sla_during_crowd
    );
    assert!(
        result.sla_after_crowd > result.sla_during_crowd,
        "system must recover: during {} after {}",
        result.sla_during_crowd,
        result.sla_after_crowd
    );
}

/// E-F7/T3: dynamic multi-DC management saves substantial energy at
/// comparable SLA.
#[test]
fn table3_dynamic_saves_energy() {
    let result = fig7_table3::run(&fig7_table3::Table3Config::quick(8), None);
    assert!(
        result.energy_saving_frac() > 0.10,
        "dynamic must save energy: static {} W vs dynamic {} W",
        result.static_global.avg_watts,
        result.dynamic.avg_watts
    );
    assert!(
        result.dynamic.mean_sla > result.static_global.mean_sla - 0.05,
        "SLA must stay comparable: static {} dynamic {}",
        result.static_global.mean_sla,
        result.dynamic.mean_sla
    );
    assert_eq!(result.static_global.migrations, 0);
}

/// E-SC: the exact solver's work explodes with instance size while
/// Best-Fit stays fast, and the heuristic's profit gap stays small.
#[test]
fn solver_scaling_shape() {
    let points = solver_scaling::run(&solver_scaling::ScalingConfig {
        sizes: vec![(2, 4), (4, 8), (6, 8)],
        exact_vm_cap: 6,
        rps: 250.0,
        exact_node_budget: u64::MAX,
    });
    assert!(
        points.iter().all(|p| !p.exact_budget_exhausted),
        "unbounded budget must never exhaust"
    );
    let nodes: Vec<u64> = points.iter().filter_map(|p| p.exact_nodes).collect();
    assert!(
        nodes.windows(2).all(|w| w[1] >= w[0]),
        "nodes must grow: {nodes:?}"
    );
    assert!(
        nodes.last().unwrap() > &(nodes[0] * 4),
        "exact search must blow up super-linearly: {nodes:?}"
    );
    for p in &points {
        if let Some(gap) = p.profit_gap {
            assert!(gap >= -1e-9, "exact must be at least as good");
            assert!(gap < 0.35, "heuristic must stay competitive, gap {gap}");
        }
    }
}
