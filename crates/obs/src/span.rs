//! RAII tracing spans with a thread-local path stack.
//!
//! A span is a named interval: `let _s = obs::span!("plan");` opens it,
//! dropping the guard closes it, and nesting is positional — the span's
//! full path is the slash-join of every open span on the thread
//! (`tick/plan/hier/intra/dc3`). Stats accumulate per path in the
//! installed [`Collector`](crate::Collector) and are drained per tick
//! by the simulation loop into the JSONL trace.
//!
//! **Replay safety:** guards are complete no-ops unless the installed
//! collector has timing enabled (only traced runs do), so wall-clock is
//! never even read on untraced runs and can never influence decisions.
//!
//! **Unbalanced drops:** each guard remembers the stack depth it opened
//! at and *truncates* back to that depth on drop rather than popping
//! blindly. Dropping an outer guard before an inner one (easy to do
//! across `parallel_map` worker boundaries or early returns) closes the
//! abandoned children without panicking; the stale inner guard then
//! drops as a no-op.

use std::cell::RefCell;
use std::time::Instant;

thread_local! {
    // Open span names, innermost last. Workers spawned while tracing
    // seed element 0 with the spawning thread's joined path (see
    // `seed_prefix`), so worker-side paths nest under the spawn site.
    static STACK: RefCell<Vec<String>> = const { RefCell::new(Vec::new()) };
}

/// Whether spans on this thread currently record (collector present
/// with timing on). Callers formatting dynamic span names check this
/// first so untraced runs never pay for the `format!`.
pub fn timing_enabled() -> bool {
    crate::metrics::current().is_some_and(|c| c.timing())
}

/// Opens a span with a static name.
pub fn enter(name: &'static str) -> SpanGuard {
    if !timing_enabled() {
        return SpanGuard::disabled();
    }
    enter_owned(name.to_string())
}

/// Opens a span with a lazily formatted name (per-DC shards and other
/// data-dependent spans); `f` runs only when timing is enabled.
pub fn enter_dyn(f: impl FnOnce() -> String) -> SpanGuard {
    if !timing_enabled() {
        return SpanGuard::disabled();
    }
    enter_owned(f())
}

fn enter_owned(name: String) -> SpanGuard {
    debug_assert!(
        !name.contains('/'),
        "span names are path segments; '/' is the separator: {name:?}"
    );
    let depth = STACK.with(|s| {
        let mut s = s.borrow_mut();
        s.push(name);
        s.len() - 1
    });
    SpanGuard {
        depth: Some(depth),
        start: Instant::now(),
    }
}

/// The joined path of currently open spans, if any — captured at
/// `parallel_map` spawn time as the workers' prefix.
pub fn current_path() -> Option<String> {
    STACK.with(|s| {
        let s = s.borrow();
        if s.is_empty() {
            None
        } else {
            Some(s.join("/"))
        }
    })
}

/// Seeds this thread's stack with an already-joined prefix (worker
/// startup). `None` clears it.
pub fn seed_prefix(prefix: Option<String>) {
    STACK.with(|s| {
        let mut s = s.borrow_mut();
        s.clear();
        if let Some(p) = prefix {
            s.push(p);
        }
    });
}

/// Closes its span on drop. Obtain via [`crate::span!`], [`enter`] or
/// [`enter_dyn`].
pub struct SpanGuard {
    depth: Option<usize>,
    start: Instant,
}

impl SpanGuard {
    fn disabled() -> Self {
        SpanGuard {
            depth: None,
            start: Instant::now(),
        }
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        let Some(depth) = self.depth else { return };
        let elapsed_ns = self.start.elapsed().as_nanos().min(u64::MAX as u128) as u64;
        let path = STACK.with(|s| {
            let mut s = s.borrow_mut();
            if depth >= s.len() {
                // An enclosing guard already truncated past us
                // (unbalanced drop order) — nothing left to close.
                return None;
            }
            let path = s[..=depth].join("/");
            s.truncate(depth);
            Some(path)
        });
        if let Some(path) = path {
            if let Some(collector) = crate::metrics::current() {
                collector.record_span(path, elapsed_ns);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::{Collector, CollectorGuard};
    use std::sync::Arc;

    fn traced() -> (Arc<Collector>, CollectorGuard) {
        let c = Arc::new(Collector::new(true));
        let g = CollectorGuard::install(c.clone());
        (c, g)
    }

    #[test]
    fn nesting_builds_slash_paths() {
        let (c, _g) = traced();
        {
            let _tick = enter("tick");
            {
                let _plan = enter("plan");
                let _bf = enter("bestfit");
            }
            let _exec = enter("execute");
        }
        let spans = c.take_spans();
        let paths: Vec<&str> = spans.keys().map(|s| s.as_str()).collect();
        assert_eq!(
            paths,
            ["tick", "tick/execute", "tick/plan", "tick/plan/bestfit"]
        );
        assert!(spans.values().all(|s| s.count == 1));
    }

    #[test]
    fn zero_duration_spans_still_record() {
        let (c, _g) = traced();
        drop(enter("instant"));
        let spans = c.take_spans();
        let stat = spans.get("instant").expect("span recorded");
        assert_eq!(stat.count, 1);
        // total_ns may legitimately be 0 on a coarse clock — the span
        // must still appear with its count.
    }

    #[test]
    fn unbalanced_drop_order_is_safe() {
        let (c, _g) = traced();
        let outer = enter("outer");
        let inner = enter("inner");
        drop(outer); // closes outer AND abandons inner
        drop(inner); // stale: must be a silent no-op
        let spans = c.take_spans();
        assert!(spans.contains_key("outer"));
        // The abandoned inner span never recorded.
        assert!(!spans.contains_key("outer/inner"));
        assert_eq!(current_path(), None, "stack fully unwound");
        // The stack is healthy afterwards: new spans nest from the root.
        drop(enter("fresh"));
        assert!(c.take_spans().contains_key("fresh"));
    }

    #[test]
    fn disabled_without_timing_collector() {
        let c = Arc::new(Collector::new(false));
        let _g = CollectorGuard::install(c.clone());
        drop(enter("invisible"));
        assert!(c.take_spans().is_empty());
        assert_eq!(current_path(), None);
    }

    #[test]
    fn dyn_name_not_formatted_when_disabled() {
        let formatted = std::cell::Cell::new(false);
        drop(enter_dyn(|| {
            formatted.set(true);
            "dc0".into()
        }));
        assert!(!formatted.get(), "no collector => closure must not run");
    }

    // Workers spawned mid-span inherit the spawning thread's path as a
    // prefix; their spans nest under it in the shared collector.
    #[test]
    fn worker_spans_nest_under_spawn_path() {
        let (c, _g) = traced();
        {
            let _round = enter("round");
            let _intra = enter("intra");
            let shards: Vec<usize> = (0..4).collect();
            pamdc_simcore::par::parallel_map(shards, |i| {
                let _s = enter_dyn(|| format!("dc{i}"));
                i
            });
        }
        let spans = c.take_spans();
        for i in 0..4 {
            let key = format!("round/intra/dc{i}");
            assert!(spans.contains_key(key.as_str()), "missing {key}: {spans:?}");
        }
        assert!(spans.contains_key("round"));
        assert!(spans.contains_key("round/intra"));
    }

    // Same spans, any worker budget: identical path sets and counts
    // (durations differ — they are wall-clock).
    #[test]
    fn span_paths_deterministic_at_any_budget() {
        let mut shapes: Vec<Vec<(String, u64)>> = Vec::new();
        for jobs in [1usize, 3, 8] {
            let (c, _g) = traced();
            {
                let _root = enter("root");
                pamdc_simcore::par::parallel_map_bounded(
                    (0..12).collect::<Vec<usize>>(),
                    Some(jobs),
                    |i| {
                        let _s = enter_dyn(|| format!("item{i}"));
                        i
                    },
                );
            }
            let shape: Vec<(String, u64)> = c
                .take_spans()
                .into_iter()
                .map(|(path, stat)| (path, stat.count))
                .collect();
            shapes.push(shape);
        }
        assert!(shapes.windows(2).all(|w| w[0] == w[1]), "{shapes:?}");
    }
}
