//! # pamdc-obs — deterministic observability for the MAPE loop
//!
//! Dependency-free (simcore only) instrumentation, built in the same
//! offline spirit as the shim crates. Three layers:
//!
//! * [`metrics`] — a fixed **registry** of named counters, gauges and
//!   fixed-bucket histograms, accumulated into a per-run [`Collector`]
//!   that `SimulationRunner::run` installs thread-locally and flushes
//!   into the run's report metrics. Counter totals are pure functions
//!   of the simulated world, so they are bit-identical at any `--jobs`
//!   budget and pinnable by golden tests.
//! * [`span`] — `span!("plan")`-style RAII guards recording nested
//!   wall-clock timings per MAPE phase, scheduler stage and DC shard.
//!   Wall-clock never enters a report: span timings exist only in the
//!   JSONL trace, and the guards are no-ops unless tracing is on, so
//!   instrumentation cannot influence decisions (the replay-safety
//!   invariant; see `docs/OBSERVABILITY.md`).
//! * [`trace`] — a JSONL event sink (`pamdc run --trace-out`) with
//!   hand-rolled emission, a flat-JSON line scanner, and the
//!   `pamdc trace summarize` aggregation. The deterministic `tick`
//!   field is the timestamp of record; `wall_ns` is the **only**
//!   nondeterministic field in a trace.
//!
//! Plus [`log`], the one leveled stderr sink every CLI diagnostic goes
//! through (`PAMDC_LOG`, `--quiet`), so machine-readable stdout never
//! interleaves with human chatter.
//!
//! Ambient state crosses `simcore::par` worker threads through the
//! [`pamdc_simcore::par::register_worker_context`] seam, so counters
//! bumped inside a sharded `hierarchical_round` land in the same
//! collector at any parallelism budget.

pub mod clock;
pub mod log;
pub mod metrics;
pub mod span;
pub mod trace;

pub use metrics::{Collector, CollectorGuard, Counter, Gauge, Hist};
pub use span::SpanGuard;

/// Enters a span with a static name. Expands to an RAII guard; the span
/// closes when the guard drops. No-op unless the current thread has a
/// collector with timing enabled.
#[macro_export]
macro_rules! span {
    ($name:expr) => {
        $crate::span::enter($name)
    };
}

/// `error!`-level diagnostic (always shown; `error: ` prefix, stderr).
#[macro_export]
macro_rules! error {
    ($($arg:tt)*) => {
        $crate::log::log($crate::log::Level::Error, format_args!($($arg)*))
    };
}

/// `warn!`-level diagnostic (shown under `--quiet`; `warn: ` prefix).
#[macro_export]
macro_rules! warn {
    ($($arg:tt)*) => {
        $crate::log::log($crate::log::Level::Warn, format_args!($($arg)*))
    };
}

/// `info!`-level diagnostic (default level; plain, stderr).
#[macro_export]
macro_rules! info {
    ($($arg:tt)*) => {
        $crate::log::log($crate::log::Level::Info, format_args!($($arg)*))
    };
}

/// `debug!`-level diagnostic (`PAMDC_LOG=debug`; `debug: ` prefix).
#[macro_export]
macro_rules! debug {
    ($($arg:tt)*) => {
        $crate::log::log($crate::log::Level::Debug, format_args!($($arg)*))
    };
}
