//! The wall-clock seam for timing *experiments*.
//!
//! The repo-wide `pamdc-lint wall-clock` contract confines raw
//! `Instant::now` to this crate, the serve daemon, and the bench
//! harnesses, so that nothing in the simulation path can accidentally
//! key a decision off real time. Timing-based experiments
//! (`scaling`, `solver-scaling`) still need to *measure* solver
//! latency; they do it through this [`Stopwatch`] instead of touching
//! `std::time` directly. The seam keeps the allowlist one file wide
//! and makes every wall-clock reading grep-able.
//!
//! Like `span::wall_ns`, readings taken here must never reach
//! golden-pinned output: the timing experiments are excluded from the
//! golden suite via the kind registry's `deterministic` flag.

use std::time::Instant;

/// A started wall-clock measurement.
#[derive(Debug, Clone, Copy)]
pub struct Stopwatch {
    start: Instant,
}

impl Stopwatch {
    /// Starts timing now.
    pub fn start() -> Stopwatch {
        Stopwatch {
            start: Instant::now(),
        }
    }

    /// Microseconds since [`Stopwatch::start`], as the `f64` the timing
    /// experiments aggregate.
    pub fn elapsed_us(&self) -> f64 {
        self.start.elapsed().as_secs_f64() * 1e6
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn elapsed_is_monotonic_and_nonnegative() {
        let sw = Stopwatch::start();
        let a = sw.elapsed_us();
        let b = sw.elapsed_us();
        assert!(a >= 0.0);
        assert!(b >= a);
    }
}
