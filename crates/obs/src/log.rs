//! The one leveled diagnostic sink.
//!
//! Everything human-facing goes to **stderr** through here; stdout is
//! reserved for machine-readable output (CSV, JSON, rendered reports).
//! The level comes from `PAMDC_LOG` (`error`|`warn`|`info`|`debug`,
//! default `info`) and the CLI's `--quiet` lowers it to `warn`.
//! Use via the crate-root macros: `pamdc_obs::info!("wrote {path}")`.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::OnceLock;

#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum Level {
    Error = 0,
    Warn = 1,
    Info = 2,
    Debug = 3,
}

impl Level {
    fn from_env(value: &str) -> Option<Level> {
        match value.trim().to_ascii_lowercase().as_str() {
            "error" => Some(Level::Error),
            "warn" | "warning" => Some(Level::Warn),
            "info" => Some(Level::Info),
            "debug" => Some(Level::Debug),
            _ => None,
        }
    }

    fn prefix(self) -> &'static str {
        match self {
            Level::Error => "error: ",
            Level::Warn => "warn: ",
            Level::Info => "",
            Level::Debug => "debug: ",
        }
    }
}

// usize::MAX = "not explicitly set, consult PAMDC_LOG".
static MAX_LEVEL: AtomicUsize = AtomicUsize::new(usize::MAX);

fn env_level() -> Level {
    static ENV: OnceLock<Level> = OnceLock::new();
    *ENV.get_or_init(|| {
        std::env::var("PAMDC_LOG")
            .ok()
            .and_then(|v| Level::from_env(&v))
            .unwrap_or(Level::Info)
    })
}

/// Overrides the level (the CLI's `--quiet` → [`Level::Warn`]). Takes
/// precedence over `PAMDC_LOG`.
pub fn set_level(level: Level) {
    MAX_LEVEL.store(level as usize, Ordering::Relaxed);
}

/// The effective maximum level.
pub fn max_level() -> Level {
    match MAX_LEVEL.load(Ordering::Relaxed) {
        0 => Level::Error,
        1 => Level::Warn,
        2 => Level::Info,
        3 => Level::Debug,
        _ => env_level(),
    }
}

/// Whether a message at `level` would print.
pub fn enabled(level: Level) -> bool {
    level <= max_level()
}

/// Prints `args` to stderr when `level` clears the threshold. Prefer
/// the `error!`/`warn!`/`info!`/`debug!` macros.
pub fn log(level: Level, args: std::fmt::Arguments<'_>) {
    if enabled(level) {
        eprintln!("{}{args}", level.prefix());
    }
}

/// A heartbeat line that bypasses the level filter: `--progress` is an
/// explicit request, so it prints even under `--quiet`.
pub fn progress(args: std::fmt::Arguments<'_>) {
    eprintln!("{args}");
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn level_parsing_and_ordering() {
        assert_eq!(Level::from_env("DEBUG"), Some(Level::Debug));
        assert_eq!(Level::from_env(" warn "), Some(Level::Warn));
        assert_eq!(Level::from_env("warning"), Some(Level::Warn));
        assert_eq!(Level::from_env("verbose"), None);
        assert!(Level::Error < Level::Warn && Level::Warn < Level::Info);
    }

    #[test]
    fn set_level_filters() {
        set_level(Level::Warn);
        assert!(enabled(Level::Error));
        assert!(enabled(Level::Warn));
        assert!(!enabled(Level::Info));
        assert!(!enabled(Level::Debug));
        set_level(Level::Debug);
        assert!(enabled(Level::Debug));
        // Restore the default for other tests in this binary.
        MAX_LEVEL.store(usize::MAX, Ordering::Relaxed);
    }
}
