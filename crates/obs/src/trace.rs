//! The JSONL run-trace sink, schema and summarizer.
//!
//! A trace is a stream of flat, single-line JSON objects (hand-rolled
//! emission, like every other JSON writer in the workspace). Schema v1:
//!
//! ```text
//! {"event":"run_start","schema":1,"scenario":"fig4","policy":"BF-ML"}
//! {"event":"span","tick":12,"path":"tick/plan","count":1,"wall_ns":48211}
//! {"event":"counter","tick":12,"name":"sim.migrations","value":3}
//! {"event":"run_end","ticks":180}
//! ```
//!
//! * `tick` is the **monotonic tick clock** — the deterministic
//!   timestamp, stable across record/replay.
//! * `wall_ns` (span duration) is the **only nondeterministic field**:
//!   strip it and two runs of the same scenario compare byte-identical.
//! * `counter` lines carry cumulative values and appear only on ticks
//!   where the value changed.
//!
//! Runs buffer their lines in their collector; the experiment runner
//! flushes buffers to the ambient sink in arm order, so a multi-arm
//! trace is deterministic even when arms execute in parallel.

use std::collections::BTreeMap;
use std::io::Write;
use std::path::Path;
use std::sync::Mutex;

/// Trace schema version, bumped on breaking field changes.
pub const SCHEMA_VERSION: u32 = 1;

enum Sink {
    File(std::io::BufWriter<std::fs::File>),
    Memory(Vec<String>),
}

static SINK: Mutex<Option<Sink>> = Mutex::new(None);

/// Whether a trace sink is installed (i.e. this process is tracing).
pub fn enabled() -> bool {
    SINK.lock().expect("trace sink poisoned").is_some()
}

/// Installs a file sink; subsequent [`write_lines`] calls stream to it.
pub fn install_file(path: &Path) -> std::io::Result<()> {
    let file = std::fs::File::create(path)?;
    *SINK.lock().expect("trace sink poisoned") = Some(Sink::File(std::io::BufWriter::new(file)));
    Ok(())
}

/// Installs an in-memory sink (tests).
pub fn install_memory() {
    *SINK.lock().expect("trace sink poisoned") = Some(Sink::Memory(Vec::new()));
}

/// Appends pre-formatted JSONL lines to the sink; no-op when none is
/// installed.
pub fn write_lines<'a>(lines: impl IntoIterator<Item = &'a String>) {
    let mut sink = SINK.lock().expect("trace sink poisoned");
    match sink.as_mut() {
        None => {}
        Some(Sink::File(w)) => {
            for line in lines {
                // Sink errors must not alter a run's outcome; drop the
                // sink on first failure and warn once.
                if writeln!(w, "{line}").is_err() {
                    crate::warn!("trace sink write failed; tracing disabled");
                    *sink = None;
                    return;
                }
            }
        }
        Some(Sink::Memory(buf)) => buf.extend(lines.into_iter().cloned()),
    }
}

/// Removes the sink, flushing files; returns buffered lines for memory
/// sinks.
pub fn finish() -> std::io::Result<Option<Vec<String>>> {
    match SINK.lock().expect("trace sink poisoned").take() {
        None => Ok(None),
        Some(Sink::File(mut w)) => {
            w.flush()?;
            Ok(None)
        }
        Some(Sink::Memory(buf)) => Ok(Some(buf)),
    }
}

/// Escapes `s` for inclusion inside a JSON string literal.
pub fn escape_json(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

// ---------------- Line builders (the full schema) ----------------

pub fn run_start_line(scenario: &str, policy: &str) -> String {
    format!(
        "{{\"event\":\"run_start\",\"schema\":{SCHEMA_VERSION},\"scenario\":\"{}\",\"policy\":\"{}\"}}",
        escape_json(scenario),
        escape_json(policy)
    )
}

pub fn span_line(tick: u64, path: &str, count: u64, wall_ns: u64) -> String {
    format!(
        "{{\"event\":\"span\",\"tick\":{tick},\"path\":\"{}\",\"count\":{count},\"wall_ns\":{wall_ns}}}",
        escape_json(path)
    )
}

pub fn counter_line(tick: u64, name: &str, value: u64) -> String {
    format!(
        "{{\"event\":\"counter\",\"tick\":{tick},\"name\":\"{}\",\"value\":{value}}}",
        escape_json(name)
    )
}

pub fn run_end_line(ticks: u64) -> String {
    format!("{{\"event\":\"run_end\",\"ticks\":{ticks}}}")
}

/// One consumed tick of a live `pamdc serve` session — the daemon's
/// per-tick status stream. `round`/`degraded`/`migrations` describe the
/// scheduling round the tick ended (all zero/false on non-round ticks).
/// Like `wall_ns` on spans, `wall_ms` (time spent executing the step)
/// is the only nondeterministic field: strip it and two sessions over
/// the same feed compare byte-identical.
#[allow(clippy::too_many_arguments)]
pub fn serve_tick_line(
    tick: u64,
    sla: f64,
    watts: f64,
    active_pms: usize,
    rps: f64,
    round: bool,
    degraded: bool,
    migrations: u64,
    wall_ms: u64,
) -> String {
    format!(
        "{{\"event\":\"serve_tick\",\"tick\":{tick},\"sla\":{sla},\"watts\":{watts},\
         \"active_pms\":{active_pms},\"rps\":{rps},\"round\":{round},\
         \"degraded\":{degraded},\"migrations\":{migrations},\"wall_ms\":{wall_ms}}}"
    )
}

// ---------------- Flat-JSON line scanning ----------------

/// Extracts string field `key` from a flat JSON line (our own emission:
/// no nested objects, keys unique per line).
pub fn field_str(line: &str, key: &str) -> Option<String> {
    let raw = raw_value(line, key)?;
    let inner = raw.strip_prefix('"')?.strip_suffix('"')?;
    let mut out = String::with_capacity(inner.len());
    let mut chars = inner.chars();
    while let Some(c) = chars.next() {
        if c != '\\' {
            out.push(c);
            continue;
        }
        match chars.next() {
            Some('n') => out.push('\n'),
            Some('r') => out.push('\r'),
            Some('t') => out.push('\t'),
            Some('u') => {
                let hex: String = chars.by_ref().take(4).collect();
                let code = u32::from_str_radix(&hex, 16).ok()?;
                out.push(char::from_u32(code)?);
            }
            Some(c) => out.push(c),
            None => return None,
        }
    }
    Some(out)
}

/// Extracts numeric field `key` from a flat JSON line.
pub fn field_u64(line: &str, key: &str) -> Option<u64> {
    raw_value(line, key)?.parse().ok()
}

fn raw_value<'a>(line: &'a str, key: &str) -> Option<&'a str> {
    let needle = format!("\"{key}\":");
    let start = line.find(&needle)? + needle.len();
    let rest = &line[start..];
    if let Some(inner) = rest.strip_prefix('"') {
        // Scan to the closing unescaped quote.
        let mut escaped = false;
        for (i, c) in inner.char_indices() {
            if escaped {
                escaped = false;
            } else if c == '\\' {
                escaped = true;
            } else if c == '"' {
                return Some(&rest[..i + 2]);
            }
        }
        None
    } else {
        let end = rest.find([',', '}']).unwrap_or(rest.len());
        Some(rest[..end].trim())
    }
}

// ---------------- Summarize ----------------

/// Aggregated stats for one span path across a whole trace.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SummaryRow {
    pub path: String,
    pub count: u64,
    pub total_ns: u64,
}

/// What `pamdc trace summarize` renders.
#[derive(Clone, Debug, Default)]
pub struct TraceSummary {
    /// `run_start` events seen (arms in a multi-arm trace).
    pub runs: usize,
    /// Ticks summed over `run_end` events.
    pub ticks: u64,
    /// Per-path aggregates, sorted by path.
    pub spans: Vec<SummaryRow>,
    /// Final cumulative counter values, sorted by name.
    pub counters: Vec<(String, u64)>,
}

impl TraceSummary {
    fn total(&self, pred: impl Fn(&str) -> bool) -> u64 {
        self.spans
            .iter()
            .filter(|r| pred(&r.path))
            .map(|r| r.total_ns)
            .sum()
    }

    /// Wall-clock under root spans (paths without `/`) — the run's
    /// accounted total.
    pub fn root_ns(&self) -> u64 {
        self.total(|p| !p.contains('/'))
    }

    /// Wall-clock under depth-1 spans — the named phases tiling the
    /// roots.
    pub fn phase_ns(&self) -> u64 {
        self.total(|p| p.matches('/').count() == 1)
    }

    /// Fraction of root wall-clock the named phases account for —
    /// the ≥95% acceptance bar. `None` when the trace has no roots.
    pub fn coverage(&self) -> Option<f64> {
        let root = self.root_ns();
        (root > 0).then(|| self.phase_ns() as f64 / root as f64)
    }
}

/// Aggregates a trace. Unknown events are skipped (forward
/// compatibility); a stream with no recognizable events is an error.
pub fn summarize<I, S>(lines: I) -> Result<TraceSummary, String>
where
    I: IntoIterator<Item = S>,
    S: AsRef<str>,
{
    let mut summary = TraceSummary::default();
    let mut spans: BTreeMap<String, SummaryRow> = BTreeMap::new();
    let mut counters: BTreeMap<String, u64> = BTreeMap::new();
    let mut events = 0usize;
    for (lineno, line) in lines.into_iter().enumerate() {
        let line = line.as_ref().trim();
        if line.is_empty() {
            continue;
        }
        let Some(event) = field_str(line, "event") else {
            return Err(format!("line {}: no \"event\" field", lineno + 1));
        };
        events += 1;
        match event.as_str() {
            "run_start" => summary.runs += 1,
            "run_end" => summary.ticks += field_u64(line, "ticks").unwrap_or(0),
            "span" => {
                let path = field_str(line, "path")
                    .ok_or_else(|| format!("line {}: span without path", lineno + 1))?;
                let row = spans.entry(path.clone()).or_insert(SummaryRow {
                    path,
                    count: 0,
                    total_ns: 0,
                });
                row.count += field_u64(line, "count").unwrap_or(0);
                row.total_ns += field_u64(line, "wall_ns").unwrap_or(0);
            }
            "counter" => {
                let name = field_str(line, "name")
                    .ok_or_else(|| format!("line {}: counter without name", lineno + 1))?;
                counters.insert(name, field_u64(line, "value").unwrap_or(0));
            }
            _ => {}
        }
    }
    if events == 0 {
        return Err("empty trace (no events)".into());
    }
    summary.spans = spans.into_values().collect();
    summary.counters = counters.into_iter().collect();
    Ok(summary)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lines_round_trip_through_the_scanner() {
        let line = run_start_line("fig\"4\\x", "BF-ML");
        assert_eq!(field_str(&line, "scenario").as_deref(), Some("fig\"4\\x"));
        assert_eq!(field_str(&line, "policy").as_deref(), Some("BF-ML"));
        assert_eq!(field_u64(&line, "schema"), Some(SCHEMA_VERSION as u64));

        let line = span_line(42, "tick/plan", 3, 987654321);
        assert_eq!(field_u64(&line, "tick"), Some(42));
        assert_eq!(field_str(&line, "path").as_deref(), Some("tick/plan"));
        assert_eq!(field_u64(&line, "count"), Some(3));
        assert_eq!(field_u64(&line, "wall_ns"), Some(987654321));
    }

    #[test]
    fn summarize_aggregates_and_measures_coverage() {
        let lines = vec![
            run_start_line("s", "p"),
            span_line(0, "tick", 1, 100),
            span_line(0, "tick/plan", 1, 60),
            span_line(0, "tick/execute", 1, 38),
            span_line(0, "tick/plan/bestfit", 1, 50),
            span_line(1, "tick", 1, 100),
            span_line(1, "tick/plan", 1, 97),
            counter_line(0, "sim.migrations", 2),
            counter_line(1, "sim.migrations", 5),
            run_end_line(2),
        ];
        let s = summarize(&lines).expect("valid trace");
        assert_eq!(s.runs, 1);
        assert_eq!(s.ticks, 2);
        let tick = s.spans.iter().find(|r| r.path == "tick").unwrap();
        assert_eq!((tick.count, tick.total_ns), (2, 200));
        assert_eq!(s.root_ns(), 200);
        assert_eq!(s.phase_ns(), 60 + 38 + 97);
        assert!((s.coverage().unwrap() - 0.975).abs() < 1e-12);
        assert_eq!(s.counters, vec![("sim.migrations".to_string(), 5)]);
    }

    #[test]
    fn summarize_rejects_garbage_and_empty() {
        assert!(summarize(["not json at all"]).is_err());
        assert!(summarize(Vec::<String>::new()).is_err());
        // Unknown events are tolerated once any recognizable stream exists.
        let ok = summarize([
            run_start_line("s", "p"),
            "{\"event\":\"future_thing\",\"x\":1}".to_string(),
        ]);
        assert_eq!(ok.expect("forward compatible").runs, 1);
    }

    #[test]
    fn serve_tick_lines_scan_and_summarize_forward_compatibly() {
        let line = serve_tick_line(7, 0.995, 1234.5, 6, 812.25, true, false, 2, 13);
        assert_eq!(field_str(&line, "event").as_deref(), Some("serve_tick"));
        assert_eq!(field_u64(&line, "tick"), Some(7));
        assert_eq!(field_u64(&line, "active_pms"), Some(6));
        assert_eq!(field_u64(&line, "migrations"), Some(2));
        assert_eq!(field_u64(&line, "wall_ms"), Some(13));
        // The summarizer skips serve_tick (unknown event) but still
        // reads the surrounding run markers.
        let s = summarize([run_start_line("s", "p"), line, run_end_line(1)])
            .expect("serve stream summarizes");
        assert_eq!((s.runs, s.ticks), (1, 1));
    }

    #[test]
    fn memory_sink_buffers_in_order() {
        install_memory();
        assert!(enabled());
        let a = vec![span_line(0, "a", 1, 1)];
        let b = vec![span_line(1, "b", 1, 1)];
        write_lines(&a);
        write_lines(&b);
        let lines = finish().expect("finish").expect("memory lines");
        assert!(!enabled());
        assert_eq!(lines, vec![a[0].clone(), b[0].clone()]);
    }
}
