//! The metrics registry and per-run collector.
//!
//! Every metric the workspace emits is declared here, in one place, as
//! an enum variant with a fixed name — the registry. Call sites
//! (`crates/sched` solver stages, the `crates/core` simulation loop,
//! the `crates/workload` importers) bump metrics through the free
//! functions below; increments land in whatever [`Collector`] is
//! installed on the current thread (or vanish, when none is — benches
//! and unit tests pay nothing).
//!
//! A collector is **per run**: `SimulationRunner::run` creates a fresh
//! one, installs it for the duration of the run via [`CollectorGuard`]
//! (saving and restoring any outer collector, so nested training
//! simulations don't pollute their parent), and flushes
//! [`Collector::run_metrics`] into the run outcome. Parallel sweep and
//! campaign runs therefore never share a collector, and `simcore::par`
//! worker threads inherit the spawning run's collector through the
//! worker-context seam — counter totals are bit-identical at any
//! `--jobs` budget because addition commutes.
//!
//! Metric names follow `report::metric_key` rules (lowercase,
//! dot-separated namespaces; see `docs/OBSERVABILITY.md`) and are
//! prefixed `obs.` when flushed into a report.

use std::cell::RefCell;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, Once};

/// Every counter in the registry. `Import*` counters are bumped by
/// `pamdc import` outside any simulation and are excluded from
/// [`Collector::run_metrics`] (they would pin meaningless zeros into
/// every golden).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Counter {
    /// Simulated ticks executed.
    SimTicks,
    /// Plan/execute rounds entered.
    SimRounds,
    /// Migrations actually applied by the execute phase.
    SimMigrations,
    /// VM-ticks whose satisfaction fell below 1 (any SLA shortfall).
    SimSlaViolations,
    /// `best_fit_with_demands` invocations.
    BestfitCalls,
    /// Dispatches that took the full-scan path (< `INDEX_MIN_HOSTS`).
    BestfitDispatchScan,
    /// Dispatches that took the candidate-index shortlist path.
    BestfitDispatchIndex,
    /// VMs no host could take at nonnegative marginal profit.
    BestfitOverflow,
    /// Overflow placements that still found a RAM-fitting host (the
    /// memory tier held; the remainder fell through to `best_any`).
    BestfitMemTierFallback,
    /// Consolidation moves accepted by `improve_schedule`.
    LocalsearchMovesAccepted,
    /// Candidate moves evaluated but not applied.
    LocalsearchMovesRejected,
    /// Candidate (VM, host) gains evaluated by the incremental
    /// local-search path (the work metric its bookkeeping shrinks).
    LocalsearchCandidatesRescored,
    /// Full per-VM shortlist rebuilds in the incremental path.
    LocalsearchVmRescans,
    /// Candidate-index host re-keyings performed by local search.
    LocalsearchIndexUpdates,
    /// Host groups scored through the opt-in near-equivalence index
    /// (approximate shortlists; zero on exact-mode runs).
    IndexNearShortlistHits,
    /// Branch-and-bound runs that exhausted their node budget.
    ExactBudgetExhausted,
    /// `hierarchical_round` invocations.
    HierRounds,
    /// Per-DC shards solved across all rounds.
    HierShards,
    /// Hosts offered to the global pass across all rounds.
    HierOfferedHosts,
    /// VMs escalated to the global pass across all rounds.
    HierGlobalVms,
    /// Consolidation moves accepted inside hierarchical rounds.
    HierConsolidationMoves,
    /// Importer data rows parsed into usage samples.
    ImportRowsRead,
    /// Importer data rows skipped (unusable/filtered).
    ImportRowsDropped,
    /// Scheduling rounds planned in degraded (bestfit-only) mode under
    /// deadline pressure. Counted inside the engine, so a recorded
    /// live session replayed with its degradation manifest reproduces
    /// the same value.
    ServeDegradedRounds,
    /// Scheduling rounds planned at the ladder's middle rung (trimmed
    /// consolidation budget) under deadline pressure. Counted inside
    /// the engine, like `ServeDegradedRounds`, so manifest replays
    /// reproduce it.
    ServeTrimmedRounds,
    /// Feed polls performed by the serve daemon (wall-clock paced;
    /// excluded from run flushes).
    ServeFeedPolls,
    /// Session snapshots written by the serve daemon (excluded from
    /// run flushes).
    ServeSnapshots,
}

impl Counter {
    pub const ALL: [Counter; 27] = [
        Counter::SimTicks,
        Counter::SimRounds,
        Counter::SimMigrations,
        Counter::SimSlaViolations,
        Counter::BestfitCalls,
        Counter::BestfitDispatchScan,
        Counter::BestfitDispatchIndex,
        Counter::BestfitOverflow,
        Counter::BestfitMemTierFallback,
        Counter::LocalsearchMovesAccepted,
        Counter::LocalsearchMovesRejected,
        Counter::LocalsearchCandidatesRescored,
        Counter::LocalsearchVmRescans,
        Counter::LocalsearchIndexUpdates,
        Counter::IndexNearShortlistHits,
        Counter::ExactBudgetExhausted,
        Counter::HierRounds,
        Counter::HierShards,
        Counter::HierOfferedHosts,
        Counter::HierGlobalVms,
        Counter::HierConsolidationMoves,
        Counter::ImportRowsRead,
        Counter::ImportRowsDropped,
        Counter::ServeDegradedRounds,
        Counter::ServeTrimmedRounds,
        Counter::ServeFeedPolls,
        Counter::ServeSnapshots,
    ];

    pub fn name(self) -> &'static str {
        match self {
            Counter::SimTicks => "sim.ticks",
            Counter::SimRounds => "sim.rounds",
            Counter::SimMigrations => "sim.migrations",
            Counter::SimSlaViolations => "sim.sla_violations",
            Counter::BestfitCalls => "sched.bestfit.calls",
            Counter::BestfitDispatchScan => "sched.bestfit.dispatch_scan",
            Counter::BestfitDispatchIndex => "sched.bestfit.dispatch_index",
            Counter::BestfitOverflow => "sched.bestfit.overflow",
            Counter::BestfitMemTierFallback => "sched.bestfit.mem_tier_fallback",
            Counter::LocalsearchMovesAccepted => "sched.localsearch.moves_accepted",
            Counter::LocalsearchMovesRejected => "sched.localsearch.moves_rejected",
            Counter::LocalsearchCandidatesRescored => "sched.localsearch.candidates_rescored",
            Counter::LocalsearchVmRescans => "sched.localsearch.vm_rescans",
            Counter::LocalsearchIndexUpdates => "sched.localsearch.index_updates",
            Counter::IndexNearShortlistHits => "sched.index.near_shortlist_hits",
            Counter::ExactBudgetExhausted => "sched.exact.budget_exhausted",
            Counter::HierRounds => "sched.hier.rounds",
            Counter::HierShards => "sched.hier.shards",
            Counter::HierOfferedHosts => "sched.hier.offered_hosts",
            Counter::HierGlobalVms => "sched.hier.global_vms",
            Counter::HierConsolidationMoves => "sched.hier.consolidation_moves",
            Counter::ImportRowsRead => "import.rows_read",
            Counter::ImportRowsDropped => "import.rows_dropped",
            Counter::ServeDegradedRounds => "serve.degraded_rounds",
            Counter::ServeTrimmedRounds => "serve.trimmed_rounds",
            Counter::ServeFeedPolls => "serve.feed_polls",
            Counter::ServeSnapshots => "serve.snapshots",
        }
    }

    /// Whether the counter belongs in a simulation run's flushed
    /// metrics. Importer counters don't (they are bumped outside
    /// runs), and neither do the daemon-side serve counters (polls and
    /// snapshots follow wall-clock pacing, which must never enter a
    /// report). `ServeDegradedRounds` *is* flushed: the engine bumps it
    /// deterministically per degraded round, so a manifest replay
    /// reproduces it bit-for-bit.
    fn in_run_flush(self) -> bool {
        !matches!(
            self,
            Counter::ImportRowsRead
                | Counter::ImportRowsDropped
                | Counter::ServeFeedPolls
                | Counter::ServeSnapshots
        )
    }
}

/// Point-in-time values; last write wins. Written only from the run
/// thread (per-tick state), so no ordering subtleties.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Gauge {
    /// Powered-on PMs at the final tick.
    SimActivePms,
    /// Backlogged VMs awaiting placement at the final tick.
    SimPendingVms,
}

impl Gauge {
    pub const ALL: [Gauge; 2] = [Gauge::SimActivePms, Gauge::SimPendingVms];

    pub fn name(self) -> &'static str {
        match self {
            Gauge::SimActivePms => "sim.active_pms_final",
            Gauge::SimPendingVms => "sim.pending_vms_final",
        }
    }
}

/// Fixed-bucket histograms. Buckets are cumulative-exclusive: a sample
/// lands in the first bucket whose upper edge is `>=` the value, else
/// in the overflow bucket.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Hist {
    /// Per-VM-tick SLA satisfaction in `[0, 1]`.
    SimVmSla,
}

/// Bucket count per histogram (3 edges + overflow).
pub const HIST_BUCKETS: usize = 4;

impl Hist {
    pub const ALL: [Hist; 1] = [Hist::SimVmSla];

    pub fn name(self) -> &'static str {
        match self {
            Hist::SimVmSla => "sim.vm_sla",
        }
    }

    pub fn edges(self) -> [f64; HIST_BUCKETS - 1] {
        match self {
            Hist::SimVmSla => [0.50, 0.90, 0.99],
        }
    }

    pub fn bucket_labels(self) -> [&'static str; HIST_BUCKETS] {
        match self {
            Hist::SimVmSla => ["le_0_50", "le_0_90", "le_0_99", "gt_0_99"],
        }
    }
}

/// Wall-clock stats for one span path, accumulated across a flush
/// interval (one tick, in the simulation loop).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SpanStat {
    pub count: u64,
    pub total_ns: u64,
}

const COUNTERS: usize = Counter::ALL.len();
const GAUGES: usize = Gauge::ALL.len();
const HISTS: usize = Hist::ALL.len();

/// One run's worth of metrics and (when tracing) span timings and
/// buffered trace lines. Shared across worker threads via `Arc`.
pub struct Collector {
    timing: bool,
    counters: [AtomicU64; COUNTERS],
    gauges: [AtomicU64; GAUGES],
    hists: [[AtomicU64; HIST_BUCKETS]; HISTS],
    spans: Mutex<BTreeMap<String, SpanStat>>,
    events: Mutex<Vec<String>>,
}

impl Collector {
    /// `timing` turns the span layer on (wall-clock reads + path
    /// bookkeeping); leave it off for untraced runs so spans cost one
    /// thread-local check.
    pub fn new(timing: bool) -> Self {
        Collector {
            timing,
            counters: std::array::from_fn(|_| AtomicU64::new(0)),
            gauges: std::array::from_fn(|_| AtomicU64::new(0f64.to_bits())),
            hists: std::array::from_fn(|_| std::array::from_fn(|_| AtomicU64::new(0))),
            spans: Mutex::new(BTreeMap::new()),
            events: Mutex::new(Vec::new()),
        }
    }

    pub fn timing(&self) -> bool {
        self.timing
    }

    pub fn add(&self, c: Counter, delta: u64) {
        self.counters[c as usize].fetch_add(delta, Ordering::Relaxed);
    }

    pub fn counter(&self, c: Counter) -> u64 {
        self.counters[c as usize].load(Ordering::Relaxed)
    }

    /// All counter values, indexable by `Counter as usize` — the
    /// per-tick trace delta snapshot.
    pub fn counter_snapshot(&self) -> [u64; COUNTERS] {
        std::array::from_fn(|i| self.counters[i].load(Ordering::Relaxed))
    }

    pub fn gauge_set(&self, g: Gauge, value: f64) {
        self.gauges[g as usize].store(value.to_bits(), Ordering::Relaxed);
    }

    pub fn gauge(&self, g: Gauge) -> f64 {
        f64::from_bits(self.gauges[g as usize].load(Ordering::Relaxed))
    }

    pub fn observe(&self, h: Hist, value: f64) {
        let edges = h.edges();
        let mut bucket = HIST_BUCKETS - 1;
        for (i, edge) in edges.iter().enumerate() {
            if value <= *edge {
                bucket = i;
                break;
            }
        }
        self.hists[h as usize][bucket].fetch_add(1, Ordering::Relaxed);
    }

    pub fn hist_buckets(&self, h: Hist) -> [u64; HIST_BUCKETS] {
        std::array::from_fn(|i| self.hists[h as usize][i].load(Ordering::Relaxed))
    }

    pub(crate) fn record_span(&self, path: String, elapsed_ns: u64) {
        let mut spans = self.spans.lock().expect("span map poisoned");
        let stat = spans.entry(path).or_default();
        stat.count += 1;
        stat.total_ns += elapsed_ns;
    }

    /// Drains the span stats accumulated since the previous drain,
    /// sorted by path — the per-tick trace flush.
    pub fn take_spans(&self) -> BTreeMap<String, SpanStat> {
        std::mem::take(&mut self.spans.lock().expect("span map poisoned"))
    }

    /// Appends a pre-formatted JSONL line to the run's trace buffer.
    pub fn push_event(&self, line: String) {
        self.events
            .lock()
            .expect("event buffer poisoned")
            .push(line);
    }

    /// Drains the buffered trace lines (flushed to the ambient sink in
    /// arm order by the experiment runner, never directly by the run —
    /// parallel arms would interleave).
    pub fn take_events(&self) -> Vec<String> {
        std::mem::take(&mut self.events.lock().expect("event buffer poisoned"))
    }

    /// The fixed, sorted `(name, value)` schema a run flushes into its
    /// outcome: every non-importer counter, every gauge, every
    /// histogram bucket — zeros included, so reports and goldens have
    /// identical metric sets whatever the policy exercised.
    pub fn run_metrics(&self) -> Vec<(String, f64)> {
        let mut out: Vec<(String, f64)> = Vec::new();
        for c in Counter::ALL {
            if c.in_run_flush() {
                out.push((c.name().to_string(), self.counter(c) as f64));
            }
        }
        for g in Gauge::ALL {
            out.push((g.name().to_string(), self.gauge(g)));
        }
        for h in Hist::ALL {
            let buckets = self.hist_buckets(h);
            for (label, value) in h.bucket_labels().iter().zip(buckets) {
                out.push((format!("{}.{label}", h.name()), value as f64));
            }
        }
        out.sort_by(|a, b| a.0.cmp(&b.0));
        out
    }
}

/// Number of metrics [`Collector::run_metrics`] flushes — the schema
/// width experiment tests pin against.
pub const RUN_METRIC_COUNT: usize =
    COUNTERS - 4 /* import.*, serve daemon-side */ + GAUGES + HISTS * HIST_BUCKETS;

thread_local! {
    static CURRENT: RefCell<Option<Arc<Collector>>> = const { RefCell::new(None) };
}

/// The collector installed on this thread, if any.
pub fn current() -> Option<Arc<Collector>> {
    CURRENT.with(|c| c.borrow().clone())
}

/// Bumps `c` on the current thread's collector; no-op without one.
pub fn add(c: Counter, delta: u64) {
    CURRENT.with(|cell| {
        if let Some(collector) = cell.borrow().as_ref() {
            collector.add(c, delta);
        }
    });
}

/// Sets gauge `g` on the current thread's collector; no-op without one.
pub fn gauge_set(g: Gauge, value: f64) {
    CURRENT.with(|cell| {
        if let Some(collector) = cell.borrow().as_ref() {
            collector.gauge_set(g, value);
        }
    });
}

/// Observes `value` into histogram `h`; no-op without a collector.
pub fn observe(h: Hist, value: f64) {
    CURRENT.with(|cell| {
        if let Some(collector) = cell.borrow().as_ref() {
            collector.observe(h, value);
        }
    });
}

/// RAII installation of a collector on the current thread. Saves and
/// restores the previously installed collector, so nested runs (a
/// training simulation inside an experiment arm) stack cleanly.
pub struct CollectorGuard {
    prev: Option<Arc<Collector>>,
}

impl CollectorGuard {
    pub fn install(collector: Arc<Collector>) -> Self {
        register_par_hook();
        let prev = CURRENT.with(|c| c.borrow_mut().replace(collector));
        CollectorGuard { prev }
    }
}

impl Drop for CollectorGuard {
    fn drop(&mut self) {
        CURRENT.with(|c| *c.borrow_mut() = self.prev.take());
    }
}

/// Registers the `simcore::par` worker-context hook (once per process):
/// workers inherit the spawning thread's collector and, when timing,
/// its span path as a prefix — per-shard spans inside
/// `hierarchical_round` nest under the round's path and shard counters
/// land in the run's collector at any `--jobs` budget.
fn register_par_hook() {
    static ONCE: Once = Once::new();
    ONCE.call_once(|| pamdc_simcore::par::register_worker_context(capture_context));
}

fn capture_context() -> Option<pamdc_simcore::par::ContextInstaller> {
    let collector = current()?;
    let prefix = if collector.timing() {
        crate::span::current_path()
    } else {
        None
    };
    Some(Box::new(move || {
        CURRENT.with(|c| *c.borrow_mut() = Some(collector.clone()));
        crate::span::seed_prefix(prefix.clone());
    }))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate_and_flush_sorted() {
        let c = Collector::new(false);
        c.add(Counter::SimMigrations, 3);
        c.add(Counter::SimMigrations, 2);
        c.gauge_set(Gauge::SimActivePms, 7.0);
        c.observe(Hist::SimVmSla, 0.95);
        c.observe(Hist::SimVmSla, 1.0);
        c.observe(Hist::SimVmSla, 0.1);
        let metrics = c.run_metrics();
        assert_eq!(metrics.len(), RUN_METRIC_COUNT);
        assert!(
            metrics.windows(2).all(|w| w[0].0 < w[1].0),
            "sorted, unique"
        );
        let get = |k: &str| metrics.iter().find(|(n, _)| n == k).map(|(_, v)| *v);
        assert_eq!(get("sim.migrations"), Some(5.0));
        assert_eq!(get("sim.active_pms_final"), Some(7.0));
        assert_eq!(get("sim.vm_sla.le_0_50"), Some(1.0));
        assert_eq!(get("sim.vm_sla.le_0_99"), Some(1.0));
        assert_eq!(get("sim.vm_sla.gt_0_99"), Some(1.0));
        assert_eq!(get("sim.vm_sla.le_0_90"), Some(0.0));
        // Importer counters stay out of the run flush.
        assert_eq!(get("import.rows_read"), None);
    }

    #[test]
    fn guard_nests_and_restores() {
        let outer = Arc::new(Collector::new(false));
        let inner = Arc::new(Collector::new(false));
        assert!(current().is_none());
        {
            let _g1 = CollectorGuard::install(outer.clone());
            add(Counter::SimTicks, 1);
            {
                let _g2 = CollectorGuard::install(inner.clone());
                add(Counter::SimTicks, 10);
            }
            add(Counter::SimTicks, 1);
        }
        assert!(current().is_none());
        assert_eq!(outer.counter(Counter::SimTicks), 2);
        assert_eq!(inner.counter(Counter::SimTicks), 10);
    }

    #[test]
    fn increments_without_collector_are_dropped() {
        add(Counter::SimTicks, 99); // must not panic, must not leak anywhere
        assert!(current().is_none());
    }

    // Counters bumped inside parallel_map workers land in the
    // installing thread's collector at any worker budget — the PR 5
    // `parallel_map_bounded` determinism guarantee extended to obs.
    #[test]
    fn worker_counters_bit_identical_at_any_budget() {
        let mut totals = Vec::new();
        for jobs in [1usize, 2, 4, 8] {
            let collector = Arc::new(Collector::new(false));
            let _g = CollectorGuard::install(collector.clone());
            let items: Vec<u64> = (0..50).collect();
            let out = pamdc_simcore::par::parallel_map_bounded(items, Some(jobs), |i| {
                add(Counter::LocalsearchMovesAccepted, i % 3);
                observe(Hist::SimVmSla, (i as f64) / 50.0);
                i
            });
            assert_eq!(out.len(), 50);
            totals.push((
                collector.counter(Counter::LocalsearchMovesAccepted),
                collector.hist_buckets(Hist::SimVmSla),
            ));
        }
        assert!(totals.windows(2).all(|w| w[0] == w[1]), "{totals:?}");
        let expected: u64 = (0..50u64).map(|i| i % 3).sum();
        assert_eq!(totals[0].0, expected);
    }

    // join()'s spawned arm inherits the collector too.
    #[test]
    fn join_arm_inherits_collector() {
        let collector = Arc::new(Collector::new(false));
        let _g = CollectorGuard::install(collector.clone());
        let (a, b) = pamdc_simcore::par::join(
            || {
                add(Counter::SimRounds, 5);
                1
            },
            || {
                add(Counter::SimRounds, 7);
                2
            },
        );
        assert_eq!((a, b), (1, 2));
        assert_eq!(collector.counter(Counter::SimRounds), 12);
    }
}
