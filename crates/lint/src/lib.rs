//! # pamdc-lint — the repo-aware static-analysis pass
//!
//! Dependency-free (like `perf-gate`) and hand-rolled at the line/token
//! level (no `syn` — the offline-shim policy bans registry crates).
//! Encodes the source-level contracts every runtime guarantee rests on:
//!
//! | rule id           | contract                                          |
//! |-------------------|---------------------------------------------------|
//! | `wall-clock`      | `Instant::now`/`SystemTime`/`thread::sleep` only in the allowlist |
//! | `unordered-emit`  | no `HashMap`/`HashSet` in report/metric/spec-emit modules |
//! | `no-panic-parser` | no `unwrap`/`expect`/`panic!`/indexing in streaming parsers |
//! | `spec-docs`       | every parsed spec key appears in the scenario docs |
//! | `obs-schema`      | `Counter::ALL` arithmetic matches the golden `obs.*` blocks |
//!
//! Violations are suppressed line-by-line with
//! `// pamdc-lint: allow(<rule>) -- <why>` (same line or the line
//! above); a suppression that fires nothing is itself an error, so
//! stale allows cannot accumulate. See `docs/LINTING.md`.

pub mod rules;
pub mod source;

use source::SourceFile;
use std::collections::BTreeMap;
use std::path::{Path, PathBuf};

/// One diagnostic: `file:line · rule · message`.
#[derive(Debug, Clone)]
pub struct Violation {
    /// Workspace-relative path, forward slashes.
    pub file: String,
    /// 1-based line.
    pub line: usize,
    /// Rule id (one of [`rules::ALL_RULES`] or a meta rule).
    pub rule: &'static str,
    /// What went wrong and how to fix it.
    pub message: String,
}

impl Violation {
    /// Renders the human-readable diagnostic line.
    pub fn render(&self) -> String {
        format!(
            "{}:{} · {} · {}",
            self.file, self.line, self.rule, self.message
        )
    }
}

/// A parsed `// pamdc-lint: allow(<rule>) -- <why>` directive.
#[derive(Debug, Clone)]
pub struct Allow {
    /// File the directive sits in.
    pub file: String,
    /// Line of the directive itself.
    pub line: usize,
    /// The rule it silences.
    pub rule: String,
    /// The justification after `--`.
    pub why: String,
    /// Whether any violation was actually silenced by it.
    pub used: bool,
}

/// Result of a full scan.
#[derive(Debug, Default)]
pub struct Report {
    /// Unsuppressed violations (includes meta-rule findings like
    /// unused or malformed allows). Non-empty ⇒ the pass fails.
    pub violations: Vec<Violation>,
    /// Violations silenced by a justified allow (kept for the JSON
    /// report — a suppression is visible, not invisible).
    pub suppressed: Vec<Violation>,
    /// Every allow directive found, with its used flag resolved.
    pub allows: Vec<Allow>,
    /// Number of `.rs` files scanned.
    pub files_scanned: usize,
}

/// Where each rule applies, as workspace-relative path prefixes.
/// `Profile::repo()` is the checked-in contract for this repository;
/// the fixture tree under `crates/lint/fixtures/` reuses the same
/// profile so fixtures prove exactly what CI enforces.
pub struct Profile {
    /// Files allowed to touch wall-clock APIs (rule 1 applies
    /// everywhere else). The `DeadlineGovernor` needs no entry: it is a
    /// pure state machine fed measured milliseconds by the serve loop.
    pub wall_clock_allow: Vec<&'static str>,
    /// Emit-path modules rule 2 scans.
    pub emit_paths: Vec<&'static str>,
    /// Streaming-parser modules rule 3 scans.
    pub parser_paths: Vec<&'static str>,
    /// The spec Reader file rule 4 anchors on.
    pub spec_file: &'static str,
    /// Docs allowed to satisfy rule 4.
    pub doc_files: Vec<&'static str>,
    /// The metrics registry rule 5 anchors on.
    pub metrics_file: &'static str,
    /// Directory of golden snapshots rule 5 cross-checks.
    pub golden_dir: &'static str,
}

impl Profile {
    /// The contract for this repository.
    pub fn repo() -> Profile {
        Profile {
            wall_clock_allow: vec![
                // The obs wall-clock seams: span timings (JSONL-only)
                // and the Stopwatch experiments report through.
                "crates/obs/src/span.rs",
                "crates/obs/src/clock.rs",
                // The serve daemon paces real time by definition.
                "crates/cli/src/serve.rs",
                // Bench harnesses measure wall time by nature.
                "crates/bench/",
                "crates/shims/criterion/",
            ],
            emit_paths: vec![
                "crates/core/src/report.rs",
                "crates/obs/src/",
                "crates/scenario/src/output.rs",
                "crates/scenario/src/toml.rs",
                "crates/scenario/src/spec.rs",
                "crates/scenario/src/campaign.rs",
                "crates/scenario/src/runner.rs",
            ],
            parser_paths: vec![
                "crates/workload/src/import/",
                "crates/workload/src/trace.rs",
                "crates/workload/src/tail.rs",
                "crates/scenario/src/toml.rs",
            ],
            spec_file: "crates/scenario/src/spec.rs",
            doc_files: vec!["docs/SCENARIOS.md", "docs/SERVE.md"],
            metrics_file: "crates/obs/src/metrics.rs",
            golden_dir: "crates/scenario/tests/golden",
        }
    }
}

/// Directory names never descended into: build output, fixtures (which
/// contain deliberate violations), test/bench sources (rules police
/// production code; tests are exempt wholesale).
const SKIP_DIRS: [&str; 7] = [
    "target", "fixtures", "tests", "benches", "examples", "golden", ".git",
];

/// Runs the full pass over the workspace at `root`.
pub fn run(root: &Path, profile: &Profile) -> Result<Report, String> {
    let mut files = Vec::new();
    for top in ["src", "crates"] {
        let dir = root.join(top);
        if dir.is_dir() {
            collect_rs(&dir, root, &mut files)?;
        }
    }
    files.sort();

    let mut report = Report {
        files_scanned: files.len(),
        ..Report::default()
    };
    let mut allows: Vec<Allow> = Vec::new();
    let mut raw: Vec<Violation> = Vec::new();

    let docs: Vec<(String, String)> = profile
        .doc_files
        .iter()
        .map(|rel| {
            let text = std::fs::read_to_string(root.join(rel)).unwrap_or_default();
            (rel.to_string(), text)
        })
        .collect();
    let goldens = read_goldens(&root.join(profile.golden_dir))?;

    for rel in &files {
        let text =
            std::fs::read_to_string(root.join(rel)).map_err(|e| format!("read {rel}: {e}"))?;
        let sf = SourceFile::parse(rel.clone(), &text);
        allows.extend(parse_allows(&sf, &mut raw));

        let allowlisted = profile.wall_clock_allow.iter().any(|p| rel.starts_with(p));
        if !allowlisted {
            raw.extend(rules::wall_clock(&sf));
        }
        if profile.emit_paths.iter().any(|p| rel.starts_with(p)) {
            raw.extend(rules::unordered_emit(&sf));
        }
        if profile.parser_paths.iter().any(|p| rel.starts_with(p)) {
            raw.extend(rules::no_panic_parser(&sf));
        }
        if rel == profile.spec_file {
            raw.extend(rules::spec_docs(&sf, &docs));
        }
        if rel == profile.metrics_file {
            raw.extend(rules::obs_schema(&sf, &goldens));
        }
    }

    // Resolve suppressions: an allow silences matching-rule violations
    // on its own line or the line directly below it.
    let mut by_site: BTreeMap<(String, usize, String), Vec<usize>> = BTreeMap::new();
    for (i, a) in allows.iter().enumerate() {
        for covered in [a.line, a.line + 1] {
            by_site
                .entry((a.file.clone(), covered, a.rule.clone()))
                .or_default()
                .push(i);
        }
    }
    for v in raw {
        let key = (v.file.clone(), v.line, v.rule.to_string());
        if let Some(idxs) = by_site.get(&key) {
            for &i in idxs {
                allows[i].used = true;
            }
            report.suppressed.push(v);
        } else {
            report.violations.push(v);
        }
    }
    for a in &allows {
        if !a.used {
            report.violations.push(Violation {
                file: a.file.clone(),
                line: a.line,
                rule: "unused-allow",
                message: format!(
                    "allow({}) suppresses nothing; remove the stale directive",
                    a.rule
                ),
            });
        }
    }
    report.allows = allows;
    report
        .violations
        .sort_by(|a, b| (&a.file, a.line, a.rule).cmp(&(&b.file, b.line, b.rule)));
    Ok(report)
}

fn collect_rs(dir: &Path, root: &Path, out: &mut Vec<String>) -> Result<(), String> {
    let entries = std::fs::read_dir(dir).map_err(|e| format!("read_dir {}: {e}", dir.display()))?;
    for entry in entries {
        let entry = entry.map_err(|e| format!("read_dir {}: {e}", dir.display()))?;
        let path = entry.path();
        let name = entry.file_name().to_string_lossy().to_string();
        if path.is_dir() {
            if SKIP_DIRS.contains(&name.as_str()) {
                continue;
            }
            collect_rs(&path, root, out)?;
        } else if name.ends_with(".rs") {
            let rel = path
                .strip_prefix(root)
                .map_err(|_| "path outside root".to_string())?
                .to_string_lossy()
                .replace('\\', "/");
            out.push(rel);
        }
    }
    Ok(())
}

fn read_goldens(dir: &Path) -> Result<Vec<(String, String)>, String> {
    let mut out = Vec::new();
    if !dir.is_dir() {
        return Ok(out);
    }
    let entries = std::fs::read_dir(dir).map_err(|e| format!("read_dir {}: {e}", dir.display()))?;
    for entry in entries {
        let entry = entry.map_err(|e| format!("read_dir {}: {e}", dir.display()))?;
        let name = entry.file_name().to_string_lossy().to_string();
        if name.ends_with(".golden") {
            let text =
                std::fs::read_to_string(entry.path()).map_err(|e| format!("read {name}: {e}"))?;
            out.push((name, text));
        }
    }
    out.sort();
    Ok(out)
}

/// Extracts `pamdc-lint: allow(<rule>) -- <why>` directives from a
/// file's line comments. Malformed directives (unknown rule, missing
/// justification) become `malformed-allow` violations immediately.
fn parse_allows(sf: &SourceFile, bad: &mut Vec<Violation>) -> Vec<Allow> {
    let mut out = Vec::new();
    for (i, line) in sf.lines.iter().enumerate() {
        let comment = line.comment.trim();
        let Some(rest) = comment.strip_prefix("pamdc-lint:") else {
            continue;
        };
        let rest = rest.trim_start();
        let parsed = rest.strip_prefix("allow(").and_then(|r| {
            let (rule, tail) = r.split_once(')')?;
            let why = tail.trim_start().strip_prefix("--")?.trim();
            Some((rule.trim().to_string(), why.to_string()))
        });
        match parsed {
            Some((rule, why)) if rules::ALL_RULES.contains(&rule.as_str()) && !why.is_empty() => {
                out.push(Allow {
                    file: sf.rel.clone(),
                    line: i + 1,
                    rule,
                    why,
                    used: false,
                });
            }
            _ => bad.push(Violation {
                file: sf.rel.clone(),
                line: i + 1,
                rule: "malformed-allow",
                message: "expected `pamdc-lint: allow(<rule>) -- <justification>` \
                          with a known rule and a non-empty justification"
                    .to_string(),
            }),
        }
    }
    out
}

/// Renders the machine-readable JSON report (hand-rolled, same idiom as
/// `perf-gate`'s emissions).
pub fn to_json(report: &Report) -> String {
    let mut out = String::from("{\n  \"v\": 1,\n");
    out.push_str(&format!(
        "  \"files_scanned\": {},\n  \"violations\": [",
        report.files_scanned
    ));
    for (i, v) in report.violations.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "\n    {{\"file\": \"{}\", \"line\": {}, \"rule\": \"{}\", \"message\": \"{}\"}}",
            esc(&v.file),
            v.line,
            esc(v.rule),
            esc(&v.message)
        ));
    }
    out.push_str(if report.violations.is_empty() {
        "],\n"
    } else {
        "\n  ],\n"
    });
    out.push_str("  \"suppressions\": [");
    for (i, a) in report.allows.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "\n    {{\"file\": \"{}\", \"line\": {}, \"rule\": \"{}\", \"why\": \"{}\", \"used\": {}}}",
            esc(&a.file),
            a.line,
            esc(&a.rule),
            esc(&a.why),
            a.used
        ));
    }
    out.push_str(if report.allows.is_empty() {
        "]\n}\n"
    } else {
        "\n  ]\n}\n"
    });
    out
}

fn esc(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Locates the workspace root: the nearest ancestor of `start` whose
/// `Cargo.toml` declares `[workspace]`.
pub fn find_workspace_root(start: &Path) -> Option<PathBuf> {
    let mut dir = Some(start.to_path_buf());
    while let Some(d) = dir {
        let manifest = d.join("Cargo.toml");
        if let Ok(text) = std::fs::read_to_string(&manifest) {
            if text.contains("[workspace]") {
                return Some(d);
            }
        }
        dir = d.parent().map(|p| p.to_path_buf());
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn allow_parsing_and_meta_rules() {
        let sf = SourceFile::parse(
            "x.rs".into(),
            "a(); // pamdc-lint: allow(wall-clock) -- daemon pacing\n\
             b(); // pamdc-lint: allow(wall-clock)\n\
             c(); // pamdc-lint: allow(bogus-rule) -- because\n",
        );
        let mut bad = Vec::new();
        let allows = parse_allows(&sf, &mut bad);
        assert_eq!(allows.len(), 1);
        assert_eq!(allows[0].rule, "wall-clock");
        assert_eq!(allows[0].why, "daemon pacing");
        assert_eq!(bad.len(), 2);
        assert!(bad.iter().all(|v| v.rule == "malformed-allow"));
    }

    #[test]
    fn json_escapes_and_shape() {
        let report = Report {
            violations: vec![Violation {
                file: "a\"b.rs".into(),
                line: 3,
                rule: "wall-clock",
                message: "x\ny".into(),
            }],
            suppressed: vec![],
            allows: vec![],
            files_scanned: 1,
        };
        let json = to_json(&report);
        assert!(json.contains("a\\\"b.rs"));
        assert!(json.contains("x\\ny"));
        assert!(json.contains("\"files_scanned\": 1"));
    }
}
