//! Line-level source model for the scanner.
//!
//! `pamdc-lint` deliberately has no `syn` (the offline-shim policy bans
//! registry dependencies), so rules work on a per-line view of each
//! file where string/char-literal contents and comments have been
//! blanked out of the *code* channel and line comments are preserved in
//! a separate *comment* channel (where suppression directives live).
//! Blanking keeps byte offsets stable, so diagnostics point at real
//! columns, and it is what makes naive token matches like
//! `Instant::now` sound: the only way the token survives into the code
//! channel is by being actual code.

/// One classified source line.
#[derive(Debug)]
pub struct Line {
    /// The untouched source line (no trailing newline).
    pub raw: String,
    /// The line with string/char contents and comments replaced by
    /// spaces. String *delimiters* are kept so quote-adjacent tokens
    /// still read naturally.
    pub code: String,
    /// The text of a `//` comment on this line, if any (without the
    /// slashes). Block-comment text is dropped: suppression directives
    /// must be line comments.
    pub comment: String,
}

/// A classified file: lines plus the `#[cfg(test)]`-region map.
#[derive(Debug)]
pub struct SourceFile {
    /// Workspace-relative path with forward slashes.
    pub rel: String,
    /// Classified lines, index 0 = line 1.
    pub lines: Vec<Line>,
    /// `in_test[i]` — line `i` sits inside a `#[cfg(test)]` item.
    pub in_test: Vec<bool>,
}

impl SourceFile {
    /// Classifies `text` into the line model.
    pub fn parse(rel: String, text: &str) -> SourceFile {
        let lines = classify(text);
        let in_test = test_flags(&lines);
        SourceFile {
            rel,
            lines,
            in_test,
        }
    }
}

/// Lexer state carried across lines (strings and block comments span
/// physical lines in Rust).
enum Mode {
    Code,
    /// Inside `/* ... */`, with nesting depth.
    Block(u32),
    /// Inside a normal `"..."` string.
    Str,
    /// Inside `r"..."` / `r#"..."#` with the given hash count.
    RawStr(usize),
}

fn classify(text: &str) -> Vec<Line> {
    let mut mode = Mode::Code;
    let mut out = Vec::new();
    for raw in text.lines() {
        let b = raw.as_bytes();
        let mut code = String::with_capacity(raw.len());
        let mut comment = String::new();
        let mut i = 0;
        while i < b.len() {
            match mode {
                Mode::Code => match b[i] {
                    b'/' if b.get(i + 1) == Some(&b'/') => {
                        comment = raw[i + 2..].to_string();
                        code.push_str(&" ".repeat(b.len() - i));
                        i = b.len();
                    }
                    b'/' if b.get(i + 1) == Some(&b'*') => {
                        mode = Mode::Block(1);
                        code.push_str("  ");
                        i += 2;
                    }
                    b'"' => {
                        mode = Mode::Str;
                        code.push('"');
                        i += 1;
                    }
                    b'r' | b'b' if !prev_is_ident(&code) => {
                        // Possible raw/byte string prefix.
                        let (consumed, new_mode) = string_prefix(&b[i..]);
                        if consumed > 0 {
                            code.push_str(&" ".repeat(consumed));
                            i += consumed;
                            mode = new_mode;
                        } else {
                            code.push(b[i] as char);
                            i += 1;
                        }
                    }
                    b'\'' => {
                        // Char literal vs lifetime. A literal is either
                        // `'\...'` or `'X'` (any single char / UTF-8
                        // sequence, closed within a few bytes).
                        let lit_len = char_literal_len(&b[i..]);
                        if lit_len > 0 {
                            code.push('\'');
                            code.push_str(&" ".repeat(lit_len - 1));
                            i += lit_len;
                        } else {
                            code.push('\'');
                            i += 1;
                        }
                    }
                    c => {
                        code.push(c as char);
                        i += 1;
                    }
                },
                Mode::Block(depth) => {
                    if b[i] == b'/' && b.get(i + 1) == Some(&b'*') {
                        mode = Mode::Block(depth + 1);
                        code.push_str("  ");
                        i += 2;
                    } else if b[i] == b'*' && b.get(i + 1) == Some(&b'/') {
                        mode = if depth <= 1 {
                            Mode::Code
                        } else {
                            Mode::Block(depth - 1)
                        };
                        code.push_str("  ");
                        i += 2;
                    } else {
                        code.push(' ');
                        i += 1;
                    }
                }
                Mode::Str => match b[i] {
                    b'\\' => {
                        code.push_str("  ");
                        i += 2.min(b.len() - i);
                    }
                    b'"' => {
                        mode = Mode::Code;
                        code.push('"');
                        i += 1;
                    }
                    _ => {
                        code.push(' ');
                        i += 1;
                    }
                },
                Mode::RawStr(hashes) => {
                    if b[i] == b'"'
                        && b[i + 1..].iter().take_while(|&&c| c == b'#').count() >= hashes
                    {
                        mode = Mode::Code;
                        code.push('"');
                        code.push_str(&" ".repeat(hashes));
                        i += 1 + hashes;
                    } else {
                        code.push(' ');
                        i += 1;
                    }
                }
            }
        }
        // A string can only continue across lines when escaped or raw;
        // normal `Mode::Str` at EOL is a continued multi-line string —
        // Rust allows it, so the mode simply carries over.
        out.push(Line {
            raw: raw.to_string(),
            code,
            comment,
        });
    }
    out
}

/// Whether the last pushed code char continues an identifier (so an
/// `r` / `b` here is part of a name like `var`, not a string prefix).
fn prev_is_ident(code: &str) -> bool {
    code.chars()
        .last()
        .is_some_and(|c| c.is_ascii_alphanumeric() || c == '_')
}

/// Recognizes `r"`, `br"`, `b"`, `r#"`, `br##"` … at the start of `b`.
/// Returns (bytes consumed through the opening quote, mode to enter);
/// consumed = 0 when this is not a string prefix.
fn string_prefix(b: &[u8]) -> (usize, Mode) {
    let mut i = 0;
    if b.get(i) == Some(&b'b') {
        i += 1;
    }
    let raw = b.get(i) == Some(&b'r');
    if raw {
        i += 1;
    }
    let hashes = b[i..].iter().take_while(|&&c| c == b'#').count();
    if !raw && hashes > 0 {
        return (0, Mode::Code);
    }
    i += hashes;
    if b.get(i) == Some(&b'"') {
        let mode = if raw { Mode::RawStr(hashes) } else { Mode::Str };
        (i + 1, mode)
    } else {
        (0, Mode::Code)
    }
}

/// Length of a char literal starting at `b[0] == b'\''`, or 0 when this
/// is a lifetime.
fn char_literal_len(b: &[u8]) -> usize {
    if b.get(1) == Some(&b'\\') {
        // Escaped: scan to the closing quote.
        for (j, &c) in b.iter().enumerate().skip(2) {
            if c == b'\'' {
                return j + 1;
            }
            if j > 12 {
                break; // not a literal we recognize
            }
        }
        return 0;
    }
    // `'X'` where X may be multi-byte UTF-8: closing quote within 5.
    for (j, &c) in b.iter().enumerate().skip(2).take(4) {
        if c == b'\'' {
            return j + 1;
        }
    }
    0
}

/// Marks every line that sits inside a `#[cfg(test)]` item (the
/// attribute line, the item's braces, and everything between). Works by
/// brace counting on the code channel: when the attribute is pending,
/// the next `{` opens a region that closes when depth returns to its
/// entry value.
fn test_flags(lines: &[Line]) -> Vec<bool> {
    let mut flags = vec![false; lines.len()];
    let mut depth: i64 = 0;
    let mut pending = false;
    let mut region_entry: Option<i64> = None;
    for (idx, line) in lines.iter().enumerate() {
        let code = &line.code;
        if region_entry.is_none()
            && (code.contains("#[cfg(test)]") || code.contains("#[cfg(all(test"))
        {
            pending = true;
        }
        let mut mark = pending || region_entry.is_some();
        for c in code.bytes() {
            match c {
                b'{' => {
                    if pending && region_entry.is_none() {
                        region_entry = Some(depth);
                        pending = false;
                        mark = true;
                    }
                    depth += 1;
                }
                b'}' => {
                    depth -= 1;
                    if region_entry.is_some_and(|d| depth <= d) {
                        region_entry = None;
                        mark = true;
                    }
                }
                // `#[cfg(test)] mod x;` — applies to another file.
                b';' if pending && region_entry.is_none() => {
                    pending = false;
                }
                _ => {}
            }
        }
        flags[idx] = mark || region_entry.is_some();
    }
    flags
}

#[cfg(test)]
mod tests {
    use super::*;

    fn code_of(text: &str) -> Vec<String> {
        classify(text).into_iter().map(|l| l.code).collect()
    }

    #[test]
    fn strings_and_comments_are_blanked() {
        let c = code_of("let x = \"Instant::now\"; // Instant::now\nuse a;");
        assert!(!c[0].contains("Instant"));
        assert!(c[0].starts_with("let x = \""));
        assert_eq!(c[1], "use a;");
        let lines = classify("foo(); // pamdc-lint: allow(x) -- y");
        assert_eq!(lines[0].comment.trim(), "pamdc-lint: allow(x) -- y");
    }

    #[test]
    fn raw_strings_and_chars() {
        let c = code_of("let s = r#\"a \"quoted\" b\"#; s[0];");
        assert!(!c[0].contains("quoted"));
        assert!(c[0].contains("s[0];"));
        let c = code_of("let c = 'x'; let l: &'a str = y; let e = '\\n';");
        assert!(c[0].contains("let l: &'a str = y"));
        assert!(!c[0].contains('x'));
        assert!(!c[0].contains("\\n"));
    }

    #[test]
    fn block_comments_nest_and_span_lines() {
        let c = code_of("a(); /* x /* y */ z\nstill comment */ b();");
        assert!(c[0].starts_with("a();"));
        assert!(!c[0].contains('z'));
        assert!(!c[1].contains("still"));
        assert!(c[1].contains("b();"));
    }

    #[test]
    fn cfg_test_regions_are_marked() {
        let text = "fn live() {}\n#[cfg(test)]\nmod tests {\n    fn t() { x.unwrap(); }\n}\nfn after() {}\n";
        let lines = classify(text);
        let flags = test_flags(&lines);
        assert_eq!(flags, vec![false, true, true, true, true, false]);
    }

    #[test]
    fn cfg_test_on_single_item() {
        let text = "#[cfg(test)]\nfn helper() {\n    boom();\n}\nfn live() {}\n";
        let flags = test_flags(&classify(text));
        assert_eq!(flags, vec![true, true, true, true, false]);
    }
}
