//! `pamdc-lint` — run the repo contracts over the workspace.
//!
//! ```text
//! pamdc-lint --workspace [--root <dir>] [--json <path>] [--quiet]
//! ```
//!
//! Prints one `file:line · rule · message` diagnostic per unsuppressed
//! violation. Exits 0 when clean, 1 on any violation (including unused
//! or malformed `allow` directives), 2 on usage or I/O errors.

use std::path::PathBuf;
use std::process::ExitCode;

fn run() -> Result<bool, String> {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut root: Option<PathBuf> = None;
    let mut json_out: Option<PathBuf> = None;
    let mut quiet = false;
    let mut workspace = false;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--workspace" => workspace = true,
            "--quiet" => quiet = true,
            "--root" => {
                i += 1;
                root = Some(PathBuf::from(
                    args.get(i).ok_or("--root needs a directory")?,
                ));
            }
            "--json" => {
                i += 1;
                json_out = Some(PathBuf::from(args.get(i).ok_or("--json needs a path")?));
            }
            other => return Err(format!("unknown option {other}")),
        }
        i += 1;
    }
    if !workspace && root.is_none() {
        return Err(
            "usage: pamdc-lint --workspace [--root <dir>] [--json <path>] [--quiet]".into(),
        );
    }
    let root = match root {
        Some(r) => r,
        None => {
            let cwd = std::env::current_dir().map_err(|e| format!("cwd: {e}"))?;
            pamdc_lint::find_workspace_root(&cwd)
                .ok_or("no [workspace] Cargo.toml above the current directory")?
        }
    };

    let report = pamdc_lint::run(&root, &pamdc_lint::Profile::repo())?;
    if let Some(path) = &json_out {
        std::fs::write(path, pamdc_lint::to_json(&report))
            .map_err(|e| format!("write {}: {e}", path.display()))?;
    }
    for v in &report.violations {
        println!("{}", v.render());
    }
    if !quiet {
        eprintln!(
            "pamdc-lint: {} violation(s), {} suppressed, {} allow directive(s), {} files",
            report.violations.len(),
            report.suppressed.len(),
            report.allows.len(),
            report.files_scanned
        );
    }
    Ok(report.violations.is_empty())
}

fn main() -> ExitCode {
    match run() {
        Ok(true) => ExitCode::SUCCESS,
        Ok(false) => ExitCode::from(1),
        Err(msg) => {
            eprintln!("pamdc-lint: {msg}");
            ExitCode::from(2)
        }
    }
}
