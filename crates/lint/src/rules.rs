//! The rule catalog. Each rule returns raw [`Violation`]s; suppression
//! handling lives in the driver (`lib.rs`), so a rule never needs to
//! know about `allow` comments.
//!
//! Rules 1–3 are token scans over the blanked code channel of
//! [`SourceFile`]; rules 4–5 are cross-file consistency checks that
//! parse one anchor file and compare it against docs or golden
//! snapshots. See `docs/LINTING.md` for the catalog rationale.

use crate::source::SourceFile;
use crate::Violation;

/// Rule 1: wall-clock confinement.
pub const WALL_CLOCK: &str = "wall-clock";
/// Rule 2: no unordered maps in emit paths.
pub const UNORDERED_EMIT: &str = "unordered-emit";
/// Rule 3: no-panic parser contract.
pub const NO_PANIC_PARSER: &str = "no-panic-parser";
/// Rule 4: every parsed spec key is documented.
pub const SPEC_DOCS: &str = "spec-docs";
/// Rule 5: obs metric-count arithmetic matches the golden blocks.
pub const OBS_SCHEMA: &str = "obs-schema";

/// Every suppressible rule id.
pub const ALL_RULES: [&str; 5] = [
    WALL_CLOCK,
    UNORDERED_EMIT,
    NO_PANIC_PARSER,
    SPEC_DOCS,
    OBS_SCHEMA,
];

fn violation(file: &SourceFile, line: usize, rule: &'static str, message: String) -> Violation {
    Violation {
        file: file.rel.clone(),
        line,
        rule,
        message,
    }
}

/// Is `code[idx..idx+len]` a standalone token? Boundaries are only
/// enforced on sides where the token itself ends in an identifier char
/// (so `Counter::` happily matches right before a variant name).
fn is_word(code: &str, idx: usize, len: usize) -> bool {
    let ident = |c: char| c.is_ascii_alphanumeric() || c == '_';
    let tok = &code[idx..idx + len];
    let before_ok = !tok.chars().next().is_some_and(ident)
        || !code[..idx].chars().next_back().is_some_and(ident);
    let after_ok = !tok.chars().next_back().is_some_and(ident)
        || !code[idx + len..].chars().next().is_some_and(ident);
    before_ok && after_ok
}

/// All word-boundary occurrences of `token` in `code`.
fn word_hits(code: &str, token: &str) -> Vec<usize> {
    let mut hits = Vec::new();
    let mut from = 0;
    while let Some(pos) = code[from..].find(token) {
        let idx = from + pos;
        if is_word(code, idx, token.len()) {
            hits.push(idx);
        }
        from = idx + token.len();
    }
    hits
}

/// Rule 1 — wall-clock confinement: `Instant::now` / `SystemTime` /
/// `thread::sleep` may only appear in the allowlisted files (serve
/// daemon, obs wall-clock seams, bench harnesses, the criterion shim).
/// Test code is exempt: tests may time whatever they like.
pub fn wall_clock(file: &SourceFile) -> Vec<Violation> {
    const TOKENS: [&str; 3] = ["Instant::now", "SystemTime", "thread::sleep"];
    let mut out = Vec::new();
    for (i, line) in file.lines.iter().enumerate() {
        if file.in_test[i] {
            continue;
        }
        for token in TOKENS {
            if !word_hits(&line.code, token).is_empty() {
                out.push(violation(
                    file,
                    i + 1,
                    WALL_CLOCK,
                    format!(
                        "`{token}` outside the wall-clock allowlist; route through \
                         `pamdc_obs::clock` or extend the allowlist in pamdc-lint"
                    ),
                ));
            }
        }
    }
    out
}

/// Rule 2 — determinism of emission: report/metric/spec-emitter modules
/// must not touch `HashMap`/`HashSet`, whose iteration order would leak
/// into golden-pinned output. `BTreeMap`/`BTreeSet` are the sanctioned
/// ordered replacements.
pub fn unordered_emit(file: &SourceFile) -> Vec<Violation> {
    let mut out = Vec::new();
    for (i, line) in file.lines.iter().enumerate() {
        if file.in_test[i] {
            continue;
        }
        for token in ["HashMap", "HashSet"] {
            if !word_hits(&line.code, token).is_empty() {
                out.push(violation(
                    file,
                    i + 1,
                    UNORDERED_EMIT,
                    format!(
                        "`{token}` in an emit-path module: iteration order would reach \
                         golden-pinned output; use BTreeMap/BTreeSet"
                    ),
                ));
            }
        }
    }
    out
}

/// Rule 3 — no-panic parser contract: streaming parsers meet hostile
/// input, so `unwrap()` / `expect(` / `panic!` / `unreachable!` /
/// `todo!` / `unimplemented!` and direct subscript indexing are banned
/// outside `#[cfg(test)]`. (`assert!` guards on *caller* contracts are
/// allowed — the contract is about input-driven panics.)
pub fn no_panic_parser(file: &SourceFile) -> Vec<Violation> {
    const CALLS: [&str; 2] = [".unwrap()", ".expect("];
    const MACROS: [&str; 4] = ["panic!", "unreachable!", "todo!", "unimplemented!"];
    let mut out = Vec::new();
    for (i, line) in file.lines.iter().enumerate() {
        if file.in_test[i] {
            continue;
        }
        let code = &line.code;
        for call in CALLS {
            // The leading `.` and trailing `(`/`)` make the plain
            // substring exact: `.unwrap_or()` / `.expect_err(` differ
            // before the delimiter and cannot match.
            if code.contains(call) {
                let name = call.trim_start_matches('.').trim_end_matches(['(', ')']);
                out.push(violation(
                    file,
                    i + 1,
                    NO_PANIC_PARSER,
                    format!("`{name}` in a no-panic parser; return a parse error instead"),
                ));
            }
        }
        for mac in MACROS {
            for idx in word_hits(code, &mac[..mac.len() - 1]) {
                if code[idx + mac.len() - 1..].starts_with('!') {
                    out.push(violation(
                        file,
                        i + 1,
                        NO_PANIC_PARSER,
                        format!("`{mac}` in a no-panic parser; return a parse error instead"),
                    ));
                }
            }
        }
        for col in subscript_sites(code) {
            out.push(violation(
                file,
                i + 1,
                NO_PANIC_PARSER,
                format!(
                    "direct indexing at column {} in a no-panic parser; \
                     use get()/slice patterns or justify with an allow",
                    col + 1
                ),
            ));
        }
    }
    out
}

/// Columns of `expr[...]` subscript sites in a blanked code line: a `[`
/// whose previous non-space char ends an expression (identifier, `)`,
/// or `]`). Array literals/types (`[0; n]`, `: [u8; 4]`) and macro
/// brackets (`vec![`) have non-expression chars before the `[` and are
/// skipped.
fn subscript_sites(code: &str) -> Vec<usize> {
    // Keywords an expression can never end in: a `[` after one of
    // these opens a slice *pattern* (`let [a, b] = …`) or type, not a
    // subscript.
    const KEYWORDS: [&str; 12] = [
        "let", "else", "in", "return", "match", "if", "while", "mut", "ref", "move", "box", "as",
    ];
    let b = code.as_bytes();
    let mut out = Vec::new();
    for (i, &c) in b.iter().enumerate() {
        if c != b'[' {
            continue;
        }
        let Some(prev) = b[..i].iter().rposition(|&p| p != b' ') else {
            continue;
        };
        let p = b[prev];
        if !(p.is_ascii_alphanumeric() || p == b'_' || p == b')' || p == b']') {
            continue;
        }
        let word_start = b[..=prev]
            .iter()
            .rposition(|&w| !(w.is_ascii_alphanumeric() || w == b'_'))
            .map_or(0, |w| w + 1);
        if KEYWORDS.contains(&&code[word_start..=prev]) {
            continue;
        }
        out.push(i);
    }
    out
}

/// The `take_*` Reader methods whose first argument names a spec key.
const TAKE_METHODS: [&str; 10] = [
    "take_str",
    "take_f64",
    "take_u64",
    "take_usize",
    "take_bool",
    "take_str_list",
    "take_f64_list",
    "take_usize_list",
    "take_table",
    "take_table_array",
];

/// Rule 4 — spec ↔ docs coverage: every key the spec Reader consumes
/// (`.take_str("seed")`, `take_table("policy", …)`, …) must appear in at
/// least one of the scenario docs, so no knob ships undocumented.
/// `docs` is `(path, text)` of the files allowed to document keys.
pub fn spec_docs(spec: &SourceFile, docs: &[(String, String)]) -> Vec<Violation> {
    let mut out = Vec::new();
    for (i, line) in spec.lines.iter().enumerate() {
        if spec.in_test[i] {
            continue;
        }
        for key in take_keys(line) {
            let documented = docs.iter().any(|(_, text)| word_in_text(text, &key));
            if !documented {
                let names: Vec<&str> = docs.iter().map(|(p, _)| p.as_str()).collect();
                out.push(violation(
                    spec,
                    i + 1,
                    SPEC_DOCS,
                    format!("spec key \"{key}\" is parsed here but not documented in {names:?}"),
                ));
            }
        }
    }
    out
}

/// Spec keys consumed on this line: for each `.take_*(` call site in the
/// code channel, the first string-literal argument from the raw line.
/// Method *definitions* (`fn take_str(…)`) and forwarding calls with a
/// non-literal first argument yield nothing.
fn take_keys(line: &crate::source::Line) -> Vec<String> {
    let mut keys = Vec::new();
    for method in TAKE_METHODS {
        let pat = format!(".{method}(");
        let mut from = 0;
        while let Some(pos) = line.code[from..].find(&pat) {
            let open = from + pos + pat.len();
            from = open;
            // First argument must be a string literal — read it from
            // the raw line (the code channel blanks its contents).
            let rest = line.raw.get(open..).unwrap_or("");
            let rest = rest.trim_start();
            if let Some(lit) = rest.strip_prefix('"') {
                if let Some(end) = lit.find('"') {
                    keys.push(lit[..end].to_string());
                }
            }
        }
    }
    keys
}

/// Word-boundary containment of `key` in free-form doc text.
fn word_in_text(text: &str, key: &str) -> bool {
    let mut from = 0;
    while let Some(pos) = text[from..].find(key) {
        let idx = from + pos;
        if is_word(text, idx, key.len()) {
            return true;
        }
        from = idx + key.len();
    }
    false
}

/// Everything rule 5 extracts from `crates/obs/src/metrics.rs`.
struct ObsSchema {
    /// (declared len, counted entries, decl line) for Counter/Gauge/Hist.
    arrays: Vec<(String, usize, usize, usize)>,
    hist_buckets: usize,
    /// Counters excluded by `in_run_flush`.
    flush_excluded: usize,
    /// The `COUNTERS - k` subtrahend in `RUN_METRIC_COUNT`.
    run_metric_sub: usize,
    /// Line of the `RUN_METRIC_COUNT` declaration.
    run_metric_line: usize,
}

/// Rule 5 — obs schema drift: the `Counter::ALL` / `RUN_METRIC_COUNT`
/// arithmetic in `metrics.rs` must stay internally consistent and must
/// equal the number of distinct `obs.*` keys every golden snapshot
/// actually pins. `goldens` is `(path, text)` per golden file.
pub fn obs_schema(metrics: &SourceFile, goldens: &[(String, String)]) -> Vec<Violation> {
    let schema = match parse_obs_schema(metrics) {
        Ok(s) => s,
        Err(msg) => {
            return vec![violation(
                metrics,
                1,
                OBS_SCHEMA,
                format!("cannot parse the metrics schema anchors: {msg}"),
            )]
        }
    };
    let mut out = Vec::new();
    let mut counts = std::collections::BTreeMap::new();
    for (kind, declared, counted, line) in &schema.arrays {
        if declared != counted {
            out.push(violation(
                metrics,
                *line,
                OBS_SCHEMA,
                format!("{kind}::ALL declares {declared} entries but lists {counted}"),
            ));
        }
        counts.insert(kind.clone(), *declared);
    }
    if schema.flush_excluded != schema.run_metric_sub {
        out.push(violation(
            metrics,
            schema.run_metric_line,
            OBS_SCHEMA,
            format!(
                "RUN_METRIC_COUNT subtracts {} counters but in_run_flush excludes {}",
                schema.run_metric_sub, schema.flush_excluded
            ),
        ));
    }
    let expected = counts.get("Counter").copied().unwrap_or(0) - schema.run_metric_sub
        + counts.get("Gauge").copied().unwrap_or(0)
        + counts.get("Hist").copied().unwrap_or(0) * schema.hist_buckets;
    for (path, text) in goldens {
        let mut keys = std::collections::BTreeSet::new();
        for line in text.lines() {
            if line.starts_with("obs.") {
                if let Some((key, _)) = line.split_once('\t') {
                    keys.insert(key);
                }
            }
        }
        if !keys.is_empty() && keys.len() != expected {
            out.push(violation(
                metrics,
                schema.run_metric_line,
                OBS_SCHEMA,
                format!(
                    "{path} pins {} distinct obs.* keys but the schema arithmetic \
                     expects {expected}; regenerate goldens or fix RUN_METRIC_COUNT",
                    keys.len()
                ),
            ));
        }
    }
    out
}

fn parse_obs_schema(metrics: &SourceFile) -> Result<ObsSchema, String> {
    let mut arrays = Vec::new();
    let mut hist_buckets = None;
    let mut flush_excluded = None;
    let mut run_metric = None;
    let lines = &metrics.lines;
    let mut i = 0;
    while i < lines.len() {
        let code = lines[i].code.trim().to_string();
        if let Some(rest) = code.strip_prefix("pub const ALL: [") {
            // `pub const ALL: [Counter; 26] = [ … ];`
            let (kind, rest) = rest
                .split_once(';')
                .ok_or_else(|| format!("line {}: malformed ALL declaration", i + 1))?;
            let declared: usize = rest
                .trim_start()
                .split(']')
                .next()
                .unwrap_or("")
                .trim()
                .parse()
                .map_err(|_| format!("line {}: ALL length is not an integer", i + 1))?;
            let needle = format!("{kind}::");
            let (counted, end) = count_until(lines, i, &needle, "];")?;
            arrays.push((kind.trim().to_string(), declared, counted, i + 1));
            i = end;
        } else if let Some(rest) = code.strip_prefix("pub const HIST_BUCKETS: usize = ") {
            hist_buckets = rest.trim_end_matches(';').trim().parse::<usize>().ok();
        } else if code.starts_with("fn in_run_flush") || code.starts_with("pub fn in_run_flush") {
            let (counted, end) = count_until(lines, i, "Counter::", "}")?;
            flush_excluded = Some(counted);
            i = end;
        } else if code.starts_with("pub const RUN_METRIC_COUNT") {
            // Accumulate the expression through its `;`.
            let mut expr = String::new();
            let mut j = i;
            while j < lines.len() {
                expr.push_str(&lines[j].code);
                expr.push(' ');
                if lines[j].code.contains(';') {
                    break;
                }
                j += 1;
            }
            let sub = expr
                .split("COUNTERS")
                .nth(1)
                .and_then(|after| after.trim_start().strip_prefix('-'))
                .and_then(|after| {
                    let digits: String = after
                        .trim_start()
                        .chars()
                        .take_while(|c| c.is_ascii_digit())
                        .collect();
                    digits.parse::<usize>().ok()
                })
                .ok_or_else(|| {
                    format!(
                        "line {}: RUN_METRIC_COUNT is not of the form `COUNTERS - <k> + …`",
                        i + 1
                    )
                })?;
            run_metric = Some((sub, i + 1));
            i = j;
        }
        i += 1;
    }
    let (run_metric_sub, run_metric_line) =
        run_metric.ok_or("no RUN_METRIC_COUNT declaration found")?;
    Ok(ObsSchema {
        arrays,
        hist_buckets: hist_buckets.ok_or("no HIST_BUCKETS declaration found")?,
        flush_excluded: flush_excluded.ok_or("no in_run_flush body found")?,
        run_metric_sub,
        run_metric_line,
    })
}

/// Counts word-boundary `needle` occurrences from line `start` until a
/// line whose trimmed code ends with `closer` (inclusive). Returns
/// (count, index of the closing line).
fn count_until(
    lines: &[crate::source::Line],
    start: usize,
    needle: &str,
    closer: &str,
) -> Result<(usize, usize), String> {
    let mut count = 0;
    for (j, line) in lines.iter().enumerate().skip(start) {
        count += word_hits(&line.code, needle).len();
        if j > start && line.code.trim_end().ends_with(closer) {
            return Ok((count, j));
        }
        // Single-line form: `… = [A, B];`
        if j == start && line.code.trim_end().ends_with(closer) && line.code.contains('=') {
            return Ok((count, j));
        }
    }
    Err(format!(
        "line {}: no closing {closer:?} found for block",
        start + 1
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::source::SourceFile;

    fn file(text: &str) -> SourceFile {
        SourceFile::parse("crates/x/src/lib.rs".into(), text)
    }

    #[test]
    fn wall_clock_flags_real_uses_only() {
        let f = file("let t = Instant::now();\nlet s = \"Instant::now\";\n");
        let v = wall_clock(&f);
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].line, 1);
        assert!(v[0].message.contains("Instant::now"));
    }

    #[test]
    fn wall_clock_skips_tests() {
        let f = file("#[cfg(test)]\nmod tests {\n    fn t() { Instant::now(); }\n}\n");
        assert!(wall_clock(&f).is_empty());
    }

    #[test]
    fn unordered_emit_flags_hash_types() {
        let f = file("use std::collections::HashMap;\nlet x: BTreeMap<u8, u8>;\n");
        let v = unordered_emit(&f);
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].line, 1);
    }

    #[test]
    fn no_panic_flags_calls_macros_and_indexing() {
        let f = file(
            "let a = x.unwrap();\nlet b = y.unwrap_or(0);\nlet c = z.expect(\"msg\");\n\
             unreachable!(\"bad\");\nlet d = cols[0];\nlet e = [0u8; 4];\nvec![1, 2];\n",
        );
        let v = no_panic_parser(&f);
        let lines: Vec<usize> = v.iter().map(|x| x.line).collect();
        assert_eq!(lines, vec![1, 3, 4, 5]);
    }

    #[test]
    fn subscript_heuristics() {
        assert_eq!(subscript_sites("a[i] + b.c[j][k]").len(), 3);
        assert!(subscript_sites("let x: [u8; 4] = [0; 4];").is_empty());
        assert!(subscript_sites("vec![1]; #[derive(Debug)]").is_empty());
        assert_eq!(subscript_sites("&body[start..]").len(), 1);
        assert!(subscript_sites("let [a, b] = cols.as_slice() else {").is_empty());
        assert!(subscript_sites("} else [0]; x in [1, 2]").is_empty());
    }

    #[test]
    fn spec_docs_checks_take_keys() {
        let spec = SourceFile::parse(
            "crates/scenario/src/spec.rs".into(),
            "let s = r.take_str(\"seed\")?;\nlet p = r.take_table(\"policy\", \"ctx\")?;\n\
             fn take_str(&mut self, key: &str) {}\nlet d = r.take_f64(key)?;\n",
        );
        let docs = vec![("docs/S.md".to_string(), "The `seed` knob.".to_string())];
        let v = spec_docs(&spec, &docs);
        assert_eq!(v.len(), 1);
        assert!(v[0].message.contains("\"policy\""));
        let docs = vec![(
            "docs/S.md".to_string(),
            "`seed` and the [policy] table.".to_string(),
        )];
        assert!(spec_docs(&spec, &docs).is_empty());
    }

    #[test]
    fn obs_schema_checks_arithmetic_and_goldens() {
        let metrics_text = "\
impl Counter {
    pub const ALL: [Counter; 3] = [
        Counter::A,
        Counter::B,
        Counter::C,
    ];
    fn in_run_flush(self) -> bool {
        !matches!(self, Counter::A)
    }
}
impl Gauge {
    pub const ALL: [Gauge; 1] = [Gauge::G];
}
impl Hist {
    pub const ALL: [Hist; 1] = [Hist::H];
}
pub const HIST_BUCKETS: usize = 2;
pub const RUN_METRIC_COUNT: usize =
    COUNTERS - 1 + GAUGES + HISTS * HIST_BUCKETS;
";
        let metrics = SourceFile::parse("crates/obs/src/metrics.rs".into(), metrics_text);
        // expected = 3 - 1 + 1 + 1*2 = 5
        let good = "obs.a\t0\t1\nobs.b\t0\t1\nobs.c\t0\t1\nobs.d\t0\t1\nobs.e\t0\t1\n";
        let golds = vec![("g.golden".to_string(), good.to_string())];
        assert!(obs_schema(&metrics, &golds).is_empty());
        let bad = "obs.a\t0\t1\nobs.b\t0\t1\n";
        let golds = vec![("g.golden".to_string(), bad.to_string())];
        let v = obs_schema(&metrics, &golds);
        assert_eq!(v.len(), 1);
        assert!(v[0].message.contains("pins 2"));
        // Declared/counted mismatch fires too.
        let broken = metrics_text.replace("[Counter; 3]", "[Counter; 4]");
        let metrics = SourceFile::parse("m.rs".into(), &broken);
        let v = obs_schema(&metrics, &[]);
        assert!(v.iter().any(|x| x.message.contains("declares 4")));
    }
}
