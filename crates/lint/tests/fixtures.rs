//! End-to-end fixture proof for the rule catalog: every rule fires on
//! the violating tree (exit 1, `file:line · rule · message`
//! diagnostics) and is silenced on the suppressed twin (exit 0, every
//! allow consumed). The fixture trees mirror the `Profile::repo()` path
//! contract — `crates/core/src/report.rs` is an emit path,
//! `crates/workload/src/trace.rs` a streaming parser, and so on — so
//! the fixtures prove exactly what CI enforces on the real tree.

use std::path::{Path, PathBuf};
use std::process::Command;

fn fixture(name: &str) -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("fixtures")
        .join(name)
}

fn run_lint(args: &[&str]) -> (Option<i32>, String, String) {
    let out = Command::new(env!("CARGO_BIN_EXE_pamdc-lint"))
        .args(args)
        .output()
        .expect("spawn pamdc-lint");
    (
        out.status.code(),
        String::from_utf8_lossy(&out.stdout).into_owned(),
        String::from_utf8_lossy(&out.stderr).into_owned(),
    )
}

#[test]
fn every_rule_fires_on_the_violating_tree_with_file_line_diagnostics() {
    let root = fixture("violating");
    let (code, stdout, _) = run_lint(&["--root", root.to_str().expect("utf8 path")]);
    assert_eq!(code, Some(1), "violations must exit 1; stdout:\n{stdout}");
    // One precise anchor per rule, plus both meta rules: the diagnostic
    // must name the file AND the line, not just the rule.
    for expected in [
        "crates/core/src/engine.rs:4 · wall-clock",
        "crates/core/src/report.rs:3 · unordered-emit",
        "crates/core/src/report.rs:5 · unordered-emit",
        "crates/workload/src/trace.rs:5 · no-panic-parser",
        "crates/workload/src/trace.rs:6 · no-panic-parser",
        "crates/scenario/src/spec.rs:5 · spec-docs",
        "crates/obs/src/metrics.rs:9 · obs-schema",
        "crates/obs/src/metrics.rs:21 · obs-schema",
        "crates/green/src/lib.rs:3 · unused-allow",
        "crates/green/src/lib.rs:4 · malformed-allow",
    ] {
        assert!(
            stdout.contains(expected),
            "missing {expected:?} in:\n{stdout}"
        );
    }
    // The documented key must not fire — only the undocumented one.
    assert!(
        !stdout.contains("\"seed\""),
        "documented key flagged:\n{stdout}"
    );
}

#[test]
fn every_rule_suppresses_on_the_twin_tree_and_all_allows_are_consumed() {
    let root = fixture("suppressed");
    let json = root.join("report.json");
    let (code, stdout, stderr) = run_lint(&[
        "--root",
        root.to_str().expect("utf8 path"),
        "--json",
        json.to_str().expect("utf8 path"),
    ]);
    assert_eq!(
        code,
        Some(0),
        "suppressed tree must pass:\n{stdout}{stderr}"
    );
    assert!(stdout.is_empty(), "no diagnostics expected:\n{stdout}");
    // Same violations as the violating twin (1 wall-clock + 2
    // unordered-emit + 4 no-panic-parser + 1 spec-docs + 3 obs-schema),
    // every one silenced by a justified allow.
    assert!(
        stderr.contains("0 violation(s), 11 suppressed, 8 allow directive(s)"),
        "unexpected summary:\n{stderr}"
    );
    let report = std::fs::read_to_string(&json).expect("json report");
    std::fs::remove_file(&json).ok();
    assert!(report.contains("\"violations\": []"));
    assert!(report.contains("\"used\": true"));
    assert!(
        !report.contains("\"used\": false"),
        "an allow went unused — the lint should have failed:\n{report}"
    );
}

#[test]
fn usage_errors_exit_two() {
    let (code, _, stderr) = run_lint(&["--bogus-flag"]);
    assert_eq!(code, Some(2), "usage errors are exit 2:\n{stderr}");
    let (code, _, _) = run_lint(&[]);
    assert_eq!(code, Some(2), "no mode selected is a usage error");
}

#[test]
fn the_shipped_tree_is_lint_clean() {
    // The same check CI runs: the real workspace, the real profile.
    let here = Path::new(env!("CARGO_MANIFEST_DIR"));
    let root = pamdc_lint::find_workspace_root(here).expect("workspace root");
    let report = pamdc_lint::run(&root, &pamdc_lint::Profile::repo()).expect("scan");
    let rendered: Vec<String> = report.violations.iter().map(|v| v.render()).collect();
    assert!(
        report.violations.is_empty(),
        "the shipped tree must lint clean:\n{}",
        rendered.join("\n")
    );
    assert!(
        report.files_scanned > 50,
        "scan saw {} files",
        report.files_scanned
    );
}
