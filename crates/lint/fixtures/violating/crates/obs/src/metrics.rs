//! Fixture: a metric registry whose schema arithmetic has drifted.

pub enum Counter {
    A,
    B,
}

impl Counter {
    pub const ALL: [Counter; 3] = [
        Counter::A,
        Counter::B,
    ];

    fn in_run_flush(self) -> bool {
        !matches!(self, Counter::A)
    }
}

pub const HIST_BUCKETS: usize = 2;

pub const RUN_METRIC_COUNT: usize = COUNTERS - 2 + HIST_BUCKETS * 0;
