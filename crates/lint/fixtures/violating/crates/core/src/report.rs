//! Fixture: a report module that leaks hash-map iteration order.

use std::collections::HashMap;

pub fn render(metrics: &HashMap<String, f64>) -> String {
    metrics.iter().map(|(k, v)| format!("{k}={v}\n")).collect()
}
