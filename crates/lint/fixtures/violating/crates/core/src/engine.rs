//! Fixture: a scheduling loop that illegally reads the wall clock.

pub fn round_wall_ms() -> f64 {
    let start = std::time::Instant::now();
    start.elapsed().as_secs_f64() * 1e3
}
