//! Fixture: a spec reader with an undocumented knob.

pub fn parse(r: &mut Reader) -> (u64, u64) {
    let seed = r.take_u64("seed");
    let mystery = r.take_u64("mystery_knob");
    (seed, mystery)
}
