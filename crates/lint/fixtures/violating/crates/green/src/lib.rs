//! Fixture: stale and malformed allow directives are themselves errors.

// pamdc-lint: allow(wall-clock) -- fixture: nothing below reads the clock
// pamdc-lint: allow(bogus-rule) -- fixture: unknown rule id
pub fn pure() -> u64 {
    7
}
