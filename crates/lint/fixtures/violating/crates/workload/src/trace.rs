//! Fixture: a streaming parser that panics on hostile input.

pub fn parse_row(line: &str) -> (u64, f64) {
    let cols: Vec<&str> = line.split(',').collect();
    let tick = cols[0].parse().unwrap();
    let rps = cols[1].parse().expect("rps");
    (tick, rps)
}
