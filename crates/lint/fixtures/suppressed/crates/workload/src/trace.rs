//! Fixture: panicking parser sites, each justified and suppressed.

pub fn parse_row(line: &str) -> (u64, f64) {
    let cols: Vec<&str> = line.split(',').collect();
    // pamdc-lint: allow(no-panic-parser) -- fixture: caller validates column count
    let tick = cols[0].parse().unwrap();
    // pamdc-lint: allow(no-panic-parser) -- fixture: caller validates column count
    let rps = cols[1].parse().expect("rps");
    (tick, rps)
}
