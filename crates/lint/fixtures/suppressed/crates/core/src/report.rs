//! Fixture: hash maps in the emit path, justified and suppressed.

use std::collections::HashMap; // pamdc-lint: allow(unordered-emit) -- fixture: keys sorted before emission
// pamdc-lint: allow(unordered-emit) -- fixture: render sorts keys before emission
pub fn render(metrics: &HashMap<String, f64>) -> String {
    metrics.iter().map(|(k, v)| format!("{k}={v}\n")).collect()
}
