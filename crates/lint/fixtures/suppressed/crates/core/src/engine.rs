//! Fixture: the wall-clock read below is justified and suppressed.

pub fn round_wall_ms() -> f64 {
    // pamdc-lint: allow(wall-clock) -- fixture: measures round wall time for the governor
    let start = std::time::Instant::now();
    start.elapsed().as_secs_f64() * 1e3
}
