//! Fixture: the undocumented knob is acknowledged and suppressed.

pub fn parse(r: &mut Reader) -> (u64, u64) {
    let seed = r.take_u64("seed");
    let mystery = r.take_u64("mystery_knob"); // pamdc-lint: allow(spec-docs) -- fixture: internal debug knob
    (seed, mystery)
}
