//! Fixture: acknowledged schema drift, suppressed at both anchors.

pub enum Counter {
    A,
    B,
}

impl Counter {
    // pamdc-lint: allow(obs-schema) -- fixture: the third variant lands next release
    pub const ALL: [Counter; 3] = [
        Counter::A,
        Counter::B,
    ];

    fn in_run_flush(self) -> bool {
        !matches!(self, Counter::A)
    }
}

pub const HIST_BUCKETS: usize = 2;

// pamdc-lint: allow(obs-schema) -- fixture: goldens regenerate with the next schema bump
pub const RUN_METRIC_COUNT: usize = COUNTERS - 2 + HIST_BUCKETS * 0;
