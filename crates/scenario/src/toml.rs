//! A hand-rolled TOML-subset parser and emitter.
//!
//! Same offline-shim philosophy as `crates/shims`: the build must not
//! touch a registry, so instead of depending on a TOML crate this module
//! implements exactly the subset scenario specs use —
//!
//! * `#` comments and blank lines;
//! * `[table]` / `[nested.table]` headers and `[[array-of-tables]]`;
//! * `key = value` with bare keys;
//! * values: basic `"strings"` (with `\"`/`\\`/`\n`/`\t` escapes),
//!   integers, floats, booleans, and flat arrays of those.
//!
//! No datetimes, no inline tables, no dotted keys, no multi-line
//! strings. The emitter writes documents this parser accepts, floats in
//! shortest round-trip form, so `parse(emit(v)) == v` bit-for-bit.

use std::collections::BTreeMap;
use std::fmt::Write as _;

/// A parsed TOML value.
#[derive(Clone, Debug, PartialEq)]
pub enum Value {
    /// A basic string.
    Str(String),
    /// An integer (no decimal point or exponent in the source).
    Int(i64),
    /// A float.
    Float(f64),
    /// A boolean.
    Bool(bool),
    /// A flat array of scalars.
    Array(Vec<Value>),
    /// A table of key → value (also used for `[[...]]` elements).
    Table(Table),
}

/// A TOML table: sorted keys for deterministic emission.
pub type Table = BTreeMap<String, Value>;

/// Parse/emit errors, with a 1-based line number where known.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TomlError {
    /// 1-based source line (0 = whole document).
    pub line: usize,
    /// What went wrong.
    pub message: String,
}

impl std::fmt::Display for TomlError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if self.line > 0 {
            write!(f, "line {}: {}", self.line, self.message)
        } else {
            f.write_str(&self.message)
        }
    }
}

impl std::error::Error for TomlError {}

fn err(line: usize, message: impl Into<String>) -> TomlError {
    TomlError {
        line,
        message: message.into(),
    }
}

impl Value {
    /// The string payload, when this is one.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// An integer payload (ints only — floats don't silently truncate).
    pub fn as_int(&self) -> Option<i64> {
        match self {
            Value::Int(i) => Some(*i),
            _ => None,
        }
    }

    /// A float payload (accepts integers, like real TOML readers do).
    pub fn as_float(&self) -> Option<f64> {
        match self {
            Value::Float(f) => Some(*f),
            Value::Int(i) => Some(*i as f64),
            _ => None,
        }
    }

    /// The boolean payload, when this is one.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The array payload, when this is one.
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(a) => Some(a),
            _ => None,
        }
    }

    /// The table payload, when this is one.
    pub fn as_table(&self) -> Option<&Table> {
        match self {
            Value::Table(t) => Some(t),
            _ => None,
        }
    }
}

/// Parses a document into its root table.
pub fn parse(text: &str) -> Result<Table, TomlError> {
    let mut root = Table::new();
    // Path of the table the next `key = value` lands in.
    let mut current: Vec<String> = Vec::new();
    // Whether `current` names an element of an array-of-tables.
    let mut current_is_aot = false;

    for (idx, raw) in text.lines().enumerate() {
        let lineno = idx + 1;
        let line = strip_comment(raw).trim();
        if line.is_empty() {
            continue;
        }
        if let Some(header) = line.strip_prefix("[[") {
            let header = header
                .strip_suffix("]]")
                .ok_or_else(|| err(lineno, "unterminated [[table]] header"))?;
            current = parse_key_path(header, lineno)?;
            current_is_aot = true;
            let arr = lookup_aot(&mut root, &current, lineno)?;
            arr.push(Value::Table(Table::new()));
        } else if let Some(header) = line.strip_prefix('[') {
            let header = header
                .strip_suffix(']')
                .ok_or_else(|| err(lineno, "unterminated [table] header"))?;
            current = parse_key_path(header, lineno)?;
            current_is_aot = false;
            // Materialize the table so empty sections round-trip.
            lookup_table(&mut root, &current, lineno)?;
        } else {
            let (key, value) = line
                .split_once('=')
                .ok_or_else(|| err(lineno, format!("expected `key = value`, got {line:?}")))?;
            let key = key.trim();
            validate_bare_key(key, lineno)?;
            let value = parse_value(value.trim(), lineno)?;
            let table = if current_is_aot {
                let arr = lookup_aot(&mut root, &current, lineno)?;
                match arr.last_mut() {
                    Some(Value::Table(t)) => t,
                    // The [[header]] that set `current_is_aot` pushed a
                    // table; anything else means the document mutated
                    // the key mid-stream — report, never panic.
                    _ => return Err(err(lineno, "array-of-tables element is not a table")),
                }
            } else {
                lookup_table(&mut root, &current, lineno)?
            };
            if table.insert(key.to_string(), value).is_some() {
                return Err(err(lineno, format!("duplicate key {key:?}")));
            }
        }
    }
    Ok(root)
}

/// Strips a `#` comment (respecting `"..."` strings).
fn strip_comment(line: &str) -> &str {
    let mut in_string = false;
    let mut escaped = false;
    for (i, c) in line.char_indices() {
        match c {
            '\\' if in_string && !escaped => {
                escaped = true;
                continue;
            }
            '"' if !escaped => in_string = !in_string,
            // pamdc-lint: allow(no-panic-parser) -- `i` comes from char_indices, always a char boundary
            '#' if !in_string => return &line[..i],
            _ => {}
        }
        escaped = false;
    }
    line
}

fn validate_bare_key(key: &str, lineno: usize) -> Result<(), TomlError> {
    if key.is_empty()
        || !key
            .chars()
            .all(|c| c.is_ascii_alphanumeric() || c == '_' || c == '-')
    {
        return Err(err(lineno, format!("invalid bare key {key:?}")));
    }
    Ok(())
}

fn parse_key_path(path: &str, lineno: usize) -> Result<Vec<String>, TomlError> {
    path.split('.')
        .map(|part| {
            let part = part.trim();
            validate_bare_key(part, lineno)?;
            Ok(part.to_string())
        })
        .collect()
}

/// Walks (creating) nested tables down `path`.
fn lookup_table<'a>(
    root: &'a mut Table,
    path: &[String],
    lineno: usize,
) -> Result<&'a mut Table, TomlError> {
    let mut table = root;
    for part in path {
        let entry = table
            .entry(part.clone())
            .or_insert_with(|| Value::Table(Table::new()));
        table = match entry {
            Value::Table(t) => t,
            _ => return Err(err(lineno, format!("key {part:?} is not a table"))),
        };
    }
    Ok(table)
}

/// Walks to the array-of-tables at `path` (parents created as tables).
fn lookup_aot<'a>(
    root: &'a mut Table,
    path: &[String],
    lineno: usize,
) -> Result<&'a mut Vec<Value>, TomlError> {
    let (last, parents) = path
        .split_last()
        .ok_or_else(|| err(lineno, "empty [[table]] header"))?;
    let table = lookup_table(root, parents, lineno)?;
    let entry = table
        .entry(last.clone())
        .or_insert_with(|| Value::Array(Vec::new()));
    match entry {
        Value::Array(a) => Ok(a),
        _ => Err(err(
            lineno,
            format!("key {last:?} is not an array of tables"),
        )),
    }
}

fn parse_value(text: &str, lineno: usize) -> Result<Value, TomlError> {
    if text.is_empty() {
        return Err(err(lineno, "missing value"));
    }
    if let Some(rest) = text.strip_prefix('"') {
        return parse_string(rest, lineno);
    }
    if let Some(body) = text.strip_prefix('[') {
        let body = body
            .strip_suffix(']')
            .ok_or_else(|| err(lineno, "unterminated array (arrays must be single-line)"))?;
        let mut out = Vec::new();
        for part in split_array_items(body, lineno)? {
            let item = parse_value(part.trim(), lineno)?;
            if matches!(item, Value::Array(_) | Value::Table(_)) {
                return Err(err(lineno, "nested arrays are not supported"));
            }
            out.push(item);
        }
        return Ok(Value::Array(out));
    }
    match text {
        "true" => return Ok(Value::Bool(true)),
        "false" => return Ok(Value::Bool(false)),
        _ => {}
    }
    // Number: an integer unless it carries a point, exponent, or is one
    // of the special floats.
    let is_float = text.contains('.')
        || text.contains(['e', 'E'])
        || matches!(text, "inf" | "-inf" | "+inf" | "nan" | "-nan" | "+nan");
    if is_float {
        text.parse::<f64>()
            .map(Value::Float)
            .map_err(|_| err(lineno, format!("invalid float {text:?}")))
    } else {
        text.parse::<i64>()
            .map(Value::Int)
            .map_err(|_| err(lineno, format!("invalid value {text:?}")))
    }
}

/// Parses the remainder of a basic string (opening quote consumed).
fn parse_string(rest: &str, lineno: usize) -> Result<Value, TomlError> {
    let mut out = String::new();
    let mut chars = rest.chars();
    while let Some(c) = chars.next() {
        match c {
            '"' => {
                let trailing = chars.as_str().trim();
                if !trailing.is_empty() {
                    return Err(err(
                        lineno,
                        format!("trailing content {trailing:?} after string"),
                    ));
                }
                return Ok(Value::Str(out));
            }
            '\\' => match chars.next() {
                Some('"') => out.push('"'),
                Some('\\') => out.push('\\'),
                Some('n') => out.push('\n'),
                Some('t') => out.push('\t'),
                Some('r') => out.push('\r'),
                other => return Err(err(lineno, format!("unsupported escape \\{:?}", other))),
            },
            c => out.push(c),
        }
    }
    Err(err(lineno, "unterminated string"))
}

/// Splits an array body on top-level commas (commas inside strings kept).
fn split_array_items(body: &str, lineno: usize) -> Result<Vec<&str>, TomlError> {
    let mut items = Vec::new();
    let mut start = 0;
    let mut in_string = false;
    let mut escaped = false;
    for (i, c) in body.char_indices() {
        match c {
            '\\' if in_string && !escaped => {
                escaped = true;
                continue;
            }
            '"' if !escaped => in_string = !in_string,
            ',' if !in_string => {
                // pamdc-lint: allow(no-panic-parser) -- both bounds come from char_indices of `body`
                items.push(&body[start..i]);
                start = i + 1;
            }
            '[' | ']' if !in_string => {
                return Err(err(lineno, "nested arrays are not supported"));
            }
            _ => {}
        }
        escaped = false;
    }
    if in_string {
        return Err(err(lineno, "unterminated string in array"));
    }
    // pamdc-lint: allow(no-panic-parser) -- `start` trails a char_indices comma position
    let tail = &body[start..];
    if !tail.trim().is_empty() {
        items.push(tail);
    } else if !items.is_empty() && body.trim_end().ends_with(',') {
        // Trailing comma: fine, nothing to push.
    }
    Ok(items)
}

/// Emits a root table as a document this module's parser accepts.
///
/// Scalars first (sorted), then `[section]` subtables, then
/// `[[section]]` arrays-of-tables; arrays of scalars stay inline.
pub fn emit(root: &Table) -> String {
    let mut out = String::new();
    emit_table(&mut out, root, &mut Vec::new());
    out
}

fn is_aot(v: &Value) -> bool {
    match v {
        Value::Array(items) => {
            !items.is_empty() && items.iter().all(|i| matches!(i, Value::Table(_)))
        }
        _ => false,
    }
}

fn emit_table(out: &mut String, table: &Table, path: &mut Vec<String>) {
    // 1. Scalars and scalar arrays.
    for (key, value) in table {
        if matches!(value, Value::Table(_)) || is_aot(value) {
            continue;
        }
        let _ = writeln!(out, "{key} = {}", emit_scalar(value));
    }
    // 2. Subtables.
    for (key, value) in table {
        if let Value::Table(sub) = value {
            path.push(key.clone());
            if !out.is_empty() {
                out.push('\n');
            }
            let _ = writeln!(out, "[{}]", path.join("."));
            emit_table(out, sub, path);
            path.pop();
        }
    }
    // 3. Arrays of tables.
    for (key, value) in table {
        if !is_aot(value) {
            continue;
        }
        // `is_aot` just vouched for the shapes below; the `else`
        // branches keep the emitter total instead of trusting it.
        let Value::Array(items) = value else {
            continue;
        };
        path.push(key.clone());
        for item in items {
            let Value::Table(sub) = item else {
                continue;
            };
            if !out.is_empty() {
                out.push('\n');
            }
            let _ = writeln!(out, "[[{}]]", path.join("."));
            emit_table(out, sub, path);
        }
        path.pop();
    }
}

fn emit_scalar(value: &Value) -> String {
    match value {
        Value::Str(s) => {
            let mut out = String::with_capacity(s.len() + 2);
            out.push('"');
            for c in s.chars() {
                match c {
                    '"' => out.push_str("\\\""),
                    '\\' => out.push_str("\\\\"),
                    '\n' => out.push_str("\\n"),
                    '\t' => out.push_str("\\t"),
                    '\r' => out.push_str("\\r"),
                    c => out.push(c),
                }
            }
            out.push('"');
            out
        }
        Value::Int(i) => i.to_string(),
        Value::Bool(b) => b.to_string(),
        Value::Float(f) => emit_float(*f),
        Value::Array(items) => {
            let inner: Vec<String> = items.iter().map(emit_scalar).collect();
            format!("[{}]", inner.join(", "))
        }
        // pamdc-lint: allow(no-panic-parser) -- emitter invariant (callers route tables to sections), not input-driven
        Value::Table(_) => unreachable!("tables are emitted as sections"),
    }
}

/// Shortest round-trip float form, always re-parsable as a float.
fn emit_float(f: f64) -> String {
    if f.is_nan() {
        return "nan".into();
    }
    if f.is_infinite() {
        return if f > 0.0 { "inf".into() } else { "-inf".into() };
    }
    let s = format!("{f}");
    if s.contains('.') || s.contains('e') || s.contains('E') {
        s
    } else {
        format!("{s}.0")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_scalars_tables_and_aot() {
        let doc = r#"
# a comment
name = "fig4"   # trailing comment
seed = 4
scale = 1.5
on = true
list = [1, 2, 3]

[run]
hours = 24

[policy.inner]
kind = "bestfit"

[[faults]]
pm = 0
at_min = 30.5

[[faults]]
pm = 1
"#;
        let t = parse(doc).expect("parse");
        assert_eq!(t["name"], Value::Str("fig4".into()));
        assert_eq!(t["seed"], Value::Int(4));
        assert_eq!(t["scale"], Value::Float(1.5));
        assert_eq!(t["on"], Value::Bool(true));
        assert_eq!(
            t["list"],
            Value::Array(vec![Value::Int(1), Value::Int(2), Value::Int(3)])
        );
        let run = t["run"].as_table().unwrap();
        assert_eq!(run["hours"], Value::Int(24));
        let inner = t["policy"].as_table().unwrap()["inner"].as_table().unwrap();
        assert_eq!(inner["kind"], Value::Str("bestfit".into()));
        let faults = t["faults"].as_array().unwrap();
        assert_eq!(faults.len(), 2);
        assert_eq!(faults[0].as_table().unwrap()["at_min"], Value::Float(30.5));
    }

    #[test]
    fn strings_support_escapes_and_hashes() {
        let t = parse(r#"s = "a # not a comment \"q\" \n\t\\""#).unwrap();
        assert_eq!(t["s"], Value::Str("a # not a comment \"q\" \n\t\\".into()));
    }

    #[test]
    fn emit_parse_round_trips() {
        let doc = r#"
name = "multi \"dc\""
seed = 99
scale = 0.30000000000000004
weights = [0.1, 0.55, 1e-9]
flags = [true, false]

[run]
hours = 6
tick_secs = 60

[[faults]]
pm = 0
at_min = 30
"#;
        let t = parse(doc).unwrap();
        let emitted = emit(&t);
        let reparsed = parse(&emitted).expect("reparse");
        assert_eq!(t, reparsed);
        // Emission is a fixed point.
        assert_eq!(emitted, emit(&reparsed));
    }

    #[test]
    fn float_forms_survive() {
        for f in [0.1, 1.0, -3.25e-7, f64::MAX, f64::MIN_POSITIVE, 1e300] {
            let s = emit_float(f);
            let back: f64 = s.parse().unwrap();
            assert_eq!(back.to_bits(), f.to_bits(), "{s}");
        }
        assert_eq!(emit_float(1.0), "1.0");
    }

    #[test]
    fn errors_carry_line_numbers() {
        assert_eq!(parse("x = ").unwrap_err().line, 1);
        assert_eq!(parse("\n\n[bad").unwrap_err().line, 3);
        assert!(parse("x = 1\nx = 2")
            .unwrap_err()
            .message
            .contains("duplicate"));
        assert!(parse("x = [[1]]").is_err());
        assert!(parse("x = \"unterminated").is_err());
        assert!(parse("weird key = 1").is_err());
    }

    #[test]
    fn empty_sections_materialize() {
        let t = parse("[empty]\n[other]\nx = 1").unwrap();
        assert!(t["empty"].as_table().unwrap().is_empty());
    }
}
