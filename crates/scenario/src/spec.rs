//! The declarative scenario model: [`ScenarioSpec`] and its TOML-subset
//! wire form.
//!
//! A spec describes everything an experiment needs — topology, workload
//! (synthetic or a replayed trace), energy environment, billing, faults,
//! profile changes, scheduler policy and horizon — as plain data. Specs
//! parse from and emit to the [`crate::toml`] subset; emission is
//! canonical (every field written, keys sorted), so
//! `parse(emit(spec)) == spec` holds bit-for-bit and diffs of emitted
//! specs are meaningful.
//!
//! Field semantics cite the source paper where they reproduce it; see
//! `PAPER.md` for the abstract and `docs/SCENARIOS.md` for the format
//! walk-through with worked examples.

use crate::toml::{self, Table, TomlError, Value};
use std::collections::BTreeMap;

/// Spec-level errors (syntax via [`TomlError`], or semantic).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SpecError(pub String);

impl std::fmt::Display for SpecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "spec error: {}", self.0)
    }
}

impl std::error::Error for SpecError {}

impl From<TomlError> for SpecError {
    fn from(e: TomlError) -> Self {
        SpecError(e.to_string())
    }
}

fn bad(msg: impl Into<String>) -> SpecError {
    SpecError(msg.into())
}

/// Which of the paper's topologies to build (PAPER.md §V-B / §V-C).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TopologyPreset {
    /// One DC (Barcelona), the paper's §V-B testbed.
    IntraDc,
    /// Four DCs (Brisbane/Bangalore/Barcelona/Boston), §V-C.
    MultiDc,
}

impl TopologyPreset {
    fn name(self) -> &'static str {
        match self {
            TopologyPreset::IntraDc => "intra-dc",
            TopologyPreset::MultiDc => "multi-dc",
        }
    }

    fn from_name(s: &str) -> Result<Self, SpecError> {
        match s {
            "intra-dc" => Ok(TopologyPreset::IntraDc),
            "multi-dc" => Ok(TopologyPreset::MultiDc),
            _ => Err(bad(format!(
                "unknown topology preset {s:?} (intra-dc | multi-dc)"
            ))),
        }
    }
}

/// One host model a `[[topology.classes]]` entry can name.
#[derive(Clone, Debug, PartialEq)]
pub enum MachineClass {
    /// The paper's measured Intel Atom host.
    Atom,
    /// The Xeon-class host (8 cores, 16 GB, steeper power curve).
    Xeon,
    /// A custom class from four headline numbers (the power curve is
    /// filled in with the Atom-shaped concave interpolation; see
    /// `MachineSpec::custom`).
    Custom {
        /// Core count (capacity = 100 %CPU per core).
        cores: usize,
        /// Memory, MB.
        mem_mb: f64,
        /// Idle (0 active cores) IT draw, watts.
        idle_watts: f64,
        /// All-cores-active IT draw, watts.
        peak_watts: f64,
    },
}

/// One `[[topology.classes]]` entry: `count` hosts of one machine class
/// in **every** datacenter.
#[derive(Clone, Debug, PartialEq)]
pub struct HostClassSpec {
    /// Hosts of this class per DC.
    pub count: usize,
    /// Which machine model.
    pub machine: MachineClass,
}

/// `[topology]` — datacenters and hosts.
#[derive(Clone, Debug, PartialEq)]
pub struct TopologySpec {
    /// Which city set to build.
    pub preset: TopologyPreset,
    /// Hosts per datacenter (ignored when `classes` is non-empty).
    pub pms_per_dc: usize,
    /// Heterogeneous host-class mix per DC (`[[topology.classes]]`);
    /// empty = `pms_per_dc` Atom hosts, the paper fleet.
    pub classes: Vec<HostClassSpec>,
    /// Deploy every VM into this DC index initially (the de-location
    /// experiments start overloaded); `None` = home-region placement.
    pub deploy_all_in: Option<usize>,
}

impl TopologySpec {
    /// Hosts each DC actually gets: the class mix when one is declared,
    /// `pms_per_dc` otherwise.
    pub fn hosts_per_dc(&self) -> usize {
        if self.classes.is_empty() {
            self.pms_per_dc
        } else {
            self.classes.iter().map(|c| c.count).sum()
        }
    }
}

/// Which synthetic workload preset to attach (PAPER.md §V, Li-BCN).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum WorkloadPreset {
    /// All clients local to Barcelona (Figure 4).
    IntraDc,
    /// Worldwide clients with home-region affinity (Figures 6/7).
    MultiDc,
    /// One noon-peaked service chasing the sun (Figure 5).
    FollowTheSun,
    /// Latency-neutral flat load (energy-isolation extensions).
    Uniform,
}

impl WorkloadPreset {
    fn name(self) -> &'static str {
        match self {
            WorkloadPreset::IntraDc => "intra-dc",
            WorkloadPreset::MultiDc => "multi-dc",
            WorkloadPreset::FollowTheSun => "follow-the-sun",
            WorkloadPreset::Uniform => "uniform",
        }
    }

    fn from_name(s: &str) -> Result<Self, SpecError> {
        match s {
            "intra-dc" => Ok(WorkloadPreset::IntraDc),
            "multi-dc" => Ok(WorkloadPreset::MultiDc),
            "follow-the-sun" => Ok(WorkloadPreset::FollowTheSun),
            "uniform" => Ok(WorkloadPreset::Uniform),
            _ => Err(bad(format!(
                "unknown workload preset {s:?} (intra-dc | multi-dc | follow-the-sun | uniform)"
            ))),
        }
    }
}

/// Replay transforms for a trace-driven workload.
#[derive(Clone, Debug, PartialEq)]
pub struct TraceReplaySpec {
    /// Trace CSV path (resolved relative to the spec file's directory).
    pub path: String,
    /// Arrival-rate multiplier.
    pub rate_scale: f64,
    /// Playback slowdown factor (2.0 = twice as slow).
    pub time_stretch: f64,
    /// Region relabelling (`map[recorded] = replayed`); empty = identity.
    pub region_map: Vec<usize>,
}

impl Default for TraceReplaySpec {
    fn default() -> Self {
        TraceReplaySpec {
            path: String::new(),
            rate_scale: 1.0,
            time_stretch: 1.0,
            region_map: Vec::new(),
        }
    }
}

/// `[workload.import]` — ingest a public dataset (Azure / Alibaba) as
/// the demand source. Normalization and transforms happen at import
/// (see `pamdc_workload::import` and `docs/TRACES.md`); the resulting
/// trace drives the run exactly like a recorded one.
#[derive(Clone, Debug, PartialEq)]
pub struct ImportSpec {
    /// Dataset file path (resolved relative to the spec's directory).
    pub path: String,
    /// Source schema: `"azure"` | `"alibaba"`.
    pub format: String,
    /// Normalization tick, seconds (`None` = the format's native
    /// cadence: 300 s Azure, 10 s Alibaba).
    pub tick_secs: Option<u64>,
    /// Client regions of the target world.
    pub regions: usize,
    /// Arrival-rate multiplier, baked in at import.
    pub rate_scale: f64,
    /// Playback slowdown, baked in at import.
    pub time_stretch: f64,
    /// Home-region relabelling; empty = identity.
    pub region_map: Vec<usize>,
    /// Keep only the first N distinct source ids.
    pub max_services: Option<usize>,
    /// Keep only the first N normalized ticks.
    pub max_ticks: Option<usize>,
}

impl Default for ImportSpec {
    fn default() -> Self {
        ImportSpec {
            path: String::new(),
            format: "azure".into(),
            tick_secs: None,
            regions: 4,
            rate_scale: 1.0,
            time_stretch: 1.0,
            region_map: Vec::new(),
            max_services: None,
            max_ticks: None,
        }
    }
}

/// One `[[workload.services]]` entry: `count` consecutive services (VM
/// indices, in table order) sized by this spec. When the table is
/// present its counts must sum to `workload.vms`; when absent every VM
/// is the paper's uniform web-service spec. Field defaults mirror that
/// uniform VM, so a partial entry only overrides what it names.
#[derive(Clone, Debug, PartialEq)]
pub struct ServiceSpecEntry {
    /// Consecutive services of this spec.
    pub count: usize,
    /// Disk image size, MB (drives migration transfer cost).
    pub image_size_mb: f64,
    /// Memory floor, MB (guest OS + idle stack footprint).
    pub base_mem_mb: f64,
    /// Memory held per in-flight request, MB (`None` = the service
    /// class's constant, or an imported trace's measured profile).
    pub mem_mb_per_inflight: Option<f64>,
    /// SLA: response time fully satisfying the agreement, seconds.
    pub rt0_secs: f64,
    /// SLA: tolerance multiplier (fulfillment reaches 0 at `alpha·rt0`).
    pub alpha: f64,
    /// Non-CPU fraction of service time (I/O waits).
    pub io_wait_factor: f64,
    /// Idle CPU of the stack, percent-of-core.
    pub idle_cpu_pct: f64,
}

impl Default for ServiceSpecEntry {
    fn default() -> Self {
        ServiceSpecEntry {
            count: 1,
            image_size_mb: 2048.0,
            base_mem_mb: 256.0,
            mem_mb_per_inflight: None,
            rt0_secs: 0.1,
            alpha: 10.0,
            io_wait_factor: 0.6,
            idle_cpu_pct: 2.0,
        }
    }
}

/// `[workload]` — demand.
#[derive(Clone, Debug, PartialEq)]
pub struct WorkloadSpec {
    /// Synthetic preset (ignored when `trace` or `import` is set).
    pub preset: WorkloadPreset,
    /// Hosted services / VMs.
    pub vms: usize,
    /// Nominal peak request rate per service.
    pub peak_rps: f64,
    /// Global load multiplier (Figure 8's sweep axis).
    pub load_scale: f64,
    /// Paper's minute-70–90 flash-crowd multiplier (Figure 6).
    pub flash_crowd: Option<f64>,
    /// Per-service VM sizing (`[[workload.services]]`); empty = the
    /// paper's uniform web-service VM for every service.
    pub services: Vec<ServiceSpecEntry>,
    /// Replay a recorded trace instead of generating synthetically.
    pub trace: Option<TraceReplaySpec>,
    /// Import a public dataset (Azure/Alibaba) as the demand source.
    pub import: Option<ImportSpec>,
}

/// One flat- or step-tariff override for one DC.
#[derive(Clone, Debug, PartialEq)]
pub struct TariffSpec {
    /// DC index.
    pub dc: usize,
    /// Flat €/kWh (before any step).
    pub eur_per_kwh: f64,
    /// Optional step: at this hour the price becomes `step_eur_per_kwh`.
    pub step_at_hour: Option<u64>,
    /// Price after the step (only read when `step_at_hour` is set).
    pub step_eur_per_kwh: f64,
}

/// `[energy]` — per-DC supply beyond the paper's flat Table II regime.
#[derive(Clone, Debug, PartialEq)]
pub struct EnergySpec {
    /// Hide dynamic prices from the scheduler (control arm).
    pub price_blind: bool,
    /// DCs that get on-site solar.
    pub solar_dcs: Vec<usize>,
    /// Solar nameplate per host, watts.
    pub solar_per_pm_w: f64,
    /// Worst-day cloud attenuation in `[0, 1]`.
    pub min_sky: f64,
    /// Tariff overrides.
    pub tariffs: Vec<TariffSpec>,
}

impl Default for EnergySpec {
    fn default() -> Self {
        EnergySpec {
            price_blind: false,
            solar_dcs: Vec::new(),
            solar_per_pm_w: 0.0,
            min_sky: 1.0,
            tariffs: Vec::new(),
        }
    }
}

impl EnergySpec {
    /// True when this is exactly the paper's flat Table II environment.
    pub fn is_paper_default(&self) -> bool {
        *self == EnergySpec::default()
    }
}

/// `[billing]` — the provider's pricing policy.
#[derive(Clone, Debug, PartialEq)]
pub struct BillingSpec {
    /// Revenue per VM-hour at SLA = 1 (€).
    pub vm_eur_per_hour: f64,
    /// Revenue scaling exponent with SLA fulfillment.
    pub sla_gamma: f64,
    /// Extra fixed fee per migration (€).
    pub migration_fee_eur: f64,
}

impl Default for BillingSpec {
    fn default() -> Self {
        let b = pamdc_econ::billing::BillingPolicy::default();
        BillingSpec {
            vm_eur_per_hour: b.vm_eur_per_hour,
            sla_gamma: b.sla_gamma,
            migration_fee_eur: b.migration_fee_eur,
        }
    }
}

/// Which placement policy plans each round.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PolicyKind {
    /// Never migrate (the paper's Static-Global).
    Static,
    /// Descending Best-Fit + consolidation pass.
    BestFit,
    /// Raw Algorithm 1 (no consolidation pass).
    BestFitRaw,
    /// The paper's two-layer hierarchical scheduler.
    Hierarchical,
    /// Latency-only packing (Figure 5 sanity check).
    FollowLoad,
    /// Consolidate toward the cheapest tariff.
    CheapestEnergy,
    /// Uniform-random exploration.
    Random,
}

impl PolicyKind {
    fn name(self) -> &'static str {
        match self {
            PolicyKind::Static => "static",
            PolicyKind::BestFit => "bestfit",
            PolicyKind::BestFitRaw => "bestfit-raw",
            PolicyKind::Hierarchical => "hierarchical",
            PolicyKind::FollowLoad => "follow-load",
            PolicyKind::CheapestEnergy => "cheapest-energy",
            PolicyKind::Random => "random",
        }
    }

    fn from_name(s: &str) -> Result<Self, SpecError> {
        match s {
            "static" => Ok(PolicyKind::Static),
            "bestfit" => Ok(PolicyKind::BestFit),
            "bestfit-raw" => Ok(PolicyKind::BestFitRaw),
            "hierarchical" => Ok(PolicyKind::Hierarchical),
            "follow-load" => Ok(PolicyKind::FollowLoad),
            "cheapest-energy" => Ok(PolicyKind::CheapestEnergy),
            "random" => Ok(PolicyKind::Random),
            _ => Err(bad(format!(
                "unknown policy kind {s:?} (static | bestfit | bestfit-raw | hierarchical | \
                 follow-load | cheapest-energy | random)"
            ))),
        }
    }
}

/// The belief source behind a policy (the paper's BF / BF-OB / BF-ML /
/// BF-True arms).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum OracleKind {
    /// Monitored last-window usage, as-is.
    Monitor,
    /// Monitored usage with 2× overbooking headroom.
    Overbooked,
    /// The Table-I trained predictor suite (triggers training).
    Ml,
    /// Ground-truth model (upper bound).
    True,
}

impl OracleKind {
    fn name(self) -> &'static str {
        match self {
            OracleKind::Monitor => "monitor",
            OracleKind::Overbooked => "overbooked",
            OracleKind::Ml => "ml",
            OracleKind::True => "true",
        }
    }

    fn from_name(s: &str) -> Result<Self, SpecError> {
        match s {
            "monitor" => Ok(OracleKind::Monitor),
            "overbooked" => Ok(OracleKind::Overbooked),
            "ml" => Ok(OracleKind::Ml),
            "true" => Ok(OracleKind::True),
            _ => Err(bad(format!(
                "unknown oracle {s:?} (monitor | overbooked | ml | true)"
            ))),
        }
    }
}

/// `[policy]` — the Plan stage.
#[derive(Clone, Debug, PartialEq)]
pub struct PolicySpec {
    /// Which scheduler.
    pub kind: PolicyKind,
    /// Which belief source.
    pub oracle: OracleKind,
    /// Planning horizon in ticks (`None` = one round, the paper's
    /// myopic choice; energy-chasing scenarios want ~60).
    pub plan_horizon_ticks: Option<u64>,
    /// Fleet size at which the solvers switch from the exact full scan
    /// to the candidate-index shortlist (`None` = compiled default;
    /// either side of the switch is bit-identical).
    pub index_min_hosts: Option<usize>,
    /// Opt into the approximate near-equivalence index, scoring up to
    /// this many hosts per coarse group. **Relaxes the bit-identity
    /// guarantee** — policies carrying it are loudly labeled in reports.
    /// `None` (default) keeps exact behavior.
    pub near_equivalence_top_k: Option<usize>,
}

/// `[run]` — simulation horizon and cadences.
#[derive(Clone, Debug, PartialEq)]
pub struct RunSpec {
    /// Simulated hours.
    pub hours: u64,
    /// Tick length, seconds.
    pub tick_secs: u64,
    /// Scheduling round cadence, ticks (the paper: every 10 minutes).
    pub round_every_ticks: u64,
    /// Anti-thrash cooldown, ticks.
    pub migration_cooldown_ticks: u64,
    /// Record full time series.
    pub keep_series: bool,
}

impl Default for RunSpec {
    fn default() -> Self {
        RunSpec {
            hours: 24,
            tick_secs: 60,
            round_every_ticks: 10,
            migration_cooldown_ticks: 10,
            keep_series: true,
        }
    }
}

/// `[profile]` — observability: stream a JSONL trace of the run and/or
/// heartbeat progress to stderr. Off by default; tracing never changes
/// decisions (reports stay bit-identical with it on or off).
#[derive(Clone, Debug, Default, PartialEq)]
pub struct ProfileSpec {
    /// JSONL trace destination (equivalent to `pamdc run --trace-out`).
    /// Relative paths resolve against the invoking working directory.
    pub trace_out: Option<String>,
    /// Print a progress heartbeat to stderr every simulated hour
    /// (equivalent to `--progress`).
    pub progress: bool,
}

/// `[serve]` — live-daemon knobs for `pamdc serve`: the wall-clock
/// budget a control round may spend before the scheduler degrades, the
/// snapshot cadence, and where the per-tick JSONL status stream goes.
/// Batch runs (`pamdc run`) ignore this table.
#[derive(Clone, Debug, PartialEq)]
pub struct ServeSpec {
    /// Wall-clock budget per control round, milliseconds (0 =
    /// unlimited). When a placement round overruns it, subsequent
    /// rounds drop the local-search refinement (bestfit-only) until
    /// rounds fit comfortably again — placement itself never skips.
    pub budget_ms: u64,
    /// Write a restart snapshot (recorded feed + session manifest)
    /// every this many consumed ticks.
    pub snapshot_every: u64,
    /// JSONL status-stream destination. `None` = `status.jsonl` inside
    /// the session directory. Relative paths resolve against the
    /// invoking working directory.
    pub status_out: Option<String>,
}

impl Default for ServeSpec {
    fn default() -> Self {
        ServeSpec {
            budget_ms: 0,
            snapshot_every: 60,
            status_out: None,
        }
    }
}

/// `[[faults]]` — one scheduled host crash.
#[derive(Clone, Debug, PartialEq)]
pub struct FaultSpec {
    /// PM index (global).
    pub pm: usize,
    /// Crash instant, minutes.
    pub at_min: u64,
    /// Repair delay, minutes.
    pub repair_after_min: u64,
}

/// `[[profile_changes]]` — one scheduled ground-truth performance change
/// ("software update", the paper's on-line learning future-work case).
#[derive(Clone, Debug, PartialEq)]
pub struct ProfileChangeSpec {
    /// VM index.
    pub vm: usize,
    /// When the update lands, minutes.
    pub at_min: u64,
    /// New idle memory floor, MB.
    pub base_mem_mb: f64,
    /// New MB per in-flight request.
    pub mem_mb_per_inflight: f64,
    /// New IO-wait factor.
    pub io_wait_factor: f64,
    /// New idle CPU percentage.
    pub idle_cpu_pct: f64,
}

/// `[training]` — the Table-I collection/training pipeline (used when
/// the policy oracle is `ml`, and by the `table1`/`fig4` experiments).
#[derive(Clone, Debug, PartialEq)]
pub struct TrainingSpec {
    /// VMs in the collection scenario.
    pub vms: usize,
    /// Load scales visited by the exploration runs.
    pub scales: Vec<f64>,
    /// Simulated hours per scale.
    pub hours_per_scale: u64,
    /// Training seed.
    pub seed: u64,
}

impl Default for TrainingSpec {
    fn default() -> Self {
        let cfg = pamdc_core::experiments::table1::Table1Config::default();
        TrainingSpec {
            vms: cfg.vms,
            scales: cfg.scales,
            hours_per_scale: cfg.hours_per_scale,
            seed: cfg.seed,
        }
    }
}

/// `[experiment]` — bind the spec to one of the registered experiment
/// drivers instead of the generic single-run path. `pamdc run` then
/// reproduces the driver's report bit-for-bit for the same seed. Valid
/// kinds come from the [`crate::kinds`] registry (`pamdc list` shows
/// them all).
#[derive(Clone, Debug, PartialEq)]
pub struct ExperimentSpec {
    /// Registered driver kind (see [`crate::kinds::kind_names`]).
    pub kind: String,
    /// Include the BF-True upper-bound arm (fig4).
    pub true_arm: bool,
    /// Load-scale sweep axis (fig8).
    pub load_scales: Vec<f64>,
    /// Hosts-per-DC sweep axis (fig8).
    pub pms_levels: Vec<usize>,
    /// Tariff-spread multipliers (heterogeneity; empty = driver
    /// default).
    pub spreads: Vec<f64>,
    /// Midpoint tariff-spike multiplier (price-adaptation).
    pub spike_factor: f64,
}

impl Default for ExperimentSpec {
    fn default() -> Self {
        ExperimentSpec {
            kind: String::new(),
            true_arm: true,
            load_scales: Vec::new(),
            pms_levels: Vec::new(),
            spreads: Vec::new(),
            spike_factor: 4.0,
        }
    }
}

/// A complete declarative scenario.
#[derive(Clone, Debug, PartialEq)]
pub struct ScenarioSpec {
    /// Scenario name (also the report label).
    pub name: String,
    /// One-line description (shown by `pamdc list`).
    pub description: String,
    /// Master seed.
    pub seed: u64,
    /// Datacenters and hosts.
    pub topology: TopologySpec,
    /// Demand.
    pub workload: WorkloadSpec,
    /// Per-DC energy supply.
    pub energy: EnergySpec,
    /// Pricing.
    pub billing: BillingSpec,
    /// Placement policy.
    pub policy: PolicySpec,
    /// Horizon and cadences.
    pub run: RunSpec,
    /// Observability (tracing + progress heartbeat).
    pub profile: ProfileSpec,
    /// Live-daemon knobs (`pamdc serve`).
    pub serve: ServeSpec,
    /// Scheduled host crashes.
    pub faults: Vec<FaultSpec>,
    /// Scheduled performance changes.
    pub profile_changes: Vec<ProfileChangeSpec>,
    /// Table-I training pipeline configuration.
    pub training: TrainingSpec,
    /// Optional experiment-driver binding.
    pub experiment: Option<ExperimentSpec>,
}

impl Default for ScenarioSpec {
    /// The paper's §V-C world under the hierarchical scheduler.
    fn default() -> Self {
        ScenarioSpec {
            name: "multi-dc".into(),
            description: String::new(),
            seed: 1,
            topology: TopologySpec {
                preset: TopologyPreset::MultiDc,
                pms_per_dc: 1,
                classes: Vec::new(),
                deploy_all_in: None,
            },
            workload: WorkloadSpec {
                preset: WorkloadPreset::MultiDc,
                vms: 5,
                peak_rps: 170.0,
                load_scale: 1.0,
                flash_crowd: None,
                services: Vec::new(),
                trace: None,
                import: None,
            },
            energy: EnergySpec::default(),
            billing: BillingSpec::default(),
            policy: PolicySpec {
                kind: PolicyKind::Hierarchical,
                oracle: OracleKind::True,
                plan_horizon_ticks: None,
                index_min_hosts: None,
                near_equivalence_top_k: None,
            },
            run: RunSpec::default(),
            profile: ProfileSpec::default(),
            serve: ServeSpec::default(),
            faults: Vec::new(),
            profile_changes: Vec::new(),
            training: TrainingSpec::default(),
            experiment: None,
        }
    }
}

// ---------------------------------------------------------------------
// Typed readers over the parsed TOML tree. Each consumes keys from a
// mutable copy of its table; leftovers are unknown keys and error out,
// so typos fail loudly instead of silently running the default.
// (`pub(crate)`: the campaign parser reads its files the same way.)
// ---------------------------------------------------------------------

pub(crate) struct Reader {
    table: Table,
    context: &'static str,
}

impl Reader {
    pub(crate) fn new(table: Table, context: &'static str) -> Self {
        Reader { table, context }
    }

    fn take(&mut self, key: &str) -> Option<Value> {
        self.table.remove(key)
    }

    pub(crate) fn take_str(&mut self, key: &str) -> Result<Option<String>, SpecError> {
        match self.take(key) {
            None => Ok(None),
            Some(Value::Str(s)) => Ok(Some(s)),
            Some(v) => Err(bad(format!(
                "{}.{key} must be a string, got {v:?}",
                self.context
            ))),
        }
    }

    pub(crate) fn take_f64(&mut self, key: &str) -> Result<Option<f64>, SpecError> {
        match self.take(key) {
            None => Ok(None),
            Some(v) => v
                .as_float()
                .map(Some)
                .ok_or_else(|| bad(format!("{}.{key} must be a number", self.context))),
        }
    }

    pub(crate) fn take_u64(&mut self, key: &str) -> Result<Option<u64>, SpecError> {
        match self.take(key) {
            None => Ok(None),
            Some(v) => match v.as_int() {
                Some(i) if i >= 0 => Ok(Some(i as u64)),
                _ => Err(bad(format!(
                    "{}.{key} must be a non-negative integer",
                    self.context
                ))),
            },
        }
    }

    pub(crate) fn take_usize(&mut self, key: &str) -> Result<Option<usize>, SpecError> {
        Ok(self.take_u64(key)?.map(|v| v as usize))
    }

    pub(crate) fn take_bool(&mut self, key: &str) -> Result<Option<bool>, SpecError> {
        match self.take(key) {
            None => Ok(None),
            Some(v) => v
                .as_bool()
                .map(Some)
                .ok_or_else(|| bad(format!("{}.{key} must be a boolean", self.context))),
        }
    }

    pub(crate) fn take_str_list(&mut self, key: &str) -> Result<Option<Vec<String>>, SpecError> {
        match self.take(key) {
            None => Ok(None),
            Some(Value::Array(items)) => items
                .into_iter()
                .map(|v| match v {
                    Value::Str(s) => Ok(s),
                    _ => Err(bad(format!("{}.{key} must list strings", self.context))),
                })
                .collect::<Result<Vec<_>, _>>()
                .map(Some),
            Some(_) => Err(bad(format!("{}.{key} must be an array", self.context))),
        }
    }

    pub(crate) fn take_f64_list(&mut self, key: &str) -> Result<Option<Vec<f64>>, SpecError> {
        match self.take(key) {
            None => Ok(None),
            Some(Value::Array(items)) => items
                .iter()
                .map(|v| {
                    v.as_float()
                        .ok_or_else(|| bad(format!("{}.{key} must list numbers", self.context)))
                })
                .collect::<Result<Vec<_>, _>>()
                .map(Some),
            Some(_) => Err(bad(format!("{}.{key} must be an array", self.context))),
        }
    }

    pub(crate) fn take_usize_list(&mut self, key: &str) -> Result<Option<Vec<usize>>, SpecError> {
        match self.take(key) {
            None => Ok(None),
            Some(Value::Array(items)) => items
                .iter()
                .map(|v| match v.as_int() {
                    Some(i) if i >= 0 => Ok(i as usize),
                    _ => Err(bad(format!(
                        "{}.{key} must list non-negative integers",
                        self.context
                    ))),
                })
                .collect::<Result<Vec<_>, _>>()
                .map(Some),
            Some(_) => Err(bad(format!("{}.{key} must be an array", self.context))),
        }
    }

    pub(crate) fn take_table(
        &mut self,
        key: &str,
        context: &'static str,
    ) -> Result<Option<Reader>, SpecError> {
        match self.take(key) {
            None => Ok(None),
            Some(Value::Table(t)) => Ok(Some(Reader::new(t, context))),
            Some(_) => Err(bad(format!("{}.{key} must be a [table]", self.context))),
        }
    }

    pub(crate) fn take_table_array(
        &mut self,
        key: &str,
        context: &'static str,
    ) -> Result<Vec<Reader>, SpecError> {
        match self.take(key) {
            None => Ok(Vec::new()),
            Some(Value::Array(items)) => items
                .into_iter()
                .map(|v| match v {
                    Value::Table(t) => Ok(Reader::new(t, context)),
                    _ => Err(bad(format!("{}.{key} must be [[tables]]", self.context))),
                })
                .collect(),
            Some(_) => Err(bad(format!("{}.{key} must be [[tables]]", self.context))),
        }
    }

    pub(crate) fn finish(self) -> Result<(), SpecError> {
        if let Some(key) = self.table.keys().next() {
            return Err(bad(format!("unknown key {:?} in [{}]", key, self.context)));
        }
        Ok(())
    }
}

impl ScenarioSpec {
    /// Parses a spec document. Missing sections/keys take the defaults
    /// of [`ScenarioSpec::default`]; unknown keys are errors.
    pub fn parse(text: &str) -> Result<Self, SpecError> {
        let mut spec = ScenarioSpec::default();
        let mut root = Reader::new(toml::parse(text)?, "root");

        if let Some(name) = root.take_str("name")? {
            spec.name = name;
        }
        if let Some(desc) = root.take_str("description")? {
            spec.description = desc;
        }
        if let Some(seed) = root.take_u64("seed")? {
            spec.seed = seed;
        }

        if let Some(mut t) = root.take_table("topology", "topology")? {
            if let Some(preset) = t.take_str("preset")? {
                spec.topology.preset = TopologyPreset::from_name(&preset)?;
                // The intra-DC preset defaults follow the paper testbed.
                if spec.topology.preset == TopologyPreset::IntraDc {
                    spec.topology.pms_per_dc = 4;
                }
            }
            if let Some(pms) = t.take_usize("pms_per_dc")? {
                if pms == 0 {
                    return Err(bad("topology.pms_per_dc must be >= 1"));
                }
                spec.topology.pms_per_dc = pms;
            }
            for mut c in t.take_table_array("classes", "topology.classes")? {
                let count = c.take_usize("count")?.unwrap_or(1);
                let preset = c.take_str("preset")?;
                let cores = c.take_usize("cores")?;
                let mem_mb = c.take_f64("mem_mb")?;
                let idle_watts = c.take_f64("idle_watts")?;
                let peak_watts = c.take_f64("peak_watts")?;
                c.finish()?;
                let machine = match preset.as_deref() {
                    Some(name) => {
                        if cores.is_some()
                            || mem_mb.is_some()
                            || idle_watts.is_some()
                            || peak_watts.is_some()
                        {
                            return Err(bad(format!(
                                "topology.classes: preset {name:?} cannot be combined with \
                                 custom cores/mem_mb/idle_watts/peak_watts fields"
                            )));
                        }
                        match name {
                            "atom" => MachineClass::Atom,
                            "xeon" => MachineClass::Xeon,
                            _ => {
                                return Err(bad(format!(
                                    "unknown machine preset {name:?} (atom | xeon)"
                                )))
                            }
                        }
                    }
                    None => MachineClass::Custom {
                        cores: cores.ok_or_else(|| {
                            bad("topology.classes: custom classes need cores (or a preset)")
                        })?,
                        mem_mb: mem_mb
                            .ok_or_else(|| bad("topology.classes: custom classes need mem_mb"))?,
                        idle_watts: idle_watts.ok_or_else(|| {
                            bad("topology.classes: custom classes need idle_watts")
                        })?,
                        peak_watts: peak_watts.ok_or_else(|| {
                            bad("topology.classes: custom classes need peak_watts")
                        })?,
                    },
                };
                spec.topology.classes.push(HostClassSpec { count, machine });
            }
            spec.topology.deploy_all_in = t.take_usize("deploy_all_in")?;
            t.finish()?;
        }

        if let Some(mut t) = root.take_table("workload", "workload")? {
            if let Some(preset) = t.take_str("preset")? {
                spec.workload.preset = WorkloadPreset::from_name(&preset)?;
                if spec.workload.preset == WorkloadPreset::IntraDc {
                    spec.workload.peak_rps = 240.0;
                }
            }
            if let Some(vms) = t.take_usize("vms")? {
                if vms == 0 {
                    return Err(bad("workload.vms must be >= 1"));
                }
                spec.workload.vms = vms;
            }
            if let Some(v) = t.take_f64("peak_rps")? {
                spec.workload.peak_rps = v;
            }
            if let Some(v) = t.take_f64("load_scale")? {
                spec.workload.load_scale = v;
            }
            spec.workload.flash_crowd = t.take_f64("flash_crowd")?;
            for mut sv in t.take_table_array("services", "workload.services")? {
                let mut entry = ServiceSpecEntry::default();
                if let Some(v) = sv.take_usize("count")? {
                    entry.count = v;
                }
                if let Some(v) = sv.take_f64("image_size_mb")? {
                    entry.image_size_mb = v;
                }
                if let Some(v) = sv.take_f64("base_mem_mb")? {
                    entry.base_mem_mb = v;
                }
                entry.mem_mb_per_inflight = sv.take_f64("mem_mb_per_inflight")?;
                if let Some(v) = sv.take_f64("rt0_secs")? {
                    entry.rt0_secs = v;
                }
                if let Some(v) = sv.take_f64("alpha")? {
                    entry.alpha = v;
                }
                if let Some(v) = sv.take_f64("io_wait_factor")? {
                    entry.io_wait_factor = v;
                }
                if let Some(v) = sv.take_f64("idle_cpu_pct")? {
                    entry.idle_cpu_pct = v;
                }
                sv.finish()?;
                spec.workload.services.push(entry);
            }
            if let Some(mut tr) = t.take_table("trace", "workload.trace")? {
                let path = tr
                    .take_str("path")?
                    .ok_or_else(|| bad("workload.trace.path is required"))?;
                let mut replay = TraceReplaySpec {
                    path,
                    ..TraceReplaySpec::default()
                };
                if let Some(v) = tr.take_f64("rate_scale")? {
                    replay.rate_scale = v;
                }
                if let Some(v) = tr.take_f64("time_stretch")? {
                    replay.time_stretch = v;
                }
                if let Some(map) = tr.take_usize_list("region_map")? {
                    replay.region_map = map;
                }
                tr.finish()?;
                spec.workload.trace = Some(replay);
            }
            if let Some(mut im) = t.take_table("import", "workload.import")? {
                let path = im
                    .take_str("path")?
                    .ok_or_else(|| bad("workload.import.path is required"))?;
                let format = im
                    .take_str("format")?
                    .ok_or_else(|| bad("workload.import.format is required (azure | alibaba)"))?;
                let mut import = ImportSpec {
                    path,
                    format,
                    ..ImportSpec::default()
                };
                import.tick_secs = im.take_u64("tick_secs")?;
                if let Some(v) = im.take_usize("regions")? {
                    import.regions = v;
                }
                if let Some(v) = im.take_f64("rate_scale")? {
                    import.rate_scale = v;
                }
                if let Some(v) = im.take_f64("time_stretch")? {
                    import.time_stretch = v;
                }
                if let Some(map) = im.take_usize_list("region_map")? {
                    import.region_map = map;
                }
                import.max_services = im.take_usize("max_services")?;
                import.max_ticks = im.take_usize("max_ticks")?;
                im.finish()?;
                spec.workload.import = Some(import);
            }
            t.finish()?;
        }

        if let Some(mut t) = root.take_table("energy", "energy")? {
            if let Some(v) = t.take_bool("price_blind")? {
                spec.energy.price_blind = v;
            }
            if let Some(v) = t.take_usize_list("solar_dcs")? {
                spec.energy.solar_dcs = v;
            }
            if let Some(v) = t.take_f64("solar_per_pm_w")? {
                spec.energy.solar_per_pm_w = v;
            }
            if let Some(v) = t.take_f64("min_sky")? {
                spec.energy.min_sky = v;
            }
            for mut tr in t.take_table_array("tariffs", "energy.tariffs")? {
                let dc = tr
                    .take_usize("dc")?
                    .ok_or_else(|| bad("energy.tariffs.dc is required"))?;
                let eur = tr
                    .take_f64("eur_per_kwh")?
                    .ok_or_else(|| bad("energy.tariffs.eur_per_kwh is required"))?;
                let step_at_hour = tr.take_u64("step_at_hour")?;
                let step_eur = tr.take_f64("step_eur_per_kwh")?.unwrap_or(eur);
                tr.finish()?;
                spec.energy.tariffs.push(TariffSpec {
                    dc,
                    eur_per_kwh: eur,
                    step_at_hour,
                    step_eur_per_kwh: step_eur,
                });
            }
            t.finish()?;
        }

        if let Some(mut t) = root.take_table("billing", "billing")? {
            if let Some(v) = t.take_f64("vm_eur_per_hour")? {
                spec.billing.vm_eur_per_hour = v;
            }
            if let Some(v) = t.take_f64("sla_gamma")? {
                spec.billing.sla_gamma = v;
            }
            if let Some(v) = t.take_f64("migration_fee_eur")? {
                spec.billing.migration_fee_eur = v;
            }
            t.finish()?;
        }

        if let Some(mut t) = root.take_table("policy", "policy")? {
            if let Some(kind) = t.take_str("kind")? {
                spec.policy.kind = PolicyKind::from_name(&kind)?;
            }
            if let Some(oracle) = t.take_str("oracle")? {
                spec.policy.oracle = OracleKind::from_name(&oracle)?;
            }
            spec.policy.plan_horizon_ticks = t.take_u64("plan_horizon_ticks")?;
            spec.policy.index_min_hosts = t.take_usize("index_min_hosts")?;
            if spec.policy.index_min_hosts == Some(0) {
                return Err(bad("policy.index_min_hosts must be >= 1"));
            }
            spec.policy.near_equivalence_top_k = t.take_usize("near_equivalence_top_k")?;
            if spec.policy.near_equivalence_top_k == Some(0) {
                return Err(bad("policy.near_equivalence_top_k must be >= 1"));
            }
            t.finish()?;
        }

        if let Some(mut t) = root.take_table("run", "run")? {
            if let Some(v) = t.take_u64("hours")? {
                spec.run.hours = v;
            }
            if let Some(v) = t.take_u64("tick_secs")? {
                if v == 0 {
                    return Err(bad("run.tick_secs must be >= 1"));
                }
                spec.run.tick_secs = v;
            }
            if let Some(v) = t.take_u64("round_every_ticks")? {
                spec.run.round_every_ticks = v;
            }
            if let Some(v) = t.take_u64("migration_cooldown_ticks")? {
                spec.run.migration_cooldown_ticks = v;
            }
            if let Some(v) = t.take_bool("keep_series")? {
                spec.run.keep_series = v;
            }
            t.finish()?;
        }

        if let Some(mut t) = root.take_table("profile", "profile")? {
            spec.profile.trace_out = t.take_str("trace_out")?;
            if let Some(v) = t.take_bool("progress")? {
                spec.profile.progress = v;
            }
            t.finish()?;
        }

        if let Some(mut t) = root.take_table("serve", "serve")? {
            if let Some(v) = t.take_u64("budget_ms")? {
                spec.serve.budget_ms = v;
            }
            if let Some(v) = t.take_u64("snapshot_every")? {
                spec.serve.snapshot_every = v;
            }
            spec.serve.status_out = t.take_str("status_out")?;
            t.finish()?;
        }

        for mut t in root.take_table_array("faults", "faults")? {
            let pm = t
                .take_usize("pm")?
                .ok_or_else(|| bad("faults.pm is required"))?;
            let at_min = t
                .take_u64("at_min")?
                .ok_or_else(|| bad("faults.at_min is required"))?;
            let repair = t
                .take_u64("repair_after_min")?
                .ok_or_else(|| bad("faults.repair_after_min is required"))?;
            t.finish()?;
            spec.faults.push(FaultSpec {
                pm,
                at_min,
                repair_after_min: repair,
            });
        }

        for mut t in root.take_table_array("profile_changes", "profile_changes")? {
            let vm = t
                .take_usize("vm")?
                .ok_or_else(|| bad("profile_changes.vm is required"))?;
            let at_min = t
                .take_u64("at_min")?
                .ok_or_else(|| bad("profile_changes.at_min is required"))?;
            let change = ProfileChangeSpec {
                vm,
                at_min,
                base_mem_mb: t.take_f64("base_mem_mb")?.unwrap_or(512.0),
                mem_mb_per_inflight: t.take_f64("mem_mb_per_inflight")?.unwrap_or(2.0),
                io_wait_factor: t.take_f64("io_wait_factor")?.unwrap_or(0.6),
                idle_cpu_pct: t.take_f64("idle_cpu_pct")?.unwrap_or(2.0),
            };
            t.finish()?;
            spec.profile_changes.push(change);
        }

        if let Some(mut t) = root.take_table("training", "training")? {
            if let Some(v) = t.take_usize("vms")? {
                spec.training.vms = v;
            }
            if let Some(v) = t.take_f64_list("scales")? {
                spec.training.scales = v;
            }
            if let Some(v) = t.take_u64("hours_per_scale")? {
                spec.training.hours_per_scale = v;
            }
            if let Some(v) = t.take_u64("seed")? {
                spec.training.seed = v;
            }
            t.finish()?;
        }

        if let Some(mut t) = root.take_table("experiment", "experiment")? {
            let kind = t
                .take_str("kind")?
                .ok_or_else(|| bad("experiment.kind is required"))?;
            let mut exp = ExperimentSpec {
                kind,
                ..ExperimentSpec::default()
            };
            if let Some(v) = t.take_bool("true_arm")? {
                exp.true_arm = v;
            }
            if let Some(v) = t.take_f64_list("load_scales")? {
                exp.load_scales = v;
            }
            if let Some(v) = t.take_usize_list("pms_levels")? {
                exp.pms_levels = v;
            }
            if let Some(v) = t.take_f64_list("spreads")? {
                exp.spreads = v;
            }
            if let Some(v) = t.take_f64("spike_factor")? {
                exp.spike_factor = v;
            }
            t.finish()?;
            spec.experiment = Some(exp);
        }

        root.finish()?;
        spec.validate()?;
        Ok(spec)
    }

    /// Semantic checks shared by parsing and hand-built specs.
    pub fn validate(&self) -> Result<(), SpecError> {
        let dcs = match self.topology.preset {
            TopologyPreset::IntraDc => 1,
            TopologyPreset::MultiDc => 4,
        };
        if let Some(dc) = self.topology.deploy_all_in {
            if dc >= dcs {
                return Err(bad(format!(
                    "topology.deploy_all_in {dc} out of range ({dcs} DCs)"
                )));
            }
        }
        for t in &self.energy.tariffs {
            if t.dc >= dcs {
                return Err(bad(format!(
                    "energy.tariffs.dc {} out of range ({dcs} DCs)",
                    t.dc
                )));
            }
        }
        for &dc in &self.energy.solar_dcs {
            if dc >= dcs {
                return Err(bad(format!(
                    "energy.solar_dcs entry {dc} out of range ({dcs} DCs)"
                )));
            }
        }
        for c in &self.topology.classes {
            if c.count == 0 {
                return Err(bad("topology.classes count must be >= 1"));
            }
            if let MachineClass::Custom {
                cores,
                mem_mb,
                idle_watts,
                peak_watts,
            } = &c.machine
            {
                if *cores == 0 {
                    return Err(bad("topology.classes cores must be >= 1"));
                }
                if !(mem_mb.is_finite() && *mem_mb > 0.0) {
                    return Err(bad("topology.classes mem_mb must be finite and > 0"));
                }
                if !(idle_watts.is_finite() && peak_watts.is_finite() && *idle_watts > 0.0) {
                    return Err(bad(
                        "topology.classes idle_watts/peak_watts must be finite and > 0",
                    ));
                }
                if idle_watts > peak_watts {
                    return Err(bad("topology.classes idle_watts cannot exceed peak_watts"));
                }
            }
        }
        if self.profile.trace_out.as_deref() == Some("") {
            return Err(bad("profile.trace_out must be a non-empty path"));
        }
        if self.serve.status_out.as_deref() == Some("") {
            return Err(bad("serve.status_out must be a non-empty path"));
        }
        if self.serve.snapshot_every == 0 {
            return Err(bad("serve.snapshot_every must be at least 1 tick"));
        }
        let pms = dcs * self.topology.hosts_per_dc();
        for f in &self.faults {
            if f.pm >= pms {
                return Err(bad(format!("faults.pm {} out of range ({pms} PMs)", f.pm)));
            }
        }
        for c in &self.profile_changes {
            if c.vm >= self.workload.vms {
                return Err(bad(format!(
                    "profile_changes.vm {} out of range ({} VMs)",
                    c.vm, self.workload.vms
                )));
            }
        }
        if !self.workload.services.is_empty() {
            let total: usize = self.workload.services.iter().map(|s| s.count).sum();
            if total != self.workload.vms {
                return Err(bad(format!(
                    "[[workload.services]] counts sum to {total} services but workload.vms \
                     = {} — size every VM exactly once",
                    self.workload.vms
                )));
            }
            for s in &self.workload.services {
                if s.count == 0 {
                    return Err(bad("workload.services count must be >= 1"));
                }
                let positive = |v: f64| v.is_finite() && v > 0.0;
                if !positive(s.image_size_mb) || !positive(s.base_mem_mb) || !positive(s.rt0_secs) {
                    return Err(bad(
                        "workload.services image_size_mb/base_mem_mb/rt0_secs must be finite \
                         and > 0",
                    ));
                }
                if !(s.alpha.is_finite() && s.alpha > 1.0) {
                    return Err(bad("workload.services alpha must be finite and > 1"));
                }
                if let Some(m) = s.mem_mb_per_inflight {
                    if !positive(m) {
                        return Err(bad(
                            "workload.services mem_mb_per_inflight must be finite and > 0",
                        ));
                    }
                }
                let non_negative = |v: f64| v.is_finite() && v >= 0.0;
                if !non_negative(s.io_wait_factor) || !non_negative(s.idle_cpu_pct) {
                    return Err(bad(
                        "workload.services io_wait_factor/idle_cpu_pct must be finite and >= 0",
                    ));
                }
            }
        }
        if self.workload.preset == WorkloadPreset::FollowTheSun {
            if self.topology.preset != TopologyPreset::MultiDc {
                return Err(bad(
                    "workload preset follow-the-sun requires the multi-dc topology",
                ));
            }
            if self.workload.vms != 1
                && self.workload.trace.is_none()
                && self.workload.import.is_none()
            {
                return Err(bad(format!(
                    "workload preset follow-the-sun hosts exactly one VM, not {}",
                    self.workload.vms
                )));
            }
        }
        if self.workload.trace.is_some() && self.workload.flash_crowd.is_some() {
            return Err(bad(
                "workload.flash_crowd cannot be combined with workload.trace — a replayed \
                 trace already carries its demand; bake the crowd into the recording instead",
            ));
        }
        if self.workload.import.is_some() && self.workload.trace.is_some() {
            return Err(bad(
                "workload.trace and workload.import are mutually exclusive — pick one \
                 demand source",
            ));
        }
        if self.workload.import.is_some() && self.workload.flash_crowd.is_some() {
            return Err(bad(
                "workload.flash_crowd cannot be combined with workload.import — an imported \
                 trace already carries its demand",
            ));
        }
        if let Some(import) = &self.workload.import {
            if import.path.is_empty() {
                return Err(bad("workload.import.path must not be empty"));
            }
            if pamdc_workload::import::TraceFormat::from_name(&import.format).is_none() {
                return Err(bad(format!(
                    "unknown workload.import.format {:?} (azure | alibaba)",
                    import.format
                )));
            }
            // The knob rules (regions, scales, region_map, tick, caps)
            // live with the importer — one source of truth.
            crate::build::import_options(import)
                .validate()
                .map_err(|e| bad(format!("workload.import: {}", e.0)))?;
        }
        if let Some(trace) = &self.workload.trace {
            if trace.path.is_empty() {
                return Err(bad("workload.trace.path must not be empty"));
            }
            if !(trace.time_stretch.is_finite() && trace.time_stretch > 0.0) {
                return Err(bad("workload.trace.time_stretch must be finite and > 0"));
            }
            if !(trace.rate_scale.is_finite() && trace.rate_scale >= 0.0) {
                return Err(bad("workload.trace.rate_scale must be finite and >= 0"));
            }
        }
        if let Some(exp) = &self.experiment {
            // The kind registry is the single source of truth: a kind
            // registered there is automatically valid here.
            let Some(entry) = crate::kinds::find(&exp.kind) else {
                return Err(bad(format!(
                    "unknown experiment kind {:?} (expected one of {})",
                    exp.kind,
                    crate::kinds::kind_names().join(" | ")
                )));
            };
            if !(exp.spike_factor.is_finite() && exp.spike_factor > 0.0) {
                return Err(bad("experiment.spike_factor must be finite and > 0"));
            }
            // Experiment drivers build their own worlds: a file-backed
            // demand source or an unhonored class mix would be silently
            // ignored, so reject the combination loudly instead.
            if self.workload.trace.is_some() || self.workload.import.is_some() {
                return Err(bad(format!(
                    "[experiment] kind = {:?} builds its own demand, so workload.trace/\
                     workload.import would be ignored — drop the [experiment] table to run \
                     the file-backed demand through the generic path",
                    exp.kind
                )));
            }
            if !self.topology.classes.is_empty() && !entry.uses_topology_classes {
                return Err(bad(format!(
                    "[experiment] kind = {:?} does not honor [[topology.classes]] (its driver \
                     builds its own fleet) — drop the class table, or drop the [experiment] \
                     binding to run the mixed fleet through the generic path",
                    exp.kind
                )));
            }
            if !self.workload.services.is_empty() {
                return Err(bad(format!(
                    "[experiment] kind = {:?} does not honor [[workload.services]] (its \
                     driver sizes its own VMs) — drop the services table, or drop the \
                     [experiment] binding to run the sized fleet through the generic path",
                    exp.kind
                )));
            }
        }
        Ok(())
    }

    /// Emits the canonical TOML form (every field written, keys sorted
    /// by the emitter). `parse(emit(spec)) == spec`.
    pub fn emit(&self) -> String {
        let mut root = Table::new();
        root.insert("name".into(), Value::Str(self.name.clone()));
        root.insert("description".into(), Value::Str(self.description.clone()));
        root.insert("seed".into(), Value::Int(self.seed as i64));

        let mut topology = Table::new();
        topology.insert(
            "preset".into(),
            Value::Str(self.topology.preset.name().into()),
        );
        topology.insert(
            "pms_per_dc".into(),
            Value::Int(self.topology.pms_per_dc as i64),
        );
        if !self.topology.classes.is_empty() {
            let classes = self
                .topology
                .classes
                .iter()
                .map(|c| {
                    let mut table = Table::new();
                    table.insert("count".into(), Value::Int(c.count as i64));
                    match &c.machine {
                        MachineClass::Atom => {
                            table.insert("preset".into(), Value::Str("atom".into()));
                        }
                        MachineClass::Xeon => {
                            table.insert("preset".into(), Value::Str("xeon".into()));
                        }
                        MachineClass::Custom {
                            cores,
                            mem_mb,
                            idle_watts,
                            peak_watts,
                        } => {
                            table.insert("cores".into(), Value::Int(*cores as i64));
                            table.insert("mem_mb".into(), Value::Float(*mem_mb));
                            table.insert("idle_watts".into(), Value::Float(*idle_watts));
                            table.insert("peak_watts".into(), Value::Float(*peak_watts));
                        }
                    }
                    Value::Table(table)
                })
                .collect();
            topology.insert("classes".into(), Value::Array(classes));
        }
        if let Some(dc) = self.topology.deploy_all_in {
            topology.insert("deploy_all_in".into(), Value::Int(dc as i64));
        }
        root.insert("topology".into(), Value::Table(topology));

        let mut workload = Table::new();
        workload.insert(
            "preset".into(),
            Value::Str(self.workload.preset.name().into()),
        );
        workload.insert("vms".into(), Value::Int(self.workload.vms as i64));
        workload.insert("peak_rps".into(), Value::Float(self.workload.peak_rps));
        workload.insert("load_scale".into(), Value::Float(self.workload.load_scale));
        if let Some(fc) = self.workload.flash_crowd {
            workload.insert("flash_crowd".into(), Value::Float(fc));
        }
        if !self.workload.services.is_empty() {
            let services = self
                .workload
                .services
                .iter()
                .map(|s| {
                    let mut t = Table::new();
                    t.insert("count".into(), Value::Int(s.count as i64));
                    t.insert("image_size_mb".into(), Value::Float(s.image_size_mb));
                    t.insert("base_mem_mb".into(), Value::Float(s.base_mem_mb));
                    if let Some(m) = s.mem_mb_per_inflight {
                        t.insert("mem_mb_per_inflight".into(), Value::Float(m));
                    }
                    t.insert("rt0_secs".into(), Value::Float(s.rt0_secs));
                    t.insert("alpha".into(), Value::Float(s.alpha));
                    t.insert("io_wait_factor".into(), Value::Float(s.io_wait_factor));
                    t.insert("idle_cpu_pct".into(), Value::Float(s.idle_cpu_pct));
                    Value::Table(t)
                })
                .collect();
            workload.insert("services".into(), Value::Array(services));
        }
        if let Some(trace) = &self.workload.trace {
            let mut t = Table::new();
            t.insert("path".into(), Value::Str(trace.path.clone()));
            t.insert("rate_scale".into(), Value::Float(trace.rate_scale));
            t.insert("time_stretch".into(), Value::Float(trace.time_stretch));
            if !trace.region_map.is_empty() {
                t.insert(
                    "region_map".into(),
                    Value::Array(
                        trace
                            .region_map
                            .iter()
                            .map(|&r| Value::Int(r as i64))
                            .collect(),
                    ),
                );
            }
            workload.insert("trace".into(), Value::Table(t));
        }
        if let Some(import) = &self.workload.import {
            let mut t = Table::new();
            t.insert("path".into(), Value::Str(import.path.clone()));
            t.insert("format".into(), Value::Str(import.format.clone()));
            if let Some(secs) = import.tick_secs {
                t.insert("tick_secs".into(), Value::Int(secs as i64));
            }
            t.insert("regions".into(), Value::Int(import.regions as i64));
            t.insert("rate_scale".into(), Value::Float(import.rate_scale));
            t.insert("time_stretch".into(), Value::Float(import.time_stretch));
            if !import.region_map.is_empty() {
                t.insert(
                    "region_map".into(),
                    Value::Array(
                        import
                            .region_map
                            .iter()
                            .map(|&r| Value::Int(r as i64))
                            .collect(),
                    ),
                );
            }
            if let Some(n) = import.max_services {
                t.insert("max_services".into(), Value::Int(n as i64));
            }
            if let Some(n) = import.max_ticks {
                t.insert("max_ticks".into(), Value::Int(n as i64));
            }
            workload.insert("import".into(), Value::Table(t));
        }
        root.insert("workload".into(), Value::Table(workload));

        let mut energy = Table::new();
        energy.insert("price_blind".into(), Value::Bool(self.energy.price_blind));
        energy.insert(
            "solar_dcs".into(),
            Value::Array(
                self.energy
                    .solar_dcs
                    .iter()
                    .map(|&d| Value::Int(d as i64))
                    .collect(),
            ),
        );
        energy.insert(
            "solar_per_pm_w".into(),
            Value::Float(self.energy.solar_per_pm_w),
        );
        energy.insert("min_sky".into(), Value::Float(self.energy.min_sky));
        if !self.energy.tariffs.is_empty() {
            let tariffs = self
                .energy
                .tariffs
                .iter()
                .map(|t| {
                    let mut table = Table::new();
                    table.insert("dc".into(), Value::Int(t.dc as i64));
                    table.insert("eur_per_kwh".into(), Value::Float(t.eur_per_kwh));
                    if let Some(h) = t.step_at_hour {
                        table.insert("step_at_hour".into(), Value::Int(h as i64));
                        table.insert("step_eur_per_kwh".into(), Value::Float(t.step_eur_per_kwh));
                    }
                    Value::Table(table)
                })
                .collect();
            energy.insert("tariffs".into(), Value::Array(tariffs));
        }
        root.insert("energy".into(), Value::Table(energy));

        let mut billing = Table::new();
        billing.insert(
            "vm_eur_per_hour".into(),
            Value::Float(self.billing.vm_eur_per_hour),
        );
        billing.insert("sla_gamma".into(), Value::Float(self.billing.sla_gamma));
        billing.insert(
            "migration_fee_eur".into(),
            Value::Float(self.billing.migration_fee_eur),
        );
        root.insert("billing".into(), Value::Table(billing));

        let mut policy = Table::new();
        policy.insert("kind".into(), Value::Str(self.policy.kind.name().into()));
        policy.insert(
            "oracle".into(),
            Value::Str(self.policy.oracle.name().into()),
        );
        if let Some(h) = self.policy.plan_horizon_ticks {
            policy.insert("plan_horizon_ticks".into(), Value::Int(h as i64));
        }
        if let Some(m) = self.policy.index_min_hosts {
            policy.insert("index_min_hosts".into(), Value::Int(m as i64));
        }
        if let Some(k) = self.policy.near_equivalence_top_k {
            policy.insert("near_equivalence_top_k".into(), Value::Int(k as i64));
        }
        root.insert("policy".into(), Value::Table(policy));

        let mut run = Table::new();
        run.insert("hours".into(), Value::Int(self.run.hours as i64));
        run.insert("tick_secs".into(), Value::Int(self.run.tick_secs as i64));
        run.insert(
            "round_every_ticks".into(),
            Value::Int(self.run.round_every_ticks as i64),
        );
        run.insert(
            "migration_cooldown_ticks".into(),
            Value::Int(self.run.migration_cooldown_ticks as i64),
        );
        run.insert("keep_series".into(), Value::Bool(self.run.keep_series));
        root.insert("run".into(), Value::Table(run));

        if self.profile != ProfileSpec::default() {
            let mut profile = Table::new();
            if let Some(path) = &self.profile.trace_out {
                profile.insert("trace_out".into(), Value::Str(path.clone()));
            }
            if self.profile.progress {
                profile.insert("progress".into(), Value::Bool(true));
            }
            root.insert("profile".into(), Value::Table(profile));
        }

        if self.serve != ServeSpec::default() {
            let defaults = ServeSpec::default();
            let mut serve = Table::new();
            if self.serve.budget_ms != defaults.budget_ms {
                serve.insert("budget_ms".into(), Value::Int(self.serve.budget_ms as i64));
            }
            if self.serve.snapshot_every != defaults.snapshot_every {
                serve.insert(
                    "snapshot_every".into(),
                    Value::Int(self.serve.snapshot_every as i64),
                );
            }
            if let Some(path) = &self.serve.status_out {
                serve.insert("status_out".into(), Value::Str(path.clone()));
            }
            root.insert("serve".into(), Value::Table(serve));
        }

        if !self.faults.is_empty() {
            let faults = self
                .faults
                .iter()
                .map(|f| {
                    let mut t = Table::new();
                    t.insert("pm".into(), Value::Int(f.pm as i64));
                    t.insert("at_min".into(), Value::Int(f.at_min as i64));
                    t.insert(
                        "repair_after_min".into(),
                        Value::Int(f.repair_after_min as i64),
                    );
                    Value::Table(t)
                })
                .collect();
            root.insert("faults".into(), Value::Array(faults));
        }

        if !self.profile_changes.is_empty() {
            let changes = self
                .profile_changes
                .iter()
                .map(|c| {
                    let mut t = Table::new();
                    t.insert("vm".into(), Value::Int(c.vm as i64));
                    t.insert("at_min".into(), Value::Int(c.at_min as i64));
                    t.insert("base_mem_mb".into(), Value::Float(c.base_mem_mb));
                    t.insert(
                        "mem_mb_per_inflight".into(),
                        Value::Float(c.mem_mb_per_inflight),
                    );
                    t.insert("io_wait_factor".into(), Value::Float(c.io_wait_factor));
                    t.insert("idle_cpu_pct".into(), Value::Float(c.idle_cpu_pct));
                    Value::Table(t)
                })
                .collect();
            root.insert("profile_changes".into(), Value::Array(changes));
        }

        let mut training = Table::new();
        training.insert("vms".into(), Value::Int(self.training.vms as i64));
        training.insert(
            "scales".into(),
            Value::Array(
                self.training
                    .scales
                    .iter()
                    .map(|&s| Value::Float(s))
                    .collect(),
            ),
        );
        training.insert(
            "hours_per_scale".into(),
            Value::Int(self.training.hours_per_scale as i64),
        );
        training.insert("seed".into(), Value::Int(self.training.seed as i64));
        root.insert("training".into(), Value::Table(training));

        if let Some(exp) = &self.experiment {
            let mut t = Table::new();
            t.insert("kind".into(), Value::Str(exp.kind.clone()));
            t.insert("true_arm".into(), Value::Bool(exp.true_arm));
            if !exp.load_scales.is_empty() {
                t.insert(
                    "load_scales".into(),
                    Value::Array(exp.load_scales.iter().map(|&s| Value::Float(s)).collect()),
                );
            }
            if !exp.pms_levels.is_empty() {
                t.insert(
                    "pms_levels".into(),
                    Value::Array(
                        exp.pms_levels
                            .iter()
                            .map(|&p| Value::Int(p as i64))
                            .collect(),
                    ),
                );
            }
            if !exp.spreads.is_empty() {
                t.insert(
                    "spreads".into(),
                    Value::Array(exp.spreads.iter().map(|&s| Value::Float(s)).collect()),
                );
            }
            if exp.spike_factor != ExperimentSpec::default().spike_factor {
                t.insert("spike_factor".into(), Value::Float(exp.spike_factor));
            }
            root.insert("experiment".into(), Value::Table(t));
        }

        toml::emit(&root)
    }

    /// Applies one `--param path.key=value` override to the spec by
    /// editing its emitted TOML form and re-parsing. The value text is
    /// parsed as a TOML scalar (so `policy.kind=static` needs quoting by
    /// the caller: strings are auto-quoted when a bare parse fails).
    pub fn with_param(&self, path: &str, value: &str) -> Result<ScenarioSpec, SpecError> {
        let mut root = toml::parse(&self.emit())?;
        set_path(&mut root, path, value)?;
        let spec = ScenarioSpec::parse(&toml::emit(&root))?;
        Ok(spec)
    }
}

/// Sets `a.b.c = value` inside a parsed tree; the value is parsed as a
/// TOML scalar, falling back to a quoted string.
fn set_path(root: &mut Table, path: &str, value: &str) -> Result<(), SpecError> {
    let parts: Vec<&str> = path.split('.').collect();
    let (last, parents) = parts
        .split_last()
        .ok_or_else(|| bad("empty --param path"))?;
    let mut table = root;
    for part in parents {
        let entry = table
            .entry(part.to_string())
            .or_insert_with(|| Value::Table(Table::new()));
        table = match entry {
            Value::Table(t) => t,
            _ => return Err(bad(format!("--param path segment {part:?} is not a table"))),
        };
    }
    // Try the raw text as a scalar document; fall back to quoting.
    let parsed = toml::parse(&format!("x = {value}"))
        .or_else(|_| toml::parse(&format!("x = \"{value}\"")))
        .map_err(|e| bad(format!("cannot parse --param value {value:?}: {e}")))?;
    let v = parsed
        .into_iter()
        .next()
        .map(|(_, v)| v)
        .expect("one key parsed");
    table.insert(last.to_string(), v);
    Ok(())
}

/// The parameter paths `pamdc sweep --param` accepts, for error hints.
pub fn sweepable_params() -> BTreeMap<&'static str, &'static str> {
    BTreeMap::from([
        ("seed", "master seed"),
        ("topology.pms_per_dc", "hosts per DC"),
        ("workload.vms", "hosted services"),
        ("workload.peak_rps", "nominal peak rate"),
        ("workload.load_scale", "global load multiplier"),
        ("workload.flash_crowd", "flash-crowd multiplier"),
        ("energy.solar_per_pm_w", "solar nameplate per host"),
        ("billing.vm_eur_per_hour", "revenue per VM-hour"),
        ("policy.kind", "placement policy"),
        ("policy.oracle", "belief source"),
        (
            "policy.index_min_hosts",
            "candidate-index dispatch threshold",
        ),
        (
            "policy.near_equivalence_top_k",
            "approximate shortlist width (opt-in)",
        ),
        ("run.hours", "simulated hours"),
        ("run.round_every_ticks", "scheduling cadence"),
    ])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_round_trips() {
        let spec = ScenarioSpec::default();
        let emitted = spec.emit();
        let parsed = ScenarioSpec::parse(&emitted).expect("parse");
        assert_eq!(spec, parsed);
    }

    #[test]
    #[allow(clippy::field_reassign_with_default)]
    fn rich_spec_round_trips() {
        let mut spec = ScenarioSpec::default();
        spec.name = "everything".into();
        spec.description = "all fields exercised \"quoted\"".into();
        spec.seed = 999;
        spec.topology.pms_per_dc = 3;
        spec.topology.deploy_all_in = Some(2);
        spec.workload.preset = WorkloadPreset::Uniform;
        // flash_crowd and trace are mutually exclusive (validate());
        // exercise the crowd here and the trace in a second spec below.
        spec.workload.flash_crowd = Some(8.5);
        spec.energy.price_blind = true;
        spec.energy.solar_dcs = vec![0, 2];
        spec.energy.solar_per_pm_w = 150.0;
        spec.energy.min_sky = 0.7;
        spec.energy.tariffs = vec![TariffSpec {
            dc: 3,
            eur_per_kwh: 0.112,
            step_at_hour: Some(12),
            step_eur_per_kwh: 0.448,
        }];
        spec.billing.sla_gamma = 2.0;
        spec.policy.kind = PolicyKind::BestFit;
        spec.policy.oracle = OracleKind::Ml;
        spec.policy.plan_horizon_ticks = Some(60);
        spec.policy.index_min_hosts = Some(32);
        spec.policy.near_equivalence_top_k = Some(3);
        spec.run.hours = 6;
        spec.profile = ProfileSpec {
            trace_out: Some("out/trace.jsonl".into()),
            progress: true,
        };
        spec.serve = ServeSpec {
            budget_ms: 250,
            snapshot_every: 30,
            status_out: Some("out/status.jsonl".into()),
        };
        spec.faults = vec![FaultSpec {
            pm: 1,
            at_min: 30,
            repair_after_min: 240,
        }];
        spec.profile_changes = vec![ProfileChangeSpec {
            vm: 0,
            at_min: 60,
            base_mem_mb: 640.0,
            mem_mb_per_inflight: 3.5,
            io_wait_factor: 0.5,
            idle_cpu_pct: 1.5,
        }];
        spec.experiment = Some(ExperimentSpec {
            kind: "fig8".into(),
            true_arm: false,
            load_scales: vec![0.5, 1.5],
            pms_levels: vec![1, 2],
            spreads: vec![1.0, 6.0],
            spike_factor: 2.5,
        });
        let parsed = ScenarioSpec::parse(&spec.emit()).expect("parse");
        assert_eq!(spec, parsed);

        let mut traced = ScenarioSpec::default();
        traced.workload.trace = Some(TraceReplaySpec {
            path: "traces/day.csv".into(),
            rate_scale: 1.5,
            time_stretch: 2.0,
            region_map: vec![3, 2, 1, 0],
        });
        let parsed = ScenarioSpec::parse(&traced.emit()).expect("parse");
        assert_eq!(traced, parsed);

        // An empty trace path is a config mistake, not "no trace".
        let mut bad_profile = ScenarioSpec::default();
        bad_profile.profile.trace_out = Some(String::new());
        assert!(bad_profile
            .validate()
            .unwrap_err()
            .0
            .contains("profile.trace_out"));
    }

    #[test]
    #[allow(clippy::field_reassign_with_default)]
    fn serve_table_round_trips_and_validates() {
        // An all-default [serve] table is not emitted at all.
        let spec = ScenarioSpec::default();
        assert!(!spec.emit().contains("[serve]"));
        // Partial overrides round-trip and only emit what moved.
        let mut budgeted = ScenarioSpec::default();
        budgeted.serve.budget_ms = 120;
        let emitted = budgeted.emit();
        assert!(emitted.contains("[serve]") && emitted.contains("budget_ms"));
        assert!(!emitted.contains("snapshot_every"), "default stays silent");
        assert_eq!(ScenarioSpec::parse(&emitted).expect("parse"), budgeted);
        // Misconfigurations fail loudly.
        let mut never_snapshots = ScenarioSpec::default();
        never_snapshots.serve.snapshot_every = 0;
        assert!(never_snapshots
            .validate()
            .unwrap_err()
            .0
            .contains("serve.snapshot_every"));
        let mut empty_status = ScenarioSpec::default();
        empty_status.serve.status_out = Some(String::new());
        assert!(empty_status
            .validate()
            .unwrap_err()
            .0
            .contains("serve.status_out"));
    }

    #[test]
    #[allow(clippy::field_reassign_with_default)]
    fn host_classes_and_import_round_trip() {
        let mut spec = ScenarioSpec::default();
        spec.topology.classes = vec![
            HostClassSpec {
                count: 2,
                machine: MachineClass::Atom,
            },
            HostClassSpec {
                count: 1,
                machine: MachineClass::Xeon,
            },
            HostClassSpec {
                count: 3,
                machine: MachineClass::Custom {
                    cores: 2,
                    mem_mb: 2048.0,
                    idle_watts: 15.5,
                    peak_watts: 22.25,
                },
            },
        ];
        spec.workload.import = Some(ImportSpec {
            path: "traces/azure.csv".into(),
            format: "azure".into(),
            tick_secs: Some(600),
            regions: 4,
            rate_scale: 0.5,
            time_stretch: 2.0,
            region_map: vec![1, 0, 3, 2],
            max_services: Some(5),
            max_ticks: Some(100),
        });
        spec.workload.vms = 5;
        let emitted = spec.emit();
        let parsed = ScenarioSpec::parse(&emitted).expect("parse");
        assert_eq!(spec, parsed);
        assert_eq!(parsed.emit(), emitted, "emission is a fixed point");
        assert_eq!(spec.topology.hosts_per_dc(), 6);
        // A defaulted import table keeps its defaults through the trip.
        let doc = "[workload.import]\npath = \"a.csv\"\nformat = \"alibaba\"\n";
        let parsed = ScenarioSpec::parse(doc).expect("parse");
        let import = parsed.workload.import.expect("import");
        assert_eq!(import.tick_secs, None);
        assert_eq!(import.regions, 4);
        assert_eq!(import.rate_scale, 1.0);
    }

    #[test]
    #[allow(clippy::field_reassign_with_default)]
    fn workload_services_round_trip_and_validate() {
        let mut spec = ScenarioSpec::default();
        spec.workload.vms = 3;
        spec.workload.services = vec![
            ServiceSpecEntry {
                count: 2,
                ..ServiceSpecEntry::default()
            },
            ServiceSpecEntry {
                count: 1,
                image_size_mb: 8192.0,
                base_mem_mb: 3072.0,
                mem_mb_per_inflight: Some(32.0),
                rt0_secs: 0.2,
                alpha: 5.0,
                io_wait_factor: 0.4,
                idle_cpu_pct: 1.0,
            },
        ];
        let emitted = spec.emit();
        let parsed = ScenarioSpec::parse(&emitted).expect("parse");
        assert_eq!(parsed, spec);
        assert_eq!(parsed.emit(), emitted, "emission is a fixed point");

        // A partial entry only overrides what it names.
        let doc = "[workload]\nvms = 1\n[[workload.services]]\nbase_mem_mb = 1536.0\n";
        let parsed = ScenarioSpec::parse(doc).expect("parse");
        assert_eq!(parsed.workload.services[0].base_mem_mb, 1536.0);
        assert_eq!(parsed.workload.services[0].image_size_mb, 2048.0);
        assert_eq!(parsed.workload.services[0].mem_mb_per_inflight, None);

        // Counts must sum to the VM count — size every VM exactly once.
        let doc = "[workload]\nvms = 5\n[[workload.services]]\ncount = 2\n";
        assert!(ScenarioSpec::parse(doc).unwrap_err().0.contains("sum"));
        // Zero counts, non-positive sizes and bad SLA terms all fail.
        let doc = "[workload]\nvms = 1\n[[workload.services]]\ncount = 0\n";
        assert!(ScenarioSpec::parse(doc).is_err());
        let doc = "[workload]\nvms = 1\n[[workload.services]]\nbase_mem_mb = -1.0\n";
        assert!(ScenarioSpec::parse(doc).is_err());
        let doc = "[workload]\nvms = 1\n[[workload.services]]\nalpha = 1.0\n";
        assert!(ScenarioSpec::parse(doc).is_err());
        let doc = "[workload]\nvms = 1\n[[workload.services]]\nmem_mb_per_inflight = 0.0\n";
        assert!(ScenarioSpec::parse(doc).is_err());
        // Experiment-bound specs reject the table loudly (their drivers
        // size their own VMs).
        let doc = "[experiment]\nkind = \"fig4\"\n\
                   [workload]\nvms = 5\n[[workload.services]]\ncount = 5\n";
        assert!(ScenarioSpec::parse(doc)
            .unwrap_err()
            .0
            .contains("workload.services"));
    }

    #[test]
    fn host_class_validation_fires() {
        // Preset + custom fields is ambiguous.
        let doc = "[[topology.classes]]\npreset = \"atom\"\ncores = 8\n";
        assert!(ScenarioSpec::parse(doc).unwrap_err().0.contains("preset"));
        // Unknown preset.
        let doc = "[[topology.classes]]\npreset = \"mainframe\"\n";
        assert!(ScenarioSpec::parse(doc).is_err());
        // Custom classes need all four numbers.
        let doc = "[[topology.classes]]\ncores = 8\nmem_mb = 1024.0\n";
        assert!(ScenarioSpec::parse(doc).is_err());
        // Zero hosts of a class is meaningless.
        let doc = "[[topology.classes]]\npreset = \"atom\"\ncount = 0\n";
        assert!(ScenarioSpec::parse(doc).is_err());
        // Inverted power endpoints.
        let doc = "[[topology.classes]]\ncores = 2\nmem_mb = 1024.0\n\
                   idle_watts = 50.0\npeak_watts = 20.0\n";
        assert!(ScenarioSpec::parse(doc).unwrap_err().0.contains("exceed"));
        // Fault indices validate against the class fleet, not pms_per_dc.
        let doc = "[[topology.classes]]\npreset = \"atom\"\ncount = 2\n\
                   [[faults]]\npm = 7\nat_min = 1\nrepair_after_min = 1\n";
        assert!(ScenarioSpec::parse(doc).is_ok(), "8 PMs: pm 7 in range");
        let doc = "[[topology.classes]]\npreset = \"atom\"\ncount = 2\n\
                   [[faults]]\npm = 8\nat_min = 1\nrepair_after_min = 1\n";
        assert!(
            ScenarioSpec::parse(doc).is_err(),
            "8 PMs: pm 8 out of range"
        );
    }

    #[test]
    fn experiment_bound_specs_reject_ignored_sections() {
        // A driver-bound spec would silently drop a file-backed demand
        // source or an unhonored class mix — both are hard errors.
        let doc = "[experiment]\nkind = \"fig4\"\n\
                   [workload.import]\npath = \"a.csv\"\nformat = \"azure\"\n";
        assert!(ScenarioSpec::parse(doc).unwrap_err().0.contains("ignored"));
        let doc = "[experiment]\nkind = \"fig4\"\n[workload.trace]\npath = \"t.csv\"\n";
        assert!(ScenarioSpec::parse(doc).is_err());
        let doc = "[[topology.classes]]\npreset = \"atom\"\n[experiment]\nkind = \"fig4\"\n";
        assert!(ScenarioSpec::parse(doc)
            .unwrap_err()
            .0
            .contains("topology.classes"));
        // ...but the heterogeneity driver honors the class table.
        let doc =
            "[[topology.classes]]\npreset = \"atom\"\n[experiment]\nkind = \"heterogeneity\"\n";
        assert!(ScenarioSpec::parse(doc).is_ok());
    }

    #[test]
    fn import_validation_fires() {
        let base = "[workload.import]\npath = \"a.csv\"\n";
        assert!(
            ScenarioSpec::parse(base).unwrap_err().0.contains("format"),
            "format is required"
        );
        let doc = format!("{base}format = \"gcp\"\n");
        assert!(ScenarioSpec::parse(&doc).unwrap_err().0.contains("gcp"));
        let doc = format!("{base}format = \"azure\"\ntick_secs = 0\n");
        assert!(ScenarioSpec::parse(&doc).is_err());
        let doc = format!("{base}format = \"azure\"\nregion_map = [0, 1]\n");
        assert!(ScenarioSpec::parse(&doc).is_err(), "map must cover regions");
        let doc = format!("{base}format = \"azure\"\nrate_scale = -2.0\n");
        assert!(ScenarioSpec::parse(&doc).is_err());
        // trace + import, flash_crowd + import: one demand source only.
        let doc = "[workload]\nflash_crowd = 4.0\n\
                   [workload.import]\npath = \"a.csv\"\nformat = \"azure\"\n";
        assert!(ScenarioSpec::parse(doc).is_err());
        let doc = "[workload.trace]\npath = \"t.csv\"\n\
                   [workload.import]\npath = \"a.csv\"\nformat = \"azure\"\n";
        assert!(ScenarioSpec::parse(doc).is_err());
    }

    #[test]
    fn minimal_document_takes_defaults() {
        let spec = ScenarioSpec::parse("name = \"tiny\"\n").expect("parse");
        assert_eq!(spec.name, "tiny");
        assert_eq!(spec.workload.vms, 5);
        assert_eq!(spec.run.hours, 24);
        assert_eq!(spec.policy.kind, PolicyKind::Hierarchical);
    }

    #[test]
    fn intra_dc_preset_shifts_defaults() {
        let spec = ScenarioSpec::parse(
            "[topology]\npreset = \"intra-dc\"\n[workload]\npreset = \"intra-dc\"\n",
        )
        .expect("parse");
        assert_eq!(
            spec.topology.pms_per_dc, 4,
            "paper testbed has 4 Atom hosts"
        );
        assert_eq!(spec.workload.peak_rps, 240.0);
    }

    #[test]
    fn unknown_keys_error() {
        assert!(ScenarioSpec::parse("nam = \"typo\"").is_err());
        assert!(ScenarioSpec::parse("[workload]\nvmz = 3").is_err());
        assert!(ScenarioSpec::parse("[experiment]\nkind = \"fig99\"").is_err());
    }

    #[test]
    fn semantic_validation_fires() {
        assert!(ScenarioSpec::parse("[topology]\ndeploy_all_in = 9").is_err());
        assert!(
            ScenarioSpec::parse("[[faults]]\npm = 99\nat_min = 1\nrepair_after_min = 1").is_err()
        );
        let s = "[topology]\npreset = \"intra-dc\"\n[workload]\npreset = \"follow-the-sun\"";
        assert!(ScenarioSpec::parse(s).is_err());
        // follow-the-sun hosts exactly one VM: a bare preset line must
        // not inherit the default vms = 5 and crash mid-simulation.
        assert!(ScenarioSpec::parse("[workload]\npreset = \"follow-the-sun\"").is_err());
        assert!(ScenarioSpec::parse("[workload]\npreset = \"follow-the-sun\"\nvms = 1").is_ok());
        // A replayed trace already carries its demand: no flash crowd on top.
        let s = "[workload]\nflash_crowd = 8.0\n[workload.trace]\npath = \"t.csv\"";
        assert!(ScenarioSpec::parse(s).is_err());
    }

    #[test]
    fn with_param_overrides() {
        let spec = ScenarioSpec::default();
        let swept = spec.with_param("workload.load_scale", "1.5").unwrap();
        assert_eq!(swept.workload.load_scale, 1.5);
        let policy = spec.with_param("policy.kind", "static").unwrap();
        assert_eq!(policy.kind_name(), "static");
        assert!(spec.with_param("workload.nonsense", "1").is_err());
    }

    impl ScenarioSpec {
        fn kind_name(&self) -> &'static str {
            self.policy.kind.name()
        }
    }
}
