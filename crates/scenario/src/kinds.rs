//! The experiment-kind registry: one entry per driver, mapping an
//! `[experiment] kind = "..."` string to a constructor that builds the
//! driver's [`Experiment`] from a spec.
//!
//! This table is the **only** place a new experiment kind is wired up:
//! implement [`Experiment`] next to the driver in
//! `pamdc_core::experiments`, add one [`KindEntry`] here, and `pamdc
//! run/sweep/campaign`, spec validation and the golden tests all pick it
//! up. `runner::run_spec` contains no per-experiment dispatch.
//!
//! Constructors receive the whole spec plus the quick flag and build the
//! driver's config **from the spec's fields** (full mode) or from the
//! driver's `quick()` preset (quick mode) — exactly the mapping the
//! pre-registry `match` performed, so reports stay bit-identical.

use crate::spec::{OracleKind, ScenarioSpec, SpecError, TrainingSpec};
use pamdc_core::experiment::Experiment;
use pamdc_core::experiments::{
    ablations, deloc, fig4, fig5, fig6, fig7_table3, fig8, green, heterogeneity, online_drift,
    price_adaptation, scaling, solver_scaling, table1, table2,
};

/// An experiment constructor: spec + quick flag → boxed [`Experiment`].
pub type BuildFn = fn(&ScenarioSpec, bool) -> Result<Box<dyn Experiment>, SpecError>;

/// One registered experiment kind.
pub struct KindEntry {
    /// The `[experiment] kind` string.
    pub kind: &'static str,
    /// False for wall-clock timing studies whose reports vary run to
    /// run (excluded from golden snapshots; still CI-smoked).
    pub deterministic: bool,
    /// True when the driver honors `[[topology.classes]]`. Spec
    /// validation rejects a class mix bound to any other kind — the
    /// drivers build their own worlds, so the table would be silently
    /// ignored otherwise.
    pub uses_topology_classes: bool,
    /// Builds the experiment from a spec (`quick` selects the driver's
    /// test preset).
    pub build: BuildFn,
}

/// The [`table1::Table1Config`] a spec's `[training]` section describes.
fn training_config(t: &TrainingSpec) -> table1::Table1Config {
    table1::Table1Config {
        vms: t.vms,
        scales: t.scales.clone(),
        hours_per_scale: t.hours_per_scale,
        seed: t.seed,
    }
}

/// The training stage every experiment shares: the spec's `[training]`
/// section in full mode, the Table-I quick preset (same seed) in quick
/// mode.
fn training(spec: &ScenarioSpec, quick: bool) -> table1::Table1Config {
    if quick {
        table1::Table1Config::quick(spec.training.seed)
    } else {
        training_config(&spec.training)
    }
}

/// Training is only attached when the spec asks for ML beliefs;
/// `true`-oracle specs reproduce the ground-truth arms.
fn training_if_ml(spec: &ScenarioSpec, quick: bool) -> Option<table1::Table1Config> {
    (spec.policy.oracle == OracleKind::Ml).then(|| training(spec, quick))
}

fn build_fig4(spec: &ScenarioSpec, quick: bool) -> Result<Box<dyn Experiment>, SpecError> {
    let exp = spec.experiment.as_ref().expect("dispatched kind");
    let cfg = if quick {
        fig4::Fig4Config::quick(spec.seed)
    } else {
        fig4::Fig4Config {
            hours: spec.run.hours,
            vms: spec.workload.vms,
            load_scale: spec.workload.load_scale,
            seed: spec.seed,
            include_true_arm: exp.true_arm,
        }
    };
    Ok(Box::new(fig4::Fig4 {
        cfg,
        training: training(spec, quick),
    }))
}

fn build_fig5(spec: &ScenarioSpec, quick: bool) -> Result<Box<dyn Experiment>, SpecError> {
    let cfg = fig5::Fig5Config {
        hours: if quick { 24 } else { spec.run.hours },
        seed: spec.seed,
    };
    Ok(Box::new(fig5::Fig5 { cfg }))
}

fn build_fig6(spec: &ScenarioSpec, quick: bool) -> Result<Box<dyn Experiment>, SpecError> {
    let cfg = if quick {
        fig6::Fig6Config::quick(spec.seed)
    } else {
        fig6::Fig6Config {
            hours: spec.run.hours,
            vms: spec.workload.vms,
            flash_multiplier: spec.workload.flash_crowd.unwrap_or(8.0),
            seed: spec.seed,
        }
    };
    Ok(Box::new(fig6::Fig6 {
        cfg,
        training: training_if_ml(spec, quick),
    }))
}

fn build_fig7_table3(spec: &ScenarioSpec, quick: bool) -> Result<Box<dyn Experiment>, SpecError> {
    let cfg = if quick {
        fig7_table3::Table3Config::quick(spec.seed)
    } else {
        fig7_table3::Table3Config {
            hours: spec.run.hours,
            vms: spec.workload.vms,
            load_scale: spec.workload.load_scale,
            seed: spec.seed,
        }
    };
    Ok(Box::new(fig7_table3::Fig7Table3 {
        cfg,
        training: training_if_ml(spec, quick),
    }))
}

fn build_fig8(spec: &ScenarioSpec, quick: bool) -> Result<Box<dyn Experiment>, SpecError> {
    let exp = spec.experiment.as_ref().expect("dispatched kind");
    let cfg = if quick {
        fig8::Fig8Config::quick(spec.seed)
    } else {
        let defaults = fig8::Fig8Config::default();
        fig8::Fig8Config {
            load_scales: if exp.load_scales.is_empty() {
                defaults.load_scales
            } else {
                exp.load_scales.clone()
            },
            pms_per_dc: if exp.pms_levels.is_empty() {
                defaults.pms_per_dc
            } else {
                exp.pms_levels.clone()
            },
            hours: spec.run.hours,
            vms: spec.workload.vms,
            seed: spec.seed,
        }
    };
    Ok(Box::new(fig8::Fig8 { cfg }))
}

fn build_table1(spec: &ScenarioSpec, quick: bool) -> Result<Box<dyn Experiment>, SpecError> {
    Ok(Box::new(table1::Table1 {
        cfg: training(spec, quick),
    }))
}

fn build_table2(_spec: &ScenarioSpec, _quick: bool) -> Result<Box<dyn Experiment>, SpecError> {
    Ok(Box::new(table2::Table2))
}

fn build_green(spec: &ScenarioSpec, quick: bool) -> Result<Box<dyn Experiment>, SpecError> {
    let cfg = if quick {
        green::GreenConfig::quick(spec.seed)
    } else {
        green::GreenConfig {
            hours: spec.run.hours,
            vms: spec.workload.vms,
            pms_per_dc: spec.topology.pms_per_dc,
            solar_dcs: spec.energy.solar_dcs.clone(),
            solar_per_pm_w: spec.energy.solar_per_pm_w,
            min_sky: spec.energy.min_sky,
            load_scale: spec.workload.load_scale,
            seed: spec.seed,
        }
    };
    Ok(Box::new(green::Green { cfg }))
}

fn build_deloc(spec: &ScenarioSpec, quick: bool) -> Result<Box<dyn Experiment>, SpecError> {
    let cfg = if quick {
        deloc::DelocConfig::quick(spec.seed)
    } else {
        deloc::DelocConfig {
            hours: spec.run.hours,
            vms: spec.workload.vms,
            home_dc: spec.topology.deploy_all_in.unwrap_or(2),
            pms_per_dc: spec.topology.pms_per_dc,
            load_scale: spec.workload.load_scale,
            seed: spec.seed,
        }
    };
    Ok(Box::new(deloc::Deloc { cfg }))
}

/// The `[training]` section shapes the collection runs; the master
/// `seed` drives them (so `--param seed=...` sweeps actually vary the
/// ablation).
fn build_ablations(spec: &ScenarioSpec, quick: bool) -> Result<Box<dyn Experiment>, SpecError> {
    let cfg = if quick {
        ablations::AblationsConfig::quick(spec.seed)
    } else {
        let t = &spec.training;
        ablations::AblationsConfig {
            vms: t.vms,
            scales: t.scales.clone(),
            hours_per_scale: t.hours_per_scale,
            seed: spec.seed,
        }
    };
    Ok(Box::new(ablations::Ablations { cfg }))
}

fn build_heterogeneity(spec: &ScenarioSpec, quick: bool) -> Result<Box<dyn Experiment>, SpecError> {
    let exp = spec.experiment.as_ref().expect("dispatched kind");
    let mut cfg = if quick {
        heterogeneity::HeterogeneityConfig::quick(spec.seed)
    } else {
        let defaults = heterogeneity::HeterogeneityConfig::default();
        heterogeneity::HeterogeneityConfig {
            spreads: if exp.spreads.is_empty() {
                defaults.spreads.clone()
            } else {
                exp.spreads.clone()
            },
            hours: spec.run.hours,
            vms: spec.workload.vms,
            pms_per_dc: spec.topology.pms_per_dc,
            load_scale: spec.workload.load_scale,
            ..defaults
        }
    };
    // The machine mix rides the spec in both modes: price heterogeneity
    // on exactly the fleet `[[topology.classes]]` declares (empty =
    // the paper's all-Atom fleet, so the builtin report is unchanged).
    cfg.host_classes = crate::build::host_classes(spec);
    cfg.seed = spec.seed;
    Ok(Box::new(heterogeneity::Heterogeneity { cfg }))
}

fn build_online_drift(spec: &ScenarioSpec, quick: bool) -> Result<Box<dyn Experiment>, SpecError> {
    let cfg = if quick {
        online_drift::OnlineDriftConfig::quick(spec.seed)
    } else {
        online_drift::OnlineDriftConfig {
            hours: spec.run.hours,
            vms: spec.workload.vms,
            load_scale: spec.workload.load_scale,
            seed: spec.seed,
            ..online_drift::OnlineDriftConfig::default()
        }
    };
    Ok(Box::new(online_drift::OnlineDrift { cfg }))
}

fn build_price_adaptation(
    spec: &ScenarioSpec,
    quick: bool,
) -> Result<Box<dyn Experiment>, SpecError> {
    let exp = spec.experiment.as_ref().expect("dispatched kind");
    let cfg = if quick {
        price_adaptation::PriceAdaptationConfig::quick(spec.seed)
    } else {
        price_adaptation::PriceAdaptationConfig {
            hours: spec.run.hours,
            vms: spec.workload.vms,
            pms_per_dc: spec.topology.pms_per_dc,
            spike_factor: exp.spike_factor,
            load_scale: spec.workload.load_scale,
            seed: spec.seed,
        }
    };
    Ok(Box::new(price_adaptation::PriceAdaptation { cfg }))
}

/// Timing studies over synthetic single rounds: no world is built, so
/// most spec sections don't apply. `workload.peak_rps` sets the
/// per-VM offered load; the instance-size ladder and repetition counts
/// stay the driver's (the builtins pin `peak_rps` to the driver
/// defaults).
fn build_scaling(spec: &ScenarioSpec, quick: bool) -> Result<Box<dyn Experiment>, SpecError> {
    let mut cfg = if quick {
        scaling::ScalingConfig::quick()
    } else {
        scaling::ScalingConfig::default()
    };
    cfg.rps = spec.workload.peak_rps;
    Ok(Box::new(scaling::Scaling { cfg }))
}

/// See [`build_scaling`]: `workload.peak_rps` is the one live knob.
fn build_solver_scaling(
    spec: &ScenarioSpec,
    quick: bool,
) -> Result<Box<dyn Experiment>, SpecError> {
    let mut cfg = if quick {
        solver_scaling::ScalingConfig::quick()
    } else {
        solver_scaling::ScalingConfig::default()
    };
    cfg.rps = spec.workload.peak_rps;
    Ok(Box::new(solver_scaling::SolverScaling { cfg }))
}

/// Every registered experiment kind, in paper order.
pub const KINDS: &[KindEntry] = &[
    KindEntry {
        kind: "fig4",
        deterministic: true,
        uses_topology_classes: false,
        build: build_fig4,
    },
    KindEntry {
        kind: "fig5",
        deterministic: true,
        uses_topology_classes: false,
        build: build_fig5,
    },
    KindEntry {
        kind: "fig6",
        deterministic: true,
        uses_topology_classes: false,
        build: build_fig6,
    },
    KindEntry {
        kind: "fig7-table3",
        deterministic: true,
        uses_topology_classes: false,
        build: build_fig7_table3,
    },
    KindEntry {
        kind: "fig8",
        deterministic: true,
        uses_topology_classes: false,
        build: build_fig8,
    },
    KindEntry {
        kind: "table1",
        deterministic: true,
        uses_topology_classes: false,
        build: build_table1,
    },
    KindEntry {
        kind: "table2",
        deterministic: true,
        uses_topology_classes: false,
        build: build_table2,
    },
    KindEntry {
        kind: "green",
        deterministic: true,
        uses_topology_classes: false,
        build: build_green,
    },
    KindEntry {
        kind: "deloc",
        deterministic: true,
        uses_topology_classes: false,
        build: build_deloc,
    },
    KindEntry {
        kind: "ablations",
        deterministic: true,
        uses_topology_classes: false,
        build: build_ablations,
    },
    KindEntry {
        kind: "heterogeneity",
        deterministic: true,
        uses_topology_classes: true,
        build: build_heterogeneity,
    },
    KindEntry {
        kind: "online-drift",
        deterministic: true,
        uses_topology_classes: false,
        build: build_online_drift,
    },
    KindEntry {
        kind: "price-adaptation",
        deterministic: true,
        uses_topology_classes: false,
        build: build_price_adaptation,
    },
    KindEntry {
        kind: "scaling",
        deterministic: false,
        uses_topology_classes: false,
        build: build_scaling,
    },
    KindEntry {
        kind: "solver-scaling",
        deterministic: false,
        uses_topology_classes: false,
        build: build_solver_scaling,
    },
];

/// Looks a kind up by its `[experiment] kind` string.
pub fn find(kind: &str) -> Option<&'static KindEntry> {
    KINDS.iter().find(|k| k.kind == kind)
}

/// All registered kind strings (spec validation and error hints).
pub fn kind_names() -> Vec<&'static str> {
    KINDS.iter().map(|k| k.kind).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kinds_are_unique() {
        let mut names = kind_names();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), KINDS.len());
    }

    #[test]
    fn every_kind_constructs_from_a_bound_spec() {
        for entry in KINDS {
            let mut spec = ScenarioSpec::default();
            spec.experiment = Some(crate::spec::ExperimentSpec {
                kind: entry.kind.into(),
                ..crate::spec::ExperimentSpec::default()
            });
            (entry.build)(&spec, true).unwrap_or_else(|e| panic!("{}: {e}", entry.kind));
        }
    }
}
