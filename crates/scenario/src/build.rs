//! Spec → world: build a [`Scenario`], a [`PlacementPolicy`] and a
//! [`RunConfig`] from a [`ScenarioSpec`].
//!
//! The mapping is deliberately 1:1 with the `ScenarioBuilder` calls the
//! hand-written experiment drivers make, so a spec-built world is
//! **bit-identical** to the equivalent hand-built one (the integration
//! tests assert this for the fig4 and fig6 setups).

use crate::spec::{
    ImportSpec, MachineClass, OracleKind, PolicyKind, ScenarioSpec, SpecError, TopologyPreset,
    TrainingSpec, WorkloadPreset,
};
use pamdc_core::policy::{
    BestFitPolicy, CheapestEnergyPolicy, FollowLoadPolicy, HierarchicalPolicy, PlacementPolicy,
    RandomPolicy, StaticPolicy,
};
use pamdc_core::scenario::{Scenario, ScenarioBuilder, ServiceSpec};
use pamdc_core::simulation::RunConfig;
use pamdc_core::training::{collect_training_data, train_suite, TrainingOutcome};
use pamdc_green::tariff::Tariff;
use pamdc_infra::pm::MachineSpec;
use pamdc_infra::vm::VmSpec;
use pamdc_ml::predictors::PredictorSuite;
use pamdc_sched::bestfit::SchedTuning;
use pamdc_sched::oracle::{MlOracle, MonitorOracle, TrueOracle};
use pamdc_simcore::time::{SimDuration, SimTime};
use pamdc_workload::import::{self, ImportOptions, TraceFormat};
use pamdc_workload::libcn;
use pamdc_workload::trace::{DemandTrace, TraceSource};
use std::path::Path;
use std::sync::Arc;

/// The [`MachineSpec`] a `[[topology.classes]]` machine model names.
pub fn machine_spec(class: &MachineClass) -> MachineSpec {
    match class {
        MachineClass::Atom => MachineSpec::atom(),
        MachineClass::Xeon => MachineSpec::xeon(),
        MachineClass::Custom {
            cores,
            mem_mb,
            idle_watts,
            peak_watts,
        } => MachineSpec::custom(*cores, *mem_mb, *idle_watts, *peak_watts),
    }
}

/// The per-DC `(spec, count)` host mix a spec's `[topology]` declares
/// (empty = the default all-Atom fleet).
pub fn host_classes(spec: &ScenarioSpec) -> Vec<(MachineSpec, usize)> {
    spec.topology
        .classes
        .iter()
        .map(|c| (machine_spec(&c.machine), c.count))
        .collect()
}

/// The per-service `(spec, count)` VM sizing a spec's
/// `[[workload.services]]` table declares (empty = the paper's uniform
/// web-service VM for every service).
pub fn service_specs(spec: &ScenarioSpec) -> Vec<(ServiceSpec, usize)> {
    spec.workload
        .services
        .iter()
        .map(|s| {
            (
                ServiceSpec {
                    vm: VmSpec {
                        image_size_mb: s.image_size_mb,
                        base_mem_mb: s.base_mem_mb,
                        rt0_secs: s.rt0_secs,
                        alpha: s.alpha,
                    },
                    mem_mb_per_inflight: s.mem_mb_per_inflight,
                    io_wait_factor: s.io_wait_factor,
                    idle_cpu_pct: s.idle_cpu_pct,
                },
                s.count,
            )
        })
        .collect()
}

/// The [`ImportOptions`] a `[workload.import]` table describes (spec
/// validation and the actual import both read this mapping).
pub fn import_options(import: &ImportSpec) -> ImportOptions {
    ImportOptions {
        tick: import.tick_secs.map(SimDuration::from_secs),
        regions: import.regions,
        rate_scale: import.rate_scale,
        time_stretch: import.time_stretch,
        region_map: import.region_map.clone(),
        max_services: import.max_services,
        max_ticks: import.max_ticks,
    }
}

/// Runs a `[workload.import]` table: parse the named dataset file and
/// normalize it into a replayable trace (transforms baked in).
pub fn import_trace(import: &ImportSpec, base_dir: &Path) -> Result<DemandTrace, SpecError> {
    let format = TraceFormat::from_name(&import.format).ok_or_else(|| {
        SpecError(format!(
            "unknown workload.import.format {:?} (azure | alibaba)",
            import.format
        ))
    })?;
    let path = base_dir.join(&import.path);
    import::import_path(format, &path, &import_options(import))
        .map_err(|e| SpecError(format!("{}: {e}", path.display())))
}

/// Builds the scenario a spec describes. `base_dir` anchors relative
/// trace paths (use the spec file's directory).
pub fn build_scenario(spec: &ScenarioSpec, base_dir: &Path) -> Result<Scenario, SpecError> {
    build_scenario_inner(spec, base_dir, None)
}

/// Builds the spec's world around an already-constructed demand source
/// (e.g. a trace parsed from stdin or memory). The source's service
/// count must match `workload.vms`.
pub fn build_scenario_with_demand(
    spec: &ScenarioSpec,
    demand: pamdc_workload::source::Demand,
) -> Result<Scenario, SpecError> {
    build_scenario_inner(spec, Path::new("."), Some(demand))
}

fn build_scenario_inner(
    spec: &ScenarioSpec,
    base_dir: &Path,
    demand_override: Option<pamdc_workload::source::Demand>,
) -> Result<Scenario, SpecError> {
    spec.validate()?;
    let w = &spec.workload;
    let mut builder = match (spec.topology.preset, w.preset) {
        (TopologyPreset::MultiDc, WorkloadPreset::FollowTheSun) => {
            ScenarioBuilder::follow_the_sun()
        }
        (TopologyPreset::IntraDc, WorkloadPreset::MultiDc) => {
            return Err(SpecError(
                "workload preset multi-dc requires the multi-dc topology".into(),
            ))
        }
        (TopologyPreset::IntraDc, _) => ScenarioBuilder::paper_intra_dc(),
        (TopologyPreset::MultiDc, _) => ScenarioBuilder::paper_multi_dc(),
    };
    builder = builder
        .name(spec.name.clone())
        .vms(w.vms)
        .pms_per_dc(spec.topology.pms_per_dc)
        .host_classes(host_classes(spec))
        .service_specs(service_specs(spec))
        .peak_rps(w.peak_rps)
        .load_scale(w.load_scale)
        .seed(spec.seed);
    if let Some(dc) = spec.topology.deploy_all_in {
        builder = builder.deploy_all_in(dc);
    }
    if let Some(mult) = w.flash_crowd {
        builder = builder.flash_crowd(mult);
    }
    if let Some(demand) = demand_override {
        if demand.service_count() != w.vms {
            return Err(SpecError(format!(
                "demand source carries {} services but the spec hosts {} VMs",
                demand.service_count(),
                w.vms
            )));
        }
        builder = builder.demand(demand);
    } else if let Some(replay) = &w.trace {
        let path = base_dir.join(&replay.path);
        let text = std::fs::read_to_string(&path)
            .map_err(|e| SpecError(format!("cannot read trace {}: {e}", path.display())))?;
        let trace = DemandTrace::parse_csv(&text)
            .map_err(|e| SpecError(format!("{}: {e}", path.display())))?;
        if trace.service_count() != w.vms {
            return Err(SpecError(format!(
                "trace {} carries {} services but the spec hosts {} VMs",
                path.display(),
                trace.service_count(),
                w.vms
            )));
        }
        let mut source = TraceSource::new(trace)
            .with_rate_scale(replay.rate_scale)
            .with_time_stretch(replay.time_stretch);
        if !replay.region_map.is_empty() {
            source = source.with_region_map(replay.region_map.clone());
        }
        builder = builder.demand(source);
    } else if let Some(import) = &w.import {
        let trace = import_trace(import, base_dir)?;
        if trace.service_count() != w.vms {
            return Err(SpecError(format!(
                "imported dataset {} normalizes to {} services but the spec hosts {} VMs \
                 (set workload.vms to match, or cap with workload.import.max_services)",
                import.path,
                trace.service_count(),
                w.vms
            )));
        }
        builder = builder.demand(TraceSource::new(trace));
    } else if w.preset == WorkloadPreset::Uniform {
        // Latency-neutral control workload (same construction as the
        // green / price-adaptation drivers).
        builder = builder.workload(libcn::uniform_multi_dc(
            w.vms,
            w.peak_rps * w.load_scale,
            spec.seed,
        ));
    }
    for f in &spec.faults {
        builder = builder.fault(
            f.pm,
            SimTime::from_mins(f.at_min),
            SimDuration::from_mins(f.repair_after_min),
        );
    }
    for c in &spec.profile_changes {
        builder = builder.profile_change(
            c.vm,
            SimTime::from_mins(c.at_min),
            pamdc_perf::demand::VmPerfProfile {
                base_mem_mb: c.base_mem_mb,
                mem_mb_per_inflight: c.mem_mb_per_inflight,
                io_wait_factor: c.io_wait_factor,
                idle_cpu_pct: c.idle_cpu_pct,
            },
        );
    }
    builder = builder.billing(pamdc_econ::billing::BillingPolicy {
        vm_eur_per_hour: spec.billing.vm_eur_per_hour,
        sla_gamma: spec.billing.sla_gamma,
        migration_fee_eur: spec.billing.migration_fee_eur,
    });
    if !spec.energy.is_paper_default() {
        let energy = spec.energy.clone();
        let days = spec.run.hours / 24 + 1;
        let seed = spec.seed;
        builder = builder.energy(move |cluster, mut env| {
            for &dc in &energy.solar_dcs {
                let capacity = energy.solar_per_pm_w * cluster.dcs()[dc].pms().len() as f64;
                env = env.with_solar_at(cluster, dc, capacity, energy.min_sky, days, seed);
            }
            for t in &energy.tariffs {
                let tariff = match t.step_at_hour {
                    Some(h) => Tariff::Step {
                        initial_eur: t.eur_per_kwh,
                        steps: vec![(SimTime::from_hours(h), t.step_eur_per_kwh)],
                    },
                    None => Tariff::Flat(t.eur_per_kwh),
                };
                env = env.with_tariff(t.dc, tariff);
            }
            if energy.price_blind {
                env = env.price_blind();
            }
            env
        });
    }
    Ok(builder.build())
}

/// Builds the policy a spec names. `suite` must be provided when the
/// oracle is `ml` (see [`train_for_spec`]); `seed` feeds the random
/// exploration policy.
pub fn build_policy(
    spec: &ScenarioSpec,
    suite: Option<Arc<PredictorSuite>>,
) -> Result<Box<dyn PlacementPolicy>, SpecError> {
    let p = &spec.policy;
    // Solver tuning: both knobs default to the compiled constants, so a
    // spec that says nothing gets bit-identical behavior.
    let tuning = SchedTuning {
        index_min_hosts: p
            .index_min_hosts
            .unwrap_or(SchedTuning::default().index_min_hosts),
        near_top_k: p.near_equivalence_top_k,
    };
    macro_rules! with_oracle {
        ($ctor:expr) => {
            match p.oracle {
                OracleKind::Monitor => $ctor(MonitorOracle::plain()),
                OracleKind::Overbooked => $ctor(MonitorOracle::overbooked()),
                OracleKind::True => $ctor(TrueOracle::new()),
                OracleKind::Ml => {
                    let suite = suite.ok_or_else(|| {
                        SpecError("policy.oracle = \"ml\" needs a trained suite".into())
                    })?;
                    $ctor(MlOracle::new(suite))
                }
            }
        };
    }
    let policy: Box<dyn PlacementPolicy> = match p.kind {
        PolicyKind::Static => with_oracle!(|o| Box::new(StaticPolicy(o))),
        PolicyKind::BestFit => with_oracle!(|o| {
            let mut policy = BestFitPolicy::new(o);
            policy.tuning = tuning;
            if let Some(refine) = policy.refine.as_mut() {
                refine.tuning = tuning;
            }
            Box::new(policy)
        }),
        PolicyKind::BestFitRaw => with_oracle!(|o| {
            let mut policy = BestFitPolicy::raw(o);
            policy.tuning = tuning;
            Box::new(policy)
        }),
        PolicyKind::Hierarchical => with_oracle!(|o| {
            let mut policy = HierarchicalPolicy::new(o);
            policy.config.tuning = tuning;
            if let Some(ls) = policy.config.local_search.as_mut() {
                ls.tuning = tuning;
            }
            Box::new(policy)
        }),
        PolicyKind::FollowLoad => with_oracle!(|o| Box::new(FollowLoadPolicy(o))),
        PolicyKind::CheapestEnergy => with_oracle!(|o| Box::new(CheapestEnergyPolicy(o))),
        PolicyKind::Random => Box::new(RandomPolicy::new(spec.seed)),
    };
    Ok(policy)
}

/// The [`RunConfig`] a spec's `[run]`/`[policy]`/`[profile]` sections
/// describe. (`trace` stays false here: [`pamdc_core::experiment::execute`]
/// flips it per arm from the installed sink, so specs and CLI flags
/// converge on one switch.)
pub fn run_config(spec: &ScenarioSpec) -> RunConfig {
    RunConfig {
        tick: SimDuration::from_secs(spec.run.tick_secs),
        round_every_ticks: spec.run.round_every_ticks,
        keep_series: spec.run.keep_series,
        migration_cooldown_ticks: spec.run.migration_cooldown_ticks,
        plan_horizon_ticks: spec.policy.plan_horizon_ticks,
        progress: spec.profile.progress,
        ..RunConfig::default()
    }
}

/// Runs the Table-I pipeline a `[training]` section describes (the same
/// call chain as `experiments::table1::run`).
pub fn train_for_spec(training: &TrainingSpec) -> TrainingOutcome {
    let collector = collect_training_data(
        training.vms,
        &training.scales,
        training.hours_per_scale,
        training.seed,
    );
    train_suite(&collector, training.seed)
}

/// True when running this spec's generic path requires training first.
pub fn needs_training(spec: &ScenarioSpec) -> bool {
    spec.policy.oracle == OracleKind::Ml && spec.policy.kind != PolicyKind::Random
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::FaultSpec;

    #[test]
    fn default_spec_builds_the_paper_multi_dc_world() {
        let spec = ScenarioSpec::default();
        let s = build_scenario(&spec, Path::new(".")).expect("build");
        assert_eq!(s.cluster.dc_count(), 4);
        assert_eq!(s.cluster.pm_count(), 4);
        assert_eq!(s.cluster.vm_count(), 5);
        s.cluster.check_invariants();
    }

    #[test]
    fn faults_and_tariffs_apply() {
        let mut spec = ScenarioSpec::default();
        spec.faults.push(FaultSpec {
            pm: 0,
            at_min: 30,
            repair_after_min: 60,
        });
        spec.energy.tariffs.push(crate::spec::TariffSpec {
            dc: 1,
            eur_per_kwh: 0.5,
            step_at_hour: None,
            step_eur_per_kwh: 0.5,
        });
        let s = build_scenario(&spec, Path::new(".")).expect("build");
        assert_eq!(s.faults.len(), 1);
        let q = s
            .energy
            .quoted_price_eur_kwh(1, SimTime::from_hours(3), 0.0, 50.0);
        assert!((q - 0.5).abs() < 1e-12);
    }

    #[test]
    fn every_policy_kind_constructs() {
        for kind in [
            PolicyKind::Static,
            PolicyKind::BestFit,
            PolicyKind::BestFitRaw,
            PolicyKind::Hierarchical,
            PolicyKind::FollowLoad,
            PolicyKind::CheapestEnergy,
            PolicyKind::Random,
        ] {
            let mut spec = ScenarioSpec::default();
            spec.policy.kind = kind;
            let policy = build_policy(&spec, None).expect("non-ml policies need no suite");
            assert!(!policy.name().is_empty());
        }
        // ML without a suite is a hard error.
        let mut spec = ScenarioSpec::default();
        spec.policy.oracle = OracleKind::Ml;
        assert!(build_policy(&spec, None).is_err());
        assert!(needs_training(&spec));
    }

    #[test]
    fn host_classes_reach_the_cluster() {
        let mut spec = ScenarioSpec::default();
        spec.topology.classes = vec![
            crate::spec::HostClassSpec {
                count: 1,
                machine: MachineClass::Atom,
            },
            crate::spec::HostClassSpec {
                count: 1,
                machine: MachineClass::Xeon,
            },
        ];
        let s = build_scenario(&spec, Path::new(".")).expect("build");
        assert_eq!(s.cluster.pm_count(), 8, "4 DCs x (1 atom + 1 xeon)");
        for dc in s.cluster.dcs() {
            let cores: Vec<usize> = dc
                .pms()
                .iter()
                .map(|&pm| s.cluster.pm(pm).spec.cores())
                .collect();
            assert_eq!(cores, vec![4, 8]);
        }
        s.cluster.check_invariants();
    }

    #[test]
    fn import_spec_builds_a_trace_demand() {
        let dir = std::env::temp_dir().join("pamdc-import-build-test");
        std::fs::create_dir_all(&dir).expect("tmp dir");
        std::fs::write(
            dir.join("azure.csv"),
            "0,vm-a,1,9,20.0\n0,vm-b,1,9,30.0\n300,vm-a,1,9,25.0\n300,vm-b,1,9,35.0\n",
        )
        .expect("fixture");
        let mut spec = ScenarioSpec::default();
        spec.workload.vms = 2;
        spec.workload.import = Some(crate::spec::ImportSpec {
            path: "azure.csv".into(),
            format: "azure".into(),
            ..crate::spec::ImportSpec::default()
        });
        let s = build_scenario(&spec, &dir).expect("build");
        let trace = s.workload.trace().expect("trace demand");
        assert_eq!(trace.trace().service_count(), 2);
        assert_eq!(trace.trace().tick_count(), 2);
        // A VM-count mismatch is a clear error, not a panic.
        spec.workload.vms = 5;
        let err = build_scenario(&spec, &dir).unwrap_err();
        assert!(err.0.contains("max_services"), "{err}");
        // A missing file is a clear error too.
        spec.workload.vms = 2;
        spec.workload.import.as_mut().unwrap().path = "nope.csv".into();
        assert!(build_scenario(&spec, &dir).is_err());
    }

    #[test]
    fn mixed_presets_rejected() {
        let mut spec = ScenarioSpec::default();
        spec.topology.preset = TopologyPreset::IntraDc;
        spec.workload.preset = WorkloadPreset::MultiDc;
        assert!(build_scenario(&spec, Path::new(".")).is_err());
    }
}
