//! Built-in scenario specs: every paper experiment as data.
//!
//! Each entry mirrors the corresponding experiment driver's default
//! configuration (same seeds, same knobs), so `pamdc run <name>`
//! reproduces the driver's report numbers bit-for-bit. The specs also
//! carry full generic `[topology]`/`[workload]`/`[policy]` sections, so
//! `pamdc sweep` can vary them without the experiment binding.

use crate::spec::{
    ExperimentSpec, FaultSpec, HostClassSpec, MachineClass, OracleKind, PolicyKind, ScenarioSpec,
    ServiceSpecEntry, TopologyPreset, WorkloadPreset,
};

/// One named built-in scenario.
#[derive(Clone, Debug)]
pub struct BuiltinSpec {
    /// Registry name (`pamdc run <name>`).
    pub name: &'static str,
    /// One-line description for `pamdc list`.
    pub title: &'static str,
    /// The spec.
    pub spec: ScenarioSpec,
}

fn experiment(kind: &str) -> Option<ExperimentSpec> {
    Some(ExperimentSpec {
        kind: kind.into(),
        ..ExperimentSpec::default()
    })
}

/// All built-in specs, in paper order.
///
/// (The mutate-a-default style below is deliberate: each builtin
/// documents its deltas from the paper's default world, field by field.)
#[allow(clippy::field_reassign_with_default)]
pub fn builtins() -> Vec<BuiltinSpec> {
    let mut out = Vec::new();

    // Figure 4 — intra-DC scheduling comparatives (§V-B).
    let mut fig4 = ScenarioSpec::default();
    fig4.name = "fig4".into();
    fig4.description = "Intra-DC BF/BF-OB/BF-ML comparatives (paper §V-B, Figure 4)".into();
    fig4.seed = 4;
    fig4.topology.preset = TopologyPreset::IntraDc;
    fig4.topology.pms_per_dc = 4;
    fig4.workload.preset = WorkloadPreset::IntraDc;
    fig4.workload.peak_rps = 240.0;
    fig4.policy.kind = PolicyKind::BestFit;
    fig4.policy.oracle = OracleKind::Ml;
    fig4.experiment = experiment("fig4");
    out.push(BuiltinSpec {
        name: "fig4",
        title: "intra-DC scheduling comparatives (BF / BF-OB / BF-ML / BF-True)",
        spec: fig4,
    });

    // Figure 5 — a VM following its load around the planet.
    let mut fig5 = ScenarioSpec::default();
    fig5.name = "fig5".into();
    fig5.description = "One VM chasing the sun across four DCs (Figure 5)".into();
    fig5.seed = 5;
    fig5.workload.preset = WorkloadPreset::FollowTheSun;
    fig5.workload.vms = 1;
    fig5.policy.kind = PolicyKind::FollowLoad;
    fig5.run.hours = 48;
    fig5.experiment = experiment("fig5");
    out.push(BuiltinSpec {
        name: "fig5",
        title: "follow-the-load sanity check (VM circles the planet)",
        spec: fig5,
    });

    // Figure 6 — inter-DC scheduling with the flash crowd.
    let mut fig6 = ScenarioSpec::default();
    fig6.name = "fig6".into();
    fig6.description =
        "Inter-DC scheduling with the minute-70\u{2013}90 flash crowd (Figure 6)".into();
    fig6.seed = 7;
    fig6.workload.flash_crowd = Some(8.0);
    fig6.experiment = experiment("fig6");
    out.push(BuiltinSpec {
        name: "fig6",
        title: "inter-DC scheduling through a capacity-exceeding flash crowd",
        spec: fig6,
    });

    // Figure 7 / Table III — static vs dynamic multi-DC management.
    let mut fig7 = ScenarioSpec::default();
    fig7.name = "fig7-table3".into();
    fig7.description = "Static-Global vs Dynamic multi-DC management (Figure 7, Table III)".into();
    fig7.seed = 8;
    fig7.workload.load_scale = 1.15;
    fig7.experiment = experiment("fig7-table3");
    out.push(BuiltinSpec {
        name: "fig7-table3",
        title: "static vs dynamic multi-DC: the ~42% energy saving",
        spec: fig7,
    });

    // Figure 8 — the SLA vs energy vs load surface.
    let mut fig8 = ScenarioSpec::default();
    fig8.name = "fig8".into();
    fig8.description = "SLA vs energy vs load characteristic surface (Figure 8)".into();
    fig8.seed = 9;
    fig8.run.hours = 6;
    fig8.experiment = Some(ExperimentSpec {
        kind: "fig8".into(),
        load_scales: vec![0.5, 1.0, 1.5, 2.0],
        pms_levels: vec![1, 2, 3],
        ..ExperimentSpec::default()
    });
    out.push(BuiltinSpec {
        name: "fig8",
        title: "load × energy-budget sweep tracing the SLA surface",
        spec: fig8,
    });

    // Table I — the learning pipeline.
    let mut table1 = ScenarioSpec::default();
    table1.name = "table1".into();
    table1.description = "Learning details for each predicted element (Table I)".into();
    table1.seed = 2013;
    table1.topology.preset = TopologyPreset::IntraDc;
    table1.topology.pms_per_dc = 4;
    table1.workload.preset = WorkloadPreset::IntraDc;
    table1.workload.peak_rps = 240.0;
    table1.policy.kind = PolicyKind::Random;
    table1.experiment = experiment("table1");
    out.push(BuiltinSpec {
        name: "table1",
        title: "train + validate the seven predictors (M5P / LinReg / k-NN)",
        spec: table1,
    });

    // Table II — model inputs echoed and checked.
    let mut table2 = ScenarioSpec::default();
    table2.name = "table2".into();
    table2.description = "Prices and latencies used in the experiments (Table II)".into();
    table2.experiment = experiment("table2");
    out.push(BuiltinSpec {
        name: "table2",
        title: "echo + sanity-check the Table II prices and latencies",
        spec: table2,
    });

    // Green — the follow-the-sun future-work extension.
    let mut green = ScenarioSpec::default();
    green.name = "green".into();
    green.description = "Follow-the-sun solar extension (paper future-work §II)".into();
    green.seed = 11;
    green.topology.pms_per_dc = 2;
    green.workload.preset = WorkloadPreset::Uniform;
    green.workload.vms = 4;
    green.workload.load_scale = 0.7;
    green.energy.solar_dcs = vec![0, 2];
    green.energy.solar_per_pm_w = 150.0;
    green.energy.min_sky = 0.7;
    green.policy.plan_horizon_ticks = Some(60);
    green.run.hours = 48;
    green.experiment = experiment("green");
    out.push(BuiltinSpec {
        name: "green",
        title: "sun-aware vs price-blind scheduling with on-site solar",
        spec: green,
    });

    // De-location — §V-C "Benefit of De-locating Load".
    let mut deloc = ScenarioSpec::default();
    deloc.name = "deloc".into();
    deloc.description = "Benefit of de-locating load from an overloaded home DC (§V-C)".into();
    deloc.seed = 6;
    deloc.topology.pms_per_dc = 2;
    deloc.topology.deploy_all_in = Some(2);
    deloc.workload.load_scale = 0.9;
    deloc.experiment = experiment("deloc");
    out.push(BuiltinSpec {
        name: "deloc",
        title: "pinned vs de-locatable VMs under home-DC overload",
        spec: deloc,
    });

    // Ablations — SLA prediction path + monitor bias (§IV-B / §V-B).
    let mut ablations = ScenarioSpec::default();
    ablations.name = "ablations".into();
    ablations.description =
        "Design ablations: direct-SLA vs via-RT prediction, and the monitor bias (§IV-B, §V-B)"
            .into();
    ablations.seed = 2013;
    ablations.topology.preset = TopologyPreset::IntraDc;
    ablations.topology.pms_per_dc = 4;
    ablations.workload.preset = WorkloadPreset::IntraDc;
    ablations.workload.peak_rps = 240.0;
    ablations.policy.kind = PolicyKind::Random;
    ablations.experiment = experiment("ablations");
    out.push(BuiltinSpec {
        name: "ablations",
        title: "SLA-prediction-path & monitor-bias ablations over Table-I samples",
        spec: ablations,
    });

    // Heterogeneity — the §V-C price-spread prediction.
    let mut heterogeneity = ScenarioSpec::default();
    heterogeneity.name = "heterogeneity".into();
    heterogeneity.description =
        "Price-heterogeneity sweep: dynamic benefit grows with tariff spread (§V-C)".into();
    heterogeneity.seed = 29;
    heterogeneity.topology.pms_per_dc = 2;
    heterogeneity.workload.preset = WorkloadPreset::Uniform;
    heterogeneity.workload.vms = 4;
    heterogeneity.workload.peak_rps = 170.0;
    heterogeneity.workload.load_scale = 0.7;
    heterogeneity.policy.plan_horizon_ticks = Some(60);
    heterogeneity.run.hours = 12;
    heterogeneity.experiment = Some(ExperimentSpec {
        kind: "heterogeneity".into(),
        spreads: vec![1.0, 2.0, 4.0, 8.0],
        ..ExperimentSpec::default()
    });
    out.push(BuiltinSpec {
        name: "heterogeneity",
        title: "static vs dynamic benefit as tariff spreads widen (x1..x8)",
        spec: heterogeneity,
    });

    // On-line drift — future-work item 4 (concept drift).
    let mut drift = ScenarioSpec::default();
    drift.name = "online-drift".into();
    drift.description =
        "On-line learning through a fleet-wide software update (paper future-work 4)".into();
    drift.seed = 23;
    drift.topology.preset = TopologyPreset::IntraDc;
    drift.topology.pms_per_dc = 4;
    drift.workload.preset = WorkloadPreset::IntraDc;
    drift.workload.peak_rps = 240.0;
    drift.workload.load_scale = 0.8;
    drift.policy.kind = PolicyKind::Static;
    drift.run.hours = 16;
    drift.experiment = experiment("online-drift");
    out.push(BuiltinSpec {
        name: "online-drift",
        title: "frozen vs sliding-window vs drift-aware predictors under drift",
        spec: drift,
    });

    // Price adaptation — the §V-B unreported result.
    let mut price = ScenarioSpec::default();
    price.name = "price-adaptation".into();
    price.description =
        "Scheduler adapts to a 4x Boston tariff spike without retuning (§V-B)".into();
    price.seed = 17;
    price.topology.pms_per_dc = 2;
    price.topology.deploy_all_in = Some(3);
    price.workload.preset = WorkloadPreset::Uniform;
    price.workload.vms = 4;
    price.workload.peak_rps = 170.0;
    price.workload.load_scale = 0.7;
    price.policy.plan_horizon_ticks = Some(60);
    price.experiment = experiment("price-adaptation");
    out.push(BuiltinSpec {
        name: "price-adaptation",
        title: "adaptive vs posted-price scheduling through a tariff spike",
        spec: price,
    });

    // Scheduling-round scalability — future-work item 1.
    let mut scaling = ScenarioSpec::default();
    scaling.name = "scaling".into();
    scaling.description =
        "Flat vs hierarchical scheduling-round scalability (paper future-work 1)".into();
    scaling.workload.peak_rps = 60.0; // the driver's per-VM offered load
    scaling.experiment = experiment("scaling");
    out.push(BuiltinSpec {
        name: "scaling",
        title: "how many VMs/PMs per round: flat vs hierarchical wall time",
        spec: scaling,
    });

    // Solver scaling — §IV-C's motivation for the heuristic.
    let mut solver = ScenarioSpec::default();
    solver.name = "solver-scaling".into();
    solver.description = "Exact branch-and-bound vs Best-Fit scaling gap (§IV-C)".into();
    solver.workload.peak_rps = 250.0; // the driver's per-VM offered load
    solver.experiment = experiment("solver-scaling");
    out.push(BuiltinSpec {
        name: "solver-scaling",
        title: "exact solver blow-up vs instant Best-Fit (Algorithm 1's case)",
        spec: solver,
    });

    // Resilience — failure injection under a reactive policy (generic
    // path: no experiment binding, so it is also the sweep demo).
    let mut resilience = ScenarioSpec::default();
    resilience.name = "resilience".into();
    resilience.description =
        "Host crash at minute 30, repaired after 4 h, under reactive Best-Fit".into();
    resilience.seed = 5;
    resilience.topology.preset = TopologyPreset::IntraDc;
    resilience.topology.pms_per_dc = 4;
    resilience.workload.preset = WorkloadPreset::IntraDc;
    resilience.workload.peak_rps = 240.0;
    resilience.workload.vms = 3;
    resilience.policy.kind = PolicyKind::BestFit;
    resilience.run.hours = 3;
    resilience.faults = vec![FaultSpec {
        pm: 0,
        at_min: 30,
        repair_after_min: 240,
    }];
    out.push(BuiltinSpec {
        name: "resilience",
        title: "failure injection: evacuate a crashed host, survive, recover",
        spec: resilience,
    });

    // Heterogeneous fleet — `[[topology.classes]]` end to end (generic
    // path): each DC hosts one Atom beside one small 2-core box, so
    // consolidation must weigh unequal capacities and power curves.
    let mut fleet = ScenarioSpec::default();
    fleet.name = "hetero-fleet".into();
    fleet.description =
        "Mixed Atom + small-host fleet per DC under the hierarchical scheduler".into();
    fleet.seed = 31;
    fleet.topology.classes = vec![
        HostClassSpec {
            count: 1,
            machine: MachineClass::Atom,
        },
        HostClassSpec {
            count: 1,
            machine: MachineClass::Custom {
                cores: 2,
                mem_mb: 2048.0,
                idle_watts: 15.0,
                peak_watts: 22.0,
            },
        },
    ];
    fleet.workload.vms = 6;
    fleet.workload.load_scale = 0.8;
    fleet.run.hours = 8;
    out.push(BuiltinSpec {
        name: "hetero-fleet",
        title: "heterogeneous host classes: Atom + 2-core boxes in every DC",
        spec: fleet,
    });

    // Memory pressure — `[[workload.services]]` end to end (generic
    // path): a mixed Atom + Xeon fleet hosting memory-heavy services
    // whose RAM footprints, not their CPU, bound consolidation. The
    // light CPU load would pack many VMs per host; the 1.5–3 GB memory
    // floors do not, so the scheduler must spread (fewer VMs per host
    // than the CPU-bound twin — see `tests/mem_pressure.rs`).
    let mut mem = ScenarioSpec::default();
    mem.name = "mem-pressure".into();
    mem.description =
        "Memory-bound consolidation: RAM, not CPU, limits packing on a mixed Atom+Xeon fleet"
            .into();
    mem.seed = 37;
    mem.topology.classes = vec![
        HostClassSpec {
            count: 1,
            machine: MachineClass::Atom,
        },
        HostClassSpec {
            count: 1,
            machine: MachineClass::Xeon,
        },
    ];
    mem.workload.vms = 8;
    mem.workload.load_scale = 0.5;
    mem.workload.services = vec![
        ServiceSpecEntry {
            count: 4,
            image_size_mb: 4096.0,
            base_mem_mb: 1536.0,
            mem_mb_per_inflight: Some(24.0),
            ..ServiceSpecEntry::default()
        },
        ServiceSpecEntry {
            count: 4,
            image_size_mb: 8192.0,
            base_mem_mb: 3072.0,
            mem_mb_per_inflight: Some(32.0),
            ..ServiceSpecEntry::default()
        },
    ];
    mem.run.hours = 8;
    out.push(BuiltinSpec {
        name: "mem-pressure",
        title: "memory-bound packing: big-RAM services on a mixed Atom+Xeon fleet",
        spec: mem,
    });

    // Near-equivalence index — `[policy] near_equivalence_top_k` end to
    // end (generic path): the candidate index is forced on for this
    // 16-host fleet (`index_min_hosts = 8`, well under the compiled
    // default of 64) and its opt-in approximate mode scores only the
    // top-3 hosts per coarse group. Approximation relaxes the
    // bit-identity guarantee, so the policy name in every report this
    // spec produces carries the `+NEAR-EQUIV(top3)` marker — the golden
    // snapshot pins both the label and the shortlist-hit counters.
    let mut near = ScenarioSpec::default();
    near.name = "near-equiv".into();
    near.description =
        "Opt-in near-equivalence candidate index: approximate top-k shortlists, loudly labeled"
            .into();
    near.seed = 41;
    near.topology.pms_per_dc = 4;
    near.workload.preset = WorkloadPreset::Uniform;
    near.workload.vms = 8;
    near.workload.load_scale = 0.8;
    near.policy.kind = PolicyKind::BestFit;
    near.policy.index_min_hosts = Some(8);
    near.policy.near_equivalence_top_k = Some(3);
    near.run.hours = 8;
    out.push(BuiltinSpec {
        name: "near-equiv",
        title: "approximate near-equivalence shortlists (labeled, opt-in) on a 16-host fleet",
        spec: near,
    });

    out
}

/// Looks a built-in up by name.
pub fn find(name: &str) -> Option<BuiltinSpec> {
    builtins().into_iter().find(|b| b.name == name)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn at_least_eight_builtins() {
        assert!(builtins().len() >= 8, "{} builtins", builtins().len());
    }

    #[test]
    fn names_unique_and_match_spec_names() {
        let all = builtins();
        let mut names: Vec<&str> = all.iter().map(|b| b.name).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), all.len());
        for b in &all {
            assert_eq!(b.name, b.spec.name, "registry key must equal spec name");
            assert!(!b.spec.description.is_empty());
        }
    }

    #[test]
    fn every_builtin_round_trips_and_validates() {
        for b in builtins() {
            b.spec.validate().expect(b.name);
            let emitted = b.spec.emit();
            let parsed = ScenarioSpec::parse(&emitted).expect(b.name);
            assert_eq!(parsed, b.spec, "{} round-trips", b.name);
        }
    }

    #[test]
    fn every_builtin_world_builds() {
        for b in builtins() {
            let s = crate::build::build_scenario(&b.spec, std::path::Path::new(".")).expect(b.name);
            s.cluster.check_invariants();
        }
    }
}
