//! CSV/JSON emission of spec-run results.
//!
//! Metric keys pass through the workspace-wide
//! [`pamdc_core::report::metric_key`] namer — a no-op for keys the
//! experiment pipeline produced (they are sanitized at the source), a
//! guarantee for any future producer.

use crate::runner::SpecReport;
use pamdc_core::report::metric_key;
use std::fmt::Write as _;

/// Escapes a JSON string body.
fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// A JSON number (finite shortest-round-trip; non-finite become null,
/// which JSON requires).
fn json_number(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        "null".into()
    }
}

/// Emits reports as a JSON array of `{name, metrics: {k: v}}` objects.
pub fn reports_json(reports: &[SpecReport]) -> String {
    let mut out = String::from("[\n");
    for (i, r) in reports.iter().enumerate() {
        if i > 0 {
            out.push_str(",\n");
        }
        let _ = write!(
            out,
            "  {{\"name\": \"{}\", \"metrics\": {{",
            json_escape(&r.name)
        );
        for (j, (k, v)) in r.metrics.iter().enumerate() {
            if j > 0 {
                out.push_str(", ");
            }
            let _ = write!(
                out,
                "\"{}\": {}",
                json_escape(&metric_key(k)),
                json_number(*v)
            );
        }
        out.push_str("}}");
    }
    out.push_str("\n]\n");
    out
}

/// Emits reports as CSV: the union of metric keys as columns, one row
/// per report. Missing cells stay empty.
pub fn reports_csv(reports: &[SpecReport]) -> String {
    // Sanitize each report's keys once up front; the column union and
    // the cell lookups below then compare plain strings.
    let rows: Vec<Vec<(String, f64)>> = reports
        .iter()
        .map(|r| r.metrics.iter().map(|(k, v)| (metric_key(k), *v)).collect())
        .collect();
    let mut keys: Vec<&str> = Vec::new();
    for row in &rows {
        for (k, _) in row {
            if !keys.contains(&k.as_str()) {
                keys.push(k);
            }
        }
    }
    let esc = |s: &str| {
        if s.contains(',') || s.contains('"') {
            format!("\"{}\"", s.replace('"', "\"\""))
        } else {
            s.to_string()
        }
    };
    let mut out = String::from("name");
    for k in &keys {
        out.push(',');
        out.push_str(&esc(k));
    }
    out.push('\n');
    for (r, row) in reports.iter().zip(&rows) {
        out.push_str(&esc(&r.name));
        for k in &keys {
            out.push(',');
            if let Some((_, v)) = row.iter().find(|(key, _)| key == k) {
                let _ = write!(out, "{v}");
            }
        }
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Vec<SpecReport> {
        vec![
            SpecReport {
                name: "a".into(),
                text: String::new(),
                metrics: vec![("sla".into(), 0.5), ("watts".into(), 120.25)],
            },
            SpecReport {
                name: "b,\"x\"".into(),
                text: String::new(),
                metrics: vec![("sla".into(), 1.0), ("extra".into(), f64::NAN)],
            },
        ]
    }

    #[test]
    fn json_shape() {
        let j = reports_json(&sample());
        assert!(j.contains("\"sla\": 0.5"));
        assert!(j.contains("\"extra\": null"));
        assert!(j.contains("b,\\\"x\\\""));
        assert!(j.trim_start().starts_with('['));
    }

    #[test]
    fn csv_unions_columns() {
        let c = reports_csv(&sample());
        let mut lines = c.lines();
        assert_eq!(lines.next().unwrap(), "name,sla,watts,extra");
        assert_eq!(lines.next().unwrap(), "a,0.5,120.25,");
        assert!(lines.next().unwrap().starts_with("\"b,\"\"x\"\"\",1,,"));
    }
}
