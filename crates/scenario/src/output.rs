//! CSV/JSON emission of spec-run results.
//!
//! Metric keys pass through the workspace-wide
//! [`pamdc_core::report::disambiguated_metric_keys`] namer — a no-op
//! for keys the experiment pipeline produced (they are sanitized at the
//! source), a guarantee for any future producer. Distinct raw names
//! that sanitize to the same key (`"a b"` vs `"a_b"`) are detected at
//! emission time and suffixed `_2`, `_3`, ... instead of silently
//! merging into one JSON member / CSV column.

use crate::runner::SpecReport;
use pamdc_core::report::disambiguated_metric_keys;
use std::fmt::Write as _;

/// Escapes a JSON string body.
fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// A JSON number (finite shortest-round-trip; non-finite become null,
/// which JSON requires).
fn json_number(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        "null".into()
    }
}

/// Every report's metrics with sanitized, collision-free keys that are
/// **consistent across reports**: the same raw name (and repeat index,
/// for a producer that emits one name twice) always maps to the same
/// key. Per-report disambiguation would let one report's collision
/// shift another report's suffixes, and the CSV column union would then
/// silently align different raw metrics in one column across campaign
/// rows — so the suffix assignment is computed once, over the union of
/// all reports' raw names in first-seen order.
fn keyed_metrics_all(reports: &[SpecReport]) -> Vec<Vec<(String, f64)>> {
    // (raw name, occurrence-within-report) pairs, first-seen order.
    let mut order: Vec<(&str, usize)> = Vec::new();
    for r in reports {
        let mut seen: Vec<&str> = Vec::new();
        for (k, _) in &r.metrics {
            let occ = seen.iter().filter(|n| **n == k.as_str()).count();
            seen.push(k);
            if !order.iter().any(|&(name, o)| name == k && o == occ) {
                order.push((k, occ));
            }
        }
    }
    let raw: Vec<&str> = order.iter().map(|&(name, _)| name).collect();
    let keys = disambiguated_metric_keys(&raw);
    reports
        .iter()
        .map(|r| {
            let mut seen: Vec<&str> = Vec::new();
            r.metrics
                .iter()
                .map(|(k, v)| {
                    let occ = seen.iter().filter(|n| **n == k.as_str()).count();
                    seen.push(k);
                    let at = order
                        .iter()
                        .position(|&(name, o)| name == k && o == occ)
                        .expect("every (name, occurrence) was indexed above");
                    (keys[at].clone(), *v)
                })
                .collect()
        })
        .collect()
}

/// Emits reports as a JSON array of `{name, metrics: {k: v}}` objects.
pub fn reports_json(reports: &[SpecReport]) -> String {
    let keyed = keyed_metrics_all(reports);
    let mut out = String::from("[\n");
    for (i, r) in reports.iter().enumerate() {
        if i > 0 {
            out.push_str(",\n");
        }
        let _ = write!(
            out,
            "  {{\"name\": \"{}\", \"metrics\": {{",
            json_escape(&r.name)
        );
        for (j, (k, v)) in keyed[i].iter().enumerate() {
            if j > 0 {
                out.push_str(", ");
            }
            let _ = write!(out, "\"{}\": {}", json_escape(k), json_number(*v));
        }
        out.push_str("}}");
    }
    out.push_str("\n]\n");
    out
}

/// Emits reports as CSV: the union of metric keys as columns, one row
/// per report. Missing cells stay empty.
pub fn reports_csv(reports: &[SpecReport]) -> String {
    // Sanitize + disambiguate keys once, consistently across reports;
    // the column union and the cell lookups below then compare plain
    // strings.
    let rows: Vec<Vec<(String, f64)>> = keyed_metrics_all(reports);
    let mut keys: Vec<&str> = Vec::new();
    for row in &rows {
        for (k, _) in row {
            if !keys.contains(&k.as_str()) {
                keys.push(k);
            }
        }
    }
    let esc = |s: &str| {
        if s.contains(',') || s.contains('"') {
            format!("\"{}\"", s.replace('"', "\"\""))
        } else {
            s.to_string()
        }
    };
    let mut out = String::from("name");
    for k in &keys {
        out.push(',');
        out.push_str(&esc(k));
    }
    out.push('\n');
    for (r, row) in reports.iter().zip(&rows) {
        out.push_str(&esc(&r.name));
        for k in &keys {
            out.push(',');
            if let Some((_, v)) = row.iter().find(|(key, _)| key == k) {
                let _ = write!(out, "{v}");
            }
        }
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Vec<SpecReport> {
        vec![
            SpecReport {
                name: "a".into(),
                text: String::new(),
                metrics: vec![("sla".into(), 0.5), ("watts".into(), 120.25)],
            },
            SpecReport {
                name: "b,\"x\"".into(),
                text: String::new(),
                metrics: vec![("sla".into(), 1.0), ("extra".into(), f64::NAN)],
            },
        ]
    }

    #[test]
    fn json_shape() {
        let j = reports_json(&sample());
        assert!(j.contains("\"sla\": 0.5"));
        assert!(j.contains("\"extra\": null"));
        assert!(j.contains("b,\\\"x\\\""));
        assert!(j.trim_start().starts_with('['));
    }

    #[test]
    fn csv_unions_columns() {
        let c = reports_csv(&sample());
        let mut lines = c.lines();
        assert_eq!(lines.next().unwrap(), "name,sla,watts,extra");
        assert_eq!(lines.next().unwrap(), "a,0.5,120.25,");
        assert!(lines.next().unwrap().starts_with("\"b,\"\"x\"\"\",1,,"));
    }

    #[test]
    fn colliding_metric_names_keep_both_columns() {
        // "mean sla" and "mean_sla" both sanitize to "mean_sla": the
        // emitters must keep two distinct columns/members, not let the
        // later value overwrite the earlier one.
        let reports = vec![SpecReport {
            name: "collide".into(),
            text: String::new(),
            metrics: vec![("mean sla".into(), 0.25), ("mean_sla".into(), 0.75)],
        }];
        let j = reports_json(&reports);
        assert!(j.contains("\"mean_sla\": 0.25"), "{j}");
        assert!(j.contains("\"mean_sla_2\": 0.75"), "{j}");
        let c = reports_csv(&reports);
        let mut lines = c.lines();
        assert_eq!(lines.next().unwrap(), "name,mean_sla,mean_sla_2");
        assert_eq!(lines.next().unwrap(), "collide,0.25,0.75");
    }

    #[test]
    fn key_disambiguation_is_consistent_across_reports() {
        // Report A's collision must not shift report B's key: raw
        // "mean_sla" maps to the same column in every row, even though
        // A also carries "mean sla" (which collides into it) and B does
        // not. Per-report disambiguation would put B's raw "mean_sla"
        // under A's "mean sla" column — a silent cross-metric merge.
        let reports = vec![
            SpecReport {
                name: "a".into(),
                text: String::new(),
                metrics: vec![("mean sla".into(), 0.25), ("mean_sla".into(), 0.75)],
            },
            SpecReport {
                name: "b".into(),
                text: String::new(),
                metrics: vec![("mean_sla".into(), 0.5)],
            },
        ];
        let c = reports_csv(&reports);
        let mut lines = c.lines();
        assert_eq!(lines.next().unwrap(), "name,mean_sla,mean_sla_2");
        assert_eq!(lines.next().unwrap(), "a,0.25,0.75");
        assert_eq!(
            lines.next().unwrap(),
            "b,,0.5",
            "raw \"mean_sla\" stays in its own column for every row"
        );
        let j = reports_json(&reports);
        assert!(j.contains("\"mean_sla_2\": 0.5"), "{j}");
    }
}
