//! Campaign files: a TOML-subset document listing multiple specs with
//! per-spec overrides, run as one batch (`pamdc campaign <file>`) and
//! emitted as one merged CSV/JSON.
//!
//! ```text
//! name = "paper-evaluation"
//!
//! [[runs]]
//! spec = "fig6"                         # builtin name or spec path
//!
//! [[runs]]
//! spec = "fig6"
//! name = "fig6-hot"                     # report label override
//! params = ["workload.load_scale=1.5"]  # same syntax as --param
//! hours = 4                             # horizon override
//! ```
//!
//! `spec` resolves like the CLI's positional spec argument: a file path
//! (relative to the campaign file's directory) first, then a built-in
//! registry name. `params` entries apply in order via
//! [`ScenarioSpec::with_param`], so later overrides win.

use crate::spec::{Reader, ScenarioSpec, SpecError};
use crate::toml;

fn bad(msg: impl Into<String>) -> SpecError {
    SpecError(msg.into())
}

/// One entry of a campaign.
#[derive(Clone, Debug, PartialEq)]
pub struct CampaignRun {
    /// Spec reference: file path (campaign-relative) or built-in name.
    pub spec: String,
    /// Report-name override (`None` = the spec's own name; entries
    /// running the same spec twice want distinct labels).
    pub name: Option<String>,
    /// `key=value` overrides, applied in order.
    pub params: Vec<String>,
    /// Simulated-horizon override.
    pub hours: Option<u64>,
}

/// A parsed campaign file.
#[derive(Clone, Debug, PartialEq)]
pub struct Campaign {
    /// Campaign name (defaults to `"campaign"`).
    pub name: String,
    /// The runs, in file order.
    pub runs: Vec<CampaignRun>,
}

impl Campaign {
    /// Parses a campaign document. Unknown keys are errors, same as
    /// spec parsing.
    pub fn parse(text: &str) -> Result<Campaign, SpecError> {
        let mut root = Reader::new(toml::parse(text)?, "root");
        let name = root.take_str("name")?.unwrap_or_else(|| "campaign".into());
        let mut runs = Vec::new();
        for mut r in root.take_table_array("runs", "runs")? {
            let spec = r
                .take_str("spec")?
                .ok_or_else(|| bad("runs.spec is required"))?;
            let run = CampaignRun {
                spec,
                name: r.take_str("name")?,
                params: r.take_str_list("params")?.unwrap_or_default(),
                hours: r.take_u64("hours")?,
            };
            for p in &run.params {
                if !p.contains('=') {
                    return Err(bad(format!(
                        "runs.params entry {p:?} must look like key=value"
                    )));
                }
            }
            r.finish()?;
            runs.push(run);
        }
        root.finish()?;
        if runs.is_empty() {
            return Err(bad("campaign lists no [[runs]]"));
        }
        Ok(Campaign { name, runs })
    }
}

/// Applies one run's overrides to its loaded base spec.
pub fn apply_overrides(base: &ScenarioSpec, run: &CampaignRun) -> Result<ScenarioSpec, SpecError> {
    let mut spec = base.clone();
    for p in &run.params {
        let (key, value) = p.split_once('=').expect("validated at parse");
        spec = spec.with_param(key.trim(), value.trim())?;
    }
    if let Some(hours) = run.hours {
        spec.run.hours = hours;
    }
    if let Some(name) = &run.name {
        spec.name = name.clone();
    }
    Ok(spec)
}

#[cfg(test)]
mod tests {
    use super::*;

    const DOC: &str = r#"
name = "demo"

[[runs]]
spec = "fig6"

[[runs]]
spec = "fig6"
name = "fig6-hot"
params = ["workload.load_scale=1.5", "seed=9"]
hours = 4
"#;

    #[test]
    fn parses_runs_in_order() {
        let c = Campaign::parse(DOC).expect("parse");
        assert_eq!(c.name, "demo");
        assert_eq!(c.runs.len(), 2);
        assert_eq!(c.runs[0].spec, "fig6");
        assert_eq!(c.runs[0].params, Vec::<String>::new());
        assert_eq!(c.runs[1].name.as_deref(), Some("fig6-hot"));
        assert_eq!(c.runs[1].hours, Some(4));
    }

    #[test]
    fn overrides_apply_in_order() {
        let c = Campaign::parse(DOC).unwrap();
        let base = crate::registry::find("fig6").unwrap().spec;
        let spec = apply_overrides(&base, &c.runs[1]).expect("apply");
        assert_eq!(spec.name, "fig6-hot");
        assert_eq!(spec.workload.load_scale, 1.5);
        assert_eq!(spec.seed, 9);
        assert_eq!(spec.run.hours, 4);
        // The base spec is untouched.
        assert_eq!(base.seed, 7);
    }

    #[test]
    fn rejects_malformed_documents() {
        assert!(Campaign::parse("").is_err(), "no runs");
        assert!(Campaign::parse("[[runs]]\n").is_err(), "spec required");
        assert!(
            Campaign::parse("[[runs]]\nspec = \"fig6\"\nparams = [\"noequals\"]").is_err(),
            "params must be key=value"
        );
        assert!(
            Campaign::parse("[[runs]]\nspec = \"fig6\"\nfrobnicate = 1").is_err(),
            "unknown keys fail loudly"
        );
    }
}
