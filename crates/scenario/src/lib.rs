//! # pamdc-scenario — declarative scenario specs
//!
//! Moves evaluation from hard-coded Rust drivers to data: a
//! [`spec::ScenarioSpec`] describes topology, workload (synthetic or a
//! replayed trace), energy environment, billing, faults, profile
//! changes, scheduler policy and horizon; [`build`] turns a spec into a
//! runnable world; [`registry`] names every paper experiment as a
//! built-in spec; [`kinds`] registers each experiment driver's
//! [`pamdc_core::experiment::Experiment`] constructor; [`runner`]
//! executes specs through the shared experiment pipeline (bit-identical
//! to the pre-pipeline drivers — `tests/golden_reports.rs` proves it);
//! [`campaign`] batches many specs into one run; [`output`] emits
//! results as CSV/JSON.
//!
//! The wire format is a hand-rolled TOML subset ([`toml`]) — same
//! offline-shim philosophy as `crates/shims`: no registry dependency,
//! and `parse(emit(spec)) == spec` holds bit-for-bit.
//!
//! See `docs/SCENARIOS.md` for the format and worked examples, and
//! `crates/cli` for the `pamdc` command-line front-end.

pub mod build;
pub mod campaign;
pub mod kinds;
pub mod output;
pub mod registry;
pub mod runner;
pub mod spec;
pub mod toml;

/// Common imports.
pub mod prelude {
    pub use crate::build::{build_policy, build_scenario, run_config};
    pub use crate::campaign::{Campaign, CampaignRun};
    pub use crate::kinds::{KindEntry, KINDS};
    pub use crate::output::{reports_csv, reports_json};
    pub use crate::registry::{builtins, find, BuiltinSpec};
    pub use crate::runner::{run_spec, SpecReport};
    pub use crate::spec::{ScenarioSpec, SpecError};
}
