//! # pamdc-scenario — declarative scenario specs
//!
//! Moves evaluation from hard-coded Rust drivers to data: a
//! [`spec::ScenarioSpec`] describes topology, workload (synthetic or a
//! replayed trace), energy environment, billing, faults, profile
//! changes, scheduler policy and horizon; [`build`] turns a spec into a
//! runnable world; [`registry`] names every paper experiment as a
//! built-in spec; [`runner`] executes specs (dispatching to the
//! original experiment drivers when a spec binds one, so reports stay
//! bit-identical); [`output`] emits results as CSV/JSON.
//!
//! The wire format is a hand-rolled TOML subset ([`toml`]) — same
//! offline-shim philosophy as `crates/shims`: no registry dependency,
//! and `parse(emit(spec)) == spec` holds bit-for-bit.
//!
//! See `docs/SCENARIOS.md` for the format and worked examples, and
//! `crates/cli` for the `pamdc` command-line front-end.

pub mod build;
pub mod output;
pub mod registry;
pub mod runner;
pub mod spec;
pub mod toml;

/// Common imports.
pub mod prelude {
    pub use crate::build::{build_policy, build_scenario, run_config};
    pub use crate::output::{reports_csv, reports_json};
    pub use crate::registry::{builtins, find, BuiltinSpec};
    pub use crate::runner::{run_spec, SpecReport};
    pub use crate::spec::{ScenarioSpec, SpecError};
}
