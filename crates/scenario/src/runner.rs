//! The spec runner: one entry point that funnels **every** spec —
//! experiment-bound or generic — through the shared
//! [`pamdc_core::experiment`] pipeline.
//!
//! Experiment-bound specs (`[experiment] kind = ...`) dispatch through
//! the [`crate::kinds`] registry: no per-experiment `match` lives here,
//! adding a kind means one [`crate::kinds::KindEntry`]. Generic specs
//! run as a one-arm [`GenericExperiment`]. Either way the pipeline's
//! four stages (training → arms → execution → emission) produce the
//! report, bit-identical to the pre-registry drivers at the same seed
//! (the golden tests assert this).

use crate::build::{build_policy, build_scenario, needs_training, run_config};
use crate::kinds;
use crate::spec::{ScenarioSpec, SpecError};
use pamdc_core::experiment::{run_experiment, Arm, Experiment, ExperimentReport, ExperimentRun};
use pamdc_core::experiments::table1::Table1Config;
use pamdc_core::scenario::Scenario;
use pamdc_core::training::TrainingOutcome;
use std::path::Path;

// The shared emission helpers live with the pipeline; re-exported here
// for the CLI and tests that import them from the runner.
pub use pamdc_core::experiment::{outcome_metrics, render_outcome};

/// One finished spec run.
#[derive(Clone, Debug)]
pub struct SpecReport {
    /// The spec's name.
    pub name: String,
    /// Rendered report (the experiment's table, or a run summary).
    pub text: String,
    /// Flat `(key, value)` metrics for CSV/JSON emission.
    pub metrics: Vec<(String, f64)>,
}

/// The generic single-run path as a one-arm experiment: build the
/// world, train if the oracle needs it, run the policy for `[run]`
/// hours (quick mode caps at 3 h).
struct GenericExperiment {
    spec: ScenarioSpec,
    /// Built eagerly so spec errors (bad presets, missing trace files)
    /// surface before the pipeline starts; `arms` takes it.
    scenario: Option<Scenario>,
    quick: bool,
}

impl GenericExperiment {
    fn new(spec: &ScenarioSpec, base_dir: &Path, quick: bool) -> Result<Self, SpecError> {
        Ok(GenericExperiment {
            scenario: Some(build_scenario(spec, base_dir)?),
            spec: spec.clone(),
            quick,
        })
    }
}

impl Experiment for GenericExperiment {
    fn training(&self) -> Option<Table1Config> {
        needs_training(&self.spec).then(|| {
            if self.quick {
                Table1Config::quick(self.spec.training.seed)
            } else {
                let t = &self.spec.training;
                Table1Config {
                    vms: t.vms,
                    scales: t.scales.clone(),
                    hours_per_scale: t.hours_per_scale,
                    seed: t.seed,
                }
            }
        })
    }

    fn arms(&mut self, training: Option<&TrainingOutcome>) -> Vec<Arm> {
        let scenario = self.scenario.take().expect("arms enumerated once");
        let suite = training.map(|t| t.suite.clone());
        let policy = build_policy(&self.spec, suite)
            .expect("training stage supplies the suite the policy needs");
        let hours = if self.quick {
            self.spec.run.hours.min(3)
        } else {
            self.spec.run.hours
        };
        vec![Arm::new("", scenario, policy, hours).config(run_config(&self.spec))]
    }

    fn emit(&self, run: ExperimentRun) -> ExperimentReport {
        let outcome = &run.outcomes[0].1;
        ExperimentReport {
            text: render_outcome(outcome),
            metrics: outcome_metrics("", outcome),
        }
    }
}

/// Builds the experiment a spec describes (registry dispatch, or the
/// generic one-arm experiment when no kind is bound).
fn experiment_for(
    spec: &ScenarioSpec,
    base_dir: &Path,
    quick: bool,
) -> Result<Box<dyn Experiment>, SpecError> {
    match &spec.experiment {
        Some(exp) => {
            let entry = kinds::find(&exp.kind).ok_or_else(|| {
                SpecError(format!(
                    "unknown experiment kind {:?} (expected one of {})",
                    exp.kind,
                    kinds::kind_names().join(" | ")
                ))
            })?;
            (entry.build)(spec, quick)
        }
        None => Ok(Box::new(GenericExperiment::new(spec, base_dir, quick)?)),
    }
}

/// Runs a spec. `base_dir` anchors relative trace paths; `quick`
/// substitutes each driver's `quick()` preset (tests, CI smoke).
pub fn run_spec(
    spec: &ScenarioSpec,
    base_dir: &Path,
    quick: bool,
) -> Result<SpecReport, SpecError> {
    spec.validate()?;
    let mut exp = experiment_for(spec, base_dir, quick)?;
    let report = run_experiment(exp.as_mut());
    Ok(SpecReport {
        name: spec.name.clone(),
        text: report.text,
        metrics: report.metrics,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generic_run_produces_metrics() {
        let mut spec = ScenarioSpec::default();
        spec.run.hours = 2;
        let report = run_spec(&spec, Path::new("."), false).expect("run");
        assert!(report.text.contains("mean_sla"));
        let sla = report
            .metrics
            .iter()
            .find(|(k, _)| k == "mean_sla")
            .unwrap()
            .1;
        assert!(sla > 0.0 && sla <= 1.0);
    }

    #[test]
    fn generic_run_is_deterministic() {
        let mut spec = ScenarioSpec::default();
        spec.run.hours = 2;
        let a = run_spec(&spec, Path::new("."), false).unwrap();
        let b = run_spec(&spec, Path::new("."), false).unwrap();
        assert_eq!(a.text, b.text);
        for ((ka, va), (kb, vb)) in a.metrics.iter().zip(&b.metrics) {
            assert_eq!(ka, kb);
            assert_eq!(va.to_bits(), vb.to_bits());
        }
    }

    #[test]
    fn table2_spec_runs_instantly() {
        let spec = crate::registry::find("table2").unwrap().spec;
        let report = run_spec(&spec, Path::new("."), true).expect("table2");
        assert!(report.text.contains("Table II"));
    }

    #[test]
    fn resilience_builtin_recovers() {
        let spec = crate::registry::find("resilience").unwrap().spec;
        let report = run_spec(&spec, Path::new("."), false).expect("resilience");
        let migrations = report
            .metrics
            .iter()
            .find(|(k, _)| k == "migrations")
            .unwrap()
            .1;
        assert!(
            migrations > 0.0,
            "evacuating the crashed host requires migrations"
        );
    }

    #[test]
    fn unknown_kind_reports_the_registry() {
        let mut spec = ScenarioSpec::default();
        spec.experiment = Some(crate::spec::ExperimentSpec {
            kind: "fig99".into(),
            ..crate::spec::ExperimentSpec::default()
        });
        let err = run_spec(&spec, Path::new("."), true).unwrap_err();
        assert!(err.0.contains("fig99"), "{err}");
        assert!(err.0.contains("fig7-table3"), "{err}");
    }
}
