//! The spec runner: one entry point that either dispatches to the bound
//! experiment driver (`[experiment] kind = ...`) or runs the generic
//! scenario → policy → simulation path.
//!
//! Experiment dispatch constructs the driver's config **from the spec's
//! fields** (full mode) or from the driver's `quick()` preset (quick
//! mode), so `pamdc run fig4.toml` reproduces `experiments::fig4::run`'s
//! report bit-for-bit at the same seed.

use crate::build::{build_policy, build_scenario, needs_training, run_config, train_for_spec};
use crate::spec::{OracleKind, ScenarioSpec, SpecError, TrainingSpec};
use pamdc_core::experiments::{deloc, fig4, fig5, fig6, fig7_table3, fig8, green, table1, table2};
use pamdc_core::report::TextTable;
use pamdc_core::simulation::{RunOutcome, SimulationRunner};
use pamdc_core::training::TrainingOutcome;
use pamdc_simcore::time::SimDuration;
use std::path::Path;

/// One finished spec run.
#[derive(Clone, Debug)]
pub struct SpecReport {
    /// The spec's name.
    pub name: String,
    /// Rendered report (the experiment's table, or a run summary).
    pub text: String,
    /// Flat `(key, value)` metrics for CSV/JSON emission.
    pub metrics: Vec<(String, f64)>,
}

/// Flattens a [`RunOutcome`] into report metrics.
pub fn outcome_metrics(prefix: &str, o: &RunOutcome) -> Vec<(String, f64)> {
    let key = |k: &str| {
        if prefix.is_empty() {
            k.to_string()
        } else {
            format!("{prefix}_{k}")
        }
    };
    vec![
        (key("mean_sla"), o.mean_sla),
        (key("avg_watts"), o.avg_watts),
        (key("total_wh"), o.total_wh),
        (key("avg_active_pms"), o.avg_active_pms),
        (key("migrations"), o.migrations as f64),
        (key("dropped_requests"), o.dropped_requests),
        (key("served_requests"), o.served_requests),
        (key("revenue_eur"), o.profit.revenue_eur),
        (key("energy_eur"), o.profit.energy_eur),
        (key("profit_eur"), o.profit.profit_eur()),
        (key("eur_per_hour"), o.eur_per_hour()),
        (key("green_wh"), o.energy.green_wh),
        (key("co2_g_per_kwh"), o.energy.intensity_g_per_kwh()),
    ]
}

/// Renders a generic run's summary table.
pub fn render_outcome(o: &RunOutcome) -> String {
    let mut t = TextTable::new(&["metric", "value"]);
    for (k, v) in outcome_metrics("", o) {
        t.row(vec![k, format!("{v:.6}")]);
    }
    format!(
        "Scenario '{}' under {} for {}\n{}",
        o.scenario_name,
        o.policy_name,
        o.duration,
        t.render()
    )
}

/// The quick-mode training preset (`Table1Config::quick`).
fn quick_training(seed: u64) -> TrainingSpec {
    let cfg = table1::Table1Config::quick(seed);
    TrainingSpec {
        vms: cfg.vms,
        scales: cfg.scales,
        hours_per_scale: cfg.hours_per_scale,
        seed: cfg.seed,
    }
}

fn train(spec: &ScenarioSpec, quick: bool) -> TrainingOutcome {
    let training = if quick {
        quick_training(spec.training.seed)
    } else {
        spec.training.clone()
    };
    train_for_spec(&training)
}

/// Training is only attached to an experiment when the spec asks for ML
/// beliefs; `true`-oracle specs reproduce the ground-truth arms.
fn maybe_train(spec: &ScenarioSpec, quick: bool) -> Option<TrainingOutcome> {
    (spec.policy.oracle == OracleKind::Ml).then(|| train(spec, quick))
}

/// Runs a spec. `base_dir` anchors relative trace paths; `quick`
/// substitutes each driver's `quick()` preset (tests, CI smoke).
pub fn run_spec(
    spec: &ScenarioSpec,
    base_dir: &Path,
    quick: bool,
) -> Result<SpecReport, SpecError> {
    spec.validate()?;
    let Some(exp) = &spec.experiment else {
        return run_generic(spec, base_dir, quick);
    };
    let report = match exp.kind.as_str() {
        "fig4" => {
            let cfg = if quick {
                fig4::Fig4Config::quick(spec.seed)
            } else {
                fig4::Fig4Config {
                    hours: spec.run.hours,
                    vms: spec.workload.vms,
                    load_scale: spec.workload.load_scale,
                    seed: spec.seed,
                    include_true_arm: exp.true_arm,
                }
            };
            let training = train(spec, quick);
            let result = fig4::run(&cfg, &training);
            let mut metrics = Vec::new();
            for o in &result.outcomes {
                metrics.extend(outcome_metrics(&o.policy_name.replace(['[', ']'], "_"), o));
            }
            SpecReport {
                name: spec.name.clone(),
                text: fig4::render(&result),
                metrics,
            }
        }
        "fig5" => {
            let cfg = fig5::Fig5Config {
                hours: if quick { 24 } else { spec.run.hours },
                seed: spec.seed,
            };
            let result = fig5::run(&cfg);
            let metrics = vec![
                ("dcs_visited".to_string(), result.dcs_visited as f64),
                ("migrations".to_string(), result.outcome.migrations as f64),
                ("mean_sla".to_string(), result.outcome.mean_sla),
            ];
            SpecReport {
                name: spec.name.clone(),
                text: fig5::render(&result),
                metrics,
            }
        }
        "fig6" => {
            let cfg = if quick {
                fig6::Fig6Config::quick(spec.seed)
            } else {
                fig6::Fig6Config {
                    hours: spec.run.hours,
                    vms: spec.workload.vms,
                    flash_multiplier: spec.workload.flash_crowd.unwrap_or(8.0),
                    seed: spec.seed,
                }
            };
            let training = maybe_train(spec, quick);
            let result = fig6::run(&cfg, training.as_ref());
            let mut metrics = vec![
                ("sla_before_crowd".to_string(), result.sla_before_crowd),
                ("sla_during_crowd".to_string(), result.sla_during_crowd),
                ("sla_after_crowd".to_string(), result.sla_after_crowd),
            ];
            metrics.extend(outcome_metrics("", &result.outcome));
            SpecReport {
                name: spec.name.clone(),
                text: fig6::render(&result),
                metrics,
            }
        }
        "fig7-table3" => {
            let cfg = if quick {
                fig7_table3::Table3Config::quick(spec.seed)
            } else {
                fig7_table3::Table3Config {
                    hours: spec.run.hours,
                    vms: spec.workload.vms,
                    load_scale: spec.workload.load_scale,
                    seed: spec.seed,
                }
            };
            let training = maybe_train(spec, quick);
            let result = fig7_table3::run(&cfg, training.as_ref());
            let mut metrics = outcome_metrics("static", &result.static_global);
            metrics.extend(outcome_metrics("dynamic", &result.dynamic));
            metrics.push((
                "energy_saving_frac".to_string(),
                result.energy_saving_frac(),
            ));
            SpecReport {
                name: spec.name.clone(),
                text: fig7_table3::render(&result),
                metrics,
            }
        }
        "fig8" => {
            let cfg = if quick {
                fig8::Fig8Config::quick(spec.seed)
            } else {
                let defaults = fig8::Fig8Config::default();
                fig8::Fig8Config {
                    load_scales: if exp.load_scales.is_empty() {
                        defaults.load_scales
                    } else {
                        exp.load_scales.clone()
                    },
                    pms_per_dc: if exp.pms_levels.is_empty() {
                        defaults.pms_per_dc
                    } else {
                        exp.pms_levels.clone()
                    },
                    hours: spec.run.hours,
                    vms: spec.workload.vms,
                    seed: spec.seed,
                }
            };
            let result = fig8::run(&cfg);
            SpecReport {
                name: spec.name.clone(),
                text: fig8::render(&result),
                metrics: Vec::new(),
            }
        }
        "table1" => {
            let outcome = if quick {
                table1::run(&table1::Table1Config::quick(spec.training.seed))
            } else {
                table1::run(&table1::Table1Config {
                    vms: spec.training.vms,
                    scales: spec.training.scales.clone(),
                    hours_per_scale: spec.training.hours_per_scale,
                    seed: spec.training.seed,
                })
            };
            let metrics = vec![
                (
                    "vm_tick_samples".to_string(),
                    outcome.sample_counts.0 as f64,
                ),
                (
                    "pm_tick_samples".to_string(),
                    outcome.sample_counts.1 as f64,
                ),
            ];
            let text = format!(
                "{}\n{}",
                table1::render(&outcome),
                table1::render_comparison(&outcome)
            );
            SpecReport {
                name: spec.name.clone(),
                text,
                metrics,
            }
        }
        "table2" => {
            table2::verify();
            SpecReport {
                name: spec.name.clone(),
                text: table2::render(),
                metrics: Vec::new(),
            }
        }
        "green" => {
            let cfg = if quick {
                green::GreenConfig::quick(spec.seed)
            } else {
                green::GreenConfig {
                    hours: spec.run.hours,
                    vms: spec.workload.vms,
                    pms_per_dc: spec.topology.pms_per_dc,
                    solar_dcs: spec.energy.solar_dcs.clone(),
                    solar_per_pm_w: spec.energy.solar_per_pm_w,
                    min_sky: spec.energy.min_sky,
                    load_scale: spec.workload.load_scale,
                    seed: spec.seed,
                }
            };
            let result = green::run(&cfg);
            let mut metrics = outcome_metrics("sun_aware", &result.sun_aware);
            metrics.extend(outcome_metrics("price_blind", &result.price_blind));
            metrics.push((
                "green_fraction_gain".to_string(),
                result.green_fraction_gain(),
            ));
            SpecReport {
                name: spec.name.clone(),
                text: green::render(&result),
                metrics,
            }
        }
        "deloc" => {
            let cfg = if quick {
                deloc::DelocConfig::quick(spec.seed)
            } else {
                deloc::DelocConfig {
                    hours: spec.run.hours,
                    vms: spec.workload.vms,
                    home_dc: spec.topology.deploy_all_in.unwrap_or(2),
                    pms_per_dc: spec.topology.pms_per_dc,
                    load_scale: spec.workload.load_scale,
                    seed: spec.seed,
                }
            };
            let vms = cfg.vms;
            let result = deloc::run(&cfg);
            SpecReport {
                name: spec.name.clone(),
                text: deloc::render(&result, vms),
                metrics: Vec::new(),
            }
        }
        other => return Err(SpecError(format!("unknown experiment kind {other:?}"))),
    };
    Ok(report)
}

/// The generic path: build the world, train if the oracle needs it, run
/// the policy for `[run] hours` (quick mode caps at 3 h).
pub fn run_generic(
    spec: &ScenarioSpec,
    base_dir: &Path,
    quick: bool,
) -> Result<SpecReport, SpecError> {
    let scenario = build_scenario(spec, base_dir)?;
    let suite = if needs_training(spec) {
        Some(train(spec, quick).suite)
    } else {
        None
    };
    let policy = build_policy(spec, suite)?;
    let hours = if quick {
        spec.run.hours.min(3)
    } else {
        spec.run.hours
    };
    let (outcome, _) = SimulationRunner::new(scenario, policy)
        .config(run_config(spec))
        .run(SimDuration::from_hours(hours));
    Ok(SpecReport {
        name: spec.name.clone(),
        text: render_outcome(&outcome),
        metrics: outcome_metrics("", &outcome),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generic_run_produces_metrics() {
        let mut spec = ScenarioSpec::default();
        spec.run.hours = 2;
        let report = run_spec(&spec, Path::new("."), false).expect("run");
        assert!(report.text.contains("mean_sla"));
        let sla = report
            .metrics
            .iter()
            .find(|(k, _)| k == "mean_sla")
            .unwrap()
            .1;
        assert!(sla > 0.0 && sla <= 1.0);
    }

    #[test]
    fn generic_run_is_deterministic() {
        let mut spec = ScenarioSpec::default();
        spec.run.hours = 2;
        let a = run_spec(&spec, Path::new("."), false).unwrap();
        let b = run_spec(&spec, Path::new("."), false).unwrap();
        assert_eq!(a.text, b.text);
        for ((ka, va), (kb, vb)) in a.metrics.iter().zip(&b.metrics) {
            assert_eq!(ka, kb);
            assert_eq!(va.to_bits(), vb.to_bits());
        }
    }

    #[test]
    fn table2_spec_runs_instantly() {
        let spec = crate::registry::find("table2").unwrap().spec;
        let report = run_spec(&spec, Path::new("."), true).expect("table2");
        assert!(report.text.contains("Table II"));
    }

    #[test]
    fn resilience_builtin_recovers() {
        let spec = crate::registry::find("resilience").unwrap().spec;
        let report = run_spec(&spec, Path::new("."), false).expect("resilience");
        let migrations = report
            .metrics
            .iter()
            .find(|(k, _)| k == "migrations")
            .unwrap()
            .1;
        assert!(
            migrations > 0.0,
            "evacuating the crashed host requires migrations"
        );
    }
}
