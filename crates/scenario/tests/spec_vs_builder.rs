//! Spec-built worlds are bit-identical to hand-built ones, and running
//! the fig4/fig6 registry specs reproduces the experiment drivers'
//! reports exactly (same seed, same numbers).

use pamdc_core::experiments::{fig4, fig6, table1};
use pamdc_core::policy::{BestFitPolicy, PlacementPolicy};
use pamdc_core::scenario::{Scenario, ScenarioBuilder};
use pamdc_core::simulation::{RunOutcome, SimulationRunner};
use pamdc_scenario::build::build_scenario;
use pamdc_scenario::registry;
use pamdc_scenario::runner::run_spec;
use pamdc_sched::oracle::TrueOracle;
use pamdc_simcore::time::SimDuration;
use std::path::Path;

/// Drives a scenario under a fixed reference policy for two hours.
fn reference_run(scenario: Scenario) -> RunOutcome {
    let policy: Box<dyn PlacementPolicy> = Box::new(BestFitPolicy::new(TrueOracle::new()));
    SimulationRunner::new(scenario, policy)
        .run(SimDuration::from_hours(2))
        .0
}

/// Asserts two scenarios produce bit-identical dynamics.
fn assert_bit_identical(a: Scenario, b: Scenario, label: &str) {
    assert_eq!(a.cluster.dc_count(), b.cluster.dc_count(), "{label}: DCs");
    assert_eq!(a.cluster.pm_count(), b.cluster.pm_count(), "{label}: PMs");
    assert_eq!(a.cluster.vm_count(), b.cluster.vm_count(), "{label}: VMs");
    assert_eq!(a.seed, b.seed, "{label}: seed");
    let (wa, wb) = (
        a.workload.synthetic().unwrap(),
        b.workload.synthetic().unwrap(),
    );
    assert_eq!(wa.services.len(), wb.services.len());
    for (sa, sb) in wa.services.iter().zip(&wb.services) {
        assert_eq!(
            sa.scale_rps.to_bits(),
            sb.scale_rps.to_bits(),
            "{label}: scale"
        );
        assert_eq!(sa.class, sb.class, "{label}: class");
        assert_eq!(sa.region_weights, sb.region_weights, "{label}: weights");
    }
    let (oa, ob) = (reference_run(a), reference_run(b));
    assert_eq!(oa.mean_sla.to_bits(), ob.mean_sla.to_bits(), "{label}: SLA");
    assert_eq!(
        oa.total_wh.to_bits(),
        ob.total_wh.to_bits(),
        "{label}: energy"
    );
    assert_eq!(oa.migrations, ob.migrations, "{label}: migrations");
    assert_eq!(
        oa.profit.profit_eur().to_bits(),
        ob.profit.profit_eur().to_bits(),
        "{label}: profit"
    );
}

#[test]
fn fig4_spec_world_matches_hand_built() {
    let spec = registry::find("fig4").unwrap().spec;
    let from_spec = build_scenario(&spec, Path::new(".")).expect("build");
    let hand_built = ScenarioBuilder::paper_intra_dc()
        .vms(5)
        .load_scale(1.0)
        .seed(4)
        .name("fig4")
        .build();
    assert_bit_identical(from_spec, hand_built, "fig4");
}

#[test]
fn fig6_spec_world_matches_hand_built() {
    let spec = registry::find("fig6").unwrap().spec;
    let from_spec = build_scenario(&spec, Path::new(".")).expect("build");
    let hand_built = ScenarioBuilder::paper_multi_dc()
        .vms(5)
        .flash_crowd(8.0)
        .seed(7)
        .name("fig6")
        .build();
    assert_bit_identical(from_spec, hand_built, "fig6");
}

#[test]
fn fig6_spec_run_reproduces_the_driver_report() {
    let spec = registry::find("fig6").unwrap().spec;
    let report = run_spec(&spec, Path::new("."), true).expect("run");
    // The driver, called directly with the same quick preset and seed.
    let direct = fig6::run(&fig6::Fig6Config::quick(spec.seed), None);
    assert_eq!(report.text, fig6::render(&direct), "bit-identical report");
    let sla = report
        .metrics
        .iter()
        .find(|(k, _)| k == "mean_sla")
        .unwrap()
        .1;
    assert_eq!(sla.to_bits(), direct.outcome.mean_sla.to_bits());
}

#[test]
fn fig4_spec_run_reproduces_the_driver_report() {
    let spec = registry::find("fig4").unwrap().spec;
    let report = run_spec(&spec, Path::new("."), true).expect("run");
    // Same quick presets the runner uses: training seeded by the spec's
    // [training] section, the figure by the spec seed.
    let training = table1::run(&table1::Table1Config::quick(spec.training.seed));
    let direct = fig4::run(&fig4::Fig4Config::quick(spec.seed), &training);
    assert_eq!(report.text, fig4::render(&direct), "bit-identical report");
}
