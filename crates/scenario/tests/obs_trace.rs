//! End-to-end guarantees of the observability layer (docs/OBSERVABILITY.md):
//!
//! 1. **Replay safety** — instrumentation never influences decisions:
//!    a run's report is bit-identical with tracing on or off.
//! 2. **Trace determinism** — two traced runs of the same scenario
//!    produce byte-identical JSONL modulo the `wall_ns` field.
//! 3. **Coverage** — the named MAPE phase spans account for ≥95% of the
//!    root (`tick`) wall-clock, so `pamdc trace summarize` explains
//!    where a run's time went instead of leaving an unattributed gap.
//!
//! The trace sink is process-global, so every test takes SINK_LOCK.

use pamdc_scenario::registry;
use pamdc_scenario::runner::run_spec;
use std::path::Path;
use std::sync::Mutex;

static SINK_LOCK: Mutex<()> = Mutex::new(());

/// Runs a builtin with the in-memory trace sink installed, returning
/// the report and the JSONL lines.
fn traced_run(name: &str) -> (pamdc_scenario::runner::SpecReport, Vec<String>) {
    let spec = registry::find(name).expect("builtin").spec;
    pamdc_obs::trace::install_memory();
    let report = run_spec(&spec, Path::new("."), true).expect("traced run");
    let lines = pamdc_obs::trace::finish()
        .expect("finish")
        .expect("memory sink lines");
    (report, lines)
}

/// A trace line with its `wall_ns` value masked — the single
/// nondeterministic field in schema v1.
fn mask_wall_ns(line: &str) -> String {
    match line.find("\"wall_ns\":") {
        None => line.to_string(),
        Some(at) => {
            let prefix = &line[..at + "\"wall_ns\":".len()];
            let rest = &line[at + "\"wall_ns\":".len()..];
            let end = rest.find([',', '}']).unwrap_or(rest.len());
            format!("{prefix}*{}", &rest[end..])
        }
    }
}

#[test]
fn reports_are_bit_identical_with_and_without_tracing() {
    let _guard = SINK_LOCK.lock().unwrap();
    let spec = registry::find("fig4").expect("builtin").spec;
    let plain = run_spec(&spec, Path::new("."), true).expect("untraced run");
    let (traced, lines) = traced_run("fig4");
    assert!(!lines.is_empty(), "tracing actually produced events");
    assert_eq!(plain.text, traced.text, "rendered report diverged");
    assert_eq!(plain.metrics.len(), traced.metrics.len());
    for ((ka, va), (kb, vb)) in plain.metrics.iter().zip(&traced.metrics) {
        assert_eq!(ka, kb);
        assert_eq!(
            va.to_bits(),
            vb.to_bits(),
            "metric {ka} diverged under tracing"
        );
    }
}

#[test]
fn traces_are_byte_identical_modulo_wall_ns() {
    let _guard = SINK_LOCK.lock().unwrap();
    let (_, a) = traced_run("fig4");
    let (_, b) = traced_run("fig4");
    assert_eq!(a.len(), b.len(), "event counts diverged");
    for (la, lb) in a.iter().zip(&b) {
        assert_eq!(mask_wall_ns(la), mask_wall_ns(lb));
    }
}

#[test]
fn named_phases_cover_95_percent_of_root_wall_clock() {
    let _guard = SINK_LOCK.lock().unwrap();
    let (_, lines) = traced_run("fig4");
    let summary = pamdc_obs::trace::summarize(&lines).expect("summarize");
    assert!(summary.runs >= 1, "run_start recorded");
    assert!(summary.ticks > 0, "run_end carries the tick count");
    let phases: Vec<&str> = summary
        .spans
        .iter()
        .map(|r| r.path.as_str())
        .filter(|p| p.matches('/').count() == 1)
        .collect();
    for expected in ["tick/world", "tick/monitor", "tick/analyze", "tick/plan"] {
        assert!(phases.contains(&expected), "missing phase {expected}");
    }
    let coverage = summary.coverage().expect("root spans present");
    assert!(
        coverage >= 0.95,
        "phases cover {:.1}% of the tick wall-clock (< 95%)",
        100.0 * coverage
    );
    // The machine-readable counter stream reached the trace too.
    assert!(
        summary.counters.iter().any(|(name, _)| name == "sim.ticks"),
        "counters flushed into the trace"
    );
}
