//! Property tests: spec emission and parsing are exact inverses.
#![allow(clippy::field_reassign_with_default, clippy::manual_is_multiple_of)]

use pamdc_scenario::spec::{
    ExperimentSpec, FaultSpec, HostClassSpec, ImportSpec, MachineClass, OracleKind, PolicyKind,
    ProfileChangeSpec, ScenarioSpec, ServiceSpecEntry, TariffSpec, TopologyPreset, TraceReplaySpec,
    WorkloadPreset,
};
use proptest::prelude::*;

const POLICIES: [PolicyKind; 7] = [
    PolicyKind::Static,
    PolicyKind::BestFit,
    PolicyKind::BestFitRaw,
    PolicyKind::Hierarchical,
    PolicyKind::FollowLoad,
    PolicyKind::CheapestEnergy,
    PolicyKind::Random,
];

const ORACLES: [OracleKind; 4] = [
    OracleKind::Monitor,
    OracleKind::Overbooked,
    OracleKind::Ml,
    OracleKind::True,
];

const EXPERIMENTS: [&str; 15] = [
    "fig4",
    "fig5",
    "fig6",
    "fig7-table3",
    "fig8",
    "table1",
    "table2",
    "green",
    "deloc",
    "ablations",
    "heterogeneity",
    "online-drift",
    "price-adaptation",
    "scaling",
    "solver-scaling",
];

/// Builds a randomized—but always valid—spec from drawn primitives.
#[allow(clippy::too_many_arguments)]
fn assemble(
    name: String,
    description: String,
    seed: u64,
    intra: bool,
    pms_per_dc: usize,
    vms: usize,
    peak_rps: f64,
    load_scale: f64,
    knobs: (usize, usize, u64, bool, bool, bool, bool, f64),
) -> ScenarioSpec {
    let (policy_i, oracle_i, hours, flash, trace, faults, experiment, scalar) = knobs;
    let mut spec = ScenarioSpec::default();
    spec.name = name;
    spec.description = description;
    spec.seed = seed;
    if intra {
        spec.topology.preset = TopologyPreset::IntraDc;
        spec.workload.preset = WorkloadPreset::IntraDc;
    } else if vms % 3 == 0 {
        spec.workload.preset = WorkloadPreset::Uniform;
    }
    spec.topology.pms_per_dc = pms_per_dc;
    spec.workload.vms = vms;
    spec.workload.peak_rps = peak_rps;
    spec.workload.load_scale = load_scale;
    spec.policy.kind = POLICIES[policy_i % POLICIES.len()];
    spec.policy.oracle = ORACLES[oracle_i % ORACLES.len()];
    if hours % 2 == 0 {
        spec.policy.plan_horizon_ticks = Some(hours % 90);
    }
    if hours % 5 == 0 {
        spec.policy.index_min_hosts = Some(1 + (hours as usize % 512));
    }
    if hours % 7 == 0 {
        spec.policy.near_equivalence_top_k = Some(1 + (oracle_i % 8));
    }
    spec.run.hours = 1 + hours % 72;
    spec.run.keep_series = hours % 3 != 0;
    // flash_crowd + trace is rejected by validate() (a replayed trace
    // already carries its demand), so only generate one of the two.
    if flash && !trace {
        spec.workload.flash_crowd = Some(1.0 + scalar * 10.0);
    }
    if trace && !experiment {
        // Alternate between the two file-backed demand sources (they
        // are mutually exclusive, and an [experiment] binding rejects
        // both): a recorded replay and a public-dataset import with
        // every knob exercised.
        if seed % 3 == 0 {
            spec.workload.import = Some(ImportSpec {
                path: format!("datasets/{seed}.csv"),
                format: if seed % 2 == 0 { "azure" } else { "alibaba" }.into(),
                tick_secs: (seed % 2 == 0).then_some(60 + seed % 600),
                regions: 1 + (seed as usize % 6),
                rate_scale: scalar.max(0.001),
                time_stretch: 0.25 + scalar,
                region_map: if seed % 5 == 0 {
                    let regions = 1 + (seed as usize % 6);
                    (0..regions).rev().collect()
                } else {
                    Vec::new()
                },
                max_services: (seed % 4 == 0).then_some(1 + vms),
                max_ticks: (seed % 7 == 0).then_some(1 + seed as usize % 500),
            });
        } else {
            spec.workload.trace = Some(TraceReplaySpec {
                path: format!("traces/{seed}.csv"),
                rate_scale: scalar.max(0.001),
                time_stretch: 0.25 + scalar,
                region_map: if seed % 2 == 0 {
                    vec![3, 2, 1, 0]
                } else {
                    Vec::new()
                },
            });
        }
    }
    if pms_per_dc % 2 == 0 && !experiment {
        // Exercise `[[topology.classes]]` (only kinds that honor the
        // table accept it, so keep it off experiment-bound specs):
        // both presets plus a custom class whose floats stress
        // shortest-repr emission.
        spec.topology.classes = vec![
            HostClassSpec {
                count: 1 + vms % 3,
                machine: MachineClass::Atom,
            },
            HostClassSpec {
                count: 1,
                machine: MachineClass::Xeon,
            },
            HostClassSpec {
                count: 1 + seed as usize % 2,
                machine: MachineClass::Custom {
                    cores: 1 + vms,
                    mem_mb: 512.0 + scalar * 32_768.0,
                    idle_watts: 5.0 + scalar * 100.0,
                    peak_watts: 105.0 + scalar * 300.0,
                },
            },
        ];
    }
    if seed % 4 == 1 && !experiment {
        // Exercise `[[workload.services]]` (experiment-bound specs
        // reject it): one partially-overridden entry plus a default
        // remainder so the counts sum to vms, with floats that stress
        // shortest-repr emission.
        let mut services = vec![ServiceSpecEntry {
            count: 1,
            image_size_mb: 512.0 + scalar * 16_000.0,
            base_mem_mb: 128.0 + scalar * 4096.0,
            // seed is odd inside this gate, so branch on mod 8 (1 vs 5)
            // to actually exercise both Some and None.
            mem_mb_per_inflight: (seed % 8 == 1).then_some(0.5 + scalar * 64.0),
            rt0_secs: 0.05 + scalar,
            alpha: 1.5 + scalar * 20.0,
            io_wait_factor: scalar,
            idle_cpu_pct: scalar * 5.0,
        }];
        if vms > 1 {
            services.push(ServiceSpecEntry {
                count: vms - 1,
                ..ServiceSpecEntry::default()
            });
        }
        spec.workload.services = services;
    }
    if faults {
        let pms = spec.topology.hosts_per_dc() * if intra { 1 } else { 4 };
        spec.faults.push(FaultSpec {
            pm: seed as usize % pms,
            at_min: hours % 300,
            repair_after_min: 1 + hours % 600,
        });
        spec.profile_changes.push(ProfileChangeSpec {
            vm: seed as usize % vms,
            at_min: hours % 200,
            base_mem_mb: 256.0 + scalar * 512.0,
            mem_mb_per_inflight: scalar * 4.0,
            io_wait_factor: scalar,
            idle_cpu_pct: scalar * 3.0,
        });
    }
    if !intra {
        spec.energy.price_blind = seed % 3 == 0;
        spec.energy.solar_dcs = vec![seed as usize % 4];
        spec.energy.solar_per_pm_w = scalar * 400.0;
        spec.energy.min_sky = scalar.clamp(0.0, 1.0);
        let eur = 0.01 + scalar;
        let step_at_hour = (seed % 2 == 0).then_some(hours % 48);
        spec.energy.tariffs.push(TariffSpec {
            dc: (seed as usize + 1) % 4,
            eur_per_kwh: eur,
            step_at_hour,
            // Without a step the after-step price is never emitted and
            // parses back as the flat price — keep the value canonical.
            step_eur_per_kwh: if step_at_hour.is_some() {
                0.02 + scalar * 2.0
            } else {
                eur
            },
        });
    }
    spec.billing.vm_eur_per_hour = 0.01 + scalar;
    spec.billing.sla_gamma = 0.5 + scalar * 2.0;
    spec.training.scales = vec![0.5, 0.5 + scalar];
    spec.training.hours_per_scale = 1 + hours % 8;
    if experiment {
        spec.experiment = Some(ExperimentSpec {
            kind: EXPERIMENTS[seed as usize % EXPERIMENTS.len()].into(),
            true_arm: seed % 2 == 0,
            load_scales: if seed % 3 == 0 {
                vec![0.5, scalar + 0.1]
            } else {
                Vec::new()
            },
            pms_levels: if seed % 5 == 0 {
                vec![1, 1 + vms]
            } else {
                Vec::new()
            },
            spreads: if seed % 7 == 0 {
                vec![1.0, 1.0 + scalar * 8.0]
            } else {
                Vec::new()
            },
            spike_factor: if seed % 2 == 0 {
                4.0
            } else {
                0.5 + scalar * 8.0
            },
        });
    }
    spec
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn emit_parse_is_identity(
        name in "[a-z0-9-]{1,16}",
        description in "[a-zA-Z0-9 .,#\"\\\\]{0,40}",
        seed in 0u64..1_000_000,
        intra in 0u8..2,
        pms_per_dc in 1usize..6,
        vms in 1usize..12,
        peak_rps in 1.0f64..500.0,
        load_scale in 0.0f64..4.0,
        policy_i in 0usize..32,
        oracle_i in 0usize..32,
        hours in 0u64..10_000,
        toggles in 0u8..16,
        scalar in 0.0f64..1.0,
    ) {
        let spec = assemble(
            name,
            description,
            seed,
            intra == 1,
            pms_per_dc,
            vms,
            peak_rps,
            load_scale,
            (
                policy_i,
                oracle_i,
                hours,
                toggles & 1 != 0,
                toggles & 2 != 0,
                toggles & 4 != 0,
                toggles & 8 != 0,
                scalar,
            ),
        );
        prop_assert!(spec.validate().is_ok(), "assembled specs are valid");
        let emitted = spec.emit();
        let parsed = ScenarioSpec::parse(&emitted)
            .unwrap_or_else(|e| panic!("reparse failed: {e}\n---\n{emitted}"));
        prop_assert_eq!(&parsed, &spec, "parse(emit(spec)) == spec");
        // Emission is a fixed point (canonical form).
        prop_assert_eq!(parsed.emit(), emitted);
    }

    #[test]
    fn float_fields_round_trip_bitwise(
        peak in 0.0001f64..1e9,
        scale in 0.0f64..1e6,
        gamma in 0.0001f64..100.0,
    ) {
        let mut spec = ScenarioSpec::default();
        // Exercise awkward shortest-repr floats (0.1-like, subnormal-ish
        // products, long mantissas).
        spec.workload.peak_rps = peak * 0.1;
        spec.workload.load_scale = scale * 1e-3;
        spec.billing.sla_gamma = gamma / 3.0;
        let parsed = ScenarioSpec::parse(&spec.emit()).expect("parse");
        prop_assert_eq!(
            parsed.workload.peak_rps.to_bits(),
            spec.workload.peak_rps.to_bits()
        );
        prop_assert_eq!(
            parsed.workload.load_scale.to_bits(),
            spec.workload.load_scale.to_bits()
        );
        prop_assert_eq!(parsed.billing.sla_gamma.to_bits(), spec.billing.sla_gamma.to_bits());
    }
}
