//! End-to-end acceptance for the trace-import + heterogeneous-fleet
//! path: the committed Azure- and Alibaba-format mini-fixtures must
//!
//! 1. import through the normalizers,
//! 2. round-trip through the native trace CSV **bit-identically** (the
//!    imported demand replays through `TraceSource` exactly),
//! 3. drive a full quick-mode run on a `[[topology.classes]]` fleet,
//!    deterministically.

use pamdc_scenario::runner::run_spec;
use pamdc_scenario::spec::{HostClassSpec, ImportSpec, MachineClass, ScenarioSpec};
use pamdc_workload::import::{import_path, ImportOptions, TraceFormat};
use pamdc_workload::source::DemandSource;
use pamdc_workload::trace::{DemandTrace, TraceSource};
use std::path::{Path, PathBuf};

/// Repo-root `fixtures/traces/`.
fn fixtures_dir() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("../../fixtures/traces")
}

fn fixture(format: TraceFormat) -> (PathBuf, &'static str) {
    match format {
        TraceFormat::Azure => (fixtures_dir().join("azure_mini.csv"), "azure"),
        TraceFormat::Alibaba => (fixtures_dir().join("alibaba_mini.csv"), "alibaba"),
    }
}

/// A multi-DC spec hosting the fixture's 4 services on a mixed fleet.
#[allow(clippy::field_reassign_with_default)] // builtin-registry style: document the deltas
fn fleet_spec(format_name: &str, path: &Path) -> ScenarioSpec {
    let mut spec = ScenarioSpec::default();
    spec.name = format!("{format_name}-e2e");
    spec.seed = 11;
    spec.topology.classes = vec![
        HostClassSpec {
            count: 1,
            machine: MachineClass::Atom,
        },
        HostClassSpec {
            count: 1,
            machine: MachineClass::Custom {
                cores: 2,
                mem_mb: 2048.0,
                idle_watts: 15.0,
                peak_watts: 22.0,
            },
        },
    ];
    spec.workload.vms = 4;
    spec.workload.import = Some(ImportSpec {
        path: path.to_string_lossy().into_owned(),
        format: format_name.into(),
        ..ImportSpec::default()
    });
    spec.run.hours = 2;
    spec
}

fn check_format(format: TraceFormat) {
    let (path, name) = fixture(format);

    // 1-2: import, then prove the CSV round-trip is bit-identical and
    // the replayer reproduces the imported flows verbatim.
    let trace = import_path(format, &path, &ImportOptions::default())
        .unwrap_or_else(|e| panic!("{name}: {e}"));
    assert_eq!(trace.service_count(), 4, "{name} fixture hosts 4 services");
    assert!(trace.tick_count() > 1);
    let reparsed = DemandTrace::parse_csv(&trace.to_csv()).expect("reparse");
    assert_eq!(trace, reparsed, "{name}: csv round-trip must be exact");
    assert_eq!(trace.to_csv(), reparsed.to_csv());
    let replay = TraceSource::new(reparsed);
    for tick in 0..trace.tick_count() {
        let t = pamdc_simcore::time::SimTime::ZERO + trace.tick * tick as u64;
        for s in 0..trace.service_count() {
            assert_eq!(
                DemandSource::sample(&replay, s, t),
                trace.flows[tick][s],
                "{name}: tick {tick} service {s} must replay verbatim"
            );
        }
    }

    // 3: the imported trace drives a quick run on the mixed fleet,
    // bit-for-bit deterministically.
    let spec = fleet_spec(name, &path);
    let a = run_spec(&spec, Path::new("."), true).unwrap_or_else(|e| panic!("{name}: {e}"));
    let b = run_spec(&spec, Path::new("."), true).expect(name);
    assert_eq!(a.text, b.text, "{name}: report must be deterministic");
    for ((ka, va), (kb, vb)) in a.metrics.iter().zip(&b.metrics) {
        assert_eq!(ka, kb);
        assert_eq!(va.to_bits(), vb.to_bits(), "{name}: metric {ka}");
    }
    let sla = a.metrics.iter().find(|(k, _)| k == "mean_sla").unwrap().1;
    assert!(sla > 0.0 && sla <= 1.0, "{name}: mean_sla {sla}");
}

#[test]
fn azure_fixture_imports_runs_and_replays_bit_identically() {
    check_format(TraceFormat::Azure);
}

#[test]
fn alibaba_fixture_imports_runs_and_replays_bit_identically() {
    check_format(TraceFormat::Alibaba);
}

#[test]
fn example_spec_file_runs() {
    // The worked example shipped under examples/specs must stay green:
    // paths resolve relative to the spec file's directory, exactly as
    // `pamdc run examples/specs/azure_fleet.toml` resolves them.
    let path = Path::new(env!("CARGO_MANIFEST_DIR")).join("../../examples/specs/azure_fleet.toml");
    let text = std::fs::read_to_string(&path).expect("example spec");
    let spec = ScenarioSpec::parse(&text).expect("parse");
    assert_eq!(spec.topology.classes.len(), 2);
    let report = run_spec(&spec, path.parent().unwrap(), true).expect("run");
    assert!(report.metrics.iter().any(|(k, _)| k == "mean_sla"));
}
