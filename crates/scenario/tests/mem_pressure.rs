//! The `mem-pressure` builtin's headline claim, asserted end-to-end: a
//! memory-bound scenario places fewer VMs per host (more active hosts)
//! than its CPU-bound twin — the same fleet, demand, policy and seed
//! with the `[[workload.services]]` sizing removed, so every VM shrinks
//! back to the paper's uniform 256 MB web service and RAM stops binding.

use pamdc_scenario::registry;
use pamdc_scenario::runner::run_spec;
use std::path::Path;

fn metric(report: &pamdc_scenario::runner::SpecReport, key: &str) -> f64 {
    report
        .metrics
        .iter()
        .find(|(k, _)| k == key)
        .unwrap_or_else(|| panic!("metric {key} missing"))
        .1
}

#[test]
fn mem_heavy_example_spec_parses_and_runs() {
    // The worked example under examples/specs must stay green, and it
    // must describe the same world as the mem-pressure builtin (modulo
    // its name/description).
    let path = Path::new(env!("CARGO_MANIFEST_DIR")).join("../../examples/specs/mem_heavy.toml");
    let text = std::fs::read_to_string(&path).expect("example spec");
    let spec = pamdc_scenario::spec::ScenarioSpec::parse(&text).expect("parse");
    let mut builtin = registry::find("mem-pressure").expect("builtin").spec;
    builtin.name = spec.name.clone();
    builtin.description = spec.description.clone();
    assert_eq!(spec, builtin, "example and builtin describe one world");
    let report = run_spec(&spec, path.parent().unwrap(), true).expect("run");
    assert!(report.metrics.iter().any(|(k, _)| k == "avg_active_pms"));
}

#[test]
fn memory_bound_scenario_places_fewer_vms_per_host_than_cpu_bound_twin() {
    let spec = registry::find("mem-pressure").expect("builtin").spec;
    let mut twin = spec.clone();
    twin.workload.services.clear();
    twin.name = "mem-pressure-cpu-twin".into();

    let mem = run_spec(&spec, Path::new("."), true).expect("mem-pressure");
    let cpu = run_spec(&twin, Path::new("."), true).expect("twin");

    let hosts = 8.0; // 4 DCs x (1 Atom + 1 Xeon)
    let mem_active = metric(&mem, "avg_active_pms");
    let cpu_active = metric(&cpu, "avg_active_pms");
    let vms = 8.0;
    assert!(
        vms / mem_active < vms / cpu_active - 0.5,
        "memory-bound packing must average clearly fewer VMs per host: \
         {:.2} vs the CPU twin's {:.2}",
        vms / mem_active,
        vms / cpu_active
    );
    assert!(
        mem_active <= hosts && cpu_active >= 1.0,
        "sanity: {mem_active} active of {hosts}, twin {cpu_active}"
    );

    // The memory-bound run must still serve its SLA — spreading, not
    // collapsing, is the correct response to RAM pressure.
    assert!(
        metric(&mem, "mean_sla") > 0.85,
        "sla {}",
        metric(&mem, "mean_sla")
    );
}
