//! Golden-report tests: every deterministic registry spec, run in quick
//! mode at its fixed seed, must reproduce the committed snapshot of its
//! rendered text and metrics **bit-for-bit** (metric values are compared
//! via `f64::to_bits`).
//!
//! The snapshots under `tests/golden/` were captured from the
//! pre-`Experiment`-pipeline drivers, so these tests prove the registry
//! refactor preserved every report exactly. Regenerate deliberately with
//!
//! ```text
//! PAMDC_UPDATE_GOLDEN=1 cargo test -p pamdc-scenario --test golden_reports
//! ```
//!
//! Timing-based experiments (`scaling`, `solver-scaling`) embed
//! wall-clock microseconds in their reports and are excluded via the
//! kind registry's `deterministic` flag.

use pamdc_scenario::registry;
use pamdc_scenario::runner::{run_spec, SpecReport};
use std::path::{Path, PathBuf};

fn golden_dir() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/golden")
}

/// Serializes a report: a header, one `key<TAB>bits<TAB>value` line per
/// metric, then the raw text.
fn encode(report: &SpecReport) -> String {
    let mut out = String::new();
    out.push_str("== pamdc golden v1 ==\n");
    out.push_str(&format!("name\t{}\n", report.name));
    out.push_str(&format!("metrics\t{}\n", report.metrics.len()));
    for (k, v) in &report.metrics {
        out.push_str(&format!("{k}\t{:016x}\t{v}\n", v.to_bits()));
    }
    out.push_str("-- text --\n");
    out.push_str(&report.text);
    out
}

fn check(name: &str) {
    let spec = registry::find(name).expect(name).spec;
    let report = run_spec(&spec, Path::new("."), true).expect(name);
    let encoded = encode(&report);
    let path = golden_dir().join(format!("{name}.golden"));
    if std::env::var("PAMDC_UPDATE_GOLDEN").is_ok_and(|v| !v.is_empty() && v != "0") {
        std::fs::create_dir_all(golden_dir()).expect("golden dir");
        std::fs::write(&path, &encoded).expect("write golden");
        eprintln!("updated {}", path.display());
        return;
    }
    let want = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "missing golden {} ({e}); regenerate with PAMDC_UPDATE_GOLDEN=1",
            path.display()
        )
    });
    assert!(
        encoded == want,
        "{name}: quick-mode report diverged from the golden snapshot.\n\
         --- got ---\n{encoded}\n--- want ---\n{want}"
    );
}

macro_rules! golden {
    ($($test:ident => $name:expr;)*) => {
        $(
            #[test]
            fn $test() {
                check($name);
            }
        )*
        /// The snapshotted names — emitted by the macro so the
        /// completeness guard below can never drift out of sync with
        /// the test list.
        const SNAPSHOTTED: &[&str] = &[$($name),*];
    };
}

golden! {
    // Captured from the pre-pipeline drivers: these prove the registry
    // refactor preserved every report bit-for-bit.
    golden_fig4 => "fig4";
    golden_fig5 => "fig5";
    golden_fig6 => "fig6";
    golden_fig7_table3 => "fig7-table3";
    golden_fig8 => "fig8";
    golden_table1 => "table1";
    golden_table2 => "table2";
    golden_green => "green";
    golden_deloc => "deloc";
    golden_resilience => "resilience";
    // Kinds first registered with the pipeline: these pin the reports
    // against future regressions.
    golden_ablations => "ablations";
    golden_heterogeneity => "heterogeneity";
    golden_online_drift => "online-drift";
    golden_price_adaptation => "price-adaptation";
    // First registered with the trace-import/host-classes PR.
    golden_hetero_fleet => "hetero-fleet";
    // First registered with the memory-as-a-resource PR. (That PR also
    // deliberately regenerated fig4: its BF-OB arm books 2x observed
    // memory, so the overflow path's new RAM-feasibility tier
    // legitimately redirects some of its placements.)
    golden_mem_pressure => "mem-pressure";
    // First registered with the lint/serve-ladder PR: pins the
    // +NEAR-EQUIV(top3) policy label and the near-shortlist counters.
    golden_near_equiv => "near-equiv";
}

/// Every deterministic registry entry must have a golden test above —
/// adding a spec without snapshotting it fails here, not in review.
/// (Wall-clock timing kinds are excluded via the kind registry's
/// `deterministic` flag.)
#[test]
fn every_deterministic_builtin_is_snapshotted() {
    let covered = SNAPSHOTTED;
    for b in registry::builtins() {
        let deterministic = match &b.spec.experiment {
            Some(exp) => {
                pamdc_scenario::kinds::find(&exp.kind)
                    .unwrap_or_else(|| panic!("{}: unregistered kind", b.name))
                    .deterministic
            }
            None => true, // the generic path derives everything from the seed
        };
        if deterministic && !covered.contains(&b.name) {
            panic!("registry spec {:?} has no golden test", b.name);
        }
        if !deterministic && covered.contains(&b.name) {
            panic!(
                "registry spec {:?} is timing-based; drop its golden",
                b.name
            );
        }
    }
}
