//! The `near-equiv` builtin's headline claims, asserted end-to-end:
//! `[policy] near_equivalence_top_k` actually routes placement through
//! the approximate candidate index (the near-shortlist counters move),
//! and every report produced under it is loudly labeled with the
//! `+NEAR-EQUIV(topK)` marker — because the approximation relaxes the
//! bit-identity guarantee, silence would be a lie of omission.

use pamdc_scenario::registry;
use pamdc_scenario::runner::run_spec;
use std::path::Path;

fn metric(report: &pamdc_scenario::runner::SpecReport, key: &str) -> f64 {
    report
        .metrics
        .iter()
        .find(|(k, _)| k == key)
        .unwrap_or_else(|| panic!("metric {key} missing"))
        .1
}

#[test]
fn near_equivalence_takes_the_approximate_index_path_and_says_so() {
    let spec = registry::find("near-equiv").expect("builtin").spec;
    assert_eq!(spec.policy.near_equivalence_top_k, Some(3));

    let report = run_spec(&spec, Path::new("."), true).expect("near-equiv");
    assert!(
        report.text.contains("+NEAR-EQUIV(top3)"),
        "the relaxed-guarantee marker must appear in the report:\n{}",
        report.text
    );
    assert!(
        metric(&report, "obs.sched.index.near_shortlist_hits") > 0.0,
        "the near index must actually be consulted"
    );
    assert!(
        metric(&report, "obs.sched.bestfit.dispatch_index") > 0.0,
        "a 16-host fleet over index_min_hosts=8 must dispatch via the index"
    );
}

#[test]
fn exact_twin_never_consults_the_near_index_and_stays_unlabeled() {
    // Same world with the approximation switched off: the exact
    // candidate index still dispatches (the fleet is over the
    // threshold), but no coarse group is ever scored and no report
    // carries the marker.
    let mut twin = registry::find("near-equiv").expect("builtin").spec;
    twin.policy.near_equivalence_top_k = None;
    twin.name = "near-equiv-exact-twin".into();

    let report = run_spec(&twin, Path::new("."), true).expect("twin");
    assert!(!report.text.contains("+NEAR-EQUIV"));
    assert_eq!(metric(&report, "obs.sched.index.near_shortlist_hits"), 0.0);
    assert!(metric(&report, "obs.sched.bestfit.dispatch_index") > 0.0);
}
