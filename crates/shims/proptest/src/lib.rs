//! Offline stand-in for the `proptest` crate.
//!
//! Implements the subset of proptest the workspace's property suites
//! use: the [`proptest!`] macro (with optional `#![proptest_config]`
//! header), range/tuple/`prop_map`/`collection::vec`/string-pattern
//! strategies, and `prop_assert!`/`prop_assert_eq!`.
//!
//! Differences from real proptest, by design:
//!
//! * **Deterministic cases** — inputs derive from a hash of the test's
//!   module path and name, so a failure reproduces bit-identically on
//!   every run and machine (no persistence files needed).
//! * **No shrinking** — a failing case reports its inputs via the
//!   panic message of the assertion that tripped; with deterministic
//!   generation that is enough to debug.

use rand::rngs::SmallRng;
use rand::{RngExt, SeedableRng};

/// Test-runner configuration (the `cases` knob is the one that matters).
pub mod test_runner {
    /// How many random cases each property runs.
    #[derive(Clone, Debug)]
    pub struct ProptestConfig {
        /// Number of cases per property (default 256, like proptest).
        pub cases: u32,
        /// Accepted for source compatibility; unused (no shrinking).
        pub max_shrink_iters: u32,
    }

    impl ProptestConfig {
        /// Config running `cases` cases.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig {
                cases,
                ..Default::default()
            }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig {
                cases: 256,
                max_shrink_iters: 0,
            }
        }
    }
}

/// The RNG handed to strategies. Wraps the rand shim's xoshiro256++.
#[derive(Clone, Debug)]
pub struct TestRng {
    rng: SmallRng,
}

impl TestRng {
    /// Deterministic stream for a given test identity and case index.
    pub fn for_case(test_ident: &str, case: u64) -> Self {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in test_ident.as_bytes() {
            h ^= u64::from(*b);
            h = h.wrapping_mul(0x100_0000_01b3);
        }
        TestRng {
            rng: SmallRng::seed_from_u64(h ^ case.wrapping_mul(0x9E37_79B9_7F4A_7C15)),
        }
    }

    /// Uniform `f64` in `[0, 1)`.
    #[inline]
    pub fn unit_f64(&mut self) -> f64 {
        self.rng.random::<f64>()
    }

    /// Uniform integer in `[0, n)`; `n == 0` returns 0.
    #[inline]
    pub fn below(&mut self, n: u64) -> u64 {
        if n == 0 {
            0
        } else {
            self.rng.random_range(0..n)
        }
    }
}

/// Value-generation strategies.
pub mod strategy {
    use super::TestRng;

    /// A recipe for producing random values of `Self::Value`.
    pub trait Strategy {
        /// The produced type.
        type Value;

        /// Draws one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { inner: self, f }
        }
    }

    /// The [`Strategy::prop_map`] combinator.
    #[derive(Clone, Debug)]
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
        type Value = O;
        fn generate(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.generate(rng))
        }
    }

    impl Strategy for core::ops::Range<f64> {
        type Value = f64;
        fn generate(&self, rng: &mut TestRng) -> f64 {
            assert!(self.start < self.end, "empty f64 strategy range");
            self.start + (self.end - self.start) * rng.unit_f64()
        }
    }

    macro_rules! impl_int_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for core::ops::Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty integer strategy range");
                    let span = self.end.wrapping_sub(self.start) as u64;
                    // span == 0 encodes the full 2^64 width (e.g. 0..u64::MAX
                    // wraps only when start == end, excluded above).
                    self.start.wrapping_add(rng.below_or_full(span) as $t)
                }
            }
            impl Strategy for core::ops::RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty integer strategy range");
                    let span = hi.wrapping_sub(lo) as u64;
                    lo.wrapping_add(rng.below_or_full(span.wrapping_add(1)) as $t)
                }
            }
        )*};
    }

    impl TestRng {
        /// `below`, but `0` means the full 64-bit span.
        #[inline]
        fn below_or_full(&mut self, span: u64) -> u64 {
            if span == 0 {
                // Full-width draw.
                (self.below(u64::MAX) << 1) | self.below(2)
            } else {
                self.below(span)
            }
        }
    }

    impl_int_strategy!(usize, u64, u32, u16, u8, i64, i32);

    macro_rules! impl_tuple_strategy {
        ($($name:ident),+) => {
            #[allow(non_snake_case)]
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    let ($($name,)+) = self;
                    ($($name.generate(rng),)+)
                }
            }
        };
    }

    impl_tuple_strategy!(A);
    impl_tuple_strategy!(A, B);
    impl_tuple_strategy!(A, B, C);
    impl_tuple_strategy!(A, B, C, D);
    impl_tuple_strategy!(A, B, C, D, E);
    impl_tuple_strategy!(A, B, C, D, E, F);
    impl_tuple_strategy!(A, B, C, D, E, F, G);
    impl_tuple_strategy!(A, B, C, D, E, F, G, H);

    /// String-pattern strategy: supports the `[class]{m,n}` shape (e.g.
    /// `"[a-z]{1,12}"`); any other pattern generates itself literally.
    impl Strategy for &'static str {
        type Value = String;
        fn generate(&self, rng: &mut TestRng) -> String {
            generate_from_pattern(self, rng)
        }
    }

    fn generate_from_pattern(pattern: &str, rng: &mut TestRng) -> String {
        let bytes = pattern.as_bytes();
        if bytes.first() != Some(&b'[') {
            return pattern.to_string();
        }
        let Some(close) = pattern.find(']') else {
            return pattern.to_string();
        };
        // Expand the character class.
        let mut alphabet: Vec<char> = Vec::new();
        let class: Vec<char> = pattern[1..close].chars().collect();
        let mut i = 0;
        while i < class.len() {
            if i + 2 < class.len() && class[i + 1] == '-' {
                let (lo, hi) = (class[i] as u32, class[i + 2] as u32);
                for c in lo..=hi {
                    if let Some(c) = char::from_u32(c) {
                        alphabet.push(c);
                    }
                }
                i += 3;
            } else {
                alphabet.push(class[i]);
                i += 1;
            }
        }
        if alphabet.is_empty() {
            return String::new();
        }
        // Parse the repetition suffix `{m,n}` (default: exactly one).
        let rest = &pattern[close + 1..];
        let (lo, hi) = if rest.starts_with('{') && rest.ends_with('}') {
            let body = &rest[1..rest.len() - 1];
            match body.split_once(',') {
                Some((a, b)) => (
                    a.trim().parse::<u64>().unwrap_or(1),
                    b.trim().parse::<u64>().unwrap_or(1),
                ),
                None => {
                    let n = body.trim().parse::<u64>().unwrap_or(1);
                    (n, n)
                }
            }
        } else {
            (1, 1)
        };
        let len = lo + rng.below(hi - lo + 1);
        (0..len)
            .map(|_| alphabet[rng.below(alphabet.len() as u64) as usize])
            .collect()
    }
}

/// Collection strategies.
pub mod collection {
    use super::strategy::Strategy;
    use super::TestRng;

    /// Strategy for `Vec<S::Value>` with a length drawn from `len`.
    #[derive(Clone, Debug)]
    pub struct VecStrategy<S> {
        element: S,
        min_len: usize,
        max_len_exclusive: usize,
    }

    /// `proptest::collection::vec(element, 1..50)`.
    pub fn vec<S: Strategy>(element: S, len: core::ops::Range<usize>) -> VecStrategy<S> {
        assert!(len.start < len.end, "empty vec-length range");
        VecStrategy {
            element,
            min_len: len.start,
            max_len_exclusive: len.end,
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.max_len_exclusive - self.min_len) as u64;
            let len = self.min_len + rng.below(span) as usize;
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// `use proptest::prelude::*;`
pub mod prelude {
    pub use crate::collection;
    pub use crate::strategy::Strategy;
    pub use crate::test_runner::ProptestConfig;
    pub use crate::TestRng;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
}

/// Property assertion (plain `assert!` under the hood — no shrinking).
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Property equality assertion.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// Property inequality assertion.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

/// The `proptest! { ... }` block: runs each contained property over
/// `cases` deterministically generated inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl!(@cfg ($cfg); $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl!(
            @cfg ($crate::test_runner::ProptestConfig::default()); $($rest)*
        );
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (@cfg ($cfg:expr); $(
        $(#[$meta:meta])*
        fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let config: $crate::test_runner::ProptestConfig = $cfg;
            let ident = concat!(module_path!(), "::", stringify!($name));
            for __case in 0..u64::from(config.cases) {
                let mut __rng = $crate::TestRng::for_case(ident, __case);
                $(let $pat = $crate::strategy::Strategy::generate(&($strat), &mut __rng);)+
                $body
            }
        }
    )*};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    fn arb_pair() -> impl Strategy<Value = (f64, f64)> {
        (0.0f64..10.0, 1.0f64..2.0)
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_respect_bounds(x in 0.0f64..5.0, n in 1usize..10, b in 0u64..u64::MAX) {
            prop_assert!((0.0..5.0).contains(&x));
            prop_assert!((1..10).contains(&n));
            let _ = b;
        }

        #[test]
        fn tuples_and_maps((a, b) in arb_pair(), v in collection::vec(0u32..100, 1..20)) {
            prop_assert!(a >= 0.0 && b >= 1.0);
            prop_assert!(!v.is_empty() && v.len() < 20);
            prop_assert!(v.iter().all(|&x| x < 100));
        }

        #[test]
        fn string_patterns(s in "[a-z]{1,12}") {
            prop_assert!(!s.is_empty() && s.len() <= 12);
            prop_assert!(s.chars().all(|c| c.is_ascii_lowercase()));
        }
    }

    #[test]
    fn cases_are_deterministic() {
        let mut a = TestRng::for_case("x", 1);
        let mut b = TestRng::for_case("x", 1);
        assert_eq!(a.unit_f64(), b.unit_f64());
        let mut c = TestRng::for_case("x", 2);
        assert_ne!(a.unit_f64(), c.unit_f64());
    }
}
