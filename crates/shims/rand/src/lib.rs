//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no registry access, so this tiny crate
//! provides exactly the surface the workspace consumes: a fast,
//! deterministic [`rngs::SmallRng`] (xoshiro256++), the
//! [`SeedableRng::seed_from_u64`] constructor and the [`RngExt`] helpers
//! `random::<T>()` / `random_range(..)`.
//!
//! Statistical quality: xoshiro256++ passes BigCrush; the simulator only
//! needs uniform draws (all higher-order distributions are built in
//! `pamdc-simcore::rng` on top of `random::<f64>()`).

/// A source of random 64-bit words.
pub trait RngCore {
    /// Next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;
}

/// Construction from a 64-bit seed.
pub trait SeedableRng: Sized {
    /// Builds the generator from a 64-bit seed (expanded internally so
    /// that nearby seeds yield uncorrelated states).
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types that can be drawn uniformly from the generator's raw output.
pub trait StandardSample: Sized {
    /// Draws one value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl StandardSample for f64 {
    #[inline]
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl StandardSample for f32 {
    #[inline]
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> f32 {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

impl StandardSample for u64 {
    #[inline]
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> u64 {
        rng.next_u64()
    }
}

impl StandardSample for u32 {
    #[inline]
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> u32 {
        (rng.next_u64() >> 32) as u32
    }
}

impl StandardSample for bool {
    #[inline]
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

/// Uniform draw over an integer span of width `span` (0 means the full
/// 2^64 range). Widening-multiply mapping — bias is < 2^-64 per draw,
/// far below anything the simulator can observe.
#[inline]
fn below<R: RngCore + ?Sized>(rng: &mut R, span: u64) -> u64 {
    if span == 0 {
        return rng.next_u64();
    }
    ((rng.next_u64() as u128 * span as u128) >> 64) as u64
}

/// Ranges a generator can sample from.
pub trait SampleRange {
    /// The element type produced.
    type Output;
    /// Draws uniformly from the range. Panics on an empty range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> Self::Output;
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange for core::ops::Range<$t> {
            type Output = $t;
            #[inline]
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end - self.start) as u64;
                self.start + below(rng, span) as $t
            }
        }
        impl SampleRange for core::ops::RangeInclusive<$t> {
            type Output = $t;
            #[inline]
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi - lo) as u64; // hi - lo + 1, 0 == full span
                lo + below(rng, span.wrapping_add(1)) as $t
            }
        }
    )*};
}

impl_int_range!(usize, u64, u32, u16, u8);

impl SampleRange for core::ops::Range<f64> {
    type Output = f64;
    #[inline]
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        self.start + (self.end - self.start) * f64::sample(rng)
    }
}

/// Convenience draws available on every [`RngCore`].
pub trait RngExt: RngCore {
    /// Uniform draw of `T` (`f64` in `[0,1)`, full-range integers).
    #[inline]
    fn random<T: StandardSample>(&mut self) -> T {
        T::sample(self)
    }

    /// Uniform draw from a range (`0..n`, `0..=n`, `lo..hi`).
    #[inline]
    fn random_range<S: SampleRange>(&mut self, range: S) -> S::Output {
        range.sample_from(self)
    }
}

impl<R: RngCore + ?Sized> RngExt for R {}

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// xoshiro256++ — the same family the real `rand`'s `SmallRng` uses
    /// on 64-bit targets. Fast, small state, excellent equidistribution.
    #[derive(Clone, Debug, PartialEq, Eq)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    #[inline]
    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            let s = [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ];
            SmallRng { s }
        }
    }

    impl RngCore for SmallRng {
        #[inline]
        fn next_u64(&mut self) -> u64 {
            let out = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            out
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::{RngExt, SeedableRng};

    #[test]
    fn deterministic_given_seed() {
        let mut a = SmallRng::seed_from_u64(7);
        let mut b = SmallRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.random::<u64>(), b.random::<u64>());
        }
    }

    #[test]
    fn unit_interval_and_ranges() {
        let mut rng = SmallRng::seed_from_u64(3);
        for _ in 0..10_000 {
            let x: f64 = rng.random();
            assert!((0.0..1.0).contains(&x));
            let i = rng.random_range(0..7usize);
            assert!(i < 7);
            let j = rng.random_range(0..=3usize);
            assert!(j <= 3);
        }
    }

    #[test]
    fn mean_is_centered() {
        let mut rng = SmallRng::seed_from_u64(11);
        let n = 100_000;
        let mean: f64 = (0..n).map(|_| rng.random::<f64>()).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }
}
