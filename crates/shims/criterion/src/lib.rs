//! Offline stand-in for the `criterion` crate.
//!
//! Provides the API surface the workspace's benches use —
//! [`Criterion::bench_function`], [`Criterion::benchmark_group`],
//! [`BenchmarkGroup::bench_with_input`], [`BenchmarkId`],
//! [`criterion_group!`]/[`criterion_main!`] — backed by a small but real
//! measuring harness: per-benchmark calibration, N timed samples, and a
//! `median [min .. max]` report line.
//!
//! Environment knobs:
//!
//! * `PAMDC_BENCH_QUICK=1` — CI mode: ~40 ms budget per benchmark
//!   instead of ~1.5 s, so a full bench binary finishes in seconds while
//!   still catching order-of-magnitude regressions.
//! * `PAMDC_BENCH_JSON=path` — append one JSON line per benchmark
//!   (`{"id", "median_ns", "mean_ns", "min_ns", "max_ns", "samples"}`),
//!   used to record perf baselines such as `BENCH_solver_scaling.json`.

use std::fmt;
use std::fs::OpenOptions;
use std::io::Write as _;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Identifier for one benchmark within a group: `name/parameter`.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// `BenchmarkId::new("bestfit", "10x40")` → `bestfit/10x40`.
    pub fn new(function_name: impl fmt::Display, parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            id: format!("{function_name}/{parameter}"),
        }
    }

    /// Id from a bare parameter.
    pub fn from_parameter(parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId { id: s.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId { id: s }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.id)
    }
}

/// Passed to the bench closure; [`Bencher::iter`] runs and times the
/// workload.
pub struct Bencher {
    /// Iterations the closure must run this call.
    iters: u64,
    /// Elapsed wall time of the last [`Bencher::iter`] call.
    elapsed: Duration,
}

impl Bencher {
    /// Runs `f` `iters` times, timing the whole batch.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(f());
        }
        self.elapsed = start.elapsed();
    }
}

#[derive(Clone, Debug)]
struct Settings {
    /// Total measurement budget per benchmark.
    budget: Duration,
    /// Number of timed samples to aim for.
    samples: usize,
    /// JSON-lines output path, if recording.
    json_path: Option<String>,
}

impl Settings {
    fn from_env() -> Self {
        let quick = std::env::var("PAMDC_BENCH_QUICK").is_ok_and(|v| v != "0" && !v.is_empty());
        Settings {
            budget: if quick {
                Duration::from_millis(40)
            } else {
                Duration::from_millis(1500)
            },
            samples: if quick { 3 } else { 10 },
            json_path: std::env::var("PAMDC_BENCH_JSON")
                .ok()
                .filter(|p| !p.is_empty()),
        }
    }
}

fn fmt_ns(ns: f64) -> String {
    if ns < 1e3 {
        format!("{ns:.1} ns")
    } else if ns < 1e6 {
        format!("{:.2} µs", ns / 1e3)
    } else if ns < 1e9 {
        format!("{:.2} ms", ns / 1e6)
    } else {
        format!("{:.3} s", ns / 1e9)
    }
}

fn run_benchmark(settings: &Settings, id: &str, mut routine: impl FnMut(&mut Bencher)) {
    // Calibration pass: one iteration, also serves as warm-up.
    let mut b = Bencher {
        iters: 1,
        elapsed: Duration::ZERO,
    };
    routine(&mut b);
    let per_iter = b.elapsed.max(Duration::from_nanos(1));

    // Choose per-sample iteration counts so `samples` samples fit the
    // budget; long-running workloads degrade to one iteration per sample
    // (and fewer samples once a single run exceeds the whole budget).
    let samples = settings.samples.max(2);
    let per_sample_budget = settings.budget / samples as u32;
    let iters = (per_sample_budget.as_secs_f64() / per_iter.as_secs_f64())
        .floor()
        .max(1.0) as u64;
    let samples = if per_iter > settings.budget {
        2
    } else {
        samples
    };

    let mut sample_ns: Vec<f64> = Vec::with_capacity(samples);
    for _ in 0..samples {
        b.iters = iters;
        routine(&mut b);
        sample_ns.push(b.elapsed.as_nanos() as f64 / iters as f64);
    }
    sample_ns.sort_by(|a, b| a.partial_cmp(b).expect("finite sample times"));
    let median = sample_ns[sample_ns.len() / 2];
    let mean = sample_ns.iter().sum::<f64>() / sample_ns.len() as f64;
    let (min, max) = (sample_ns[0], sample_ns[sample_ns.len() - 1]);

    println!(
        "{id:<48} time: {:>10} [{} .. {}]  ({} samples × {iters} iters)",
        fmt_ns(median),
        fmt_ns(min),
        fmt_ns(max),
        sample_ns.len(),
    );

    if let Some(path) = &settings.json_path {
        let line = format!(
            "{{\"id\":\"{id}\",\"median_ns\":{median:.1},\"mean_ns\":{mean:.1},\"min_ns\":{min:.1},\"max_ns\":{max:.1},\"samples\":{}}}\n",
            sample_ns.len(),
        );
        if let Ok(mut f) = OpenOptions::new().create(true).append(true).open(path) {
            let _ = f.write_all(line.as_bytes());
        }
    }
}

/// The benchmark manager a `criterion_group!` target receives.
pub struct Criterion {
    settings: Settings,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            settings: Settings::from_env(),
        }
    }
}

impl Criterion {
    /// Runs one standalone benchmark.
    pub fn bench_function(
        &mut self,
        id: impl Into<BenchmarkId>,
        routine: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        run_benchmark(&self.settings, &id.into().id, routine);
        self
    }

    /// Opens a named group (`group/benchmark` ids).
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
        }
    }
}

/// A group of related benchmarks sharing an id prefix.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Accepted for source compatibility; the shim sizes samples from
    /// its time budget instead.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Accepted for source compatibility; unused.
    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Runs one benchmark within the group.
    pub fn bench_function(
        &mut self,
        id: impl Into<BenchmarkId>,
        routine: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        let full = format!("{}/{}", self.name, id.into().id);
        run_benchmark(&self.criterion.settings, &full, routine);
        self
    }

    /// Runs one parameterized benchmark within the group.
    pub fn bench_with_input<I: ?Sized>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut routine: impl FnMut(&mut Bencher, &I),
    ) -> &mut Self {
        let full = format!("{}/{}", self.name, id.into().id);
        run_benchmark(&self.criterion.settings, &full, |b| routine(b, input));
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

/// Declares a group function that runs the listed bench targets.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares the bench binary's `main`, running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn harness_measures_and_reports() {
        std::env::set_var("PAMDC_BENCH_QUICK", "1");
        let mut c = Criterion::default();
        c.bench_function("smoke/add", |b| {
            b.iter(|| black_box(2u64) + black_box(3u64))
        });
        let mut g = c.benchmark_group("grp");
        g.sample_size(10);
        g.bench_with_input(BenchmarkId::new("sq", 7), &7u64, |b, &x| b.iter(|| x * x));
        g.finish();
    }
}
