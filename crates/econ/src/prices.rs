//! The paper's Table II prices and the EC2-style VM rate.

use pamdc_infra::network::City;

/// Customer price per VM-hour at full SLA (the paper: "0.17 euro per
/// VMh", modelled on Amazon EC2 of the era).
pub const PAPER_VM_EUR_PER_HOUR: f64 = 0.17;

/// One location's electricity tariff.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct EnergyPrice {
    /// The city this tariff applies to.
    pub city: City,
    /// €/kWh (the paper's Table II column, which prints "Euro/Wh" but is
    /// dimensionally €/kWh — 0.13 €/Wh would be 130 €/kWh).
    pub eur_per_kwh: f64,
}

/// The paper's Table II energy prices for the four DCs.
pub fn paper_prices() -> [EnergyPrice; 4] {
    [
        EnergyPrice {
            city: City::Brisbane,
            eur_per_kwh: 0.1314,
        },
        EnergyPrice {
            city: City::Bangalore,
            eur_per_kwh: 0.1218,
        },
        EnergyPrice {
            city: City::Barcelona,
            eur_per_kwh: 0.1513,
        },
        EnergyPrice {
            city: City::Boston,
            eur_per_kwh: 0.1120,
        },
    ]
}

/// Tariff for one city.
pub fn paper_energy_price(city: City) -> f64 {
    paper_prices()
        .iter()
        .find(|p| p.city == city)
        .map(|p| p.eur_per_kwh)
        .expect("all four cities are priced")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table2_values() {
        assert_eq!(paper_energy_price(City::Brisbane), 0.1314);
        assert_eq!(paper_energy_price(City::Bangalore), 0.1218);
        assert_eq!(paper_energy_price(City::Barcelona), 0.1513);
        assert_eq!(paper_energy_price(City::Boston), 0.1120);
    }

    #[test]
    fn boston_is_cheapest_barcelona_dearest() {
        let prices = paper_prices();
        let min = prices
            .iter()
            .min_by(|a, b| a.eur_per_kwh.total_cmp(&b.eur_per_kwh))
            .unwrap();
        let max = prices
            .iter()
            .max_by(|a, b| a.eur_per_kwh.total_cmp(&b.eur_per_kwh))
            .unwrap();
        assert_eq!(min.city, City::Boston);
        assert_eq!(max.city, City::Barcelona);
    }
}
