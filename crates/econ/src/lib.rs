//! # pamdc-econ — prices, revenue and billing
//!
//! The business side of the paper's model: customers rent VMs "similar to
//! Amazon EC2" at 0.17 €/VM-hour scaled by SLA fulfillment; the provider
//! pays location-dependent electricity (Table II) and absorbs migration
//! penalties (a migrating VM earns nothing — its SLA is 0 while frozen).

pub mod billing;
pub mod prices;

/// Common imports.
pub mod prelude {
    pub use crate::billing::{BillingPolicy, ProfitLedger, ProfitSnapshot};
    pub use crate::prices::{paper_energy_price, paper_prices, EnergyPrice, PAPER_VM_EUR_PER_HOUR};
}
