//! Revenue, penalties and the profit ledger — the paper's objective
//! function made bankable:
//!
//! ```text
//! Profit = Σ_vm f_revenue(SLA)  −  Σ_vm f_penalty(migrations)  −  Σ_pm f_energycost(Power)
//! ```
//!
//! The ledger also carries a network-cost account (per-GB inter-DC
//! transfer pricing), which the paper defers to future work ("the
//! inclusion of more operational costs like networking costs and
//! bandwidth management") and which defaults to zero so the paper's
//! original three-term objective is reproduced exactly.

use pamdc_simcore::time::{SimDuration, SimTime};

/// The provider's pricing policy.
#[derive(Clone, Debug)]
pub struct BillingPolicy {
    /// Revenue per VM-hour at SLA = 1 (€).
    pub vm_eur_per_hour: f64,
    /// Revenue scaling with SLA fulfillment: `revenue = rate · sla^gamma`.
    /// γ = 1 is linear (the paper's implicit choice).
    pub sla_gamma: f64,
    /// Extra fixed penalty per migration (€), on top of the revenue lost
    /// while the VM is frozen (which the SLA-0 blackout already charges).
    pub migration_fee_eur: f64,
}

impl Default for BillingPolicy {
    fn default() -> Self {
        BillingPolicy {
            vm_eur_per_hour: crate::prices::PAPER_VM_EUR_PER_HOUR,
            sla_gamma: 1.0,
            migration_fee_eur: 0.0,
        }
    }
}

impl BillingPolicy {
    /// Revenue earned by one VM over `dt` at SLA level `sla`.
    pub fn revenue(&self, sla: f64, dt: SimDuration) -> f64 {
        let sla = sla.clamp(0.0, 1.0);
        self.vm_eur_per_hour * sla.powf(self.sla_gamma) * dt.as_hours_f64()
    }
}

/// Running profit accounts for one experiment run.
#[derive(Clone, Debug, Default)]
pub struct ProfitLedger {
    revenue_eur: f64,
    energy_eur: f64,
    migration_eur: f64,
    network_eur: f64,
    migrations: u64,
    vm_hours: f64,
}

/// A point-in-time copy of the ledger.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct ProfitSnapshot {
    /// Cumulative customer revenue, €.
    pub revenue_eur: f64,
    /// Cumulative electricity spend, €.
    pub energy_eur: f64,
    /// Cumulative migration fees, €.
    pub migration_eur: f64,
    /// Cumulative inter-DC transfer charges, €.
    pub network_eur: f64,
    /// Count of migrations billed.
    pub migrations: u64,
    /// VM-hours served.
    pub vm_hours: f64,
}

impl ProfitSnapshot {
    /// Net profit, €.
    pub fn profit_eur(&self) -> f64 {
        self.revenue_eur - self.energy_eur - self.migration_eur - self.network_eur
    }
}

impl ProfitLedger {
    /// A zeroed ledger.
    pub fn new() -> Self {
        Self::default()
    }

    /// Books one VM's revenue for a tick.
    pub fn book_revenue(&mut self, policy: &BillingPolicy, sla: f64, dt: SimDuration) {
        self.revenue_eur += policy.revenue(sla, dt);
        self.vm_hours += dt.as_hours_f64();
    }

    /// Books electricity consumed.
    pub fn book_energy(&mut self, eur: f64) {
        debug_assert!(eur >= 0.0, "energy cost cannot be negative");
        self.energy_eur += eur;
    }

    /// Books one migration's fixed fee.
    pub fn book_migration(&mut self, policy: &BillingPolicy) {
        self.migration_eur += policy.migration_fee_eur;
        self.migrations += 1;
    }

    /// Books inter-DC transfer charges (client traffic or image
    /// shipping).
    pub fn book_network(&mut self, eur: f64) {
        debug_assert!(eur >= 0.0, "network cost cannot be negative");
        self.network_eur += eur;
    }

    /// Snapshot of the current totals.
    pub fn snapshot(&self) -> ProfitSnapshot {
        ProfitSnapshot {
            revenue_eur: self.revenue_eur,
            energy_eur: self.energy_eur,
            migration_eur: self.migration_eur,
            network_eur: self.network_eur,
            migrations: self.migrations,
            vm_hours: self.vm_hours,
        }
    }

    /// Mean profit per hour over the elapsed `span` (the paper's Table
    /// III "Avg Euro/h" column).
    pub fn eur_per_hour(&self, span: SimDuration) -> f64 {
        let h = span.as_hours_f64();
        if h <= 0.0 {
            0.0
        } else {
            self.snapshot().profit_eur() / h
        }
    }

    /// Merges another ledger (parallel sub-runs).
    pub fn merge(&mut self, other: &ProfitLedger) {
        self.revenue_eur += other.revenue_eur;
        self.energy_eur += other.energy_eur;
        self.migration_eur += other.migration_eur;
        self.network_eur += other.network_eur;
        self.migrations += other.migrations;
        self.vm_hours += other.vm_hours;
    }
}

/// Span bookkeeping helper: elapsed simulated span between two instants.
pub fn span(from: SimTime, to: SimTime) -> SimDuration {
    to - from
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn revenue_scales_with_sla_and_time() {
        let p = BillingPolicy::default();
        let hour = SimDuration::from_hours(1);
        assert!((p.revenue(1.0, hour) - 0.17).abs() < 1e-12);
        assert!((p.revenue(0.5, hour) - 0.085).abs() < 1e-12);
        assert!((p.revenue(1.0, SimDuration::from_mins(30)) - 0.085).abs() < 1e-12);
        assert_eq!(p.revenue(0.0, hour), 0.0);
        // Clamped.
        assert!((p.revenue(1.5, hour) - 0.17).abs() < 1e-12);
    }

    #[test]
    fn gamma_bends_the_curve() {
        let p = BillingPolicy {
            sla_gamma: 2.0,
            ..Default::default()
        };
        let hour = SimDuration::from_hours(1);
        assert!((p.revenue(0.5, hour) - 0.17 * 0.25).abs() < 1e-12);
    }

    #[test]
    fn ledger_accumulates_and_snapshots() {
        let policy = BillingPolicy {
            migration_fee_eur: 0.01,
            ..Default::default()
        };
        let mut l = ProfitLedger::new();
        l.book_revenue(&policy, 1.0, SimDuration::from_hours(2));
        l.book_energy(0.05);
        l.book_migration(&policy);
        l.book_network(0.02);
        let s = l.snapshot();
        assert!((s.revenue_eur - 0.34).abs() < 1e-12);
        assert!((s.energy_eur - 0.05).abs() < 1e-12);
        assert!((s.migration_eur - 0.01).abs() < 1e-12);
        assert!((s.network_eur - 0.02).abs() < 1e-12);
        assert_eq!(s.migrations, 1);
        assert!((s.profit_eur() - 0.26).abs() < 1e-12);
        assert!((s.vm_hours - 2.0).abs() < 1e-12);
    }

    #[test]
    fn eur_per_hour_normalizes() {
        let policy = BillingPolicy::default();
        let mut l = ProfitLedger::new();
        l.book_revenue(&policy, 1.0, SimDuration::from_hours(10));
        assert!((l.eur_per_hour(SimDuration::from_hours(10)) - 0.17).abs() < 1e-12);
        assert_eq!(l.eur_per_hour(SimDuration::ZERO), 0.0);
    }

    #[test]
    fn merge_adds() {
        let policy = BillingPolicy::default();
        let mut a = ProfitLedger::new();
        a.book_revenue(&policy, 1.0, SimDuration::from_hours(1));
        let mut b = ProfitLedger::new();
        b.book_energy(0.02);
        a.merge(&b);
        let s = a.snapshot();
        assert!((s.profit_eur() - (0.17 - 0.02)).abs() < 1e-12);
    }
}
