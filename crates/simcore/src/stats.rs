//! Online statistics: Welford accumulators, Pearson correlation,
//! percentiles and weighted means.
//!
//! These are the numerical primitives behind every column of the paper's
//! Table I (correlation, mean absolute error, error standard deviation) and
//! behind the per-experiment summary rows (average SLA, average watts,
//! average €/h). All accumulators are single-pass and numerically stable,
//! so they can run inside the simulation loop without buffering samples.

/// Single-variable running statistics (Welford's algorithm).
#[derive(Clone, Debug, Default)]
pub struct OnlineStats {
    n: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl OnlineStats {
    /// An empty accumulator.
    pub fn new() -> Self {
        OnlineStats {
            n: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Consumes one observation.
    #[inline]
    pub fn push(&mut self, x: f64) {
        self.n += 1;
        let delta = x - self.mean;
        self.mean += delta / self.n as f64;
        self.m2 += delta * (x - self.mean);
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Consumes every value in a slice.
    pub fn extend(&mut self, xs: &[f64]) {
        for &x in xs {
            self.push(x);
        }
    }

    /// Number of observations so far.
    #[inline]
    pub fn count(&self) -> u64 {
        self.n
    }

    /// True when no observation has been pushed.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// Arithmetic mean (0 for an empty accumulator).
    #[inline]
    pub fn mean(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.mean
        }
    }

    /// Population variance (0 with fewer than 2 samples).
    #[inline]
    pub fn variance(&self) -> f64 {
        if self.n < 2 {
            0.0
        } else {
            self.m2 / self.n as f64
        }
    }

    /// Sample variance, n−1 denominator (0 with fewer than 2 samples).
    #[inline]
    pub fn sample_variance(&self) -> f64 {
        if self.n < 2 {
            0.0
        } else {
            self.m2 / (self.n - 1) as f64
        }
    }

    /// Population standard deviation.
    #[inline]
    pub fn std_dev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Sample standard deviation.
    #[inline]
    pub fn sample_std_dev(&self) -> f64 {
        self.sample_variance().sqrt()
    }

    /// Smallest observation (+inf if empty).
    #[inline]
    pub fn min(&self) -> f64 {
        self.min
    }

    /// Largest observation (−inf if empty).
    #[inline]
    pub fn max(&self) -> f64 {
        self.max
    }

    /// Sum of all observations.
    #[inline]
    pub fn sum(&self) -> f64 {
        self.mean() * self.n as f64
    }

    /// Merges another accumulator into this one (parallel reduction;
    /// Chan et al. pairwise update).
    pub fn merge(&mut self, other: &OnlineStats) {
        if other.n == 0 {
            return;
        }
        if self.n == 0 {
            *self = other.clone();
            return;
        }
        let n1 = self.n as f64;
        let n2 = other.n as f64;
        let delta = other.mean - self.mean;
        let total = n1 + n2;
        self.mean += delta * n2 / total;
        self.m2 += other.m2 + delta * delta * n1 * n2 / total;
        self.n += other.n;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }
}

/// Two-variable accumulator for Pearson correlation and simple regression.
#[derive(Clone, Debug, Default)]
pub struct Correlation {
    n: u64,
    mean_x: f64,
    mean_y: f64,
    m2_x: f64,
    m2_y: f64,
    co: f64,
}

impl Correlation {
    /// An empty accumulator.
    pub fn new() -> Self {
        Self::default()
    }

    /// Consumes one `(x, y)` pair.
    #[inline]
    pub fn push(&mut self, x: f64, y: f64) {
        self.n += 1;
        let n = self.n as f64;
        let dx = x - self.mean_x;
        let dy = y - self.mean_y;
        self.mean_x += dx / n;
        self.mean_y += dy / n;
        // dx is relative to the old mean_x, (y - mean_y) to the new mean_y:
        // the standard one-pass co-moment update.
        self.co += dx * (y - self.mean_y);
        self.m2_x += dx * (x - self.mean_x);
        self.m2_y += dy * (y - self.mean_y);
    }

    /// Consumes paired slices (panics on length mismatch).
    pub fn extend(&mut self, xs: &[f64], ys: &[f64]) {
        assert_eq!(xs.len(), ys.len(), "correlation: paired slices must match");
        for (&x, &y) in xs.iter().zip(ys) {
            self.push(x, y);
        }
    }

    /// Number of pairs so far.
    #[inline]
    pub fn count(&self) -> u64 {
        self.n
    }

    /// Pearson correlation coefficient in `[-1, 1]`. Returns 0 when either
    /// variable is constant (the convention WEKA uses for degenerate data).
    pub fn pearson(&self) -> f64 {
        if self.n < 2 {
            return 0.0;
        }
        let denom = (self.m2_x * self.m2_y).sqrt();
        if denom <= f64::EPSILON {
            0.0
        } else {
            (self.co / denom).clamp(-1.0, 1.0)
        }
    }

    /// Covariance (population).
    pub fn covariance(&self) -> f64 {
        if self.n < 2 {
            0.0
        } else {
            self.co / self.n as f64
        }
    }

    /// Least-squares slope of y on x (0 for constant x).
    pub fn slope(&self) -> f64 {
        if self.m2_x <= f64::EPSILON {
            0.0
        } else {
            self.co / self.m2_x
        }
    }

    /// Least-squares intercept of y on x.
    pub fn intercept(&self) -> f64 {
        self.mean_y - self.slope() * self.mean_x
    }
}

/// Convenience: Pearson correlation of two slices.
pub fn pearson(xs: &[f64], ys: &[f64]) -> f64 {
    let mut c = Correlation::new();
    c.extend(xs, ys);
    c.pearson()
}

/// Mean absolute error between predictions and truth.
pub fn mean_absolute_error(pred: &[f64], truth: &[f64]) -> f64 {
    assert_eq!(pred.len(), truth.len(), "MAE: paired slices must match");
    if pred.is_empty() {
        return 0.0;
    }
    pred.iter()
        .zip(truth)
        .map(|(p, t)| (p - t).abs())
        .sum::<f64>()
        / pred.len() as f64
}

/// Root mean squared error between predictions and truth.
pub fn root_mean_squared_error(pred: &[f64], truth: &[f64]) -> f64 {
    assert_eq!(pred.len(), truth.len(), "RMSE: paired slices must match");
    if pred.is_empty() {
        return 0.0;
    }
    (pred
        .iter()
        .zip(truth)
        .map(|(p, t)| (p - t) * (p - t))
        .sum::<f64>()
        / pred.len() as f64)
        .sqrt()
}

/// Standard deviation of the signed error `pred - truth` — the "Err-StDev"
/// column of the paper's Table I.
pub fn error_std_dev(pred: &[f64], truth: &[f64]) -> f64 {
    assert_eq!(
        pred.len(),
        truth.len(),
        "error_std_dev: paired slices must match"
    );
    let mut s = OnlineStats::new();
    for (p, t) in pred.iter().zip(truth) {
        s.push(p - t);
    }
    s.std_dev()
}

/// Weighted arithmetic mean; returns 0 when total weight is 0.
pub fn weighted_mean(values: &[f64], weights: &[f64]) -> f64 {
    assert_eq!(
        values.len(),
        weights.len(),
        "weighted_mean: paired slices must match"
    );
    let wsum: f64 = weights.iter().sum();
    if wsum <= 0.0 {
        return 0.0;
    }
    values.iter().zip(weights).map(|(v, w)| v * w).sum::<f64>() / wsum
}

/// Percentile (nearest-rank with linear interpolation) of an unsorted
/// slice; `q` in `[0, 1]`. Returns NaN for an empty slice.
pub fn percentile(values: &[f64], q: f64) -> f64 {
    if values.is_empty() {
        return f64::NAN;
    }
    let mut v: Vec<f64> = values.to_vec();
    v.sort_by(|a, b| a.partial_cmp(b).expect("percentile: NaN in data"));
    percentile_sorted(&v, q)
}

/// Percentile of an already-sorted slice (ascending).
pub fn percentile_sorted(sorted: &[f64], q: f64) -> f64 {
    if sorted.is_empty() {
        return f64::NAN;
    }
    let q = q.clamp(0.0, 1.0);
    let pos = q * (sorted.len() - 1) as f64;
    let lo = pos.floor() as usize;
    let hi = pos.ceil() as usize;
    if lo == hi {
        sorted[lo]
    } else {
        let frac = pos - lo as f64;
        sorted[lo] * (1.0 - frac) + sorted[hi] * frac
    }
}

/// Fixed-width histogram over `[lo, hi)` with out-of-range clamping,
/// used for load and RT distribution reports.
#[derive(Clone, Debug)]
pub struct Histogram {
    lo: f64,
    hi: f64,
    bins: Vec<u64>,
    total: u64,
}

impl Histogram {
    /// A histogram with `bins` equal buckets spanning `[lo, hi)`.
    pub fn new(lo: f64, hi: f64, bins: usize) -> Self {
        assert!(hi > lo, "histogram: hi must exceed lo");
        assert!(bins > 0, "histogram: need at least one bin");
        Histogram {
            lo,
            hi,
            bins: vec![0; bins],
            total: 0,
        }
    }

    /// Adds a sample; values outside the range land in the edge bins.
    pub fn push(&mut self, x: f64) {
        let w = (self.hi - self.lo) / self.bins.len() as f64;
        let idx = ((x - self.lo) / w).floor();
        let idx = idx.clamp(0.0, (self.bins.len() - 1) as f64) as usize;
        self.bins[idx] += 1;
        self.total += 1;
    }

    /// Bucket counts.
    pub fn counts(&self) -> &[u64] {
        &self.bins
    }

    /// Total number of samples.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Fraction of samples in bucket `i`.
    pub fn fraction(&self, i: usize) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            self.bins[i] as f64 / self.total as f64
        }
    }

    /// Midpoint of bucket `i` (useful for plotting).
    pub fn bin_center(&self, i: usize) -> f64 {
        let w = (self.hi - self.lo) / self.bins.len() as f64;
        self.lo + w * (i as f64 + 0.5)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn online_stats_basic() {
        let mut s = OnlineStats::new();
        s.extend(&[2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]);
        assert_eq!(s.count(), 8);
        assert!((s.mean() - 5.0).abs() < 1e-12);
        assert!((s.variance() - 4.0).abs() < 1e-12);
        assert!((s.std_dev() - 2.0).abs() < 1e-12);
        assert_eq!(s.min(), 2.0);
        assert_eq!(s.max(), 9.0);
        assert!((s.sum() - 40.0).abs() < 1e-9);
    }

    #[test]
    fn empty_stats_are_safe() {
        let s = OnlineStats::new();
        assert!(s.is_empty());
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.variance(), 0.0);
    }

    #[test]
    fn merge_equals_sequential() {
        let data: Vec<f64> = (0..1000).map(|i| (i as f64 * 0.37).sin() * 10.0).collect();
        let mut whole = OnlineStats::new();
        whole.extend(&data);
        let mut left = OnlineStats::new();
        left.extend(&data[..400]);
        let mut right = OnlineStats::new();
        right.extend(&data[400..]);
        left.merge(&right);
        assert_eq!(left.count(), whole.count());
        assert!((left.mean() - whole.mean()).abs() < 1e-9);
        assert!((left.variance() - whole.variance()).abs() < 1e-9);
    }

    #[test]
    fn pearson_perfectly_linear() {
        let xs: Vec<f64> = (0..100).map(|i| i as f64).collect();
        let ys: Vec<f64> = xs.iter().map(|x| 3.0 * x - 7.0).collect();
        assert!((pearson(&xs, &ys) - 1.0).abs() < 1e-12);
        let neg: Vec<f64> = xs.iter().map(|x| -2.0 * x + 1.0).collect();
        assert!((pearson(&xs, &neg) + 1.0).abs() < 1e-12);
    }

    #[test]
    fn pearson_constant_is_zero() {
        let xs = vec![1.0, 1.0, 1.0, 1.0];
        let ys = vec![0.0, 5.0, 2.0, 8.0];
        assert_eq!(pearson(&xs, &ys), 0.0);
    }

    #[test]
    fn regression_line_recovered() {
        let mut c = Correlation::new();
        for i in 0..50 {
            let x = i as f64;
            c.push(x, 2.5 * x + 4.0);
        }
        assert!((c.slope() - 2.5).abs() < 1e-9);
        assert!((c.intercept() - 4.0).abs() < 1e-9);
    }

    #[test]
    fn error_metrics() {
        let pred = vec![1.0, 2.0, 3.0];
        let truth = vec![1.5, 2.0, 2.0];
        assert!((mean_absolute_error(&pred, &truth) - 0.5).abs() < 1e-12);
        assert!(root_mean_squared_error(&pred, &truth) > mean_absolute_error(&pred, &truth));
        // errors: -0.5, 0, 1.0 -> mean 1/6, var = ...
        assert!(error_std_dev(&pred, &truth) > 0.0);
    }

    #[test]
    fn weighted_mean_basics() {
        assert_eq!(weighted_mean(&[1.0, 3.0], &[1.0, 1.0]), 2.0);
        assert_eq!(weighted_mean(&[1.0, 3.0], &[3.0, 1.0]), 1.5);
        assert_eq!(weighted_mean(&[1.0, 3.0], &[0.0, 0.0]), 0.0);
    }

    #[test]
    fn percentile_interpolates() {
        let v = vec![1.0, 2.0, 3.0, 4.0];
        assert_eq!(percentile(&v, 0.0), 1.0);
        assert_eq!(percentile(&v, 1.0), 4.0);
        assert!((percentile(&v, 0.5) - 2.5).abs() < 1e-12);
    }

    #[test]
    fn histogram_clamps_and_counts() {
        let mut h = Histogram::new(0.0, 10.0, 5);
        h.push(-1.0); // clamps to first bin
        h.push(0.5);
        h.push(9.9);
        h.push(100.0); // clamps to last bin
        assert_eq!(h.total(), 4);
        assert_eq!(h.counts()[0], 2);
        assert_eq!(h.counts()[4], 2);
        assert!((h.bin_center(0) - 1.0).abs() < 1e-12);
        assert!((h.fraction(0) - 0.5).abs() < 1e-12);
    }
}
