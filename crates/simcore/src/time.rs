//! Simulation time: a monotone clock with millisecond resolution.
//!
//! The whole workspace agrees on one time representation so that traces,
//! schedules and billing periods can be compared across crates. Internally
//! both [`SimTime`] (a point on the simulation timeline) and [`SimDuration`]
//! (a span) are a count of **milliseconds**; a millisecond is fine-grained
//! enough for VM migrations (seconds to minutes) and web response times
//! (tens of milliseconds to tens of seconds) while keeping all arithmetic in
//! exact integers — no floating-point clock drift over long runs.

use std::fmt;
use std::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

/// Milliseconds in one second.
pub const MILLIS_PER_SEC: u64 = 1_000;
/// Milliseconds in one minute.
pub const MILLIS_PER_MIN: u64 = 60 * MILLIS_PER_SEC;
/// Milliseconds in one hour.
pub const MILLIS_PER_HOUR: u64 = 60 * MILLIS_PER_MIN;
/// Milliseconds in one (simulated) day.
pub const MILLIS_PER_DAY: u64 = 24 * MILLIS_PER_HOUR;

/// A point on the simulation timeline (milliseconds since simulation start).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(u64);

/// A non-negative span of simulated time (milliseconds).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimDuration(u64);

impl SimTime {
    /// The simulation epoch (t = 0).
    pub const ZERO: SimTime = SimTime(0);

    /// Builds a time point from raw milliseconds.
    #[inline]
    pub const fn from_millis(ms: u64) -> Self {
        SimTime(ms)
    }

    /// Builds a time point from whole seconds.
    #[inline]
    pub const fn from_secs(s: u64) -> Self {
        SimTime(s * MILLIS_PER_SEC)
    }

    /// Builds a time point from whole minutes.
    #[inline]
    pub const fn from_mins(m: u64) -> Self {
        SimTime(m * MILLIS_PER_MIN)
    }

    /// Builds a time point from whole hours.
    #[inline]
    pub const fn from_hours(h: u64) -> Self {
        SimTime(h * MILLIS_PER_HOUR)
    }

    /// Raw milliseconds since the simulation epoch.
    #[inline]
    pub const fn as_millis(self) -> u64 {
        self.0
    }

    /// Seconds since the epoch, as a float (loses sub-ms nothing: exact).
    #[inline]
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / MILLIS_PER_SEC as f64
    }

    /// Whole minutes since the epoch (truncating).
    #[inline]
    pub const fn as_mins(self) -> u64 {
        self.0 / MILLIS_PER_MIN
    }

    /// Whole hours since the epoch (truncating).
    #[inline]
    pub const fn as_hours(self) -> u64 {
        self.0 / MILLIS_PER_HOUR
    }

    /// Hours since the epoch as a float; handy for diurnal load curves.
    #[inline]
    pub fn as_hours_f64(self) -> f64 {
        self.0 as f64 / MILLIS_PER_HOUR as f64
    }

    /// The time-of-day component in `[0, 24)` hours, used by workload
    /// generators to evaluate diurnal profiles.
    #[inline]
    pub fn hour_of_day(self) -> f64 {
        (self.0 % MILLIS_PER_DAY) as f64 / MILLIS_PER_HOUR as f64
    }

    /// Zero-based index of the simulated day this instant falls in.
    #[inline]
    pub const fn day_index(self) -> u64 {
        self.0 / MILLIS_PER_DAY
    }

    /// Duration elapsed since `earlier`. Saturates at zero rather than
    /// panicking so that monitors sampling "around" an event stay total.
    #[inline]
    pub fn since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }
}

impl SimDuration {
    /// The empty span.
    pub const ZERO: SimDuration = SimDuration(0);

    /// Builds a span from raw milliseconds.
    #[inline]
    pub const fn from_millis(ms: u64) -> Self {
        SimDuration(ms)
    }

    /// Builds a span from whole seconds.
    #[inline]
    pub const fn from_secs(s: u64) -> Self {
        SimDuration(s * MILLIS_PER_SEC)
    }

    /// Builds a span from a float number of seconds (rounded to ms,
    /// clamped at zero).
    #[inline]
    pub fn from_secs_f64(s: f64) -> Self {
        SimDuration((s.max(0.0) * MILLIS_PER_SEC as f64).round() as u64)
    }

    /// Builds a span from whole minutes.
    #[inline]
    pub const fn from_mins(m: u64) -> Self {
        SimDuration(m * MILLIS_PER_MIN)
    }

    /// Builds a span from whole hours.
    #[inline]
    pub const fn from_hours(h: u64) -> Self {
        SimDuration(h * MILLIS_PER_HOUR)
    }

    /// Builds a span from whole days.
    #[inline]
    pub const fn from_days(d: u64) -> Self {
        SimDuration(d * MILLIS_PER_DAY)
    }

    /// Raw milliseconds.
    #[inline]
    pub const fn as_millis(self) -> u64 {
        self.0
    }

    /// The span in seconds as a float.
    #[inline]
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / MILLIS_PER_SEC as f64
    }

    /// The span in hours as a float (used for watt-hour integration).
    #[inline]
    pub fn as_hours_f64(self) -> f64 {
        self.0 as f64 / MILLIS_PER_HOUR as f64
    }

    /// True when the span is zero.
    #[inline]
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// Integer number of `tick`-sized steps contained in this span
    /// (truncating). Panics on a zero tick, which is always a config bug.
    #[inline]
    pub fn ticks(self, tick: SimDuration) -> u64 {
        assert!(tick.0 > 0, "tick duration must be positive");
        self.0 / tick.0
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    #[inline]
    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0 + rhs.0)
    }
}

impl AddAssign<SimDuration> for SimTime {
    #[inline]
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Sub<SimDuration> for SimTime {
    type Output = SimTime;
    #[inline]
    fn sub(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0.saturating_sub(rhs.0))
    }
}

impl Sub<SimTime> for SimTime {
    type Output = SimDuration;
    #[inline]
    fn sub(self, rhs: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(rhs.0))
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    #[inline]
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0 + rhs.0)
    }
}

impl AddAssign for SimDuration {
    #[inline]
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Sub for SimDuration {
    type Output = SimDuration;
    #[inline]
    fn sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(rhs.0))
    }
}

impl SubAssign for SimDuration {
    #[inline]
    fn sub_assign(&mut self, rhs: SimDuration) {
        self.0 = self.0.saturating_sub(rhs.0);
    }
}

impl Mul<u64> for SimDuration {
    type Output = SimDuration;
    #[inline]
    fn mul(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 * rhs)
    }
}

impl Mul<f64> for SimDuration {
    type Output = SimDuration;
    #[inline]
    fn mul(self, rhs: f64) -> SimDuration {
        SimDuration((self.0 as f64 * rhs.max(0.0)).round() as u64)
    }
}

impl Div<u64> for SimDuration {
    type Output = SimDuration;
    #[inline]
    fn div(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 / rhs)
    }
}

impl fmt::Debug for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t+{self}")
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let ms = self.0;
        let d = ms / MILLIS_PER_DAY;
        let h = (ms % MILLIS_PER_DAY) / MILLIS_PER_HOUR;
        let m = (ms % MILLIS_PER_HOUR) / MILLIS_PER_MIN;
        let s = (ms % MILLIS_PER_MIN) / MILLIS_PER_SEC;
        let rem = ms % MILLIS_PER_SEC;
        if rem == 0 {
            write!(f, "{d}d{h:02}:{m:02}:{s:02}")
        } else {
            write!(f, "{d}d{h:02}:{m:02}:{s:02}.{rem:03}")
        }
    }
}

impl fmt::Debug for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}ms", self.0)
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0.is_multiple_of(MILLIS_PER_HOUR) && self.0 > 0 {
            write!(f, "{}h", self.0 / MILLIS_PER_HOUR)
        } else if self.0.is_multiple_of(MILLIS_PER_MIN) && self.0 > 0 {
            write!(f, "{}min", self.0 / MILLIS_PER_MIN)
        } else if self.0.is_multiple_of(MILLIS_PER_SEC) {
            write!(f, "{}s", self.0 / MILLIS_PER_SEC)
        } else {
            write!(f, "{}ms", self.0)
        }
    }
}

/// Iterator over the tick boundaries of a closed-open interval
/// `[start, end)` with a fixed step; the workhorse of the time-stepped
/// simulation loop.
#[derive(Clone, Debug)]
pub struct TickIter {
    next: SimTime,
    end: SimTime,
    step: SimDuration,
}

impl TickIter {
    /// Ticks from `start` (inclusive) to `end` (exclusive) every `step`.
    pub fn new(start: SimTime, end: SimTime, step: SimDuration) -> Self {
        assert!(!step.is_zero(), "tick step must be positive");
        TickIter {
            next: start,
            end,
            step,
        }
    }
}

impl Iterator for TickIter {
    type Item = SimTime;

    fn next(&mut self) -> Option<SimTime> {
        if self.next >= self.end {
            return None;
        }
        let t = self.next;
        self.next += self.step;
        Some(t)
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let n = if self.next >= self.end {
            0
        } else {
            ((self.end.as_millis() - self.next.as_millis()).div_ceil(self.step.as_millis()))
                as usize
        };
        (n, Some(n))
    }
}

impl ExactSizeIterator for TickIter {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_agree() {
        assert_eq!(SimTime::from_secs(60), SimTime::from_mins(1));
        assert_eq!(SimTime::from_mins(60), SimTime::from_hours(1));
        assert_eq!(SimDuration::from_hours(24), SimDuration::from_days(1));
    }

    #[test]
    fn add_sub_roundtrip() {
        let t = SimTime::from_mins(10) + SimDuration::from_secs(30);
        assert_eq!(t.as_millis(), 10 * MILLIS_PER_MIN + 30 * MILLIS_PER_SEC);
        assert_eq!(t - SimTime::from_mins(10), SimDuration::from_secs(30));
    }

    #[test]
    fn sub_saturates() {
        let early = SimTime::from_secs(1);
        let late = SimTime::from_secs(5);
        assert_eq!(early - late, SimDuration::ZERO);
        assert_eq!(early.since(late), SimDuration::ZERO);
        assert_eq!(late.since(early), SimDuration::from_secs(4));
    }

    #[test]
    fn hour_of_day_wraps() {
        let t = SimTime::from_hours(25);
        assert!((t.hour_of_day() - 1.0).abs() < 1e-12);
        assert_eq!(t.day_index(), 1);
    }

    #[test]
    fn duration_float_conversions() {
        let d = SimDuration::from_secs_f64(1.5);
        assert_eq!(d.as_millis(), 1500);
        assert!((d.as_secs_f64() - 1.5).abs() < 1e-12);
        assert_eq!(SimDuration::from_secs_f64(-3.0), SimDuration::ZERO);
    }

    #[test]
    fn duration_scaling() {
        let d = SimDuration::from_mins(10);
        assert_eq!(d * 3, SimDuration::from_mins(30));
        assert_eq!(d / 2, SimDuration::from_mins(5));
        assert_eq!(d * 0.5, SimDuration::from_mins(5));
    }

    #[test]
    fn tick_iter_covers_interval() {
        let ticks: Vec<_> = TickIter::new(
            SimTime::ZERO,
            SimTime::from_mins(5),
            SimDuration::from_mins(1),
        )
        .collect();
        assert_eq!(ticks.len(), 5);
        assert_eq!(ticks[0], SimTime::ZERO);
        assert_eq!(ticks[4], SimTime::from_mins(4));
    }

    #[test]
    fn tick_iter_size_hint_exact() {
        let it = TickIter::new(
            SimTime::from_secs(0),
            SimTime::from_secs(10),
            SimDuration::from_secs(3),
        );
        assert_eq!(it.len(), 4); // 0,3,6,9
        assert_eq!(it.count(), 4);
    }

    #[test]
    fn display_formats() {
        let t = SimTime::from_hours(26) + SimDuration::from_secs(61);
        assert_eq!(format!("{t}"), "1d02:01:01");
        assert_eq!(format!("{}", SimDuration::from_mins(90)), "90min");
        assert_eq!(format!("{}", SimDuration::from_hours(2)), "2h");
        assert_eq!(format!("{}", SimDuration::from_millis(250)), "250ms");
    }

    #[test]
    fn ticks_counts_steps() {
        assert_eq!(
            SimDuration::from_hours(1).ticks(SimDuration::from_mins(10)),
            6
        );
        assert_eq!(
            SimDuration::from_mins(25).ticks(SimDuration::from_mins(10)),
            2
        );
    }
}
