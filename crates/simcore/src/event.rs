//! A deterministic future-event queue.
//!
//! The multi-DC simulation is mostly time-stepped (one tick per simulated
//! minute), but discrete happenings — migration completions, PM boot
//! finishing, scheduled flash crowds, scheduling rounds — live on this
//! queue and are drained at the top of each tick. Ties are broken by
//! insertion sequence so replays are exact.

use crate::time::SimTime;
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// An entry in the queue: `(due, seq, payload)` ordered earliest-first.
struct Entry<E> {
    due: SimTime,
    seq: u64,
    event: E,
}

impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.due == other.due && self.seq == other.seq
    }
}
impl<E> Eq for Entry<E> {}
impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap: invert so the earliest (and, on ties,
        // the first-inserted) entry surfaces first.
        other
            .due
            .cmp(&self.due)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// A min-ordered future event queue with FIFO tie-breaking.
pub struct EventQueue<E> {
    heap: BinaryHeap<Entry<E>>,
    seq: u64,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    /// An empty queue.
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            seq: 0,
        }
    }

    /// Schedules `event` to fire at `due`.
    pub fn schedule(&mut self, due: SimTime, event: E) {
        let seq = self.seq;
        self.seq += 1;
        self.heap.push(Entry { due, seq, event });
    }

    /// The timestamp of the next event, if any.
    pub fn peek_due(&self) -> Option<SimTime> {
        self.heap.peek().map(|e| e.due)
    }

    /// Pops the next event if it is due at or before `now`.
    pub fn pop_due(&mut self, now: SimTime) -> Option<(SimTime, E)> {
        if self.peek_due().is_some_and(|d| d <= now) {
            self.heap.pop().map(|e| (e.due, e.event))
        } else {
            None
        }
    }

    /// Drains every event due at or before `now` into a vector, in firing
    /// order.
    pub fn drain_due(&mut self, now: SimTime) -> Vec<(SimTime, E)> {
        let mut out = Vec::new();
        while let Some(pair) = self.pop_due(now) {
            out.push(pair);
        }
        out
    }

    /// Pops the next event unconditionally (advancing virtual time in a
    /// pure discrete-event run).
    pub fn pop_next(&mut self) -> Option<(SimTime, E)> {
        self.heap.pop().map(|e| (e.due, e.event))
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// True when nothing is pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Removes all pending events.
    pub fn clear(&mut self) {
        self.heap.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::SimDuration;

    fn t(s: u64) -> SimTime {
        SimTime::from_secs(s)
    }

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule(t(5), "c");
        q.schedule(t(1), "a");
        q.schedule(t(3), "b");
        assert_eq!(q.pop_next().unwrap(), (t(1), "a"));
        assert_eq!(q.pop_next().unwrap(), (t(3), "b"));
        assert_eq!(q.pop_next().unwrap(), (t(5), "c"));
        assert!(q.pop_next().is_none());
    }

    #[test]
    fn ties_break_fifo() {
        let mut q = EventQueue::new();
        q.schedule(t(2), 1);
        q.schedule(t(2), 2);
        q.schedule(t(2), 3);
        assert_eq!(q.pop_next().unwrap().1, 1);
        assert_eq!(q.pop_next().unwrap().1, 2);
        assert_eq!(q.pop_next().unwrap().1, 3);
    }

    #[test]
    fn pop_due_respects_now() {
        let mut q = EventQueue::new();
        q.schedule(t(10), "later");
        q.schedule(t(1), "now");
        assert_eq!(q.pop_due(t(5)).unwrap(), (t(1), "now"));
        assert!(q.pop_due(t(5)).is_none());
        assert_eq!(q.len(), 1);
        assert_eq!(q.peek_due(), Some(t(10)));
    }

    #[test]
    fn drain_due_collects_everything_due() {
        let mut q = EventQueue::new();
        for s in [4u64, 2, 8, 6, 1] {
            q.schedule(t(s), s);
        }
        let fired = q.drain_due(t(5));
        assert_eq!(
            fired.iter().map(|(_, e)| *e).collect::<Vec<_>>(),
            vec![1, 2, 4]
        );
        assert_eq!(q.len(), 2);
    }

    #[test]
    fn clear_empties() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::ZERO + SimDuration::from_secs(1), ());
        assert!(!q.is_empty());
        q.clear();
        assert!(q.is_empty());
    }
}
