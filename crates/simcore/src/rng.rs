//! Deterministic random-number streams.
//!
//! Every stochastic component of the simulator (workload arrivals, monitor
//! noise, service-time jitter, ...) draws from its **own named stream**
//! derived from a single master seed. Two properties follow:
//!
//! 1. **Reproducibility** — a scenario seed fully determines every result,
//!    so experiment tables regenerate bit-identically.
//! 2. **Insensitivity to component order** — adding a new consumer of
//!    randomness does not perturb the draws seen by existing components,
//!    because streams are independent rather than interleaved. This is the
//!    standard trick used by parallel simulation harnesses and it is what
//!    makes the crossbeam-parallel sweeps in `pamdc-core` give answers
//!    identical to sequential runs.
//!
//! Distributions beyond uniform are implemented here directly (Box-Muller
//! normal, inverse-CDF exponential, Knuth/normal-approx Poisson, Pareto,
//! log-normal) so the workspace only depends on `rand` itself.

use rand::rngs::SmallRng;
use rand::{RngExt, SeedableRng};

/// SplitMix64 step; the de-facto standard seed expander.
#[inline]
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Hashes a stream name to a 64-bit label (FNV-1a; stable across runs
/// and platforms).
#[inline]
fn fnv1a(name: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in name.as_bytes() {
        h ^= u64::from(*b);
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    h
}

/// A deterministic random stream, cheap to fork per component.
#[derive(Clone, Debug)]
pub struct RngStream {
    rng: SmallRng,
    seed: u64,
}

impl RngStream {
    /// Root stream for a scenario master seed.
    pub fn root(master_seed: u64) -> Self {
        let mut s = master_seed;
        // Warm the seed through splitmix so nearby master seeds do not
        // yield correlated SmallRng states.
        let seed = splitmix64(&mut s);
        RngStream {
            rng: SmallRng::seed_from_u64(seed),
            seed,
        }
    }

    /// Derives an independent child stream identified by `name`.
    /// Deriving the same name twice yields the same stream; different
    /// names yield (statistically) independent streams.
    pub fn derive(&self, name: &str) -> RngStream {
        let mut s = self.seed ^ fnv1a(name).rotate_left(17);
        let seed = splitmix64(&mut s);
        RngStream {
            rng: SmallRng::seed_from_u64(seed),
            seed,
        }
    }

    /// Derives an independent child stream identified by an index
    /// (e.g. one stream per VM or per sweep point).
    pub fn derive_indexed(&self, name: &str, index: u64) -> RngStream {
        let mut s =
            self.seed ^ fnv1a(name).rotate_left(17) ^ index.wrapping_mul(0x9E37_79B9_7F4A_7C15);
        let seed = splitmix64(&mut s);
        RngStream {
            rng: SmallRng::seed_from_u64(seed),
            seed,
        }
    }

    /// Uniform draw in `[0, 1)`.
    #[inline]
    pub fn uniform(&mut self) -> f64 {
        self.rng.random::<f64>()
    }

    /// Uniform draw in `[lo, hi)`; `lo == hi` returns `lo`.
    #[inline]
    pub fn uniform_range(&mut self, lo: f64, hi: f64) -> f64 {
        debug_assert!(lo <= hi, "uniform_range: lo must be <= hi");
        if lo >= hi {
            return lo;
        }
        lo + (hi - lo) * self.uniform()
    }

    /// Uniform integer in `[0, n)`. Panics if `n == 0`.
    #[inline]
    pub fn index(&mut self, n: usize) -> usize {
        assert!(n > 0, "index: empty range");
        self.rng.random_range(0..n)
    }

    /// Bernoulli trial with probability `p` (clamped to `[0,1]`).
    #[inline]
    pub fn chance(&mut self, p: f64) -> bool {
        self.uniform() < p.clamp(0.0, 1.0)
    }

    /// Standard normal via Box-Muller.
    pub fn normal_std(&mut self) -> f64 {
        // Avoid ln(0) by nudging u1 away from zero.
        let u1 = (1.0 - self.uniform()).max(f64::MIN_POSITIVE);
        let u2 = self.uniform();
        (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
    }

    /// Normal with the given mean and standard deviation.
    #[inline]
    pub fn normal(&mut self, mean: f64, std_dev: f64) -> f64 {
        mean + std_dev.max(0.0) * self.normal_std()
    }

    /// Exponential with the given rate `lambda` (mean `1/lambda`).
    pub fn exponential(&mut self, lambda: f64) -> f64 {
        assert!(lambda > 0.0, "exponential: rate must be positive");
        let u = (1.0 - self.uniform()).max(f64::MIN_POSITIVE);
        -u.ln() / lambda
    }

    /// Poisson draw. Knuth's product method below `lambda = 30`, normal
    /// approximation (rounded, clamped at 0) above — accurate and O(1)
    /// for the large per-tick request counts the workload generator needs.
    pub fn poisson(&mut self, lambda: f64) -> u64 {
        assert!(lambda >= 0.0, "poisson: lambda must be non-negative");
        if lambda == 0.0 {
            return 0;
        }
        if lambda < 30.0 {
            let l = (-lambda).exp();
            let mut k = 0u64;
            let mut p = 1.0;
            loop {
                p *= self.uniform();
                if p <= l {
                    return k;
                }
                k += 1;
            }
        } else {
            let x = self.normal(lambda, lambda.sqrt());
            x.round().max(0.0) as u64
        }
    }

    /// Pareto (power-law tail) with scale `xm > 0` and shape `alpha > 0`.
    /// Used for heavy-tailed bytes-per-request.
    pub fn pareto(&mut self, xm: f64, alpha: f64) -> f64 {
        assert!(
            xm > 0.0 && alpha > 0.0,
            "pareto: xm and alpha must be positive"
        );
        let u = (1.0 - self.uniform()).max(f64::MIN_POSITIVE);
        xm / u.powf(1.0 / alpha)
    }

    /// Log-normal with the given *underlying* normal parameters.
    pub fn lognormal(&mut self, mu: f64, sigma: f64) -> f64 {
        self.normal(mu, sigma).exp()
    }

    /// Fisher-Yates shuffle.
    pub fn shuffle<T>(&mut self, items: &mut [T]) {
        for i in (1..items.len()).rev() {
            let j = self.rng.random_range(0..=i);
            items.swap(i, j);
        }
    }

    /// Draws `k` distinct indices from `[0, n)` (reservoir-free partial
    /// Fisher-Yates; O(n) memory, fine for the sizes used here).
    pub fn sample_indices(&mut self, n: usize, k: usize) -> Vec<usize> {
        assert!(k <= n, "sample_indices: k must be <= n");
        let mut idx: Vec<usize> = (0..n).collect();
        for i in 0..k {
            let j = i + self.rng.random_range(0..(n - i));
            idx.swap(i, j);
        }
        idx.truncate(k);
        idx
    }

    /// Exposes the raw `rand::Rng` for the rare caller that needs it.
    #[inline]
    pub fn raw(&mut self) -> &mut SmallRng {
        &mut self.rng
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mean_of(v: &[f64]) -> f64 {
        v.iter().sum::<f64>() / v.len() as f64
    }

    #[test]
    fn root_is_reproducible() {
        let mut a = RngStream::root(42);
        let mut b = RngStream::root(42);
        for _ in 0..100 {
            assert_eq!(a.uniform().to_bits(), b.uniform().to_bits());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = RngStream::root(1);
        let mut b = RngStream::root(2);
        let same = (0..64)
            .filter(|_| a.uniform().to_bits() == b.uniform().to_bits())
            .count();
        assert!(same < 4, "streams from different seeds should diverge");
    }

    #[test]
    fn derive_is_stable_and_independent_of_order() {
        let root = RngStream::root(7);
        let mut w1 = root.derive("workload");
        let _m = root.derive("monitor"); // deriving another stream ...
        let mut w2 = root.derive("workload"); // ... must not affect this one
        for _ in 0..32 {
            assert_eq!(w1.uniform().to_bits(), w2.uniform().to_bits());
        }
    }

    #[test]
    fn derive_indexed_streams_differ() {
        let root = RngStream::root(7);
        let mut a = root.derive_indexed("vm", 0);
        let mut b = root.derive_indexed("vm", 1);
        let same = (0..64)
            .filter(|_| a.uniform().to_bits() == b.uniform().to_bits())
            .count();
        assert!(same < 4);
    }

    #[test]
    fn uniform_bounds() {
        let mut r = RngStream::root(3);
        for _ in 0..10_000 {
            let u = r.uniform();
            assert!((0.0..1.0).contains(&u));
            let x = r.uniform_range(-2.0, 5.0);
            assert!((-2.0..5.0).contains(&x));
        }
    }

    #[test]
    fn normal_moments() {
        let mut r = RngStream::root(11);
        let xs: Vec<f64> = (0..50_000).map(|_| r.normal(3.0, 2.0)).collect();
        let m = mean_of(&xs);
        let var = xs.iter().map(|x| (x - m) * (x - m)).sum::<f64>() / xs.len() as f64;
        assert!((m - 3.0).abs() < 0.05, "mean {m}");
        assert!((var - 4.0).abs() < 0.15, "var {var}");
    }

    #[test]
    fn exponential_mean() {
        let mut r = RngStream::root(13);
        let xs: Vec<f64> = (0..50_000).map(|_| r.exponential(0.5)).collect();
        assert!((mean_of(&xs) - 2.0).abs() < 0.06);
    }

    #[test]
    fn poisson_small_and_large_lambda() {
        let mut r = RngStream::root(17);
        let small: Vec<f64> = (0..20_000).map(|_| r.poisson(4.0) as f64).collect();
        assert!((mean_of(&small) - 4.0).abs() < 0.1);
        let large: Vec<f64> = (0..20_000).map(|_| r.poisson(400.0) as f64).collect();
        assert!((mean_of(&large) - 400.0).abs() < 1.0);
    }

    #[test]
    fn pareto_respects_scale() {
        let mut r = RngStream::root(19);
        for _ in 0..5_000 {
            assert!(r.pareto(2.0, 1.5) >= 2.0);
        }
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut r = RngStream::root(23);
        let mut v: Vec<u32> = (0..100).collect();
        r.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn sample_indices_distinct_and_in_range() {
        let mut r = RngStream::root(29);
        let s = r.sample_indices(50, 20);
        assert_eq!(s.len(), 20);
        let mut dedup = s.clone();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(dedup.len(), 20);
        assert!(s.iter().all(|&i| i < 50));
    }

    #[test]
    fn chance_extremes() {
        let mut r = RngStream::root(31);
        assert!(!r.chance(0.0));
        assert!(r.chance(1.0));
    }
}
