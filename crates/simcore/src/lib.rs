//! # pamdc-simcore — simulation substrate primitives
//!
//! The lowest layer of the `pamdc` workspace: a simulation clock
//! ([`time::SimTime`]), deterministic named RNG streams
//! ([`rng::RngStream`]), a future-event queue ([`event::EventQueue`]),
//! numerically-stable online statistics ([`stats`]) and timestamped series
//! recording ([`series`]).
//!
//! Nothing in this crate knows about datacenters; it is the generic
//! discrete-time/discrete-event toolkit the rest of the workspace builds
//! on. Everything is deterministic given a master seed, which is what lets
//! the experiment harness reproduce each table and figure of the paper
//! bit-for-bit across runs and across parallel/sequential execution.

pub mod event;
pub mod par;
pub mod rng;
pub mod series;
pub mod stats;
pub mod time;

/// Common imports.
pub mod prelude {
    pub use crate::event::EventQueue;
    pub use crate::par::{join, parallel_map};
    pub use crate::rng::RngStream;
    pub use crate::series::{SeriesSet, TimeSeries};
    pub use crate::stats::{
        error_std_dev, mean_absolute_error, pearson, percentile, root_mean_squared_error,
        weighted_mean, Correlation, Histogram, OnlineStats,
    };
    pub use crate::time::{SimDuration, SimTime, TickIter};
}
