//! Named time series: the raw material of every figure in the paper.
//!
//! A [`TimeSeries`] is an append-only `(SimTime, f64)` sequence; a
//! [`SeriesSet`] groups the series recorded during one experiment run so a
//! report or bench can emit them together (e.g. Figure 4's SLA / watts /
//! active-PM traces share a time axis).

use crate::stats::OnlineStats;
use crate::time::{SimDuration, SimTime};
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// An append-only series of timestamped samples.
#[derive(Clone, Debug, Default)]
pub struct TimeSeries {
    name: String,
    times: Vec<SimTime>,
    values: Vec<f64>,
}

impl TimeSeries {
    /// A new, empty series.
    pub fn new(name: impl Into<String>) -> Self {
        TimeSeries {
            name: name.into(),
            times: Vec::new(),
            values: Vec::new(),
        }
    }

    /// A new, empty series with room for `cap` samples.
    pub fn with_capacity(name: impl Into<String>, cap: usize) -> Self {
        TimeSeries {
            name: name.into(),
            times: Vec::with_capacity(cap),
            values: Vec::with_capacity(cap),
        }
    }

    /// The series name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Appends a sample. Timestamps must be non-decreasing; out-of-order
    /// appends indicate a simulation bug and panic in debug builds.
    #[inline]
    pub fn record(&mut self, t: SimTime, v: f64) {
        debug_assert!(
            self.times.last().is_none_or(|&last| last <= t),
            "time series '{}' must be appended in time order",
            self.name
        );
        self.times.push(t);
        self.values.push(v);
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// True when no sample has been recorded.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// The timestamps.
    pub fn times(&self) -> &[SimTime] {
        &self.times
    }

    /// The values.
    pub fn values(&self) -> &[f64] {
        &self.values
    }

    /// Iterator over `(time, value)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (SimTime, f64)> + '_ {
        self.times.iter().copied().zip(self.values.iter().copied())
    }

    /// The last value, if any.
    pub fn last(&self) -> Option<(SimTime, f64)> {
        match (self.times.last(), self.values.last()) {
            (Some(&t), Some(&v)) => Some((t, v)),
            _ => None,
        }
    }

    /// Mean of all values (0 if empty).
    pub fn mean(&self) -> f64 {
        self.summary().mean()
    }

    /// Full summary statistics over the values.
    pub fn summary(&self) -> OnlineStats {
        let mut s = OnlineStats::new();
        s.extend(&self.values);
        s
    }

    /// Mean of the values whose timestamps fall in `[from, to)`.
    pub fn mean_in_window(&self, from: SimTime, to: SimTime) -> f64 {
        let mut s = OnlineStats::new();
        for (t, v) in self.iter() {
            if t >= from && t < to {
                s.push(v);
            }
        }
        s.mean()
    }

    /// Time-weighted mean: each sample holds until the next one; the final
    /// sample holds until `end`. This is the right average for step
    /// signals such as instantaneous power draw.
    pub fn time_weighted_mean(&self, end: SimTime) -> f64 {
        if self.is_empty() {
            return 0.0;
        }
        let mut acc = 0.0;
        let mut dur = 0.0;
        for i in 0..self.len() {
            let t0 = self.times[i];
            let t1 = if i + 1 < self.len() {
                self.times[i + 1]
            } else {
                end.max(t0)
            };
            let dt = (t1 - t0).as_secs_f64();
            acc += self.values[i] * dt;
            dur += dt;
        }
        if dur <= 0.0 {
            // All samples share one timestamp; fall back to plain mean.
            self.mean()
        } else {
            acc / dur
        }
    }

    /// Downsamples to one mean value per `bucket` of time, returning
    /// `(bucket_start, mean)` pairs. Used to shrink per-tick traces before
    /// printing figure data.
    pub fn resample(&self, bucket: SimDuration) -> Vec<(SimTime, f64)> {
        assert!(!bucket.is_zero(), "resample: bucket must be positive");
        let mut out: Vec<(SimTime, f64)> = Vec::new();
        let mut acc = OnlineStats::new();
        let mut current: Option<u64> = None;
        for (t, v) in self.iter() {
            let b = t.as_millis() / bucket.as_millis();
            if current != Some(b) {
                if let Some(cb) = current {
                    out.push((SimTime::from_millis(cb * bucket.as_millis()), acc.mean()));
                }
                acc = OnlineStats::new();
                current = Some(b);
            }
            acc.push(v);
        }
        if let Some(cb) = current {
            out.push((SimTime::from_millis(cb * bucket.as_millis()), acc.mean()));
        }
        out
    }
}

/// A set of time series sharing one experiment run.
#[derive(Clone, Debug, Default)]
pub struct SeriesSet {
    series: BTreeMap<String, TimeSeries>,
}

impl SeriesSet {
    /// An empty set.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records into the named series, creating it on first use.
    pub fn record(&mut self, name: &str, t: SimTime, v: f64) {
        self.series
            .entry(name.to_string())
            .or_insert_with(|| TimeSeries::new(name))
            .record(t, v);
    }

    /// Looks up a series by name.
    pub fn get(&self, name: &str) -> Option<&TimeSeries> {
        self.series.get(name)
    }

    /// All series names in deterministic (sorted) order.
    pub fn names(&self) -> impl Iterator<Item = &str> {
        self.series.keys().map(String::as_str)
    }

    /// Iterates over all series in deterministic order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, &TimeSeries)> {
        self.series.iter().map(|(k, v)| (k.as_str(), v))
    }

    /// Number of series.
    pub fn len(&self) -> usize {
        self.series.len()
    }

    /// True when the set holds no series.
    pub fn is_empty(&self) -> bool {
        self.series.is_empty()
    }

    /// Renders the set as CSV with a shared `minutes` axis: rows are the
    /// union of timestamps, missing cells are empty. Good enough to drop
    /// into any plotting tool to redraw the paper's figures.
    pub fn to_csv(&self) -> String {
        let mut stamps: Vec<SimTime> = Vec::new();
        for ts in self.series.values() {
            stamps.extend_from_slice(ts.times());
        }
        stamps.sort_unstable();
        stamps.dedup();

        let mut out = String::new();
        out.push_str("minutes");
        for name in self.series.keys() {
            let _ = write!(out, ",{name}");
        }
        out.push('\n');

        // Per-series cursor over its (sorted) timestamps.
        let mut cursors: Vec<usize> = vec![0; self.series.len()];
        for t in &stamps {
            let _ = write!(out, "{}", t.as_millis() as f64 / 60_000.0);
            for (ci, ts) in self.series.values().enumerate() {
                let cur = &mut cursors[ci];
                if *cur < ts.len() && ts.times()[*cur] == *t {
                    let _ = write!(out, ",{}", ts.values()[*cur]);
                    *cur += 1;
                } else {
                    out.push(',');
                }
            }
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(mins: u64) -> SimTime {
        SimTime::from_mins(mins)
    }

    #[test]
    fn record_and_query() {
        let mut ts = TimeSeries::new("sla");
        ts.record(t(0), 1.0);
        ts.record(t(1), 0.8);
        ts.record(t(2), 0.6);
        assert_eq!(ts.len(), 3);
        assert!((ts.mean() - 0.8).abs() < 1e-12);
        assert_eq!(ts.last(), Some((t(2), 0.6)));
        assert_eq!(ts.name(), "sla");
    }

    #[test]
    #[should_panic(expected = "time order")]
    #[cfg(debug_assertions)]
    fn out_of_order_panics_in_debug() {
        let mut ts = TimeSeries::new("x");
        ts.record(t(5), 1.0);
        ts.record(t(4), 1.0);
    }

    #[test]
    fn window_mean() {
        let mut ts = TimeSeries::new("w");
        for i in 0..10 {
            ts.record(t(i), i as f64);
        }
        assert!((ts.mean_in_window(t(2), t(5)) - 3.0).abs() < 1e-12);
        assert_eq!(ts.mean_in_window(t(50), t(60)), 0.0);
    }

    #[test]
    fn time_weighted_mean_of_step_signal() {
        let mut ts = TimeSeries::new("power");
        ts.record(t(0), 100.0); // holds 10 min
        ts.record(t(10), 0.0); // holds 10 min
        let twm = ts.time_weighted_mean(t(20));
        assert!((twm - 50.0).abs() < 1e-9);
    }

    #[test]
    fn resample_means_buckets() {
        let mut ts = TimeSeries::new("r");
        for i in 0..6 {
            ts.record(t(i), i as f64);
        }
        let r = ts.resample(SimDuration::from_mins(2));
        assert_eq!(r.len(), 3);
        assert!((r[0].1 - 0.5).abs() < 1e-12);
        assert!((r[2].1 - 4.5).abs() < 1e-12);
    }

    #[test]
    fn series_set_csv() {
        let mut set = SeriesSet::new();
        set.record("a", t(0), 1.0);
        set.record("b", t(1), 2.0);
        set.record("a", t(1), 3.0);
        let csv = set.to_csv();
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines[0], "minutes,a,b");
        assert_eq!(lines[1], "0,1,");
        assert_eq!(lines[2], "1,3,2");
        assert_eq!(set.names().collect::<Vec<_>>(), vec!["a", "b"]);
    }
}
