//! Deterministic parallel sweeps.
//!
//! Every experiment driver in the workspace fans out independent,
//! seed-derived computations (sweep points, comparison arms, per-target
//! model training). Before this module each driver hand-rolled its own
//! scoped-thread boilerplate; now they all share one helper with two
//! guarantees:
//!
//! 1. **Determinism** — results are returned in input order, and each
//!    item's computation must derive its randomness from its own input
//!    (a seed, a derived [`crate::rng::RngStream`]), so a parallel sweep
//!    is bit-identical to a sequential one regardless of interleaving.
//! 2. **Bounded threads, dynamic balancing** — at most
//!    `available_parallelism` workers claim items one at a time from a
//!    shared counter, so a 1000-point sweep does not spawn 1000 threads
//!    and a sweep whose points grow in cost (the common
//!    small-to-large-instance shape) does not strand all the expensive
//!    work on one worker.
//!
//! Built on `std::thread::scope`; a worker panic propagates to the
//! caller (same behaviour the previous `crossbeam::thread::scope` code
//! had via `join().expect(..)`).
//!
//! ## Worker context propagation
//!
//! Thread-local ambient state (the `pamdc_obs` collector, notably) does
//! not cross `thread::scope` boundaries on its own, so counters bumped
//! inside a worker would silently vanish at `--jobs > 1` while showing
//! up at `--jobs 1` — a determinism hole. [`register_worker_context`]
//! lets exactly one interested crate install a *capture* function: it
//! runs on the calling thread right before workers spawn, and the
//! installer it returns runs once at the start of every worker (and of
//! [`join`]'s spawned arm). The sequential fallbacks never capture —
//! they already run on the calling thread with its context intact.

/// Installs captured calling-thread context into a worker thread.
pub type ContextInstaller = Box<dyn Fn() + Send + Sync>;

static WORKER_CONTEXT: std::sync::OnceLock<fn() -> Option<ContextInstaller>> =
    std::sync::OnceLock::new();

/// Registers the process-wide context capture hook. First caller wins;
/// later registrations are ignored (the hook is a singleton seam, not a
/// subscriber list).
pub fn register_worker_context(capture: fn() -> Option<ContextInstaller>) {
    let _ = WORKER_CONTEXT.set(capture);
}

fn capture_worker_context() -> Option<ContextInstaller> {
    WORKER_CONTEXT.get().and_then(|capture| capture())
}

/// The worker count a sweep actually runs with, after clamping the
/// hardware budget by the item count, the caller's explicit bound, and
/// the `PAMDC_PAR_WORKERS` environment override (whichever is
/// smallest wins; zero and unparsable values are ignored). Pure so the
/// clamping chain is testable without spawning threads. Determinism is
/// unaffected by any of the knobs — results are placed by input index.
pub fn effective_workers(
    items: usize,
    hardware: usize,
    max_workers: Option<usize>,
    env_cap: Option<usize>,
) -> usize {
    hardware
        .max(1)
        .min(items)
        .min(max_workers.unwrap_or(usize::MAX).max(1))
        .min(env_cap.filter(|&c| c > 0).unwrap_or(usize::MAX))
}

fn env_worker_cap() -> Option<usize> {
    std::env::var("PAMDC_PAR_WORKERS")
        .ok()
        .and_then(|v| v.trim().parse::<usize>().ok())
}

/// Maps `f` over `items` in parallel, preserving input order.
///
/// `f` must be deterministic given its item (derive all randomness from
/// the item itself). With one item, or when only one hardware thread is
/// available, the sweep degenerates to a sequential loop — same results
/// either way.
pub fn parallel_map<T, R, F>(items: Vec<T>, f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(T) -> R + Sync,
{
    parallel_map_bounded(items, None, f)
}

/// [`parallel_map`] with an explicit worker budget: at most
/// `max_workers` threads run concurrently (`None` = one per hardware
/// thread). Campaigns whose runs are individually parallel (or memory
/// hungry) cap the fan-out with this instead of oversubscribing the
/// host. The `PAMDC_PAR_WORKERS` environment variable further caps the
/// fan-out (the smallest of hardware, `max_workers`, and the env value
/// wins) — the CI multi-core lane uses it to pin a run to N workers
/// without threading a flag through every driver. Determinism is
/// unaffected — results are placed by input index, so any budget
/// produces bit-identical output.
pub fn parallel_map_bounded<T, R, F>(items: Vec<T>, max_workers: Option<usize>, f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(T) -> R + Sync,
{
    let n = items.len();
    if n <= 1 {
        return items.into_iter().map(f).collect();
    }
    let hardware = std::thread::available_parallelism()
        .map(|p| p.get())
        .unwrap_or(1);
    let workers = effective_workers(n, hardware, max_workers, env_worker_cap());
    if workers <= 1 {
        return items.into_iter().map(f).collect();
    }

    // Each worker claims the next unprocessed index from a shared
    // counter (dynamic balancing: a sweep ordered cheap-to-expensive
    // still spreads its expensive tail across workers) and returns
    // `(index, result)` pairs; results are then placed by index, so
    // output order is input order regardless of scheduling.
    let items: Vec<std::sync::Mutex<Option<T>>> = items
        .into_iter()
        .map(|t| std::sync::Mutex::new(Some(t)))
        .collect();
    let next = std::sync::atomic::AtomicUsize::new(0);
    let mut slots: Vec<Option<R>> = Vec::with_capacity(n);
    slots.resize_with(n, || None);

    let ctx = capture_worker_context();
    std::thread::scope(|scope| {
        let (f, items, next, ctx) = (&f, &items, &next, &ctx);
        let handles: Vec<_> = (0..workers)
            .map(|_| {
                scope.spawn(move || {
                    if let Some(install) = ctx {
                        install();
                    }
                    let mut produced: Vec<(usize, R)> = Vec::new();
                    loop {
                        let i = next.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                        if i >= items.len() {
                            break;
                        }
                        let item = items[i]
                            .lock()
                            .expect("item slot poisoned")
                            .take()
                            .expect("each item is claimed exactly once");
                        produced.push((i, f(item)));
                    }
                    produced
                })
            })
            .collect();
        for h in handles {
            for (i, r) in h.join().expect("parallel_map worker panicked") {
                slots[i] = Some(r);
            }
        }
    });

    slots
        .into_iter()
        .map(|s| s.expect("worker filled every slot"))
        .collect()
}

/// Runs two independent computations on two threads and returns both
/// results — the two-arm experiment pattern (static vs dynamic,
/// sun-aware vs price-blind, ...).
pub fn join<RA, RB>(a: impl FnOnce() -> RA + Send, b: impl FnOnce() -> RB + Send) -> (RA, RB)
where
    RA: Send,
    RB: Send,
{
    let ctx = capture_worker_context();
    std::thread::scope(|scope| {
        let ha = scope.spawn(move || {
            if let Some(install) = &ctx {
                install();
            }
            a()
        });
        let rb = b();
        (ha.join().expect("parallel arm panicked"), rb)
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preserves_input_order() {
        let out = parallel_map((0..100).collect::<Vec<_>>(), |i| i * 2);
        assert_eq!(out, (0..100).map(|i| i * 2).collect::<Vec<_>>());
    }

    #[test]
    fn matches_sequential_map() {
        let items: Vec<u64> = (0..37).collect();
        let seq: Vec<u64> = items.iter().map(|&i| i.wrapping_mul(0x9E37_79B9)).collect();
        let par = parallel_map(items, |i| i.wrapping_mul(0x9E37_79B9));
        assert_eq!(seq, par);
    }

    #[test]
    fn bounded_budget_matches_unbounded() {
        let items: Vec<u64> = (0..23).collect();
        let unbounded = parallel_map(items.clone(), |i| i * 3 + 1);
        for jobs in [1usize, 2, 7, 64] {
            let bounded = parallel_map_bounded(items.clone(), Some(jobs), |i| i * 3 + 1);
            assert_eq!(bounded, unbounded, "jobs = {jobs}");
        }
        // A zero budget clamps to one worker instead of hanging.
        let one = parallel_map_bounded(items, Some(0), |i| i * 3 + 1);
        assert_eq!(one, unbounded);
    }

    #[test]
    fn effective_workers_takes_the_tightest_bound() {
        // Hardware bound.
        assert_eq!(effective_workers(100, 8, None, None), 8);
        // Item bound.
        assert_eq!(effective_workers(3, 8, None, None), 3);
        // Caller bound, with zero clamped to one.
        assert_eq!(effective_workers(100, 8, Some(2), None), 2);
        assert_eq!(effective_workers(100, 8, Some(0), None), 1);
        // Env bound, with zero/absent ignored.
        assert_eq!(effective_workers(100, 8, None, Some(4)), 4);
        assert_eq!(effective_workers(100, 8, None, Some(0)), 8);
        // Smallest of all wins.
        assert_eq!(effective_workers(100, 8, Some(6), Some(5)), 5);
        assert_eq!(effective_workers(100, 8, Some(3), Some(5)), 3);
        // Degenerate hardware report still runs one worker.
        assert_eq!(effective_workers(100, 0, None, None), 1);
    }

    #[test]
    fn env_capped_run_matches_unbounded() {
        // Env mutation is process-global: restore afterwards so other
        // tests in this binary never observe the cap.
        let items: Vec<u64> = (0..29).collect();
        let unbounded = parallel_map(items.clone(), |i| i * 5 + 3);
        std::env::set_var("PAMDC_PAR_WORKERS", "1");
        let capped = parallel_map(items, |i| i * 5 + 3);
        std::env::remove_var("PAMDC_PAR_WORKERS");
        assert_eq!(capped, unbounded);
    }

    #[test]
    fn handles_empty_and_single() {
        let empty: Vec<i32> = Vec::new();
        assert!(parallel_map(empty, |x: i32| x).is_empty());
        assert_eq!(parallel_map(vec![7], |x| x + 1), vec![8]);
    }

    #[test]
    fn join_runs_both_arms() {
        let (a, b) = join(|| 1 + 1, || "two");
        assert_eq!(a, 2);
        assert_eq!(b, "two");
    }

    // The panic surfaces as "boom" on the sequential fallback and as
    // "worker panicked" through a scoped join — either way it must not
    // be swallowed.
    #[test]
    #[should_panic]
    fn worker_panics_propagate() {
        let _ = parallel_map(vec![0, 1, 2, 3], |i| {
            if i == 2 {
                panic!("boom");
            }
            i
        });
    }
}
