//! Property-based tests for the simulation substrate.

use pamdc_simcore::prelude::*;
use proptest::prelude::*;

proptest! {
    /// Welford accumulation matches the naive two-pass formulas.
    #[test]
    fn online_stats_matches_naive(xs in proptest::collection::vec(-1e6f64..1e6, 1..200)) {
        let mut s = OnlineStats::new();
        s.extend(&xs);
        let n = xs.len() as f64;
        let mean = xs.iter().sum::<f64>() / n;
        let var = xs.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n;
        prop_assert!((s.mean() - mean).abs() <= 1e-6 * (1.0 + mean.abs()));
        prop_assert!((s.variance() - var).abs() <= 1e-4 * (1.0 + var.abs()));
        prop_assert_eq!(s.count(), xs.len() as u64);
    }

    /// Merging split accumulators equals accumulating the whole slice.
    #[test]
    fn merge_is_associative_with_split(
        xs in proptest::collection::vec(-1e4f64..1e4, 2..300),
        cut in 0usize..300,
    ) {
        let cut = cut.min(xs.len());
        let mut whole = OnlineStats::new();
        whole.extend(&xs);
        let mut a = OnlineStats::new();
        a.extend(&xs[..cut]);
        let mut b = OnlineStats::new();
        b.extend(&xs[cut..]);
        a.merge(&b);
        prop_assert_eq!(a.count(), whole.count());
        prop_assert!((a.mean() - whole.mean()).abs() < 1e-6 * (1.0 + whole.mean().abs()));
        prop_assert!((a.variance() - whole.variance()).abs() < 1e-4 * (1.0 + whole.variance()));
    }

    /// Pearson is bounded and symmetric.
    #[test]
    fn pearson_bounded_and_symmetric(
        pairs in proptest::collection::vec((-1e3f64..1e3, -1e3f64..1e3), 2..100)
    ) {
        let xs: Vec<f64> = pairs.iter().map(|p| p.0).collect();
        let ys: Vec<f64> = pairs.iter().map(|p| p.1).collect();
        let rxy = pearson(&xs, &ys);
        let ryx = pearson(&ys, &xs);
        prop_assert!((-1.0..=1.0).contains(&rxy));
        prop_assert!((rxy - ryx).abs() < 1e-9);
    }

    /// Percentile is monotone in q and bounded by min/max.
    #[test]
    fn percentile_monotone(
        xs in proptest::collection::vec(-1e3f64..1e3, 1..100),
        q1 in 0.0f64..1.0,
        q2 in 0.0f64..1.0,
    ) {
        let (lo, hi) = if q1 <= q2 { (q1, q2) } else { (q2, q1) };
        let p_lo = percentile(&xs, lo);
        let p_hi = percentile(&xs, hi);
        prop_assert!(p_lo <= p_hi + 1e-12);
        let min = xs.iter().cloned().fold(f64::INFINITY, f64::min);
        let max = xs.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        prop_assert!(p_lo >= min - 1e-12 && p_hi <= max + 1e-12);
    }

    /// The event queue always pops in (time, insertion) order.
    #[test]
    fn event_queue_is_a_stable_priority_queue(times in proptest::collection::vec(0u64..1000, 1..200)) {
        let mut q = EventQueue::new();
        for (i, &s) in times.iter().enumerate() {
            q.schedule(SimTime::from_secs(s), i);
        }
        let mut popped: Vec<(SimTime, usize)> = Vec::new();
        while let Some(p) = q.pop_next() {
            popped.push(p);
        }
        prop_assert_eq!(popped.len(), times.len());
        for w in popped.windows(2) {
            prop_assert!(w[0].0 <= w[1].0);
            if w[0].0 == w[1].0 {
                prop_assert!(w[0].1 < w[1].1, "FIFO tie-break violated");
            }
        }
    }

    /// SimTime arithmetic is consistent: (t + d) - t == d.
    #[test]
    fn time_add_sub_consistent(t in 0u64..1_000_000, d in 0u64..1_000_000) {
        let t0 = SimTime::from_millis(t);
        let dur = SimDuration::from_millis(d);
        prop_assert_eq!((t0 + dur) - t0, dur);
        prop_assert!((t0 + dur).as_millis() >= t0.as_millis());
    }

    /// Tick iterator lengths agree with SimDuration::ticks.
    #[test]
    fn tick_iter_len_matches(dur_mins in 1u64..2000, step_mins in 1u64..120) {
        let end = SimTime::from_mins(dur_mins);
        let step = SimDuration::from_mins(step_mins);
        let n = TickIter::new(SimTime::ZERO, end, step).count() as u64;
        let expect = dur_mins.div_ceil(step_mins);
        prop_assert_eq!(n, expect);
    }

    /// Derived RNG streams are deterministic functions of (seed, name).
    #[test]
    fn rng_streams_deterministic(seed in 0u64..u64::MAX, name in "[a-z]{1,12}") {
        let mut a = RngStream::root(seed).derive(&name);
        let mut b = RngStream::root(seed).derive(&name);
        for _ in 0..16 {
            prop_assert_eq!(a.uniform().to_bits(), b.uniform().to_bits());
        }
    }

    /// Distribution draws stay in their mathematical support.
    #[test]
    fn distributions_respect_support(seed in 0u64..u64::MAX) {
        let mut r = RngStream::root(seed);
        for _ in 0..100 {
            prop_assert!(r.exponential(1.3) >= 0.0);
            prop_assert!(r.pareto(5.0, 2.0) >= 5.0);
            prop_assert!(r.lognormal(0.0, 1.0) > 0.0);
        }
    }
}
