//! Inter-DC link bandwidth management.
//!
//! The paper assumes a fixed 10 Gbps pipe between any two DCs and defers
//! "networking costs and bandwidth management" to future work. This
//! module supplies that management: a [`LinkLoad`] tracker records the
//! background client traffic crossing each DC pair, and
//! [`crate::network::NetworkModel::migration_duration_shared`] stretches
//! migration transfers when the pipe is shared — by client traffic, by
//! other concurrent migrations, or both. A migration storm therefore
//! slows itself down, which is exactly the feedback a scheduler must
//! price when it considers bulk rebalancing.

use crate::ids::LocationId;

/// Background (client-traffic) utilization of every inter-DC link,
/// symmetric, in Gbps.
#[derive(Clone, Debug)]
pub struct LinkLoad {
    n: usize,
    gbps: Vec<f64>,
}

impl LinkLoad {
    /// A zeroed tracker over `n_locations` sites.
    pub fn new(n_locations: usize) -> Self {
        LinkLoad {
            n: n_locations,
            gbps: vec![0.0; n_locations * n_locations],
        }
    }

    /// Number of tracked locations.
    pub fn len(&self) -> usize {
        self.n
    }

    /// True when no locations are tracked.
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// Zeroes all links (start of a new accounting window).
    pub fn clear(&mut self) {
        self.gbps.fill(0.0);
    }

    /// Adds `gbps` of client traffic between `a` and `b` (symmetric;
    /// same-location traffic is intra-DC and ignored).
    pub fn add_client_gbps(&mut self, a: LocationId, b: LocationId, gbps: f64) {
        debug_assert!(gbps >= 0.0);
        let (i, j) = (a.index(), b.index());
        assert!(i < self.n && j < self.n, "location out of range");
        if i == j {
            return;
        }
        self.gbps[i * self.n + j] += gbps;
        self.gbps[j * self.n + i] += gbps;
    }

    /// Current client traffic between `a` and `b`, Gbps.
    #[inline]
    pub fn client_gbps(&self, a: LocationId, b: LocationId) -> f64 {
        let (i, j) = (a.index(), b.index());
        debug_assert!(i < self.n && j < self.n);
        self.gbps[i * self.n + j]
    }

    /// Total client traffic crossing any link, Gbps (each pair counted
    /// once).
    pub fn total_gbps(&self) -> f64 {
        let mut sum = 0.0;
        for i in 0..self.n {
            for j in (i + 1)..self.n {
                sum += self.gbps[i * self.n + j];
            }
        }
        sum
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const A: LocationId = LocationId(0);
    const B: LocationId = LocationId(1);
    const C: LocationId = LocationId(2);

    #[test]
    fn accumulates_symmetrically() {
        let mut l = LinkLoad::new(3);
        l.add_client_gbps(A, B, 1.5);
        l.add_client_gbps(B, A, 0.5);
        assert!((l.client_gbps(A, B) - 2.0).abs() < 1e-12);
        assert!((l.client_gbps(B, A) - 2.0).abs() < 1e-12);
        assert_eq!(l.client_gbps(A, C), 0.0);
        assert!((l.total_gbps() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn same_location_is_ignored() {
        let mut l = LinkLoad::new(2);
        l.add_client_gbps(A, A, 5.0);
        assert_eq!(l.total_gbps(), 0.0);
    }

    #[test]
    fn clear_resets() {
        let mut l = LinkLoad::new(2);
        l.add_client_gbps(A, B, 3.0);
        l.clear();
        assert_eq!(l.client_gbps(A, B), 0.0);
    }

    #[test]
    #[should_panic(expected = "location out of range")]
    fn out_of_range_panics() {
        let mut l = LinkLoad::new(2);
        l.add_client_gbps(A, LocationId(5), 1.0);
    }
}
