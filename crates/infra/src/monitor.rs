//! Resource monitors — the noisy lens through which schedulers see the
//! world.
//!
//! The paper motivates its ML models with exactly the failure modes
//! reproduced here (§IV-B): observed usage is distorted by the sampling
//! window and hypervisor stress, monitors themselves add overhead
//! ("monitors peaking up to 50% of an Atom CPU thread"), and — crucially —
//! a *starved* VM reports the usage it **got**, not the usage it
//! **needed**, which silently under-estimates demand under contention.
//! Plain Best-Fit consumes these observations; the ML variant learns to
//! predict true demand from load characteristics instead.

use crate::resources::Resources;
use pamdc_simcore::rng::RngStream;
use std::collections::VecDeque;

/// Monitor distortion parameters.
#[derive(Clone, Debug)]
pub struct MonitorConfig {
    /// Multiplicative Gaussian noise (fractional σ) on every component.
    pub noise_frac: f64,
    /// Probability per sample that the monitor itself spikes the CPU
    /// reading (the paper's "up to 50% of an Atom thread" observation).
    pub spike_prob: f64,
    /// Size of the CPU spike when it happens, percent-of-core.
    pub spike_cpu_pct: f64,
    /// Number of recent samples the sliding window averages over (the
    /// paper's schedulers look at "the last 10 minutes").
    pub window_len: usize,
    /// Probability per sample that the reading is lost entirely (agent
    /// crash, collection timeout) and never reaches the scheduler's
    /// sizing window.
    pub dropout_prob: f64,
}

impl Default for MonitorConfig {
    fn default() -> Self {
        MonitorConfig {
            noise_frac: 0.05,
            spike_prob: 0.02,
            spike_cpu_pct: 50.0,
            window_len: 10,
            dropout_prob: 0.0,
        }
    }
}

impl MonitorConfig {
    /// A noiseless monitor (for ablations isolating observation error).
    pub fn perfect() -> Self {
        MonitorConfig {
            noise_frac: 0.0,
            spike_prob: 0.0,
            spike_cpu_pct: 0.0,
            window_len: 1,
            dropout_prob: 0.0,
        }
    }
}

/// Applies monitor distortion to one true usage sample.
pub fn observe(truth: &Resources, cfg: &MonitorConfig, rng: &mut RngStream) -> Resources {
    let jitter = |x: f64, rng: &mut RngStream| {
        if cfg.noise_frac <= 0.0 {
            x
        } else {
            (x * (1.0 + rng.normal(0.0, cfg.noise_frac))).max(0.0)
        }
    };
    let mut obs = Resources {
        cpu: jitter(truth.cpu, rng),
        mem_mb: jitter(truth.mem_mb, rng),
        net_in_kbps: jitter(truth.net_in_kbps, rng),
        net_out_kbps: jitter(truth.net_out_kbps, rng),
    };
    if cfg.spike_prob > 0.0 && rng.chance(cfg.spike_prob) {
        obs.cpu += rng.uniform_range(0.0, cfg.spike_cpu_pct);
    }
    obs
}

/// A fixed-length sliding window of resource observations with an O(1)
/// running mean — "what the monitors said over the last N samples".
#[derive(Clone, Debug)]
pub struct SlidingWindow {
    cap: usize,
    buf: VecDeque<Resources>,
    sum: Resources,
}

impl SlidingWindow {
    /// A window holding up to `cap` samples.
    pub fn new(cap: usize) -> Self {
        assert!(cap > 0, "window length must be positive");
        SlidingWindow {
            cap,
            buf: VecDeque::with_capacity(cap),
            sum: Resources::ZERO,
        }
    }

    /// Pushes a sample, evicting the oldest when full.
    pub fn push(&mut self, r: Resources) {
        if self.buf.len() == self.cap {
            let old = self.buf.pop_front().expect("window not empty");
            self.sum -= old;
        }
        self.buf.push_back(r);
        self.sum += r;
    }

    /// Number of samples currently held.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// True before any sample arrives.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Mean of the held samples (ZERO when empty).
    pub fn mean(&self) -> Resources {
        if self.buf.is_empty() {
            Resources::ZERO
        } else {
            self.sum * (1.0 / self.buf.len() as f64)
        }
    }

    /// Component-wise max over the held samples (ZERO when empty) —
    /// the conservative sizing some operators use instead of the mean.
    pub fn peak(&self) -> Resources {
        self.buf.iter().fold(Resources::ZERO, |acc, r| acc.max(r))
    }

    /// The newest sample, if any.
    pub fn latest(&self) -> Option<Resources> {
        self.buf.back().copied()
    }

    /// Drops all samples (e.g. after a migration invalidates history).
    pub fn clear(&mut self) {
        self.buf.clear();
        self.sum = Resources::ZERO;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn r(cpu: f64) -> Resources {
        Resources::new(cpu, 512.0, 10.0, 20.0)
    }

    #[test]
    fn perfect_monitor_is_identity() {
        let mut rng = RngStream::root(1);
        let truth = r(123.0);
        let obs = observe(&truth, &MonitorConfig::perfect(), &mut rng);
        assert_eq!(obs, truth);
    }

    #[test]
    fn noisy_monitor_is_unbiased_on_average() {
        let mut rng = RngStream::root(2);
        let cfg = MonitorConfig {
            noise_frac: 0.1,
            spike_prob: 0.0,
            ..Default::default()
        };
        let truth = r(200.0);
        let n = 20_000;
        let mean: f64 = (0..n)
            .map(|_| observe(&truth, &cfg, &mut rng).cpu)
            .sum::<f64>()
            / n as f64;
        assert!((mean - 200.0).abs() < 2.0, "mean {mean}");
    }

    #[test]
    fn spikes_inflate_cpu_only() {
        let mut rng = RngStream::root(3);
        let cfg = MonitorConfig {
            noise_frac: 0.0,
            spike_prob: 1.0,
            spike_cpu_pct: 50.0,
            ..MonitorConfig::perfect()
        };
        let truth = r(100.0);
        let obs = observe(&truth, &cfg, &mut rng);
        assert!(obs.cpu > 100.0);
        assert_eq!(obs.mem_mb, truth.mem_mb);
    }

    #[test]
    fn observations_never_negative() {
        let mut rng = RngStream::root(4);
        let cfg = MonitorConfig {
            noise_frac: 2.0,
            ..Default::default()
        };
        for _ in 0..1000 {
            let obs = observe(&r(1.0), &cfg, &mut rng);
            assert!(obs.is_valid(), "{obs:?}");
        }
    }

    #[test]
    fn sliding_window_mean_and_eviction() {
        let mut w = SlidingWindow::new(3);
        assert!(w.is_empty());
        assert_eq!(w.mean(), Resources::ZERO);
        w.push(r(10.0));
        w.push(r(20.0));
        assert_eq!(w.len(), 2);
        assert!((w.mean().cpu - 15.0).abs() < 1e-9);
        w.push(r(30.0));
        w.push(r(40.0)); // evicts 10
        assert_eq!(w.len(), 3);
        assert!((w.mean().cpu - 30.0).abs() < 1e-9);
        assert_eq!(w.latest().unwrap().cpu, 40.0);
        assert_eq!(w.peak().cpu, 40.0);
        w.clear();
        assert!(w.is_empty());
    }

    #[test]
    fn window_sum_stays_consistent_after_many_pushes() {
        let mut w = SlidingWindow::new(5);
        for i in 0..1000 {
            w.push(r(i as f64));
        }
        // Window holds 995..=999 -> mean 997.
        assert!((w.mean().cpu - 997.0).abs() < 1e-6);
    }
}
