//! The host power model.
//!
//! The paper measured an Intel Atom 4-core machine: 29.1 W with one active
//! core, then only 30.4 / 31.3 / 31.8 W with 2 / 3 / 4 active cores — the
//! strongly sub-linear curve that makes consolidation profitable. It also
//! notes that "for each 2 watts consumed by the machine, an extra watt is
//! required for cooling", i.e. facility draw = 1.5 × IT draw.
//!
//! [`PowerModel`] reproduces exactly that: a per-active-core step curve
//! with linear interpolation inside a core (CPU% between core counts), an
//! idle floor for a switched-on-but-empty host, full draw while booting
//! (machines burn power before they serve), and the cooling multiplier.
//! [`EnergyMeter`] integrates watts over simulated time into watt-hours.

use pamdc_simcore::time::SimDuration;

/// Power curve of a physical machine.
#[derive(Clone, Debug, PartialEq)]
pub struct PowerModel {
    /// Watts drawn by a powered-on host with no load (0 active cores).
    pub idle_watts: f64,
    /// Watts drawn when `i+1` cores are active (the paper's measured
    /// 29.1 / 30.4 / 31.3 / 31.8 for the Atom).
    pub active_core_watts: Vec<f64>,
    /// Facility multiplier for cooling: paper says 1 extra watt per 2
    /// consumed, i.e. 1.5.
    pub cooling_factor: f64,
}

impl PowerModel {
    /// The paper's measured Intel Atom 4-core curve.
    pub fn atom_4core() -> Self {
        PowerModel {
            // Not reported in the paper; chosen just below the 1-core
            // measurement, consistent with Atom-class boards of the era.
            idle_watts: 27.0,
            active_core_watts: vec![29.1, 30.4, 31.3, 31.8],
            cooling_factor: 1.5,
        }
    }

    /// A hypothetical higher-power Xeon-like curve used by tests and
    /// heterogeneity experiments (steeper idle, more linear growth).
    pub fn xeon_8core() -> Self {
        PowerModel {
            idle_watts: 110.0,
            active_core_watts: vec![140.0, 165.0, 185.0, 202.0, 217.0, 230.0, 241.0, 250.0],
            cooling_factor: 1.5,
        }
    }

    /// Number of cores this curve describes.
    pub fn cores(&self) -> usize {
        self.active_core_watts.len()
    }

    /// IT (non-cooling) watts for a given CPU usage, in percent-of-core
    /// (e.g. 250.0 = 2.5 cores busy). Interpolates linearly between the
    /// step levels; clamps above the curve's top.
    pub fn it_watts(&self, cpu_pct: f64) -> f64 {
        let cpu = cpu_pct.max(0.0);
        if cpu <= f64::EPSILON {
            return self.idle_watts;
        }
        let full = (cpu / 100.0).floor() as usize; // fully active cores
        let frac = cpu / 100.0 - full as f64;
        let n = self.cores();
        if full >= n {
            return self.active_core_watts[n - 1];
        }
        let below = if full == 0 {
            self.idle_watts
        } else {
            self.active_core_watts[full - 1]
        };
        let above = self.active_core_watts[full];
        below + (above - below) * frac
    }

    /// Total facility watts (IT + cooling) at the given CPU usage.
    pub fn facility_watts(&self, cpu_pct: f64) -> f64 {
        self.it_watts(cpu_pct) * self.cooling_factor
    }

    /// Facility watts drawn while the host boots or shuts down — the full
    /// single-core draw (the machine is busy doing no useful work).
    pub fn transition_watts(&self) -> f64 {
        self.active_core_watts
            .first()
            .copied()
            .unwrap_or(self.idle_watts)
            * self.cooling_factor
    }
}

/// Accumulates energy (watt-hours) and its monetary value over time.
#[derive(Clone, Debug, Default)]
pub struct EnergyMeter {
    wh: f64,
    cost_eur: f64,
}

impl EnergyMeter {
    /// A zeroed meter.
    pub fn new() -> Self {
        Self::default()
    }

    /// Integrates `watts` held constant for `dt`, billed at
    /// `eur_per_kwh`.
    pub fn accumulate(&mut self, watts: f64, dt: SimDuration, eur_per_kwh: f64) {
        let wh = watts * dt.as_hours_f64();
        self.wh += wh;
        self.cost_eur += wh / 1000.0 * eur_per_kwh;
    }

    /// Total watt-hours so far.
    pub fn watt_hours(&self) -> f64 {
        self.wh
    }

    /// Total energy cost so far, euro.
    pub fn cost_eur(&self) -> f64 {
        self.cost_eur
    }

    /// Merges another meter (parallel runs).
    pub fn merge(&mut self, other: &EnergyMeter) {
        self.wh += other.wh;
        self.cost_eur += other.cost_eur;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_step_levels() {
        let p = PowerModel::atom_4core();
        assert!((p.it_watts(100.0) - 29.1).abs() < 1e-9);
        assert!((p.it_watts(200.0) - 30.4).abs() < 1e-9);
        assert!((p.it_watts(300.0) - 31.3).abs() < 1e-9);
        assert!((p.it_watts(400.0) - 31.8).abs() < 1e-9);
    }

    #[test]
    fn idle_floor_and_interpolation() {
        let p = PowerModel::atom_4core();
        assert_eq!(p.it_watts(0.0), 27.0);
        let half_core = p.it_watts(50.0);
        assert!(half_core > 27.0 && half_core < 29.1);
        let mid = p.it_watts(150.0);
        assert!((mid - (29.1 + 30.4) / 2.0).abs() < 1e-9);
    }

    #[test]
    fn clamps_above_curve() {
        let p = PowerModel::atom_4core();
        assert_eq!(p.it_watts(900.0), 31.8);
        assert_eq!(p.it_watts(-5.0), 27.0);
    }

    #[test]
    fn monotone_in_cpu() {
        let p = PowerModel::atom_4core();
        let mut last = 0.0;
        for i in 0..=40 {
            let w = p.it_watts(i as f64 * 10.0);
            assert!(w >= last, "power must be monotone in cpu");
            last = w;
        }
    }

    #[test]
    fn consolidation_pays_the_paper_example() {
        // Two machines one core each vs one machine two cores: the single
        // consolidated host must draw much less in total.
        let p = PowerModel::atom_4core();
        let two_hosts = 2.0 * p.it_watts(100.0);
        let one_host = p.it_watts(200.0);
        assert!(one_host < two_hosts * 0.6, "{one_host} vs {two_hosts}");
    }

    #[test]
    fn cooling_factor_applied() {
        let p = PowerModel::atom_4core();
        assert!((p.facility_watts(100.0) - 29.1 * 1.5).abs() < 1e-9);
        assert!((p.transition_watts() - 29.1 * 1.5).abs() < 1e-9);
    }

    #[test]
    fn meter_integrates() {
        let mut m = EnergyMeter::new();
        m.accumulate(100.0, SimDuration::from_mins(30), 0.2);
        assert!((m.watt_hours() - 50.0).abs() < 1e-9);
        assert!((m.cost_eur() - 0.05 * 0.2).abs() < 1e-9);
        let mut m2 = EnergyMeter::new();
        m2.accumulate(100.0, SimDuration::from_mins(30), 0.2);
        m.merge(&m2);
        assert!((m.watt_hours() - 100.0).abs() < 1e-9);
    }

    #[test]
    fn xeon_curve_sane() {
        let p = PowerModel::xeon_8core();
        assert_eq!(p.cores(), 8);
        assert!(p.it_watts(800.0) > p.it_watts(100.0));
    }
}
