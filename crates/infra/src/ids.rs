//! Typed identifiers for the infrastructure entities.
//!
//! Plain `u32` indices wrapped in newtypes so the compiler keeps VM, PM,
//! datacenter and location handles from being mixed up. All IDs are dense
//! indices into the owning [`crate::cluster::Cluster`] vectors, which keeps
//! lookups O(1) without hashing.

use std::fmt;

macro_rules! id_type {
    ($(#[$doc:meta])* $name:ident, $tag:literal) => {
        $(#[$doc])*
        #[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
        pub struct $name(pub u32);

        impl $name {
            /// The dense index this ID wraps.
            #[inline]
            pub const fn index(self) -> usize {
                self.0 as usize
            }

            /// Builds an ID from a dense index.
            #[inline]
            pub fn from_index(i: usize) -> Self {
                $name(u32::try_from(i).expect(concat!($tag, " index overflow")))
            }
        }

        impl fmt::Debug for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!($tag, "{}"), self.0)
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!($tag, "{}"), self.0)
            }
        }
    };
}

id_type!(
    /// A virtual machine (one hosted web-service).
    VmId,
    "vm"
);
id_type!(
    /// A physical machine (host).
    PmId,
    "pm"
);
id_type!(
    /// A datacenter.
    DcId,
    "dc"
);
id_type!(
    /// A geographic location / client population (the paper's "load
    /// source"); each datacenter sits at one location and each location
    /// generates client requests.
    LocationId,
    "loc"
);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_index() {
        let vm = VmId::from_index(7);
        assert_eq!(vm.index(), 7);
        assert_eq!(format!("{vm}"), "vm7");
        assert_eq!(format!("{vm:?}"), "vm7");
    }

    #[test]
    fn ids_are_ordered() {
        assert!(PmId(1) < PmId(2));
        assert_eq!(DcId(3), DcId(3));
    }
}
