//! The multi-DC cluster: owner of all datacenters, hosts, VMs, the
//! network model, the placement map and in-flight migrations.
//!
//! `Cluster` is the single mutable world-state the simulation loop drives.
//! Schedulers never touch it directly — they receive an immutable snapshot
//! (built by `pamdc-sched`) and return a target schedule; the manager then
//! applies the diff through [`Cluster::migrate`] / power management calls.

use crate::bandwidth::LinkLoad;
use crate::datacenter::DataCenter;
use crate::ids::{DcId, LocationId, PmId, VmId};
use crate::migration::Migration;
use crate::network::NetworkModel;
use crate::pm::{MachineSpec, PhysicalMachine};
use crate::resources::Resources;
use crate::vm::{VirtualMachine, VmSpec};
use pamdc_simcore::time::SimTime;

/// The complete infrastructure state.
#[derive(Clone, Debug)]
pub struct Cluster {
    dcs: Vec<DataCenter>,
    pms: Vec<PhysicalMachine>,
    vms: Vec<VirtualMachine>,
    /// The provider network.
    pub net: NetworkModel,
    /// Background client traffic per inter-DC link (set by the manager
    /// each tick; migrations share the pipe with it).
    pub link_load: LinkLoad,
    placement: Vec<Option<PmId>>,
    in_flight: Vec<Migration>,
}

impl Cluster {
    /// An empty cluster over the given network model.
    pub fn new(net: NetworkModel) -> Self {
        let n_locations = net.latency.len();
        Cluster {
            dcs: Vec::new(),
            pms: Vec::new(),
            vms: Vec::new(),
            net,
            link_load: LinkLoad::new(n_locations),
            placement: Vec::new(),
            in_flight: Vec::new(),
        }
    }

    // ------------------------------------------------------------------
    // Construction
    // ------------------------------------------------------------------

    /// Adds a datacenter.
    pub fn add_datacenter(
        &mut self,
        name: impl Into<String>,
        location: LocationId,
        energy_price_eur_kwh: f64,
    ) -> DcId {
        let id = DcId::from_index(self.dcs.len());
        self.dcs
            .push(DataCenter::new(id, name, location, energy_price_eur_kwh));
        id
    }

    /// Adds a host to a datacenter (initially powered off).
    pub fn add_pm(&mut self, dc: DcId, spec: MachineSpec) -> PmId {
        let id = PmId::from_index(self.pms.len());
        self.pms.push(PhysicalMachine::new(id, dc, spec));
        self.dcs[dc.index()].add_pm(id);
        id
    }

    /// Adds a VM (initially unplaced).
    pub fn add_vm(&mut self, spec: VmSpec, home: LocationId) -> VmId {
        let id = VmId::from_index(self.vms.len());
        self.vms.push(VirtualMachine::new(id, spec, home));
        self.placement.push(None);
        id
    }

    /// Initial deployment of an unplaced VM onto a host: no migration
    /// cost, host powered on if needed (boot completes instantly only if
    /// it was already on).
    pub fn deploy(&mut self, vm: VmId, pm: PmId, now: SimTime) {
        assert!(
            self.placement[vm.index()].is_none(),
            "{vm} is already placed"
        );
        self.pms[pm.index()].power_on(now);
        self.pms[pm.index()].attach(vm);
        self.placement[vm.index()] = Some(pm);
    }

    // ------------------------------------------------------------------
    // Accessors
    // ------------------------------------------------------------------

    /// All datacenters.
    pub fn dcs(&self) -> &[DataCenter] {
        &self.dcs
    }

    /// All hosts.
    pub fn pms(&self) -> &[PhysicalMachine] {
        &self.pms
    }

    /// All VMs.
    pub fn vms(&self) -> &[VirtualMachine] {
        &self.vms
    }

    /// One datacenter.
    pub fn dc(&self, id: DcId) -> &DataCenter {
        &self.dcs[id.index()]
    }

    /// One host.
    pub fn pm(&self, id: PmId) -> &PhysicalMachine {
        &self.pms[id.index()]
    }

    /// One host, mutably (power management).
    pub fn pm_mut(&mut self, id: PmId) -> &mut PhysicalMachine {
        &mut self.pms[id.index()]
    }

    /// One VM.
    pub fn vm(&self, id: VmId) -> &VirtualMachine {
        &self.vms[id.index()]
    }

    /// Number of datacenters.
    pub fn dc_count(&self) -> usize {
        self.dcs.len()
    }

    /// Number of hosts.
    pub fn pm_count(&self) -> usize {
        self.pms.len()
    }

    /// Number of VMs.
    pub fn vm_count(&self) -> usize {
        self.vms.len()
    }

    /// Current host of a VM (its destination while migrating).
    pub fn placement(&self, vm: VmId) -> Option<PmId> {
        self.placement[vm.index()]
    }

    /// The full placement map, indexed by VM.
    pub fn placement_map(&self) -> &[Option<PmId>] {
        &self.placement
    }

    /// Datacenter of a host.
    pub fn dc_of_pm(&self, pm: PmId) -> DcId {
        self.pms[pm.index()].dc
    }

    /// Location of a host (its DC's location).
    pub fn location_of_pm(&self, pm: PmId) -> LocationId {
        self.dcs[self.pms[pm.index()].dc.index()].location
    }

    /// Energy price billed to a host, €/kWh.
    pub fn energy_price_of_pm(&self, pm: PmId) -> f64 {
        self.dcs[self.pms[pm.index()].dc.index()].energy_price_eur_kwh
    }

    /// Location of the VM's current host, if placed.
    pub fn location_of_vm(&self, vm: VmId) -> Option<LocationId> {
        self.placement(vm).map(|pm| self.location_of_pm(pm))
    }

    /// In-flight migrations.
    pub fn in_flight(&self) -> &[Migration] {
        &self.in_flight
    }

    /// Count of hosts currently drawing power (anything but `Off` or
    /// crashed).
    pub fn powered_pm_count(&self) -> usize {
        self.pms
            .iter()
            .filter(|p| {
                !matches!(
                    p.state(),
                    crate::pm::PmState::Off | crate::pm::PmState::Failed { .. }
                )
            })
            .count()
    }

    /// Crashes a host (failure injection). Hosted VMs stay attached and
    /// are blacked out until migrated away or the repair completes.
    pub fn fail_pm(
        &mut self,
        pm: PmId,
        now: SimTime,
        repair_after: pamdc_simcore::time::SimDuration,
    ) {
        self.pms[pm.index()].fail(now, repair_after);
    }

    // ------------------------------------------------------------------
    // Mutation
    // ------------------------------------------------------------------

    /// Starts migrating `vm` to host `to`. Returns the migration record,
    /// or `None` when the VM is already on `to` or currently in flight.
    /// Capacity accounting moves to the destination immediately (the image
    /// must fit there for the restore), and the VM serves nothing until
    /// [`Migration::completes`].
    pub fn migrate(&mut self, vm: VmId, to: PmId, now: SimTime) -> Option<Migration> {
        let from = self.placement(vm).expect("cannot migrate an unplaced VM");
        if from == to || self.vms[vm.index()].is_migrating() {
            return None;
        }
        let from_loc = self.location_of_pm(from);
        let to_loc = self.location_of_pm(to);
        // This transfer shares its link with every in-flight migration on
        // the same location pair and with the tick's client traffic.
        let concurrent = 1 + self
            .in_flight
            .iter()
            .filter(|m| {
                let (a, b) = (self.location_of_pm(m.from), self.location_of_pm(m.to));
                (a, b) == (from_loc, to_loc) || (b, a) == (from_loc, to_loc)
            })
            .count();
        let client_gbps = if from_loc == to_loc {
            0.0
        } else {
            self.link_load.client_gbps(from_loc, to_loc)
        };
        let dur = self.net.migration_duration_shared(
            self.vms[vm.index()].spec.image_size_mb,
            from_loc,
            to_loc,
            concurrent,
            client_gbps,
        );
        let completes = now + dur;

        self.pms[from.index()].detach(vm);
        self.pms[to.index()].power_on(now);
        self.pms[to.index()].attach(vm);
        self.placement[vm.index()] = Some(to);
        self.vms[vm.index()].begin_migration(from, to, completes);

        let mig = Migration {
            vm,
            from,
            to,
            started: now,
            completes,
            cross_dc: self.dc_of_pm(from) != self.dc_of_pm(to),
        };
        self.in_flight.push(mig);
        Some(mig)
    }

    /// Advances host state machines and completes due migrations.
    /// Returns the migrations that finished at or before `now`.
    pub fn tick(&mut self, now: SimTime) -> Vec<Migration> {
        for pm in &mut self.pms {
            pm.tick_state(now);
        }
        let mut done = Vec::new();
        self.in_flight.retain(|m| {
            if now >= m.completes {
                done.push(*m);
                false
            } else {
                true
            }
        });
        for m in &done {
            let arrived = self.vms[m.vm.index()].try_complete_migration(now);
            debug_assert_eq!(arrived, Some(m.to), "migration completion mismatch");
        }
        done
    }

    /// Powers on a host (no-op if already on/booting).
    pub fn ensure_on(&mut self, pm: PmId, now: SimTime) {
        self.pms[pm.index()].power_on(now);
    }

    /// Requests shutdown of every empty, on host **except** those listed
    /// in `keep` (e.g. one warm spare per DC). Returns how many shutdowns
    /// were issued.
    pub fn power_off_idle(&mut self, now: SimTime, keep: &[PmId]) -> usize {
        let mut n = 0;
        for pm in &mut self.pms {
            if pm.is_on() && pm.hosted().is_empty() && !keep.contains(&pm.id) {
                pm.request_shutdown(now);
                n += 1;
            }
        }
        n
    }

    // ------------------------------------------------------------------
    // Capacity accounting
    // ------------------------------------------------------------------

    /// Aggregate demand on a host: the sum of `demand_of` over hosted VMs
    /// plus the hypervisor CPU overhead.
    pub fn pm_used(&self, pm: PmId, demand_of: impl Fn(VmId) -> Resources) -> Resources {
        let host = &self.pms[pm.index()];
        let mut used: Resources = host.hosted().iter().map(|&v| demand_of(v)).sum();
        used.cpu += host.virt_overhead_cpu();
        used
    }

    /// Free capacity on a host under the given demand function (clamped
    /// at zero component-wise).
    pub fn pm_free(&self, pm: PmId, demand_of: impl Fn(VmId) -> Resources) -> Resources {
        let cap = self.pms[pm.index()].spec.capacity;
        cap.saturating_sub(&self.pm_used(pm, demand_of))
    }

    // ------------------------------------------------------------------
    // Invariants
    // ------------------------------------------------------------------

    /// Verifies structural consistency; panics with a description on
    /// violation. Used by tests and (in debug builds) by the manager after
    /// every scheduling round.
    pub fn check_invariants(&self) {
        // Every placed VM appears exactly once across all hosted lists.
        let mut seen = vec![0u32; self.vms.len()];
        for pm in &self.pms {
            for &vm in pm.hosted() {
                seen[vm.index()] += 1;
                assert_eq!(
                    self.placement[vm.index()],
                    Some(pm.id),
                    "{vm} hosted on {} but placement says {:?}",
                    pm.id,
                    self.placement[vm.index()]
                );
            }
        }
        for (i, &count) in seen.iter().enumerate() {
            let vm = VmId::from_index(i);
            match self.placement[i] {
                Some(_) => assert_eq!(count, 1, "{vm} must be hosted exactly once, found {count}"),
                None => assert_eq!(count, 0, "unplaced {vm} must not appear in any hosted list"),
            }
        }
        // Hosts never report VMs while off.
        for pm in &self.pms {
            if matches!(pm.state(), crate::pm::PmState::Off) {
                assert!(pm.hosted().is_empty(), "{} is off but hosts VMs", pm.id);
            }
        }
        // In-flight migrations reference migrating VMs placed at their
        // destination.
        for m in &self.in_flight {
            assert!(
                self.vms[m.vm.index()].is_migrating(),
                "{} not migrating",
                m.vm
            );
            assert_eq!(self.placement[m.vm.index()], Some(m.to));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pamdc_simcore::time::SimDuration;

    /// Two DCs, two Atom hosts each, three VMs deployed on dc0.
    fn fixture() -> Cluster {
        let mut c = Cluster::new(NetworkModel::paper());
        let d0 = c.add_datacenter("BCN", crate::network::City::Barcelona.location(), 0.1513);
        let d1 = c.add_datacenter("BST", crate::network::City::Boston.location(), 0.1120);
        for _ in 0..2 {
            c.add_pm(d0, MachineSpec::atom());
            c.add_pm(d1, MachineSpec::atom());
        }
        for _ in 0..3 {
            c.add_vm(
                VmSpec::web_service(),
                crate::network::City::Barcelona.location(),
            );
        }
        let now = SimTime::ZERO;
        c.deploy(VmId(0), PmId(0), now);
        c.deploy(VmId(1), PmId(0), now);
        c.deploy(VmId(2), PmId(2), now);
        // Finish boots.
        c.tick(SimTime::from_mins(5));
        c
    }

    #[test]
    fn construction_and_lookup() {
        let c = fixture();
        assert_eq!(c.dc_count(), 2);
        assert_eq!(c.pm_count(), 4);
        assert_eq!(c.vm_count(), 3);
        assert_eq!(c.placement(VmId(0)), Some(PmId(0)));
        assert_eq!(c.dc_of_pm(PmId(1)), DcId(1));
        assert_eq!(
            c.location_of_vm(VmId(2)),
            Some(crate::network::City::Barcelona.location())
        );
        assert!((c.energy_price_of_pm(PmId(1)) - 0.1120).abs() < 1e-12);
        c.check_invariants();
    }

    #[test]
    fn migration_moves_capacity_immediately_but_blacks_out() {
        let mut c = fixture();
        let now = SimTime::from_mins(10);
        let mig = c.migrate(VmId(0), PmId(1), now).expect("migration starts");
        assert!(mig.cross_dc);
        assert_eq!(c.placement(VmId(0)), Some(PmId(1)));
        assert!(c.vm(VmId(0)).is_migrating());
        assert_eq!(c.in_flight().len(), 1);
        c.check_invariants();

        // Completes after its duration.
        let done = c.tick(mig.completes);
        assert_eq!(done.len(), 1);
        assert!(!c.vm(VmId(0)).is_migrating());
        assert!(c.in_flight().is_empty());
        c.check_invariants();
    }

    #[test]
    fn migrate_to_self_is_noop() {
        let mut c = fixture();
        assert!(c
            .migrate(VmId(0), PmId(0), SimTime::from_mins(10))
            .is_none());
        assert!(!c.vm(VmId(0)).is_migrating());
    }

    #[test]
    fn no_double_migration() {
        let mut c = fixture();
        let now = SimTime::from_mins(10);
        assert!(c.migrate(VmId(0), PmId(1), now).is_some());
        assert!(
            c.migrate(VmId(0), PmId(3), now).is_none(),
            "in-flight VM cannot re-migrate"
        );
    }

    #[test]
    fn cross_dc_flag() {
        let mut c = fixture();
        let now = SimTime::from_mins(10);
        // PmId(0) and PmId(2) are both in dc0 (added alternating: 0->d0,
        // 1->d1, 2->d0, 3->d1).
        let m = c.migrate(VmId(0), PmId(2), now).unwrap();
        assert!(!m.cross_dc);
    }

    #[test]
    fn used_and_free_capacity() {
        let c = fixture();
        let demand = |_vm: VmId| Resources::new(50.0, 256.0, 5.0, 10.0);
        let used = c.pm_used(PmId(0), demand);
        // 2 VMs * 50 cpu + 2 * 6.0 overhead.
        assert!((used.cpu - 112.0).abs() < 1e-9);
        assert!((used.mem_mb - 512.0).abs() < 1e-9);
        let free = c.pm_free(PmId(0), demand);
        assert!((free.cpu - (400.0 - 112.0)).abs() < 1e-9);
    }

    #[test]
    fn power_off_idle_respects_keep_list() {
        let mut c = fixture();
        let now = SimTime::from_mins(20);
        // Bring the two empty hosts (pm1, pm3) online first.
        c.ensure_on(PmId(1), SimTime::from_mins(10));
        c.ensure_on(PmId(3), SimTime::from_mins(10));
        c.tick(now);
        let n = c.power_off_idle(now, &[PmId(1)]);
        assert_eq!(n, 1, "only pm3 should be shut down");
        c.tick(now + SimDuration::from_mins(2));
        assert!(matches!(c.pm(PmId(3)).state(), crate::pm::PmState::Off));
        assert!(c.pm(PmId(1)).is_on());
        c.check_invariants();
    }

    #[test]
    fn powered_pm_count_tracks_states() {
        let mut c = fixture();
        // deploy() powered pm0 and pm2 only; pm1 and pm3 stay off.
        assert_eq!(c.powered_pm_count(), 2);
        let now = SimTime::from_mins(20);
        c.ensure_on(PmId(1), now);
        assert_eq!(c.powered_pm_count(), 3);
        c.tick(now + SimDuration::from_mins(5));
        assert_eq!(c.powered_pm_count(), 3);
    }

    #[test]
    fn concurrent_migrations_share_the_link() {
        // Two cross-DC migrations on the same pair: the second must take
        // longer than the first because it shares the pipe.
        let mut c = fixture();
        let now = SimTime::from_mins(10);
        let first = c.migrate(VmId(0), PmId(1), now).unwrap();
        let second = c.migrate(VmId(1), PmId(3), now).unwrap();
        assert!(
            second.duration() > first.duration(),
            "{:?} vs {:?}",
            second,
            first
        );
    }

    #[test]
    fn client_traffic_slows_migrations() {
        let mut c1 = fixture();
        let mut c2 = fixture();
        let now = SimTime::from_mins(10);
        let quiet = c1.migrate(VmId(0), PmId(1), now).unwrap();
        c2.link_load.add_client_gbps(
            crate::network::City::Barcelona.location(),
            crate::network::City::Boston.location(),
            8.0,
        );
        let congested = c2.migrate(VmId(0), PmId(1), now).unwrap();
        assert!(congested.duration() > quiet.duration());
    }

    #[test]
    #[should_panic(expected = "already placed")]
    fn double_deploy_panics() {
        let mut c = fixture();
        c.deploy(VmId(0), PmId(1), SimTime::ZERO);
    }
}
