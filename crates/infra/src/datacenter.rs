//! Datacenters: a named pool of hosts at one location with one energy
//! price.
//!
//! Each DC also owns the client access point (ISP) for its region — all
//! requests originating near a DC enter the provider network through it.

use crate::ids::{DcId, LocationId, PmId};

/// A datacenter.
#[derive(Clone, Debug)]
pub struct DataCenter {
    /// This DC's identifier.
    pub id: DcId,
    /// Human-readable name ("BCN", ...).
    pub name: String,
    /// Geographic location (= the client population it fronts).
    pub location: LocationId,
    /// Electricity price, €/kWh (the paper's Table II column).
    pub energy_price_eur_kwh: f64,
    pms: Vec<PmId>,
}

impl DataCenter {
    /// A new, empty datacenter.
    pub fn new(
        id: DcId,
        name: impl Into<String>,
        location: LocationId,
        energy_price_eur_kwh: f64,
    ) -> Self {
        assert!(
            energy_price_eur_kwh >= 0.0,
            "energy price must be non-negative"
        );
        DataCenter {
            id,
            name: name.into(),
            location,
            energy_price_eur_kwh,
            pms: Vec::new(),
        }
    }

    /// Registers a host as belonging to this DC.
    pub fn add_pm(&mut self, pm: PmId) {
        debug_assert!(!self.pms.contains(&pm), "{pm} already in {}", self.name);
        self.pms.push(pm);
    }

    /// Hosts in this DC.
    pub fn pms(&self) -> &[PmId] {
        &self.pms
    }

    /// Number of hosts.
    pub fn pm_count(&self) -> usize {
        self.pms.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registration() {
        let mut dc = DataCenter::new(DcId(0), "BCN", LocationId(2), 0.1513);
        assert_eq!(dc.pm_count(), 0);
        dc.add_pm(PmId(4));
        dc.add_pm(PmId(9));
        assert_eq!(dc.pms(), &[PmId(4), PmId(9)]);
        assert_eq!(dc.name, "BCN");
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn negative_price_rejected() {
        DataCenter::new(DcId(0), "X", LocationId(0), -0.1);
    }
}
