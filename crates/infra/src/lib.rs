//! # pamdc-infra — the multi-datacenter infrastructure model
//!
//! Everything physical in the paper's world, built as a simulation
//! substrate: resource vectors ([`resources`]), the measured Atom power
//! curve ([`power`]), host and VM lifecycles ([`pm`], [`vm`]),
//! datacenters ([`datacenter`]), the Verizon-derived inter-DC network
//! ([`network`]), migration blackout accounting ([`migration`]), the
//! cluster world-state ([`cluster`]), noisy monitors ([`monitor`]) and the
//! client gateway with pending-request queues ([`gateway`]).
//!
//! The paper ran on physical Atom hosts under VirtualBox/OpenNebula; this
//! crate replaces that testbed with a deterministic model exposing the
//! same observable quantities (monitored usage, power draw, latencies,
//! migration blackouts) to the layers above.

pub mod bandwidth;
pub mod cluster;
pub mod datacenter;
pub mod gateway;
pub mod ids;
pub mod migration;
pub mod monitor;
pub mod network;
pub mod pm;
pub mod power;
pub mod resources;
pub mod vm;

/// Common imports.
pub mod prelude {
    pub use crate::bandwidth::LinkLoad;
    pub use crate::cluster::Cluster;
    pub use crate::datacenter::DataCenter;
    pub use crate::gateway::{
        total_rps, weighted_attr, weighted_transport_secs, FlowDemand, Gateway, QueueSettle,
    };
    pub use crate::ids::{DcId, LocationId, PmId, VmId};
    pub use crate::migration::Migration;
    pub use crate::monitor::{observe, MonitorConfig, SlidingWindow};
    pub use crate::network::{City, LatencyMatrix, NetworkModel};
    pub use crate::pm::{FaultEvent, MachineSpec, PhysicalMachine, PmState};
    pub use crate::power::{EnergyMeter, PowerModel};
    pub use crate::resources::Resources;
    pub use crate::vm::{VirtualMachine, VmSpec, VmState};
}
