//! The client gateway (ISP access point).
//!
//! Each region's clients enter through their local DC's gateway. The
//! gateway's two jobs in the model:
//!
//! 1. **Routing accounting** — a request for a VM hosted elsewhere pays
//!    the provider-network latency between the client's region and the
//!    VM's current DC ([`weighted_transport_secs`] aggregates this over a
//!    VM's flow mix, weighted by request rate).
//! 2. **Pending-request queues** — when a VM cannot drain its arrival
//!    rate, requests back up in the gateway. Queue length is both an ML
//!    feature in the paper ("sizes of the queues of pending requests ...
//!    represent additional immediate load") and the source of the
//!    next-tick carryover load. Queues are bounded; overflow requests are
//!    dropped and score SLA 0.

use crate::ids::{LocationId, VmId};
use crate::network::NetworkModel;

/// One region's demand towards one VM during one tick.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct FlowDemand {
    /// Client region.
    pub source: LocationId,
    /// Request arrival rate, requests/second.
    pub req_per_sec: f64,
    /// Mean payload per request, KB.
    pub kb_per_req: f64,
    /// Mean no-contention compute time per request, CPU-milliseconds.
    pub cpu_ms_per_req: f64,
}

/// Result of settling one VM's queue for a tick.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct QueueSettle {
    /// Requests carried over to the next tick.
    pub queued: f64,
    /// Requests dropped because the queue was full.
    pub dropped: f64,
    /// Requests actually served this tick.
    pub served: f64,
}

/// Per-VM bounded pending-request queues.
#[derive(Clone, Debug)]
pub struct Gateway {
    backlog: Vec<f64>,
    dropped_total: Vec<f64>,
    max_backlog: f64,
}

impl Gateway {
    /// A gateway tracking `vm_count` VMs with the given per-VM queue
    /// bound (requests).
    pub fn new(vm_count: usize, max_backlog: f64) -> Self {
        assert!(max_backlog >= 0.0, "queue bound must be non-negative");
        Gateway {
            backlog: vec![0.0; vm_count],
            dropped_total: vec![0.0; vm_count],
            max_backlog,
        }
    }

    /// Grows tracking when VMs are added after construction.
    pub fn ensure_capacity(&mut self, vm_count: usize) {
        if vm_count > self.backlog.len() {
            self.backlog.resize(vm_count, 0.0);
            self.dropped_total.resize(vm_count, 0.0);
        }
    }

    /// Pending requests for a VM.
    pub fn backlog(&self, vm: VmId) -> f64 {
        self.backlog[vm.index()]
    }

    /// Lifetime dropped requests for a VM.
    pub fn dropped_total(&self, vm: VmId) -> f64 {
        self.dropped_total[vm.index()]
    }

    /// Offered load this tick: fresh arrivals plus carryover backlog.
    pub fn offered(&self, vm: VmId, arrivals: f64) -> f64 {
        arrivals + self.backlog[vm.index()]
    }

    /// Settles a VM's queue after the tick: `arrived` fresh requests,
    /// `served` actually processed (from the performance model). Excess
    /// above the queue bound is dropped.
    pub fn settle(&mut self, vm: VmId, arrived: f64, served: f64) -> QueueSettle {
        let i = vm.index();
        let offered = self.backlog[i] + arrived;
        let served = served.clamp(0.0, offered);
        let pending = offered - served;
        let queued = pending.min(self.max_backlog);
        let dropped = pending - queued;
        self.backlog[i] = queued;
        self.dropped_total[i] += dropped;
        QueueSettle {
            queued,
            dropped,
            served,
        }
    }

    /// Clears one VM's queue (e.g. the customer restarted the service).
    pub fn clear(&mut self, vm: VmId) {
        self.backlog[vm.index()] = 0.0;
    }
}

/// Request-rate-weighted mean transport latency (seconds) for a VM hosted
/// at `vm_loc`, over its flow mix. Zero when the VM receives no load.
pub fn weighted_transport_secs(
    flows: &[FlowDemand],
    vm_loc: LocationId,
    net: &NetworkModel,
) -> f64 {
    let total: f64 = flows.iter().map(|f| f.req_per_sec).sum();
    if total <= 0.0 {
        return 0.0;
    }
    flows
        .iter()
        .map(|f| f.req_per_sec * net.transport_secs(f.source, vm_loc))
        .sum::<f64>()
        / total
}

/// Total request rate over a flow mix, requests/second.
pub fn total_rps(flows: &[FlowDemand]) -> f64 {
    flows.iter().map(|f| f.req_per_sec).sum()
}

/// Request-rate-weighted mean of a per-flow attribute.
pub fn weighted_attr(flows: &[FlowDemand], attr: impl Fn(&FlowDemand) -> f64) -> f64 {
    let total = total_rps(flows);
    if total <= 0.0 {
        return 0.0;
    }
    flows.iter().map(|f| f.req_per_sec * attr(f)).sum::<f64>() / total
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::network::City;

    #[test]
    fn queue_carries_over_and_bounds() {
        let mut g = Gateway::new(2, 100.0);
        let vm = VmId(0);
        assert_eq!(g.offered(vm, 50.0), 50.0);

        // 80 arrive, 30 served -> 50 queue.
        let s = g.settle(vm, 80.0, 30.0);
        assert!((s.queued - 50.0).abs() < 1e-9);
        assert_eq!(s.dropped, 0.0);
        assert!((g.offered(vm, 10.0) - 60.0).abs() < 1e-9);

        // 100 more arrive, none served -> 150 pending, 50 dropped.
        let s = g.settle(vm, 100.0, 0.0);
        assert!((s.queued - 100.0).abs() < 1e-9);
        assert!((s.dropped - 50.0).abs() < 1e-9);
        assert!((g.dropped_total(vm) - 50.0).abs() < 1e-9);

        // Other VM untouched.
        assert_eq!(g.backlog(VmId(1)), 0.0);
    }

    #[test]
    fn over_serving_empties_queue() {
        let mut g = Gateway::new(1, 100.0);
        let vm = VmId(0);
        g.settle(vm, 50.0, 10.0);
        let s = g.settle(vm, 0.0, 1000.0);
        assert_eq!(s.queued, 0.0);
        assert_eq!(g.backlog(vm), 0.0);
    }

    #[test]
    fn clear_resets() {
        let mut g = Gateway::new(1, 100.0);
        g.settle(VmId(0), 80.0, 0.0);
        g.clear(VmId(0));
        assert_eq!(g.backlog(VmId(0)), 0.0);
    }

    #[test]
    fn ensure_capacity_grows() {
        let mut g = Gateway::new(1, 10.0);
        g.ensure_capacity(3);
        assert_eq!(g.backlog(VmId(2)), 0.0);
    }

    #[test]
    fn weighted_transport_matches_mix() {
        let net = NetworkModel::paper();
        let bcn = City::Barcelona.location();
        let bst = City::Boston.location();
        let flows = vec![
            FlowDemand {
                source: bcn,
                req_per_sec: 30.0,
                kb_per_req: 10.0,
                cpu_ms_per_req: 5.0,
            },
            FlowDemand {
                source: bst,
                req_per_sec: 10.0,
                kb_per_req: 10.0,
                cpu_ms_per_req: 5.0,
            },
        ];
        // Hosted in BCN: 30/40 pay 10ms, 10/40 pay 100ms.
        let rt = weighted_transport_secs(&flows, bcn, &net);
        assert!((rt - (0.75 * 0.010 + 0.25 * 0.100)).abs() < 1e-12);
        assert_eq!(weighted_transport_secs(&[], bcn, &net), 0.0);
        assert!((total_rps(&flows) - 40.0).abs() < 1e-12);
        assert!((weighted_attr(&flows, |f| f.kb_per_req) - 10.0).abs() < 1e-12);
    }
}
