//! Resource vectors: CPU, memory and network I/O.
//!
//! The paper's model tracks, per VM and per host, four capacities (its
//! Table I learns one predictor per component): CPU as a percentage of one
//! core (so a 4-core Atom host has 400), memory in MB, and network input /
//! output bandwidth in KB/s. [`Resources`] is the shared algebra over that
//! 4-vector used by hosts, VMs, schedulers and predictors alike.

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Mul, Sub, SubAssign};

/// A CPU/MEM/NET-IN/NET-OUT resource vector.
///
/// Units: `cpu` in percent-of-one-core (100.0 = one fully busy core),
/// `mem_mb` in megabytes, `net_in_kbps` / `net_out_kbps` in KB/s.
#[derive(Clone, Copy, PartialEq, Default)]
pub struct Resources {
    /// CPU demand/capacity, percent of one core.
    pub cpu: f64,
    /// Memory, MB.
    pub mem_mb: f64,
    /// Network input, KB/s.
    pub net_in_kbps: f64,
    /// Network output, KB/s.
    pub net_out_kbps: f64,
}

impl Resources {
    /// The zero vector.
    pub const ZERO: Resources = Resources {
        cpu: 0.0,
        mem_mb: 0.0,
        net_in_kbps: 0.0,
        net_out_kbps: 0.0,
    };

    /// Builds a resource vector.
    pub const fn new(cpu: f64, mem_mb: f64, net_in_kbps: f64, net_out_kbps: f64) -> Self {
        Resources {
            cpu,
            mem_mb,
            net_in_kbps,
            net_out_kbps,
        }
    }

    /// All four components are finite and non-negative.
    pub fn is_valid(&self) -> bool {
        let ok = |x: f64| x.is_finite() && x >= 0.0;
        ok(self.cpu) && ok(self.mem_mb) && ok(self.net_in_kbps) && ok(self.net_out_kbps)
    }

    /// Component-wise `<=` with a small epsilon: does a demand of `self`
    /// fit inside an availability of `cap`?
    pub fn fits_within(&self, cap: &Resources) -> bool {
        const EPS: f64 = 1e-9;
        self.cpu <= cap.cpu + EPS
            && self.mem_mb <= cap.mem_mb + EPS
            && self.net_in_kbps <= cap.net_in_kbps + EPS
            && self.net_out_kbps <= cap.net_out_kbps + EPS
    }

    /// Component-wise minimum.
    pub fn min(&self, other: &Resources) -> Resources {
        Resources {
            cpu: self.cpu.min(other.cpu),
            mem_mb: self.mem_mb.min(other.mem_mb),
            net_in_kbps: self.net_in_kbps.min(other.net_in_kbps),
            net_out_kbps: self.net_out_kbps.min(other.net_out_kbps),
        }
    }

    /// Component-wise maximum.
    pub fn max(&self, other: &Resources) -> Resources {
        Resources {
            cpu: self.cpu.max(other.cpu),
            mem_mb: self.mem_mb.max(other.mem_mb),
            net_in_kbps: self.net_in_kbps.max(other.net_in_kbps),
            net_out_kbps: self.net_out_kbps.max(other.net_out_kbps),
        }
    }

    /// Component-wise subtraction clamped at zero (free capacity after
    /// allocation, never negative).
    pub fn saturating_sub(&self, other: &Resources) -> Resources {
        Resources {
            cpu: (self.cpu - other.cpu).max(0.0),
            mem_mb: (self.mem_mb - other.mem_mb).max(0.0),
            net_in_kbps: (self.net_in_kbps - other.net_in_kbps).max(0.0),
            net_out_kbps: (self.net_out_kbps - other.net_out_kbps).max(0.0),
        }
    }

    /// Component-wise clamp of `self` into `[ZERO, cap]`.
    pub fn clamp_to(&self, cap: &Resources) -> Resources {
        self.max(&Resources::ZERO).min(cap)
    }

    /// The largest utilisation fraction across components, given a
    /// capacity; this "dominant share" drives bin-packing order in the
    /// Best-Fit scheduler. Components with zero capacity are skipped.
    pub fn dominant_share(&self, cap: &Resources) -> f64 {
        let frac = |d: f64, c: f64| if c > 0.0 { d / c } else { 0.0 };
        frac(self.cpu, cap.cpu)
            .max(frac(self.mem_mb, cap.mem_mb))
            .max(frac(self.net_in_kbps, cap.net_in_kbps))
            .max(frac(self.net_out_kbps, cap.net_out_kbps))
    }

    /// A scalar "size" used for demand ordering: the sum of normalized
    /// components against a reference capacity.
    pub fn normalized_magnitude(&self, cap: &Resources) -> f64 {
        let frac = |d: f64, c: f64| if c > 0.0 { d / c } else { 0.0 };
        frac(self.cpu, cap.cpu)
            + frac(self.mem_mb, cap.mem_mb)
            + frac(self.net_in_kbps, cap.net_in_kbps)
            + frac(self.net_out_kbps, cap.net_out_kbps)
    }

    /// True when every component is (near) zero.
    pub fn is_zero(&self) -> bool {
        const EPS: f64 = 1e-9;
        self.cpu < EPS && self.mem_mb < EPS && self.net_in_kbps < EPS && self.net_out_kbps < EPS
    }
}

impl Add for Resources {
    type Output = Resources;
    #[inline]
    fn add(self, o: Resources) -> Resources {
        Resources {
            cpu: self.cpu + o.cpu,
            mem_mb: self.mem_mb + o.mem_mb,
            net_in_kbps: self.net_in_kbps + o.net_in_kbps,
            net_out_kbps: self.net_out_kbps + o.net_out_kbps,
        }
    }
}

impl AddAssign for Resources {
    #[inline]
    fn add_assign(&mut self, o: Resources) {
        *self = *self + o;
    }
}

impl Sub for Resources {
    type Output = Resources;
    #[inline]
    fn sub(self, o: Resources) -> Resources {
        Resources {
            cpu: self.cpu - o.cpu,
            mem_mb: self.mem_mb - o.mem_mb,
            net_in_kbps: self.net_in_kbps - o.net_in_kbps,
            net_out_kbps: self.net_out_kbps - o.net_out_kbps,
        }
    }
}

impl SubAssign for Resources {
    #[inline]
    fn sub_assign(&mut self, o: Resources) {
        *self = *self - o;
    }
}

impl Mul<f64> for Resources {
    type Output = Resources;
    #[inline]
    fn mul(self, k: f64) -> Resources {
        Resources {
            cpu: self.cpu * k,
            mem_mb: self.mem_mb * k,
            net_in_kbps: self.net_in_kbps * k,
            net_out_kbps: self.net_out_kbps * k,
        }
    }
}

impl Sum for Resources {
    fn sum<I: Iterator<Item = Resources>>(iter: I) -> Resources {
        iter.fold(Resources::ZERO, |acc, r| acc + r)
    }
}

impl fmt::Debug for Resources {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "Res(cpu {:.1}%, mem {:.0}MB, in {:.1}KB/s, out {:.1}KB/s)",
            self.cpu, self.mem_mb, self.net_in_kbps, self.net_out_kbps
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn r(cpu: f64, mem: f64, i: f64, o: f64) -> Resources {
        Resources::new(cpu, mem, i, o)
    }

    #[test]
    fn algebra_basics() {
        let a = r(100.0, 512.0, 10.0, 20.0);
        let b = r(50.0, 256.0, 5.0, 10.0);
        assert_eq!(a + b, r(150.0, 768.0, 15.0, 30.0));
        assert_eq!(a - b, b);
        assert_eq!(b * 2.0, a);
        let sum: Resources = [a, b].into_iter().sum();
        assert_eq!(sum, a + b);
    }

    #[test]
    fn fits_within_is_componentwise() {
        let cap = r(400.0, 4096.0, 1000.0, 1000.0);
        assert!(r(400.0, 4096.0, 1000.0, 1000.0).fits_within(&cap));
        assert!(!r(401.0, 1.0, 1.0, 1.0).fits_within(&cap));
        assert!(!r(1.0, 5000.0, 1.0, 1.0).fits_within(&cap));
        assert!(!r(1.0, 1.0, 1001.0, 1.0).fits_within(&cap));
        assert!(!r(1.0, 1.0, 1.0, 1001.0).fits_within(&cap));
        assert!(Resources::ZERO.fits_within(&cap));
    }

    #[test]
    fn saturating_sub_never_negative() {
        let a = r(10.0, 10.0, 10.0, 10.0);
        let b = r(20.0, 5.0, 20.0, 5.0);
        let d = a.saturating_sub(&b);
        assert_eq!(d, r(0.0, 5.0, 0.0, 5.0));
        assert!(d.is_valid());
    }

    #[test]
    fn dominant_share_picks_bottleneck() {
        let cap = r(400.0, 4096.0, 100.0, 100.0);
        let d = r(100.0, 1024.0, 90.0, 10.0);
        assert!((d.dominant_share(&cap) - 0.9).abs() < 1e-12);
        assert_eq!(Resources::ZERO.dominant_share(&cap), 0.0);
    }

    #[test]
    fn dominant_share_ignores_zero_capacity() {
        let cap = r(400.0, 0.0, 0.0, 0.0);
        let d = r(200.0, 50.0, 1.0, 1.0);
        assert!((d.dominant_share(&cap) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn clamp_to_bounds() {
        let cap = r(400.0, 4096.0, 100.0, 100.0);
        let wild = r(900.0, -5.0, 50.0, 101.0);
        let c = wild.clamp_to(&cap);
        assert_eq!(c, r(400.0, 0.0, 50.0, 100.0));
        assert!(c.is_valid());
    }

    #[test]
    fn zero_and_validity() {
        assert!(Resources::ZERO.is_zero());
        assert!(Resources::ZERO.is_valid());
        assert!(!r(f64::NAN, 0.0, 0.0, 0.0).is_valid());
        assert!(!r(-1.0, 0.0, 0.0, 0.0).is_valid());
        assert!(!r(1.0, 1.0, 1.0, 1.0).is_zero());
    }
}
