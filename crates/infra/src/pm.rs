//! Physical machines (hosts).
//!
//! A PM owns a capacity vector, a power curve and a lifecycle state
//! machine: `Off → Booting → On → ShuttingDown → Off`. Consolidation saves
//! energy precisely because empty hosts can be shut down, and the boot
//! latency is what makes over-eager shutdowns risky — both effects the
//! scheduler must reason about.

use crate::ids::{DcId, PmId, VmId};
use crate::power::PowerModel;
use crate::resources::Resources;
use pamdc_simcore::time::{SimDuration, SimTime};
use std::sync::Arc;

/// Static description of a host model.
#[derive(Clone, Debug)]
pub struct MachineSpec {
    /// Total schedulable capacity.
    pub capacity: Resources,
    /// Power curve (shared across every host of the same model and
    /// every scheduling round's snapshot of it).
    pub power: Arc<PowerModel>,
    /// Time from power-on command to servicing VMs.
    pub boot_time: SimDuration,
    /// Time from shutdown command to zero draw.
    pub shutdown_time: SimDuration,
    /// Hypervisor CPU overhead per hosted VM, percent-of-core. The paper
    /// observes PM CPU exceeds the sum of VM CPU because of management
    /// overhead; this is that overhead's ground truth.
    pub virt_overhead_cpu_per_vm: f64,
}

impl MachineSpec {
    /// The paper's experimental host: Intel Atom, 4 cores (400 %CPU),
    /// 4 GB RAM, ~1 Gbps NIC (125 MB/s ≈ 128000 KB/s shared in/out),
    /// 2-minute boot.
    pub fn atom() -> Self {
        MachineSpec {
            capacity: Resources::new(400.0, 4096.0, 64_000.0, 64_000.0),
            power: Arc::new(PowerModel::atom_4core()),
            boot_time: SimDuration::from_secs(120),
            shutdown_time: SimDuration::from_secs(30),
            virt_overhead_cpu_per_vm: 6.0,
        }
    }

    /// A Xeon-class host for heterogeneous fleets: 8 cores, 16 GB RAM,
    /// 4× the Atom's NIC, the [`PowerModel::xeon_8core`] curve, and a
    /// slower (3-minute) boot. Amortized hypervisor overhead is lower
    /// per VM than on the Atom (more cores to hide it on).
    pub fn xeon() -> Self {
        MachineSpec {
            capacity: Resources::new(800.0, 16_384.0, 256_000.0, 256_000.0),
            power: Arc::new(PowerModel::xeon_8core()),
            boot_time: SimDuration::from_secs(180),
            shutdown_time: SimDuration::from_secs(45),
            virt_overhead_cpu_per_vm: 4.0,
        }
    }

    /// A custom host class from four headline numbers: core count,
    /// memory, and the idle/peak watt endpoints of its power curve.
    ///
    /// The per-active-core curve is filled in as
    /// `idle + (peak - idle) · sqrt(i / cores)` — the concave shape that
    /// reproduces the paper's measured Atom levels (29.1/30.4/31.3/31.8 W
    /// from idle 27 → peak 31.8) within 0.3 W, so consolidation stays
    /// profitable on custom classes exactly as it is on measured ones.
    /// NIC capacity scales with cores (the Atom's 64 MB/s per 4 cores);
    /// boot/shutdown times and virtualization overhead stay at the
    /// Atom's values.
    pub fn custom(cores: usize, mem_mb: f64, idle_watts: f64, peak_watts: f64) -> Self {
        assert!(cores >= 1, "a host needs at least one core");
        assert!(
            mem_mb > 0.0 && mem_mb.is_finite(),
            "memory must be positive"
        );
        assert!(
            idle_watts.is_finite() && peak_watts.is_finite() && 0.0 < idle_watts,
            "power endpoints must be finite and positive"
        );
        assert!(
            idle_watts <= peak_watts,
            "idle draw cannot exceed peak draw"
        );
        let span = peak_watts - idle_watts;
        let active_core_watts = (1..=cores)
            .map(|i| idle_watts + span * (i as f64 / cores as f64).sqrt())
            .collect();
        let nic_kbps = 16_000.0 * cores as f64;
        MachineSpec {
            capacity: Resources::new(100.0 * cores as f64, mem_mb, nic_kbps, nic_kbps),
            power: Arc::new(PowerModel {
                idle_watts,
                active_core_watts,
                cooling_factor: 1.5,
            }),
            boot_time: SimDuration::from_secs(120),
            shutdown_time: SimDuration::from_secs(30),
            virt_overhead_cpu_per_vm: 6.0,
        }
    }

    /// Number of cores (the power curve's length).
    pub fn cores(&self) -> usize {
        self.power.cores()
    }
}

/// Host lifecycle state.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PmState {
    /// Powered down, drawing nothing.
    Off,
    /// Booting; becomes `On` at the embedded time.
    Booting {
        /// Boot completion instant.
        until: SimTime,
    },
    /// Serving.
    On,
    /// Shutting down; becomes `Off` at the embedded time.
    ShuttingDown {
        /// Shutdown completion instant.
        until: SimTime,
    },
    /// Crashed. Draws nothing, serves nothing, ignores power commands;
    /// auto-restarts (enters `Booting`) once repaired at the embedded
    /// time. Hosted VMs stay attached — their images are on DC-shared
    /// storage, so the scheduler may re-provision them elsewhere at the
    /// standard migration cost.
    Failed {
        /// Repair completion instant.
        until: SimTime,
    },
}

/// A scheduled host crash for failure-injection experiments.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct FaultEvent {
    /// The host that crashes.
    pub pm: PmId,
    /// Crash instant.
    pub at: SimTime,
    /// Time until the repair completes (the host then reboots).
    pub repair_after: SimDuration,
}

/// A physical machine.
#[derive(Clone, Debug)]
pub struct PhysicalMachine {
    /// This host's identifier.
    pub id: PmId,
    /// Datacenter this host lives in.
    pub dc: DcId,
    /// Hardware description.
    pub spec: MachineSpec,
    state: PmState,
    hosted: Vec<VmId>,
}

impl PhysicalMachine {
    /// A new host, initially powered off and empty.
    pub fn new(id: PmId, dc: DcId, spec: MachineSpec) -> Self {
        PhysicalMachine {
            id,
            dc,
            spec,
            state: PmState::Off,
            hosted: Vec::new(),
        }
    }

    /// Current lifecycle state.
    pub fn state(&self) -> PmState {
        self.state
    }

    /// True when the host can run VMs right now.
    pub fn is_on(&self) -> bool {
        matches!(self.state, PmState::On)
    }

    /// True when the host is on or will be shortly (a scheduler may place
    /// onto a booting host; the VM starts when boot completes).
    pub fn is_schedulable(&self) -> bool {
        matches!(self.state, PmState::On | PmState::Booting { .. })
    }

    /// True when the host has crashed and awaits repair.
    pub fn is_failed(&self) -> bool {
        matches!(self.state, PmState::Failed { .. })
    }

    /// Crashes the host: immediate power loss, repair completing after
    /// `repair_after`. Any state may fail, including `Off` (a dead PSU
    /// discovered on the next boot attempt). Hosted VMs stay attached
    /// and are blacked out until migrated away or the host returns.
    pub fn fail(&mut self, now: SimTime, repair_after: SimDuration) {
        self.state = PmState::Failed {
            until: now + repair_after,
        };
    }

    /// Issues a power-on. No-op unless the host is off or shutting down
    /// (a shutdown is aborted by rebooting, paying the full boot time).
    /// Failed hosts ignore the command — nothing boots until repair.
    pub fn power_on(&mut self, now: SimTime) {
        match self.state {
            PmState::Off | PmState::ShuttingDown { .. } => {
                self.state = PmState::Booting {
                    until: now + self.spec.boot_time,
                };
            }
            PmState::On | PmState::Booting { .. } | PmState::Failed { .. } => {}
        }
    }

    /// Issues a shutdown. Only an idle, on host may shut down; hosting or
    /// transitioning hosts ignore the request (the caller migrates VMs away
    /// first).
    pub fn request_shutdown(&mut self, now: SimTime) {
        if matches!(self.state, PmState::On) && self.hosted.is_empty() {
            self.state = PmState::ShuttingDown {
                until: now + self.spec.shutdown_time,
            };
        }
    }

    /// Advances the lifecycle state machine to `now`. A repaired host
    /// restarts automatically (it still pays its boot time).
    pub fn tick_state(&mut self, now: SimTime) {
        match self.state {
            PmState::Booting { until } if now >= until => self.state = PmState::On,
            PmState::ShuttingDown { until } if now >= until => self.state = PmState::Off,
            PmState::Failed { until } if now >= until => {
                self.state = PmState::Booting {
                    until: now + self.spec.boot_time,
                };
            }
            _ => {}
        }
    }

    /// VMs currently assigned to this host.
    pub fn hosted(&self) -> &[VmId] {
        &self.hosted
    }

    /// Number of hosted VMs.
    pub fn vm_count(&self) -> usize {
        self.hosted.len()
    }

    /// Assigns a VM to this host. Panics on double-assignment, which is
    /// always a scheduler bug.
    pub fn attach(&mut self, vm: VmId) {
        assert!(
            !self.hosted.contains(&vm),
            "{vm} already hosted on {}",
            self.id
        );
        self.hosted.push(vm);
    }

    /// Removes a VM from this host. Panics if the VM was not here.
    pub fn detach(&mut self, vm: VmId) {
        let pos = self
            .hosted
            .iter()
            .position(|&v| v == vm)
            .unwrap_or_else(|| panic!("{vm} not hosted on {}", self.id));
        self.hosted.swap_remove(pos);
    }

    /// Hypervisor CPU overhead at the current VM count (ground truth for
    /// the "Predict PM CPU" target of Table I).
    pub fn virt_overhead_cpu(&self) -> f64 {
        self.spec.virt_overhead_cpu_per_vm * self.hosted.len() as f64
    }

    /// Facility power draw at the given aggregate CPU usage
    /// (percent-of-core, including hypervisor overhead).
    pub fn facility_watts(&self, cpu_pct: f64) -> f64 {
        match self.state {
            PmState::Off | PmState::Failed { .. } => 0.0,
            PmState::Booting { .. } | PmState::ShuttingDown { .. } => {
                self.spec.power.transition_watts()
            }
            PmState::On => self.spec.power.facility_watts(cpu_pct),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pm() -> PhysicalMachine {
        PhysicalMachine::new(PmId(0), DcId(0), MachineSpec::atom())
    }

    #[test]
    fn lifecycle_happy_path() {
        let mut m = pm();
        assert_eq!(m.state(), PmState::Off);
        assert!(!m.is_schedulable());

        let t0 = SimTime::ZERO;
        m.power_on(t0);
        assert!(matches!(m.state(), PmState::Booting { .. }));
        assert!(m.is_schedulable());
        assert!(!m.is_on());

        m.tick_state(t0 + SimDuration::from_secs(119));
        assert!(!m.is_on());
        m.tick_state(t0 + SimDuration::from_secs(120));
        assert!(m.is_on());

        m.request_shutdown(t0 + SimDuration::from_mins(10));
        assert!(matches!(m.state(), PmState::ShuttingDown { .. }));
        m.tick_state(t0 + SimDuration::from_mins(11));
        assert_eq!(m.state(), PmState::Off);
    }

    #[test]
    fn shutdown_refused_while_hosting() {
        let mut m = pm();
        m.power_on(SimTime::ZERO);
        m.tick_state(SimTime::from_mins(5));
        m.attach(VmId(1));
        m.request_shutdown(SimTime::from_mins(6));
        assert!(m.is_on(), "a hosting PM must not shut down");
        m.detach(VmId(1));
        m.request_shutdown(SimTime::from_mins(7));
        assert!(matches!(m.state(), PmState::ShuttingDown { .. }));
    }

    #[test]
    fn attach_detach_bookkeeping() {
        let mut m = pm();
        m.attach(VmId(0));
        m.attach(VmId(1));
        assert_eq!(m.vm_count(), 2);
        assert!((m.virt_overhead_cpu() - 12.0).abs() < 1e-12);
        m.detach(VmId(0));
        assert_eq!(m.hosted(), &[VmId(1)]);
    }

    #[test]
    #[should_panic(expected = "already hosted")]
    fn double_attach_panics() {
        let mut m = pm();
        m.attach(VmId(3));
        m.attach(VmId(3));
    }

    #[test]
    #[should_panic(expected = "not hosted")]
    fn detach_missing_panics() {
        let mut m = pm();
        m.detach(VmId(3));
    }

    #[test]
    fn xeon_class_is_bigger_in_every_dimension() {
        let atom = MachineSpec::atom();
        let xeon = MachineSpec::xeon();
        assert_eq!(xeon.cores(), 8);
        assert!(xeon.capacity.cpu > atom.capacity.cpu);
        assert!(xeon.capacity.mem_mb > atom.capacity.mem_mb);
        assert!(xeon.boot_time > atom.boot_time);
        assert!(xeon.power.it_watts(800.0) > atom.power.it_watts(400.0));
    }

    #[test]
    fn custom_curve_reproduces_the_atom_shape() {
        // idle 27 → peak 31.8 over 4 cores: the sqrt fill-in must land
        // within 0.3 W of the paper's measured levels.
        let m = MachineSpec::custom(4, 4096.0, 27.0, 31.8);
        for (i, &measured) in [29.1, 30.4, 31.3, 31.8].iter().enumerate() {
            let w = m.power.it_watts(100.0 * (i + 1) as f64);
            assert!(
                (w - measured).abs() < 0.31,
                "core {}: {w} vs measured {measured}",
                i + 1
            );
        }
        assert_eq!(m.cores(), 4);
        // Endpoints are exact.
        assert_eq!(m.power.idle_watts, 27.0);
        assert!((m.power.it_watts(400.0) - 31.8).abs() < 1e-12);
        // NIC scales with cores.
        let big = MachineSpec::custom(8, 8192.0, 100.0, 250.0);
        assert!((big.capacity.net_out_kbps - 2.0 * m.capacity.net_out_kbps).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "idle draw cannot exceed peak")]
    fn custom_rejects_inverted_power_endpoints() {
        let _ = MachineSpec::custom(4, 4096.0, 50.0, 20.0);
    }

    #[test]
    fn power_by_state() {
        let mut m = pm();
        assert_eq!(m.facility_watts(100.0), 0.0);
        m.power_on(SimTime::ZERO);
        let boot_w = m.facility_watts(0.0);
        assert!((boot_w - 29.1 * 1.5).abs() < 1e-9);
        m.tick_state(SimTime::from_mins(5));
        assert!((m.facility_watts(100.0) - 29.1 * 1.5).abs() < 1e-9);
        assert!((m.facility_watts(0.0) - 27.0 * 1.5).abs() < 1e-9);
    }

    #[test]
    fn failure_lifecycle() {
        let mut m = pm();
        m.power_on(SimTime::ZERO);
        m.tick_state(SimTime::from_mins(5));
        m.attach(VmId(0));
        assert!(m.is_on());

        // Crash at t=10, 20-minute repair.
        m.fail(SimTime::from_mins(10), SimDuration::from_mins(20));
        assert!(m.is_failed());
        assert!(!m.is_on() && !m.is_schedulable());
        assert_eq!(m.facility_watts(100.0), 0.0, "a dead host draws nothing");
        assert_eq!(
            m.hosted(),
            &[VmId(0)],
            "VMs stay attached through the crash"
        );

        // Power commands are ignored while failed.
        m.power_on(SimTime::from_mins(15));
        assert!(m.is_failed());

        // Repair completes at t=30: auto-restart pays the boot time.
        m.tick_state(SimTime::from_mins(30));
        assert!(matches!(m.state(), PmState::Booting { .. }));
        m.tick_state(SimTime::from_mins(33));
        assert!(m.is_on());
    }

    #[test]
    fn failure_from_off_keeps_it_dark() {
        let mut m = pm();
        m.fail(SimTime::ZERO, SimDuration::from_mins(5));
        assert!(m.is_failed());
        m.power_on(SimTime::from_mins(1));
        assert!(m.is_failed(), "a failed host cannot be booted");
        m.tick_state(SimTime::from_mins(5));
        assert!(matches!(m.state(), PmState::Booting { .. }));
    }

    #[test]
    fn reboot_aborts_shutdown() {
        let mut m = pm();
        m.power_on(SimTime::ZERO);
        m.tick_state(SimTime::from_mins(5));
        m.request_shutdown(SimTime::from_mins(5));
        m.power_on(SimTime::from_mins(5));
        assert!(matches!(m.state(), PmState::Booting { .. }));
    }
}
