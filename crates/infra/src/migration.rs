//! Migration bookkeeping.
//!
//! A migration freezes the VM, ships its image, and restores it at the
//! destination. Following the paper's pessimistic assumption, the VM
//! serves nothing while in flight — its SLA for the affected interval is
//! zero, which is exactly the migration penalty term `fpenalty` of the
//! objective function.

use crate::ids::{PmId, VmId};
use pamdc_simcore::time::{SimDuration, SimTime};

/// One in-flight or completed migration.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Migration {
    /// The VM being moved.
    pub vm: VmId,
    /// Source host.
    pub from: PmId,
    /// Destination host.
    pub to: PmId,
    /// Freeze instant.
    pub started: SimTime,
    /// Restore-complete instant.
    pub completes: SimTime,
    /// True when source and destination sit in different datacenters.
    pub cross_dc: bool,
}

impl Migration {
    /// Total blackout duration (freeze → restore).
    pub fn duration(&self) -> SimDuration {
        self.completes - self.started
    }

    /// Fraction of the window `[win_start, win_end)` during which this
    /// migration blacks the VM out, in `[0, 1]`. Used to pro-rate SLA to
    /// zero over the affected part of a tick.
    pub fn blackout_fraction(&self, win_start: SimTime, win_end: SimTime) -> f64 {
        if win_end <= win_start {
            return 0.0;
        }
        let ov_start = self.started.max(win_start);
        let ov_end = self.completes.min(win_end);
        if ov_end <= ov_start {
            return 0.0;
        }
        (ov_end - ov_start).as_secs_f64() / (win_end - win_start).as_secs_f64()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mig(start_s: u64, end_s: u64) -> Migration {
        Migration {
            vm: VmId(0),
            from: PmId(0),
            to: PmId(1),
            started: SimTime::from_secs(start_s),
            completes: SimTime::from_secs(end_s),
            cross_dc: true,
        }
    }

    #[test]
    fn duration_is_blackout() {
        assert_eq!(mig(10, 25).duration(), SimDuration::from_secs(15));
    }

    #[test]
    fn blackout_fraction_cases() {
        let m = mig(60, 120); // migrating during [60s, 120s)
        let t = SimTime::from_secs;
        // Window fully covered.
        assert!((m.blackout_fraction(t(70), t(110)) - 1.0).abs() < 1e-12);
        // Window fully outside.
        assert_eq!(m.blackout_fraction(t(0), t(60)), 0.0);
        assert_eq!(m.blackout_fraction(t(120), t(180)), 0.0);
        // Half overlap.
        assert!((m.blackout_fraction(t(0), t(120)) - 0.5).abs() < 1e-12);
        // Degenerate window.
        assert_eq!(m.blackout_fraction(t(80), t(80)), 0.0);
    }
}
