//! The inter-DC network: locations, latency matrix, bandwidth.
//!
//! The paper takes its latencies from Verizon's published intercontinental
//! network and assumes 10 Gbps links between DCs (its Table II):
//!
//! | ms       | BRS | BNG | BCN | BST |
//! |----------|-----|-----|-----|-----|
//! | Brisbane |  0  | 265 | 390 | 255 |
//! | Bangalore| 265 |  0  | 250 | 380 |
//! | Barcelona| 390 | 250 |  0  |  90 |
//! | Boston   | 255 | 380 |  90 |  0  |
//!
//! Clients reach their **local** DC's access point (ISP); requests to a VM
//! hosted elsewhere traverse the provider's network and pay the matrix
//! latency, exactly as §III-A of the paper describes.

use crate::ids::LocationId;
use pamdc_simcore::time::SimDuration;

/// The four cities of the paper's case study.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum City {
    /// Brisbane, Australia.
    Brisbane,
    /// Bangalore, India.
    Bangalore,
    /// Barcelona, Spain.
    Barcelona,
    /// Boston, Massachusetts.
    Boston,
}

impl City {
    /// All four, in the paper's table order.
    pub const ALL: [City; 4] = [
        City::Brisbane,
        City::Bangalore,
        City::Barcelona,
        City::Boston,
    ];

    /// The paper's three-letter code.
    pub fn code(self) -> &'static str {
        match self {
            City::Brisbane => "BRS",
            City::Bangalore => "BNG",
            City::Barcelona => "BCN",
            City::Boston => "BST",
        }
    }

    /// Dense location id (order of [`City::ALL`]).
    pub fn location(self) -> LocationId {
        LocationId(match self {
            City::Brisbane => 0,
            City::Bangalore => 1,
            City::Barcelona => 2,
            City::Boston => 3,
        })
    }

    /// UTC offset in hours, used to phase-shift the diurnal workload per
    /// region (Brisbane +10, Bangalore +5.5, Barcelona +1, Boston −5).
    pub fn utc_offset_hours(self) -> f64 {
        match self {
            City::Brisbane => 10.0,
            City::Bangalore => 5.5,
            City::Barcelona => 1.0,
            City::Boston => -5.0,
        }
    }
}

/// Symmetric location-to-location latency matrix, milliseconds.
#[derive(Clone, Debug)]
pub struct LatencyMatrix {
    n: usize,
    ms: Vec<f64>,
}

impl LatencyMatrix {
    /// A zeroed `n × n` matrix.
    pub fn zeroed(n: usize) -> Self {
        LatencyMatrix {
            n,
            ms: vec![0.0; n * n],
        }
    }

    /// Number of locations.
    pub fn len(&self) -> usize {
        self.n
    }

    /// True for an empty (0-location) matrix.
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// Sets the latency between `a` and `b` (both directions).
    pub fn set(&mut self, a: LocationId, b: LocationId, ms: f64) {
        assert!(ms >= 0.0, "latency must be non-negative");
        let (i, j) = (a.index(), b.index());
        assert!(i < self.n && j < self.n, "location out of range");
        self.ms[i * self.n + j] = ms;
        self.ms[j * self.n + i] = ms;
    }

    /// Latency between `a` and `b`, ms.
    #[inline]
    pub fn get(&self, a: LocationId, b: LocationId) -> f64 {
        let (i, j) = (a.index(), b.index());
        debug_assert!(i < self.n && j < self.n, "location out of range");
        self.ms[i * self.n + j]
    }

    /// The paper's Table II matrix over the four cities.
    pub fn paper_table2() -> Self {
        use City::*;
        let mut m = LatencyMatrix::zeroed(4);
        let pairs = [
            (Brisbane, Bangalore, 265.0),
            (Brisbane, Barcelona, 390.0),
            (Brisbane, Boston, 255.0),
            (Bangalore, Barcelona, 250.0),
            (Bangalore, Boston, 380.0),
            (Barcelona, Boston, 90.0),
        ];
        for (a, b, ms) in pairs {
            m.set(a.location(), b.location(), ms);
        }
        m
    }
}

/// Bandwidth and latency model for the whole provider network.
#[derive(Clone, Debug)]
pub struct NetworkModel {
    /// Location-to-location latency, ms.
    pub latency: LatencyMatrix,
    /// Inter-DC link bandwidth, Gbps (paper assumes 10).
    pub interdc_bandwidth_gbps: f64,
    /// Intra-DC (same-rack/fabric) bandwidth, Gbps.
    pub intradc_bandwidth_gbps: f64,
    /// Last-mile latency from a client population to its local DC access
    /// point, ms.
    pub local_access_ms: f64,
    /// Fixed freeze + restore overhead added to every migration.
    pub migration_overhead: SimDuration,
    /// Inter-DC transfer price, €/GB (0 = the paper's free network; the
    /// networking-costs extension sets a commercial transit price).
    pub eur_per_gb_interdc: f64,
    /// Floor on the bandwidth share a migration always gets, as a
    /// fraction of the link (reserved so bulk client traffic can never
    /// starve migrations entirely).
    pub migration_min_share: f64,
}

impl NetworkModel {
    /// The paper's network: Table II latencies, 10 Gbps inter-DC links,
    /// free transfers.
    pub fn paper() -> Self {
        NetworkModel {
            latency: LatencyMatrix::paper_table2(),
            interdc_bandwidth_gbps: 10.0,
            intradc_bandwidth_gbps: 10.0,
            local_access_ms: 10.0,
            migration_overhead: SimDuration::from_secs(8),
            eur_per_gb_interdc: 0.0,
            migration_min_share: 0.1,
        }
    }

    /// The networking-costs extension: the paper's network with a
    /// commercial transit price per GB.
    pub fn paper_priced(eur_per_gb: f64) -> Self {
        NetworkModel {
            eur_per_gb_interdc: eur_per_gb,
            ..Self::paper()
        }
    }

    /// Transport latency (seconds) experienced by a request from clients
    /// at `src` to a VM hosted at `dst`: last mile plus, when the VM is
    /// remote, the provider-network hop.
    pub fn transport_secs(&self, src: LocationId, dst: LocationId) -> f64 {
        (self.local_access_ms + self.latency.get(src, dst)) / 1000.0
    }

    /// Wall-clock duration of migrating an image of `image_mb` megabytes
    /// from a host at `from` to a host at `to`: freeze/restore overhead,
    /// plus transfer at the link bandwidth, plus one propagation delay.
    pub fn migration_duration(
        &self,
        image_mb: f64,
        from: LocationId,
        to: LocationId,
    ) -> SimDuration {
        self.migration_duration_shared(image_mb, from, to, 1, 0.0)
    }

    /// Bandwidth-aware migration duration: the transfer shares the link
    /// with `concurrent` total migrations on the same DC pair (≥ 1,
    /// including this one) and with `client_gbps` of background client
    /// traffic. Client traffic is served first but migrations always
    /// keep [`NetworkModel::migration_min_share`] of the raw link; the
    /// remainder splits evenly among the concurrent transfers.
    ///
    /// The effective rate is fixed at departure (no retroactive speed-up
    /// when a co-running transfer finishes early) — pessimistic, simple
    /// and deterministic, in the same spirit as the paper's pessimistic
    /// "SLA is 0 while migrating" assumption.
    pub fn migration_duration_shared(
        &self,
        image_mb: f64,
        from: LocationId,
        to: LocationId,
        concurrent: usize,
        client_gbps: f64,
    ) -> SimDuration {
        debug_assert!(concurrent >= 1, "the migration itself counts");
        debug_assert!(client_gbps >= 0.0);
        let raw = if from == to {
            self.intradc_bandwidth_gbps
        } else {
            self.interdc_bandwidth_gbps
        };
        let after_clients = (raw - client_gbps).max(raw * self.migration_min_share);
        let gbps = after_clients / concurrent.max(1) as f64;
        // MB -> megabits, then / (Gbps -> Mbps).
        let transfer_secs = image_mb * 8.0 / (gbps * 1000.0);
        let prop_secs = self.latency.get(from, to) / 1000.0;
        self.migration_overhead + SimDuration::from_secs_f64(transfer_secs + prop_secs)
    }

    /// Euros charged for shipping `gb` across DCs (zero for intra-DC
    /// moves and on the paper's free network).
    pub fn transfer_cost_eur(&self, gb: f64, from: LocationId, to: LocationId) -> f64 {
        debug_assert!(gb >= 0.0);
        if from == to {
            0.0
        } else {
            gb * self.eur_per_gb_interdc
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table2_matches_paper() {
        let m = LatencyMatrix::paper_table2();
        let loc = |c: City| c.location();
        assert_eq!(m.get(loc(City::Brisbane), loc(City::Bangalore)), 265.0);
        assert_eq!(m.get(loc(City::Brisbane), loc(City::Barcelona)), 390.0);
        assert_eq!(m.get(loc(City::Brisbane), loc(City::Boston)), 255.0);
        assert_eq!(m.get(loc(City::Bangalore), loc(City::Barcelona)), 250.0);
        assert_eq!(m.get(loc(City::Bangalore), loc(City::Boston)), 380.0);
        assert_eq!(m.get(loc(City::Barcelona), loc(City::Boston)), 90.0);
        for c in City::ALL {
            assert_eq!(m.get(loc(c), loc(c)), 0.0, "diagonal must be 0");
        }
    }

    #[test]
    fn matrix_is_symmetric() {
        let m = LatencyMatrix::paper_table2();
        for a in City::ALL {
            for b in City::ALL {
                assert_eq!(
                    m.get(a.location(), b.location()),
                    m.get(b.location(), a.location())
                );
            }
        }
    }

    #[test]
    fn transport_includes_last_mile() {
        let net = NetworkModel::paper();
        let bcn = City::Barcelona.location();
        let bst = City::Boston.location();
        // Local access only: 10 ms.
        assert!((net.transport_secs(bcn, bcn) - 0.010).abs() < 1e-12);
        // Remote: 10 ms + 90 ms.
        assert!((net.transport_secs(bcn, bst) - 0.100).abs() < 1e-12);
    }

    #[test]
    fn migration_duration_scales_with_image_and_distance() {
        let net = NetworkModel::paper();
        let bcn = City::Barcelona.location();
        let brs = City::Brisbane.location();
        let small_local = net.migration_duration(1024.0, bcn, bcn);
        let big_local = net.migration_duration(8192.0, bcn, bcn);
        let big_remote = net.migration_duration(8192.0, bcn, brs);
        assert!(big_local > small_local);
        assert!(big_remote > big_local, "propagation delay must add");
        // 2 GB over 10 Gbps ≈ 1.6 s transfer + 8 s overhead.
        let d = net.migration_duration(2048.0, bcn, bcn);
        assert!((d.as_secs_f64() - (8.0 + 2048.0 * 8.0 / 10_000.0)).abs() < 0.01);
    }

    #[test]
    fn shared_bandwidth_stretches_transfers() {
        let net = NetworkModel::paper();
        let bcn = City::Barcelona.location();
        let bst = City::Boston.location();
        let alone = net.migration_duration_shared(8192.0, bcn, bst, 1, 0.0);
        let storm = net.migration_duration_shared(8192.0, bcn, bst, 4, 0.0);
        let congested = net.migration_duration_shared(8192.0, bcn, bst, 1, 8.0);
        assert_eq!(alone, net.migration_duration(8192.0, bcn, bst));
        assert!(storm > alone, "4-way split must be slower");
        assert!(congested > alone, "client traffic must slow the transfer");
        // Transfer part scales ~4x in the storm (overhead+prop fixed).
        let fixed = 8.0 + 0.09;
        let t1 = alone.as_secs_f64() - fixed;
        let t4 = storm.as_secs_f64() - fixed;
        assert!((t4 / t1 - 4.0).abs() < 0.01, "ratio {}", t4 / t1);
    }

    #[test]
    fn migrations_never_starve() {
        let net = NetworkModel::paper();
        let bcn = City::Barcelona.location();
        let bst = City::Boston.location();
        // Client traffic beyond the link capacity: the reserved 10% share
        // still carries the migration.
        let flooded = net.migration_duration_shared(1000.0, bcn, bst, 1, 50.0);
        let floor_secs = 1000.0 * 8.0 / (10.0 * 0.1 * 1000.0);
        assert!((flooded.as_secs_f64() - (8.0 + 0.09 + floor_secs)).abs() < 0.01);
    }

    #[test]
    fn transfer_pricing() {
        let free = NetworkModel::paper();
        let priced = NetworkModel::paper_priced(0.02);
        let bcn = City::Barcelona.location();
        let bst = City::Boston.location();
        assert_eq!(free.transfer_cost_eur(5.0, bcn, bst), 0.0);
        assert!((priced.transfer_cost_eur(5.0, bcn, bst) - 0.10).abs() < 1e-12);
        assert_eq!(
            priced.transfer_cost_eur(5.0, bcn, bcn),
            0.0,
            "intra-DC is free"
        );
    }

    #[test]
    fn city_metadata() {
        assert_eq!(City::Barcelona.code(), "BCN");
        assert_eq!(City::ALL.len(), 4);
        // Brisbane is ahead of Boston.
        assert!(City::Brisbane.utc_offset_hours() > City::Boston.utc_offset_hours());
    }
}
