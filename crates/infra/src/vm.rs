//! Virtual machines (hosted web-services).
//!
//! A VM boxes one customer web-service. Its SLA parameters (`RT0`, `α`)
//! come straight from the paper's SLA function; its image size determines
//! migration cost; its base memory is the allocation floor below which the
//! guest OS cannot operate.

use crate::ids::{LocationId, PmId, VmId};
use pamdc_simcore::time::SimTime;

/// Static description of a VM / hosted web-service.
#[derive(Clone, Debug)]
pub struct VmSpec {
    /// Disk image size, MB — drives migration transfer time.
    pub image_size_mb: f64,
    /// Memory floor, MB (guest OS + stack idle footprint).
    pub base_mem_mb: f64,
    /// SLA: response time fully satisfying the agreement, seconds
    /// (the paper uses 0.1 s).
    pub rt0_secs: f64,
    /// SLA: tolerance multiplier; fulfillment reaches 0 at `alpha * rt0`
    /// (the paper uses 10).
    pub alpha: f64,
}

impl VmSpec {
    /// The paper's experimental web-service VM: 0.1 s RT0, α = 10, a few
    /// GB of image, 256 MB base footprint.
    pub fn web_service() -> Self {
        VmSpec {
            image_size_mb: 2048.0,
            base_mem_mb: 256.0,
            rt0_secs: 0.1,
            alpha: 10.0,
        }
    }

    /// A heavier service variant (bigger image, more base memory) used in
    /// heterogeneous-fleet tests.
    pub fn heavy_service() -> Self {
        VmSpec {
            image_size_mb: 8192.0,
            base_mem_mb: 512.0,
            rt0_secs: 0.1,
            alpha: 10.0,
        }
    }
}

/// VM runtime state.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum VmState {
    /// Serving requests on its current host.
    Running,
    /// Frozen and in transit. The paper's pessimistic assumption: while
    /// migrating the VM does not respond at all, so its SLA is 0.
    Migrating {
        /// Source host.
        from: PmId,
        /// Destination host.
        to: PmId,
        /// Restore-completion instant.
        until: SimTime,
    },
}

/// A virtual machine.
#[derive(Clone, Debug)]
pub struct VirtualMachine {
    /// This VM's identifier.
    pub id: VmId,
    /// Static spec.
    pub spec: VmSpec,
    /// The location whose clients this service primarily targets (its
    /// customer picked this DC region when signing up).
    pub home: LocationId,
    state: VmState,
    migration_count: u64,
}

impl VirtualMachine {
    /// A new, running VM.
    pub fn new(id: VmId, spec: VmSpec, home: LocationId) -> Self {
        VirtualMachine {
            id,
            spec,
            home,
            state: VmState::Running,
            migration_count: 0,
        }
    }

    /// Current runtime state.
    pub fn state(&self) -> VmState {
        self.state
    }

    /// True when the VM is frozen in transit.
    pub fn is_migrating(&self) -> bool {
        matches!(self.state, VmState::Migrating { .. })
    }

    /// Lifetime number of migrations started.
    pub fn migration_count(&self) -> u64 {
        self.migration_count
    }

    /// Marks the VM as in-flight between hosts.
    pub fn begin_migration(&mut self, from: PmId, to: PmId, until: SimTime) {
        debug_assert!(!self.is_migrating(), "{} is already migrating", self.id);
        self.state = VmState::Migrating { from, to, until };
        self.migration_count += 1;
    }

    /// Completes an in-flight migration if its restore time has passed.
    /// Returns the destination host on completion.
    pub fn try_complete_migration(&mut self, now: SimTime) -> Option<PmId> {
        if let VmState::Migrating { to, until, .. } = self.state {
            if now >= until {
                self.state = VmState::Running;
                return Some(to);
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn migration_state_machine() {
        let mut vm = VirtualMachine::new(VmId(0), VmSpec::web_service(), LocationId(2));
        assert_eq!(vm.state(), VmState::Running);
        assert_eq!(vm.migration_count(), 0);

        vm.begin_migration(PmId(0), PmId(1), SimTime::from_secs(30));
        assert!(vm.is_migrating());
        assert_eq!(vm.migration_count(), 1);

        assert_eq!(vm.try_complete_migration(SimTime::from_secs(29)), None);
        assert!(vm.is_migrating());
        assert_eq!(
            vm.try_complete_migration(SimTime::from_secs(30)),
            Some(PmId(1))
        );
        assert_eq!(vm.state(), VmState::Running);
    }

    #[test]
    fn specs_have_paper_sla_params() {
        let s = VmSpec::web_service();
        assert!((s.rt0_secs - 0.1).abs() < 1e-12);
        assert!((s.alpha - 10.0).abs() < 1e-12);
        assert!(VmSpec::heavy_service().image_size_mb > s.image_size_mb);
    }
}
