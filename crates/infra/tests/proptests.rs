//! Property-based tests for the infrastructure model.

use pamdc_infra::prelude::*;
use pamdc_simcore::prelude::*;
use proptest::prelude::*;

fn arb_resources() -> impl Strategy<Value = Resources> {
    (0.0f64..500.0, 0.0f64..8192.0, 0.0f64..1e5, 0.0f64..1e5)
        .prop_map(|(c, m, i, o)| Resources::new(c, m, i, o))
}

proptest! {
    /// Resource addition/subtraction respect the vector-space laws on the
    /// non-negative orthant.
    #[test]
    fn resource_algebra_laws(a in arb_resources(), b in arb_resources()) {
        let sum = a + b;
        prop_assert!(sum.is_valid());
        prop_assert!(a.fits_within(&sum));
        prop_assert!(b.fits_within(&sum));
        let back = sum - b;
        prop_assert!((back.cpu - a.cpu).abs() < 1e-9);
        prop_assert!((back.mem_mb - a.mem_mb).abs() < 1e-9);
        // saturating_sub never goes negative.
        prop_assert!(a.saturating_sub(&b).is_valid());
        prop_assert!(b.saturating_sub(&a).is_valid());
    }

    /// dominant_share is 1 exactly at capacity and scales linearly.
    #[test]
    fn dominant_share_scaling(a in arb_resources(), k in 0.01f64..1.0) {
        let cap = Resources::new(500.0, 8192.0, 1e5, 1e5);
        let full = a.dominant_share(&cap);
        let scaled = (a * k).dominant_share(&cap);
        prop_assert!((scaled - full * k).abs() < 1e-9);
    }

    /// Power draw is monotone in CPU and bounded by the curve top.
    #[test]
    fn power_monotone_and_bounded(cpu1 in 0.0f64..600.0, cpu2 in 0.0f64..600.0) {
        let p = PowerModel::atom_4core();
        let (lo, hi) = if cpu1 <= cpu2 { (cpu1, cpu2) } else { (cpu2, cpu1) };
        prop_assert!(p.it_watts(lo) <= p.it_watts(hi) + 1e-12);
        prop_assert!(p.it_watts(hi) <= 31.8 + 1e-12);
        prop_assert!(p.it_watts(lo) >= 27.0 - 1e-12);
    }

    /// Energy integration is additive over time splits.
    #[test]
    fn energy_additive(watts in 0.0f64..500.0, mins_a in 1u64..600, mins_b in 1u64..600) {
        let price = 0.15;
        let mut whole = EnergyMeter::new();
        whole.accumulate(watts, SimDuration::from_mins(mins_a + mins_b), price);
        let mut split = EnergyMeter::new();
        split.accumulate(watts, SimDuration::from_mins(mins_a), price);
        split.accumulate(watts, SimDuration::from_mins(mins_b), price);
        prop_assert!((whole.watt_hours() - split.watt_hours()).abs() < 1e-9);
        prop_assert!((whole.cost_eur() - split.cost_eur()).abs() < 1e-12);
    }

    /// Migration blackout fraction is within [0,1] and proportional to
    /// overlap.
    #[test]
    fn blackout_fraction_bounded(
        start in 0u64..10_000,
        dur in 1u64..5_000,
        win_start in 0u64..10_000,
        win_len in 1u64..5_000,
    ) {
        let m = Migration {
            vm: VmId(0), from: PmId(0), to: PmId(1),
            started: SimTime::from_secs(start),
            completes: SimTime::from_secs(start + dur),
            cross_dc: false,
        };
        let f = m.blackout_fraction(
            SimTime::from_secs(win_start),
            SimTime::from_secs(win_start + win_len),
        );
        prop_assert!((0.0..=1.0).contains(&f), "fraction {f}");
    }

    /// The sliding window mean always lies within [min, max] of its
    /// contents and matches a naive recomputation.
    #[test]
    fn window_mean_matches_naive(cpus in proptest::collection::vec(0.0f64..400.0, 1..50), cap in 1usize..20) {
        let mut w = SlidingWindow::new(cap);
        for &c in &cpus {
            w.push(Resources::new(c, 0.0, 0.0, 0.0));
        }
        let held: Vec<f64> = cpus.iter().rev().take(cap).copied().collect();
        let naive = held.iter().sum::<f64>() / held.len() as f64;
        prop_assert!((w.mean().cpu - naive).abs() < 1e-6);
    }

    /// Gateway settle conserves requests: arrived + old backlog =
    /// served + queued + dropped.
    #[test]
    fn gateway_conserves_requests(
        steps in proptest::collection::vec((0.0f64..500.0, 0.0f64..500.0), 1..50),
        bound in 0.0f64..1000.0,
    ) {
        let mut g = Gateway::new(1, bound);
        let vm = VmId(0);
        for (arrived, served_try) in steps {
            let before = g.backlog(vm);
            let s = g.settle(vm, arrived, served_try);
            let total_in = before + arrived;
            let total_out = s.served + s.queued + s.dropped;
            prop_assert!((total_in - total_out).abs() < 1e-6,
                "conservation violated: in {total_in} out {total_out}");
            prop_assert!(g.backlog(vm) <= bound + 1e-9);
        }
    }

    /// Random migration sequences preserve cluster invariants.
    #[test]
    fn cluster_invariants_under_random_migrations(seed in 0u64..5_000) {
        let mut rng = RngStream::root(seed);
        let mut c = Cluster::new(NetworkModel::paper());
        let mut dcs = Vec::new();
        for (i, city) in City::ALL.iter().enumerate() {
            let dc = c.add_datacenter(city.code(), city.location(), 0.10 + i as f64 * 0.01);
            for _ in 0..2 {
                c.add_pm(dc, MachineSpec::atom());
            }
            dcs.push(dc);
        }
        for i in 0..5 {
            let vm = c.add_vm(VmSpec::web_service(), City::ALL[i % 4].location());
            let pm = PmId::from_index(rng.index(8));
            c.deploy(vm, pm, SimTime::ZERO);
        }
        c.check_invariants();
        let mut now = SimTime::from_mins(5);
        for _ in 0..30 {
            c.tick(now);
            let vm = VmId::from_index(rng.index(5));
            let to = PmId::from_index(rng.index(8));
            let _ = c.migrate(vm, to, now);
            c.check_invariants();
            now += SimDuration::from_mins(1);
        }
        // Drain all migrations.
        c.tick(now + SimDuration::from_hours(1));
        c.check_invariants();
        for vm in 0..5 {
            prop_assert!(!c.vm(VmId(vm)).is_migrating());
        }
    }
}
