//! `pamdc` — the scenario-engine command line.
//!
//! ```text
//! pamdc list [--names]
//! pamdc show fig4
//! pamdc run  <spec.toml | builtin> [--quick] [--csv out.csv] [--json out.json]
//! pamdc sweep <spec.toml | builtin> --param a=1,2 [--param b=x,y ...]
//!             [--quick] [--csv ...] [--json ...]
//! pamdc campaign <campaign.toml> [--quick] [--csv ...] [--json ...]
//! pamdc record <spec.toml | builtin> --out trace.csv [--hours N]
//! pamdc replay <trace.csv> [--spec <spec|builtin>] [--hours N] [--rate-scale K]
//!              [--stretch F] [--remap 3,2,1,0] [--quick] [--csv ...] [--json ...]
//! pamdc import <dataset.csv> --format azure|alibaba --out trace.csv
//!              [--tick-secs N] [--regions N] [--rate-scale K] [--stretch F]
//!              [--remap 3,2,1,0] [--max-services N] [--max-ticks N]
//! pamdc serve <spec> --feed <feed.csv> [--session <dir>] [--budget-ms N]
//!             [--poll-ms N] [--max-ticks N]
//! pamdc replay --manifest <session.json>
//! pamdc trace summarize <trace.jsonl>
//! ```
//!
//! Specs resolve as a file path first, then as a built-in registry name.
//! Everything is deterministic: sweeps and campaigns fan out via
//! `simcore::par` and every run derives its randomness from the spec's
//! seed. Repeating `--param` sweeps the full cartesian product. Even
//! the live daemon (`serve`) is replayable: it records every consumed
//! tick and degraded round, and `replay --manifest` re-executes the
//! session bit-for-bit (docs/SERVE.md).

use pamdc_scenario::campaign::{self, Campaign};
use pamdc_scenario::output::{reports_csv, reports_json};
use pamdc_scenario::registry;
use pamdc_scenario::runner::{run_spec, SpecReport};
use pamdc_scenario::spec::ScenarioSpec;
use pamdc_simcore::time::SimDuration;
use pamdc_workload::trace::{DemandTrace, TraceSource};
use std::path::{Path, PathBuf};
use std::process::ExitCode;

mod serve;

const USAGE: &str = "\
pamdc — power-aware multi-DC scenario engine (Berral, Gavaldà & Torres, ICPP 2013)

USAGE:
  pamdc list [--names]               list built-in paper scenarios
  pamdc show <builtin>               print a built-in spec as TOML
  pamdc run <spec> [opts]            run a spec (file path or built-in name)
  pamdc sweep <spec> --param k=a,b,c [--param k2=x,y ...] [opts]
                                     run the cartesian product, in parallel
  pamdc campaign <file> [opts]       run every spec a campaign file lists,
                                     merged into one CSV/JSON
  pamdc record <spec> --out <trace.csv> [--hours N]
                                     dump the spec's synthetic demand to a trace
  pamdc replay <trace.csv> [--spec <spec>] [--rate-scale K] [--stretch F]
               [--remap 3,2,1,0] [opts]
                                     drive a simulation from a recorded trace
  pamdc import <dataset.csv> --format azure|alibaba --out <trace.csv>
               [--tick-secs N] [--regions N] [--rate-scale K] [--stretch F]
               [--remap 3,2,1,0] [--max-services N] [--max-ticks N]
                                     normalize a public dataset (Azure VM
                                     trace / Alibaba cluster trace) into a
                                     replayable pamdc trace (docs/TRACES.md)
  pamdc serve <spec> --feed <feed.csv> [--session <dir>] [--budget-ms N]
              [--poll-ms N] [--max-ticks N] [opts]
                                     daemon: tail a live demand feed, one MAPE
                                     step per consumed tick, periodic snapshots
                                     and a JSONL status stream (docs/SERVE.md)
  pamdc replay --manifest <session.json> [opts]
                                     re-execute a recorded serve session
                                     bit-for-bit, degraded rounds included
  pamdc trace summarize <trace.jsonl>
                                     per-phase wall-clock breakdown of a
                                     JSONL run trace (docs/OBSERVABILITY.md)

OPTIONS:
  --quick          use each experiment's quick preset (CI smoke)
  --csv <path>     write run metrics as CSV
  --json <path>    write run metrics as JSON
  --hours <n>      override the simulated horizon
  --jobs <n>       cap concurrent runs (sweep, campaign; default: one
                   per hardware thread) — results are identical at any
                   budget
  --out <path>     output path (record, import)
  --names          machine-readable listing: names only (list)
  --trace-out <p>  stream a JSONL trace of the run (run, replay)
  --progress       heartbeat to stderr every simulated hour
  --quiet          only warnings and errors on stderr (PAMDC_LOG also
                   sets the level: error|warn|info|debug)
";

/// A parsed invocation.
#[derive(Clone, Debug, PartialEq)]
enum Cmd {
    List {
        names_only: bool,
    },
    Show {
        name: String,
    },
    Run {
        spec: String,
        opts: Opts,
    },
    Sweep {
        spec: String,
        /// `(key, values)` per `--param`, in flag order; the sweep runs
        /// the full cartesian product (later params vary fastest).
        params: Vec<(String, Vec<String>)>,
        opts: Opts,
    },
    Campaign {
        file: PathBuf,
        opts: Opts,
    },
    Record {
        spec: String,
        out: PathBuf,
        hours: Option<u64>,
    },
    Replay {
        /// Trace to replay; `None` when `--manifest` drives instead.
        trace: Option<PathBuf>,
        /// Serve-session manifest (`session.json`) to re-execute.
        manifest: Option<PathBuf>,
        spec: Option<String>,
        rate_scale: f64,
        stretch: f64,
        remap: Vec<usize>,
        opts: Opts,
    },
    Serve {
        spec: String,
        feed: PathBuf,
        session: Option<PathBuf>,
        max_ticks: Option<usize>,
        poll_ms: u64,
        budget_ms: Option<u64>,
        opts: Opts,
    },
    Import {
        file: PathBuf,
        format: String,
        out: PathBuf,
        tick_secs: Option<u64>,
        regions: Option<usize>,
        rate_scale: f64,
        stretch: f64,
        remap: Vec<usize>,
        max_services: Option<usize>,
        max_ticks: Option<usize>,
    },
    TraceSummarize {
        file: PathBuf,
    },
}

/// Options shared by run/sweep/replay.
#[derive(Clone, Debug, Default, PartialEq)]
struct Opts {
    quick: bool,
    csv: Option<PathBuf>,
    json: Option<PathBuf>,
    hours: Option<u64>,
    /// Parallel budget for sweep/campaign fan-outs (`None` = one
    /// worker per hardware thread).
    jobs: Option<usize>,
    /// JSONL trace destination (run, replay).
    trace_out: Option<PathBuf>,
    /// Hourly stderr heartbeat.
    progress: bool,
    /// Lower the stderr level to warnings and errors.
    quiet: bool,
}

fn parse_args(args: &[String]) -> Result<Cmd, String> {
    let mut it = args.iter();
    let cmd = it.next().ok_or_else(|| "missing command".to_string())?;
    let rest: Vec<&String> = it.collect();

    // Pull `--flag [value]` pairs out; positionals remain.
    let mut positional: Vec<String> = Vec::new();
    let mut opts = Opts::default();
    let mut params: Vec<String> = Vec::new();
    let mut out: Option<PathBuf> = None;
    let mut spec_flag: Option<String> = None;
    let mut names_only = false;
    let mut rate_scale = 1.0f64;
    let mut stretch = 1.0f64;
    let mut remap: Vec<usize> = Vec::new();
    let mut format: Option<String> = None;
    let mut tick_secs: Option<u64> = None;
    let mut regions: Option<usize> = None;
    let mut max_services: Option<usize> = None;
    let mut max_ticks: Option<usize> = None;
    let mut feed: Option<PathBuf> = None;
    let mut session: Option<PathBuf> = None;
    let mut poll_ms: u64 = 200;
    let mut budget_ms: Option<u64> = None;
    let mut manifest: Option<PathBuf> = None;

    let mut i = 0;
    while i < rest.len() {
        let arg = rest[i].as_str();
        let mut value = |name: &str| -> Result<String, String> {
            i += 1;
            rest.get(i)
                .map(|s| s.to_string())
                .ok_or_else(|| format!("{name} needs a value"))
        };
        match arg {
            "--quick" => opts.quick = true,
            "--csv" => opts.csv = Some(PathBuf::from(value("--csv")?)),
            "--json" => opts.json = Some(PathBuf::from(value("--json")?)),
            "--hours" => {
                opts.hours = Some(
                    value("--hours")?
                        .parse()
                        .map_err(|_| "--hours needs an integer".to_string())?,
                )
            }
            "--param" => params.push(value("--param")?),
            "--jobs" => {
                let jobs: usize = value("--jobs")?
                    .parse()
                    .map_err(|_| "--jobs needs an integer".to_string())?;
                if jobs == 0 {
                    return Err("--jobs must be >= 1".into());
                }
                opts.jobs = Some(jobs);
            }
            "--names" => names_only = true,
            "--trace-out" => opts.trace_out = Some(PathBuf::from(value("--trace-out")?)),
            "--progress" => opts.progress = true,
            "--quiet" => opts.quiet = true,
            "--out" => out = Some(PathBuf::from(value("--out")?)),
            "--spec" => spec_flag = Some(value("--spec")?),
            "--rate-scale" => {
                rate_scale = value("--rate-scale")?
                    .parse()
                    .map_err(|_| "--rate-scale needs a number".to_string())?
            }
            "--stretch" => {
                stretch = value("--stretch")?
                    .parse()
                    .map_err(|_| "--stretch needs a number".to_string())?
            }
            "--remap" => {
                remap = value("--remap")?
                    .split(',')
                    .map(|p| p.trim().parse::<usize>())
                    .collect::<Result<_, _>>()
                    .map_err(|_| "--remap needs comma-separated region indices".to_string())?
            }
            "--format" => format = Some(value("--format")?),
            "--tick-secs" => {
                tick_secs = Some(
                    value("--tick-secs")?
                        .parse()
                        .map_err(|_| "--tick-secs needs an integer".to_string())?,
                )
            }
            "--regions" => {
                regions = Some(
                    value("--regions")?
                        .parse()
                        .map_err(|_| "--regions needs an integer".to_string())?,
                )
            }
            "--max-services" => {
                max_services = Some(
                    value("--max-services")?
                        .parse()
                        .map_err(|_| "--max-services needs an integer".to_string())?,
                )
            }
            "--max-ticks" => {
                max_ticks = Some(
                    value("--max-ticks")?
                        .parse()
                        .map_err(|_| "--max-ticks needs an integer".to_string())?,
                )
            }
            "--feed" => feed = Some(PathBuf::from(value("--feed")?)),
            "--session" => session = Some(PathBuf::from(value("--session")?)),
            "--poll-ms" => {
                poll_ms = value("--poll-ms")?
                    .parse()
                    .map_err(|_| "--poll-ms needs an integer".to_string())?
            }
            "--budget-ms" => {
                budget_ms = Some(
                    value("--budget-ms")?
                        .parse()
                        .map_err(|_| "--budget-ms needs an integer".to_string())?,
                )
            }
            "--manifest" => manifest = Some(PathBuf::from(value("--manifest")?)),
            other if other.starts_with("--") => return Err(format!("unknown option {other}")),
            other => positional.push(other.to_string()),
        }
        i += 1;
    }

    let one_positional = |what: &str| -> Result<String, String> {
        match positional.as_slice() {
            [one] => Ok(one.clone()),
            [] => Err(format!("missing {what}")),
            more => Err(format!("unexpected extra arguments {more:?}")),
        }
    };

    match cmd.as_str() {
        "list" => Ok(Cmd::List { names_only }),
        "show" => Ok(Cmd::Show {
            name: one_positional("built-in name")?,
        }),
        "run" => Ok(Cmd::Run {
            spec: one_positional("spec path or built-in name")?,
            opts,
        }),
        "sweep" => {
            if opts.trace_out.is_some() {
                return Err("--trace-out only applies to single runs (run, replay)".into());
            }
            let spec = one_positional("spec path or built-in name")?;
            if params.is_empty() {
                return Err("sweep needs --param key=v1,v2,... (repeatable)".into());
            }
            let mut parsed: Vec<(String, Vec<String>)> = Vec::with_capacity(params.len());
            for param in &params {
                let (key, values) = param
                    .split_once('=')
                    .ok_or("--param must look like key=v1,v2,...")?;
                let values: Vec<String> = values
                    .split(',')
                    .map(|v| v.trim().to_string())
                    .filter(|v| !v.is_empty())
                    .collect();
                if values.is_empty() {
                    return Err(format!("--param {key} needs at least one value"));
                }
                let key = key.trim().to_string();
                if parsed.iter().any(|(k, _)| *k == key) {
                    return Err(format!("--param {key} given twice"));
                }
                parsed.push((key, values));
            }
            Ok(Cmd::Sweep {
                spec,
                params: parsed,
                opts,
            })
        }
        "campaign" => {
            if opts.trace_out.is_some() {
                return Err("--trace-out only applies to single runs (run, replay)".into());
            }
            Ok(Cmd::Campaign {
                file: PathBuf::from(one_positional("campaign file")?),
                opts,
            })
        }
        "record" => Ok(Cmd::Record {
            spec: one_positional("spec path or built-in name")?,
            out: out.ok_or("record needs --out <trace.csv>")?,
            hours: opts.hours,
        }),
        "replay" => {
            let trace = match (&manifest, positional.as_slice()) {
                (Some(_), []) => None,
                (Some(_), _) => {
                    return Err("replay takes either a trace file or --manifest, not both".into())
                }
                (None, _) => Some(PathBuf::from(one_positional("trace path (or --manifest)")?)),
            };
            Ok(Cmd::Replay {
                trace,
                manifest,
                spec: spec_flag,
                rate_scale,
                stretch,
                remap,
                opts,
            })
        }
        "serve" => Ok(Cmd::Serve {
            spec: one_positional("spec path or built-in name")?,
            feed: feed.ok_or("serve needs --feed <feed.csv>")?,
            session,
            max_ticks,
            poll_ms,
            budget_ms,
            opts,
        }),
        "import" => Ok(Cmd::Import {
            file: PathBuf::from(one_positional("dataset path")?),
            format: format.ok_or("import needs --format azure|alibaba")?,
            out: out.ok_or("import needs --out <trace.csv>")?,
            tick_secs,
            regions,
            rate_scale,
            stretch,
            remap,
            max_services,
            max_ticks,
        }),
        "trace" => match positional.as_slice() {
            [sub, file] if sub == "summarize" => Ok(Cmd::TraceSummarize {
                file: PathBuf::from(file),
            }),
            _ => Err("trace usage: pamdc trace summarize <trace.jsonl>".into()),
        },
        "help" | "--help" | "-h" => Err(String::new()),
        other => Err(format!("unknown command {other:?}")),
    }
}

/// Resolves a spec argument: file path first, then built-in name.
/// Returns the spec and the directory trace paths resolve against.
fn load_spec(arg: &str) -> Result<(ScenarioSpec, PathBuf), String> {
    load_spec_in(arg, Path::new(""))
}

/// [`load_spec`] with relative paths anchored at `base_dir` (campaign
/// entries resolve against the campaign file's directory).
fn load_spec_in(arg: &str, base_dir: &Path) -> Result<(ScenarioSpec, PathBuf), String> {
    let path = base_dir.join(arg);
    let path = path.as_path();
    if path.is_file() {
        let text = std::fs::read_to_string(path)
            .map_err(|e| format!("cannot read {}: {e}", path.display()))?;
        let spec = ScenarioSpec::parse(&text).map_err(|e| format!("{}: {e}", path.display()))?;
        let base = path.parent().unwrap_or(Path::new(".")).to_path_buf();
        return Ok((spec, base));
    }
    if let Some(builtin) = registry::find(arg) {
        return Ok((builtin.spec, PathBuf::from(".")));
    }
    Err(format!(
        "{arg:?} is neither a spec file nor a built-in (try `pamdc list`)"
    ))
}

fn write_outputs(reports: &[SpecReport], opts: &Opts) -> Result<(), String> {
    if let Some(path) = &opts.csv {
        std::fs::write(path, reports_csv(reports))
            .map_err(|e| format!("cannot write {}: {e}", path.display()))?;
        pamdc_obs::info!("wrote {}", path.display());
    }
    if let Some(path) = &opts.json {
        std::fs::write(path, reports_json(reports))
            .map_err(|e| format!("cannot write {}: {e}", path.display()))?;
        pamdc_obs::info!("wrote {}", path.display());
    }
    Ok(())
}

/// The trace destination a run resolves to: the `--trace-out` flag wins,
/// then the spec's `[profile] trace_out` (relative to the invoking cwd).
fn resolve_trace_out(opts: &Opts, spec: &ScenarioSpec) -> Option<PathBuf> {
    opts.trace_out
        .clone()
        .or_else(|| spec.profile.trace_out.as_ref().map(PathBuf::from))
}

/// Installs the JSONL file sink when a destination is set. The returned
/// flag tells the caller to [`pamdc_obs::trace::finish`] afterwards.
fn install_trace(path: Option<&PathBuf>) -> Result<bool, String> {
    match path {
        None => Ok(false),
        Some(path) => {
            pamdc_obs::trace::install_file(path)
                .map_err(|e| format!("cannot create {}: {e}", path.display()))?;
            Ok(true)
        }
    }
}

fn finish_trace(path: &Path) -> Result<(), String> {
    pamdc_obs::trace::finish().map_err(|e| format!("cannot write {}: {e}", path.display()))?;
    pamdc_obs::info!("wrote trace {}", path.display());
    Ok(())
}

fn cmd_list(names_only: bool) {
    if names_only {
        for b in registry::builtins() {
            println!("{}", b.name);
        }
        return;
    }
    println!("built-in scenarios ({}):\n", registry::builtins().len());
    let width = registry::builtins()
        .iter()
        .map(|b| b.name.len())
        .max()
        .unwrap_or(0);
    for b in registry::builtins() {
        println!("  {:width$}  {}", b.name, b.title);
    }
    println!("\nrun one with `pamdc run <name>`; inspect with `pamdc show <name>`.");
}

fn cmd_run(spec_arg: &str, opts: &Opts) -> Result<(), String> {
    let (mut spec, base) = load_spec(spec_arg)?;
    if let Some(hours) = opts.hours {
        spec.run.hours = hours;
    }
    if opts.progress {
        spec.profile.progress = true;
    }
    let trace_out = resolve_trace_out(opts, &spec);
    let tracing = install_trace(trace_out.as_ref())?;
    let report = run_spec(&spec, &base, opts.quick).map_err(|e| e.to_string())?;
    println!("{}", report.text);
    if tracing {
        finish_trace(trace_out.as_ref().expect("tracing implies a path"))?;
    }
    write_outputs(std::slice::from_ref(&report), opts)
}

/// Expands the cartesian product of every `--param` axis. Each variant
/// carries its override suffix (`k1=v1,k2=v2`); later params vary
/// fastest, so rows group by the first axis.
fn cartesian(
    base_spec: &ScenarioSpec,
    params: &[(String, Vec<String>)],
) -> Result<Vec<(String, ScenarioSpec)>, String> {
    let mut variants: Vec<(String, ScenarioSpec)> = vec![(String::new(), base_spec.clone())];
    for (key, values) in params {
        let mut next = Vec::with_capacity(variants.len() * values.len());
        for (suffix, spec) in &variants {
            for value in values {
                let v = spec.with_param(key, value).map_err(|e| {
                    let hints: Vec<&str> = pamdc_scenario::spec::sweepable_params()
                        .keys()
                        .copied()
                        .collect();
                    format!("{e}\nsweepable keys include: {}", hints.join(", "))
                })?;
                let suffix = if suffix.is_empty() {
                    format!("{key}={value}")
                } else {
                    format!("{suffix},{key}={value}")
                };
                next.push((suffix, v));
            }
        }
        variants = next;
    }
    Ok(variants)
}

fn cmd_sweep(spec_arg: &str, params: &[(String, Vec<String>)], opts: &Opts) -> Result<(), String> {
    let (mut base_spec, base) = load_spec(spec_arg)?;
    if let Some(hours) = opts.hours {
        base_spec.run.hours = hours;
    }
    // Build every variant up front so a bad value fails before any work.
    let mut variants = cartesian(&base_spec, params)?;
    for (suffix, spec) in &mut variants {
        spec.name = format!("{}[{suffix}]", base_spec.name);
        if opts.progress {
            spec.profile.progress = true;
        }
    }
    let axes: Vec<String> = params
        .iter()
        .map(|(k, vs)| format!("{k} ({} values)", vs.len()))
        .collect();
    pamdc_obs::info!(
        "sweeping {} -> {} variants...",
        axes.join(" x "),
        variants.len()
    );
    let quick = opts.quick;
    let base_dir = base.clone();
    let reports: Vec<Result<SpecReport, String>> =
        pamdc_simcore::par::parallel_map_bounded(variants, opts.jobs, move |(suffix, spec)| {
            run_spec(&spec, &base_dir, quick).map_err(|e| format!("{suffix}: {e}"))
        });
    // `parallel_map` preserves input order, so rows line up with values.
    let mut ok = Vec::with_capacity(reports.len());
    for r in reports {
        ok.push(r?);
    }
    println!("{}", reports_csv(&ok));
    write_outputs(&ok, opts)
}

fn cmd_campaign(file: &Path, opts: &Opts) -> Result<(), String> {
    let text = std::fs::read_to_string(file)
        .map_err(|e| format!("cannot read {}: {e}", file.display()))?;
    let campaign = Campaign::parse(&text).map_err(|e| format!("{}: {e}", file.display()))?;
    let campaign_dir = file.parent().unwrap_or(Path::new("")).to_path_buf();

    // Resolve and override every entry up front: a typo in run 7 fails
    // before run 1 burns any compute.
    let mut jobs: Vec<(ScenarioSpec, PathBuf)> = Vec::with_capacity(campaign.runs.len());
    for run in &campaign.runs {
        let (spec, base_dir) = load_spec_in(&run.spec, &campaign_dir)?;
        let mut spec =
            campaign::apply_overrides(&spec, run).map_err(|e| format!("{}: {e}", run.spec))?;
        if let Some(hours) = opts.hours {
            spec.run.hours = hours;
        }
        if opts.progress {
            spec.profile.progress = true;
        }
        jobs.push((spec, base_dir));
    }
    match opts.jobs {
        Some(budget) => pamdc_obs::info!(
            "campaign '{}': {} runs, at most {budget} in parallel...",
            campaign.name,
            jobs.len()
        ),
        None => pamdc_obs::info!(
            "campaign '{}': {} runs, in parallel...",
            campaign.name,
            jobs.len()
        ),
    }
    let quick = opts.quick;
    let reports: Vec<Result<SpecReport, String>> =
        pamdc_simcore::par::parallel_map_bounded(jobs, opts.jobs, move |(spec, base_dir)| {
            let name = spec.name.clone();
            run_spec(&spec, &base_dir, quick).map_err(|e| format!("{name}: {e}"))
        });
    let mut ok = Vec::with_capacity(reports.len());
    for r in reports {
        ok.push(r?);
    }
    for report in &ok {
        println!("# {}\n{}", report.name, report.text);
    }
    println!("{}", reports_csv(&ok));
    write_outputs(&ok, opts)
}

fn cmd_record(spec_arg: &str, out: &Path, hours: Option<u64>) -> Result<(), String> {
    let (spec, base) = load_spec(spec_arg)?;
    let scenario =
        pamdc_scenario::build::build_scenario(&spec, &base).map_err(|e| e.to_string())?;
    let horizon = SimDuration::from_hours(hours.unwrap_or(spec.run.hours));
    let tick = SimDuration::from_secs(spec.run.tick_secs);
    let trace = DemandTrace::record(&scenario.workload, horizon, tick);
    std::fs::write(out, trace.to_csv())
        .map_err(|e| format!("cannot write {}: {e}", out.display()))?;
    pamdc_obs::info!(
        "recorded {} ticks x {} services ({} regions) -> {}",
        trace.tick_count(),
        trace.service_count(),
        trace.regions,
        out.display()
    );
    Ok(())
}

#[allow(clippy::too_many_arguments)] // one flag each, mirrored from Cmd::Replay
fn cmd_replay(
    trace_path: Option<&Path>,
    manifest: Option<&Path>,
    spec_arg: Option<&str>,
    rate_scale: f64,
    stretch: f64,
    remap: &[usize],
    opts: &Opts,
) -> Result<(), String> {
    if let Some(manifest) = manifest {
        if spec_arg.is_some() || rate_scale != 1.0 || stretch != 1.0 || !remap.is_empty() {
            return Err(
                "--manifest replays the recorded session verbatim; --spec/--rate-scale/\
                 --stretch/--remap do not apply"
                    .into(),
            );
        }
        let report = serve::cmd_replay_manifest(manifest)?;
        println!("{}", report.text);
        return write_outputs(std::slice::from_ref(&report), opts);
    }
    let trace_path = trace_path.expect("parse_args requires a trace when --manifest is absent");
    let text = std::fs::read_to_string(trace_path)
        .map_err(|e| format!("cannot read {}: {e}", trace_path.display()))?;
    // A torn final row (a recorder killed mid-append) degrades to a
    // clean partial replay instead of a parse error.
    let trace = match DemandTrace::parse_csv(&text) {
        Ok(trace) => trace,
        Err(err) => match DemandTrace::parse_csv_tail(&text) {
            Ok(parsed) if parsed.partial_tick.is_some() && parsed.trace.tick_count() > 0 => {
                pamdc_obs::warn!(
                    "{}: tick {} is truncated mid-write; replaying the {} complete tick(s) \
                     before it",
                    trace_path.display(),
                    parsed.partial_tick.expect("guard"),
                    parsed.trace.tick_count()
                );
                parsed.trace
            }
            _ => return Err(format!("{}: {err}", trace_path.display())),
        },
    };
    let services = trace.service_count();
    // Validate transforms up front: bad flags get an error message, not
    // a panic backtrace from the replayer's asserts.
    if !(rate_scale.is_finite() && rate_scale >= 0.0) {
        return Err(format!(
            "--rate-scale must be finite and >= 0, got {rate_scale}"
        ));
    }
    if !(stretch.is_finite() && stretch > 0.0) {
        return Err(format!("--stretch must be finite and > 0, got {stretch}"));
    }
    if !remap.is_empty() {
        if remap.len() != trace.regions {
            return Err(format!(
                "--remap lists {} regions but the trace records {} (need one target per \
                 recorded region)",
                remap.len(),
                trace.regions
            ));
        }
        if let Some(&bad) = remap.iter().find(|&&r| r >= trace.regions) {
            return Err(format!(
                "--remap target {bad} is out of range ({} regions)",
                trace.regions
            ));
        }
    }

    let (mut spec, base) = match spec_arg {
        Some(arg) => load_spec(arg)?,
        None => (ScenarioSpec::default(), PathBuf::from(".")),
    };
    spec.workload.vms = services;
    spec.workload.trace = None; // the world is built around the parsed source below
    if let Some(hours) = opts.hours {
        spec.run.hours = hours;
    }
    let _ = base; // the trace path is as-given (cwd-relative), not spec-relative
    let mut source = TraceSource::new(trace)
        .with_rate_scale(rate_scale)
        .with_time_stretch(stretch);
    if !remap.is_empty() {
        source = source.with_region_map(remap.to_vec());
    }
    let scenario = pamdc_scenario::build::build_scenario_with_demand(&spec, source.into())
        .map_err(|e| e.to_string())?;
    let suite = if pamdc_scenario::build::needs_training(&spec) {
        Some(pamdc_scenario::build::train_for_spec(&spec.training).suite)
    } else {
        None
    };
    let policy = pamdc_scenario::build::build_policy(&spec, suite).map_err(|e| e.to_string())?;
    let trace_out = resolve_trace_out(opts, &spec);
    let tracing = install_trace(trace_out.as_ref())?;
    let mut cfg = pamdc_scenario::build::run_config(&spec);
    cfg.trace = tracing;
    cfg.progress = cfg.progress || opts.progress;
    let (mut outcome, _) = pamdc_core::simulation::SimulationRunner::new(scenario, policy)
        .config(cfg)
        .run(SimDuration::from_hours(if opts.quick {
            spec.run.hours.min(3)
        } else {
            spec.run.hours
        }));
    if tracing {
        // This path drives the runner directly (no experiment pipeline),
        // so it flushes the run's buffered lines itself.
        pamdc_obs::trace::write_lines(&outcome.trace_lines);
        outcome.trace_lines.clear();
        finish_trace(trace_out.as_ref().expect("tracing implies a path"))?;
    }
    let report = SpecReport {
        name: format!("replay[{}]", trace_path.display()),
        text: pamdc_scenario::runner::render_outcome(&outcome),
        metrics: pamdc_scenario::runner::outcome_metrics("", &outcome),
    };
    println!("{}", report.text);
    write_outputs(std::slice::from_ref(&report), opts)
}

/// `pamdc serve` — resolve the spec and session directory, then hand
/// off to the daemon loop (docs/SERVE.md).
fn cmd_serve_entry(
    spec_arg: &str,
    feed: &Path,
    session: Option<&Path>,
    max_ticks: Option<usize>,
    poll_ms: u64,
    budget_ms: Option<u64>,
    opts: &Opts,
) -> Result<(), String> {
    let (spec, _base) = load_spec(spec_arg)?;
    let session = session
        .map(Path::to_path_buf)
        .unwrap_or_else(|| feed.with_extension("session"));
    let report = serve::cmd_serve(
        spec,
        &serve::ServeConfig {
            feed: feed.to_path_buf(),
            session,
            max_ticks: max_ticks.map(|n| n as u64),
            poll_ms,
            budget_ms,
        },
    )?;
    println!("{}", report.text);
    write_outputs(std::slice::from_ref(&report), opts)
}

#[allow(clippy::too_many_arguments)] // one flag each, mirrored from Cmd::Import
fn cmd_import(
    file: &Path,
    format: &str,
    out: &Path,
    tick_secs: Option<u64>,
    regions: Option<usize>,
    rate_scale: f64,
    stretch: f64,
    remap: &[usize],
    max_services: Option<usize>,
    max_ticks: Option<usize>,
) -> Result<(), String> {
    let format = pamdc_workload::import::TraceFormat::from_name(format)
        .ok_or_else(|| format!("unknown --format {format:?} (azure | alibaba)"))?;
    let mut opts = pamdc_workload::import::ImportOptions {
        tick: tick_secs.map(SimDuration::from_secs),
        rate_scale,
        time_stretch: stretch,
        region_map: remap.to_vec(),
        max_services,
        max_ticks,
        ..pamdc_workload::import::ImportOptions::default()
    };
    if let Some(regions) = regions {
        opts.regions = regions;
    }
    let trace = pamdc_workload::import::import_path(format, file, &opts)
        .map_err(|e| format!("{}: {e}", file.display()))?;
    std::fs::write(out, trace.to_csv())
        .map_err(|e| format!("cannot write {}: {e}", out.display()))?;
    pamdc_obs::info!(
        "imported {} ({}): {} ticks x {} services ({} regions, tick {}s) -> {}",
        file.display(),
        format.name(),
        trace.tick_count(),
        trace.service_count(),
        trace.regions,
        trace.tick.as_millis() / 1000,
        out.display()
    );
    Ok(())
}

/// `pamdc trace summarize <trace.jsonl>` — the per-phase wall-clock
/// breakdown of a recorded trace, plus final counters.
fn cmd_trace_summarize(file: &Path) -> Result<(), String> {
    let text = std::fs::read_to_string(file)
        .map_err(|e| format!("cannot read {}: {e}", file.display()))?;
    let summary = pamdc_obs::trace::summarize(text.lines())
        .map_err(|e| format!("{}: {e}", file.display()))?;
    let root_ns = summary.root_ns();
    let mut spans = pamdc_core::report::TextTable::new(&["span", "count", "total_ms", "share"]);
    for row in &summary.spans {
        let share = if root_ns > 0 {
            format!("{:.1}%", 100.0 * row.total_ns as f64 / root_ns as f64)
        } else {
            "-".to_string()
        };
        spans.row(vec![
            row.path.clone(),
            row.count.to_string(),
            format!("{:.3}", row.total_ns as f64 / 1e6),
            share,
        ]);
    }
    println!(
        "{}: {} run(s), {} tick(s)\n\n{}",
        file.display(),
        summary.runs,
        summary.ticks,
        spans.render()
    );
    if let Some(coverage) = summary.coverage() {
        println!(
            "phase coverage: {:.1}% of root span wall-clock is under named phases",
            100.0 * coverage
        );
    }
    if !summary.counters.is_empty() {
        let mut counters = pamdc_core::report::TextTable::new(&["counter", "final value"]);
        for (name, value) in &summary.counters {
            counters.row(vec![name.clone(), value.to_string()]);
        }
        println!("\n{}", counters.render());
    }
    Ok(())
}

fn cmd_show(name: &str) -> Result<(), String> {
    let builtin = registry::find(name)
        .ok_or_else(|| format!("no built-in named {name:?} (try `pamdc list`)"))?;
    print!("{}", builtin.spec.emit());
    Ok(())
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let cmd = match parse_args(&args) {
        Ok(cmd) => cmd,
        Err(msg) => {
            if !msg.is_empty() {
                eprintln!("error: {msg}\n");
            }
            eprint!("{USAGE}");
            return ExitCode::from(2);
        }
    };
    if let Cmd::Run { opts, .. }
    | Cmd::Sweep { opts, .. }
    | Cmd::Campaign { opts, .. }
    | Cmd::Replay { opts, .. }
    | Cmd::Serve { opts, .. } = &cmd
    {
        if opts.quiet {
            pamdc_obs::log::set_level(pamdc_obs::log::Level::Warn);
        }
    }
    let result = match &cmd {
        Cmd::List { names_only } => {
            cmd_list(*names_only);
            Ok(())
        }
        Cmd::Show { name } => cmd_show(name),
        Cmd::Run { spec, opts } => cmd_run(spec, opts),
        Cmd::Sweep { spec, params, opts } => cmd_sweep(spec, params, opts),
        Cmd::Campaign { file, opts } => cmd_campaign(file, opts),
        Cmd::Record { spec, out, hours } => cmd_record(spec, out, *hours),
        Cmd::Replay {
            trace,
            manifest,
            spec,
            rate_scale,
            stretch,
            remap,
            opts,
        } => cmd_replay(
            trace.as_deref(),
            manifest.as_deref(),
            spec.as_deref(),
            *rate_scale,
            *stretch,
            remap,
            opts,
        ),
        Cmd::Serve {
            spec,
            feed,
            session,
            max_ticks,
            poll_ms,
            budget_ms,
            opts,
        } => cmd_serve_entry(
            spec,
            feed,
            session.as_deref(),
            *max_ticks,
            *poll_ms,
            *budget_ms,
            opts,
        ),
        Cmd::Import {
            file,
            format,
            out,
            tick_secs,
            regions,
            rate_scale,
            stretch,
            remap,
            max_services,
            max_ticks,
        } => cmd_import(
            file,
            format,
            out,
            *tick_secs,
            *regions,
            *rate_scale,
            *stretch,
            remap,
            *max_services,
            *max_ticks,
        ),
        Cmd::TraceSummarize { file } => cmd_trace_summarize(file),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            pamdc_obs::error!("{msg}");
            ExitCode::FAILURE
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(args: &[&str]) -> Result<Cmd, String> {
        parse_args(&args.iter().map(|s| s.to_string()).collect::<Vec<_>>())
    }

    #[test]
    fn parses_run_with_options() {
        let cmd = parse(&["run", "fig4", "--quick", "--json", "out.json"]).unwrap();
        match cmd {
            Cmd::Run { spec, opts } => {
                assert_eq!(spec, "fig4");
                assert!(opts.quick);
                assert_eq!(opts.json, Some(PathBuf::from("out.json")));
                assert_eq!(opts.csv, None);
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn parses_sweep_params() {
        let cmd = parse(&[
            "sweep",
            "fig6",
            "--param",
            "workload.load_scale=0.5,1.0,1.5",
        ])
        .unwrap();
        match cmd {
            Cmd::Sweep { params, .. } => {
                assert_eq!(params.len(), 1);
                assert_eq!(params[0].0, "workload.load_scale");
                assert_eq!(params[0].1, vec!["0.5", "1.0", "1.5"]);
            }
            other => panic!("{other:?}"),
        }
        assert!(parse(&["sweep", "fig6"]).is_err());
        assert!(parse(&["sweep", "fig6", "--param", "novalues"]).is_err());
    }

    #[test]
    fn parses_cartesian_sweep_axes() {
        let cmd = parse(&[
            "sweep",
            "fig6",
            "--param",
            "seed=1,2",
            "--param",
            "workload.vms=4,5",
        ])
        .unwrap();
        match cmd {
            Cmd::Sweep { params, .. } => {
                assert_eq!(params.len(), 2);
                assert_eq!(params[0].0, "seed");
                assert_eq!(params[1].0, "workload.vms");
            }
            other => panic!("{other:?}"),
        }
        // The same axis twice is a user error, not a silent override.
        assert!(parse(&["sweep", "fig6", "--param", "seed=1", "--param", "seed=2"]).is_err());
    }

    #[test]
    fn cartesian_expands_the_full_product_in_order() {
        let base = registry::find("resilience").expect("builtin").spec;
        let params = vec![
            ("seed".to_string(), vec!["1".to_string(), "2".to_string()]),
            (
                "workload.vms".to_string(),
                vec!["3".to_string(), "4".to_string()],
            ),
        ];
        let variants = cartesian(&base, &params).expect("expand");
        let suffixes: Vec<&str> = variants.iter().map(|(s, _)| s.as_str()).collect();
        assert_eq!(
            suffixes,
            vec![
                "seed=1,workload.vms=3",
                "seed=1,workload.vms=4",
                "seed=2,workload.vms=3",
                "seed=2,workload.vms=4",
            ]
        );
        assert_eq!(variants[3].1.seed, 2);
        assert_eq!(variants[3].1.workload.vms, 4);
        // Bad keys fail before any simulation runs, with hints.
        let bad = vec![("workload.nonsense".to_string(), vec!["1".to_string()])];
        let err = cartesian(&base, &bad).unwrap_err();
        assert!(err.contains("sweepable keys include"), "{err}");
    }

    #[test]
    fn parses_campaign_command() {
        let cmd = parse(&["campaign", "c.toml", "--quick", "--csv", "out.csv"]).unwrap();
        match cmd {
            Cmd::Campaign { file, opts } => {
                assert_eq!(file, PathBuf::from("c.toml"));
                assert!(opts.quick);
                assert_eq!(opts.csv, Some(PathBuf::from("out.csv")));
                assert_eq!(opts.jobs, None, "unbounded by default");
            }
            other => panic!("{other:?}"),
        }
        assert!(parse(&["campaign"]).is_err(), "campaign needs a file");
    }

    #[test]
    fn parses_jobs_budget() {
        let cmd = parse(&["campaign", "c.toml", "--jobs", "2"]).unwrap();
        match cmd {
            Cmd::Campaign { opts, .. } => assert_eq!(opts.jobs, Some(2)),
            other => panic!("{other:?}"),
        }
        let cmd = parse(&["sweep", "fig6", "--param", "seed=1,2", "--jobs", "1"]).unwrap();
        match cmd {
            Cmd::Sweep { opts, .. } => assert_eq!(opts.jobs, Some(1)),
            other => panic!("{other:?}"),
        }
        assert!(parse(&["campaign", "c.toml", "--jobs", "0"]).is_err());
        assert!(parse(&["campaign", "c.toml", "--jobs", "many"]).is_err());
    }

    #[test]
    fn parses_replay_transforms() {
        let cmd = parse(&[
            "replay",
            "t.csv",
            "--stretch",
            "2.0",
            "--rate-scale",
            "1.5",
            "--remap",
            "3,2,1,0",
        ])
        .unwrap();
        match cmd {
            Cmd::Replay {
                trace,
                stretch,
                rate_scale,
                remap,
                ..
            } => {
                assert_eq!(trace, Some(PathBuf::from("t.csv")));
                assert_eq!(stretch, 2.0);
                assert_eq!(rate_scale, 1.5);
                assert_eq!(remap, vec![3, 2, 1, 0]);
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn parses_replay_manifest() {
        let cmd = parse(&["replay", "--manifest", "s/session.json"]).unwrap();
        match cmd {
            Cmd::Replay {
                trace, manifest, ..
            } => {
                assert_eq!(trace, None);
                assert_eq!(manifest, Some(PathBuf::from("s/session.json")));
            }
            other => panic!("{other:?}"),
        }
        assert!(
            parse(&["replay", "t.csv", "--manifest", "m.json"]).is_err(),
            "a trace and a manifest are mutually exclusive"
        );
        assert!(parse(&["replay"]).is_err(), "needs a trace or a manifest");
    }

    #[test]
    fn parses_serve_flags() {
        let cmd = parse(&[
            "serve",
            "fig4",
            "--feed",
            "feed.csv",
            "--session",
            "s",
            "--budget-ms",
            "250",
            "--poll-ms",
            "50",
            "--max-ticks",
            "40",
        ])
        .unwrap();
        match cmd {
            Cmd::Serve {
                spec,
                feed,
                session,
                max_ticks,
                poll_ms,
                budget_ms,
                ..
            } => {
                assert_eq!(spec, "fig4");
                assert_eq!(feed, PathBuf::from("feed.csv"));
                assert_eq!(session, Some(PathBuf::from("s")));
                assert_eq!(max_ticks, Some(40));
                assert_eq!(poll_ms, 50);
                assert_eq!(budget_ms, Some(250));
            }
            other => panic!("{other:?}"),
        }
        assert!(parse(&["serve", "fig4"]).is_err(), "--feed is required");
    }

    #[test]
    fn parses_import_options() {
        let cmd = parse(&[
            "import",
            "azure.csv",
            "--format",
            "azure",
            "--out",
            "t.csv",
            "--tick-secs",
            "600",
            "--regions",
            "4",
            "--max-services",
            "8",
            "--remap",
            "1,0,3,2",
        ])
        .unwrap();
        match cmd {
            Cmd::Import {
                file,
                format,
                out,
                tick_secs,
                regions,
                max_services,
                remap,
                ..
            } => {
                assert_eq!(file, PathBuf::from("azure.csv"));
                assert_eq!(format, "azure");
                assert_eq!(out, PathBuf::from("t.csv"));
                assert_eq!(tick_secs, Some(600));
                assert_eq!(regions, Some(4));
                assert_eq!(max_services, Some(8));
                assert_eq!(remap, vec![1, 0, 3, 2]);
            }
            other => panic!("{other:?}"),
        }
        assert!(
            parse(&["import", "a.csv", "--out", "t.csv"]).is_err(),
            "--format is required"
        );
        assert!(
            parse(&["import", "a.csv", "--format", "azure"]).is_err(),
            "--out is required"
        );
    }

    #[test]
    fn rejects_unknown_commands_and_options() {
        assert!(parse(&["frobnicate"]).is_err());
        assert!(parse(&["run", "fig4", "--frob"]).is_err());
        assert!(parse(&["record", "fig4"]).is_err(), "record requires --out");
    }

    #[test]
    fn parses_observability_flags() {
        let cmd = parse(&[
            "run",
            "fig4",
            "--trace-out",
            "t.jsonl",
            "--progress",
            "--quiet",
        ])
        .unwrap();
        match cmd {
            Cmd::Run { opts, .. } => {
                assert_eq!(opts.trace_out, Some(PathBuf::from("t.jsonl")));
                assert!(opts.progress);
                assert!(opts.quiet);
            }
            other => panic!("{other:?}"),
        }
        // Parallel fan-outs would interleave arms in one file.
        let err = parse(&[
            "sweep",
            "fig6",
            "--param",
            "seed=1,2",
            "--trace-out",
            "t.jsonl",
        ])
        .unwrap_err();
        assert!(err.contains("single runs"), "{err}");
        let err = parse(&["campaign", "c.toml", "--trace-out", "t.jsonl"]).unwrap_err();
        assert!(err.contains("single runs"), "{err}");
    }

    #[test]
    fn parses_trace_summarize() {
        let cmd = parse(&["trace", "summarize", "out.jsonl"]).unwrap();
        assert_eq!(
            cmd,
            Cmd::TraceSummarize {
                file: PathBuf::from("out.jsonl")
            }
        );
        assert!(parse(&["trace"]).is_err());
        assert!(parse(&["trace", "frobnicate", "x"]).is_err());
    }

    #[test]
    fn builtins_resolve_as_specs() {
        let (spec, _) = load_spec("fig6").expect("builtin");
        assert_eq!(spec.name, "fig6");
        assert!(load_spec("not-a-thing").is_err());
    }
}
