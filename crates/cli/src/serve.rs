//! `pamdc serve` — run the MAPE loop live off a tailed demand feed.
//!
//! The daemon wraps [`Controller`] around a [`TailSource`]: every poll
//! that surfaces a fully-written tick is consumed with one `step`, a
//! JSONL status line is appended, and — on the snapshot cadence — the
//! whole session is checkpointed to disk. Because no serialization
//! library is available, the durable snapshot *is* a replayable log:
//!
//! - `recorded.csv` — every consumed tick, in the strict trace schema
//!   (with `# ticks`), so the session can be re-executed offline.
//! - `spec.toml` — the exact spec (post feed-shape fixups) that drove
//!   the run.
//! - `session.json` — a one-line manifest naming the ticks whose
//!   scheduling round ran below full fidelity under deadline pressure
//!   (`trimmed_ticks` for the middle rung, `degraded_ticks` for
//!   bestfit-only).
//! - `status.jsonl` — one `serve_tick` line per live tick.
//!
//! A restarted daemon re-executes `recorded.csv` through the same
//! `step` path — with the recorded per-tick fidelity — before touching
//! the feed, so it resumes bit-identical to a never-killed run.
//! `pamdc replay --manifest session.json` does the same offline and
//! reproduces the live session's final report exactly.

use pamdc_core::prelude::*;
use pamdc_obs::trace as obstrace;
use pamdc_obs::Counter;
use pamdc_scenario::build;
use pamdc_scenario::runner::{outcome_metrics, render_outcome, SpecReport};
use pamdc_scenario::spec::ScenarioSpec;
use pamdc_workload::generator::FlowSample;
use pamdc_workload::prelude::{DemandTrace, TailSource, TraceSource};
use std::collections::BTreeSet;
use std::io::Write;
use std::path::{Path, PathBuf};

/// How the daemon was invoked (flags, resolved paths).
pub struct ServeConfig {
    /// The append-only demand CSV to tail.
    pub feed: PathBuf,
    /// Session directory (recorded.csv / spec.toml / session.json /
    /// status.jsonl live here).
    pub session: PathBuf,
    /// Stop after this many consumed ticks (counting restored ones).
    pub max_ticks: Option<u64>,
    /// Feed poll interval while idle, milliseconds.
    pub poll_ms: u64,
    /// Wall-clock round budget override (else `[serve] budget_ms`).
    pub budget_ms: Option<u64>,
}

/// Runs the serve daemon to completion (feed ends, or `--max-ticks`).
pub fn cmd_serve(mut spec: ScenarioSpec, cfg: &ServeConfig) -> Result<SpecReport, String> {
    std::fs::create_dir_all(&cfg.session)
        .map_err(|e| format!("cannot create session dir {}: {e}", cfg.session.display()))?;
    let poll = std::time::Duration::from_millis(cfg.poll_ms.max(1));

    // The writer may not have flushed the header block yet — retry for
    // a bounded while before giving up.
    let mut tail = {
        let mut attempts = 0u32;
        loop {
            match TailSource::open(&cfg.feed) {
                Ok(t) => break t,
                Err(e) if attempts < 300 => {
                    attempts += 1;
                    if attempts == 1 {
                        pamdc_obs::info!("waiting for feed {}: {}", cfg.feed.display(), e.0);
                    }
                    std::thread::sleep(poll);
                }
                Err(e) => return Err(format!("feed never became readable: {}", e.0)),
            }
        }
    };

    // The feed dictates the service roster; the spec dictates
    // everything else. Cadences must agree or replay would resample.
    let feed_tick_ms = tail.trace().tick.as_millis();
    if feed_tick_ms != spec.run.tick_secs * 1000 {
        return Err(format!(
            "feed tick is {feed_tick_ms} ms but the spec runs {} s ticks; align [run] tick_secs \
             with the recording cadence",
            spec.run.tick_secs
        ));
    }
    spec.workload.vms = tail.trace().service_count();
    spec.workload.trace = None;
    spec.workload.import = None;
    let budget_ms = cfg.budget_ms.unwrap_or(spec.serve.budget_ms);

    let scenario =
        build::build_scenario_with_demand(&spec, tail.clone().into()).map_err(|e| e.to_string())?;
    let suite = if build::needs_training(&spec) {
        Some(build::train_for_spec(&spec.training).suite)
    } else {
        None
    };
    let policy = build::build_policy(&spec, suite).map_err(|e| e.to_string())?;
    let run_cfg = build::run_config(&spec);
    let tick = run_cfg.tick;
    let mut controller = Controller::with(scenario, policy, run_cfg, None);
    let obs = controller.collector();

    // Persist the exact spec driving this session so replay and
    // restart need no guesswork about fixups applied above.
    write_atomic(&cfg.session.join("spec.toml"), &spec.emit())?;

    let rec_path = cfg.session.join("recorded.csv");
    let manifest_path = cfg.session.join("session.json");
    let mut recorded: Vec<Vec<Vec<FlowSample>>> = Vec::new();
    let mut degraded_ticks: Vec<u64> = Vec::new();
    let mut trimmed_ticks: Vec<u64> = Vec::new();

    // Restart without amnesia: re-execute the recorded session (with
    // its recorded per-tick fidelity) before consuming new feed ticks.
    if rec_path.is_file() {
        let text = std::fs::read_to_string(&rec_path)
            .map_err(|e| format!("cannot read {}: {e}", rec_path.display()))?;
        let prior = DemandTrace::parse_csv(&text)
            .map_err(|e| format!("{}: {}", rec_path.display(), e.0))?;
        if prior.tick != tail.trace().tick || prior.classes != tail.trace().classes {
            return Err(format!(
                "session {} was recorded from a different feed shape; start a fresh session dir",
                cfg.session.display()
            ));
        }
        (degraded_ticks, trimmed_ticks) = read_manifest_ticks(&manifest_path);
        let dset: BTreeSet<u64> = degraded_ticks.iter().copied().collect();
        let tset: BTreeSet<u64> = trimmed_ticks.iter().copied().collect();
        for (t, flows) in prior.flows.iter().enumerate() {
            let fidelity = recorded_fidelity(t as u64, &dset, &tset);
            controller.step_with_fidelity(StepDemand::Flows(flows), fidelity);
        }
        pamdc_obs::info!(
            "restored session {}: {} ticks re-applied",
            cfg.session.display(),
            prior.flows.len()
        );
        recorded = prior.flows;
    }

    let status_path = spec
        .serve
        .status_out
        .as_ref()
        .map(PathBuf::from)
        .unwrap_or_else(|| cfg.session.join("status.jsonl"));
    let mut status = std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(&status_path)
        .map_err(|e| format!("cannot open status stream {}: {e}", status_path.display()))?;

    let mut governor = DeadlineGovernor::new(budget_ms);
    let snapshot_every = spec.serve.snapshot_every.max(1);
    let mut consumed = recorded.len() as u64;
    let mut since_snapshot = 0u64;

    loop {
        if cfg.max_ticks.is_some_and(|m| consumed >= m) {
            break;
        }
        if tail.ready_ticks() as u64 <= consumed {
            if tail.is_complete() {
                break;
            }
            std::thread::sleep(poll);
            obs.add(Counter::ServeFeedPolls, 1);
            tail.poll().map_err(|e| e.0)?;
            continue;
        }

        // Clone the tick out of the tail so recorded.csv round-trips
        // the exact flows the controller saw.
        let flows = tail.trace().flows[consumed as usize].clone();
        let fidelity = governor.plan_fidelity();
        let wall_start = std::time::Instant::now();
        let outcome = controller.step_with_fidelity(StepDemand::Flows(&flows), fidelity);
        let wall_ms = wall_start.elapsed().as_secs_f64() * 1e3;
        if let Some(round) = &outcome.round {
            governor.record_round(wall_ms, round.fidelity);
            match round.fidelity {
                RoundFidelity::Full => {}
                RoundFidelity::Trimmed => trimmed_ticks.push(consumed),
                RoundFidelity::BestFitOnly => degraded_ticks.push(consumed),
            }
        }
        let line = obstrace::serve_tick_line(
            outcome.tick_idx,
            outcome.mean_sla,
            outcome.watts,
            outcome.active_pms,
            outcome.rps,
            outcome.round.is_some(),
            outcome.round.as_ref().is_some_and(|r| r.degraded),
            outcome.round.as_ref().map_or(0, |r| r.migrations),
            wall_ms as u64,
        );
        writeln!(status, "{line}")
            .and_then(|_| status.flush())
            .map_err(|e| format!("status stream write failed: {e}"))?;

        recorded.push(flows);
        consumed += 1;
        since_snapshot += 1;
        if since_snapshot >= snapshot_every {
            write_session(
                cfg,
                tail.trace(),
                &recorded,
                &degraded_ticks,
                &trimmed_ticks,
                &spec.name,
            )?;
            obs.add(Counter::ServeSnapshots, 1);
            since_snapshot = 0;
        }
    }

    write_session(
        cfg,
        tail.trace(),
        &recorded,
        &degraded_ticks,
        &trimmed_ticks,
        &spec.name,
    )?;
    obs.add(Counter::ServeSnapshots, 1);
    let (outcome, _) = controller.finish(tick * consumed);
    Ok(SpecReport {
        name: format!("serve[{}]", spec.name),
        text: render_outcome(&outcome),
        metrics: outcome_metrics("", &outcome),
    })
}

/// Replays a recorded serve session (`session.json` + its sibling
/// `spec.toml` / `recorded.csv`) bit-for-bit, degraded rounds
/// included, and returns the same report the live daemon rendered.
pub fn cmd_replay_manifest(manifest_path: &Path) -> Result<SpecReport, String> {
    let dir = manifest_path.parent().unwrap_or(Path::new("."));
    let text = std::fs::read_to_string(manifest_path)
        .map_err(|e| format!("cannot read {}: {e}", manifest_path.display()))?;
    let line = text.lines().next().unwrap_or("");
    if obstrace::field_u64(line, "v") != Some(1) {
        return Err(format!(
            "{}: not a v1 session manifest",
            manifest_path.display()
        ));
    }
    let degraded: BTreeSet<u64> = parse_tick_list(line, "degraded_ticks")
        .into_iter()
        .collect();
    let trimmed: BTreeSet<u64> = parse_tick_list(line, "trimmed_ticks").into_iter().collect();

    let spec_path = dir.join("spec.toml");
    let spec_text = std::fs::read_to_string(&spec_path)
        .map_err(|e| format!("cannot read {}: {e}", spec_path.display()))?;
    let mut spec = ScenarioSpec::parse(&spec_text).map_err(|e| e.to_string())?;

    let rec_path = dir.join("recorded.csv");
    let rec_text = std::fs::read_to_string(&rec_path)
        .map_err(|e| format!("cannot read {}: {e}", rec_path.display()))?;
    let trace = DemandTrace::parse_csv(&rec_text)
        .map_err(|e| format!("{}: {}", rec_path.display(), e.0))?;
    let ticks = trace.tick_count() as u64;
    if ticks == 0 {
        return Err(format!(
            "{}: session recorded no ticks; nothing to replay",
            dir.display()
        ));
    }

    spec.workload.vms = trace.service_count();
    spec.workload.trace = None;
    spec.workload.import = None;
    let source = TraceSource::new(trace.clone());
    let scenario =
        build::build_scenario_with_demand(&spec, source.into()).map_err(|e| e.to_string())?;
    let suite = if build::needs_training(&spec) {
        Some(build::train_for_spec(&spec.training).suite)
    } else {
        None
    };
    let policy = build::build_policy(&spec, suite).map_err(|e| e.to_string())?;
    let run_cfg = build::run_config(&spec);
    let tick = run_cfg.tick;
    let mut controller = Controller::with(scenario, policy, run_cfg, None);
    controller.set_progress_total(Some(ticks));
    for (t, flows) in trace.flows.iter().enumerate() {
        let fidelity = recorded_fidelity(t as u64, &degraded, &trimmed);
        controller.step_with_fidelity(StepDemand::Flows(flows), fidelity);
    }
    let (outcome, _) = controller.finish(tick * ticks);
    Ok(SpecReport {
        name: format!("session[{}]", spec.name),
        text: render_outcome(&outcome),
        metrics: outcome_metrics("", &outcome),
    })
}

/// Checkpoints the session: recorded trace + manifest, atomically.
fn write_session(
    cfg: &ServeConfig,
    template: &DemandTrace,
    flows: &[Vec<Vec<FlowSample>>],
    degraded_ticks: &[u64],
    trimmed_ticks: &[u64],
    name: &str,
) -> Result<(), String> {
    let trace = DemandTrace {
        tick: template.tick,
        regions: template.regions,
        classes: template.classes.clone(),
        mem_mb_per_inflight: template.mem_mb_per_inflight.clone(),
        flows: flows.to_vec(),
    };
    write_atomic(&cfg.session.join("recorded.csv"), &trace.to_csv())?;
    let manifest = format!(
        "{{\"v\":1,\"name\":\"{}\",\"consumed\":{},\"tick_ms\":{},\"degraded_ticks\":[{}],\
         \"trimmed_ticks\":[{}]}}\n",
        obstrace::escape_json(name),
        flows.len(),
        template.tick.as_millis(),
        join_ticks(degraded_ticks),
        join_ticks(trimmed_ticks),
    );
    write_atomic(&cfg.session.join("session.json"), &manifest)
}

fn join_ticks(ticks: &[u64]) -> String {
    let list: Vec<String> = ticks.iter().map(u64::to_string).collect();
    list.join(",")
}

/// Write-then-rename so a killed daemon never leaves a torn snapshot.
fn write_atomic(path: &Path, contents: &str) -> Result<(), String> {
    let tmp = path.with_extension("tmp");
    std::fs::write(&tmp, contents).map_err(|e| format!("cannot write {}: {e}", tmp.display()))?;
    std::fs::rename(&tmp, path).map_err(|e| format!("cannot finalize {}: {e}", path.display()))
}

fn read_manifest_ticks(path: &Path) -> (Vec<u64>, Vec<u64>) {
    let Ok(text) = std::fs::read_to_string(path) else {
        return (Vec::new(), Vec::new());
    };
    let line = text.lines().next().unwrap_or("");
    (
        parse_tick_list(line, "degraded_ticks"),
        parse_tick_list(line, "trimmed_ticks"),
    )
}

/// Pulls a keyed tick array (`degraded_ticks` / `trimmed_ticks`) out of
/// a manifest line. The manifest is our own flat emission, so a
/// substring scan suffices. Manifests from before the three-rung
/// ladder carry no `trimmed_ticks` key; that reads as an empty list.
fn parse_tick_list(line: &str, key: &str) -> Vec<u64> {
    let needle = format!("\"{key}\":[");
    let Some(start) = line.find(&needle) else {
        return Vec::new();
    };
    let rest = &line[start + needle.len()..];
    let Some(end) = rest.find(']') else {
        return Vec::new();
    };
    rest[..end]
        .split(',')
        .filter_map(|s| s.trim().parse().ok())
        .collect()
}

/// Maps a restored tick index back to the fidelity it recorded at.
fn recorded_fidelity(
    tick: u64,
    degraded: &BTreeSet<u64>,
    trimmed: &BTreeSet<u64>,
) -> RoundFidelity {
    if degraded.contains(&tick) {
        RoundFidelity::BestFitOnly
    } else if trimmed.contains(&tick) {
        RoundFidelity::Trimmed
    } else {
        RoundFidelity::Full
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fidelity_tick_lists_round_trip_through_the_manifest() {
        let manifest = "{\"v\":1,\"name\":\"x\",\"consumed\":40,\"tick_ms\":60000,\
                        \"degraded_ticks\":[9,19,39],\"trimmed_ticks\":[4,14]}";
        assert_eq!(parse_tick_list(manifest, "degraded_ticks"), vec![9, 19, 39]);
        assert_eq!(parse_tick_list(manifest, "trimmed_ticks"), vec![4, 14]);
        assert!(parse_tick_list("{\"v\":1,\"degraded_ticks\":[]}", "degraded_ticks").is_empty());
        assert!(parse_tick_list("{\"v\":1}", "degraded_ticks").is_empty());
        // Pre-ladder manifests carry no trimmed_ticks key at all.
        let old = "{\"v\":1,\"name\":\"x\",\"consumed\":2,\"tick_ms\":1000,\"degraded_ticks\":[1]}";
        assert_eq!(parse_tick_list(old, "degraded_ticks"), vec![1]);
        assert!(parse_tick_list(old, "trimmed_ticks").is_empty());
    }

    #[test]
    fn recorded_fidelity_prefers_the_deeper_rung() {
        let d: BTreeSet<u64> = [3].into_iter().collect();
        let t: BTreeSet<u64> = [3, 5].into_iter().collect();
        assert_eq!(recorded_fidelity(3, &d, &t), RoundFidelity::BestFitOnly);
        assert_eq!(recorded_fidelity(5, &d, &t), RoundFidelity::Trimmed);
        assert_eq!(recorded_fidelity(7, &d, &t), RoundFidelity::Full);
    }
}
