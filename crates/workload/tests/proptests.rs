//! Property-based tests for the workload generator.

use pamdc_simcore::time::SimTime;
use pamdc_workload::libcn;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Sampling is a pure function of (seed, service, tick).
    #[test]
    fn sampling_is_pure(seed in 0u64..10_000, minute in 0u64..2880, svc in 0usize..5) {
        let w1 = libcn::multi_dc(5, 150.0, seed);
        let w2 = libcn::multi_dc(5, 150.0, seed);
        let t = SimTime::from_mins(minute);
        prop_assert_eq!(w1.sample(svc, t), w2.sample(svc, t));
    }

    /// Rates are always finite and non-negative; flows reference valid
    /// regions.
    #[test]
    fn samples_well_formed(seed in 0u64..10_000, minute in 0u64..2880) {
        let w = libcn::multi_dc(4, 200.0, seed);
        for svc in 0..4 {
            for f in w.sample(svc, SimTime::from_mins(minute)) {
                prop_assert!(f.rps.is_finite() && f.rps >= 0.0);
                prop_assert!(f.kb_in_per_req > 0.0 && f.kb_out_per_req > 0.0);
                prop_assert!(f.cpu_ms_per_req > 0.0);
                prop_assert!(f.region < 4);
            }
        }
    }

    /// Realized totals track the expected (noise-free) curve within the
    /// configured noise band, averaged over a day.
    #[test]
    fn realized_tracks_expected(seed in 0u64..500) {
        let w = libcn::multi_dc(3, 150.0, seed);
        let mut realized = 0.0;
        let mut expected = 0.0;
        for minute in (0..1440).step_by(10) {
            let t = SimTime::from_mins(minute);
            realized += w.sample(0, t).iter().map(|f| f.rps).sum::<f64>();
            expected += w.expected_total_rps(0, t);
        }
        prop_assert!(expected > 0.0);
        let ratio = realized / expected;
        prop_assert!((0.85..1.15).contains(&ratio), "ratio {ratio}");
    }

    /// The flash crowd multiplies load only inside its window.
    #[test]
    fn flash_crowd_localized(seed in 0u64..500, mult in 2.0f64..10.0) {
        let calm = libcn::multi_dc(2, 150.0, seed);
        let crowded = libcn::multi_dc_with_flash_crowd(2, 150.0, mult, seed);
        // Outside the window the expectation matches exactly.
        for minute in [0u64, 40, 95, 200] {
            let t = SimTime::from_mins(minute);
            prop_assert!(
                (calm.expected_total_rps(0, t) - crowded.expected_total_rps(0, t)).abs() < 1e-9
            );
        }
        // At the plateau it's multiplied.
        let t = SimTime::from_mins(80);
        let ratio = crowded.expected_total_rps(0, t) / calm.expected_total_rps(0, t);
        prop_assert!((ratio - mult).abs() < 1e-6, "ratio {ratio} vs {mult}");
    }

    /// Every service's daily load integral is positive and varies over
    /// the day (no degenerate flat-zero services).
    #[test]
    fn services_have_diurnal_structure(seed in 0u64..500) {
        let w = libcn::multi_dc(4, 150.0, seed);
        for svc in 0..4 {
            let mut min_r = f64::INFINITY;
            let mut max_r: f64 = 0.0;
            for hour in 0..24 {
                let r = w.expected_total_rps(svc, SimTime::from_hours(hour));
                min_r = min_r.min(r);
                max_r = max_r.max(r);
            }
            prop_assert!(max_r > 0.0);
            prop_assert!(max_r > 1.5 * min_r, "service {svc} too flat: {min_r}..{max_r}");
        }
    }
}
