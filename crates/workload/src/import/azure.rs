//! Azure public VM trace — CPU-readings schema.
//!
//! The [Azure public dataset](https://github.com/Azure/AzurePublicDataset)
//! ships VM CPU readings as headerless CSV rows
//!
//! ```text
//! timestamp,vm id,min cpu,max cpu,avg cpu
//! ```
//!
//! with `timestamp` in seconds at a 5-minute cadence and the CPU columns
//! in percent. This parser accepts those rows (an optional header line
//! is skipped), rebases timestamps to the earliest one seen, and keeps
//! `avg cpu` as the utilization signal. Azure publishes no per-VM
//! network columns, so per-request KB fall back to the class means (see
//! the [module docs](crate::import) for the full normalization rules).

use super::{for_each_line, line_err, ImportError, ImportOptions, ServiceInterner, UsageRow};
use std::io::BufRead;

/// Columns of one reading row.
const COLS: usize = 5;

/// Parses Azure CPU-reading rows into normalized usage samples. Lines
/// are read through [`for_each_line`], so CRLF exports parse
/// identically to LF ones.
pub(crate) fn parse_rows<R: BufRead>(
    reader: R,
    opts: &ImportOptions,
) -> Result<Vec<UsageRow>, ImportError> {
    let mut services = ServiceInterner::new(opts.max_services);
    let mut rows = Vec::new();
    let mut saw_content = false;
    for_each_line(reader, |lineno, line| {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            return Ok(());
        }
        // Skip the (optional) header row: the first non-comment line,
        // wherever it sits.
        if !saw_content && line.to_ascii_lowercase().starts_with("timestamp") {
            return Ok(());
        }
        saw_content = true;
        pamdc_obs::metrics::add(pamdc_obs::Counter::ImportRowsRead, 1);
        let cols: Vec<&str> = line.split(',').map(str::trim).collect();
        // Slice pattern instead of indexing: the shape check and the
        // column picks are one infallible step (no-panic contract).
        let [col_ts, col_vm, _min_cpu, _max_cpu, col_avg] = cols.as_slice() else {
            return Err(line_err(
                lineno,
                format!(
                    "expected {COLS} columns (timestamp,vm id,min cpu,max cpu,avg cpu), got {}",
                    cols.len()
                ),
            ));
        };
        let timestamp: u64 = col_ts
            .parse()
            .map_err(|_| line_err(lineno, format!("bad timestamp {col_ts:?}")))?;
        if col_vm.is_empty() {
            return Err(line_err(lineno, "empty vm id"));
        }
        let avg_cpu: f64 = col_avg
            .parse()
            .map_err(|_| line_err(lineno, format!("bad avg cpu {col_avg:?}")))?;
        if !avg_cpu.is_finite() || avg_cpu < 0.0 {
            return Err(line_err(
                lineno,
                format!("avg cpu must be finite and >= 0, got {avg_cpu}"),
            ));
        }
        let Some(service) = services.intern(col_vm) else {
            pamdc_obs::metrics::add(pamdc_obs::Counter::ImportRowsDropped, 1);
            return Ok(()); // beyond max_services
        };
        rows.push(UsageRow {
            timestamp,
            service,
            cpu_pct: avg_cpu,
            net_in_kbps: None,
            net_out_kbps: None,
            mem_util_pct: None,
        });
        Ok(())
    })?;
    Ok(rows)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::import::{import_str, TraceFormat};

    fn parse(text: &str) -> Result<Vec<UsageRow>, ImportError> {
        parse_rows(text.as_bytes(), &ImportOptions::default())
    }

    #[test]
    fn parses_headerless_and_headered_input() {
        let bare = "0,a,1,2,1.5\n300,b,0,9,4.0\n";
        let rows = parse(bare).expect("bare");
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[1].service, 1);
        let headered = format!("timestamp,vm id,min cpu,max cpu,avg cpu\n{bare}");
        assert_eq!(parse(&headered).expect("headered").len(), 2);
    }

    #[test]
    fn malformed_rows_error_with_line_numbers() {
        // Truncated row.
        let err = parse("0,a,1,2,1.5\n300,b,0\n").unwrap_err();
        assert!(err.0.contains("line 2"), "{err}");
        assert!(err.0.contains("expected 5 columns"), "{err}");
        // Non-numeric timestamp.
        let err = parse("soon,a,1,2,1.5\n").unwrap_err();
        assert!(err.0.contains("bad timestamp"), "{err}");
        // Non-numeric CPU.
        let err = parse("0,a,1,2,lots\n").unwrap_err();
        assert!(err.0.contains("bad avg cpu"), "{err}");
        // Negative CPU.
        let err = parse("0,a,1,2,-3.0\n").unwrap_err();
        assert!(err.0.contains(">= 0"), "{err}");
        // Empty VM id.
        let err = parse("0,,1,2,1.5\n").unwrap_err();
        assert!(err.0.contains("empty vm id"), "{err}");
    }

    #[test]
    fn unsorted_timestamps_rebase_to_the_minimum() {
        let text = "900,a,0,0,10.0\n300,a,0,0,20.0\n600,a,0,0,30.0\n";
        let t = import_str(TraceFormat::Azure, text, &ImportOptions::default()).expect("import");
        assert_eq!(t.tick_count(), 3, "ticks rebase to the earliest row");
        assert!(t.flows[0][0][0].rps > t.flows[2][0][0].rps);
    }

    #[test]
    fn comments_and_blank_lines_are_ignored() {
        let rows = parse("# provenance note\n\n0,a,1,2,1.5\n").expect("parse");
        assert_eq!(rows.len(), 1);
        // A header row after leading comments is still recognized...
        let rows = parse("# note\n\ntimestamp,vm id,min cpu,max cpu,avg cpu\n0,a,1,2,1.5\n")
            .expect("parse");
        assert_eq!(rows.len(), 1);
        // ...but a header-looking line after data is a malformed row.
        assert!(parse("0,a,1,2,1.5\ntimestamp,vm id,min cpu,max cpu,avg cpu\n").is_err());
    }
}
