//! Public-dataset trace ingestion: Azure and Alibaba cluster traces,
//! normalized into the native [`DemandTrace`] pipeline.
//!
//! The paper drives its evaluation with the (non-redistributable) Li-BCN
//! hosting traces; this module family opens the engine to the two big
//! public alternatives instead:
//!
//! * [`azure`] — the Azure public VM trace's CPU-readings schema
//!   (`timestamp,vm id,min cpu,max cpu,avg cpu`, 5-minute cadence);
//! * [`alibaba`] — the Alibaba cluster-trace `container_usage` schema
//!   (`container_id,machine_id,time_stamp,cpu_util_percent,...,net_in,
//!   net_out,...`, 10-second cadence).
//!
//! Both parsers are **streaming** (line-at-a-time over any
//! [`BufRead`](std::io::BufRead), never materializing the raw file) and
//! **total** (malformed or truncated rows return a line-numbered
//! [`ImportError`], never a panic). They normalize into the exact same
//! [`DemandTrace`] a `pamdc record` run produces, so an imported trace
//! replays through [`TraceSource`](crate::trace::TraceSource) — and
//! round-trips through the trace CSV form — bit-identically, and every
//! downstream consumer (scenario specs, sweeps, campaigns, golden
//! tests) works on public data unchanged.
//!
//! ## Normalization rules (see `docs/TRACES.md` for the walk-through)
//!
//! Neither dataset records request-level flows, so rows are converted
//! with deterministic, documented rules:
//!
//! * **services** — source ids (VM ids, container ids) become service
//!   indices in first-seen order; `max_services` caps the fleet (rows
//!   for later ids are dropped).
//! * **classes** — service `i` gets [`ServiceClass::ALL`]`[i % 4]`, the
//!   same rotation the synthetic Li-BCN presets use.
//! * **regions** — service `i`'s demand originates from home region
//!   `i % regions` (the multi-DC world's home-region rotation);
//!   `region_map` relabels afterwards.
//! * **rate** — `cpu` percent is read as percent-of-core and converted
//!   to a request rate through the class's per-request CPU cost:
//!   `rps = cpu/100 × 1000 / cpu_ms_mean`. Multiple samples landing in
//!   one tick average their utilization first.
//! * **bytes** — Azure rows carry no network columns, so per-request KB
//!   are the class means; Alibaba `net_in`/`net_out` (KB/s) divide by
//!   the row's rate to per-request KB, falling back to the class means
//!   when the rate is zero or the column is empty.
//! * **memory** — Alibaba `mem_util_percent` (percent of machine
//!   memory) is read against the paper host's 4096 MB, the default
//!   web-service VM's 256 MB floor is subtracted, and the excess is
//!   divided by the sample's in-flight request count (Little's law at
//!   the class's nominal service time) to give MB-per-in-flight-request
//!   per service, clamped to [0.1, 1024]. Azure rows carry no memory
//!   column, so the profile stays unmeasured (class constants apply).
//!
//! The replay transforms (`rate_scale`, `time_stretch`, `region_map`)
//! are applied **at import**, so the emitted trace carries them baked
//! in and replays verbatim.

pub mod alibaba;
pub mod azure;

use crate::generator::FlowSample;
use crate::service::ServiceClass;
use crate::trace::DemandTrace;
use pamdc_simcore::time::SimDuration;
use std::collections::HashMap;
use std::io::BufRead;
use std::path::Path;

/// Import errors, line-numbered where a source row is at fault.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ImportError(pub String);

impl std::fmt::Display for ImportError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "import error: {}", self.0)
    }
}

impl std::error::Error for ImportError {}

pub(crate) fn line_err(lineno: usize, msg: impl Into<String>) -> ImportError {
    ImportError(format!("line {lineno}: {}", msg.into()))
}

/// A supported public-dataset schema.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TraceFormat {
    /// Azure public VM trace, CPU-readings files.
    Azure,
    /// Alibaba cluster trace, `container_usage` files.
    Alibaba,
}

impl TraceFormat {
    /// CLI/spec name.
    pub fn name(self) -> &'static str {
        match self {
            TraceFormat::Azure => "azure",
            TraceFormat::Alibaba => "alibaba",
        }
    }

    /// Inverse of [`TraceFormat::name`].
    pub fn from_name(s: &str) -> Option<Self> {
        match s {
            "azure" => Some(TraceFormat::Azure),
            "alibaba" => Some(TraceFormat::Alibaba),
            _ => None,
        }
    }

    /// The dataset's native sampling cadence, used when
    /// [`ImportOptions::tick`] is not set (Azure publishes 5-minute
    /// readings; Alibaba's usage files sample every ~10 seconds).
    pub fn default_tick(self) -> SimDuration {
        match self {
            TraceFormat::Azure => SimDuration::from_secs(300),
            TraceFormat::Alibaba => SimDuration::from_secs(10),
        }
    }
}

/// Import knobs shared by both formats. The replay transforms mirror
/// [`TraceSource`](crate::trace::TraceSource)'s, applied at import.
#[derive(Clone, Debug)]
pub struct ImportOptions {
    /// Normalization tick; `None` = the format's native cadence.
    /// Source timestamps floor into their containing tick; samples
    /// sharing a tick average their utilization.
    pub tick: Option<SimDuration>,
    /// Client regions of the target world (service `i` originates from
    /// region `i % regions`).
    pub regions: usize,
    /// Arrival-rate multiplier, baked into the imported rows.
    pub rate_scale: f64,
    /// Playback slowdown, baked in by stretching the tick duration.
    pub time_stretch: f64,
    /// Region relabelling (`map[home] = replayed`); empty = identity.
    pub region_map: Vec<usize>,
    /// Keep only the first N distinct source ids (first-seen order).
    pub max_services: Option<usize>,
    /// Keep only the first N ticks after rebasing to the earliest
    /// timestamp.
    pub max_ticks: Option<usize>,
}

impl Default for ImportOptions {
    fn default() -> Self {
        ImportOptions {
            tick: None,
            regions: 4,
            rate_scale: 1.0,
            time_stretch: 1.0,
            region_map: Vec::new(),
            max_services: None,
            max_ticks: None,
        }
    }
}

impl ImportOptions {
    /// Checks every knob (also called by [`import`]); the scenario
    /// spec's `[workload.import]` validation delegates here, so the
    /// rules live in exactly one place.
    pub fn validate(&self) -> Result<(), ImportError> {
        if self.regions == 0 {
            return Err(ImportError("regions must be >= 1".into()));
        }
        if !(self.rate_scale.is_finite() && self.rate_scale >= 0.0) {
            return Err(ImportError(format!(
                "rate_scale must be finite and >= 0, got {}",
                self.rate_scale
            )));
        }
        if !(self.time_stretch.is_finite() && self.time_stretch > 0.0) {
            return Err(ImportError(format!(
                "time_stretch must be finite and > 0, got {}",
                self.time_stretch
            )));
        }
        if !self.region_map.is_empty() {
            if self.region_map.len() != self.regions {
                return Err(ImportError(format!(
                    "region_map lists {} regions but the import targets {}",
                    self.region_map.len(),
                    self.regions
                )));
            }
            if let Some(&bad) = self.region_map.iter().find(|&&r| r >= self.regions) {
                return Err(ImportError(format!(
                    "region_map target {bad} is out of range ({} regions)",
                    self.regions
                )));
            }
        }
        if let Some(t) = self.tick {
            if t <= SimDuration::ZERO {
                return Err(ImportError("tick must be positive".into()));
            }
        }
        if self.max_services == Some(0) {
            return Err(ImportError("max_services must be >= 1".into()));
        }
        if self.max_ticks == Some(0) {
            return Err(ImportError("max_ticks must be >= 1".into()));
        }
        Ok(())
    }
}

/// One normalized usage sample, shared by both format parsers.
#[derive(Clone, Copy, Debug)]
pub(crate) struct UsageRow {
    /// Source timestamp, seconds (absolute; rebased to the minimum).
    pub timestamp: u64,
    /// Service index (already first-seen-ordered and capped).
    pub service: usize,
    /// CPU utilization, percent-of-core.
    pub cpu_pct: f64,
    /// Network in, KB/s (`None` = column absent/empty → class mean).
    pub net_in_kbps: Option<f64>,
    /// Network out, KB/s.
    pub net_out_kbps: Option<f64>,
    /// Memory utilization, percent of machine memory (`None` = column
    /// absent/empty → no measured memory profile for this sample).
    pub mem_util_pct: Option<f64>,
}

/// What a full [`for_each_line`] scan observed about the stream shape.
#[derive(Clone, Copy, Debug)]
pub(crate) struct LineScan {
    /// Whether the final line ended in `\n` (vacuously true for empty
    /// input). An unterminated final line is the signature of a file
    /// caught mid-append — a live writer flushed part of a row —
    /// so tail-tolerant parsers treat that line's tick as partial
    /// instead of failing on a half-written row.
    pub last_line_terminated: bool,
}

/// Iterates `reader` line by line through a reused buffer, handing each
/// line to `f` with its 1-based number. Trailing `\n` **and** `\r` are
/// stripped, so CRLF-exported dataset files (Excel, Windows tooling)
/// parse identically to LF ones — without this, the final field of
/// every row keeps a `\r` that corrupts interned service names and the
/// last numeric column. Returns what the scan saw of the stream's
/// shape (notably whether the last line was `\n`-terminated).
pub(crate) fn for_each_line<R: BufRead>(
    mut reader: R,
    mut f: impl FnMut(usize, &str) -> Result<(), ImportError>,
) -> Result<LineScan, ImportError> {
    let mut buf = String::new();
    let mut lineno = 0usize;
    let mut last_line_terminated = true;
    loop {
        buf.clear();
        lineno += 1;
        let n = reader
            .read_line(&mut buf)
            .map_err(|e| line_err(lineno, format!("read failed: {e}")))?;
        if n == 0 {
            return Ok(LineScan {
                last_line_terminated,
            });
        }
        last_line_terminated = buf.ends_with('\n');
        let line = buf.strip_suffix('\n').unwrap_or(&buf);
        let line = line.strip_suffix('\r').unwrap_or(line);
        f(lineno, line)?;
    }
}

/// First-seen-order service id interning, with an optional cap.
pub(crate) struct ServiceInterner {
    ids: HashMap<String, usize>,
    cap: Option<usize>,
}

impl ServiceInterner {
    pub fn new(cap: Option<usize>) -> Self {
        ServiceInterner {
            ids: HashMap::new(),
            cap,
        }
    }

    /// The service index for a source id, or `None` when the id falls
    /// beyond the `max_services` cap.
    pub fn intern(&mut self, id: &str) -> Option<usize> {
        if let Some(&idx) = self.ids.get(id) {
            return Some(idx);
        }
        let idx = self.ids.len();
        if self.cap.is_some_and(|cap| idx >= cap) {
            return None;
        }
        self.ids.insert(id.to_string(), idx);
        Some(idx)
    }
}

/// Mean outbound KB per request of a class (the Pareto distribution's
/// mean, `scale · shape / (shape - 1)`), used when the source has no
/// network columns.
pub(crate) fn class_kb_out_mean(class: ServiceClass) -> f64 {
    class.kb_out_scale() * class.kb_out_shape() / (class.kb_out_shape() - 1.0)
}

/// The class a normalized service index gets (the Li-BCN rotation).
pub(crate) fn class_for(service: usize) -> ServiceClass {
    // pamdc-lint: allow(no-panic-parser) -- index is modulo the array length
    ServiceClass::ALL[service % ServiceClass::ALL.len()]
}

/// CPU percent → request rate through the class's per-request cost.
pub(crate) fn rps_from_cpu(cpu_pct: f64, class: ServiceClass) -> f64 {
    (cpu_pct / 100.0) * 1000.0 / class.cpu_ms_mean()
}

/// Machine memory the Alibaba `mem_util_percent` column is read
/// against: the paper host's 4 GB (see `docs/TRACES.md`).
pub(crate) const REF_MACHINE_MEM_MB: f64 = 4096.0;

/// The default web-service VM's idle memory floor, MB — subtracted
/// before deriving the per-in-flight cost (matches
/// `VmSpec::web_service`).
pub(crate) const BASE_MEM_MB: f64 = 256.0;

/// The nominal non-CPU service-time multiplier used for the in-flight
/// estimate (matches `VmPerfProfile::default`).
pub(crate) const IO_WAIT_FACTOR: f64 = 0.6;

/// Clamp bounds for the derived MB-per-in-flight-request. The ceiling
/// is deliberately high: a low-rate container with a large resident set
/// legitimately derives a huge per-request cost (that is how its
/// observed footprint is reproduced at its observed rate), and the
/// clamp only guards against degenerate rows.
pub(crate) const MEM_PER_INFLIGHT_MIN: f64 = 0.1;
/// See [`MEM_PER_INFLIGHT_MIN`].
pub(crate) const MEM_PER_INFLIGHT_MAX: f64 = 1024.0;

/// Folds parsed rows into a [`DemandTrace`]: rebase timestamps, floor
/// into ticks, average samples sharing a tick, convert to flows, apply
/// the import-time transforms.
pub(crate) fn rows_to_trace(
    rows: Vec<UsageRow>,
    opts: &ImportOptions,
) -> Result<DemandTrace, ImportError> {
    if rows.is_empty() {
        return Err(ImportError(
            "no usable data rows (empty or fully filtered input)".into(),
        ));
    }
    let Some(tick) = opts.tick else {
        return Err(ImportError(
            "internal: tick_secs unresolved (the importer failed to apply the format default)"
                .into(),
        ));
    };
    let tick_ms = tick.as_millis();
    let t0 = rows.iter().map(|r| r.timestamp).min().unwrap_or(0);
    let services = rows.iter().map(|r| r.service).max().map_or(1, |m| m + 1);

    // (sum cpu, sum net_in, n(net_in), sum net_out, n(net_out), samples)
    // per (tick, service); averaging keeps a coarser tick deterministic.
    #[derive(Clone, Copy, Default)]
    struct Acc {
        cpu: f64,
        net_in: f64,
        n_in: u32,
        net_out: f64,
        n_out: u32,
        n: u32,
    }
    let mut ticks = 0usize;
    let mut cells: HashMap<(usize, usize), Acc> = HashMap::new();
    // Memory profile: the sum of memory held above the VM floor and the
    // sum of in-flight requests per service, over every kept sample
    // that measured both. Their ratio is the service's MB-per-in-flight
    // (documented in docs/TRACES.md).
    let mut mem_excess = vec![0.0f64; services];
    let mut mem_inflight = vec![0.0f64; services];
    for r in &rows {
        let tick_idx = ((r.timestamp - t0) * 1000 / tick_ms) as usize;
        if opts.max_ticks.is_some_and(|cap| tick_idx >= cap) {
            continue;
        }
        ticks = ticks.max(tick_idx + 1);
        let acc = cells.entry((tick_idx, r.service)).or_default();
        acc.cpu += r.cpu_pct;
        acc.n += 1;
        if let Some(v) = r.net_in_kbps {
            acc.net_in += v;
            acc.n_in += 1;
        }
        if let Some(v) = r.net_out_kbps {
            acc.net_out += v;
            acc.n_out += 1;
        }
        if let Some(mem_util) = r.mem_util_pct {
            let class = class_for(r.service);
            let raw_rps = rps_from_cpu(r.cpu_pct, class);
            if raw_rps > 0.0 {
                let service_secs = class.cpu_ms_mean() / 1000.0 * (1.0 + IO_WAIT_FACTOR);
                // pamdc-lint: allow(no-panic-parser) -- r.service < services: both vecs are sized from max(service)+1
                mem_excess[r.service] +=
                    (mem_util / 100.0 * REF_MACHINE_MEM_MB - BASE_MEM_MB).max(0.0);
                // pamdc-lint: allow(no-panic-parser) -- same bound as mem_excess above
                mem_inflight[r.service] += raw_rps * service_secs;
            }
        }
    }
    if ticks == 0 {
        return Err(ImportError(
            "no usable data rows (max_ticks filtered everything)".into(),
        ));
    }

    let mut flows: Vec<Vec<Vec<FlowSample>>> = vec![vec![Vec::new(); services]; ticks];
    // Deterministic emission order: tick-major, then service. Draining
    // the map into a sorted vec keeps the loop free of map indexing.
    let mut entries: Vec<((usize, usize), Acc)> = cells.into_iter().collect();
    entries.sort_unstable_by_key(|(key, _)| *key);
    for ((tick_idx, service), acc) in entries {
        let class = class_for(service);
        let cpu_pct = acc.cpu / acc.n as f64;
        let rps = rps_from_cpu(cpu_pct, class) * opts.rate_scale;
        if rps <= 0.0 {
            continue; // idle sample: no flow this tick (like the recorder)
        }
        // Unscaled rate converts KB/s columns to per-request KB; the
        // scale then multiplies arrivals without inflating volume/req.
        let raw_rps = rps_from_cpu(cpu_pct, class);
        let kb_in = if acc.n_in > 0 && raw_rps > 0.0 {
            (acc.net_in / acc.n_in as f64) / raw_rps
        } else {
            class.kb_in_mean()
        };
        let kb_out = if acc.n_out > 0 && raw_rps > 0.0 {
            (acc.net_out / acc.n_out as f64) / raw_rps
        } else {
            class_kb_out_mean(class)
        };
        let home = service % opts.regions;
        let region = if opts.region_map.is_empty() {
            home
        } else {
            // pamdc-lint: allow(no-panic-parser) -- validate() pins region_map.len() == regions and home < regions
            opts.region_map[home]
        };
        // pamdc-lint: allow(no-panic-parser) -- tick_idx < ticks and service < services by construction of `cells`
        flows[tick_idx][service].push(FlowSample {
            region,
            rps,
            kb_in_per_req: kb_in,
            kb_out_per_req: kb_out,
            cpu_ms_per_req: class.cpu_ms_mean(),
        });
    }

    // time-stretch bakes in as a longer tick (replayed 1:1 afterwards).
    let stretched_ms = (tick_ms as f64 * opts.time_stretch).round().max(1.0) as u64;
    let mem_mb_per_inflight = mem_excess
        .iter()
        .zip(&mem_inflight)
        .map(|(&excess, &inflight)| {
            (inflight > 0.0 && excess > 0.0)
                .then(|| (excess / inflight).clamp(MEM_PER_INFLIGHT_MIN, MEM_PER_INFLIGHT_MAX))
        })
        .collect();
    Ok(DemandTrace {
        tick: SimDuration::from_millis(stretched_ms),
        regions: opts.regions,
        classes: (0..services).map(class_for).collect(),
        mem_mb_per_inflight,
        flows,
    })
}

/// Imports a trace from any buffered reader.
pub fn import<R: BufRead>(
    format: TraceFormat,
    reader: R,
    opts: &ImportOptions,
) -> Result<DemandTrace, ImportError> {
    opts.validate()?;
    let mut opts = opts.clone();
    opts.tick = Some(opts.tick.unwrap_or_else(|| format.default_tick()));
    let rows = match format {
        TraceFormat::Azure => azure::parse_rows(reader, &opts)?,
        TraceFormat::Alibaba => alibaba::parse_rows(reader, &opts)?,
    };
    rows_to_trace(rows, &opts)
}

/// Imports a trace from in-memory text.
pub fn import_str(
    format: TraceFormat,
    text: &str,
    opts: &ImportOptions,
) -> Result<DemandTrace, ImportError> {
    import(format, text.as_bytes(), opts)
}

/// Imports a trace from a file on disk.
pub fn import_path(
    format: TraceFormat,
    path: &Path,
    opts: &ImportOptions,
) -> Result<DemandTrace, ImportError> {
    let file = std::fs::File::open(path)
        .map_err(|e| ImportError(format!("cannot open {}: {e}", path.display())))?;
    import(format, std::io::BufReader::new(file), opts)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::source::DemandSource;
    use crate::trace::TraceSource;

    const AZURE: &str = "\
timestamp,vm id,min cpu,max cpu,avg cpu
0,vm-a,1.0,30.0,20.0
0,vm-b,1.0,50.0,40.0
300,vm-a,2.0,28.0,10.0
300,vm-b,3.0,55.0,50.0
600,vm-a,0.0,0.0,0.0
";

    #[test]
    fn azure_import_normalizes_shape() {
        let t = import_str(TraceFormat::Azure, AZURE, &ImportOptions::default()).expect("import");
        assert_eq!(t.service_count(), 2);
        assert_eq!(t.tick_count(), 3);
        assert_eq!(t.regions, 4);
        assert_eq!(t.tick, SimDuration::from_secs(300));
        // Classes rotate like the synthetic presets.
        assert_eq!(t.classes[0], ServiceClass::FileHosting);
        assert_eq!(t.classes[1], ServiceClass::ImageGallery);
        // vm-a at 20% of a core, file-hosting (3 ms/req): 66.7 req/s.
        let f = &t.flows[0][0][0];
        assert!((f.rps - 200.0 / 3.0).abs() < 1e-9, "rps {}", f.rps);
        assert_eq!(f.region, 0);
        assert_eq!(t.flows[0][1][0].region, 1, "home region rotates");
        // The zero-CPU tail tick carries no flow but keeps the length.
        assert!(t.flows[2][0].is_empty());
    }

    #[test]
    fn import_round_trips_and_replays_bit_identically() {
        let t = import_str(TraceFormat::Azure, AZURE, &ImportOptions::default()).expect("import");
        let csv = t.to_csv();
        let reparsed = DemandTrace::parse_csv(&csv).expect("reparse");
        assert_eq!(t, reparsed);
        assert_eq!(csv, reparsed.to_csv(), "emission is a fixed point");
        let replay = TraceSource::new(reparsed);
        for tick in 0..3u64 {
            for s in 0..2 {
                assert_eq!(
                    DemandSource::sample(
                        &replay,
                        s,
                        pamdc_simcore::time::SimTime::ZERO + t.tick * tick
                    ),
                    t.flows[tick as usize][s],
                );
            }
        }
    }

    #[test]
    fn transforms_bake_in_at_import() {
        let opts = ImportOptions {
            rate_scale: 2.0,
            time_stretch: 3.0,
            region_map: vec![3, 2, 1, 0],
            ..ImportOptions::default()
        };
        let base = import_str(TraceFormat::Azure, AZURE, &ImportOptions::default()).unwrap();
        let t = import_str(TraceFormat::Azure, AZURE, &opts).unwrap();
        assert_eq!(t.tick, SimDuration::from_secs(900), "stretched cadence");
        let (b, f) = (&base.flows[0][0][0], &t.flows[0][0][0]);
        assert!((f.rps - 2.0 * b.rps).abs() < 1e-12);
        assert_eq!(
            f.kb_out_per_req, b.kb_out_per_req,
            "volume per request unchanged by rate scaling"
        );
        assert_eq!(f.region, 3, "home region 0 relabelled to 3");
    }

    #[test]
    fn service_and_tick_caps_apply() {
        let opts = ImportOptions {
            max_services: Some(1),
            max_ticks: Some(2),
            ..ImportOptions::default()
        };
        let t = import_str(TraceFormat::Azure, AZURE, &opts).expect("import");
        assert_eq!(t.service_count(), 1);
        assert_eq!(t.tick_count(), 2);
    }

    #[test]
    fn coarser_tick_averages_samples() {
        let opts = ImportOptions {
            tick: Some(SimDuration::from_secs(600)),
            ..ImportOptions::default()
        };
        let t = import_str(TraceFormat::Azure, AZURE, &opts).expect("import");
        assert_eq!(t.tick_count(), 2);
        // vm-a's 20% and 10% samples average to 15% in tick 0.
        let f = &t.flows[0][0][0];
        assert!((f.rps - 150.0 / 3.0).abs() < 1e-9, "rps {}", f.rps);
    }

    #[test]
    fn bad_options_rejected() {
        let t = |opts| import_str(TraceFormat::Azure, AZURE, &opts);
        assert!(t(ImportOptions {
            regions: 0,
            ..ImportOptions::default()
        })
        .is_err());
        assert!(t(ImportOptions {
            rate_scale: -1.0,
            ..ImportOptions::default()
        })
        .is_err());
        assert!(t(ImportOptions {
            time_stretch: 0.0,
            ..ImportOptions::default()
        })
        .is_err());
        assert!(t(ImportOptions {
            region_map: vec![0, 1],
            ..ImportOptions::default()
        })
        .is_err());
        assert!(t(ImportOptions {
            region_map: vec![9, 0, 1, 2],
            ..ImportOptions::default()
        })
        .is_err());
    }

    #[test]
    fn crlf_exports_parse_identically_to_lf() {
        // CRLF leaves a `\r` on the last field of every row (the
        // numeric column here; the service id survives because it is
        // first) — both importers must strip it, including on a final
        // line with no terminator at all.
        let azure_crlf = AZURE.replace('\n', "\r\n");
        let lf = import_str(TraceFormat::Azure, AZURE, &ImportOptions::default()).unwrap();
        let crlf = import_str(TraceFormat::Azure, &azure_crlf, &ImportOptions::default()).unwrap();
        assert_eq!(lf, crlf, "azure CRLF must normalize identically");
        let unterminated = azure_crlf.trim_end_matches('\n').to_string(); // ends "...0.0\r"
        let tail = import_str(TraceFormat::Azure, &unterminated, &ImportOptions::default());
        assert_eq!(lf, tail.expect("lone trailing \\r"));

        let alibaba = "c_1,m_1,10,25.0,40.2,1.1,0.4,0.02,120.0,350.0,5.0\n\
                       c_2,m_1,10,50.0,60.0,,,,,,\n";
        let lf = import_str(TraceFormat::Alibaba, alibaba, &ImportOptions::default()).unwrap();
        let crlf = import_str(
            TraceFormat::Alibaba,
            &alibaba.replace('\n', "\r\n"),
            &ImportOptions::default(),
        )
        .unwrap();
        assert_eq!(lf, crlf, "alibaba CRLF must normalize identically");
        assert_eq!(
            crlf.flows[0][0][0].kb_out_per_req,
            lf.flows[0][0][0].kb_out_per_req
        );
    }

    #[test]
    fn azure_has_no_memory_columns_so_profiles_stay_unmeasured() {
        let t = import_str(TraceFormat::Azure, AZURE, &ImportOptions::default()).unwrap();
        assert_eq!(t.mem_mb_per_inflight, vec![None, None]);
        // ...and the emitted CSV carries no memory header, keeping
        // pre-PR azure trace files byte-identical.
        assert!(!t.to_csv().contains("mem_mb_per_inflight"));
    }

    #[test]
    fn empty_input_is_an_error_not_a_panic() {
        let err = import_str(TraceFormat::Azure, "", &ImportOptions::default()).unwrap_err();
        assert!(err.0.contains("no usable"), "{err}");
        let header_only = "timestamp,vm id,min cpu,max cpu,avg cpu\n";
        assert!(import_str(TraceFormat::Azure, header_only, &ImportOptions::default()).is_err());
    }

    #[test]
    fn format_names_round_trip() {
        for f in [TraceFormat::Azure, TraceFormat::Alibaba] {
            assert_eq!(TraceFormat::from_name(f.name()), Some(f));
        }
        assert_eq!(TraceFormat::from_name("gcp"), None);
    }
}
