//! Alibaba cluster trace — `container_usage` schema.
//!
//! The [Alibaba cluster trace](https://github.com/alibaba/clusterdata)
//! (v2018) publishes per-container usage as headerless CSV rows
//!
//! ```text
//! container_id,machine_id,time_stamp,cpu_util_percent,mem_util_percent,
//! cpi,mem_gps,mpki,net_in,net_out,disk_io_percent
//! ```
//!
//! with `time_stamp` in seconds (~10 s cadence), `cpu_util_percent` in
//! percent and `net_in`/`net_out` in (normalized) KB/s. The dataset is
//! famously sparse: rows routinely leave `cpi`, `net_*` and other
//! columns empty. This parser therefore
//!
//! * requires only the first 10 columns (the trailing `disk_io_percent`
//!   may be absent) and ignores anything after column 11;
//! * **skips** rows whose `cpu_util_percent` is empty (no utilization
//!   signal to normalize), keeping the import total over real files;
//! * treats empty `net_in`/`net_out` as "column absent" — per-request
//!   KB then fall back to the class means (see the
//!   [module docs](crate::import)).
//!
//! Malformed non-empty values still error with their line number.

use super::{for_each_line, line_err, ImportError, ImportOptions, ServiceInterner, UsageRow};
use std::io::BufRead;

/// Minimum columns a usage row must carry (`..net_out`).
const MIN_COLS: usize = 10;

fn opt_f64(text: &str, lineno: usize, what: &str) -> Result<Option<f64>, ImportError> {
    if text.is_empty() {
        return Ok(None);
    }
    let v: f64 = text
        .parse()
        .map_err(|_| line_err(lineno, format!("bad {what} {text:?}")))?;
    if !v.is_finite() || v < 0.0 {
        return Err(line_err(
            lineno,
            format!("{what} must be finite and >= 0, got {v}"),
        ));
    }
    Ok(Some(v))
}

/// Parses Alibaba `container_usage` rows into normalized usage samples.
/// Lines are read through [`for_each_line`], so CRLF exports parse
/// identically to LF ones.
pub(crate) fn parse_rows<R: BufRead>(
    reader: R,
    opts: &ImportOptions,
) -> Result<Vec<UsageRow>, ImportError> {
    let mut services = ServiceInterner::new(opts.max_services);
    let mut rows = Vec::new();
    let mut saw_content = false;
    for_each_line(reader, |lineno, line| {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            return Ok(());
        }
        // Skip the (optional) header row: the first non-comment line,
        // wherever it sits.
        if !saw_content && line.to_ascii_lowercase().starts_with("container_id") {
            return Ok(());
        }
        saw_content = true;
        pamdc_obs::metrics::add(pamdc_obs::Counter::ImportRowsRead, 1);
        let cols: Vec<&str> = line.split(',').map(str::trim).collect();
        // Slice pattern instead of indexing (no-panic contract): the
        // trailing `..` tolerates the dataset's extra columns.
        let [col_cid, _machine, col_ts, col_cpu, col_mem, _, _, _, col_in, col_out, ..] =
            cols.as_slice()
        else {
            return Err(line_err(
                lineno,
                format!(
                    "expected at least {MIN_COLS} columns (container_id,machine_id,time_stamp,\
                     cpu_util_percent,...,net_in,net_out), got {}",
                    cols.len()
                ),
            ));
        };
        if col_cid.is_empty() {
            return Err(line_err(lineno, "empty container_id"));
        }
        let timestamp: u64 = col_ts
            .parse()
            .map_err(|_| line_err(lineno, format!("bad time_stamp {col_ts:?}")))?;
        let Some(cpu_pct) = opt_f64(col_cpu, lineno, "cpu_util_percent")? else {
            pamdc_obs::metrics::add(pamdc_obs::Counter::ImportRowsDropped, 1);
            return Ok(()); // no utilization signal: skip, don't guess
        };
        let mem_util_pct = opt_f64(col_mem, lineno, "mem_util_percent")?;
        let net_in_kbps = opt_f64(col_in, lineno, "net_in")?;
        let net_out_kbps = opt_f64(col_out, lineno, "net_out")?;
        let Some(service) = services.intern(col_cid) else {
            pamdc_obs::metrics::add(pamdc_obs::Counter::ImportRowsDropped, 1);
            return Ok(()); // beyond max_services
        };
        rows.push(UsageRow {
            timestamp,
            service,
            cpu_pct,
            net_in_kbps,
            net_out_kbps,
            mem_util_pct,
        });
        Ok(())
    })?;
    Ok(rows)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::import::{class_kb_out_mean, import_str, TraceFormat};
    use crate::service::ServiceClass;

    const ROW_A: &str = "c_1,m_1,10,25.0,40.2,1.1,0.4,0.02,120.0,350.0,5.0";
    const ROW_B: &str = "c_2,m_1,10,50.0,60.0,,,,,,";

    fn parse(text: &str) -> Result<Vec<UsageRow>, ImportError> {
        parse_rows(text.as_bytes(), &ImportOptions::default())
    }

    #[test]
    fn parses_full_and_sparse_rows() {
        let rows = parse(&format!("{ROW_A}\n{ROW_B}\n")).expect("parse");
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[0].net_out_kbps, Some(350.0));
        assert_eq!(rows[1].net_out_kbps, None, "empty column = absent");
        assert_eq!(rows[1].service, 1);
    }

    #[test]
    fn empty_cpu_rows_are_skipped_not_fatal() {
        let rows = parse("c_1,m_1,10,,40.0,,,,,,\nc_1,m_1,20,30.0,40.0,,,,,,\n").expect("parse");
        assert_eq!(rows.len(), 1, "the cpu-less row is dropped");
        assert_eq!(rows[0].timestamp, 20);
    }

    #[test]
    fn malformed_rows_error_with_line_numbers() {
        // Truncated row (fewer than 10 columns).
        let err = parse("c_1,m_1,10,25.0\n").unwrap_err();
        assert!(err.0.contains("line 1"), "{err}");
        assert!(err.0.contains("at least 10 columns"), "{err}");
        // Bad timestamp.
        let err = parse("c_1,m_1,later,25.0,,,,,,,\n").unwrap_err();
        assert!(err.0.contains("bad time_stamp"), "{err}");
        // Bad (non-empty) cpu.
        let err = parse("c_1,m_1,10,much,,,,,,,\n").unwrap_err();
        assert!(err.0.contains("bad cpu_util_percent"), "{err}");
        // Bad net column.
        let err = parse(&format!("{ROW_A}\nc_2,m_1,10,25.0,,,,,fast,1.0,\n")).unwrap_err();
        assert!(
            err.0.contains("line 2") && err.0.contains("bad net_in"),
            "{err}"
        );
        // Negative utilization.
        let err = parse("c_1,m_1,10,-1.0,,,,,,,\n").unwrap_err();
        assert!(err.0.contains(">= 0"), "{err}");
    }

    #[test]
    fn net_columns_become_per_request_kb() {
        let t = import_str(
            TraceFormat::Alibaba,
            &format!("{ROW_A}\n{ROW_B}\n"),
            &ImportOptions::default(),
        )
        .expect("import");
        assert_eq!(t.tick, pamdc_simcore::time::SimDuration::from_secs(10));
        // c_1: 25% of a core, file-hosting (3 ms/req) → 83.3 req/s;
        // 350 KB/s out → 4.2 KB/req.
        let f = &t.flows[0][0][0];
        let rps = 250.0 / 3.0;
        assert!((f.rps - rps).abs() < 1e-9);
        assert!((f.kb_out_per_req - 350.0 / rps).abs() < 1e-12);
        assert!((f.kb_in_per_req - 120.0 / rps).abs() < 1e-12);
        // c_2 has no net columns: class means (image-gallery).
        let g = &t.flows[0][1][0];
        assert_eq!(g.kb_in_per_req, ServiceClass::ImageGallery.kb_in_mean());
        assert_eq!(
            g.kb_out_per_req,
            class_kb_out_mean(ServiceClass::ImageGallery)
        );
    }

    #[test]
    fn mem_util_percent_becomes_a_per_service_memory_profile() {
        // c_1 (file-hosting, 3 ms/req) at 50% CPU = 166.67 req/s,
        // in-flight = 166.67 x 0.0048 s = 0.8; 8% of 4096 MB = 327.68,
        // minus the 256 MB floor = 71.68 MB excess; 71.68 / 0.8 =
        // 89.6 MB per in-flight request (docs/TRACES.md rules).
        let text = "c_1,m_1,10,50.0,8.0,,,,,,\nc_2,m_1,10,30.0,,,,,,,\n";
        let t = import_str(TraceFormat::Alibaba, text, &ImportOptions::default()).unwrap();
        let m = t.mem_mb_per_inflight[0].expect("measured");
        assert!((m - 89.6).abs() < 1e-9, "per-inflight {m}");
        assert_eq!(
            t.mem_mb_per_inflight[1], None,
            "no mem_util_percent sample = unmeasured"
        );
        // The profile survives the trace CSV round-trip bit-for-bit.
        let reparsed = crate::trace::DemandTrace::parse_csv(&t.to_csv()).expect("reparse");
        assert_eq!(t, reparsed);
        // A huge resident set against a tiny rate clamps at the
        // documented ceiling instead of going to infinity.
        let big = "c_1,m_1,10,0.5,90.0,,,,,,\n";
        let t = import_str(TraceFormat::Alibaba, big, &ImportOptions::default()).unwrap();
        assert_eq!(t.mem_mb_per_inflight[0], Some(1024.0));
        // Memory below the VM floor measures as no excess -> unmeasured.
        let idle = "c_1,m_1,10,50.0,2.0,,,,,,\n";
        let t = import_str(TraceFormat::Alibaba, idle, &ImportOptions::default()).unwrap();
        assert_eq!(t.mem_mb_per_inflight[0], None);
    }

    #[test]
    fn header_row_is_skipped() {
        let header = "container_id,machine_id,time_stamp,cpu_util_percent,mem_util_percent,cpi,\
                      mem_gps,mpki,net_in,net_out,disk_io_percent";
        assert_eq!(
            parse(&format!("{header}\n{ROW_A}\n")).expect("parse").len(),
            1
        );
        // Leading comments don't hide the header.
        assert_eq!(
            parse(&format!("# note\n{header}\n{ROW_A}\n"))
                .expect("parse")
                .len(),
            1
        );
    }
}
