//! Pluggable demand sources.
//!
//! The simulation loop does not care where demand comes from: the
//! synthetic Li-BCN-style [`Workload`] generator, a recorded
//! [`TraceSource`](crate::trace::TraceSource) replayer and a live
//! [`TailSource`](crate::tail::TailSource) feed tailer expose the same
//! sampling surface through [`DemandSource`], and [`Demand`] is the
//! concrete closed sum the rest of the workspace stores (scenarios must
//! stay `Clone + Debug`, which a trait object would forfeit).

use crate::generator::{FlowSample, Workload};
use crate::service::ServiceClass;
use crate::tail::TailSource;
use crate::trace::TraceSource;
use pamdc_simcore::time::SimTime;

/// Anything that can drive a simulation's per-tick demand.
///
/// Implementations must be **pure functions of `(self, service, t)`** —
/// no interior mutation — so parallel sweeps, replays and partial
/// re-runs all see identical traces.
pub trait DemandSource {
    /// Number of hosted services (service index i drives VM i).
    fn service_count(&self) -> usize;

    /// Number of client regions flows may originate from.
    fn region_count(&self) -> usize;

    /// The request-shape class of one service (drives per-request memory
    /// constants in the performance profiles).
    fn service_class(&self, service: usize) -> ServiceClass;

    /// Measured memory held per in-flight request, MB, when the source
    /// carries one (imported traces normalize Alibaba's
    /// `mem_util_percent` into this; see `docs/TRACES.md`). `None`
    /// falls back to the service class's constant.
    fn mem_mb_per_inflight(&self, service: usize) -> Option<f64> {
        let _ = service;
        None
    }

    /// Samples the realized demand for one service at one tick: one
    /// [`FlowSample`] per region with nonzero load.
    fn sample(&self, service: usize, t: SimTime) -> Vec<FlowSample>;

    /// Where known demand ends, if it ends at all. `None` — the
    /// default — means open-ended: synthetic generators extend forever
    /// and live feeds keep growing. Sources backed by a fixed recording
    /// return the end of their data (after any playback transform);
    /// what they answer *past* the horizon is implementation-defined
    /// (replays wrap, live feeds go quiet).
    fn horizon(&self) -> Option<SimTime> {
        None
    }

    /// The expected (noise-free, for synthetic sources; recorded, for
    /// traces) request rate from one region to one service at `t`.
    fn expected_rps(&self, service: usize, region: usize, t: SimTime) -> f64;

    /// Total expected rate over all regions for a service at `t`.
    fn expected_total_rps(&self, service: usize, t: SimTime) -> f64 {
        (0..self.region_count())
            .map(|r| self.expected_rps(service, r, t))
            .sum()
    }

    /// The region contributing the most expected load to `service` at
    /// `t` — the "main source load" the paper's Figure 5 VM chases.
    fn dominant_region(&self, service: usize, t: SimTime) -> usize {
        (0..self.region_count())
            .max_by(|&a, &b| {
                self.expected_rps(service, a, t)
                    .partial_cmp(&self.expected_rps(service, b, t))
                    .expect("rates are finite")
            })
            .unwrap_or(0)
    }
}

impl DemandSource for Workload {
    fn service_count(&self) -> usize {
        Workload::service_count(self)
    }
    fn region_count(&self) -> usize {
        Workload::region_count(self)
    }
    fn service_class(&self, service: usize) -> ServiceClass {
        self.services
            .get(service)
            .map(|s| s.class)
            .unwrap_or(ServiceClass::Blog)
    }
    fn sample(&self, service: usize, t: SimTime) -> Vec<FlowSample> {
        Workload::sample(self, service, t)
    }
    fn expected_rps(&self, service: usize, region: usize, t: SimTime) -> f64 {
        Workload::expected_rps(self, service, region, t)
    }
}

/// The closed sum of demand sources a [`Scenario`] can carry.
///
/// Mirrors the [`DemandSource`] surface as inherent methods so call
/// sites don't need the trait in scope.
///
/// [`Scenario`]: https://docs.rs/pamdc-core
#[derive(Clone, Debug)]
pub enum Demand {
    /// The parametric Li-BCN-style generator.
    Synthetic(Workload),
    /// A recorded trace replayed (optionally transformed).
    Trace(TraceSource),
    /// A live append-only feed tailed as it grows. Boxed: the tailer
    /// carries its whole parsed prefix, far larger than the siblings.
    Tail(Box<TailSource>),
}

/// Dispatches one [`DemandSource`] call across the [`Demand`] variants.
macro_rules! each_source {
    ($self:expr, $s:ident => $call:expr) => {
        match $self {
            Demand::Synthetic($s) => $call,
            Demand::Trace($s) => $call,
            Demand::Tail(boxed) => {
                let $s = boxed.as_ref();
                $call
            }
        }
    };
}

impl Demand {
    /// The synthetic generator, when this is one.
    pub fn synthetic(&self) -> Option<&Workload> {
        match self {
            Demand::Synthetic(w) => Some(w),
            _ => None,
        }
    }

    /// The trace replayer, when this is one.
    pub fn trace(&self) -> Option<&TraceSource> {
        match self {
            Demand::Trace(t) => Some(t),
            _ => None,
        }
    }

    /// The live feed tailer, when this is one.
    pub fn tail(&self) -> Option<&TailSource> {
        match self {
            Demand::Tail(t) => Some(t.as_ref()),
            _ => None,
        }
    }

    /// Number of hosted services.
    pub fn service_count(&self) -> usize {
        each_source!(self, s => DemandSource::service_count(s))
    }

    /// Number of client regions.
    pub fn region_count(&self) -> usize {
        each_source!(self, s => DemandSource::region_count(s))
    }

    /// The request-shape class of one service.
    pub fn service_class(&self, service: usize) -> ServiceClass {
        each_source!(self, s => DemandSource::service_class(s, service))
    }

    /// Measured memory-per-in-flight-request profile, when the source
    /// carries one (imported traces only).
    pub fn mem_mb_per_inflight(&self, service: usize) -> Option<f64> {
        each_source!(self, s => DemandSource::mem_mb_per_inflight(s, service))
    }

    /// Samples the realized demand for one service at one tick.
    pub fn sample(&self, service: usize, t: SimTime) -> Vec<FlowSample> {
        each_source!(self, s => DemandSource::sample(s, service, t))
    }

    /// Expected request rate from one region to one service at `t`.
    pub fn expected_rps(&self, service: usize, region: usize, t: SimTime) -> f64 {
        each_source!(self, s => DemandSource::expected_rps(s, service, region, t))
    }

    /// Total expected rate over all regions.
    pub fn expected_total_rps(&self, service: usize, t: SimTime) -> f64 {
        each_source!(self, s => DemandSource::expected_total_rps(s, service, t))
    }

    /// The region contributing the most expected load at `t`.
    pub fn dominant_region(&self, service: usize, t: SimTime) -> usize {
        each_source!(self, s => DemandSource::dominant_region(s, service, t))
    }

    /// Where known demand ends, if it ends at all (see
    /// [`DemandSource::horizon`]).
    pub fn horizon(&self) -> Option<SimTime> {
        each_source!(self, s => DemandSource::horizon(s))
    }
}

impl DemandSource for Demand {
    fn service_count(&self) -> usize {
        Demand::service_count(self)
    }
    fn region_count(&self) -> usize {
        Demand::region_count(self)
    }
    fn service_class(&self, service: usize) -> ServiceClass {
        Demand::service_class(self, service)
    }
    fn mem_mb_per_inflight(&self, service: usize) -> Option<f64> {
        Demand::mem_mb_per_inflight(self, service)
    }
    fn sample(&self, service: usize, t: SimTime) -> Vec<FlowSample> {
        Demand::sample(self, service, t)
    }
    fn expected_rps(&self, service: usize, region: usize, t: SimTime) -> f64 {
        Demand::expected_rps(self, service, region, t)
    }
    fn horizon(&self) -> Option<SimTime> {
        Demand::horizon(self)
    }
}

impl From<Workload> for Demand {
    fn from(w: Workload) -> Self {
        Demand::Synthetic(w)
    }
}

impl From<TraceSource> for Demand {
    fn from(t: TraceSource) -> Self {
        Demand::Trace(t)
    }
}

impl From<TailSource> for Demand {
    fn from(t: TailSource) -> Self {
        Demand::Tail(Box::new(t))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::libcn;

    #[test]
    fn demand_delegates_to_workload() {
        let w = libcn::multi_dc(3, 100.0, 7);
        let d = Demand::from(w.clone());
        assert_eq!(d.service_count(), 3);
        assert_eq!(d.region_count(), 4);
        let t = SimTime::from_mins(123);
        assert_eq!(d.sample(1, t), w.sample(1, t));
        assert_eq!(d.expected_rps(0, 2, t), w.expected_rps(0, 2, t));
        assert_eq!(d.dominant_region(0, t), w.dominant_region(0, t));
        assert_eq!(d.service_class(0), w.services[0].class);
        assert!(d.synthetic().is_some());
        assert!(d.trace().is_none());
    }
}
