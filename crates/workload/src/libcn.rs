//! Preset workloads reconstructing the paper's experimental conditions.
//!
//! The paper drives its testbed with the Li-BCN 2010 trace collection
//! ("traces from different real hosted web-sites offering from file
//! hosting to image-gallery services"), scaled to stress the Atom hosts,
//! with the four regional copies phase-shifted to simulate time zones.
//! These constructors build the synthetic equivalents used by every
//! experiment driver.

use crate::flashcrowd::FlashCrowd;
use crate::generator::{Region, ServiceWorkload, Workload};
use crate::profile::DiurnalProfile;
use crate::service::ServiceClass;

/// The four paper regions (Brisbane, Bangalore, Barcelona, Boston) with
/// equal client populations.
pub fn paper_regions() -> Vec<Region> {
    [10.0, 5.5, 1.0, -5.0]
        .iter()
        .map(|&tz| Region {
            utc_offset_hours: tz,
            population: 1.0,
        })
        .collect()
}

/// A rotating service mix reconstructing the Li-BCN flavour: service `i`
/// gets class `i mod 4`, an alternating office/evening profile, a home
/// region `i mod 4` holding ~55% of its clients, and a scale that stresses
/// one Atom core at peak.
pub fn libcn_services(count: usize, peak_rps: f64) -> Vec<ServiceWorkload> {
    // Class rotation chosen so the home DC that doubles up (service 4
    // shares service 0's home in the 5-VM case) pairs the CPU-heaviest
    // class with a medium one: the shared host contends at peak hours —
    // the pain the static baseline suffers and the dynamic scheduler
    // relieves — without being permanently underwater.
    let classes = [
        ServiceClass::Ecommerce,
        ServiceClass::ImageGallery,
        ServiceClass::FileHosting,
        ServiceClass::ImageGallery,
        ServiceClass::Blog,
    ];
    (0..count)
        .map(|i| {
            let home = i % 4;
            let mut weights = vec![0.15; 4];
            weights[home] = 0.55;
            ServiceWorkload {
                class: classes[i % classes.len()],
                profile: if i % 2 == 0 {
                    DiurnalProfile::office_hours()
                } else {
                    DiurnalProfile::evening()
                },
                scale_rps: peak_rps * (0.8 + 0.1 * (i % 5) as f64),
                region_weights: weights,
            }
        })
        .collect()
}

/// The intra-DC (Figure 4) workload: `vms` services whose clients are all
/// local to one region (index 2, Barcelona — where the testbed lived).
pub fn intra_dc(vms: usize, peak_rps: f64, seed: u64) -> Workload {
    let services = (0..vms)
        .map(|i| {
            let mut weights = vec![0.0; 4];
            weights[2] = 1.0;
            ServiceWorkload {
                class: ServiceClass::ALL[i % 4],
                profile: if i % 2 == 0 {
                    DiurnalProfile::office_hours()
                } else {
                    DiurnalProfile::evening()
                },
                scale_rps: peak_rps * (0.8 + 0.1 * (i % 5) as f64),
                region_weights: weights,
            }
        })
        .collect();
    Workload::new(paper_regions(), services, seed)
}

/// The inter-DC (Figures 5–7) workload: `vms` services with worldwide
/// clients, per-region diurnal phase shifts, and home-region affinity.
pub fn multi_dc(vms: usize, peak_rps: f64, seed: u64) -> Workload {
    Workload::new(paper_regions(), libcn_services(vms, peak_rps), seed)
}

/// The follow-the-sun workload (Figure 5): one service, equal region
/// weights, a sharp local-noon peak — its dominant load source circles
/// the planet once per day.
pub fn follow_the_sun(peak_rps: f64, seed: u64) -> Workload {
    let svc = ServiceWorkload {
        class: ServiceClass::ImageGallery,
        profile: DiurnalProfile::noon_peak(),
        scale_rps: peak_rps,
        region_weights: vec![1.0; 4],
    };
    Workload::new(paper_regions(), vec![svc], seed)
}

/// A latency-neutral multi-DC workload: every service draws equal load
/// from all four regions on a flat profile, so no DC has a latency or
/// demand-phase advantage. Used by experiments isolating the energy term
/// (price shocks, spot markets) from the client-proximity term.
pub fn uniform_multi_dc(vms: usize, peak_rps: f64, seed: u64) -> Workload {
    let services = (0..vms)
        .map(|i| ServiceWorkload {
            class: ServiceClass::ALL[i % 4],
            profile: DiurnalProfile::flat(),
            scale_rps: peak_rps,
            region_weights: vec![1.0; 4],
        })
        .collect();
    Workload::new(paper_regions(), services, seed)
}

/// The Figure 6 workload: `multi_dc` plus the paper's minute-70–90 flash
/// crowd exceeding system capacity.
pub fn multi_dc_with_flash_crowd(
    vms: usize,
    peak_rps: f64,
    multiplier: f64,
    seed: u64,
) -> Workload {
    multi_dc(vms, peak_rps, seed).with_flash_crowd(FlashCrowd::paper_fig6(multiplier))
}

#[cfg(test)]
mod tests {
    use super::*;
    use pamdc_simcore::time::SimTime;

    #[test]
    fn presets_have_right_shape() {
        let w = multi_dc(5, 150.0, 1);
        assert_eq!(w.service_count(), 5);
        assert_eq!(w.region_count(), 4);
        let intra = intra_dc(5, 150.0, 1);
        // All load local to region 2.
        for s in 0..5 {
            for t in [SimTime::from_hours(3), SimTime::from_hours(15)] {
                assert_eq!(intra.expected_rps(s, 0, t), 0.0);
                assert!(intra.expected_rps(s, 2, t) > 0.0);
            }
        }
    }

    #[test]
    fn home_region_dominates_weights() {
        let services = libcn_services(8, 100.0);
        for (i, s) in services.iter().enumerate() {
            let home = i % 4;
            let max = s
                .region_weights
                .iter()
                .cloned()
                .fold(f64::NEG_INFINITY, f64::max);
            assert_eq!(s.region_weights[home], max);
        }
    }

    #[test]
    fn flash_crowd_preset_extends_workload() {
        let w = multi_dc_with_flash_crowd(5, 150.0, 8.0, 2);
        assert_eq!(w.flash_crowds.len(), 1);
        let calm = w.expected_total_rps(0, SimTime::from_mins(30));
        let burst = w.expected_total_rps(0, SimTime::from_mins(80));
        assert!(burst > 4.0 * calm);
    }

    #[test]
    fn follow_the_sun_rotates() {
        let w = follow_the_sun(100.0, 3);
        let mut leaders = std::collections::BTreeSet::new();
        for h in 0..24 {
            leaders.insert(w.dominant_region(0, SimTime::from_hours(h)));
        }
        assert!(leaders.len() >= 3, "leaders {leaders:?}");
    }
}
