//! Web-service classes and their per-request cost distributions.
//!
//! The Li-BCN collection spans "file hosting to image-gallery services";
//! each class here fixes the *shape* of a request: how many KB flow in
//! and out, and how many CPU-milliseconds the reply costs in a
//! no-contention context. Per-tick means are drawn around these with
//! heavy-tailed output sizes (Pareto), which is what makes the VM-IN /
//! VM-OUT predictors of Table I non-trivial to learn.

use pamdc_simcore::rng::RngStream;

/// A class of hosted web-service.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum ServiceClass {
    /// Large downloads, modest CPU.
    FileHosting,
    /// Medium images out, some resizing CPU.
    ImageGallery,
    /// Small dynamic pages, DB-backed CPU cost.
    Blog,
    /// Checkout-style transactional pages: highest CPU per request.
    Ecommerce,
}

impl ServiceClass {
    /// All classes, in a fixed order.
    pub const ALL: [ServiceClass; 4] = [
        ServiceClass::FileHosting,
        ServiceClass::ImageGallery,
        ServiceClass::Blog,
        ServiceClass::Ecommerce,
    ];

    /// Short label for reports.
    pub fn label(self) -> &'static str {
        match self {
            ServiceClass::FileHosting => "file-hosting",
            ServiceClass::ImageGallery => "image-gallery",
            ServiceClass::Blog => "blog",
            ServiceClass::Ecommerce => "ecommerce",
        }
    }

    /// Inverse of [`ServiceClass::label`] (trace headers, scenario specs).
    pub fn from_label(label: &str) -> Option<Self> {
        Self::ALL.into_iter().find(|c| c.label() == label)
    }

    /// Mean request KB inbound (upload/body + headers).
    pub fn kb_in_mean(self) -> f64 {
        match self {
            ServiceClass::FileHosting => 0.8,
            ServiceClass::ImageGallery => 0.5,
            ServiceClass::Blog => 0.4,
            ServiceClass::Ecommerce => 1.2,
        }
    }

    /// Scale (`xm`) of the Pareto outbound-KB distribution.
    pub fn kb_out_scale(self) -> f64 {
        match self {
            ServiceClass::FileHosting => 8.0,
            ServiceClass::ImageGallery => 4.0,
            ServiceClass::Blog => 1.2,
            ServiceClass::Ecommerce => 1.8,
        }
    }

    /// Shape (`alpha`) of the Pareto outbound-KB distribution; smaller is
    /// heavier-tailed.
    pub fn kb_out_shape(self) -> f64 {
        match self {
            ServiceClass::FileHosting => 1.6,
            ServiceClass::ImageGallery => 2.2,
            ServiceClass::Blog => 3.0,
            ServiceClass::Ecommerce => 2.6,
        }
    }

    /// Mean no-contention CPU cost per request, milliseconds.
    pub fn cpu_ms_mean(self) -> f64 {
        match self {
            ServiceClass::FileHosting => 3.0,
            ServiceClass::ImageGallery => 7.0,
            ServiceClass::Blog => 5.0,
            ServiceClass::Ecommerce => 11.0,
        }
    }

    /// Fractional σ of the per-tick CPU-cost jitter.
    pub fn cpu_ms_jitter(self) -> f64 {
        0.18
    }

    /// Memory held per in-flight request, MB (session state, buffers).
    pub fn mem_mb_per_inflight(self) -> f64 {
        match self {
            ServiceClass::FileHosting => 3.0,
            ServiceClass::ImageGallery => 2.2,
            ServiceClass::Blog => 1.2,
            ServiceClass::Ecommerce => 2.8,
        }
    }

    /// Draws this tick's mean outbound KB per request (heavy-tailed but
    /// capped: one tick averages many requests, so the realized per-tick
    /// mean concentrates).
    pub fn sample_kb_out(self, rng: &mut RngStream) -> f64 {
        // Average a small batch of Pareto draws to emulate the per-tick
        // mean over many requests; cap to keep the simulator numerically
        // tame (the paper's observed range tops out around 141 KB/s per
        // VM at its request rates).
        let n = 8;
        let mut acc = 0.0;
        for _ in 0..n {
            acc += rng
                .pareto(self.kb_out_scale(), self.kb_out_shape())
                .min(120.0);
        }
        acc / n as f64
    }

    /// Draws this tick's mean inbound KB per request.
    pub fn sample_kb_in(self, rng: &mut RngStream) -> f64 {
        (self.kb_in_mean() * (1.0 + rng.normal(0.0, 0.15))).max(0.05)
    }

    /// Draws this tick's mean CPU-ms per request.
    pub fn sample_cpu_ms(self, rng: &mut RngStream) -> f64 {
        (self.cpu_ms_mean() * (1.0 + rng.normal(0.0, self.cpu_ms_jitter()))).max(0.2)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labels_unique() {
        let mut labels: Vec<&str> = ServiceClass::ALL.iter().map(|c| c.label()).collect();
        labels.sort_unstable();
        labels.dedup();
        assert_eq!(labels.len(), 4);
    }

    #[test]
    fn samples_positive_and_plausible() {
        let mut rng = RngStream::root(5);
        for class in ServiceClass::ALL {
            for _ in 0..500 {
                let out = class.sample_kb_out(&mut rng);
                assert!(out >= class.kb_out_scale() * 0.5 && out <= 130.0, "{out}");
                assert!(class.sample_kb_in(&mut rng) > 0.0);
                assert!(class.sample_cpu_ms(&mut rng) > 0.0);
            }
        }
    }

    #[test]
    fn file_hosting_is_heaviest_outbound() {
        let mut rng = RngStream::root(6);
        let mean = |c: ServiceClass, rng: &mut RngStream| {
            (0..2000).map(|_| c.sample_kb_out(rng)).sum::<f64>() / 2000.0
        };
        let fh = mean(ServiceClass::FileHosting, &mut rng);
        let blog = mean(ServiceClass::Blog, &mut rng);
        assert!(fh > 2.0 * blog, "file hosting {fh} vs blog {blog}");
    }

    #[test]
    fn ecommerce_is_cpu_heaviest() {
        assert!(ServiceClass::Ecommerce.cpu_ms_mean() > ServiceClass::FileHosting.cpu_ms_mean());
    }
}
