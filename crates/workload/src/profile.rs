//! Diurnal and weekly load-shape profiles.
//!
//! Web traffic follows the day: the Li-BCN traces the paper uses are
//! classic diurnal curves with a morning ramp, midday/evening peaks, a
//! deep night trough, and weekend attenuation. [`DiurnalProfile`] is a
//! parametric reconstruction — a base rate modulated by Gaussian bumps in
//! local-time hours — that the generator phase-shifts per region to
//! simulate the paper's four time zones.

/// One Gaussian bump on the daily curve.
#[derive(Clone, Copy, Debug)]
pub struct DayPeak {
    /// Center, local hour in `[0, 24)`.
    pub hour: f64,
    /// Width (standard deviation), hours.
    pub width: f64,
    /// Amplitude as a multiple of the base rate.
    pub amplitude: f64,
}

/// A 24-hour load shape with weekly modulation.
#[derive(Clone, Debug)]
pub struct DiurnalProfile {
    /// Night-floor fraction of the nominal rate, `> 0`.
    pub base: f64,
    /// Additive Gaussian bumps.
    pub peaks: Vec<DayPeak>,
    /// Multiplier applied on days 5 and 6 of each week (weekends).
    pub weekend_factor: f64,
}

impl DiurnalProfile {
    /// Office-hours shape: strong 11:00 and 16:00 peaks, quiet nights —
    /// typical of business/file-hosting services.
    pub fn office_hours() -> Self {
        DiurnalProfile {
            base: 0.25,
            peaks: vec![
                DayPeak {
                    hour: 11.0,
                    width: 2.2,
                    amplitude: 1.0,
                },
                DayPeak {
                    hour: 16.0,
                    width: 2.5,
                    amplitude: 0.85,
                },
            ],
            weekend_factor: 0.5,
        }
    }

    /// Evening-leisure shape: one broad 20:30 peak — image galleries,
    /// media browsing.
    pub fn evening() -> Self {
        DiurnalProfile {
            base: 0.3,
            peaks: vec![
                DayPeak {
                    hour: 20.5,
                    width: 3.0,
                    amplitude: 1.2,
                },
                DayPeak {
                    hour: 13.0,
                    width: 2.0,
                    amplitude: 0.4,
                },
            ],
            weekend_factor: 1.25,
        }
    }

    /// Flat shape (constant load) for control experiments.
    pub fn flat() -> Self {
        DiurnalProfile {
            base: 1.0,
            peaks: Vec::new(),
            weekend_factor: 1.0,
        }
    }

    /// Midday-centred single peak used by the follow-the-sun scenario:
    /// load is maximal at local noon, so the globally dominant source
    /// rotates cleanly with the time zones.
    pub fn noon_peak() -> Self {
        DiurnalProfile {
            base: 0.12,
            peaks: vec![DayPeak {
                hour: 13.0,
                width: 3.2,
                amplitude: 1.6,
            }],
            weekend_factor: 1.0,
        }
    }

    /// Relative intensity at a **local** hour-of-day and day index;
    /// always `> 0`, around `1.0` at a typical peak.
    pub fn intensity(&self, local_hour: f64, day_index: u64) -> f64 {
        let h = local_hour.rem_euclid(24.0);
        let mut v = self.base;
        for p in &self.peaks {
            // Circular distance on the 24h clock so late-night peaks wrap.
            let mut d = (h - p.hour).abs();
            if d > 12.0 {
                d = 24.0 - d;
            }
            v += p.amplitude * (-0.5 * (d / p.width).powi(2)).exp();
        }
        let weekday = day_index % 7;
        if weekday >= 5 {
            v *= self.weekend_factor;
        }
        v.max(1e-6)
    }

    /// Intensity at an absolute simulation hour for a region with the
    /// given UTC offset (simulation time is UTC).
    pub fn intensity_at(&self, sim_hours: f64, utc_offset_hours: f64) -> f64 {
        let local = sim_hours + utc_offset_hours;
        let day = (local / 24.0).floor().max(0.0) as u64;
        self.intensity(local.rem_euclid(24.0), day)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn peaks_dominate_troughs() {
        let p = DiurnalProfile::office_hours();
        let peak = p.intensity(11.0, 0);
        let night = p.intensity(3.5, 0);
        assert!(peak > 3.0 * night, "peak {peak} vs night {night}");
    }

    #[test]
    fn always_positive() {
        let p = DiurnalProfile::evening();
        for i in 0..240 {
            assert!(p.intensity(i as f64 * 0.1, 0) > 0.0);
        }
    }

    #[test]
    fn weekend_attenuation() {
        let p = DiurnalProfile::office_hours();
        let weekday = p.intensity(11.0, 2);
        let weekend = p.intensity(11.0, 5);
        assert!((weekend / weekday - 0.5).abs() < 1e-9);
    }

    #[test]
    fn flat_profile_is_constant() {
        let p = DiurnalProfile::flat();
        assert_eq!(p.intensity(0.0, 0), p.intensity(12.0, 3));
    }

    #[test]
    fn timezone_shift_moves_peak() {
        let p = DiurnalProfile::noon_peak();
        // At simulation hour 3 UTC, a +10 region is at 13:00 local (peak);
        // a -5 region is at 22:00 local (trough).
        let east = p.intensity_at(3.0, 10.0);
        let west = p.intensity_at(3.0, -5.0);
        assert!(east > 2.0 * west, "east {east} west {west}");
    }

    #[test]
    fn circular_peak_wraps_midnight() {
        let p = DiurnalProfile {
            base: 0.1,
            peaks: vec![DayPeak {
                hour: 23.5,
                width: 1.0,
                amplitude: 1.0,
            }],
            weekend_factor: 1.0,
        };
        // 00:30 is one hour from 23:30 across midnight.
        let just_after = p.intensity(0.5, 0);
        let far = p.intensity(12.0, 0);
        assert!(just_after > 3.0 * far);
    }
}
