//! # pamdc-workload — synthetic Li-BCN-like web workload generation
//!
//! The paper drives its experiments with the Li-BCN 2010 trace collection;
//! that data is not redistributable, so this crate rebuilds its *shape*
//! parametrically: diurnal + weekly load curves ([`profile`]), per-class
//! request cost distributions with heavy-tailed response sizes
//! ([`service`]), per-region timezone phase shifts and affinity weights
//! ([`generator`]), and injected flash crowds ([`flashcrowd`]). Preset
//! scenarios matching each of the paper's experiments live in [`libcn`].
//!
//! Sampling is a pure function of `(seed, service, tick)`, so traces are
//! reproducible and safe to generate from parallel workers.
//!
//! Real-world demand enters through [`import`]: streaming parsers for
//! the Azure VM trace and Alibaba cluster-trace schemas that normalize
//! public datasets into the same [`trace::DemandTrace`] pipeline the
//! synthetic recorder feeds.

pub mod flashcrowd;
pub mod generator;
pub mod import;
pub mod libcn;
pub mod profile;
pub mod service;
pub mod source;
pub mod tail;
pub mod trace;

/// Common imports.
pub mod prelude {
    pub use crate::flashcrowd::{combined_factor, FlashCrowd};
    pub use crate::generator::{FlowSample, Region, ServiceWorkload, Workload};
    pub use crate::import::{ImportOptions, TraceFormat};
    pub use crate::libcn;
    pub use crate::profile::{DayPeak, DiurnalProfile};
    pub use crate::service::ServiceClass;
    pub use crate::source::{Demand, DemandSource};
    pub use crate::tail::TailSource;
    pub use crate::trace::{DemandTrace, TraceParse, TraceSource};
}
