//! Live demand feeds: tail an append-only trace CSV as it grows.
//!
//! A [`TailSource`] streams demand from a file another process is still
//! writing — the same CSV schema [`DemandTrace::to_csv`] emits, minus
//! the foreknowledge: a live writer cannot declare `# ticks` up front,
//! appends rows tick by tick, and may be caught mid-row by a reader.
//! Each [`TailSource::poll`] re-reads the file through the
//! tail-tolerant parser ([`DemandTrace::parse_csv_tail`]), which
//! withholds a torn final row instead of failing, so the view only ever
//! advances over fully-written ticks.
//!
//! Between polls a `TailSource` is a pure function of `(self, service,
//! t)` like every other [`DemandSource`]: sampling beyond the ready
//! prefix yields no flows (the future hasn't been written yet) rather
//! than wrapping the way a [`TraceSource`](crate::trace::TraceSource)
//! replay does.

use crate::generator::FlowSample;
use crate::service::ServiceClass;
use crate::source::DemandSource;
use crate::trace::{DemandTrace, TraceError};
use pamdc_simcore::time::SimTime;
use std::path::{Path, PathBuf};

/// Streams demand from an append-only trace CSV a live writer grows.
#[derive(Clone, Debug)]
pub struct TailSource {
    path: PathBuf,
    /// The fully-written prefix of the feed as of the last poll.
    ingested: DemandTrace,
    /// Ticks safe to consume (see [`TraceParse::complete_ticks`]):
    /// without an end marker the last ingested tick may still be
    /// receiving rows, so it is not yet ready.
    ///
    /// [`TraceParse::complete_ticks`]: crate::trace::TraceParse::complete_ticks
    ready: usize,
    /// Whether the writer marked the feed finished (`# end`, or a
    /// declared `# ticks` count fully delivered).
    complete: bool,
}

impl TailSource {
    /// Opens a feed. Fails while the writer has not yet flushed the
    /// full header block (callers poll-retry until it appears) or when
    /// the file is malformed beyond a torn final row.
    pub fn open(path: impl AsRef<Path>) -> Result<Self, TraceError> {
        let path = path.as_ref().to_path_buf();
        let text = std::fs::read_to_string(&path)
            .map_err(|e| TraceError(format!("cannot read feed {}: {e}", path.display())))?;
        let parsed = DemandTrace::parse_csv_tail(&text)?;
        Ok(TailSource {
            path,
            ready: parsed.complete_ticks(),
            complete: parsed.is_complete,
            ingested: parsed.trace,
        })
    }

    /// Re-reads the feed and advances the ready prefix. Returns the
    /// new ready-tick count. The feed must only ever be appended to:
    /// a shape change or shrink (writer restarted into the same path)
    /// is an error, not a silent rewind.
    pub fn poll(&mut self) -> Result<usize, TraceError> {
        let text = std::fs::read_to_string(&self.path)
            .map_err(|e| TraceError(format!("cannot read feed {}: {e}", self.path.display())))?;
        let parsed = DemandTrace::parse_csv_tail(&text)?;
        if parsed.trace.tick != self.ingested.tick
            || parsed.trace.regions != self.ingested.regions
            || parsed.trace.classes != self.ingested.classes
        {
            return Err(TraceError(format!(
                "feed {} changed shape mid-stream (tick/regions/classes headers moved)",
                self.path.display()
            )));
        }
        let ready = parsed.complete_ticks();
        if ready < self.ready {
            return Err(TraceError(format!(
                "feed {} shrank from {} to {ready} ready ticks (writer restarted?)",
                self.path.display(),
                self.ready
            )));
        }
        self.ready = ready;
        self.complete = parsed.is_complete;
        self.ingested = parsed.trace;
        Ok(self.ready)
    }

    /// The tailed file.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Ticks currently safe to consume.
    pub fn ready_ticks(&self) -> usize {
        self.ready
    }

    /// Whether the writer marked the feed finished.
    pub fn is_complete(&self) -> bool {
        self.complete
    }

    /// The ingested prefix of the feed.
    pub fn trace(&self) -> &DemandTrace {
        &self.ingested
    }

    /// The feed's tick index covering simulated time `t` — unlike a
    /// replay, a live feed never wraps.
    fn tick_index(&self, t: SimTime) -> usize {
        (t.as_millis() / self.ingested.tick.as_millis().max(1)) as usize
    }
}

impl DemandSource for TailSource {
    fn service_count(&self) -> usize {
        self.ingested.service_count()
    }

    fn region_count(&self) -> usize {
        self.ingested.regions
    }

    fn service_class(&self, service: usize) -> ServiceClass {
        self.ingested
            .classes
            .get(service)
            .copied()
            .unwrap_or(ServiceClass::Blog)
    }

    fn mem_mb_per_inflight(&self, service: usize) -> Option<f64> {
        self.ingested
            .mem_mb_per_inflight
            .get(service)
            .copied()
            .flatten()
    }

    fn sample(&self, service: usize, t: SimTime) -> Vec<FlowSample> {
        let idx = self.tick_index(t);
        if idx >= self.ready {
            return Vec::new();
        }
        self.ingested.flows[idx][service].clone()
    }

    fn expected_rps(&self, service: usize, region: usize, t: SimTime) -> f64 {
        let idx = self.tick_index(t);
        if idx >= self.ready {
            return 0.0;
        }
        self.ingested.flows[idx][service]
            .iter()
            .filter(|f| f.region == region)
            .map(|f| f.rps)
            .sum()
    }

    fn horizon(&self) -> Option<SimTime> {
        // A finished feed ends where its data does; a live one is
        // open-ended — more ticks may arrive on the next poll.
        self.complete
            .then(|| SimTime::ZERO + self.ingested.tick * self.ready as u64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::libcn;
    use crate::source::Demand;
    use pamdc_simcore::time::SimDuration;

    fn feed_path(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join("pamdc-tail-tests");
        std::fs::create_dir_all(&dir).expect("tmp dir");
        dir.join(name)
    }

    /// A 6-tick recorded CSV split into (header+first ticks, rest).
    fn recorded_halves() -> (String, String) {
        let w = libcn::multi_dc(2, 90.0, 21);
        let trace = DemandTrace::record(&w, SimDuration::from_mins(6), SimDuration::from_mins(1));
        let csv = trace.to_csv();
        // Strip the `# ticks` foreknowledge a live writer lacks.
        let csv: String = csv
            .lines()
            .filter(|l| !l.starts_with("# ticks"))
            .map(|l| format!("{l}\n"))
            .collect();
        let cut = csv.find("\n3,").map(|i| i + 1).expect("tick-3 rows");
        (csv[..cut].to_string(), csv[cut..].to_string())
    }

    #[test]
    fn tailing_a_growing_feed_advances_monotonically() {
        let path = feed_path("grow.csv");
        let (head, rest) = recorded_halves();
        std::fs::write(&path, &head).expect("write head");
        let mut tail = TailSource::open(&path).expect("open");
        // Ticks 0..2 are on disk; tick 2 may still be growing.
        assert_eq!(tail.ready_ticks(), 2);
        assert!(!tail.is_complete());
        assert!(tail.horizon().is_none(), "live feed is open-ended");
        assert!(!DemandSource::sample(&tail, 0, SimTime::from_mins(1)).is_empty());
        assert!(
            DemandSource::sample(&tail, 0, SimTime::from_mins(5)).is_empty(),
            "beyond the ready prefix there is no demand yet"
        );
        // The writer catches up and closes the feed.
        std::fs::write(&path, format!("{head}{rest}# end\n")).expect("append");
        assert_eq!(tail.poll().expect("poll"), 6);
        assert!(tail.is_complete());
        assert_eq!(tail.horizon(), Some(SimTime::from_mins(6)));
        assert!(!DemandSource::sample(&tail, 0, SimTime::from_mins(5)).is_empty());
    }

    #[test]
    fn a_torn_append_is_withheld_until_flushed() {
        let path = feed_path("torn.csv");
        let (head, rest) = recorded_halves();
        // Catch the writer mid-row in tick 3.
        let torn = format!("{head}{}", &rest[..rest.len().min(9)]);
        assert!(!torn.ends_with('\n'));
        std::fs::write(&path, &torn).expect("write torn");
        let mut tail = TailSource::open(&path).expect("open");
        assert_eq!(tail.ready_ticks(), 3, "ticks 0-2 provably complete");
        std::fs::write(&path, format!("{head}{rest}")).expect("flush");
        assert_eq!(tail.poll().expect("poll"), 5, "tick 5 may still grow");
    }

    #[test]
    fn shrinking_or_reshaping_feeds_are_rejected() {
        let path = feed_path("shrink.csv");
        let (head, rest) = recorded_halves();
        std::fs::write(&path, format!("{head}{rest}")).expect("write");
        let mut tail = TailSource::open(&path).expect("open");
        assert_eq!(tail.ready_ticks(), 5);
        std::fs::write(&path, &head).expect("truncate");
        assert!(tail.poll().is_err(), "feed shrank");
        std::fs::write(&path, head.replace("# regions = 4", "# regions = 7")).expect("reshape");
        let mut tail2 = TailSource::open(&path).expect("reopen");
        std::fs::write(&path, &head).expect("restore");
        assert!(tail2.poll().is_err(), "shape changed mid-stream");
    }

    #[test]
    fn demand_enum_carries_tail_sources() {
        let path = feed_path("enum.csv");
        let (head, rest) = recorded_halves();
        std::fs::write(&path, format!("{head}{rest}# end\n")).expect("write");
        let tail = TailSource::open(&path).expect("open");
        let d = Demand::from(tail);
        assert_eq!(d.service_count(), 2);
        assert!(d.tail().is_some());
        assert!(d.synthetic().is_none() && d.trace().is_none());
        assert_eq!(d.horizon(), Some(SimTime::from_mins(6)));
        assert!(!d.sample(0, SimTime::from_mins(2)).is_empty());
    }
}
