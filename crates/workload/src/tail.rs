//! Live demand feeds: tail an append-only trace CSV as it grows.
//!
//! A [`TailSource`] streams demand from a file another process is still
//! writing — the same CSV schema [`DemandTrace::to_csv`] emits, minus
//! the foreknowledge: a live writer cannot declare `# ticks` up front,
//! appends rows tick by tick, and may be caught mid-row by a reader.
//!
//! Polling is **incremental**: the file is parsed exactly once. Each
//! [`TailSource::poll`] reads only the bytes appended since the last
//! look (the [`TraceTail`] engine keeps parser state, including a torn
//! final row, across polls), so tailing a multi-gigabyte feed costs
//! the delta, not the history. Because consumed bytes are never
//! re-read, the poll also re-verifies the pinned header block
//! byte-for-byte and refuses files that shrink — a writer restarting
//! into the same path is an error, not a silent rewind.
//!
//! Between polls a `TailSource` is a pure function of `(self, service,
//! t)` like every other [`DemandSource`]: sampling beyond the ready
//! prefix yields no flows (the future hasn't been written yet) rather
//! than wrapping the way a [`TraceSource`](crate::trace::TraceSource)
//! replay does.

use crate::generator::FlowSample;
use crate::service::ServiceClass;
use crate::source::DemandSource;
use crate::trace::{DemandTrace, TraceError, TraceTail};
use pamdc_simcore::time::SimTime;
use std::io::{Read, Seek, SeekFrom};
use std::path::{Path, PathBuf};

/// Streams demand from an append-only trace CSV a live writer grows.
#[derive(Clone, Debug)]
pub struct TailSource {
    path: PathBuf,
    /// Incremental parser state + the materialized feed prefix.
    tail: TraceTail,
    /// Raw bytes of the header block (through the column-header row),
    /// pinned at open. Re-verified on every poll: a same-length
    /// in-place rewrite of the shape headers would otherwise escape
    /// the offset-based delta read entirely.
    probe: Vec<u8>,
    /// Ticks safe to consume (see [`TraceParse::complete_ticks`]):
    /// without an end marker the last ingested tick may still be
    /// receiving rows, so it is not yet ready.
    ///
    /// [`TraceParse::complete_ticks`]: crate::trace::TraceParse::complete_ticks
    ready: usize,
    /// Whether the writer marked the feed finished (`# end`, or a
    /// declared `# ticks` count fully delivered).
    complete: bool,
}

impl TailSource {
    /// Opens a feed. Fails while the writer has not yet flushed the
    /// full header block (callers poll-retry until it appears) or when
    /// the file is malformed beyond a torn final row.
    pub fn open(path: impl AsRef<Path>) -> Result<Self, TraceError> {
        let path = path.as_ref().to_path_buf();
        let bytes = std::fs::read(&path)
            .map_err(|e| TraceError(format!("cannot read feed {}: {e}", path.display())))?;
        let mut tail = TraceTail::open(&bytes)?;
        let probe = bytes
            .get(..tail.header_end() as usize)
            .unwrap_or_default()
            .to_vec();
        let (ready, complete) = tail.refresh()?;
        Ok(TailSource {
            path,
            tail,
            probe,
            ready,
            complete,
        })
    }

    /// Reads the bytes appended since the last poll and advances the
    /// ready prefix. Returns the new ready-tick count. The feed must
    /// only ever be appended to: a shape change or shrink (writer
    /// restarted into the same path) is an error, not a silent rewind.
    pub fn poll(&mut self) -> Result<usize, TraceError> {
        let io_err = |e: std::io::Error| {
            TraceError(format!("cannot read feed {}: {e}", self.path.display()))
        };
        let mut file = std::fs::File::open(&self.path).map_err(io_err)?;
        let len = file.metadata().map_err(io_err)?.len();
        let fed = self.tail.fed_bytes();
        if len < fed {
            return Err(TraceError(format!(
                "feed {} shrank from {fed} to {len} bytes (writer restarted?)",
                self.path.display()
            )));
        }
        // Consumed bytes are never re-read, so the header block gets a
        // dedicated byte-identity check instead.
        let mut head = vec![0u8; self.probe.len()];
        file.read_exact(&mut head).map_err(io_err)?;
        if head != self.probe {
            return Err(TraceError(format!(
                "feed {} changed shape mid-stream (header block rewritten)",
                self.path.display()
            )));
        }
        file.seek(SeekFrom::Start(fed)).map_err(io_err)?;
        let mut delta = Vec::new();
        file.read_to_end(&mut delta).map_err(io_err)?;
        self.tail.feed(&delta)?;
        let (ready, complete) = self.tail.refresh()?;
        if ready < self.ready {
            return Err(TraceError(format!(
                "feed {} shrank from {} to {ready} ready ticks (writer restarted?)",
                self.path.display(),
                self.ready
            )));
        }
        self.ready = ready;
        self.complete = complete;
        Ok(self.ready)
    }

    /// The tailed file.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Total bytes ingested so far — the file offset the next poll
    /// resumes reading from. Tracks the feed's on-disk size whenever
    /// the source is up to date.
    pub fn fed_bytes(&self) -> u64 {
        self.tail.fed_bytes()
    }

    /// Ticks currently safe to consume.
    pub fn ready_ticks(&self) -> usize {
        self.ready
    }

    /// Whether the writer marked the feed finished.
    pub fn is_complete(&self) -> bool {
        self.complete
    }

    /// The ingested prefix of the feed.
    pub fn trace(&self) -> &DemandTrace {
        self.tail.trace()
    }

    /// The feed's tick index covering simulated time `t` — unlike a
    /// replay, a live feed never wraps.
    fn tick_index(&self, t: SimTime) -> usize {
        (t.as_millis() / self.trace().tick.as_millis().max(1)) as usize
    }
}

impl DemandSource for TailSource {
    fn service_count(&self) -> usize {
        self.trace().service_count()
    }

    fn region_count(&self) -> usize {
        self.trace().regions
    }

    fn service_class(&self, service: usize) -> ServiceClass {
        self.trace()
            .classes
            .get(service)
            .copied()
            .unwrap_or(ServiceClass::Blog)
    }

    fn mem_mb_per_inflight(&self, service: usize) -> Option<f64> {
        self.trace()
            .mem_mb_per_inflight
            .get(service)
            .copied()
            .flatten()
    }

    fn sample(&self, service: usize, t: SimTime) -> Vec<FlowSample> {
        let idx = self.tick_index(t);
        if idx >= self.ready {
            return Vec::new();
        }
        self.trace()
            .flows
            .get(idx)
            .and_then(|services| services.get(service))
            .cloned()
            .unwrap_or_default()
    }

    fn expected_rps(&self, service: usize, region: usize, t: SimTime) -> f64 {
        let idx = self.tick_index(t);
        if idx >= self.ready {
            return 0.0;
        }
        self.trace()
            .flows
            .get(idx)
            .and_then(|services| services.get(service))
            .into_iter()
            .flatten()
            .filter(|f| f.region == region)
            .map(|f| f.rps)
            .sum()
    }

    fn horizon(&self) -> Option<SimTime> {
        // A finished feed ends where its data does; a live one is
        // open-ended — more ticks may arrive on the next poll.
        self.complete
            .then(|| SimTime::ZERO + self.trace().tick * self.ready as u64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::libcn;
    use crate::source::Demand;
    use pamdc_simcore::time::SimDuration;

    fn feed_path(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join("pamdc-tail-tests");
        std::fs::create_dir_all(&dir).expect("tmp dir");
        dir.join(name)
    }

    /// A 6-tick recorded CSV split into (header+first ticks, rest).
    fn recorded_halves() -> (String, String) {
        let w = libcn::multi_dc(2, 90.0, 21);
        let trace = DemandTrace::record(&w, SimDuration::from_mins(6), SimDuration::from_mins(1));
        let csv = trace.to_csv();
        // Strip the `# ticks` foreknowledge a live writer lacks.
        let csv: String = csv
            .lines()
            .filter(|l| !l.starts_with("# ticks"))
            .map(|l| format!("{l}\n"))
            .collect();
        let cut = csv.find("\n3,").map(|i| i + 1).expect("tick-3 rows");
        (csv[..cut].to_string(), csv[cut..].to_string())
    }

    #[test]
    fn tailing_a_growing_feed_advances_monotonically() {
        let path = feed_path("grow.csv");
        let (head, rest) = recorded_halves();
        std::fs::write(&path, &head).expect("write head");
        let mut tail = TailSource::open(&path).expect("open");
        // Ticks 0..2 are on disk; tick 2 may still be growing.
        assert_eq!(tail.ready_ticks(), 2);
        assert!(!tail.is_complete());
        assert!(tail.horizon().is_none(), "live feed is open-ended");
        assert!(!DemandSource::sample(&tail, 0, SimTime::from_mins(1)).is_empty());
        assert!(
            DemandSource::sample(&tail, 0, SimTime::from_mins(5)).is_empty(),
            "beyond the ready prefix there is no demand yet"
        );
        // The writer catches up and closes the feed.
        std::fs::write(&path, format!("{head}{rest}# end\n")).expect("append");
        assert_eq!(tail.poll().expect("poll"), 6);
        assert!(tail.is_complete());
        assert_eq!(tail.horizon(), Some(SimTime::from_mins(6)));
        assert!(!DemandSource::sample(&tail, 0, SimTime::from_mins(5)).is_empty());
    }

    #[test]
    fn a_torn_append_is_withheld_until_flushed() {
        let path = feed_path("torn.csv");
        let (head, rest) = recorded_halves();
        // Catch the writer mid-row in tick 3.
        let torn = format!("{head}{}", &rest[..rest.len().min(9)]);
        assert!(!torn.ends_with('\n'));
        std::fs::write(&path, &torn).expect("write torn");
        let mut tail = TailSource::open(&path).expect("open");
        assert_eq!(tail.ready_ticks(), 3, "ticks 0-2 provably complete");
        std::fs::write(&path, format!("{head}{rest}")).expect("flush");
        assert_eq!(tail.poll().expect("poll"), 5, "tick 5 may still grow");
    }

    #[test]
    fn shrinking_or_reshaping_feeds_are_rejected() {
        let path = feed_path("shrink.csv");
        let (head, rest) = recorded_halves();
        std::fs::write(&path, format!("{head}{rest}")).expect("write");
        let mut tail = TailSource::open(&path).expect("open");
        assert_eq!(tail.ready_ticks(), 5);
        std::fs::write(&path, &head).expect("truncate");
        assert!(tail.poll().is_err(), "feed shrank");
        std::fs::write(&path, head.replace("# regions = 4", "# regions = 7")).expect("reshape");
        let mut tail2 = TailSource::open(&path).expect("reopen");
        std::fs::write(&path, &head).expect("restore");
        assert!(tail2.poll().is_err(), "shape changed mid-stream");
    }

    /// A deterministic dense trace big enough that whole-file re-parses
    /// per poll would dominate: `ticks × services × 4 regions` rows.
    fn big_feed(ticks: usize, services: usize) -> (DemandTrace, String) {
        let mut flows = Vec::with_capacity(ticks);
        for t in 0..ticks {
            flows.push(
                (0..services)
                    .map(|s| {
                        (0..4usize)
                            .map(|r| FlowSample {
                                region: r,
                                rps: 100.0 + (t * 7 + s * 3 + r) as f64 * 0.013,
                                kb_in_per_req: 1.5 + r as f64 * 0.25,
                                kb_out_per_req: 20.0 + s as f64 * 0.125,
                                cpu_ms_per_req: 3.0 + (t % 5) as f64 * 0.0625,
                            })
                            .collect()
                    })
                    .collect(),
            );
        }
        let trace = DemandTrace {
            tick: SimDuration::from_mins(1),
            regions: 4,
            classes: vec![ServiceClass::Blog; services],
            mem_mb_per_inflight: vec![None; services],
            flows,
        };
        // Strip the `# ticks` foreknowledge a live writer lacks.
        let csv: String = trace
            .to_csv()
            .lines()
            .filter(|l| !l.starts_with("# ticks"))
            .map(|l| format!("{l}\n"))
            .collect();
        (trace, csv)
    }

    #[test]
    fn offset_polls_match_whole_file_parses_on_a_multi_mb_feed() {
        let path = feed_path("multimb.csv");
        let (trace, csv) = big_feed(3500, 5);
        let bytes = csv.as_bytes();
        assert!(
            bytes.len() > 2 * 1024 * 1024,
            "feed must be multi-MB, got {} bytes",
            bytes.len()
        );
        // Deliberately non-line-aligned cut points: every append
        // boundary tears a row, so the carry buffer is exercised on
        // open and on every poll.
        let mut cuts: Vec<usize> = (1..8).map(|i| bytes.len() * i / 8 + 13).collect();
        cuts.push(bytes.len());
        std::fs::write(&path, &bytes[..cuts[0]]).expect("write first chunk");
        let mut tail = TailSource::open(&path).expect("open");
        for &cut in &cuts {
            std::fs::write(&path, &bytes[..cut]).expect("append");
            tail.poll().expect("poll");
            // The incremental reader ingested exactly the on-disk bytes
            // (each poll read only the delta past the last offset)...
            assert_eq!(tail.fed_bytes(), cut as u64);
            // ...and its view is indistinguishable from re-parsing the
            // whole file through the tail-tolerant one-shot path.
            let text = std::str::from_utf8(&bytes[..cut]).expect("utf8");
            let whole = DemandTrace::parse_csv_tail(text).expect("whole-file parse");
            assert_eq!(tail.ready_ticks(), whole.complete_ticks());
            assert_eq!(tail.is_complete(), whole.is_complete);
            let ready = tail.ready_ticks();
            assert_eq!(
                tail.trace().flows[..ready],
                whole.trace.flows[..ready],
                "ready prefix diverged at {cut} bytes"
            );
        }
        // Polling an unchanged file is a cheap no-op.
        let before = tail.ready_ticks();
        assert_eq!(tail.poll().expect("idle poll"), before);
        // The writer closes the feed: the store now equals the recorded
        // trace bit-for-bit.
        std::fs::write(&path, format!("{csv}# end\n")).expect("end");
        tail.poll().expect("final poll");
        assert!(tail.is_complete());
        assert_eq!(tail.ready_ticks(), 3500);
        assert_eq!(tail.fed_bytes(), csv.len() as u64 + "# end\n".len() as u64);
        assert_eq!(tail.trace(), &trace);
    }

    #[test]
    fn demand_enum_carries_tail_sources() {
        let path = feed_path("enum.csv");
        let (head, rest) = recorded_halves();
        std::fs::write(&path, format!("{head}{rest}# end\n")).expect("write");
        let tail = TailSource::open(&path).expect("open");
        let d = Demand::from(tail);
        assert_eq!(d.service_count(), 2);
        assert!(d.tail().is_some());
        assert!(d.synthetic().is_none() && d.trace().is_none());
        assert_eq!(d.horizon(), Some(SimTime::from_mins(6)));
        assert!(!d.sample(0, SimTime::from_mins(2)).is_empty());
    }
}
