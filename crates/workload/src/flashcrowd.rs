//! Flash crowds: sudden demand bursts.
//!
//! The paper's Figure 6 run deliberately keeps a flash-crowd effect "in
//! minutes 70-90, for about 15 minutes, which clearly exceeds the capacity
//! of the system". A [`FlashCrowd`] multiplies one service's (or every
//! service's) arrival rate over a window, with a short linear ramp at each
//! edge so the burst is steep but not a discontinuity.

use pamdc_simcore::time::{SimDuration, SimTime};

/// One demand burst.
#[derive(Clone, Copy, Debug)]
pub struct FlashCrowd {
    /// Burst start.
    pub start: SimTime,
    /// Burst length (plateau plus ramps).
    pub duration: SimDuration,
    /// Peak arrival-rate multiplier (`>= 1`).
    pub multiplier: f64,
    /// Affected service index; `None` hits every service.
    pub service: Option<usize>,
    /// Affected client region; `None` hits every region.
    pub region: Option<usize>,
}

impl FlashCrowd {
    /// The paper's Figure 6 burst: minutes 70–90, system-wide.
    pub fn paper_fig6(multiplier: f64) -> Self {
        FlashCrowd {
            start: SimTime::from_mins(70),
            duration: SimDuration::from_mins(20),
            multiplier,
            service: None,
            region: None,
        }
    }

    /// Multiplier contributed by this burst for `(service, region)` at
    /// time `t` (1.0 outside the window or off-target).
    pub fn factor(&self, service: usize, region: usize, t: SimTime) -> f64 {
        if self.service.is_some_and(|s| s != service) || self.region.is_some_and(|r| r != region) {
            return 1.0;
        }
        let end = self.start + self.duration;
        if t < self.start || t >= end {
            return 1.0;
        }
        // 10% ramp up, 80% plateau, 10% ramp down.
        let total = self.duration.as_secs_f64();
        let x = (t - self.start).as_secs_f64() / total;
        let shape = if x < 0.1 {
            x / 0.1
        } else if x > 0.9 {
            (1.0 - x) / 0.1
        } else {
            1.0
        };
        1.0 + (self.multiplier - 1.0) * shape
    }
}

/// Combined multiplier of several bursts (product).
pub fn combined_factor(crowds: &[FlashCrowd], service: usize, region: usize, t: SimTime) -> f64 {
    crowds
        .iter()
        .map(|c| c.factor(service, region, t))
        .product()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn outside_window_is_unity() {
        let c = FlashCrowd::paper_fig6(8.0);
        assert_eq!(c.factor(0, 0, SimTime::from_mins(69)), 1.0);
        assert_eq!(c.factor(0, 0, SimTime::from_mins(90)), 1.0);
    }

    #[test]
    fn plateau_hits_multiplier() {
        let c = FlashCrowd::paper_fig6(8.0);
        let f = c.factor(2, 3, SimTime::from_mins(80));
        assert!((f - 8.0).abs() < 1e-9, "plateau factor {f}");
    }

    #[test]
    fn ramps_are_intermediate() {
        let c = FlashCrowd::paper_fig6(8.0);
        let early = c.factor(0, 0, SimTime::from_mins(71));
        assert!(early > 1.0 && early < 8.0, "ramp factor {early}");
    }

    #[test]
    fn targeting_filters() {
        let c = FlashCrowd {
            start: SimTime::ZERO,
            duration: SimDuration::from_mins(10),
            multiplier: 5.0,
            service: Some(1),
            region: Some(2),
        };
        let mid = SimTime::from_mins(5);
        assert_eq!(c.factor(0, 2, mid), 1.0);
        assert_eq!(c.factor(1, 0, mid), 1.0);
        assert!((c.factor(1, 2, mid) - 5.0).abs() < 1e-9);
    }

    #[test]
    fn combination_multiplies() {
        let a = FlashCrowd::paper_fig6(2.0);
        let b = FlashCrowd::paper_fig6(3.0);
        let f = combined_factor(&[a, b], 0, 0, SimTime::from_mins(80));
        assert!((f - 6.0).abs() < 1e-9);
        assert_eq!(combined_factor(&[], 0, 0, SimTime::from_mins(80)), 1.0);
    }
}
