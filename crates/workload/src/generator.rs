//! The workload generator: per-tick, per-service, per-region demand.
//!
//! Sampling is a **pure function of (seed, service, tick)** — the
//! generator derives an RNG stream per sample point instead of mutating
//! shared state — so parallel sweeps, replays and partial re-runs all see
//! identical traces.

use crate::flashcrowd::{combined_factor, FlashCrowd};
use crate::profile::DiurnalProfile;
use crate::service::ServiceClass;
use pamdc_simcore::rng::RngStream;
use pamdc_simcore::time::SimTime;

/// One region's demand toward one service during one tick.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct FlowSample {
    /// Client region index (maps 1:1 to `pamdc-infra` locations).
    pub region: usize,
    /// Arrival rate, requests/second.
    pub rps: f64,
    /// Mean inbound KB per request this tick.
    pub kb_in_per_req: f64,
    /// Mean outbound KB per request this tick.
    pub kb_out_per_req: f64,
    /// Mean no-contention CPU per request, milliseconds.
    pub cpu_ms_per_req: f64,
}

/// A client region: its timezone and relative population.
#[derive(Clone, Copy, Debug)]
pub struct Region {
    /// Hours ahead of simulation (UTC) time.
    pub utc_offset_hours: f64,
    /// Relative client population (multiplies every rate from here).
    pub population: f64,
}

/// One hosted service's demand description.
#[derive(Clone, Debug)]
pub struct ServiceWorkload {
    /// Request shape class.
    pub class: ServiceClass,
    /// Daily/weekly load shape, evaluated in each region's local time.
    pub profile: DiurnalProfile,
    /// Nominal peak request rate, requests/second, summed over regions.
    pub scale_rps: f64,
    /// Per-region affinity weights (normalized internally). A service
    /// "based" in region 2 would put most weight there.
    pub region_weights: Vec<f64>,
}

/// The full multi-region workload.
#[derive(Clone, Debug)]
pub struct Workload {
    /// Client regions (indexing matches `FlowSample::region`).
    pub regions: Vec<Region>,
    /// Hosted services (indexing matches VM ids downstream).
    pub services: Vec<ServiceWorkload>,
    /// Demand bursts.
    pub flash_crowds: Vec<FlashCrowd>,
    seed: u64,
    /// Relative σ of per-tick rate noise around the profile curve.
    pub rate_noise: f64,
}

impl Workload {
    /// A workload over the given regions and services.
    pub fn new(regions: Vec<Region>, services: Vec<ServiceWorkload>, seed: u64) -> Self {
        assert!(!regions.is_empty(), "need at least one region");
        for s in &services {
            assert_eq!(
                s.region_weights.len(),
                regions.len(),
                "region weights must cover every region"
            );
        }
        Workload {
            regions,
            services,
            flash_crowds: Vec::new(),
            seed,
            rate_noise: 0.08,
        }
    }

    /// Adds a flash crowd.
    pub fn with_flash_crowd(mut self, c: FlashCrowd) -> Self {
        self.flash_crowds.push(c);
        self
    }

    /// Overrides the per-tick rate noise.
    pub fn with_rate_noise(mut self, noise: f64) -> Self {
        self.rate_noise = noise.max(0.0);
        self
    }

    /// Number of services.
    pub fn service_count(&self) -> usize {
        self.services.len()
    }

    /// Number of regions.
    pub fn region_count(&self) -> usize {
        self.regions.len()
    }

    /// Deterministic per-(service, tick) RNG stream.
    fn stream(&self, service: usize, t: SimTime) -> RngStream {
        RngStream::root(self.seed).derive_indexed(
            "workload",
            ((service as u64) << 40) | (t.as_millis() / 1000),
        )
    }

    /// The *expected* (noise-free) request rate from one region to one
    /// service at `t`, requests/second. This is what a "perfect forecast"
    /// oracle would know; the realized sample fluctuates around it.
    pub fn expected_rps(&self, service: usize, region: usize, t: SimTime) -> f64 {
        let s = &self.services[service];
        let r = &self.regions[region];
        let wsum: f64 = s.region_weights.iter().sum();
        let w = if wsum > 0.0 {
            s.region_weights[region] / wsum
        } else {
            0.0
        };
        let shape = s.profile.intensity_at(t.as_hours_f64(), r.utc_offset_hours);
        let flash = combined_factor(&self.flash_crowds, service, region, t);
        s.scale_rps * w * r.population * shape * flash
    }

    /// Samples the realized demand for one service at one tick: one
    /// [`FlowSample`] per region with nonzero expected rate.
    pub fn sample(&self, service: usize, t: SimTime) -> Vec<FlowSample> {
        let mut rng = self.stream(service, t);
        let class = self.services[service].class;
        let mut out = Vec::with_capacity(self.regions.len());
        for region in 0..self.regions.len() {
            let expected = self.expected_rps(service, region, t);
            if expected <= 0.0 {
                continue;
            }
            // Multiplicative log-ish noise, clamped to stay positive.
            let noisy = if self.rate_noise > 0.0 {
                (expected * (1.0 + rng.normal(0.0, self.rate_noise))).max(0.0)
            } else {
                expected
            };
            // Poisson-ize small rates so low-traffic ticks are integers
            // in expectation; large rates use the (already noisy) mean.
            let rps = if noisy < 5.0 {
                rng.poisson(noisy) as f64
            } else {
                noisy
            };
            out.push(FlowSample {
                region,
                rps,
                kb_in_per_req: class.sample_kb_in(&mut rng),
                kb_out_per_req: class.sample_kb_out(&mut rng),
                cpu_ms_per_req: class.sample_cpu_ms(&mut rng),
            });
        }
        out
    }

    /// Total expected rate over all regions for a service at `t`.
    pub fn expected_total_rps(&self, service: usize, t: SimTime) -> f64 {
        (0..self.regions.len())
            .map(|r| self.expected_rps(service, r, t))
            .sum()
    }

    /// The region contributing the most expected load to `service` at
    /// `t` — the "main source load" the paper's Figure 5 VM chases.
    pub fn dominant_region(&self, service: usize, t: SimTime) -> usize {
        (0..self.regions.len())
            .max_by(|&a, &b| {
                self.expected_rps(service, a, t)
                    .partial_cmp(&self.expected_rps(service, b, t))
                    .expect("rates are finite")
            })
            .unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn four_regions() -> Vec<Region> {
        // Brisbane, Bangalore, Barcelona, Boston.
        [10.0, 5.5, 1.0, -5.0]
            .iter()
            .map(|&tz| Region {
                utc_offset_hours: tz,
                population: 1.0,
            })
            .collect()
    }

    fn simple_workload(seed: u64) -> Workload {
        let svc = ServiceWorkload {
            class: ServiceClass::Blog,
            profile: DiurnalProfile::noon_peak(),
            scale_rps: 120.0,
            region_weights: vec![1.0; 4],
        };
        Workload::new(four_regions(), vec![svc], seed)
    }

    #[test]
    fn sampling_is_deterministic() {
        let w1 = simple_workload(9);
        let w2 = simple_workload(9);
        let t = SimTime::from_mins(345);
        assert_eq!(w1.sample(0, t), w2.sample(0, t));
    }

    #[test]
    fn different_ticks_differ() {
        let w = simple_workload(9);
        let a = w.sample(0, SimTime::from_mins(1));
        let b = w.sample(0, SimTime::from_mins(2));
        assert_ne!(a, b);
    }

    #[test]
    fn dominant_region_rotates_with_the_sun() {
        let w = simple_workload(1);
        let mut dominants = Vec::new();
        for h in 0..24 {
            dominants.push(w.dominant_region(0, SimTime::from_hours(h)));
        }
        dominants.dedup();
        // Over a day, at least three different regions must lead.
        let mut uniq = dominants.clone();
        uniq.sort_unstable();
        uniq.dedup();
        assert!(uniq.len() >= 3, "dominant sequence {dominants:?}");
    }

    #[test]
    fn expected_rps_respects_weights() {
        let mut svc = ServiceWorkload {
            class: ServiceClass::Blog,
            profile: DiurnalProfile::flat(),
            scale_rps: 100.0,
            region_weights: vec![3.0, 1.0, 0.0, 0.0],
        };
        svc.profile = DiurnalProfile::flat();
        let w = Workload::new(four_regions(), vec![svc], 0).with_rate_noise(0.0);
        let t = SimTime::from_hours(5);
        let r0 = w.expected_rps(0, 0, t);
        let r1 = w.expected_rps(0, 1, t);
        assert!((r0 / r1 - 3.0).abs() < 1e-9);
        assert_eq!(w.expected_rps(0, 2, t), 0.0);
    }

    #[test]
    fn flash_crowd_scales_sampled_load() {
        let base = simple_workload(3).with_rate_noise(0.0);
        let crowded = simple_workload(3)
            .with_rate_noise(0.0)
            .with_flash_crowd(crate::flashcrowd::FlashCrowd::paper_fig6(8.0));
        let t = SimTime::from_mins(80);
        let calm: f64 = base.sample(0, t).iter().map(|f| f.rps).sum();
        let burst: f64 = crowded.sample(0, t).iter().map(|f| f.rps).sum();
        assert!(burst > 6.0 * calm, "burst {burst} calm {calm}");
    }

    #[test]
    fn expected_total_is_sum_of_regions() {
        let w = simple_workload(4);
        let t = SimTime::from_hours(7);
        let total = w.expected_total_rps(0, t);
        let sum: f64 = (0..4).map(|r| w.expected_rps(0, r, t)).sum();
        assert!((total - sum).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "region weights")]
    fn mismatched_weights_panic() {
        let svc = ServiceWorkload {
            class: ServiceClass::Blog,
            profile: DiurnalProfile::flat(),
            scale_rps: 10.0,
            region_weights: vec![1.0; 2],
        };
        Workload::new(four_regions(), vec![svc], 0);
    }
}
