//! Demand traces: record any run's demand to CSV, replay it later.
//!
//! A [`DemandTrace`] is the materialized per-tick output of a
//! [`DemandSource`](crate::source::DemandSource): every `(tick, service,
//! region)` flow, plus the header metadata needed to rebuild performance
//! profiles (service classes) and validate transforms (region count).
//! The CSV form is deliberately dumb — one row per flow, floats printed
//! in shortest round-trip form — so `parse(emit(trace))` is
//! **bit-identical** and a replayed run reproduces the recorded run's
//! scheduler decisions exactly.
//!
//! A [`TraceSource`] replays a trace, optionally transformed:
//!
//! * **rate-scale** — multiply every arrival rate by `k`;
//! * **time-stretch** — play the trace `f`× slower (a 24 h trace drives
//!   a 48 h run at `f = 2`);
//! * **region-remap** — relabel client regions (move a trace recorded
//!   against Barcelona clients to Boston).
//!
//! Queries past the end of the trace wrap around, so one recorded day
//! can drive arbitrarily long scenarios.

use crate::generator::FlowSample;
use crate::import::{for_each_line, ImportError};
use crate::service::ServiceClass;
use crate::source::DemandSource;
use pamdc_simcore::time::{SimDuration, SimTime};
use std::fmt::Write as _;
use std::sync::Arc;

/// Trace format errors (line-numbered where possible).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TraceError(pub String);

impl std::fmt::Display for TraceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "trace error: {}", self.0)
    }
}

impl std::error::Error for TraceError {}

/// A fully materialized demand trace.
#[derive(Clone, Debug, PartialEq)]
pub struct DemandTrace {
    /// Sampling cadence the trace was recorded at.
    pub tick: SimDuration,
    /// Client-region count of the recording world.
    pub regions: usize,
    /// Per-service request-shape class (len = service count).
    pub classes: Vec<ServiceClass>,
    /// Per-service measured memory per in-flight request, MB (len =
    /// service count). `None` = not measured: replays fall back to the
    /// class constant. Imported Alibaba traces fill this from
    /// `mem_util_percent` (see `docs/TRACES.md`); recorded synthetic
    /// traces carry all `None`.
    pub mem_mb_per_inflight: Vec<Option<f64>>,
    /// `flows[tick_idx][service]` — the recorded flows of that tick.
    pub flows: Vec<Vec<Vec<FlowSample>>>,
}

impl DemandTrace {
    /// Records `horizon` of demand from any source at cadence `tick`.
    pub fn record<S: DemandSource>(source: &S, horizon: SimDuration, tick: SimDuration) -> Self {
        assert!(tick > SimDuration::ZERO, "tick must be positive");
        let services = source.service_count();
        let ticks = horizon.ticks(tick);
        let mut flows = Vec::with_capacity(ticks as usize);
        for tick_idx in 0..ticks {
            let now = SimTime::ZERO + tick * tick_idx;
            flows.push((0..services).map(|s| source.sample(s, now)).collect());
        }
        DemandTrace {
            tick,
            regions: source.region_count(),
            classes: (0..services).map(|s| source.service_class(s)).collect(),
            mem_mb_per_inflight: (0..services)
                .map(|s| source.mem_mb_per_inflight(s))
                .collect(),
            flows,
        }
    }

    /// Number of services.
    pub fn service_count(&self) -> usize {
        self.classes.len()
    }

    /// Number of recorded ticks.
    pub fn tick_count(&self) -> usize {
        self.flows.len()
    }

    /// Emits the CSV form (header comments + one row per flow).
    pub fn to_csv(&self) -> String {
        let mut out = String::new();
        out.push_str("# pamdc-trace v1\n");
        let _ = writeln!(out, "# tick_ms = {}", self.tick.as_millis());
        // The explicit count keeps zero-demand ticks (which emit no data
        // rows) through a round-trip — required for bit-exact replay.
        let _ = writeln!(out, "# ticks = {}", self.flows.len());
        let _ = writeln!(out, "# regions = {}", self.regions);
        let labels: Vec<&str> = self.classes.iter().map(|c| c.label()).collect();
        let _ = writeln!(out, "# classes = {}", labels.join(","));
        // The memory-profile header is written only when some service
        // carries a measurement, so traces recorded before the header
        // existed keep emitting byte-identical CSV.
        if self.mem_mb_per_inflight.iter().any(Option::is_some) {
            let cells: Vec<String> = self
                .mem_mb_per_inflight
                .iter()
                .map(|m| match m {
                    Some(v) => format!("{v}"),
                    None => "-".to_string(),
                })
                .collect();
            let _ = writeln!(out, "# mem_mb_per_inflight = {}", cells.join(","));
        }
        out.push_str("tick,service,region,rps,kb_in_per_req,kb_out_per_req,cpu_ms_per_req\n");
        for (tick_idx, services) in self.flows.iter().enumerate() {
            for (service, flows) in services.iter().enumerate() {
                for f in flows {
                    let _ = writeln!(
                        out,
                        "{},{},{},{},{},{},{}",
                        tick_idx,
                        service,
                        f.region,
                        f.rps,
                        f.kb_in_per_req,
                        f.kb_out_per_req,
                        f.cpu_ms_per_req
                    );
                }
            }
        }
        out
    }

    /// Parses the CSV form back into a trace.
    ///
    /// Strict: the whole file must be well-formed. A final row that
    /// merely lacks its newline still parses (legacy tolerance for
    /// editors that strip the trailing `\n`), but a row torn mid-write
    /// errors with the tick it belongs to — use
    /// [`DemandTrace::parse_csv_tail`] to recover the complete prefix
    /// of a file caught mid-append.
    pub fn parse_csv(text: &str) -> Result<Self, TraceError> {
        let (mut parser, mut flows, partial) = CsvParser::scan(text)?;
        if let Some((lineno, line)) = partial {
            parser.line(lineno, &line, &mut flows).map_err(|e| {
                let tick = partial_tick_guess(&line, flows.len());
                TraceError(format!(
                    "{} — file ends mid-row (truncated append?): tick {tick} is \
                     partially written; parse_csv_tail() recovers the complete prefix",
                    e.0
                ))
            })?;
        }
        Ok(parser.finalize(flows, false, None)?.trace)
    }

    /// Tail-tolerant parse for a file that may still be growing.
    ///
    /// Every `\n`-terminated line must be well-formed, but an
    /// unterminated final line — the signature of catching a live
    /// writer mid-append — is withheld instead of failing: its tick
    /// becomes [`TraceParse::partial_tick`] and the returned trace is
    /// truncated to the fully-written ticks before it. A terminated
    /// `# end` line (or a declared `# ticks` count, for recorded files)
    /// marks the feed finished.
    pub fn parse_csv_tail(text: &str) -> Result<TraceParse, TraceError> {
        let (parser, flows, partial) = CsvParser::scan(text)?;
        let partial_tick = partial
            .map(|(_, line)| partial_tick_guess(&line, flows.len()) as u64)
            .filter(|_| {
                // A torn row before any data means nothing to withhold.
                parser.saw_header_row || !flows.is_empty()
            });
        parser.finalize(flows, true, partial_tick)
    }
}

/// Outcome of a tail-tolerant parse ([`DemandTrace::parse_csv_tail`]):
/// the complete-tick prefix of a file that may still be growing.
#[derive(Clone, Debug, PartialEq)]
pub struct TraceParse {
    /// The parsed trace, holding only fully-written ticks.
    pub trace: DemandTrace,
    /// The tick the torn (unterminated) final row belongs to, when the
    /// file was caught mid-append. That tick's rows are withheld from
    /// `trace`; a later re-read picks them up once the writer flushes.
    pub partial_tick: Option<u64>,
    /// Whether the feed is finished: it declared `# ticks` (recorded
    /// files always do) or carries a terminated `# end` marker, and no
    /// torn row follows.
    pub is_complete: bool,
}

impl TraceParse {
    /// Ticks safe to consume now: every tick of a finished feed, or —
    /// while the feed is live — every tick the writer has provably
    /// moved past. Without an explicit end the last tick seen may
    /// still be receiving rows, so it only counts once a later tick
    /// (or a torn row for one) appears.
    pub fn complete_ticks(&self) -> usize {
        if self.is_complete || self.partial_tick.is_some() {
            self.trace.flows.len()
        } else {
            self.trace.flows.len().saturating_sub(1)
        }
    }
}

/// Which tick an unterminated final row belongs to. The tick field is
/// only trusted when a `,` follows it (otherwise the number itself may
/// be half-written: `12` could be a truncated `120`); without one the
/// conservative answer is the highest tick seen so far, whose rows the
/// writer may still be flushing.
fn partial_tick_guess(line: &str, ticks_seen: usize) -> usize {
    line.split_once(',')
        .and_then(|(first, _)| first.trim().parse::<usize>().ok())
        .unwrap_or_else(|| ticks_seen.saturating_sub(1))
}

/// The `flows[tick_idx][service]` store a [`CsvParser`] fills. Kept
/// outside the parser so the incremental tail reader ([`TraceTail`])
/// can park it inside the [`DemandTrace`] it hands out by reference
/// while the parser keeps cracking appended lines into it.
type Flows = Vec<Vec<Vec<FlowSample>>>;

/// Line-by-line trace-CSV parser, shared by the strict and
/// tail-tolerant entry points. Lines stream through the same
/// [`for_each_line`] layer as the dataset importers, which reports
/// whether the final line was `\n`-terminated — the signal the
/// tail-tolerant path keys off.
#[derive(Clone, Debug, Default)]
struct CsvParser {
    tick_ms: Option<u64>,
    ticks: Option<usize>,
    regions: Option<usize>,
    classes: Vec<ServiceClass>,
    mem_mb_per_inflight: Vec<Option<f64>>,
    saw_header_row: bool,
    ended: bool,
}

/// A withheld unterminated final line: 1-based line number + content.
type TornLine = (usize, String);

impl CsvParser {
    /// Runs every *terminated* line of `text` through the parser and
    /// returns it, the flows it filled, and the withheld unterminated
    /// final line (1-based line number and content), if any. The
    /// one-line lookahead is what lets both entry points decide how to
    /// treat a torn final row.
    fn scan(text: &str) -> Result<(CsvParser, Flows, Option<TornLine>), TraceError> {
        let mut parser = CsvParser::default();
        let mut flows = Flows::new();
        let mut pending: Option<usize> = None;
        let mut pending_buf = String::new();
        let scan = for_each_line(text.as_bytes(), |lineno, line| {
            if let Some(n) = pending.take() {
                parser
                    .line(n, &pending_buf, &mut flows)
                    .map_err(|e| ImportError(e.0))?;
            }
            pending_buf.clear();
            pending_buf.push_str(line);
            pending = Some(lineno);
            Ok(())
        })
        .map_err(|e| TraceError(e.0))?;
        let mut partial = None;
        if let Some(n) = pending {
            if scan.last_line_terminated || pending_buf.trim().is_empty() {
                parser.line(n, &pending_buf, &mut flows)?;
            } else {
                partial = Some((n, pending_buf));
            }
        }
        Ok((parser, flows, partial))
    }

    fn line(&mut self, lineno: usize, raw: &str, flows: &mut Flows) -> Result<(), TraceError> {
        let line = raw.trim();
        if line.is_empty() {
            return Ok(());
        }
        let err = |msg: String| TraceError(format!("line {lineno}: {msg}"));
        if let Some(meta) = line.strip_prefix('#') {
            let meta = meta.trim();
            if meta == "end" {
                self.ended = true;
            } else if let Some((key, value)) = meta.split_once('=') {
                let (key, value) = (key.trim(), value.trim());
                match key {
                    "tick_ms" => {
                        self.tick_ms = Some(
                            value
                                .parse()
                                .map_err(|_| err(format!("bad tick_ms {value:?}")))?,
                        )
                    }
                    "ticks" => {
                        self.ticks = Some(
                            value
                                .parse()
                                .map_err(|_| err(format!("bad ticks {value:?}")))?,
                        )
                    }
                    "regions" => {
                        self.regions = Some(
                            value
                                .parse()
                                .map_err(|_| err(format!("bad regions {value:?}")))?,
                        )
                    }
                    "classes" => {
                        self.classes = value
                            .split(',')
                            .map(|label| {
                                ServiceClass::from_label(label.trim())
                                    .ok_or_else(|| err(format!("unknown service class {label:?}")))
                            })
                            .collect::<Result<_, _>>()?;
                    }
                    "mem_mb_per_inflight" => {
                        self.mem_mb_per_inflight = value
                            .split(',')
                            .map(|cell| {
                                let cell = cell.trim();
                                if cell == "-" {
                                    return Ok(None);
                                }
                                cell.parse::<f64>().map(Some).map_err(|_| {
                                    err(format!("bad mem_mb_per_inflight cell {cell:?}"))
                                })
                            })
                            .collect::<Result<_, _>>()?;
                    }
                    _ => {} // forward-compatible: ignore unknown metadata
                }
            }
            return Ok(());
        }
        if line.starts_with("tick,") {
            self.saw_header_row = true;
            return Ok(());
        }
        let cols: Vec<&str> = line.split(',').collect();
        let [c_tick, c_service, c_region, c_rps, c_kb_in, c_kb_out, c_cpu] = cols.as_slice() else {
            return Err(err(format!("expected 7 columns, got {}", cols.len())));
        };
        let tick_idx: usize = c_tick
            .parse()
            .map_err(|_| err(format!("bad tick index {c_tick:?}")))?;
        let service: usize = c_service
            .parse()
            .map_err(|_| err(format!("bad service {c_service:?}")))?;
        let region: usize = c_region
            .parse()
            .map_err(|_| err(format!("bad region {c_region:?}")))?;
        let num = |text: &str| -> Result<f64, TraceError> {
            text.parse()
                .map_err(|_| err(format!("bad number {text:?}")))
        };
        if service >= self.classes.len() {
            return Err(err(format!(
                "service {service} out of range (classes header lists {})",
                self.classes.len()
            )));
        }
        // Validate eagerly when the regions header already arrived (it
        // always has on the incremental tail path, which never sees
        // `finalize`'s deferred whole-store sweep).
        if let Some(regions) = self.regions {
            if region >= regions {
                return Err(err(format!(
                    "flow region {region} out of range ({regions} regions)"
                )));
            }
        }
        if flows.len() <= tick_idx {
            let services = self.classes.len();
            flows.resize_with(tick_idx + 1, || vec![Vec::new(); services]);
        }
        // pamdc-lint: allow(no-panic-parser) -- tick_idx/service are resized/range-checked just above
        flows[tick_idx][service].push(FlowSample {
            region,
            rps: num(c_rps)?,
            kb_in_per_req: num(c_kb_in)?,
            kb_out_per_req: num(c_kb_out)?,
            cpu_ms_per_req: num(c_cpu)?,
        });
        Ok(())
    }

    /// Validates headers and assembles the trace. `tail` selects the
    /// growing-file semantics: the partial tick's rows are dropped
    /// (they will be re-read whole later) and a declared `# ticks`
    /// count only pads — to cover trailing zero-demand ticks — when no
    /// torn row contradicts it.
    fn finalize(
        self,
        mut flows: Flows,
        tail: bool,
        partial_tick: Option<u64>,
    ) -> Result<TraceParse, TraceError> {
        if let Some(t) = partial_tick {
            // Ticks before the torn row are fully written — including
            // zero-demand ones the writer skipped rows for.
            let services = self.classes.len();
            flows.resize_with(t as usize, || vec![Vec::new(); services]);
        }
        if !self.saw_header_row {
            return Err(TraceError("missing column header row".into()));
        }
        let tick_ms = self
            .tick_ms
            .ok_or_else(|| TraceError("missing '# tick_ms = ...'".into()))?;
        let regions = self
            .regions
            .ok_or_else(|| TraceError("missing '# regions = ...'".into()))?;
        if self.classes.is_empty() {
            return Err(TraceError("missing '# classes = ...'".into()));
        }
        let mut mem_mb_per_inflight = self.mem_mb_per_inflight;
        if mem_mb_per_inflight.is_empty() {
            mem_mb_per_inflight = vec![None; self.classes.len()];
        } else if mem_mb_per_inflight.len() != self.classes.len() {
            return Err(TraceError(format!(
                "mem_mb_per_inflight header lists {} services but classes lists {}",
                mem_mb_per_inflight.len(),
                self.classes.len()
            )));
        }
        // Honor the declared tick count so zero-demand ticks (no data
        // rows) survive the round-trip; traces written before the
        // header existed fall back to the max tick index seen.
        let mut is_complete = false;
        if let Some(ticks) = self.ticks {
            if flows.len() > ticks {
                return Err(TraceError(format!(
                    "data rows reach tick {} but the header declares ticks = {ticks}",
                    flows.len() - 1
                )));
            }
            if !tail || partial_tick.is_none() {
                let services = self.classes.len();
                flows.resize_with(ticks, || vec![Vec::new(); services]);
                is_complete = true;
            }
        }
        if self.ended && partial_tick.is_none() {
            is_complete = true;
        }
        // Deferred region sweep: rows parsed before the `# regions`
        // header appeared were not range-checked in `line`.
        for services in &flows {
            for service_flows in services {
                for f in service_flows {
                    if f.region >= regions {
                        return Err(TraceError(format!(
                            "flow region {} out of range ({} regions)",
                            f.region, regions
                        )));
                    }
                }
            }
        }
        Ok(TraceParse {
            trace: DemandTrace {
                tick: SimDuration::from_millis(tick_ms),
                regions,
                classes: self.classes,
                mem_mb_per_inflight,
                flows,
            },
            partial_tick,
            is_complete,
        })
    }

    /// The memory-profile header in its post-validation form (empty =
    /// every service unmeasured), or `None` when its length disagrees
    /// with the classes header.
    fn normalized_mem(&self) -> Option<Vec<Option<f64>>> {
        if self.mem_mb_per_inflight.is_empty() {
            Some(vec![None; self.classes.len()])
        } else if self.mem_mb_per_inflight.len() == self.classes.len() {
            Some(self.mem_mb_per_inflight.clone())
        } else {
            None
        }
    }
}

/// Incremental, tail-tolerant trace reader: the engine behind
/// [`TailSource`](crate::tail::TailSource).
///
/// Where [`DemandTrace::parse_csv_tail`] re-parses a whole file on
/// every look, a `TraceTail` is fed only the bytes appended since the
/// last feed. It keeps the parser state (headers, line number, a carry
/// buffer holding the unterminated final line) across feeds and parks
/// the growing flow store inside the [`DemandTrace`] it exposes by
/// reference — so each poll of a multi-gigabyte feed costs only the
/// delta.
///
/// A torn final row never enters the store at all: it waits in the
/// carry buffer as raw bytes until a later feed terminates it. The
/// rows of the tick it names that *are* already stored stay there,
/// hidden behind the `ready` count [`TraceTail::refresh`] computes —
/// the same visible view the whole-file parser produced by truncating
/// and re-reading.
#[derive(Clone, Debug)]
pub(crate) struct TraceTail {
    parser: CsvParser,
    trace: DemandTrace,
    /// Bytes of the last feed's unterminated final line.
    carry: Vec<u8>,
    /// 1-based number of the last terminated line parsed.
    lineno: usize,
    /// Total bytes ever fed — the offset the next feed starts at.
    fed: u64,
    /// Byte offset just past the `tick,...` column-header row: the
    /// prefix the file's shape headers live in under the standard
    /// emission layout (callers pin and re-verify those raw bytes).
    header_end: u64,
}

impl TraceTail {
    /// Parses the feed's current contents and validates that the full
    /// header block has arrived (same requirements as
    /// [`DemandTrace::parse_csv_tail`] + `finalize`); callers retry
    /// while the writer has not flushed it yet.
    pub(crate) fn open(bytes: &[u8]) -> Result<TraceTail, TraceError> {
        let mut parser = CsvParser::default();
        let mut flows = Flows::new();
        let (mut carry, mut lineno, mut fed, mut header_end) = (Vec::new(), 0, 0, 0);
        ingest_lines(
            &mut parser,
            &mut flows,
            &mut carry,
            &mut lineno,
            &mut fed,
            &mut header_end,
            bytes,
        )?;
        if !parser.saw_header_row {
            return Err(TraceError("missing column header row".into()));
        }
        let tick_ms = parser
            .tick_ms
            .ok_or_else(|| TraceError("missing '# tick_ms = ...'".into()))?;
        let regions = parser
            .regions
            .ok_or_else(|| TraceError("missing '# regions = ...'".into()))?;
        if parser.classes.is_empty() {
            return Err(TraceError("missing '# classes = ...'".into()));
        }
        let mem_mb_per_inflight = parser.normalized_mem().ok_or_else(|| {
            TraceError(format!(
                "mem_mb_per_inflight header lists {} services but classes lists {}",
                parser.mem_mb_per_inflight.len(),
                parser.classes.len()
            ))
        })?;
        // Rows fed before the regions header appeared dodged `line`'s
        // eager range check; sweep them once here.
        for services in &flows {
            for service_flows in services {
                for f in service_flows {
                    if f.region >= regions {
                        return Err(TraceError(format!(
                            "flow region {} out of range ({} regions)",
                            f.region, regions
                        )));
                    }
                }
            }
        }
        Ok(TraceTail {
            trace: DemandTrace {
                tick: SimDuration::from_millis(tick_ms),
                regions,
                classes: parser.classes.clone(),
                mem_mb_per_inflight,
                flows,
            },
            parser,
            carry,
            lineno,
            fed,
            header_end,
        })
    }

    /// Parses the bytes appended since the last feed straight into the
    /// store. Call [`TraceTail::refresh`] afterwards to recompute the
    /// visible view.
    pub(crate) fn feed(&mut self, bytes: &[u8]) -> Result<(), TraceError> {
        ingest_lines(
            &mut self.parser,
            &mut self.trace.flows,
            &mut self.carry,
            &mut self.lineno,
            &mut self.fed,
            &mut self.header_end,
            bytes,
        )
    }

    /// Recomputes `(ready_ticks, is_complete)` from the current state:
    /// the exact view [`DemandTrace::parse_csv_tail`] +
    /// [`TraceParse::complete_ticks`] would report for the same bytes.
    /// Errors when a header appended after `open` redeclares the feed's
    /// shape, or data rows overrun a declared `# ticks` count.
    pub(crate) fn refresh(&mut self) -> Result<(usize, bool), TraceError> {
        // Shape headers are frozen at open: a redefinition appended
        // later would silently fork the already-consumed prefix.
        if self.parser.tick_ms != Some(self.trace.tick.as_millis())
            || self.parser.regions != Some(self.trace.regions)
            || self.parser.classes != self.trace.classes
            || self.parser.normalized_mem().as_ref() != Some(&self.trace.mem_mb_per_inflight)
        {
            return Err(TraceError(
                "shape headers (tick_ms/regions/classes/mem_mb_per_inflight) changed mid-stream"
                    .into(),
            ));
        }
        let services = self.trace.classes.len();
        // A non-blank carry is a torn row: the writer provably moved
        // past every tick before the one it names (rowless zero-demand
        // ticks included — pad so the view can index them).
        let torn = carry_str(&self.carry);
        let partial = (!torn.trim().is_empty())
            .then(|| partial_tick_guess(torn.trim(), self.trace.flows.len()));
        if let Some(p) = partial {
            if let Some(ticks) = self.parser.ticks.filter(|&ticks| p > ticks) {
                return Err(TraceError(format!(
                    "data rows reach tick {p} but the header declares ticks = {ticks}"
                )));
            }
            if self.trace.flows.len() < p {
                self.trace
                    .flows
                    .resize_with(p, || vec![Vec::new(); services]);
            }
            return Ok((p, false));
        }
        if let Some(ticks) = self.parser.ticks {
            if self.trace.flows.len() > ticks {
                return Err(TraceError(format!(
                    "data rows reach tick {} but the header declares ticks = {ticks}",
                    self.trace.flows.len() - 1
                )));
            }
            self.trace
                .flows
                .resize_with(ticks, || vec![Vec::new(); services]);
            return Ok((ticks, true));
        }
        if self.parser.ended {
            return Ok((self.trace.flows.len(), true));
        }
        // Without an end marker the newest tick may still be growing.
        Ok((self.trace.flows.len().saturating_sub(1), false))
    }

    /// The materialized store: headers plus every fully-written row fed
    /// so far. Rows of a tick still behind the `ready` horizon are
    /// present but not yet vouched for.
    pub(crate) fn trace(&self) -> &DemandTrace {
        &self.trace
    }

    /// Total bytes fed — the file offset the next poll reads from.
    pub(crate) fn fed_bytes(&self) -> u64 {
        self.fed
    }

    /// Byte offset just past the column-header row (see the field doc).
    pub(crate) fn header_end(&self) -> u64 {
        self.header_end
    }
}

/// The valid-UTF-8 prefix of a carry buffer. A feed boundary can split
/// a multi-byte character; the torn tail cannot affect the tick-field
/// guess, which only reads ASCII digits before the first comma.
fn carry_str(carry: &[u8]) -> &str {
    match std::str::from_utf8(carry) {
        Ok(s) => s,
        Err(e) => {
            let valid = carry.get(..e.valid_up_to()).unwrap_or_default();
            std::str::from_utf8(valid).unwrap_or_default()
        }
    }
}

/// Splits `carry ++ bytes` into `\n`-terminated lines, runs each
/// through the parser, and leaves the unterminated remainder in
/// `carry`. `fed` advances by `bytes.len()` (the carry was counted
/// when first fed); `header_end` is stamped when the column-header row
/// goes past.
fn ingest_lines(
    parser: &mut CsvParser,
    flows: &mut Flows,
    carry: &mut Vec<u8>,
    lineno: &mut usize,
    fed: &mut u64,
    header_end: &mut u64,
    bytes: &[u8],
) -> Result<(), TraceError> {
    *fed += bytes.len() as u64;
    let joined: Vec<u8>;
    let mut rest: &[u8] = if carry.is_empty() {
        bytes
    } else {
        joined = [carry.as_slice(), bytes].concat();
        &joined
    };
    while let Some(pos) = rest.iter().position(|&b| b == b'\n') {
        let mut line_bytes = rest.get(..pos).unwrap_or_default();
        rest = rest.get(pos + 1..).unwrap_or_default();
        if let Some(stripped) = line_bytes.strip_suffix(b"\r") {
            line_bytes = stripped; // CRLF feeds parse like LF ones
        }
        *lineno += 1;
        let line = std::str::from_utf8(line_bytes)
            .map_err(|_| TraceError(format!("line {lineno}: invalid UTF-8")))?;
        let had_header = parser.saw_header_row;
        parser.line(*lineno, line, flows)?;
        if parser.saw_header_row && !had_header {
            *header_end = *fed - rest.len() as u64;
        }
    }
    *carry = rest.to_vec();
    Ok(())
}

/// Replays a [`DemandTrace`], optionally transformed.
#[derive(Clone, Debug)]
pub struct TraceSource {
    trace: Arc<DemandTrace>,
    /// Arrival-rate multiplier (1.0 = verbatim).
    rate_scale: f64,
    /// Playback slowdown: simulated time `t` reads trace time
    /// `t / time_stretch` (2.0 plays a 24 h trace over 48 h).
    time_stretch: f64,
    /// `region_map[recorded_region] = replayed_region`.
    region_map: Option<Vec<usize>>,
}

impl TraceSource {
    /// A verbatim replayer over a trace.
    pub fn new(trace: DemandTrace) -> Self {
        assert!(trace.tick_count() > 0, "cannot replay an empty trace");
        TraceSource {
            trace: Arc::new(trace),
            rate_scale: 1.0,
            time_stretch: 1.0,
            region_map: None,
        }
    }

    /// Multiplies every arrival rate by `k`.
    pub fn with_rate_scale(mut self, k: f64) -> Self {
        assert!(
            k.is_finite() && k >= 0.0,
            "rate scale must be finite and >= 0"
        );
        self.rate_scale = k;
        self
    }

    /// Plays the trace `f`× slower (`f > 1` stretches, `f < 1`
    /// compresses).
    pub fn with_time_stretch(mut self, f: f64) -> Self {
        assert!(
            f.is_finite() && f > 0.0,
            "time stretch must be finite and > 0"
        );
        self.time_stretch = f;
        self
    }

    /// Relabels regions: recorded region `i` replays as `map[i]`.
    pub fn with_region_map(mut self, map: Vec<usize>) -> Self {
        assert_eq!(
            map.len(),
            self.trace.regions,
            "region map must cover every recorded region"
        );
        for &to in &map {
            assert!(
                to < self.trace.regions,
                "region map target {to} out of range"
            );
        }
        self.region_map = Some(map);
        self
    }

    /// The underlying trace.
    pub fn trace(&self) -> &DemandTrace {
        &self.trace
    }

    /// The trace tick index simulated time `t` reads (wraps at the end
    /// of the trace).
    fn tick_index(&self, t: SimTime) -> usize {
        let tick_ms = self.trace.tick.as_millis() as f64;
        let virt_ms = t.as_millis() as f64 / self.time_stretch;
        let idx = (virt_ms / tick_ms).floor() as usize;
        idx % self.trace.tick_count()
    }

    fn mapped_region(&self, region: usize) -> usize {
        match &self.region_map {
            // pamdc-lint: allow(no-panic-parser) -- with_region_map asserts the map covers every recorded region
            Some(map) => map[region],
            None => region,
        }
    }
}

impl DemandSource for TraceSource {
    fn service_count(&self) -> usize {
        self.trace.service_count()
    }

    fn region_count(&self) -> usize {
        self.trace.regions
    }

    fn service_class(&self, service: usize) -> ServiceClass {
        self.trace
            .classes
            .get(service)
            .copied()
            .unwrap_or(ServiceClass::Blog)
    }

    fn mem_mb_per_inflight(&self, service: usize) -> Option<f64> {
        self.trace
            .mem_mb_per_inflight
            .get(service)
            .copied()
            .flatten()
    }

    fn sample(&self, service: usize, t: SimTime) -> Vec<FlowSample> {
        let idx = self.tick_index(t);
        // pamdc-lint: allow(no-panic-parser) -- tick_index wraps modulo tick_count; service bounded by the DemandSource contract
        self.trace.flows[idx][service]
            .iter()
            .map(|f| FlowSample {
                region: self.mapped_region(f.region),
                rps: f.rps * self.rate_scale,
                ..*f
            })
            .collect()
    }

    fn expected_rps(&self, service: usize, region: usize, t: SimTime) -> f64 {
        // A trace is its own expectation: the recorded (already noisy)
        // rate is the best estimate available at replay time.
        let idx = self.tick_index(t);
        // pamdc-lint: allow(no-panic-parser) -- tick_index wraps modulo tick_count; service bounded by the DemandSource contract
        self.trace.flows[idx][service]
            .iter()
            .filter(|f| self.mapped_region(f.region) == region)
            .map(|f| f.rps * self.rate_scale)
            .sum()
    }

    fn horizon(&self) -> Option<SimTime> {
        // The end of the recorded data under the playback transform;
        // sampling past it wraps back to the start.
        let ms =
            self.trace.tick.as_millis() as f64 * self.trace.tick_count() as f64 * self.time_stretch;
        Some(SimTime::ZERO + SimDuration::from_millis(ms.round() as u64))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::libcn;
    use crate::source::Demand;

    fn short_trace(seed: u64) -> DemandTrace {
        let w = libcn::multi_dc(3, 120.0, seed);
        DemandTrace::record(&w, SimDuration::from_hours(2), SimDuration::from_mins(1))
    }

    #[test]
    fn record_has_expected_shape() {
        let t = short_trace(5);
        assert_eq!(t.tick_count(), 120);
        assert_eq!(t.service_count(), 3);
        assert_eq!(t.regions, 4);
    }

    #[test]
    fn csv_round_trips_bit_identically() {
        let t = short_trace(11);
        let parsed = DemandTrace::parse_csv(&t.to_csv()).expect("parse");
        assert_eq!(t, parsed);
        // And emit is a fixed point.
        assert_eq!(t.to_csv(), parsed.to_csv());
    }

    #[test]
    fn verbatim_replay_matches_source() {
        let w = libcn::multi_dc(2, 100.0, 3);
        let trace = DemandTrace::record(&w, SimDuration::from_hours(1), SimDuration::from_mins(1));
        let replay = TraceSource::new(trace);
        for m in 0..60 {
            let t = SimTime::from_mins(m);
            for s in 0..2 {
                assert_eq!(
                    DemandSource::sample(&replay, s, t),
                    w.sample(s, t),
                    "minute {m}"
                );
            }
        }
    }

    #[test]
    fn replay_wraps_past_the_end() {
        let replay = TraceSource::new(short_trace(5));
        let a = DemandSource::sample(&replay, 0, SimTime::from_mins(10));
        let b = DemandSource::sample(&replay, 0, SimTime::from_mins(130)); // 120-tick trace
        assert_eq!(a, b);
    }

    #[test]
    fn rate_scale_scales_rates_only() {
        let replay = TraceSource::new(short_trace(5));
        let scaled = replay.clone().with_rate_scale(2.5);
        let t = SimTime::from_mins(33);
        let base = DemandSource::sample(&replay, 1, t);
        let boosted = DemandSource::sample(&scaled, 1, t);
        assert_eq!(base.len(), boosted.len());
        for (a, b) in base.iter().zip(&boosted) {
            assert_eq!(b.rps, a.rps * 2.5);
            assert_eq!(a.kb_out_per_req, b.kb_out_per_req);
            assert_eq!(a.region, b.region);
        }
    }

    #[test]
    fn time_stretch_slows_playback() {
        let replay = TraceSource::new(short_trace(5));
        let slow = replay.clone().with_time_stretch(2.0);
        // Minute 40 of the stretched replay reads minute 20 of the trace.
        assert_eq!(
            DemandSource::sample(&slow, 0, SimTime::from_mins(40)),
            DemandSource::sample(&replay, 0, SimTime::from_mins(20)),
        );
    }

    #[test]
    fn region_map_relabels() {
        let replay = TraceSource::new(short_trace(5)).with_region_map(vec![3, 2, 1, 0]);
        let t = SimTime::from_mins(7);
        for f in DemandSource::sample(&replay, 0, t) {
            assert!(f.region < 4);
        }
        // Expected rate moved with the relabelling.
        let orig = TraceSource::new(short_trace(5));
        assert_eq!(
            DemandSource::expected_rps(&replay, 0, 3, t),
            DemandSource::expected_rps(&orig, 0, 0, t),
        );
    }

    #[test]
    fn demand_enum_replays_traces() {
        let d = Demand::from(TraceSource::new(short_trace(9)));
        assert_eq!(d.service_count(), 3);
        assert!(d.trace().is_some());
        assert!(!d.sample(0, SimTime::from_mins(50)).is_empty());
    }

    #[test]
    fn zero_demand_ticks_survive_the_round_trip() {
        // A trace whose ticks carry no flows (e.g. load scaled to zero)
        // must keep its length through CSV — and replay, not panic.
        let empty = DemandTrace {
            tick: SimDuration::from_mins(1),
            regions: 4,
            classes: vec![ServiceClass::Blog],
            mem_mb_per_inflight: vec![None],
            flows: vec![vec![Vec::new()]; 60],
        };
        let parsed = DemandTrace::parse_csv(&empty.to_csv()).expect("parse");
        assert_eq!(parsed, empty);
        assert_eq!(parsed.tick_count(), 60);
        let replay = TraceSource::new(parsed);
        assert!(DemandSource::sample(&replay, 0, SimTime::from_mins(30)).is_empty());
        // And a partially-quiet tail keeps its wrap-around period.
        let mut tail_quiet = short_trace(5);
        let n = tail_quiet.tick_count();
        for services in tail_quiet.flows.iter_mut().skip(n - 10) {
            services.iter_mut().for_each(Vec::clear);
        }
        let reparsed = DemandTrace::parse_csv(&tail_quiet.to_csv()).expect("parse");
        assert_eq!(reparsed.tick_count(), n, "quiet tail ticks preserved");
        assert_eq!(reparsed, tail_quiet);
    }

    #[test]
    fn mem_profile_header_round_trips_and_validates() {
        let mut t = short_trace(7);
        t.mem_mb_per_inflight = vec![Some(12.5), None, Some(3.0)];
        let csv = t.to_csv();
        assert!(csv.contains("# mem_mb_per_inflight = 12.5,-,3\n"), "{csv}");
        let parsed = DemandTrace::parse_csv(&csv).expect("parse");
        assert_eq!(parsed, t);
        assert_eq!(csv, parsed.to_csv(), "emission is a fixed point");
        // Traces without the header (everything recorded pre-PR) parse
        // to all-None — and emit no header, byte-identical to before.
        let plain = short_trace(7);
        assert_eq!(plain.mem_mb_per_inflight, vec![None; 3]);
        assert!(!plain.to_csv().contains("mem_mb_per_inflight"));
        // A header whose length disagrees with classes is an error.
        let bad = csv.replace("12.5,-,3", "12.5,-");
        assert!(DemandTrace::parse_csv(&bad).is_err());
        let garbage = csv.replace("12.5,-,3", "12.5,lots,3");
        assert!(DemandTrace::parse_csv(&garbage).is_err());
    }

    #[test]
    fn crlf_trace_files_parse_identically() {
        let t = short_trace(13);
        let lf = t.to_csv();
        let crlf = lf.replace('\n', "\r\n");
        assert_eq!(DemandTrace::parse_csv(&crlf).expect("crlf"), t);
    }

    #[test]
    fn declared_ticks_bound_data_rows() {
        let csv = "# tick_ms = 60000\n# ticks = 1\n# regions = 4\n# classes = blog\n\
                   tick,service,region,rps,kb_in_per_req,kb_out_per_req,cpu_ms_per_req\n\
                   5,0,1,1.0,1.0,1.0,1.0\n";
        assert!(DemandTrace::parse_csv(csv).is_err());
    }

    /// A hand-built three-tick trace CSV, torn mid-row in tick 2 — the
    /// shape a reader sees when it races a writer flushing an append.
    fn torn_csv() -> String {
        "# pamdc-trace v1\n# tick_ms = 60000\n# regions = 4\n# classes = blog\n\
         tick,service,region,rps,kb_in_per_req,kb_out_per_req,cpu_ms_per_req\n\
         0,0,1,10,1,2,3\n1,0,1,11,1,2,3\n2,0,1,12"
            .to_string()
    }

    #[test]
    fn torn_final_row_errors_name_the_partial_tick() {
        // Strict parsing of a file caught mid-append must say *which*
        // tick is partial and point at the recovery path — not surface
        // a bare column-count error.
        let err = DemandTrace::parse_csv(&torn_csv()).expect_err("torn row");
        assert!(err.0.contains("tick 2"), "names the partial tick: {err}");
        assert!(err.0.contains("mid-row"), "names the cause: {err}");
    }

    #[test]
    fn tail_parse_withholds_the_partial_tick() {
        let parsed = DemandTrace::parse_csv_tail(&torn_csv()).expect("tail parse");
        assert_eq!(parsed.partial_tick, Some(2), "tick 2 caught mid-write");
        assert!(!parsed.is_complete);
        assert_eq!(parsed.trace.tick_count(), 2, "ticks 0-1 are whole");
        assert_eq!(parsed.complete_ticks(), 2);
        assert_eq!(parsed.trace.flows[1][0][0].rps, 11.0);
        // Once the writer finishes the row, a re-read yields tick 2.
        let healed = format!("{},1,2,3\n", torn_csv());
        let parsed = DemandTrace::parse_csv_tail(&healed).expect("healed");
        assert_eq!(parsed.partial_tick, None);
        assert_eq!(parsed.trace.tick_count(), 3);
        // ...but tick 2 may still be growing, so it is not complete yet.
        assert_eq!(parsed.complete_ticks(), 2);
        assert!(!parsed.is_complete);
        // A terminated `# end` marker finishes the feed.
        let ended = format!("{}# end\n", healed);
        let parsed = DemandTrace::parse_csv_tail(&ended).expect("ended");
        assert!(parsed.is_complete);
        assert_eq!(parsed.complete_ticks(), 3);
    }

    #[test]
    fn tail_parse_distrusts_a_commaless_torn_tick_field() {
        // `...\n12` could be tick 12 — or tick 120 half-written. The
        // parser must fall back to "the highest tick seen may still be
        // growing" instead of trusting the bare number.
        let torn = format!("{},1,2,3\n12", torn_csv());
        let parsed = DemandTrace::parse_csv_tail(&torn).expect("tail parse");
        assert_eq!(parsed.partial_tick, Some(2));
        assert_eq!(parsed.trace.tick_count(), 2);
    }

    #[test]
    fn tail_parse_of_a_recorded_file_is_complete() {
        // Recorded traces declare `# ticks`; tailing one sees the whole
        // thing — including trailing zero-demand ticks — as complete.
        let t = short_trace(5);
        let parsed = DemandTrace::parse_csv_tail(&t.to_csv()).expect("tail parse");
        assert!(parsed.is_complete);
        assert_eq!(parsed.partial_tick, None);
        assert_eq!(parsed.complete_ticks(), 120);
        assert_eq!(parsed.trace, t);
    }

    #[test]
    fn tail_parse_skips_rowless_ticks_behind_a_torn_row() {
        // The torn row names tick 5: ticks 3-4 emitted no rows (zero
        // demand) but the writer provably moved past them.
        let torn = format!("{},1,2,3\n5,0", torn_csv());
        let parsed = DemandTrace::parse_csv_tail(&torn).expect("tail parse");
        assert_eq!(parsed.partial_tick, Some(5));
        assert_eq!(parsed.trace.tick_count(), 5);
        assert!(parsed.trace.flows[3][0].is_empty());
        assert_eq!(parsed.complete_ticks(), 5);
    }

    #[test]
    fn parse_rejects_malformed_input() {
        assert!(DemandTrace::parse_csv("").is_err());
        assert!(DemandTrace::parse_csv("# tick_ms = 60000\n# regions = 4\n").is_err());
        let bad_cols = "# tick_ms = 60000\n# regions = 4\n# classes = blog\n\
                        tick,service,region,rps,kb_in_per_req,kb_out_per_req,cpu_ms_per_req\n0,0,1\n";
        assert!(DemandTrace::parse_csv(bad_cols).is_err());
        let bad_region = "# tick_ms = 60000\n# regions = 2\n# classes = blog\n\
                          tick,service,region,rps,kb_in_per_req,kb_out_per_req,cpu_ms_per_req\n\
                          0,0,5,1.0,1.0,1.0,1.0\n";
        assert!(DemandTrace::parse_csv(bad_region).is_err());
    }
}
