//! On-site wind production traces.
//!
//! Wind speed follows a seeded Ornstein–Uhlenbeck walk on an hourly
//! lattice (mean-reverting, temporally correlated — calm and windy spells
//! last hours, not minutes), converted to electrical power through the
//! standard cut-in / rated / cut-out turbine curve. Unlike solar, wind
//! has no diurnal phase, which is why a "follow the wind" policy chases a
//! different signal than "follow the sun" — and why both reduce to the
//! same mechanism here: a time-varying green-watts term in the site's
//! energy cost.

use pamdc_simcore::rng::RngStream;
use pamdc_simcore::time::SimTime;

/// A wind installation at one site.
#[derive(Clone, Debug, PartialEq)]
pub struct WindFarm {
    /// Nameplate capacity at rated wind speed, watts.
    pub capacity_w: f64,
    /// Cut-in speed, m/s — below this the turbine is parked.
    pub cut_in_ms: f64,
    /// Rated speed, m/s — at and above this (below cut-out) output is
    /// nameplate.
    pub rated_ms: f64,
    /// Cut-out speed, m/s — above this the turbine feathers to zero.
    pub cut_out_ms: f64,
    /// Hourly wind-speed lattice, m/s.
    speed_by_hour: Vec<f64>,
}

impl WindFarm {
    /// A farm with standard turbine constants (cut-in 3 m/s, rated
    /// 12 m/s, cut-out 25 m/s) and `days` of seeded hourly wind around
    /// `mean_speed_ms`.
    pub fn new(capacity_w: f64, mean_speed_ms: f64, days: u64, seed: u64) -> Self {
        assert!(capacity_w >= 0.0 && mean_speed_ms >= 0.0);
        assert!(days >= 1);
        let mut rng = RngStream::root(seed).derive("wind-speed");
        let hours = (days * 24) as usize;
        let mut lattice = Vec::with_capacity(hours);
        let mut v = mean_speed_ms;
        // OU: theta=0.15/h keeps multi-hour correlation; sigma scales with
        // the mean so calm sites stay calm.
        let theta = 0.15;
        let sigma = 0.25 * mean_speed_ms;
        for _ in 0..hours {
            lattice.push(v.max(0.0));
            v += theta * (mean_speed_ms - v) + rng.normal(0.0, sigma);
            v = v.clamp(0.0, 40.0);
        }
        WindFarm {
            capacity_w,
            cut_in_ms: 3.0,
            rated_ms: 12.0,
            cut_out_ms: 25.0,
            speed_by_hour: lattice,
        }
    }

    /// Wind speed at `at`, m/s (hourly lattice, cyclic past the horizon).
    pub fn speed_ms(&self, at: SimTime) -> f64 {
        let hour = at.as_hours() as usize % self.speed_by_hour.len();
        self.speed_by_hour[hour]
    }

    /// The turbine power curve: 0 below cut-in and above cut-out, cubic
    /// ramp between cut-in and rated, flat at nameplate between rated and
    /// cut-out.
    pub fn power_fraction(&self, speed_ms: f64) -> f64 {
        if speed_ms < self.cut_in_ms || speed_ms >= self.cut_out_ms {
            0.0
        } else if speed_ms >= self.rated_ms {
            1.0
        } else {
            let x = (speed_ms - self.cut_in_ms) / (self.rated_ms - self.cut_in_ms);
            x * x * x
        }
    }

    /// Production at `at`, watts.
    pub fn watts(&self, at: SimTime) -> f64 {
        self.capacity_w * self.power_fraction(self.speed_ms(at))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn power_curve_shape() {
        let f = WindFarm::new(1000.0, 8.0, 1, 3);
        assert_eq!(f.power_fraction(0.0), 0.0);
        assert_eq!(f.power_fraction(2.9), 0.0, "below cut-in");
        assert_eq!(f.power_fraction(12.0), 1.0, "rated");
        assert_eq!(f.power_fraction(20.0), 1.0, "between rated and cut-out");
        assert_eq!(f.power_fraction(25.0), 0.0, "cut-out feathers");
        // Cubic ramp is monotone.
        let lo = f.power_fraction(5.0);
        let hi = f.power_fraction(9.0);
        assert!(0.0 < lo && lo < hi && hi < 1.0);
    }

    #[test]
    fn deterministic_and_bounded() {
        let a = WindFarm::new(2000.0, 7.5, 5, 21);
        let b = WindFarm::new(2000.0, 7.5, 5, 21);
        for h in 0..(5 * 24) {
            let t = SimTime::from_hours(h);
            assert_eq!(a.watts(t), b.watts(t));
            assert!(a.watts(t) >= 0.0 && a.watts(t) <= 2000.0);
        }
    }

    #[test]
    fn wind_has_spells_not_noise() {
        // Adjacent hours should correlate: the mean absolute hourly change
        // must be well below the overall spread.
        let f = WindFarm::new(1000.0, 8.0, 14, 5);
        let speeds: Vec<f64> = (0..(14 * 24))
            .map(|h| f.speed_ms(SimTime::from_hours(h)))
            .collect();
        let mean = speeds.iter().sum::<f64>() / speeds.len() as f64;
        let spread =
            (speeds.iter().map(|v| (v - mean).powi(2)).sum::<f64>() / speeds.len() as f64).sqrt();
        let step: f64 =
            speeds.windows(2).map(|w| (w[1] - w[0]).abs()).sum::<f64>() / (speeds.len() - 1) as f64;
        assert!(step < spread * 1.2, "hourly step {step} vs spread {spread}");
        assert!(spread > 0.5, "wind must actually vary: spread {spread}");
    }

    #[test]
    fn calm_site_produces_less() {
        let calm = WindFarm::new(1000.0, 3.0, 7, 9);
        let windy = WindFarm::new(1000.0, 11.0, 7, 9);
        let total =
            |f: &WindFarm| -> f64 { (0..(7 * 24)).map(|h| f.watts(SimTime::from_hours(h))).sum() };
        assert!(total(&windy) > total(&calm) * 2.0);
    }
}
