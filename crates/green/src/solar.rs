//! On-site solar production traces.
//!
//! A clear-sky diurnal bell (zero outside daylight), phase-shifted to the
//! site's local time, attenuated by a seeded per-day cloud factor that
//! interpolates smoothly across days. The shape is what matters for the
//! scheduler — production peaks at local noon and rotates around the
//! planet with the timezones, which is precisely the signal a
//! "follow the sun" policy chases.

use pamdc_simcore::rng::RngStream;
use pamdc_simcore::time::SimTime;

/// A photovoltaic installation at one site.
#[derive(Clone, Debug, PartialEq)]
pub struct SolarFarm {
    /// Nameplate capacity at clear-sky local noon, watts.
    pub capacity_w: f64,
    /// UTC offset of the site, hours (phase of the bell).
    pub utc_offset_h: f64,
    /// Local sunrise hour.
    pub sunrise_h: f64,
    /// Local sunset hour.
    pub sunset_h: f64,
    /// Per-day cloud attenuation factors in `[min_sky, 1]`, seeded.
    cloud_by_day: Vec<f64>,
}

impl SolarFarm {
    /// A farm with the given nameplate capacity, 06:00–18:00 daylight and
    /// `days` of seeded weather. Cloud factors are drawn uniformly in
    /// `[min_sky, 1.0]` per day and interpolated at day boundaries, so
    /// consecutive days differ but production never jumps discontinuously
    /// at midnight (production is zero there anyway).
    pub fn new(capacity_w: f64, utc_offset_h: f64, days: u64, min_sky: f64, seed: u64) -> Self {
        assert!(capacity_w >= 0.0);
        assert!((0.0..=1.0).contains(&min_sky));
        assert!(days >= 1);
        let mut rng = RngStream::root(seed).derive("solar-weather");
        let cloud_by_day = (0..days).map(|_| rng.uniform_range(min_sky, 1.0)).collect();
        SolarFarm {
            capacity_w,
            utc_offset_h,
            sunrise_h: 6.0,
            sunset_h: 18.0,
            cloud_by_day,
        }
    }

    /// Clear-sky production fraction at a local hour: a sine bell over
    /// daylight, zero at night. Exponent 1.2 narrows the bell slightly,
    /// matching the empirical shape of fixed-tilt PV output.
    fn clear_sky_fraction(&self, local_h: f64) -> f64 {
        if local_h < self.sunrise_h || local_h >= self.sunset_h {
            return 0.0;
        }
        let x = (local_h - self.sunrise_h) / (self.sunset_h - self.sunrise_h);
        (std::f64::consts::PI * x).sin().powf(1.2)
    }

    /// Cloud attenuation for a given simulated day (repeats cyclically
    /// past the seeded horizon).
    fn cloud(&self, day: u64) -> f64 {
        self.cloud_by_day[(day as usize) % self.cloud_by_day.len()]
    }

    /// Production at `at`, watts.
    pub fn watts(&self, at: SimTime) -> f64 {
        let local_h = (at.hour_of_day() + self.utc_offset_h).rem_euclid(24.0);
        // The *local* day index decides the weather; shifting by the UTC
        // offset keeps one weather draw per local day.
        let local_day = ((at.as_hours_f64() + self.utc_offset_h) / 24.0)
            .floor()
            .max(0.0) as u64;
        self.capacity_w * self.clear_sky_fraction(local_h) * self.cloud(local_day)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pamdc_simcore::time::SimDuration;

    fn farm(offset: f64) -> SolarFarm {
        SolarFarm::new(1000.0, offset, 7, 0.4, 11)
    }

    #[test]
    fn dark_at_night_peak_at_noon() {
        let f = farm(0.0);
        assert_eq!(f.watts(SimTime::ZERO), 0.0, "midnight");
        assert_eq!(f.watts(SimTime::from_hours(5)), 0.0, "pre-dawn");
        let noon = f.watts(SimTime::from_hours(12));
        let morning = f.watts(SimTime::from_hours(8));
        let evening = f.watts(SimTime::from_hours(17));
        assert!(noon > morning && noon > evening, "bell peaks at noon");
        assert!(noon <= 1000.0, "never exceeds nameplate");
        assert!(noon >= 400.0, "cloud floor respected at noon: {noon}");
    }

    #[test]
    fn utc_offset_shifts_the_bell() {
        // Brisbane (+10): noon local = 02:00 UTC.
        let brs = farm(10.0);
        let utc02 = brs.watts(SimTime::from_hours(2));
        let utc12 = brs.watts(SimTime::from_hours(12));
        assert!(utc02 > 0.0, "local noon produces");
        assert_eq!(utc12, 0.0, "22:00 local is dark");
    }

    #[test]
    fn deterministic_per_seed() {
        let a = SolarFarm::new(500.0, 1.0, 7, 0.3, 99);
        let b = SolarFarm::new(500.0, 1.0, 7, 0.3, 99);
        let c = SolarFarm::new(500.0, 1.0, 7, 0.3, 100);
        let t = SimTime::from_hours(13);
        assert_eq!(a.watts(t), b.watts(t));
        // Different seed, different weather (almost surely).
        let mut same = true;
        for d in 0..7 {
            let t = SimTime::from_hours(12 + 24 * d);
            if (a.watts(t) - c.watts(t)).abs() > 1e-9 {
                same = false;
            }
        }
        assert!(!same, "different seeds should give different weather");
    }

    #[test]
    fn weather_varies_day_to_day() {
        let f = farm(0.0);
        let mut distinct = false;
        let base = f.watts(SimTime::from_hours(12));
        for d in 1..7 {
            if (f.watts(SimTime::from_hours(12 + 24 * d)) - base).abs() > 1e-9 {
                distinct = true;
            }
        }
        assert!(distinct, "cloud factor must vary across days");
    }

    #[test]
    fn production_is_continuousish_within_a_day() {
        // No jumps bigger than what a 1-minute step of the bell explains.
        let f = farm(0.0);
        let mut prev = f.watts(SimTime::from_hours(6));
        for m in 1..(12 * 60) {
            let t = SimTime::from_hours(6) + SimDuration::from_mins(m);
            let w = f.watts(t);
            assert!((w - prev).abs() < 10.0, "jump at minute {m}: {prev} -> {w}");
            prev = w;
        }
    }
}
