//! Electricity tariffs as functions of simulated time.
//!
//! The paper prices energy with one fixed €/kWh per location (Table II)
//! but anticipates that *"as energy costs rise and markets become more
//! heterogeneous and competitive, one should anticipate larger variations
//! of energy prices across the world"* (§V-C). [`Tariff`] models that
//! spectrum: flat, time-of-use bands, step changes at known instants, and
//! a seeded mean-reverting spot market on an hourly lattice.

use pamdc_simcore::rng::RngStream;
use pamdc_simcore::time::SimTime;

/// A €/kWh price as a function of simulated time.
#[derive(Clone, Debug, PartialEq)]
pub enum Tariff {
    /// One fixed price forever — the paper's Table II regime.
    Flat(f64),
    /// Two-band time-of-use schedule in **local** time: `peak_eur` during
    /// `[peak_start_h, peak_end_h)`, `offpeak_eur` otherwise.
    TimeOfUse {
        /// Price inside the peak band, €/kWh.
        peak_eur: f64,
        /// Price outside the peak band, €/kWh.
        offpeak_eur: f64,
        /// Local hour the peak band opens (0–24).
        peak_start_h: f64,
        /// Local hour the peak band closes (0–24, may be < start to wrap).
        peak_end_h: f64,
        /// UTC offset of the site, hours.
        utc_offset_h: f64,
    },
    /// Piecewise-constant price with step changes at the given instants.
    /// `steps` must be sorted by time; the price before the first step is
    /// `initial_eur`. This is the §V-B "prices change while the system
    /// runs" regime.
    Step {
        /// Price before the first step, €/kWh.
        initial_eur: f64,
        /// `(instant, new price)` change points, ascending by instant.
        steps: Vec<(SimTime, f64)>,
    },
    /// Mean-reverting hourly spot market: an Ornstein–Uhlenbeck walk
    /// around `mean_eur`, precomputed on an hourly lattice from a seed
    /// (deterministic, repeats cyclically past the horizon).
    Spot {
        /// Long-run mean price, €/kWh.
        mean_eur: f64,
        /// Hourly lattice of prices, length ≥ 1.
        lattice: Vec<f64>,
    },
}

impl Tariff {
    /// A seeded spot tariff: `days` of hourly prices mean-reverting to
    /// `mean_eur` with per-hour volatility `sigma` (as a fraction of the
    /// mean) and reversion rate `theta` per hour. Prices are floored at
    /// 10% of the mean — spot markets spike but rarely go negative at
    /// the scale a DC contract sees.
    pub fn spot(mean_eur: f64, sigma: f64, theta: f64, days: u64, seed: u64) -> Self {
        assert!(mean_eur > 0.0 && sigma >= 0.0 && (0.0..=1.0).contains(&theta));
        assert!(days >= 1);
        let mut rng = RngStream::root(seed).derive("spot-tariff");
        let hours = (days * 24) as usize;
        let mut lattice = Vec::with_capacity(hours);
        let mut p = mean_eur;
        for _ in 0..hours {
            lattice.push(p);
            let shock = rng.normal(0.0, sigma * mean_eur);
            p += theta * (mean_eur - p) + shock;
            p = p.max(0.1 * mean_eur);
        }
        Tariff::Spot { mean_eur, lattice }
    }

    /// The €/kWh in force at `at`.
    pub fn price_eur_kwh(&self, at: SimTime) -> f64 {
        match self {
            Tariff::Flat(p) => *p,
            Tariff::TimeOfUse {
                peak_eur,
                offpeak_eur,
                peak_start_h,
                peak_end_h,
                utc_offset_h,
            } => {
                let local = (at.hour_of_day() + utc_offset_h).rem_euclid(24.0);
                let in_peak = if peak_start_h <= peak_end_h {
                    (*peak_start_h..*peak_end_h).contains(&local)
                } else {
                    // Band wraps midnight.
                    local >= *peak_start_h || local < *peak_end_h
                };
                if in_peak {
                    *peak_eur
                } else {
                    *offpeak_eur
                }
            }
            Tariff::Step { initial_eur, steps } => {
                debug_assert!(
                    steps.windows(2).all(|w| w[0].0 <= w[1].0),
                    "steps must be sorted"
                );
                steps
                    .iter()
                    .rev()
                    .find(|(t, _)| at >= *t)
                    .map(|(_, p)| *p)
                    .unwrap_or(*initial_eur)
            }
            Tariff::Spot { lattice, .. } => {
                let hour = at.as_hours() as usize % lattice.len();
                lattice[hour]
            }
        }
    }

    /// Time-average price over the lattice/schedule (flat price for
    /// non-varying tariffs) — useful as the "posted price" a price-blind
    /// scheduler would assume.
    pub fn nominal_eur_kwh(&self) -> f64 {
        match self {
            Tariff::Flat(p) => *p,
            Tariff::TimeOfUse {
                peak_eur,
                offpeak_eur,
                peak_start_h,
                peak_end_h,
                ..
            } => {
                let span = if peak_start_h <= peak_end_h {
                    peak_end_h - peak_start_h
                } else {
                    24.0 - peak_start_h + peak_end_h
                };
                (peak_eur * span + offpeak_eur * (24.0 - span)) / 24.0
            }
            Tariff::Step { initial_eur, .. } => *initial_eur,
            Tariff::Spot { mean_eur, .. } => *mean_eur,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pamdc_simcore::time::SimDuration;

    #[test]
    fn flat_is_flat() {
        let t = Tariff::Flat(0.1513);
        assert_eq!(t.price_eur_kwh(SimTime::ZERO), 0.1513);
        assert_eq!(t.price_eur_kwh(SimTime::from_hours(1000)), 0.1513);
        assert_eq!(t.nominal_eur_kwh(), 0.1513);
    }

    #[test]
    fn time_of_use_bands() {
        let t = Tariff::TimeOfUse {
            peak_eur: 0.30,
            offpeak_eur: 0.10,
            peak_start_h: 8.0,
            peak_end_h: 20.0,
            utc_offset_h: 0.0,
        };
        assert_eq!(t.price_eur_kwh(SimTime::from_hours(3)), 0.10);
        assert_eq!(t.price_eur_kwh(SimTime::from_hours(12)), 0.30);
        assert_eq!(
            t.price_eur_kwh(SimTime::from_hours(20)),
            0.10,
            "end is exclusive"
        );
        // Average: 12 h peak, 12 h off-peak.
        assert!((t.nominal_eur_kwh() - 0.20).abs() < 1e-12);
    }

    #[test]
    fn time_of_use_respects_utc_offset() {
        let t = Tariff::TimeOfUse {
            peak_eur: 0.30,
            offpeak_eur: 0.10,
            peak_start_h: 8.0,
            peak_end_h: 20.0,
            utc_offset_h: 10.0, // Brisbane
        };
        // 0:00 UTC = 10:00 local -> peak.
        assert_eq!(t.price_eur_kwh(SimTime::ZERO), 0.30);
        // 12:00 UTC = 22:00 local -> off-peak.
        assert_eq!(t.price_eur_kwh(SimTime::from_hours(12)), 0.10);
    }

    #[test]
    fn time_of_use_wrapping_band() {
        let t = Tariff::TimeOfUse {
            peak_eur: 0.30,
            offpeak_eur: 0.10,
            peak_start_h: 22.0,
            peak_end_h: 6.0,
            utc_offset_h: 0.0,
        };
        assert_eq!(t.price_eur_kwh(SimTime::from_hours(23)), 0.30);
        assert_eq!(t.price_eur_kwh(SimTime::from_hours(2)), 0.30);
        assert_eq!(t.price_eur_kwh(SimTime::from_hours(12)), 0.10);
        let span = 24.0 - 22.0 + 6.0;
        assert!((t.nominal_eur_kwh() - (0.30 * span + 0.10 * (24.0 - span)) / 24.0).abs() < 1e-12);
    }

    #[test]
    fn step_changes_apply_in_order() {
        let t = Tariff::Step {
            initial_eur: 0.112,
            steps: vec![
                (SimTime::from_hours(12), 0.448),
                (SimTime::from_hours(24), 0.112),
            ],
        };
        assert_eq!(t.price_eur_kwh(SimTime::from_hours(11)), 0.112);
        assert_eq!(
            t.price_eur_kwh(SimTime::from_hours(12)),
            0.448,
            "step instant inclusive"
        );
        assert_eq!(t.price_eur_kwh(SimTime::from_hours(18)), 0.448);
        assert_eq!(t.price_eur_kwh(SimTime::from_hours(30)), 0.112);
    }

    #[test]
    fn spot_is_deterministic_and_positive() {
        let a = Tariff::spot(0.13, 0.08, 0.2, 7, 42);
        let b = Tariff::spot(0.13, 0.08, 0.2, 7, 42);
        assert_eq!(a, b, "same seed, same lattice");
        let Tariff::Spot { lattice, .. } = &a else {
            unreachable!()
        };
        assert_eq!(lattice.len(), 7 * 24);
        assert!(
            lattice.iter().all(|&p| p >= 0.013),
            "floored at 10% of mean"
        );
        // Mean reversion keeps the average near the mean.
        let avg: f64 = lattice.iter().sum::<f64>() / lattice.len() as f64;
        assert!((avg - 0.13).abs() < 0.04, "avg {avg}");
    }

    #[test]
    fn spot_varies_and_wraps() {
        let t = Tariff::spot(0.13, 0.08, 0.2, 2, 7);
        let p0 = t.price_eur_kwh(SimTime::ZERO);
        let mut saw_different = false;
        for h in 1..48 {
            if (t.price_eur_kwh(SimTime::from_hours(h)) - p0).abs() > 1e-9 {
                saw_different = true;
            }
        }
        assert!(saw_different, "a spot market must move");
        // Past the horizon the lattice repeats cyclically.
        assert_eq!(
            t.price_eur_kwh(SimTime::from_hours(5)),
            t.price_eur_kwh(SimTime::from_hours(5 + 48)),
        );
        // Sub-hour queries hold the hourly price.
        assert_eq!(
            t.price_eur_kwh(SimTime::from_hours(5)),
            t.price_eur_kwh(SimTime::from_hours(5) + SimDuration::from_mins(59)),
        );
    }
}
