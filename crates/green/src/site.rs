//! One datacenter's complete energy picture.
//!
//! A [`SiteEnergy`] combines the grid tariff with optional on-site solar
//! and wind. Given a demand in watts at an instant it splits the demand
//! into green watts (covered by on-site production, priced at the
//! marginal green cost — "very low cost once the production
//! infrastructure is in place", §V-C) and brown watts (grid tariff,
//! grid carbon intensity). The blended €/kWh it exposes is exactly the
//! `fenergycost` term of the paper's objective — which is how
//! "follow the sun/wind" drops out of the same profit maximization with
//! no new scheduler machinery.

use crate::carbon::{EnergyBreakdown, GREEN_LIFECYCLE_G_PER_KWH};
use crate::solar::SolarFarm;
use crate::tariff::Tariff;
use crate::wind::WindFarm;
use pamdc_simcore::time::{SimDuration, SimTime};

/// A demand split into green and brown watts.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct EnergySplit {
    /// Watts covered by on-site renewables.
    pub green_w: f64,
    /// Watts drawn from the grid.
    pub brown_w: f64,
}

/// The energy environment of one datacenter.
#[derive(Clone, Debug)]
pub struct SiteEnergy {
    /// Grid tariff.
    pub grid: Tariff,
    /// Marginal price of on-site renewable energy, €/kWh.
    pub green_marginal_eur_kwh: f64,
    /// On-site solar, if installed.
    pub solar: Option<SolarFarm>,
    /// On-site wind, if installed.
    pub wind: Option<WindFarm>,
    /// Grid carbon intensity, gCO₂e/kWh.
    pub grid_carbon_g_per_kwh: f64,
}

impl SiteEnergy {
    /// A grid-only site at a flat price — the paper's Table II regime.
    /// Carbon intensity still applies (the ledger reports it even when no
    /// renewables exist to trade against).
    pub fn flat(eur_per_kwh: f64, grid_carbon_g_per_kwh: f64) -> Self {
        SiteEnergy {
            grid: Tariff::Flat(eur_per_kwh),
            green_marginal_eur_kwh: 0.01,
            solar: None,
            wind: None,
            grid_carbon_g_per_kwh,
        }
    }

    /// Installs solar.
    pub fn with_solar(mut self, farm: SolarFarm) -> Self {
        self.solar = Some(farm);
        self
    }

    /// Installs wind.
    pub fn with_wind(mut self, farm: WindFarm) -> Self {
        self.wind = Some(farm);
        self
    }

    /// Replaces the grid tariff.
    pub fn with_tariff(mut self, tariff: Tariff) -> Self {
        self.grid = tariff;
        self
    }

    /// Total on-site renewable production at `at`, watts.
    pub fn green_watts(&self, at: SimTime) -> f64 {
        self.solar.as_ref().map_or(0.0, |s| s.watts(at))
            + self.wind.as_ref().map_or(0.0, |w| w.watts(at))
    }

    /// Splits `demand_w` into green and brown watts at `at`. On-site
    /// production covers demand first; any excess production is curtailed
    /// (no grid export — conservative, and keeps the accounting local).
    pub fn split(&self, at: SimTime, demand_w: f64) -> EnergySplit {
        debug_assert!(demand_w >= 0.0);
        let green = self.green_watts(at).min(demand_w);
        EnergySplit {
            green_w: green,
            brown_w: demand_w - green,
        }
    }

    /// The demand-weighted effective €/kWh at `at` for a site drawing
    /// `demand_w`. With zero demand this is the brown price (the marginal
    /// watt would come from the grid only if production is saturated;
    /// with no demand the first watt is green if any production exists).
    pub fn effective_price_eur_kwh(&self, at: SimTime, demand_w: f64) -> f64 {
        let brown_price = self.grid.price_eur_kwh(at);
        if demand_w <= 0.0 {
            // Price the *next* watt: green if production has headroom.
            return if self.green_watts(at) > 0.0 {
                self.green_marginal_eur_kwh
            } else {
                brown_price
            };
        }
        let split = self.split(at, demand_w);
        (split.green_w * self.green_marginal_eur_kwh + split.brown_w * brown_price) / demand_w
    }

    /// The marginal €/kWh of adding `extra_w` of draw on top of
    /// `base_demand_w` at `at` — what one more host would actually cost.
    /// This is the price a placement decision should see: when on-site
    /// production still has headroom the next host is green-cheap, but
    /// once production is saturated the next host pays the full grid
    /// price even though the *average* price still looks blended.
    pub fn marginal_price_eur_kwh(&self, at: SimTime, base_demand_w: f64, extra_w: f64) -> f64 {
        if extra_w <= 0.0 {
            return self.effective_price_eur_kwh(at, base_demand_w);
        }
        let hour = SimDuration::from_hours(1);
        let with = self.cost_eur(at, base_demand_w + extra_w, hour);
        let without = self.cost_eur(at, base_demand_w, hour);
        (with - without) / (extra_w / 1000.0)
    }

    /// Euros charged for drawing `demand_w` for `dt` starting at `at`.
    pub fn cost_eur(&self, at: SimTime, demand_w: f64, dt: SimDuration) -> f64 {
        let kwh = demand_w * dt.as_hours_f64() / 1000.0;
        kwh * self.effective_price_eur_kwh(at, demand_w)
    }

    /// Books `demand_w` for `dt` at `at` into a run ledger and returns
    /// the euros charged.
    pub fn book(
        &self,
        at: SimTime,
        demand_w: f64,
        dt: SimDuration,
        ledger: &mut EnergyBreakdown,
    ) -> f64 {
        let hours = dt.as_hours_f64();
        let split = self.split(at, demand_w);
        let green_wh = split.green_w * hours;
        let brown_wh = split.brown_w * hours;
        let co2 = green_wh / 1000.0 * GREEN_LIFECYCLE_G_PER_KWH
            + brown_wh / 1000.0 * self.grid_carbon_g_per_kwh;
        ledger.book(green_wh, brown_wh, co2);
        green_wh / 1000.0 * self.green_marginal_eur_kwh
            + brown_wh / 1000.0 * self.grid.price_eur_kwh(at)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn solar_site() -> SiteEnergy {
        SiteEnergy::flat(0.15, 400.0).with_solar(SolarFarm::new(100.0, 0.0, 7, 1.0, 4))
    }

    #[test]
    fn flat_site_is_all_brown() {
        let s = SiteEnergy::flat(0.1120, 390.0);
        let split = s.split(SimTime::from_hours(12), 50.0);
        assert_eq!(split.green_w, 0.0);
        assert_eq!(split.brown_w, 50.0);
        assert!((s.effective_price_eur_kwh(SimTime::from_hours(12), 50.0) - 0.1120).abs() < 1e-12);
    }

    #[test]
    fn solar_covers_demand_at_noon() {
        let s = solar_site();
        let noon = SimTime::from_hours(12);
        let midnight = SimTime::ZERO;
        // min_sky = 1.0: clear-sky noon production = 100 W.
        let split = s.split(noon, 60.0);
        assert_eq!(split.green_w, 60.0, "production covers all demand");
        assert_eq!(split.brown_w, 0.0);
        assert!(
            s.effective_price_eur_kwh(noon, 60.0) < 0.02,
            "green price at noon"
        );
        assert_eq!(
            s.effective_price_eur_kwh(midnight, 60.0),
            0.15,
            "brown at night"
        );
    }

    #[test]
    fn excess_demand_blends_the_price() {
        let s = solar_site();
        let noon = SimTime::from_hours(12);
        let split = s.split(noon, 200.0);
        assert!(split.green_w <= 100.0 && split.green_w > 90.0);
        assert!((split.green_w + split.brown_w - 200.0).abs() < 1e-9);
        let p = s.effective_price_eur_kwh(noon, 200.0);
        assert!(p > 0.01 && p < 0.15, "blended: {p}");
    }

    #[test]
    fn zero_demand_prices_the_next_watt() {
        let s = solar_site();
        assert!(s.effective_price_eur_kwh(SimTime::from_hours(12), 0.0) < 0.02);
        assert_eq!(s.effective_price_eur_kwh(SimTime::ZERO, 0.0), 0.15);
    }

    #[test]
    fn booking_accumulates_green_and_carbon() {
        let s = solar_site();
        let mut ledger = EnergyBreakdown::new();
        let hour = SimDuration::from_hours(1);
        // 60 W for 1 h at noon: fully green.
        let cost_noon = s.book(SimTime::from_hours(12), 60.0, hour, &mut ledger);
        // 60 W for 1 h at midnight: fully brown.
        let cost_night = s.book(SimTime::ZERO, 60.0, hour, &mut ledger);
        assert!(cost_noon < cost_night);
        assert!((ledger.green_wh - 60.0).abs() < 1e-9);
        assert!((ledger.brown_wh - 60.0).abs() < 1e-9);
        // Carbon: 0.06 kWh * 30 + 0.06 kWh * 400.
        assert!((ledger.co2_g - (0.06 * 30.0 + 0.06 * 400.0)).abs() < 1e-9);
        assert!((ledger.green_fraction() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn cost_matches_book() {
        let s = solar_site();
        let mut ledger = EnergyBreakdown::new();
        let t = SimTime::from_hours(9);
        let dt = SimDuration::from_mins(10);
        let via_cost = s.cost_eur(t, 150.0, dt);
        let via_book = s.book(t, 150.0, dt, &mut ledger);
        assert!((via_cost - via_book).abs() < 1e-12);
    }

    #[test]
    fn marginal_price_saturates_to_brown() {
        let s = solar_site(); // 100 W clear-sky noon production.
        let noon = SimTime::from_hours(12);
        // With 0 W base draw, the next 50 W are fully green.
        let fresh = s.marginal_price_eur_kwh(noon, 0.0, 50.0);
        assert!((fresh - s.green_marginal_eur_kwh).abs() < 1e-9, "{fresh}");
        // With 100 W base draw (production saturated), the next 50 W are
        // fully brown.
        let saturated = s.marginal_price_eur_kwh(noon, 100.0, 50.0);
        assert!((saturated - 0.15).abs() < 1e-9, "{saturated}");
        // Straddling the boundary blends.
        let straddle = s.marginal_price_eur_kwh(noon, 80.0, 40.0);
        assert!(straddle > fresh && straddle < saturated, "{straddle}");
        // Zero extra falls back to the average effective price.
        assert_eq!(
            s.marginal_price_eur_kwh(noon, 60.0, 0.0),
            s.effective_price_eur_kwh(noon, 60.0),
        );
    }

    #[test]
    fn wind_adds_to_solar() {
        let s = solar_site().with_wind(WindFarm::new(50.0, 12.0, 7, 8));
        let noon = SimTime::from_hours(12);
        assert!(s.green_watts(noon) >= solar_site().green_watts(noon));
    }
}
