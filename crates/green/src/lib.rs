//! Green-energy substrate: dynamic electricity tariffs, on-site renewable
//! production (solar and wind) and carbon accounting.
//!
//! The paper's future-work list includes *"the green energy into the
//! scheme, not only to reduce energy costs but also environmental impact
//! of computation"*, and its related-work section notes that a
//! *"follow the sun/wind policy could also be introduced easily into the
//! energy cost computation"* (§II). This crate supplies exactly that
//! energy-cost computation:
//!
//! * [`tariff::Tariff`] — €/kWh as a function of simulated time: flat
//!   (the paper's Table II), time-of-use bands, step changes (for the
//!   price-adaptation experiment §V-B alludes to), and a mean-reverting
//!   spot market.
//! * [`solar::SolarFarm`] / [`wind::WindFarm`] — deterministic, seeded
//!   production traces with the right diurnal / stochastic structure.
//! * [`site::SiteEnergy`] — one DC's complete energy picture: grid tariff
//!   plus optional on-site renewables; splits any demand into green and
//!   brown watts and prices / carbon-rates the blend.
//! * [`carbon::EnergyBreakdown`] — the run-level green/brown/CO₂ ledger.
//!
//! Everything is precomputed on hourly lattices from seeded
//! [`pamdc_simcore::rng::RngStream`]s, so traces are deterministic,
//! cheap to sample per-tick, and identical across threads.

#![warn(missing_docs)]

pub mod carbon;
pub mod site;
pub mod solar;
pub mod tariff;
pub mod wind;

/// One-stop imports.
pub mod prelude {
    pub use crate::carbon::{grid_carbon_g_per_kwh, EnergyBreakdown, GREEN_LIFECYCLE_G_PER_KWH};
    pub use crate::site::{EnergySplit, SiteEnergy};
    pub use crate::solar::SolarFarm;
    pub use crate::tariff::Tariff;
    pub use crate::wind::WindFarm;
}
