//! Carbon accounting: grid intensities per location and the run-level
//! green/brown/CO₂ ledger.
//!
//! The paper motivates green energy "not only to reduce energy costs but
//! also environmental impact of computation". Impact here is grams of
//! CO₂-equivalent per kWh: grid (brown) energy carries the local grid's
//! intensity, on-site renewable (green) energy carries a small lifecycle
//! intensity (panel/turbine manufacturing amortized over output).

use pamdc_infra::network::City;

/// Lifecycle carbon intensity of on-site renewables, gCO₂e/kWh
/// (IPCC-style median across PV and wind).
pub const GREEN_LIFECYCLE_G_PER_KWH: f64 = 30.0;

/// Approximate 2013-era grid carbon intensity for each paper city,
/// gCO₂e/kWh. Queensland's grid was coal-heavy, India's similarly so,
/// Spain had substantial hydro/wind/nuclear, and New England sat between.
pub fn grid_carbon_g_per_kwh(city: City) -> f64 {
    match city {
        City::Brisbane => 850.0,
        City::Bangalore => 720.0,
        City::Barcelona => 270.0,
        City::Boston => 390.0,
    }
}

/// Run-level energy split and emissions.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct EnergyBreakdown {
    /// Energy served by on-site renewables, watt-hours.
    pub green_wh: f64,
    /// Energy drawn from the grid, watt-hours.
    pub brown_wh: f64,
    /// Total emissions, grams CO₂e.
    pub co2_g: f64,
}

impl EnergyBreakdown {
    /// A zeroed breakdown.
    pub fn new() -> Self {
        Self::default()
    }

    /// Books one parcel of energy.
    pub fn book(&mut self, green_wh: f64, brown_wh: f64, co2_g: f64) {
        debug_assert!(green_wh >= 0.0 && brown_wh >= 0.0 && co2_g >= 0.0);
        self.green_wh += green_wh;
        self.brown_wh += brown_wh;
        self.co2_g += co2_g;
    }

    /// Total energy, watt-hours.
    pub fn total_wh(&self) -> f64 {
        self.green_wh + self.brown_wh
    }

    /// Fraction of energy served green, in `[0, 1]` (zero for an empty
    /// ledger).
    pub fn green_fraction(&self) -> f64 {
        let total = self.total_wh();
        if total <= 0.0 {
            0.0
        } else {
            self.green_wh / total
        }
    }

    /// Emissions intensity of the run, gCO₂e/kWh (zero for an empty
    /// ledger).
    pub fn intensity_g_per_kwh(&self) -> f64 {
        let total_kwh = self.total_wh() / 1000.0;
        if total_kwh <= 0.0 {
            0.0
        } else {
            self.co2_g / total_kwh
        }
    }

    /// Merges another breakdown (parallel sub-runs).
    pub fn merge(&mut self, other: &EnergyBreakdown) {
        self.green_wh += other.green_wh;
        self.brown_wh += other.brown_wh;
        self.co2_g += other.co2_g;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn intensities_are_plausible() {
        // Coal-heavy grids dirtier than renewable-heavy ones.
        assert!(grid_carbon_g_per_kwh(City::Brisbane) > grid_carbon_g_per_kwh(City::Boston));
        assert!(grid_carbon_g_per_kwh(City::Boston) > grid_carbon_g_per_kwh(City::Barcelona));
        for c in City::ALL {
            assert!(grid_carbon_g_per_kwh(c) > GREEN_LIFECYCLE_G_PER_KWH * 5.0);
        }
    }

    #[test]
    fn breakdown_accumulates() {
        let mut b = EnergyBreakdown::new();
        assert_eq!(b.green_fraction(), 0.0);
        assert_eq!(b.intensity_g_per_kwh(), 0.0);
        b.book(300.0, 700.0, 700.0 / 1000.0 * 400.0);
        assert!((b.total_wh() - 1000.0).abs() < 1e-12);
        assert!((b.green_fraction() - 0.3).abs() < 1e-12);
        assert!((b.intensity_g_per_kwh() - 280.0).abs() < 1e-9);
    }

    #[test]
    fn merge_adds() {
        let mut a = EnergyBreakdown::new();
        a.book(100.0, 0.0, 3.0);
        let mut b = EnergyBreakdown::new();
        b.book(0.0, 100.0, 40.0);
        a.merge(&b);
        assert!((a.green_fraction() - 0.5).abs() < 1e-12);
        assert!((a.co2_g - 43.0).abs() < 1e-12);
    }
}
