//! Property tests for the green-energy substrate: prices, production and
//! carbon accounting must stay physical for any parameters.

use pamdc_green::prelude::*;
use pamdc_simcore::time::{SimDuration, SimTime};
use proptest::prelude::*;

proptest! {
    /// Any tariff returns a strictly positive price at any instant.
    #[test]
    fn tariff_prices_positive(
        mean in 0.01_f64..1.0,
        sigma in 0.0_f64..0.5,
        seed in 0_u64..1000,
        hour in 0_u64..2000,
    ) {
        let t = Tariff::spot(mean, sigma, 0.2, 7, seed);
        let p = t.price_eur_kwh(SimTime::from_hours(hour));
        prop_assert!(p > 0.0, "spot price {p}");
        prop_assert!(p >= 0.1 * mean - 1e-12, "floor violated: {p}");
    }

    /// Time-of-use returns exactly one of its two band prices.
    #[test]
    fn tou_returns_band_price(
        peak in 0.1_f64..1.0,
        off in 0.01_f64..0.1,
        start in 0.0_f64..24.0,
        len in 0.1_f64..23.9,
        offset in -12.0_f64..14.0,
        minute in 0_u64..(14 * 24 * 60),
    ) {
        let t = Tariff::TimeOfUse {
            peak_eur: peak,
            offpeak_eur: off,
            peak_start_h: start,
            peak_end_h: (start + len) % 24.0,
            utc_offset_h: offset,
        };
        let p = t.price_eur_kwh(SimTime::from_mins(minute));
        prop_assert!(p == peak || p == off);
        // Nominal average lies between the bands.
        let nominal = t.nominal_eur_kwh();
        prop_assert!(nominal >= off - 1e-12 && nominal <= peak + 1e-12);
    }

    /// Solar production is bounded by nameplate and zero at local
    /// midnight.
    #[test]
    fn solar_bounded(
        cap in 0.0_f64..10_000.0,
        offset in -12.0_f64..14.0,
        min_sky in 0.0_f64..1.0,
        seed in 0_u64..500,
        minute in 0_u64..(7 * 24 * 60),
    ) {
        let farm = SolarFarm::new(cap, offset, 7, min_sky, seed);
        let w = farm.watts(SimTime::from_mins(minute));
        prop_assert!(w >= 0.0 && w <= cap + 1e-9, "watts {w} vs cap {cap}");
    }

    /// Wind production is bounded by nameplate everywhere.
    #[test]
    fn wind_bounded(
        cap in 0.0_f64..10_000.0,
        mean in 0.0_f64..20.0,
        seed in 0_u64..500,
        hour in 0_u64..(14 * 24),
    ) {
        let farm = WindFarm::new(cap, mean, 14, seed);
        let w = farm.watts(SimTime::from_hours(hour));
        prop_assert!(w >= 0.0 && w <= cap + 1e-9);
    }

    /// Splits conserve demand and never go negative; effective price
    /// stays between the green marginal and the brown price.
    #[test]
    fn split_conserves_and_price_blends(
        demand in 0.0_f64..5000.0,
        solar_cap in 0.0_f64..2000.0,
        grid_price in 0.02_f64..1.0,
        hour in 0_u64..(7 * 24),
        seed in 0_u64..200,
    ) {
        let site = SiteEnergy::flat(grid_price, 400.0)
            .with_solar(SolarFarm::new(solar_cap, 0.0, 7, 0.5, seed));
        let at = SimTime::from_hours(hour);
        let split = site.split(at, demand);
        prop_assert!(split.green_w >= 0.0 && split.brown_w >= 0.0);
        prop_assert!((split.green_w + split.brown_w - demand).abs() < 1e-9);
        prop_assert!(split.green_w <= site.green_watts(at) + 1e-9);

        let p = site.effective_price_eur_kwh(at, demand);
        let lo = site.green_marginal_eur_kwh.min(grid_price);
        let hi = site.green_marginal_eur_kwh.max(grid_price);
        prop_assert!(p >= lo - 1e-12 && p <= hi + 1e-12, "price {p} outside [{lo}, {hi}]");
    }

    /// Ledger bookings match the site cost function and keep the green
    /// fraction in [0, 1].
    #[test]
    fn booking_is_consistent(
        demand in 0.0_f64..3000.0,
        minutes in 1_u64..120,
        hour in 0_u64..(7 * 24),
    ) {
        let site = SiteEnergy::flat(0.13, 500.0)
            .with_solar(SolarFarm::new(800.0, 2.0, 7, 0.4, 17))
            .with_wind(WindFarm::new(400.0, 8.0, 7, 18));
        let at = SimTime::from_hours(hour);
        let dt = SimDuration::from_mins(minutes);
        let mut ledger = EnergyBreakdown::new();
        let booked = site.book(at, demand, dt, &mut ledger);
        let direct = site.cost_eur(at, demand, dt);
        prop_assert!((booked - direct).abs() < 1e-9, "book {booked} vs cost {direct}");
        prop_assert!((0.0..=1.0).contains(&ledger.green_fraction()));
        let expect_wh = demand * dt.as_hours_f64();
        prop_assert!((ledger.total_wh() - expect_wh).abs() < 1e-6);
    }
}
