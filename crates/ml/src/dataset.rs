//! Datasets: named feature matrices with targets, splits and scaling.
//!
//! Mirrors the slice of WEKA the paper relies on: tabular numeric data, a
//! shuffled 66/34 train/test split (the paper's Table I protocol), and
//! feature standardization for distance-based learners (k-NN).

use pamdc_simcore::rng::RngStream;
use pamdc_simcore::stats::OnlineStats;

/// A tabular dataset: rows of features plus one numeric target each.
#[derive(Clone, Debug, Default)]
pub struct Dataset {
    feature_names: Vec<String>,
    rows: Vec<Vec<f64>>,
    targets: Vec<f64>,
}

impl Dataset {
    /// An empty dataset over the given feature names.
    pub fn new(feature_names: Vec<String>) -> Self {
        Dataset {
            feature_names,
            rows: Vec::new(),
            targets: Vec::new(),
        }
    }

    /// Convenience constructor from `&str` names.
    pub fn with_features(names: &[&str]) -> Self {
        Self::new(names.iter().map(|s| s.to_string()).collect())
    }

    /// Adds one example. Panics on arity mismatch.
    pub fn push(&mut self, features: Vec<f64>, target: f64) {
        assert_eq!(
            features.len(),
            self.feature_names.len(),
            "feature arity mismatch"
        );
        debug_assert!(
            features.iter().all(|v| v.is_finite()) && target.is_finite(),
            "non-finite training value"
        );
        self.rows.push(features);
        self.targets.push(target);
    }

    /// Number of examples.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True when no examples are present.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Number of features.
    pub fn n_features(&self) -> usize {
        self.feature_names.len()
    }

    /// Feature names.
    pub fn feature_names(&self) -> &[String] {
        &self.feature_names
    }

    /// Feature rows.
    pub fn rows(&self) -> &[Vec<f64>] {
        &self.rows
    }

    /// Targets.
    pub fn targets(&self) -> &[f64] {
        &self.targets
    }

    /// One row.
    pub fn row(&self, i: usize) -> (&[f64], f64) {
        (&self.rows[i], self.targets[i])
    }

    /// `(min, max)` of the target column — the "Data Range" column of the
    /// paper's Table I. Returns `(0, 0)` when empty.
    pub fn target_range(&self) -> (f64, f64) {
        let mut s = OnlineStats::new();
        s.extend(&self.targets);
        if s.is_empty() {
            (0.0, 0.0)
        } else {
            (s.min(), s.max())
        }
    }

    /// Standard deviation of the target column.
    pub fn target_std_dev(&self) -> f64 {
        let mut s = OnlineStats::new();
        s.extend(&self.targets);
        s.std_dev()
    }

    /// Shuffled split into `(train, test)` with `train_frac` of the rows
    /// in the first part. The paper uses 66%/34%.
    pub fn split(&self, train_frac: f64, rng: &mut RngStream) -> (Dataset, Dataset) {
        assert!((0.0..=1.0).contains(&train_frac), "train_frac in [0,1]");
        let mut idx: Vec<usize> = (0..self.len()).collect();
        rng.shuffle(&mut idx);
        let cut = (self.len() as f64 * train_frac).round() as usize;
        let mut train = Dataset::new(self.feature_names.clone());
        let mut test = Dataset::new(self.feature_names.clone());
        for (k, &i) in idx.iter().enumerate() {
            let part = if k < cut { &mut train } else { &mut test };
            part.rows.push(self.rows[i].clone());
            part.targets.push(self.targets[i]);
        }
        (train, test)
    }

    /// Sub-dataset of the given row indices (used by tree induction).
    pub fn subset(&self, indices: &[usize]) -> Dataset {
        let mut d = Dataset::new(self.feature_names.clone());
        for &i in indices {
            d.rows.push(self.rows[i].clone());
            d.targets.push(self.targets[i]);
        }
        d
    }
}

/// Per-feature affine scaler to zero mean / unit variance.
#[derive(Clone, Debug)]
pub struct Standardizer {
    means: Vec<f64>,
    stds: Vec<f64>,
}

impl Standardizer {
    /// Fits on a dataset's features.
    pub fn fit(data: &Dataset) -> Self {
        let nf = data.n_features();
        let mut stats = vec![OnlineStats::new(); nf];
        for row in data.rows() {
            for (j, &v) in row.iter().enumerate() {
                stats[j].push(v);
            }
        }
        Standardizer {
            means: stats.iter().map(|s| s.mean()).collect(),
            stds: stats
                .iter()
                .map(|s| {
                    let sd = s.std_dev();
                    if sd > 1e-12 {
                        sd
                    } else {
                        1.0 // constant feature: leave centred at 0
                    }
                })
                .collect(),
        }
    }

    /// Scales one row into a fresh vector.
    pub fn transform(&self, row: &[f64]) -> Vec<f64> {
        assert_eq!(row.len(), self.means.len(), "feature arity mismatch");
        row.iter()
            .zip(self.means.iter().zip(&self.stds))
            .map(|(&v, (&m, &s))| (v - m) / s)
            .collect()
    }

    /// Scales one row in place into a preallocated buffer (hot path for
    /// k-NN prediction).
    pub fn transform_into(&self, row: &[f64], out: &mut Vec<f64>) {
        out.clear();
        out.extend(
            row.iter()
                .zip(self.means.iter().zip(&self.stds))
                .map(|(&v, (&m, &s))| (v - m) / s),
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toy() -> Dataset {
        let mut d = Dataset::with_features(&["a", "b"]);
        for i in 0..100 {
            let x = i as f64;
            d.push(vec![x, 2.0 * x], 3.0 * x + 1.0);
        }
        d
    }

    #[test]
    fn push_and_access() {
        let d = toy();
        assert_eq!(d.len(), 100);
        assert_eq!(d.n_features(), 2);
        let (row, y) = d.row(10);
        assert_eq!(row, &[10.0, 20.0]);
        assert_eq!(y, 31.0);
        assert_eq!(d.target_range(), (1.0, 298.0));
    }

    #[test]
    #[should_panic(expected = "arity")]
    fn arity_checked() {
        let mut d = Dataset::with_features(&["a"]);
        d.push(vec![1.0, 2.0], 0.0);
    }

    #[test]
    fn split_partitions_rows() {
        let d = toy();
        let mut rng = RngStream::root(1);
        let (train, test) = d.split(0.66, &mut rng);
        assert_eq!(train.len(), 66);
        assert_eq!(test.len(), 34);
        // Together they hold every target exactly once.
        let mut all: Vec<f64> = train
            .targets()
            .iter()
            .chain(test.targets())
            .copied()
            .collect();
        all.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let mut expect: Vec<f64> = d.targets().to_vec();
        expect.sort_by(|a, b| a.partial_cmp(b).unwrap());
        assert_eq!(all, expect);
    }

    #[test]
    fn split_is_seed_deterministic() {
        let d = toy();
        let (t1, _) = d.split(0.5, &mut RngStream::root(42));
        let (t2, _) = d.split(0.5, &mut RngStream::root(42));
        assert_eq!(t1.targets(), t2.targets());
    }

    #[test]
    fn subset_selects_rows() {
        let d = toy();
        let s = d.subset(&[0, 5, 7]);
        assert_eq!(s.len(), 3);
        assert_eq!(s.targets(), &[1.0, 16.0, 22.0]);
    }

    #[test]
    fn standardizer_zero_mean_unit_var() {
        let d = toy();
        let sc = Standardizer::fit(&d);
        let transformed: Vec<Vec<f64>> = d.rows().iter().map(|r| sc.transform(r)).collect();
        let mut s0 = OnlineStats::new();
        for r in &transformed {
            s0.push(r[0]);
        }
        assert!(s0.mean().abs() < 1e-9);
        assert!((s0.std_dev() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn standardizer_handles_constant_feature() {
        let mut d = Dataset::with_features(&["c"]);
        for _ in 0..10 {
            d.push(vec![5.0], 1.0);
        }
        let sc = Standardizer::fit(&d);
        assert_eq!(sc.transform(&[5.0]), vec![0.0]);
    }

    #[test]
    fn transform_into_matches_transform() {
        let d = toy();
        let sc = Standardizer::fit(&d);
        let mut buf = Vec::new();
        sc.transform_into(&[3.0, 6.0], &mut buf);
        assert_eq!(buf, sc.transform(&[3.0, 6.0]));
    }
}
