//! Linear regression — the learner behind the paper's near-perfect
//! "Predict VM MEM" row of Table I (correlation 0.994).
//!
//! Ordinary least squares via the normal equations, with a small ridge
//! term retried automatically when the system is singular (collinear or
//! constant features are common in monitored data).

use crate::dataset::Dataset;
use crate::linalg::ridge_normal_equations;
use crate::Regressor;

/// A fitted linear model `y = w·x + b`.
#[derive(Clone, Debug)]
pub struct LinearRegression {
    weights: Vec<f64>,
    intercept: f64,
}

impl LinearRegression {
    /// Fits on a dataset. Falls back to a progressively stronger ridge
    /// term when the normal equations are singular, and to a constant
    /// (mean) model as the last resort.
    pub fn fit(data: &Dataset) -> Self {
        Self::fit_rows(data.rows(), data.targets(), data.n_features())
    }

    /// Fits directly on rows/targets (used by M5 leaf models).
    pub fn fit_rows(rows: &[Vec<f64>], targets: &[f64], n_features: usize) -> Self {
        for lambda in [0.0, 1e-8, 1e-4, 1e-1] {
            if rows.len() > n_features {
                if let Some((weights, intercept)) = ridge_normal_equations(rows, targets, lambda) {
                    if weights.iter().all(|w| w.is_finite()) && intercept.is_finite() {
                        return LinearRegression { weights, intercept };
                    }
                }
            }
        }
        // Constant model: the target mean.
        let mean = if targets.is_empty() {
            0.0
        } else {
            targets.iter().sum::<f64>() / targets.len() as f64
        };
        LinearRegression {
            weights: vec![0.0; n_features],
            intercept: mean,
        }
    }

    /// A constant model (used as a base case by the tree learner).
    pub fn constant(value: f64, n_features: usize) -> Self {
        LinearRegression {
            weights: vec![0.0; n_features],
            intercept: value,
        }
    }

    /// Fitted weights.
    pub fn weights(&self) -> &[f64] {
        &self.weights
    }

    /// Fitted intercept.
    pub fn intercept(&self) -> f64 {
        self.intercept
    }

    /// Number of effectively non-zero parameters (for M5's complexity
    /// penalty).
    pub fn param_count(&self) -> usize {
        1 + self.weights.iter().filter(|w| w.abs() > 1e-12).count()
    }
}

impl Regressor for LinearRegression {
    fn predict(&self, features: &[f64]) -> f64 {
        debug_assert_eq!(features.len(), self.weights.len(), "feature arity mismatch");
        self.intercept
            + self
                .weights
                .iter()
                .zip(features)
                .map(|(w, x)| w * x)
                .sum::<f64>()
    }

    fn name(&self) -> &'static str {
        "Linear Reg."
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pamdc_simcore::rng::RngStream;

    #[test]
    fn recovers_exact_linear_target() {
        let mut d = Dataset::with_features(&["x1", "x2"]);
        for i in 0..60 {
            let a = i as f64;
            let b = ((i * 13) % 11) as f64;
            d.push(vec![a, b], 5.0 * a - 2.0 * b + 7.0);
        }
        let m = LinearRegression::fit(&d);
        assert!((m.weights()[0] - 5.0).abs() < 1e-6);
        assert!((m.weights()[1] + 2.0).abs() < 1e-6);
        assert!((m.intercept() - 7.0).abs() < 1e-6);
        assert!((m.predict(&[10.0, 3.0]) - (50.0 - 6.0 + 7.0)).abs() < 1e-6);
    }

    #[test]
    fn noisy_fit_is_close() {
        let mut rng = RngStream::root(3);
        let mut d = Dataset::with_features(&["x"]);
        for i in 0..500 {
            let x = i as f64 / 10.0;
            d.push(vec![x], 2.0 * x + 1.0 + rng.normal(0.0, 0.5));
        }
        let m = LinearRegression::fit(&d);
        assert!((m.weights()[0] - 2.0).abs() < 0.05);
        assert!((m.intercept() - 1.0).abs() < 0.2);
    }

    #[test]
    fn degenerate_data_falls_back_to_mean() {
        let mut d = Dataset::with_features(&["x"]);
        d.push(vec![1.0], 4.0);
        // One sample for one feature: cannot fit a line; mean model.
        let m = LinearRegression::fit(&d);
        assert_eq!(m.predict(&[99.0]), 4.0);
    }

    #[test]
    fn constant_model() {
        let m = LinearRegression::constant(3.5, 2);
        assert_eq!(m.predict(&[1.0, 2.0]), 3.5);
        assert_eq!(m.param_count(), 1);
    }

    #[test]
    fn param_count_counts_nonzero() {
        let mut d = Dataset::with_features(&["a", "b"]);
        for i in 0..50 {
            let x = i as f64;
            d.push(vec![x, 0.0], 2.0 * x); // feature b constant -> weight 0
        }
        let m = LinearRegression::fit(&d);
        assert!(
            m.param_count() <= 2,
            "constant feature should not add a param"
        );
    }
}
