//! Online (continuously retrained) models — the paper's future-work
//! item 4: "on-line learning methods, able to retrain continuously on
//! recent data, to make the system react quickly to changes".
//!
//! [`OnlineLearner`] keeps a bounded FIFO buffer of recent examples and
//! refits its underlying batch learner every `refit_every` insertions.
//! This turns any batch [`Regressor`] factory into a drift-tracking model
//! at the cost of periodic refits (cheap at the dataset sizes involved).

use crate::dataset::Dataset;
use crate::Regressor;
use std::collections::VecDeque;

/// Page–Hinkley drift detector over a stream of (absolute) model errors.
///
/// Tracks the cumulative deviation of the error from its running mean;
/// when the minimum-anchored cumulative sum exceeds `lambda`, the error
/// level has shifted upward — the model's world has changed. The `delta`
/// slack absorbs benign noise. This is the standard sequential test used
/// by streaming-ML toolkits for exactly the paper's future-work case:
/// "react quickly to changes in either application behavior, hardware or
/// middleware changes, or workload characteristics".
#[derive(Clone, Debug)]
pub struct PageHinkley {
    /// Tolerated per-sample slack before deviations accumulate.
    pub delta: f64,
    /// Detection threshold on the accumulated deviation.
    pub lambda: f64,
    n: u64,
    mean: f64,
    cumulative: f64,
    min_cumulative: f64,
}

impl PageHinkley {
    /// A detector with the given slack and threshold.
    pub fn new(delta: f64, lambda: f64) -> Self {
        assert!(delta >= 0.0 && lambda > 0.0);
        PageHinkley {
            delta,
            lambda,
            n: 0,
            mean: 0.0,
            cumulative: 0.0,
            min_cumulative: 0.0,
        }
    }

    /// Feeds one error magnitude; returns `true` when drift is detected
    /// (the detector then resets itself for the next regime).
    pub fn observe(&mut self, error: f64) -> bool {
        self.n += 1;
        self.mean += (error - self.mean) / self.n as f64;
        self.cumulative += error - self.mean - self.delta;
        self.min_cumulative = self.min_cumulative.min(self.cumulative);
        if self.cumulative - self.min_cumulative > self.lambda {
            self.reset();
            return true;
        }
        false
    }

    /// Samples seen since the last reset.
    pub fn samples(&self) -> u64 {
        self.n
    }

    /// Clears all state (called automatically on detection).
    pub fn reset(&mut self) {
        self.n = 0;
        self.mean = 0.0;
        self.cumulative = 0.0;
        self.min_cumulative = 0.0;
    }
}

/// A drift-tracking wrapper over a batch learner.
pub struct OnlineLearner<F>
where
    F: Fn(&Dataset) -> Box<dyn Regressor>,
{
    feature_names: Vec<String>,
    buffer: VecDeque<(Vec<f64>, f64)>,
    max_buffer: usize,
    refit_every: usize,
    since_refit: usize,
    min_examples: usize,
    model: Option<Box<dyn Regressor>>,
    fit_fn: F,
    refit_count: u64,
}

impl<F> OnlineLearner<F>
where
    F: Fn(&Dataset) -> Box<dyn Regressor>,
{
    /// A new learner. `max_buffer` bounds memory of the past;
    /// `refit_every` controls refit cadence; `min_examples` delays the
    /// first fit until enough data exists.
    pub fn new(
        feature_names: &[&str],
        max_buffer: usize,
        refit_every: usize,
        min_examples: usize,
        fit_fn: F,
    ) -> Self {
        assert!(max_buffer >= min_examples && min_examples >= 1);
        assert!(refit_every >= 1);
        OnlineLearner {
            feature_names: feature_names.iter().map(|s| s.to_string()).collect(),
            buffer: VecDeque::with_capacity(max_buffer),
            max_buffer,
            refit_every,
            since_refit: 0,
            min_examples,
            model: None,
            fit_fn,
            refit_count: 0,
        }
    }

    /// Feeds one observation; refits when due.
    pub fn observe(&mut self, features: Vec<f64>, target: f64) {
        assert_eq!(
            features.len(),
            self.feature_names.len(),
            "feature arity mismatch"
        );
        if self.buffer.len() == self.max_buffer {
            self.buffer.pop_front();
        }
        self.buffer.push_back((features, target));
        self.since_refit += 1;
        let due = self.buffer.len() >= self.min_examples
            && (self.model.is_none() || self.since_refit >= self.refit_every);
        if due {
            self.refit();
        }
    }

    /// Current prediction, `None` before the first fit.
    pub fn predict(&self, features: &[f64]) -> Option<f64> {
        self.model.as_ref().map(|m| m.predict(features))
    }

    /// Number of refits so far.
    pub fn refit_count(&self) -> u64 {
        self.refit_count
    }

    /// Buffered examples.
    pub fn buffered(&self) -> usize {
        self.buffer.len()
    }

    fn refit(&mut self) {
        let mut d = Dataset::new(self.feature_names.clone());
        for (x, y) in &self.buffer {
            d.push(x.clone(), *y);
        }
        self.model = Some((self.fit_fn)(&d));
        self.since_refit = 0;
        self.refit_count += 1;
    }

    /// Discards the buffered history (but keeps the current model until
    /// enough fresh examples justify a refit). Called by drift-aware
    /// wrappers when the old regime's data has become misleading.
    pub fn flush(&mut self) {
        self.buffer.clear();
        self.since_refit = 0;
    }
}

/// An [`OnlineLearner`] guarded by a [`PageHinkley`] detector: every
/// observation first scores the current model; on detected drift the
/// history buffer is flushed so the next refit trains purely on
/// post-change data. Compared to the plain sliding window this trades a
/// short cold-start for much faster convergence to the new regime (the
/// window never mixes regimes).
pub struct DriftAwareLearner<F>
where
    F: Fn(&Dataset) -> Box<dyn Regressor>,
{
    learner: OnlineLearner<F>,
    detector: PageHinkley,
    drift_count: u64,
}

impl<F> DriftAwareLearner<F>
where
    F: Fn(&Dataset) -> Box<dyn Regressor>,
{
    /// Wraps a learner with a detector.
    pub fn new(learner: OnlineLearner<F>, detector: PageHinkley) -> Self {
        DriftAwareLearner {
            learner,
            detector,
            drift_count: 0,
        }
    }

    /// Feeds one observation; returns `true` when this sample triggered
    /// a drift flush.
    pub fn observe(&mut self, features: Vec<f64>, target: f64) -> bool {
        let mut drifted = false;
        if let Some(pred) = self.learner.predict(&features) {
            if self.detector.observe((pred - target).abs()) {
                self.learner.flush();
                self.drift_count += 1;
                drifted = true;
            }
        }
        self.learner.observe(features, target);
        drifted
    }

    /// Current prediction, `None` before the first fit.
    pub fn predict(&self, features: &[f64]) -> Option<f64> {
        self.learner.predict(features)
    }

    /// Drifts detected so far.
    pub fn drift_count(&self) -> u64 {
        self.drift_count
    }

    /// Refits performed so far.
    pub fn refit_count(&self) -> u64 {
        self.learner.refit_count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::linreg::LinearRegression;

    fn learner(max: usize, every: usize) -> OnlineLearner<impl Fn(&Dataset) -> Box<dyn Regressor>> {
        OnlineLearner::new(&["x"], max, every, 10, |d| {
            Box::new(LinearRegression::fit(d)) as Box<dyn Regressor>
        })
    }

    #[test]
    fn no_prediction_before_min_examples() {
        let mut l = learner(100, 5);
        for i in 0..9 {
            l.observe(vec![i as f64], i as f64);
            assert!(l.predict(&[1.0]).is_none());
        }
        l.observe(vec![9.0], 9.0);
        assert!(l.predict(&[1.0]).is_some());
    }

    #[test]
    fn tracks_concept_drift() {
        let mut l = learner(50, 10);
        // Regime 1: y = x.
        for i in 0..60 {
            let x = (i % 20) as f64;
            l.observe(vec![x], x);
        }
        let before = l.predict(&[10.0]).unwrap();
        assert!((before - 10.0).abs() < 0.5, "{before}");
        // Regime 2: y = -x + 100; buffer fully turns over.
        for i in 0..60 {
            let x = (i % 20) as f64;
            l.observe(vec![x], 100.0 - x);
        }
        let after = l.predict(&[10.0]).unwrap();
        assert!(
            (after - 90.0).abs() < 0.5,
            "model should track drift: {after}"
        );
    }

    #[test]
    fn buffer_is_bounded() {
        let mut l = learner(30, 5);
        for i in 0..1000 {
            l.observe(vec![i as f64], i as f64);
        }
        assert_eq!(l.buffered(), 30);
        assert!(l.refit_count() > 10);
    }

    #[test]
    fn page_hinkley_flags_mean_shift() {
        let mut ph = PageHinkley::new(0.05, 5.0);
        // Stable low-error regime: no detection.
        for i in 0..200 {
            let e = 0.1 + 0.02 * ((i % 7) as f64 / 7.0);
            assert!(!ph.observe(e), "false alarm at {i}");
        }
        // Error level jumps 10x: detection within a reasonable delay.
        let mut fired_at = None;
        for i in 0..200 {
            if ph.observe(1.0 + 0.02 * ((i % 5) as f64)) {
                fired_at = Some(i);
                break;
            }
        }
        let at = fired_at.expect("a 10x error shift must be detected");
        assert!(at < 50, "detection delay {at} too long");
        // Detector reset after firing.
        assert_eq!(ph.samples(), 0);
    }

    #[test]
    fn page_hinkley_quiet_on_stationary_noise() {
        let mut ph = PageHinkley::new(0.1, 20.0);
        // Deterministic pseudo-noise around a constant mean.
        for i in 0..5000_u64 {
            let e = 0.5 + 0.3 * ((i.wrapping_mul(2654435761) % 1000) as f64 / 1000.0 - 0.5);
            assert!(!ph.observe(e), "false alarm at {i}");
        }
    }

    #[test]
    fn drift_aware_recovers_faster_than_sliding_window() {
        let fit = |d: &Dataset| Box::new(LinearRegression::fit(d)) as Box<dyn Regressor>;
        let mut plain = OnlineLearner::new(&["x"], 200, 20, 20, fit);
        let mut aware = DriftAwareLearner::new(
            OnlineLearner::new(&["x"], 200, 20, 20, fit),
            PageHinkley::new(0.1, 8.0),
        );
        // Regime 1: y = 2x. Long enough to fill both buffers.
        for i in 0..200 {
            let x = (i % 25) as f64;
            plain.observe(vec![x], 2.0 * x);
            aware.observe(vec![x], 2.0 * x);
        }
        // Regime 2: y = -2x + 100. Feed a short burst, then compare.
        let mut drifted = false;
        for i in 0..60 {
            let x = (i % 25) as f64;
            plain.observe(vec![x], 100.0 - 2.0 * x);
            drifted |= aware.observe(vec![x], 100.0 - 2.0 * x);
        }
        assert!(drifted, "drift must be detected");
        assert!(aware.drift_count() >= 1);
        let truth = 100.0 - 2.0 * 10.0;
        let e_aware = (aware.predict(&[10.0]).unwrap() - truth).abs();
        let e_plain = (plain.predict(&[10.0]).unwrap() - truth).abs();
        assert!(
            e_aware < e_plain,
            "flushed learner ({e_aware}) must beat mixed-window learner ({e_plain})"
        );
    }

    #[test]
    fn refit_cadence_respected() {
        let mut l = learner(100, 25);
        for i in 0..100 {
            l.observe(vec![i as f64], i as f64);
        }
        // First fit at 10 examples, then every 25: fits at 10, 35, 60, 85.
        assert_eq!(l.refit_count(), 4);
    }
}
