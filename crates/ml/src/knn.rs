//! k-nearest-neighbour regression — the paper's choice for predicting SLA
//! fulfillment directly (Table I row "Predict VM SLA", K = 4).
//!
//! The paper notes SLA is bounded in `[0, 1]`, so comparing "the current
//! situation with those seen before and choosing the most similar one(s)"
//! beats regressing RT and converting. Features are standardized before
//! the Euclidean distance; prediction is the (optionally
//! distance-weighted) mean of the K nearest targets.

use crate::dataset::{Dataset, Standardizer};
use crate::Regressor;

/// A fitted k-NN regressor (stores its training set, as k-NN does).
#[derive(Clone, Debug)]
pub struct KnnRegressor {
    k: usize,
    distance_weighted: bool,
    scaler: Standardizer,
    points: Vec<Vec<f64>>,
    targets: Vec<f64>,
}

impl KnnRegressor {
    /// Fits (memorizes + scales) the training data. `k >= 1`.
    pub fn fit(data: &Dataset, k: usize) -> Self {
        Self::fit_weighted(data, k, false)
    }

    /// Like [`KnnRegressor::fit`], optionally weighting neighbours by
    /// inverse distance.
    pub fn fit_weighted(data: &Dataset, k: usize, distance_weighted: bool) -> Self {
        assert!(k >= 1, "k must be at least 1");
        assert!(!data.is_empty(), "cannot fit on an empty dataset");
        let scaler = Standardizer::fit(data);
        let points: Vec<Vec<f64>> = data.rows().iter().map(|r| scaler.transform(r)).collect();
        KnnRegressor {
            k,
            distance_weighted,
            scaler,
            points,
            targets: data.targets().to_vec(),
        }
    }

    /// The configured K.
    pub fn k(&self) -> usize {
        self.k
    }

    /// Number of memorized examples.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// True when no examples are stored (cannot happen after `fit`).
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }
}

impl Regressor for KnnRegressor {
    fn predict(&self, features: &[f64]) -> f64 {
        let q = self.scaler.transform(features);
        let k = self.k.min(self.points.len());
        // Max-heap of (distance², index) capped at k — O(n log k).
        let mut heap: Vec<(f64, usize)> = Vec::with_capacity(k + 1);
        for (i, p) in self.points.iter().enumerate() {
            let d2: f64 = p.iter().zip(&q).map(|(a, b)| (a - b) * (a - b)).sum();
            if heap.len() < k {
                heap.push((d2, i));
                if heap.len() == k {
                    heap.sort_by(|a, b| b.0.partial_cmp(&a.0).expect("finite distances"));
                }
            } else if d2 < heap[0].0 {
                heap[0] = (d2, i);
                // Re-sink the head (small k: simple sort is fine).
                heap.sort_by(|a, b| b.0.partial_cmp(&a.0).expect("finite distances"));
            }
        }
        if self.distance_weighted {
            let mut wsum = 0.0;
            let mut acc = 0.0;
            for &(d2, i) in &heap {
                let w = 1.0 / (d2.sqrt() + 1e-9);
                wsum += w;
                acc += w * self.targets[i];
            }
            if wsum > 0.0 {
                acc / wsum
            } else {
                0.0
            }
        } else {
            heap.iter().map(|&(_, i)| self.targets[i]).sum::<f64>() / heap.len() as f64
        }
    }

    fn name(&self) -> &'static str {
        "K-NN"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pamdc_simcore::rng::RngStream;

    fn grid_dataset() -> Dataset {
        let mut d = Dataset::with_features(&["x", "y"]);
        for i in 0..20 {
            for j in 0..20 {
                let (x, y) = (i as f64, j as f64);
                d.push(vec![x, y], x + 10.0 * y);
            }
        }
        d
    }

    #[test]
    fn exact_neighbour_recall_with_k1() {
        let d = grid_dataset();
        let m = KnnRegressor::fit(&d, 1);
        assert_eq!(m.predict(&[3.0, 7.0]), 73.0);
        assert_eq!(m.predict(&[0.0, 0.0]), 0.0);
    }

    #[test]
    fn k4_averages_neighbourhood() {
        let d = grid_dataset();
        let m = KnnRegressor::fit(&d, 4);
        // Query exactly between 4 grid points: mean of their targets.
        let p = m.predict(&[3.5, 7.5]);
        let expect = (73.0 + 74.0 + 83.0 + 84.0) / 4.0;
        assert!((p - expect).abs() < 1e-9, "got {p}, want {expect}");
    }

    #[test]
    fn k_larger_than_dataset_uses_all() {
        let mut d = Dataset::with_features(&["x"]);
        d.push(vec![0.0], 1.0);
        d.push(vec![1.0], 3.0);
        let m = KnnRegressor::fit(&d, 10);
        assert!((m.predict(&[0.5]) - 2.0).abs() < 1e-9);
    }

    #[test]
    fn standardization_makes_scales_comparable() {
        // Feature "big" has 1000× the scale of "small"; without scaling
        // it would dominate the distance. The target depends only on
        // "small".
        let mut rng = RngStream::root(1);
        let mut d = Dataset::with_features(&["small", "big"]);
        for _ in 0..600 {
            let s = rng.uniform_range(0.0, 1.0);
            let b = rng.uniform_range(0.0, 1000.0);
            d.push(vec![s, b], if s > 0.5 { 1.0 } else { 0.0 });
        }
        let m = KnnRegressor::fit(&d, 5);
        assert!(m.predict(&[0.9, 500.0]) > 0.7);
        assert!(m.predict(&[0.1, 500.0]) < 0.3);
    }

    #[test]
    fn distance_weighting_prefers_closer() {
        let mut d = Dataset::with_features(&["x"]);
        d.push(vec![0.0], 0.0);
        d.push(vec![1.0], 100.0);
        let plain = KnnRegressor::fit_weighted(&d, 2, false);
        let weighted = KnnRegressor::fit_weighted(&d, 2, true);
        // Query near 0: plain averages to 50, weighted leans to 0.
        assert!((plain.predict(&[0.1]) - 50.0).abs() < 1e-9);
        assert!(weighted.predict(&[0.1]) < 25.0);
    }

    #[test]
    fn bounded_targets_stay_bounded() {
        let mut rng = RngStream::root(2);
        let mut d = Dataset::with_features(&["x"]);
        for _ in 0..200 {
            let x = rng.uniform_range(0.0, 1.0);
            d.push(vec![x], x.clamp(0.0, 1.0));
        }
        let m = KnnRegressor::fit(&d, 4);
        for i in 0..50 {
            let p = m.predict(&[i as f64 * 0.02]);
            assert!(
                (0.0..=1.0).contains(&p),
                "k-NN cannot extrapolate out of range: {p}"
            );
        }
    }
}
