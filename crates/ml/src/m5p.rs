//! M5 model trees — the paper's workhorse learner ("M5P" in WEKA).
//!
//! A regression tree whose leaves hold **linear models** rather than
//! constants (Quinlan, *Learning with Continuous Classes*, 1992; Wang &
//! Witten's M5' is WEKA's M5P). The paper found resource usage and RT to
//! be "modeled reasonably well by piecewise linear functions", which is
//! precisely this hypothesis class. The implementation follows the
//! published algorithm:
//!
//! 1. **Growth** — split greedily on the feature/threshold maximising the
//!    *standard deviation reduction* `SDR = sd(S) − Σ |Sᵢ|/|S| · sd(Sᵢ)`,
//!    stopping when a node is small (the `M` minimum-instances parameter
//!    the paper tunes to 2 or 4) or nearly pure.
//! 2. **Leaf/interior models** — a ridge-backed linear model is fitted in
//!    every node (interior ones participate in smoothing).
//! 3. **Pruning** — bottom-up: a subtree collapses into a leaf when the
//!    leaf's complexity-penalised error `RMSE · (n+v)/(n−v)` is no worse
//!    than the subtree's.
//! 4. **Smoothing** — predictions filter up the root path:
//!    `p ← (n·p + k·p_node)/(n + k)` with the standard `k = 15`,
//!    which irons out discontinuities at split boundaries.

use crate::dataset::Dataset;
use crate::linreg::LinearRegression;
use crate::Regressor;
use pamdc_simcore::stats::OnlineStats;

/// Hyper-parameters of the tree learner.
#[derive(Clone, Debug)]
pub struct M5Params {
    /// Minimum training instances per leaf (WEKA's `-M`; the paper uses
    /// 2 and 4 depending on the target).
    pub min_instances: usize,
    /// Stop splitting when a node's target σ falls below this fraction of
    /// the root σ (M5 default 5%).
    pub sd_fraction: f64,
    /// Maximum tree depth (safety bound).
    pub max_depth: usize,
    /// Smoothing constant `k` (M5 default 15); 0 disables smoothing.
    pub smoothing_k: f64,
    /// Enable bottom-up pruning.
    pub prune: bool,
}

impl Default for M5Params {
    fn default() -> Self {
        M5Params {
            min_instances: 4,
            sd_fraction: 0.05,
            max_depth: 24,
            smoothing_k: 15.0,
            prune: true,
        }
    }
}

impl M5Params {
    /// The paper's `M = 4` configuration (CPU, PM-CPU, RT targets).
    pub fn m4() -> Self {
        M5Params {
            min_instances: 4,
            ..Default::default()
        }
    }

    /// The paper's `M = 2` configuration (network I/O targets).
    pub fn m2() -> Self {
        M5Params {
            min_instances: 2,
            ..Default::default()
        }
    }
}

/// A node: either a split or a leaf; both carry a linear model and their
/// training population (for smoothing and pruning).
#[derive(Clone, Debug)]
enum Node {
    Leaf {
        model: LinearRegression,
        n: usize,
    },
    Split {
        feature: usize,
        threshold: f64,
        model: LinearRegression,
        n: usize,
        left: Box<Node>,
        right: Box<Node>,
    },
}

impl Node {
    fn n(&self) -> usize {
        match self {
            Node::Leaf { n, .. } | Node::Split { n, .. } => *n,
        }
    }

    fn count_leaves(&self) -> usize {
        match self {
            Node::Leaf { .. } => 1,
            Node::Split { left, right, .. } => left.count_leaves() + right.count_leaves(),
        }
    }

    fn depth(&self) -> usize {
        match self {
            Node::Leaf { .. } => 1,
            Node::Split { left, right, .. } => 1 + left.depth().max(right.depth()),
        }
    }
}

/// A fitted M5 model tree.
#[derive(Clone, Debug)]
pub struct M5Tree {
    root: Node,
    params: M5Params,
}

impl M5Tree {
    /// Fits a tree on the dataset.
    pub fn fit(data: &Dataset, params: M5Params) -> Self {
        assert!(!data.is_empty(), "cannot fit on an empty dataset");
        let indices: Vec<usize> = (0..data.len()).collect();
        let root_sd = data.target_std_dev();
        let mut root = build(data, &indices, &params, root_sd, 0);
        if params.prune {
            prune(&mut root, data, &indices);
        }
        M5Tree { root, params }
    }

    /// Number of leaves after pruning.
    pub fn leaf_count(&self) -> usize {
        self.root.count_leaves()
    }

    /// Tree depth (1 = a single leaf).
    pub fn depth(&self) -> usize {
        self.root.depth()
    }
}

impl Regressor for M5Tree {
    fn predict(&self, features: &[f64]) -> f64 {
        // Descend, remembering the path for smoothing.
        let mut path: Vec<&Node> = Vec::with_capacity(self.root.depth());
        let mut node = &self.root;
        loop {
            path.push(node);
            match node {
                Node::Leaf { .. } => break,
                Node::Split {
                    feature,
                    threshold,
                    left,
                    right,
                    ..
                } => {
                    node = if features[*feature] <= *threshold {
                        left
                    } else {
                        right
                    };
                }
            }
        }
        // Leaf prediction, then smooth back up the path.
        let leaf = path.last().expect("path never empty");
        let mut p = match leaf {
            Node::Leaf { model, .. } => model.predict(features),
            Node::Split { .. } => unreachable!("descent ends at a leaf"),
        };
        if self.params.smoothing_k > 0.0 {
            let k = self.params.smoothing_k;
            let mut n_below = leaf.n() as f64;
            for node in path.iter().rev().skip(1) {
                let model = match node {
                    Node::Leaf { model, .. } | Node::Split { model, .. } => model,
                };
                p = (n_below * p + k * model.predict(features)) / (n_below + k);
                n_below = node.n() as f64;
            }
        }
        p
    }

    fn name(&self) -> &'static str {
        "M5P"
    }
}

/// Standard deviation of the targets at `indices`.
fn sd_of(data: &Dataset, indices: &[usize]) -> f64 {
    let mut s = OnlineStats::new();
    for &i in indices {
        s.push(data.targets()[i]);
    }
    s.std_dev()
}

fn fit_node_model(data: &Dataset, indices: &[usize]) -> LinearRegression {
    let rows: Vec<Vec<f64>> = indices.iter().map(|&i| data.rows()[i].clone()).collect();
    let targets: Vec<f64> = indices.iter().map(|&i| data.targets()[i]).collect();
    LinearRegression::fit_rows(&rows, &targets, data.n_features())
}

/// The best `(feature, threshold, sdr)` split, or `None` when no split
/// satisfies the minimum-instances constraint.
fn best_split(
    data: &Dataset,
    indices: &[usize],
    min_instances: usize,
) -> Option<(usize, f64, f64)> {
    let n = indices.len();
    if n < 2 * min_instances {
        return None;
    }
    let parent_sd = sd_of(data, indices);
    if parent_sd <= 1e-12 {
        return None;
    }
    let mut best: Option<(usize, f64, f64)> = None;

    // Reusable sort buffer: (feature value, target).
    let mut pairs: Vec<(f64, f64)> = Vec::with_capacity(n);
    for feature in 0..data.n_features() {
        pairs.clear();
        pairs.extend(
            indices
                .iter()
                .map(|&i| (data.rows()[i][feature], data.targets()[i])),
        );
        pairs.sort_by(|a, b| a.0.partial_cmp(&b.0).expect("finite features"));

        // Running prefix sums make each candidate split O(1).
        let total_n = n as f64;
        let total_sum: f64 = pairs.iter().map(|p| p.1).sum();
        let total_sq: f64 = pairs.iter().map(|p| p.1 * p.1).sum();
        let mut prefix_sum = 0.0;
        let mut prefix_sq = 0.0;
        for k in 1..n {
            let y = pairs[k - 1].1;
            prefix_sum += y;
            prefix_sq += y * y;
            if k < min_instances || n - k < min_instances {
                continue;
            }
            if pairs[k - 1].0 == pairs[k].0 {
                continue; // cannot separate equal feature values
            }
            let left_n = k as f64;
            let right_n = total_n - left_n;
            let l_var = (prefix_sq / left_n - (prefix_sum / left_n).powi(2)).max(0.0);
            let r_sum = total_sum - prefix_sum;
            let r_sq = total_sq - prefix_sq;
            let r_var = (r_sq / right_n - (r_sum / right_n).powi(2)).max(0.0);
            let sdr =
                parent_sd - (left_n / total_n) * l_var.sqrt() - (right_n / total_n) * r_var.sqrt();
            let threshold = {
                let mid = (pairs[k - 1].0 + pairs[k].0) / 2.0;
                // Adjacent floats can round the midpoint up onto the
                // right value, which would send every instance left
                // (comparison is `<=`); split on the left value instead.
                if mid >= pairs[k].0 {
                    pairs[k - 1].0
                } else {
                    mid
                }
            };
            if sdr > 1e-12 && best.as_ref().is_none_or(|&(_, _, b)| sdr > b) {
                best = Some((feature, threshold, sdr));
            }
        }
    }
    best
}

#[cfg(test)]
mod adjacent_float_tests {
    use super::*;
    use crate::dataset::Dataset;

    /// Regression test: a feature whose values include adjacent floats
    /// must not produce a non-separating split (the midpoint of two
    /// adjacent floats rounds onto the right one).
    #[test]
    fn adjacent_float_features_do_not_panic() {
        let a: f64 = 1.0;
        let b = f64::from_bits(a.to_bits() + 1); // next float up
        let mut d = Dataset::new(vec!["x".into()]);
        // Enough rows on each side of the adjacent pair to force the
        // splitter to consider the (a, b) boundary.
        for i in 0..8 {
            d.push(vec![a], i as f64);
            d.push(vec![b], 100.0 + i as f64);
        }
        let tree = M5Tree::fit(
            &d,
            M5Params {
                min_instances: 4,
                ..Default::default()
            },
        );
        // Predictions stay finite; the tree may or may not have split.
        assert!(tree.predict(&[a]).is_finite());
        assert!(tree.predict(&[b]).is_finite());
    }
}

fn build(data: &Dataset, indices: &[usize], params: &M5Params, root_sd: f64, depth: usize) -> Node {
    let n = indices.len();
    let model = fit_node_model(data, indices);
    let node_sd = sd_of(data, indices);
    let stop = n < 2 * params.min_instances
        || depth >= params.max_depth
        || node_sd < params.sd_fraction * root_sd;
    if stop {
        return Node::Leaf { model, n };
    }
    match best_split(data, indices, params.min_instances) {
        None => Node::Leaf { model, n },
        Some((feature, threshold, _)) => {
            let (mut li, mut ri) = (Vec::new(), Vec::new());
            for &i in indices {
                if data.rows()[i][feature] <= threshold {
                    li.push(i);
                } else {
                    ri.push(i);
                }
            }
            if li.is_empty() || ri.is_empty() {
                // Degenerate split (can only happen through float
                // pathologies); treat the node as a leaf rather than
                // recurse forever.
                return Node::Leaf { model, n };
            }
            let left = build(data, &li, params, root_sd, depth + 1);
            let right = build(data, &ri, params, root_sd, depth + 1);
            Node::Split {
                feature,
                threshold,
                model,
                n,
                left: Box::new(left),
                right: Box::new(right),
            }
        }
    }
}

/// M5's complexity-penalised error of a model over `indices`.
fn penalized_error(model: &LinearRegression, data: &Dataset, indices: &[usize]) -> f64 {
    let n = indices.len() as f64;
    let v = model.param_count() as f64;
    let mut sq = 0.0;
    for &i in indices {
        let (row, y) = data.row(i);
        let e = model.predict(row) - y;
        sq += e * e;
    }
    let rmse = (sq / n.max(1.0)).sqrt();
    let penalty = if n > v { (n + v) / (n - v) } else { 4.0 };
    rmse * penalty
}

/// Subtree error: leaf-population-weighted penalised error of its leaves.
fn subtree_error(node: &Node, data: &Dataset, indices: &[usize]) -> f64 {
    match node {
        Node::Leaf { model, .. } => penalized_error(model, data, indices),
        Node::Split {
            feature,
            threshold,
            left,
            right,
            ..
        } => {
            let (mut li, mut ri) = (Vec::new(), Vec::new());
            for &i in indices {
                if data.rows()[i][*feature] <= *threshold {
                    li.push(i);
                } else {
                    ri.push(i);
                }
            }
            let n = indices.len() as f64;
            let le = if li.is_empty() {
                0.0
            } else {
                subtree_error(left, data, &li)
            };
            let re = if ri.is_empty() {
                0.0
            } else {
                subtree_error(right, data, &ri)
            };
            (li.len() as f64 / n) * le + (ri.len() as f64 / n) * re
        }
    }
}

/// Bottom-up pruning: collapse splits whose own (penalised) linear model
/// is at least as good as their subtree.
fn prune(node: &mut Node, data: &Dataset, indices: &[usize]) {
    let replacement = match node {
        Node::Leaf { .. } => None,
        Node::Split {
            feature,
            threshold,
            model,
            n,
            left,
            right,
        } => {
            let (mut li, mut ri) = (Vec::new(), Vec::new());
            for &i in indices {
                if data.rows()[i][*feature] <= *threshold {
                    li.push(i);
                } else {
                    ri.push(i);
                }
            }
            prune(left, data, &li);
            prune(right, data, &ri);
            let leaf_err = penalized_error(model, data, indices);
            let n_tot = indices.len() as f64;
            let le = if li.is_empty() {
                0.0
            } else {
                subtree_error(left, data, &li)
            };
            let re = if ri.is_empty() {
                0.0
            } else {
                subtree_error(right, data, &ri)
            };
            let tree_err = (li.len() as f64 / n_tot) * le + (ri.len() as f64 / n_tot) * re;
            if leaf_err <= tree_err {
                Some(Node::Leaf {
                    model: model.clone(),
                    n: *n,
                })
            } else {
                None
            }
        }
    };
    if let Some(leaf) = replacement {
        *node = leaf;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pamdc_simcore::rng::RngStream;

    /// A piecewise-linear target: the exact hypothesis class of M5.
    fn piecewise_dataset(n: usize, noise: f64, seed: u64) -> Dataset {
        let mut rng = RngStream::root(seed);
        let mut d = Dataset::with_features(&["x", "z"]);
        for _ in 0..n {
            let x = rng.uniform_range(0.0, 10.0);
            let z = rng.uniform_range(0.0, 1.0);
            let y = if x < 5.0 { 2.0 * x + 1.0 } else { 20.0 - x } + noise * rng.normal_std();
            d.push(vec![x, z], y);
        }
        d
    }

    #[test]
    fn learns_piecewise_linear_exactly() {
        let d = piecewise_dataset(800, 0.0, 1);
        let t = M5Tree::fit(&d, M5Params::m4());
        for &(x, want) in &[(1.0, 3.0), (4.0, 9.0), (6.0, 14.0), (9.0, 11.0)] {
            let got = t.predict(&[x, 0.5]);
            assert!((got - want).abs() < 0.35, "f({x}) = {got}, want {want}");
        }
    }

    #[test]
    fn beats_plain_linear_regression_on_piecewise_data() {
        let d = piecewise_dataset(600, 0.2, 2);
        let (train, test) = d.split(0.66, &mut RngStream::root(3));
        let tree = M5Tree::fit(&train, M5Params::m4());
        let lin = LinearRegression::fit(&train);
        let mae = |m: &dyn Regressor| {
            test.rows()
                .iter()
                .zip(test.targets())
                .map(|(r, &y)| (m.predict(r) - y).abs())
                .sum::<f64>()
                / test.len() as f64
        };
        let tree_mae = mae(&tree);
        let lin_mae = mae(&lin);
        assert!(
            tree_mae < 0.5 * lin_mae,
            "tree {tree_mae} should beat linear {lin_mae} on piecewise data"
        );
    }

    #[test]
    fn pure_linear_data_prunes_to_small_tree() {
        let mut d = Dataset::with_features(&["x"]);
        let mut rng = RngStream::root(4);
        for _ in 0..400 {
            let x = rng.uniform_range(0.0, 10.0);
            d.push(vec![x], 3.0 * x - 2.0);
        }
        let t = M5Tree::fit(&d, M5Params::m4());
        assert!(
            t.leaf_count() <= 3,
            "linear data should collapse, got {} leaves",
            t.leaf_count()
        );
        assert!((t.predict(&[5.0]) - 13.0).abs() < 0.1);
    }

    #[test]
    fn min_instances_bounds_leaf_count() {
        let d = piecewise_dataset(200, 0.5, 5);
        let small = M5Tree::fit(
            &d,
            M5Params {
                min_instances: 50,
                prune: false,
                ..M5Params::default()
            },
        );
        let large = M5Tree::fit(
            &d,
            M5Params {
                min_instances: 2,
                prune: false,
                ..M5Params::default()
            },
        );
        assert!(small.leaf_count() <= large.leaf_count());
        assert!(small.leaf_count() <= 200 / 50);
    }

    #[test]
    fn single_example_is_a_leaf() {
        let mut d = Dataset::with_features(&["x"]);
        d.push(vec![1.0], 2.0);
        let t = M5Tree::fit(&d, M5Params::default());
        assert_eq!(t.leaf_count(), 1);
        assert_eq!(t.predict(&[7.0]), 2.0);
    }

    #[test]
    fn constant_target_is_a_leaf() {
        let mut d = Dataset::with_features(&["x"]);
        for i in 0..100 {
            d.push(vec![i as f64], 5.0);
        }
        let t = M5Tree::fit(&d, M5Params::default());
        assert_eq!(t.leaf_count(), 1);
        assert!((t.predict(&[50.0]) - 5.0).abs() < 1e-9);
    }

    #[test]
    fn smoothing_reduces_boundary_jumps() {
        let d = piecewise_dataset(500, 0.3, 6);
        let smooth = M5Tree::fit(
            &d,
            M5Params {
                smoothing_k: 15.0,
                ..M5Params::m4()
            },
        );
        let rough = M5Tree::fit(
            &d,
            M5Params {
                smoothing_k: 0.0,
                ..M5Params::m4()
            },
        );
        // Evaluate max jump across a fine grid near the split at x=5.
        let jump = |t: &M5Tree| {
            let mut m: f64 = 0.0;
            for i in 0..200 {
                let x0 = 4.5 + i as f64 * 0.005;
                let a = t.predict(&[x0, 0.5]);
                let b = t.predict(&[x0 + 0.005, 0.5]);
                m = m.max((a - b).abs());
            }
            m
        };
        assert!(jump(&smooth) <= jump(&rough) + 1e-9);
    }

    #[test]
    fn depth_is_bounded() {
        let d = piecewise_dataset(2000, 1.0, 7);
        let t = M5Tree::fit(
            &d,
            M5Params {
                max_depth: 4,
                min_instances: 2,
                prune: false,
                ..M5Params::default()
            },
        );
        assert!(t.depth() <= 5, "depth {}", t.depth());
    }
}
