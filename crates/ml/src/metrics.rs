//! Model validation — the columns of the paper's Table I.
//!
//! For every predictor the paper reports: the ML method, the
//! real-vs-predicted correlation, the mean absolute error, the error
//! standard deviation, the train/validation sizes and the target range.
//! [`EvalReport`] is exactly that row, computed from a held-out test set.

use crate::dataset::Dataset;
use crate::Regressor;
use pamdc_simcore::stats::{error_std_dev, mean_absolute_error, pearson, root_mean_squared_error};

/// One Table-I row.
#[derive(Clone, Debug)]
pub struct EvalReport {
    /// Learner name ("M5P", "Linear Reg.", "K-NN").
    pub method: String,
    /// Pearson correlation between truth and prediction on the test set.
    pub correlation: f64,
    /// Mean absolute error on the test set.
    pub mae: f64,
    /// Standard deviation of the signed error.
    pub err_std_dev: f64,
    /// Root mean squared error (extra over the paper; useful for
    /// comparisons).
    pub rmse: f64,
    /// Training examples used.
    pub n_train: usize,
    /// Test examples evaluated.
    pub n_test: usize,
    /// `(min, max)` of the target in the full data.
    pub target_range: (f64, f64),
}

impl EvalReport {
    /// Evaluates a fitted model against a test set.
    pub fn compute(
        model: &dyn Regressor,
        train: &Dataset,
        test: &Dataset,
        full_range: (f64, f64),
    ) -> Self {
        let truth: Vec<f64> = test.targets().to_vec();
        let pred: Vec<f64> = test.rows().iter().map(|r| model.predict(r)).collect();
        EvalReport {
            method: model.name().to_string(),
            correlation: pearson(&pred, &truth),
            mae: mean_absolute_error(&pred, &truth),
            err_std_dev: error_std_dev(&pred, &truth),
            rmse: root_mean_squared_error(&pred, &truth),
            n_train: train.len(),
            n_test: test.len(),
            target_range: full_range,
        }
    }

    /// Renders the row like the paper's table:
    /// `M5P  0.854  4.41  4.03  959/648  [0.0, 400.0]`.
    pub fn to_row(&self, target_name: &str) -> String {
        format!(
            "{:<18} {:<12} {:>7.3} {:>12.4} {:>10.4} {:>11} {:>20}",
            target_name,
            self.method,
            self.correlation,
            self.mae,
            self.err_std_dev,
            format!("{}/{}", self.n_train, self.n_test),
            format!("[{:.1}, {:.1}]", self.target_range.0, self.target_range.1),
        )
    }
}

/// Column header matching [`EvalReport::to_row`].
pub fn table_header() -> String {
    format!(
        "{:<18} {:<12} {:>7} {:>12} {:>10} {:>11} {:>20}",
        "Target", "Method", "Correl", "MeanAbsErr", "ErrStDev", "Train/Val", "Range"
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::linreg::LinearRegression;
    use pamdc_simcore::rng::RngStream;

    #[test]
    fn perfect_model_scores_perfectly() {
        let mut d = Dataset::with_features(&["x"]);
        for i in 0..100 {
            d.push(vec![i as f64], 2.0 * i as f64);
        }
        let (train, test) = d.split(0.66, &mut RngStream::root(1));
        let m = LinearRegression::fit(&train);
        let rep = EvalReport::compute(&m, &train, &test, d.target_range());
        assert!((rep.correlation - 1.0).abs() < 1e-9);
        assert!(rep.mae < 1e-9);
        assert!(rep.err_std_dev < 1e-9);
        assert_eq!(rep.n_train + rep.n_test, 100);
        assert_eq!(rep.target_range, (0.0, 198.0));
    }

    #[test]
    fn noisy_model_scores_sensibly() {
        let mut rng = RngStream::root(2);
        let mut d = Dataset::with_features(&["x"]);
        for i in 0..600 {
            let x = i as f64 / 10.0;
            d.push(vec![x], 3.0 * x + rng.normal(0.0, 2.0));
        }
        let (train, test) = d.split(0.66, &mut rng);
        let m = LinearRegression::fit(&train);
        let rep = EvalReport::compute(&m, &train, &test, d.target_range());
        assert!(rep.correlation > 0.99, "corr {}", rep.correlation);
        assert!(rep.mae > 0.5 && rep.mae < 3.0, "mae {}", rep.mae);
        assert!(rep.rmse >= rep.mae);
    }

    #[test]
    fn row_renders() {
        let mut d = Dataset::with_features(&["x"]);
        for i in 0..30 {
            d.push(vec![i as f64], i as f64);
        }
        let m = LinearRegression::fit(&d);
        let rep = EvalReport::compute(&m, &d, &d, d.target_range());
        let row = rep.to_row("Predict VM CPU");
        assert!(row.contains("Predict VM CPU"));
        assert!(row.contains("Linear Reg."));
        assert!(table_header().contains("Correl"));
    }
}
