//! The paper's Table-I predictor suite: seven targets, each with its
//! published feature set and learner choice.
//!
//! | Target          | Learner      | paper correl. |
//! |-----------------|--------------|---------------|
//! | Predict VM CPU  | M5P (M = 4)  | 0.854 |
//! | Predict VM MEM  | Linear Reg.  | 0.994 |
//! | Predict VM IN   | M5P (M = 2)  | 0.804 |
//! | Predict VM OUT  | M5P (M = 2)  | 0.777 |
//! | Predict PM CPU  | M5P (M = 4)  | 0.909 |
//! | Predict VM RT   | M5P (M = 4)  | 0.865 |
//! | Predict VM SLA  | K-NN (K = 4) | 0.985 |
//!
//! The feature vectors are restricted to what a scheduler actually knows
//! **before** placing a VM: load characteristics from the gateway, the
//! tentative grant on the candidate host, and queue state — never the
//! ground-truth model internals.

use crate::dataset::Dataset;
use crate::knn::KnnRegressor;
use crate::linreg::LinearRegression;
use crate::m5p::{M5Params, M5Tree};
use crate::metrics::EvalReport;
use crate::Regressor;
use pamdc_simcore::rng::RngStream;

/// The seven prediction targets of Table I.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum PredictionTarget {
    /// CPU a VM will need for its expected load (percent-of-core).
    VmCpu,
    /// Memory a VM will need (MB).
    VmMem,
    /// Inbound bandwidth a VM will use (KB/s).
    VmIn,
    /// Outbound bandwidth a VM will use (KB/s).
    VmOut,
    /// Total CPU a host will show, including hypervisor overhead.
    PmCpu,
    /// Processing response time of a VM given a tentative placement (s).
    VmRt,
    /// SLA fulfillment of a VM given a tentative placement, in `[0,1]`.
    VmSla,
}

impl PredictionTarget {
    /// All targets, in the paper's table order.
    pub const ALL: [PredictionTarget; 7] = [
        PredictionTarget::VmCpu,
        PredictionTarget::VmMem,
        PredictionTarget::VmIn,
        PredictionTarget::VmOut,
        PredictionTarget::PmCpu,
        PredictionTarget::VmRt,
        PredictionTarget::VmSla,
    ];

    /// The paper's row label.
    pub fn paper_name(self) -> &'static str {
        match self {
            PredictionTarget::VmCpu => "Predict VM CPU",
            PredictionTarget::VmMem => "Predict VM MEM",
            PredictionTarget::VmIn => "Predict VM IN",
            PredictionTarget::VmOut => "Predict VM OUT",
            PredictionTarget::PmCpu => "Predict PM CPU",
            PredictionTarget::VmRt => "Predict VM RT",
            PredictionTarget::VmSla => "Predict VM SLA",
        }
    }

    /// Feature names for this target's dataset.
    pub fn feature_names(self) -> &'static [&'static str] {
        match self {
            // Load-characteristics → resource demand.
            PredictionTarget::VmCpu
            | PredictionTarget::VmMem
            | PredictionTarget::VmIn
            | PredictionTarget::VmOut => &[
                "rps",
                "kb_in_per_req",
                "kb_out_per_req",
                "cpu_ms_per_req",
                "backlog",
            ],
            // Host aggregation (hypervisor overhead learning).
            PredictionTarget::PmCpu => &["n_vms", "sum_vm_cpu", "sum_rps"],
            // Tentative placement → QoS.
            PredictionTarget::VmRt | PredictionTarget::VmSla => &[
                "rps",
                "cpu_ms_per_req",
                "required_cpu",
                "granted_cpu",
                "mem_grant_ratio",
                "backlog",
                "transport_secs",
            ],
        }
    }

    /// Fits the paper's learner for this target.
    pub fn fit(self, train: &Dataset) -> Box<dyn Regressor> {
        match self {
            PredictionTarget::VmCpu | PredictionTarget::PmCpu | PredictionTarget::VmRt => {
                Box::new(M5Tree::fit(train, M5Params::m4()))
            }
            PredictionTarget::VmMem => Box::new(LinearRegression::fit(train)),
            PredictionTarget::VmIn | PredictionTarget::VmOut => {
                Box::new(M5Tree::fit(train, M5Params::m2()))
            }
            PredictionTarget::VmSla => Box::new(KnnRegressor::fit(train, 4)),
        }
    }
}

/// One trained predictor with its validation report.
pub struct TrainedPredictor {
    /// Which target this predicts.
    pub target: PredictionTarget,
    /// The fitted model.
    pub model: Box<dyn Regressor>,
    /// Held-out validation metrics (the Table-I row).
    pub report: EvalReport,
}

impl TrainedPredictor {
    /// Trains on `data` with the paper's 66/34 split protocol.
    pub fn train(target: PredictionTarget, data: &Dataset, rng: &mut RngStream) -> Self {
        assert!(
            data.len() >= 8,
            "{}: need at least 8 examples, got {}",
            target.paper_name(),
            data.len()
        );
        let (train, test) = data.split(0.66, rng);
        let model = target.fit(&train);
        let report = EvalReport::compute(model.as_ref(), &train, &test, data.target_range());
        TrainedPredictor {
            target,
            model,
            report,
        }
    }

    /// Trains on an externally prepared split (ablations comparing two
    /// paths on identical test data need this).
    pub fn train_presplit(
        target: PredictionTarget,
        train: &Dataset,
        test: &Dataset,
        full_range: (f64, f64),
    ) -> Self {
        let model = target.fit(train);
        let report = EvalReport::compute(model.as_ref(), train, test, full_range);
        TrainedPredictor {
            target,
            model,
            report,
        }
    }

    /// Predicts from a feature vector (see
    /// [`PredictionTarget::feature_names`] for the layout). SLA
    /// predictions are clamped to `[0, 1]`, RT and resources to `>= 0`.
    pub fn predict(&self, features: &[f64]) -> f64 {
        let raw = self.model.predict(features);
        match self.target {
            PredictionTarget::VmSla => raw.clamp(0.0, 1.0),
            _ => raw.max(0.0),
        }
    }
}

/// The complete suite of seven trained predictors.
pub struct PredictorSuite {
    predictors: Vec<TrainedPredictor>,
}

impl PredictorSuite {
    /// Builds from individually trained predictors (must cover all seven
    /// targets exactly once).
    pub fn from_predictors(mut predictors: Vec<TrainedPredictor>) -> Self {
        predictors.sort_by_key(|p| p.target);
        let targets: Vec<PredictionTarget> = predictors.iter().map(|p| p.target).collect();
        assert_eq!(
            targets,
            PredictionTarget::ALL.to_vec(),
            "suite must cover all 7 targets"
        );
        PredictorSuite { predictors }
    }

    /// Looks up one predictor.
    pub fn get(&self, target: PredictionTarget) -> &TrainedPredictor {
        let idx = PredictionTarget::ALL
            .iter()
            .position(|&t| t == target)
            .expect("known target");
        &self.predictors[idx]
    }

    /// Predicts for one target.
    pub fn predict(&self, target: PredictionTarget, features: &[f64]) -> f64 {
        self.get(target).predict(features)
    }

    /// Iterates the Table-I rows in order.
    pub fn reports(&self) -> impl Iterator<Item = (&'static str, &EvalReport)> {
        self.predictors
            .iter()
            .map(|p| (p.target.paper_name(), &p.report))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn synth_dataset(target: PredictionTarget, n: usize, seed: u64) -> Dataset {
        let mut rng = RngStream::root(seed);
        let names = target.feature_names();
        let mut d = Dataset::with_features(names);
        for _ in 0..n {
            let row: Vec<f64> = (0..names.len())
                .map(|_| rng.uniform_range(0.0, 10.0))
                .collect();
            // A piecewise target over the first feature, bounded for SLA.
            let y = match target {
                PredictionTarget::VmSla => (row[0] / 10.0).clamp(0.0, 1.0),
                _ => {
                    if row[0] < 5.0 {
                        row[0] * 2.0
                    } else {
                        30.0 - row[0]
                    }
                }
            };
            d.push(row, y + rng.normal(0.0, 0.1));
        }
        d
    }

    #[test]
    fn targets_have_paper_labels_and_features() {
        assert_eq!(PredictionTarget::ALL.len(), 7);
        assert_eq!(PredictionTarget::VmCpu.paper_name(), "Predict VM CPU");
        assert_eq!(PredictionTarget::VmCpu.feature_names().len(), 5);
        assert_eq!(PredictionTarget::PmCpu.feature_names().len(), 3);
        assert_eq!(PredictionTarget::VmSla.feature_names().len(), 7);
    }

    #[test]
    fn training_yields_usable_models() {
        for target in PredictionTarget::ALL {
            let d = synth_dataset(target, 400, 11);
            let mut rng = RngStream::root(12);
            let p = TrainedPredictor::train(target, &d, &mut rng);
            assert!(
                p.report.correlation > 0.8,
                "{}: corr {}",
                target.paper_name(),
                p.report.correlation
            );
            let q = vec![1.0; target.feature_names().len()];
            let pred = p.predict(&q);
            assert!(pred.is_finite());
            if target == PredictionTarget::VmSla {
                assert!((0.0..=1.0).contains(&pred));
            } else {
                assert!(pred >= 0.0);
            }
        }
    }

    #[test]
    fn suite_assembles_and_dispatches() {
        let mut rng = RngStream::root(13);
        let predictors: Vec<TrainedPredictor> = PredictionTarget::ALL
            .iter()
            .map(|&t| TrainedPredictor::train(t, &synth_dataset(t, 200, 14), &mut rng))
            .collect();
        let suite = PredictorSuite::from_predictors(predictors);
        for t in PredictionTarget::ALL {
            let q = vec![2.0; t.feature_names().len()];
            assert!(suite.predict(t, &q).is_finite());
        }
        assert_eq!(suite.reports().count(), 7);
    }

    #[test]
    #[should_panic(expected = "all 7 targets")]
    fn incomplete_suite_rejected() {
        let mut rng = RngStream::root(15);
        let only_one = vec![TrainedPredictor::train(
            PredictionTarget::VmCpu,
            &synth_dataset(PredictionTarget::VmCpu, 100, 16),
            &mut rng,
        )];
        PredictorSuite::from_predictors(only_one);
    }
}
