//! Minimal dense linear algebra for the learners.
//!
//! The regression problems here are tiny (≤ ~16 unknowns), so a plain
//! Gaussian elimination with partial pivoting is both adequate and easy
//! to audit. No external linear-algebra crate is used.

// Index loops mirror the textbook elimination formulas; iterator
// rewrites obscure the row/column structure.
#![allow(clippy::needless_range_loop)]

/// Solves `A x = b` for square `A` (row-major), in place, with partial
/// pivoting. Returns `None` when the matrix is (numerically) singular.
pub fn solve(mut a: Vec<Vec<f64>>, mut b: Vec<f64>) -> Option<Vec<f64>> {
    let n = a.len();
    if n == 0 {
        return Some(Vec::new());
    }
    assert!(a.iter().all(|r| r.len() == n), "matrix must be square");
    assert_eq!(b.len(), n, "rhs length mismatch");

    for col in 0..n {
        // Partial pivot: the largest |value| in this column at/below the
        // diagonal.
        let pivot_row = (col..n)
            .max_by(|&i, &j| {
                a[i][col]
                    .abs()
                    .partial_cmp(&a[j][col].abs())
                    .expect("finite")
            })
            .expect("non-empty range");
        if a[pivot_row][col].abs() < 1e-12 {
            return None;
        }
        a.swap(col, pivot_row);
        b.swap(col, pivot_row);

        let pivot = a[col][col];
        for row in (col + 1)..n {
            let factor = a[row][col] / pivot;
            if factor == 0.0 {
                continue;
            }
            for k in col..n {
                a[row][k] -= factor * a[col][k];
            }
            b[row] -= factor * b[col];
        }
    }

    // Back substitution.
    let mut x = vec![0.0; n];
    for row in (0..n).rev() {
        let mut acc = b[row];
        for k in (row + 1)..n {
            acc -= a[row][k] * x[k];
        }
        x[row] = acc / a[row][row];
    }
    Some(x)
}

/// Builds the normal-equation system for ridge regression
/// (`XᵀX + λI`, `Xᵀy`) with an intercept column appended, and solves it.
/// Returns `(weights, intercept)`; the ridge term is not applied to the
/// intercept. `None` when singular even with the ridge term.
pub fn ridge_normal_equations(
    rows: &[Vec<f64>],
    targets: &[f64],
    lambda: f64,
) -> Option<(Vec<f64>, f64)> {
    let n = rows.len();
    if n == 0 {
        return None;
    }
    let p = rows[0].len();
    let dim = p + 1; // + intercept

    // XᵀX and Xᵀy with the implicit trailing 1-column.
    let mut ata = vec![vec![0.0; dim]; dim];
    let mut aty = vec![0.0; dim];
    for (row, &y) in rows.iter().zip(targets) {
        debug_assert_eq!(row.len(), p);
        for i in 0..p {
            for j in i..p {
                ata[i][j] += row[i] * row[j];
            }
            ata[i][p] += row[i]; // × intercept column
            aty[i] += row[i] * y;
        }
        ata[p][p] += 1.0;
        aty[p] += y;
    }
    // Mirror the upper triangle.
    for i in 0..dim {
        for j in 0..i {
            ata[i][j] = ata[j][i];
        }
    }
    // Ridge on the feature block only (not the intercept).
    for (i, row) in ata.iter_mut().enumerate().take(p) {
        row[i] += lambda;
    }

    let sol = solve(ata, aty)?;
    let (w, b) = sol.split_at(p);
    Some((w.to_vec(), b[0]))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn solves_identity() {
        let a = vec![vec![1.0, 0.0], vec![0.0, 1.0]];
        let x = solve(a, vec![3.0, -2.0]).unwrap();
        assert_eq!(x, vec![3.0, -2.0]);
    }

    #[test]
    fn solves_general_system() {
        // 2x + y = 5 ; x - y = 1  -> x = 2, y = 1.
        let a = vec![vec![2.0, 1.0], vec![1.0, -1.0]];
        let x = solve(a, vec![5.0, 1.0]).unwrap();
        assert!((x[0] - 2.0).abs() < 1e-12);
        assert!((x[1] - 1.0).abs() < 1e-12);
    }

    #[test]
    fn pivoting_handles_zero_diagonal() {
        // Leading zero forces a row swap.
        let a = vec![vec![0.0, 1.0], vec![1.0, 0.0]];
        let x = solve(a, vec![7.0, 9.0]).unwrap();
        assert_eq!(x, vec![9.0, 7.0]);
    }

    #[test]
    fn singular_returns_none() {
        let a = vec![vec![1.0, 2.0], vec![2.0, 4.0]];
        assert!(solve(a, vec![1.0, 2.0]).is_none());
    }

    #[test]
    fn empty_system() {
        assert_eq!(solve(Vec::new(), Vec::new()), Some(Vec::new()));
    }

    #[test]
    fn ridge_recovers_linear_function() {
        let rows: Vec<Vec<f64>> = (0..50)
            .map(|i| vec![i as f64, (i * i) as f64 % 7.0])
            .collect();
        let targets: Vec<f64> = rows.iter().map(|r| 2.0 * r[0] - 0.5 * r[1] + 4.0).collect();
        let (w, b) = ridge_normal_equations(&rows, &targets, 1e-9).unwrap();
        assert!((w[0] - 2.0).abs() < 1e-6);
        assert!((w[1] + 0.5).abs() < 1e-6);
        assert!((b - 4.0).abs() < 1e-6);
    }

    #[test]
    fn ridge_survives_collinear_features() {
        // Second feature is an exact copy: OLS is singular; ridge is not.
        let rows: Vec<Vec<f64>> = (0..30).map(|i| vec![i as f64, i as f64]).collect();
        let targets: Vec<f64> = rows.iter().map(|r| 3.0 * r[0] + 1.0).collect();
        let (w, b) = ridge_normal_equations(&rows, &targets, 1e-4).unwrap();
        // Weights split the slope between the clones.
        assert!((w[0] + w[1] - 3.0).abs() < 1e-2, "w {w:?}");
        assert!((b - 1.0).abs() < 0.2);
    }

    #[test]
    fn ridge_empty_returns_none() {
        assert!(ridge_normal_equations(&[], &[], 1e-6).is_none());
    }
}
