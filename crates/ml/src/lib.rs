//! # pamdc-ml — machine learning from scratch
//!
//! The paper trains its models in WEKA; no equivalent mature Rust stack
//! exists, so this crate implements the three learners it uses from
//! first principles:
//!
//! * [`m5p`] — **M5 model trees** (regression trees with linear models in
//!   the leaves, SDR splitting, complexity-penalised pruning, M5
//!   smoothing) — WEKA's "M5P", used for CPU, network and RT targets;
//! * [`linreg`] — ordinary least squares with automatic ridge fallback —
//!   used for the near-linear memory target;
//! * [`knn`] — standardized k-nearest-neighbour regression — used to
//!   predict the bounded SLA level directly.
//!
//! Around them: tabular [`dataset`]s with the paper's 66/34 split
//! protocol, a tiny [`linalg`] solver, Table-I validation [`metrics`],
//! the seven-target [`predictors`] suite, and an [`online`] retraining
//! wrapper implementing the paper's future-work item on continuous
//! learning.

pub mod dataset;
pub mod knn;
pub mod linalg;
pub mod linreg;
pub mod m5p;
pub mod metrics;
pub mod online;
pub mod predictors;

/// A fitted regression model: feature vector in, scalar out.
///
/// `Send + Sync` is required so suites can be trained in parallel and
/// shared read-only across scheduler threads.
pub trait Regressor: Send + Sync {
    /// Predicts the target for one feature vector.
    fn predict(&self, features: &[f64]) -> f64;

    /// Short display name ("M5P", "Linear Reg.", "K-NN").
    fn name(&self) -> &'static str;
}

/// Common imports.
pub mod prelude {
    pub use crate::dataset::{Dataset, Standardizer};
    pub use crate::knn::KnnRegressor;
    pub use crate::linreg::LinearRegression;
    pub use crate::m5p::{M5Params, M5Tree};
    pub use crate::metrics::{table_header, EvalReport};
    pub use crate::online::{DriftAwareLearner, OnlineLearner, PageHinkley};
    pub use crate::predictors::{PredictionTarget, PredictorSuite, TrainedPredictor};
    pub use crate::Regressor;
}
