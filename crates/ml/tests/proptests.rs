//! Property-based tests for the learners.

use pamdc_ml::prelude::*;
use pamdc_simcore::rng::RngStream;
use proptest::prelude::*;

/// Builds a dataset y = a*x0 + b*x1 + c (+ noise) over random rows.
fn linear_dataset(a: f64, b: f64, c: f64, rows: &[(f64, f64)]) -> Dataset {
    let mut d = Dataset::with_features(&["x0", "x1"]);
    for &(x0, x1) in rows {
        d.push(vec![x0, x1], a * x0 + b * x1 + c);
    }
    d
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// OLS recovers any noiseless linear function (given enough spread).
    #[test]
    fn linreg_recovers_random_linear_functions(
        a in -10.0f64..10.0,
        b in -10.0f64..10.0,
        c in -10.0f64..10.0,
        seed in 0u64..1000,
    ) {
        let mut rng = RngStream::root(seed);
        let rows: Vec<(f64, f64)> = (0..80)
            .map(|_| (rng.uniform_range(-5.0, 5.0), rng.uniform_range(-5.0, 5.0)))
            .collect();
        let d = linear_dataset(a, b, c, &rows);
        let m = LinearRegression::fit(&d);
        for &(x0, x1) in rows.iter().take(10) {
            let want = a * x0 + b * x1 + c;
            prop_assert!((m.predict(&[x0, x1]) - want).abs() < 1e-5 * (1.0 + want.abs()));
        }
    }

    /// M5 trees never predict outside a generous envelope of the target
    /// range on in-distribution queries (smoothed piecewise-linear models
    /// interpolate).
    #[test]
    fn m5_interpolates_within_envelope(seed in 0u64..500) {
        let mut rng = RngStream::root(seed);
        let mut d = Dataset::with_features(&["x"]);
        for _ in 0..300 {
            let x = rng.uniform_range(0.0, 10.0);
            d.push(vec![x], (x * 1.3).sin() * 5.0 + 10.0);
        }
        let t = M5Tree::fit(&d, M5Params::m4());
        let (lo, hi) = d.target_range();
        let margin = (hi - lo).max(1.0);
        for i in 0..50 {
            let x = i as f64 * 0.2;
            let p = t.predict(&[x]);
            prop_assert!(p > lo - margin && p < hi + margin, "p {p} outside envelope");
        }
    }

    /// k-NN with k=1 exactly recalls training points (no duplicate
    /// features).
    #[test]
    fn knn_k1_recalls_training_points(seed in 0u64..500) {
        let mut rng = RngStream::root(seed);
        let mut d = Dataset::with_features(&["x", "y"]);
        let mut used = std::collections::BTreeSet::new();
        for i in 0..100 {
            let x = i as f64; // distinct
            let y = rng.uniform_range(0.0, 1.0);
            used.insert(i);
            d.push(vec![x, y], (i * 3) as f64);
        }
        let m = KnnRegressor::fit(&d, 1);
        for i in (0..100).step_by(7) {
            let (row, target) = d.row(i);
            prop_assert_eq!(m.predict(row), target);
        }
    }

    /// k-NN predictions are convex combinations of training targets:
    /// always inside [min, max].
    #[test]
    fn knn_stays_in_target_hull(seed in 0u64..500, k in 1usize..10) {
        let mut rng = RngStream::root(seed);
        let mut d = Dataset::with_features(&["x"]);
        for _ in 0..60 {
            d.push(vec![rng.uniform_range(0.0, 1.0)], rng.uniform_range(-3.0, 7.0));
        }
        let (lo, hi) = d.target_range();
        let m = KnnRegressor::fit(&d, k);
        for i in 0..20 {
            let p = m.predict(&[i as f64 * 0.1 - 0.5]);
            prop_assert!(p >= lo - 1e-9 && p <= hi + 1e-9);
        }
    }

    /// The 66/34 split conserves examples and never duplicates.
    #[test]
    fn split_conserves(n in 10usize..300, seed in 0u64..1000) {
        let mut d = Dataset::with_features(&["x"]);
        for i in 0..n {
            d.push(vec![i as f64], i as f64);
        }
        let (tr, te) = d.split(0.66, &mut RngStream::root(seed));
        prop_assert_eq!(tr.len() + te.len(), n);
        let mut all: Vec<f64> = tr.targets().iter().chain(te.targets()).copied().collect();
        all.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let expect: Vec<f64> = (0..n).map(|i| i as f64).collect();
        prop_assert_eq!(all, expect);
    }

    /// Gaussian elimination solves random well-conditioned systems.
    #[test]
    fn solver_solves_diagonally_dominant(seed in 0u64..1000) {
        let mut rng = RngStream::root(seed);
        let n = 6;
        let mut a = vec![vec![0.0; n]; n];
        for (i, row) in a.iter_mut().enumerate() {
            for (j, v) in row.iter_mut().enumerate() {
                *v = rng.uniform_range(-1.0, 1.0);
                if i == j {
                    *v += 10.0; // diagonal dominance -> well-conditioned
                }
            }
        }
        let x_true: Vec<f64> = (0..n).map(|_| rng.uniform_range(-5.0, 5.0)).collect();
        let b: Vec<f64> = a
            .iter()
            .map(|row| row.iter().zip(&x_true).map(|(r, x)| r * x).sum())
            .collect();
        let x = pamdc_ml::linalg::solve(a, b).expect("well-conditioned");
        for (got, want) in x.iter().zip(&x_true) {
            prop_assert!((got - want).abs() < 1e-8);
        }
    }
}
