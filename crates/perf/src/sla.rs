//! The paper's SLA fulfillment function.
//!
//! §III-C defines fulfillment as a piecewise-linear function of response
//! time with two parameters, the target `RT0` and tolerance `α`:
//!
//! ```text
//! SLA(RT) = 1                                   if RT ≤ RT0
//!         = 1 − (RT − RT0) / ((α−1)·RT0)        if RT0 ≤ RT ≤ α·RT0
//!         = 0                                   if RT > α·RT0
//! ```
//!
//! The paper instantiates `RT0 = 0.1 s` and `α = 10`.

/// SLA parameters for one customer contract.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct SlaFunction {
    /// Fully-satisfying response time, seconds.
    pub rt0_secs: f64,
    /// Tolerance multiplier; fulfillment is 0 at `alpha * rt0`.
    pub alpha: f64,
}

impl SlaFunction {
    /// The paper's contract: RT0 = 0.1 s, α = 10.
    pub fn paper() -> Self {
        SlaFunction {
            rt0_secs: 0.1,
            alpha: 10.0,
        }
    }

    /// A new SLA function; `rt0 > 0`, `alpha > 1`.
    pub fn new(rt0_secs: f64, alpha: f64) -> Self {
        assert!(rt0_secs > 0.0, "RT0 must be positive");
        assert!(alpha > 1.0, "alpha must exceed 1");
        SlaFunction { rt0_secs, alpha }
    }

    /// Fulfillment level in `[0, 1]` for a response time.
    pub fn fulfillment(&self, rt_secs: f64) -> f64 {
        if rt_secs <= self.rt0_secs {
            1.0
        } else if rt_secs >= self.alpha * self.rt0_secs {
            0.0
        } else {
            1.0 - (rt_secs - self.rt0_secs) / ((self.alpha - 1.0) * self.rt0_secs)
        }
    }

    /// The response time at which fulfillment first reaches 0.
    pub fn cutoff_secs(&self) -> f64 {
        self.alpha * self.rt0_secs
    }

    /// Inverse on the degrading segment: the RT that yields a given
    /// fulfillment level (clamped to `[0, 1]`).
    pub fn rt_for_fulfillment(&self, level: f64) -> f64 {
        let level = level.clamp(0.0, 1.0);
        self.rt0_secs + (1.0 - level) * (self.alpha - 1.0) * self.rt0_secs
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_values() {
        let s = SlaFunction::paper();
        assert_eq!(s.fulfillment(0.05), 1.0);
        assert_eq!(s.fulfillment(0.1), 1.0);
        assert_eq!(s.fulfillment(1.0), 0.0);
        assert_eq!(s.fulfillment(5.0), 0.0);
        // Midpoint of the degrading band: RT = 0.55 -> 0.5.
        assert!((s.fulfillment(0.55) - 0.5).abs() < 1e-12);
        assert!((s.cutoff_secs() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn piecewise_linearity() {
        let s = SlaFunction::new(0.2, 5.0);
        // Degrades linearly between rt0 (0.2) and alpha*rt0 (1.0).
        let f1 = s.fulfillment(0.4);
        let f2 = s.fulfillment(0.6);
        let f3 = s.fulfillment(0.8);
        assert!((f1 - f2 - (f2 - f3)).abs() < 1e-12, "equal decrements");
        assert!(f1 > f2 && f2 > f3);
    }

    #[test]
    fn monotone_nonincreasing() {
        let s = SlaFunction::paper();
        let mut last = 1.1;
        for i in 0..200 {
            let f = s.fulfillment(i as f64 * 0.01);
            assert!(f <= last + 1e-12);
            assert!((0.0..=1.0).contains(&f));
            last = f;
        }
    }

    #[test]
    fn inverse_roundtrips_on_degrading_segment() {
        let s = SlaFunction::paper();
        for &level in &[0.0, 0.25, 0.5, 0.75, 1.0] {
            let rt = s.rt_for_fulfillment(level);
            assert!((s.fulfillment(rt) - level).abs() < 1e-9, "level {level}");
        }
    }

    #[test]
    #[should_panic(expected = "alpha must exceed 1")]
    fn invalid_alpha_rejected() {
        SlaFunction::new(0.1, 1.0);
    }
}
