//! The ground-truth response-time model — the paper's `fRT`
//! (constraint 6.1): processing RT as a function of load, required and
//! granted resources.
//!
//! The model is a processor-sharing queue whose capacity is the VM's
//! work-conserving share of its host, degraded by memory pressure
//! (thrashing) and capped by network bandwidth. It produces the
//! behaviours the paper relies on:
//!
//! * an unstressed VM answers well under `RT0`;
//! * as a host's aggregate utilisation approaches 1, RT rises smoothly
//!   through the SLA degradation band (piecewise-linear-ish — learnable
//!   by M5 model trees);
//! * an overloaded VM serves fewer requests than arrive, so queues build
//!   and its *observed* CPU stays flat at its share — the monitor bias
//!   that defeats plain Best-Fit;
//! * RT saturates at ~20 s, the top of the paper's observed range.

use crate::demand::{cpu_demand_pct, OfferedLoad, VmPerfProfile};
use crate::queueing::{ps_sojourn_time, utilization};
use pamdc_infra::resources::Resources;
use pamdc_simcore::rng::RngStream;

/// Tunables of the ground-truth model.
#[derive(Clone, Debug)]
pub struct RtModelConfig {
    /// RT ceiling, seconds (paper's Table I tops out at 19.35 s).
    pub max_rt_secs: f64,
    /// Fixed dispatch/network-stack overhead inside the DC, seconds.
    pub dispatch_overhead_secs: f64,
    /// Strength of the memory-thrash RT multiplier.
    pub thrash_sharpness: f64,
    /// Log-normal σ of multiplicative RT noise (0 = deterministic).
    pub jitter_sigma: f64,
}

impl Default for RtModelConfig {
    fn default() -> Self {
        RtModelConfig {
            max_rt_secs: 20.0,
            dispatch_overhead_secs: 0.015,
            thrash_sharpness: 3.0,
            jitter_sigma: 0.08,
        }
    }
}

impl RtModelConfig {
    /// A deterministic variant for tests and analytical experiments.
    pub fn deterministic() -> Self {
        RtModelConfig {
            jitter_sigma: 0.0,
            ..Default::default()
        }
    }
}

/// What one VM did during one tick.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct PerfOutcome {
    /// Mean processing response time (excludes client transport), seconds.
    pub rt_process_secs: f64,
    /// Requests actually served, per second.
    pub served_rps: f64,
    /// True resource usage — what a perfect monitor would report.
    pub used: Resources,
    /// Requests the VM could serve at most, per second (its capacity).
    pub capacity_rps: f64,
}

/// Evaluates the model for one VM on one tick.
///
/// * `required` — demand from [`crate::demand::required_resources`];
/// * `granted` — the space-shared allocation
///   ([`crate::contention::share_proportionally`]); memory pressure comes
///   from here;
/// * `burst` — the work-conserving capacity share
///   ([`crate::contention::share_work_conserving`]); CPU and network rates
///   come from here;
/// * `drain_secs` — tick length, over which backlog drains;
/// * `rng` — jitter source; `None` forces determinism regardless of
///   config.
#[allow(clippy::too_many_arguments)] // the model's natural arity
pub fn evaluate(
    load: &OfferedLoad,
    profile: &VmPerfProfile,
    required: &Resources,
    granted: &Resources,
    burst: &Resources,
    cfg: &RtModelConfig,
    drain_secs: f64,
    rng: Option<&mut RngStream>,
) -> PerfOutcome {
    let offered = load.total_rps(drain_secs);

    // Base service time: CPU plus I/O waits plus dispatch.
    let s0 =
        load.cpu_ms_per_req / 1000.0 * (1.0 + profile.io_wait_factor) + cfg.dispatch_overhead_secs;

    // Capacity in requests/second per resource axis.
    let mu_cpu = if load.cpu_ms_per_req > 0.0 {
        ((burst.cpu - profile.idle_cpu_pct).max(0.0)) * 10.0 / load.cpu_ms_per_req
    } else {
        f64::INFINITY
    };
    let mu_in = if load.kb_in_per_req > 0.0 {
        burst.net_in_kbps / load.kb_in_per_req
    } else {
        f64::INFINITY
    };
    let mu_out = if load.kb_out_per_req > 0.0 {
        burst.net_out_kbps / load.kb_out_per_req
    } else {
        f64::INFINITY
    };

    // Memory pressure: thrashing slows the whole stack down.
    let mem_ratio = if granted.mem_mb > 0.0 {
        required.mem_mb / granted.mem_mb
    } else if required.mem_mb > 0.0 {
        f64::INFINITY
    } else {
        1.0
    };
    let thrash = (mem_ratio - 1.0).max(0.0);
    let slow = 1.0 / (1.0 + 2.0 * thrash.min(10.0));

    let mu = mu_cpu.min(mu_in).min(mu_out) * slow;
    let served = offered.min(mu);
    let rho = utilization(offered, mu);

    let mut rt = ps_sojourn_time(s0, rho, cfg.max_rt_secs);
    if thrash > 0.0 {
        rt = (rt * (1.0 + cfg.thrash_sharpness * thrash.min(10.0))).min(cfg.max_rt_secs);
    }
    if let Some(rng) = rng {
        if cfg.jitter_sigma > 0.0 {
            rt = (rt * rng.lognormal(0.0, cfg.jitter_sigma)).clamp(0.0, cfg.max_rt_secs);
        }
    }

    // True usage: what the VM actually consumed serving `served` rps.
    let cpu_used = cpu_demand_pct(served, load.cpu_ms_per_req, profile.idle_cpu_pct).min(
        if burst.cpu.is_finite() {
            burst.cpu
        } else {
            f64::MAX
        },
    );
    let used = Resources {
        cpu: cpu_used,
        mem_mb: required.mem_mb.min(granted.mem_mb),
        net_in_kbps: (served * load.kb_in_per_req).min(if burst.net_in_kbps.is_finite() {
            burst.net_in_kbps
        } else {
            f64::MAX
        }),
        net_out_kbps: (served * load.kb_out_per_req).min(if burst.net_out_kbps.is_finite() {
            burst.net_out_kbps
        } else {
            f64::MAX
        }),
    };

    PerfOutcome {
        rt_process_secs: rt,
        served_rps: served,
        used,
        capacity_rps: mu,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::demand::required_resources;

    const ATOM: Resources = Resources::new(400.0, 4096.0, 64_000.0, 64_000.0);

    fn blog_load(rps: f64) -> OfferedLoad {
        OfferedLoad {
            rps,
            kb_in_per_req: 0.5,
            kb_out_per_req: 3.0,
            cpu_ms_per_req: 5.0,
            backlog: 0.0,
        }
    }

    /// Single VM alone on an Atom host: demand + full burst headroom.
    fn solo(load: &OfferedLoad) -> PerfOutcome {
        let p = VmPerfProfile::default();
        let req = required_resources(load, &p, 60.0);
        // Alone on the host: granted = demand (fits), burst = whole host.
        evaluate(
            load,
            &p,
            &req,
            &req,
            &ATOM,
            &RtModelConfig::deterministic(),
            60.0,
            None,
        )
    }

    #[test]
    fn unstressed_vm_meets_rt0() {
        let o = solo(&blog_load(50.0));
        assert!(o.rt_process_secs < 0.1, "rt {}", o.rt_process_secs);
        assert!((o.served_rps - 50.0).abs() < 1e-9, "all requests served");
    }

    #[test]
    fn rt_monotone_in_load() {
        let mut last = 0.0;
        for rps in [10.0, 100.0, 300.0, 500.0, 700.0, 760.0] {
            let o = solo(&blog_load(rps));
            assert!(
                o.rt_process_secs >= last - 1e-9,
                "rt must grow with load: {} at {rps}",
                o.rt_process_secs
            );
            last = o.rt_process_secs;
        }
    }

    #[test]
    fn saturation_caps_throughput_and_rt() {
        // Atom: (400-2)*10/5 = 796 rps CPU capacity.
        let o = solo(&blog_load(2000.0));
        assert!(o.served_rps < 810.0, "served {}", o.served_rps);
        assert!(
            (o.rt_process_secs - 20.0).abs() < 1e-6,
            "rt saturates at max"
        );
        assert!(o.capacity_rps < 810.0);
    }

    #[test]
    fn contention_raises_rt() {
        // Two identical VMs each demanding ~60% of the host CPU.
        let p = VmPerfProfile::default();
        let load = blog_load(480.0);
        let req = required_resources(&load, &p, 60.0);
        let demands = vec![req, req];
        let granted = crate::contention::share_proportionally(&demands, ATOM);
        let burst = crate::contention::share_work_conserving(&demands, ATOM);
        let shared = evaluate(
            &load,
            &p,
            &req,
            &granted[0],
            &burst[0],
            &RtModelConfig::deterministic(),
            60.0,
            None,
        );
        let alone = solo(&load);
        assert!(
            shared.rt_process_secs > 2.0 * alone.rt_process_secs,
            "shared {} vs alone {}",
            shared.rt_process_secs,
            alone.rt_process_secs
        );
        assert!(
            shared.served_rps < 480.0,
            "contended VM cannot serve everything"
        );
    }

    #[test]
    fn memory_thrash_punishes_rt() {
        let p = VmPerfProfile::default();
        let load = blog_load(100.0);
        let req = required_resources(&load, &p, 60.0);
        let healthy = evaluate(
            &load,
            &p,
            &req,
            &req,
            &ATOM,
            &RtModelConfig::deterministic(),
            60.0,
            None,
        );
        // Grant only 60% of the needed memory.
        let starved_mem = Resources {
            mem_mb: req.mem_mb * 0.6,
            ..req
        };
        let starved = evaluate(
            &load,
            &p,
            &req,
            &starved_mem,
            &ATOM,
            &RtModelConfig::deterministic(),
            60.0,
            None,
        );
        assert!(starved.rt_process_secs > 2.0 * healthy.rt_process_secs);
        assert!(
            starved.capacity_rps < healthy.capacity_rps,
            "thrashing shrinks capacity"
        );
        assert!(starved.used.mem_mb <= starved_mem.mem_mb + 1e-9);
    }

    #[test]
    fn network_bottleneck_caps_served() {
        let p = VmPerfProfile::default();
        // Huge responses: 3 MB each; host NIC 64_000 KB/s -> ~21 rps cap.
        let load = OfferedLoad {
            rps: 100.0,
            kb_in_per_req: 0.5,
            kb_out_per_req: 3000.0,
            cpu_ms_per_req: 2.0,
            backlog: 0.0,
        };
        let req = required_resources(&load, &p, 60.0);
        let o = evaluate(
            &load,
            &p,
            &req,
            &req,
            &ATOM,
            &RtModelConfig::deterministic(),
            60.0,
            None,
        );
        assert!(o.served_rps < 25.0, "served {}", o.served_rps);
        assert!(o.used.net_out_kbps <= 64_000.0 + 1e-6);
    }

    #[test]
    fn starved_vm_reports_low_cpu_usage() {
        // The monitor-bias effect: a VM that *needs* 2 cores but only has
        // capacity for ~1 reports ~1 core of usage.
        let p = VmPerfProfile::default();
        let load = blog_load(400.0); // needs ~200% cpu
        let req = required_resources(&load, &p, 60.0);
        let small_burst = Resources { cpu: 100.0, ..ATOM };
        let o = evaluate(
            &load,
            &p,
            &req,
            &req,
            &small_burst,
            &RtModelConfig::deterministic(),
            60.0,
            None,
        );
        assert!(req.cpu > 195.0, "true demand ~2 cores: {}", req.cpu);
        assert!(
            o.used.cpu <= 100.0 + 1e-9,
            "observed usage capped at share: {}",
            o.used.cpu
        );
    }

    #[test]
    fn backlog_increases_pressure() {
        let p = VmPerfProfile::default();
        let mut load = blog_load(700.0);
        let calm = solo(&load);
        load.backlog = 6000.0; // +100 rps over a minute
        let req = required_resources(&load, &p, 60.0);
        let pressured = evaluate(
            &load,
            &p,
            &req,
            &req,
            &ATOM,
            &RtModelConfig::deterministic(),
            60.0,
            None,
        );
        assert!(pressured.rt_process_secs > calm.rt_process_secs);
    }

    #[test]
    fn jitter_is_bounded_and_reproducible() {
        let p = VmPerfProfile::default();
        let load = blog_load(100.0);
        let req = required_resources(&load, &p, 60.0);
        let cfg = RtModelConfig::default();
        let mut r1 = RngStream::root(7).derive("rt");
        let mut r2 = RngStream::root(7).derive("rt");
        let a = evaluate(&load, &p, &req, &req, &ATOM, &cfg, 60.0, Some(&mut r1));
        let b = evaluate(&load, &p, &req, &req, &ATOM, &cfg, 60.0, Some(&mut r2));
        assert_eq!(a, b, "same stream, same outcome");
        assert!(a.rt_process_secs <= cfg.max_rt_secs);
    }

    #[test]
    fn zero_load_is_cheap() {
        let o = solo(&blog_load(0.0));
        assert_eq!(o.served_rps, 0.0);
        assert!(o.rt_process_secs < 0.05);
        assert!(o.used.cpu <= VmPerfProfile::default().idle_cpu_pct + 1e-9);
    }
}
