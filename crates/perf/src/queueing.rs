//! Elementary queueing formulas used by the response-time model.
//!
//! The web stack inside each VM is approximated as a processor-sharing
//! server: under load `λ` with capacity `μ`, the sojourn time of an
//! M/G/1-PS queue is `s / (1 − ρ)` — insensitive to the service
//! distribution, which is what makes it a good stand-in for an
//! Apache/PHP/MySQL stack without modelling its internals.

/// Offered utilisation `λ/μ`; returns +inf when capacity is zero and load
/// is positive.
pub fn utilization(lambda: f64, mu: f64) -> f64 {
    if mu <= 0.0 {
        if lambda > 0.0 {
            f64::INFINITY
        } else {
            0.0
        }
    } else {
        (lambda / mu).max(0.0)
    }
}

/// M/G/1 processor-sharing sojourn time with base service time `s` and
/// utilisation `rho`, saturating at `max_rt` as `rho → 1` and beyond.
///
/// The saturation keeps the ground truth inside the paper's observed RT
/// range (`[0, 19.35] s` in its Table I) instead of diverging.
pub fn ps_sojourn_time(s: f64, rho: f64, max_rt: f64) -> f64 {
    debug_assert!(s >= 0.0 && max_rt > 0.0);
    if s <= 0.0 {
        return 0.0;
    }
    if !rho.is_finite() {
        return max_rt;
    }
    // s / (1-rho), with the denominator floored so the result tops out at
    // max_rt exactly when rho >= 1 - s/max_rt.
    let denom = (1.0 - rho).max(s / max_rt);
    (s / denom).min(max_rt)
}

/// Little's law: mean number in system for arrival rate `lambda` and
/// sojourn time `w`.
pub fn little_l(lambda: f64, w: f64) -> f64 {
    (lambda * w).max(0.0)
}

/// Time to drain a backlog of `q` requests at net drain rate
/// `mu - lambda` (infinite when not draining).
pub fn drain_time(q: f64, lambda: f64, mu: f64) -> f64 {
    let net = mu - lambda;
    if q <= 0.0 {
        0.0
    } else if net <= 0.0 {
        f64::INFINITY
    } else {
        q / net
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn utilization_cases() {
        assert_eq!(utilization(50.0, 100.0), 0.5);
        assert_eq!(utilization(0.0, 0.0), 0.0);
        assert_eq!(utilization(1.0, 0.0), f64::INFINITY);
    }

    #[test]
    fn ps_matches_theory_at_low_load() {
        let s = 0.01;
        let rt = ps_sojourn_time(s, 0.5, 20.0);
        assert!((rt - 0.02).abs() < 1e-12);
    }

    #[test]
    fn ps_saturates_at_max() {
        assert_eq!(ps_sojourn_time(0.01, 1.0, 20.0), 20.0);
        assert_eq!(ps_sojourn_time(0.01, 5.0, 20.0), 20.0);
        assert_eq!(ps_sojourn_time(0.01, f64::INFINITY, 20.0), 20.0);
    }

    #[test]
    fn ps_monotone_in_rho() {
        let mut last = 0.0;
        for i in 0..120 {
            let rt = ps_sojourn_time(0.005, i as f64 * 0.01, 20.0);
            assert!(rt >= last - 1e-12);
            last = rt;
        }
    }

    #[test]
    fn zero_service_time_is_instant() {
        assert_eq!(ps_sojourn_time(0.0, 0.9, 20.0), 0.0);
    }

    #[test]
    fn littles_law() {
        assert_eq!(little_l(100.0, 0.05), 5.0);
        assert_eq!(little_l(0.0, 1.0), 0.0);
    }

    #[test]
    fn drain_time_cases() {
        assert_eq!(drain_time(0.0, 10.0, 5.0), 0.0);
        assert_eq!(drain_time(100.0, 50.0, 100.0), 2.0);
        assert_eq!(drain_time(100.0, 100.0, 100.0), f64::INFINITY);
    }
}
