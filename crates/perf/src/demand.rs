//! Required resources as a function of offered load — the ground truth
//! behind the paper's `fRequiredResources` (constraint 5.1 of its model)
//! and behind the VM CPU / MEM / IN / OUT predictors of Table I.

use pamdc_infra::resources::Resources;

/// One VM's offered load during a tick, aggregated over regions.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct OfferedLoad {
    /// Fresh arrival rate, requests/second.
    pub rps: f64,
    /// Mean inbound KB per request.
    pub kb_in_per_req: f64,
    /// Mean outbound KB per request.
    pub kb_out_per_req: f64,
    /// Mean no-contention CPU per request, milliseconds.
    pub cpu_ms_per_req: f64,
    /// Requests pending in the gateway queue from previous ticks.
    pub backlog: f64,
}

impl OfferedLoad {
    /// Total demand rate including the backlog drained over `drain_secs`
    /// (the tick length): pending requests are additional immediate load.
    pub fn total_rps(&self, drain_secs: f64) -> f64 {
        if drain_secs <= 0.0 {
            self.rps
        } else {
            self.rps + self.backlog / drain_secs
        }
    }
}

/// Per-VM performance constants (derived from its service class).
#[derive(Clone, Copy, Debug)]
pub struct VmPerfProfile {
    /// Guest OS + idle stack memory floor, MB.
    pub base_mem_mb: f64,
    /// Memory held per in-flight request, MB.
    pub mem_mb_per_inflight: f64,
    /// Non-CPU fraction of service time (I/O waits): service time =
    /// `cpu_ms * (1 + io_wait_factor)`.
    pub io_wait_factor: f64,
    /// Idle CPU of the stack (timers, healthchecks), percent-of-core.
    pub idle_cpu_pct: f64,
}

impl Default for VmPerfProfile {
    fn default() -> Self {
        VmPerfProfile {
            base_mem_mb: 256.0,
            mem_mb_per_inflight: 2.0,
            io_wait_factor: 0.6,
            idle_cpu_pct: 2.0,
        }
    }
}

/// CPU demand (percent-of-core) to process `rps` requests costing
/// `cpu_ms` each: `rps · cpu_ms / 10` (1000 CPU-ms per second = 100%),
/// with a mild super-linear scheduling-overhead term that bends the curve
/// at high concurrency — the effect that keeps the CPU predictor from
/// being exactly linear.
pub fn cpu_demand_pct(rps: f64, cpu_ms: f64, idle_cpu_pct: f64) -> f64 {
    let linear = rps * cpu_ms / 10.0;
    let overhead = 0.012 * (linear / 100.0).powi(2) * 100.0;
    idle_cpu_pct + linear + overhead
}

/// Full required-resource vector for a load and profile. `drain_secs` is
/// the horizon over which the backlog should be drained (the tick length).
pub fn required_resources(
    load: &OfferedLoad,
    profile: &VmPerfProfile,
    drain_secs: f64,
) -> Resources {
    let rps = load.total_rps(drain_secs);
    let cpu = cpu_demand_pct(rps, load.cpu_ms_per_req, profile.idle_cpu_pct);
    // Little's law: in-flight requests at nominal service time.
    let service_secs = load.cpu_ms_per_req / 1000.0 * (1.0 + profile.io_wait_factor);
    let inflight = rps * service_secs + load.backlog;
    let mem = profile.base_mem_mb + profile.mem_mb_per_inflight * inflight;
    Resources {
        cpu,
        mem_mb: mem,
        net_in_kbps: rps * load.kb_in_per_req,
        net_out_kbps: rps * load.kb_out_per_req,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn load(rps: f64) -> OfferedLoad {
        OfferedLoad {
            rps,
            kb_in_per_req: 0.5,
            kb_out_per_req: 4.0,
            cpu_ms_per_req: 8.0,
            backlog: 0.0,
        }
    }

    #[test]
    fn cpu_scales_with_rate() {
        // 100 rps * 8 ms = 800 ms/s = 80% + idle + small overhead.
        let cpu = cpu_demand_pct(100.0, 8.0, 2.0);
        assert!(cpu > 82.0 - 1e-9 && cpu < 84.0, "cpu {cpu}");
        // Superlinearity: doubling rate more than doubles the non-idle part.
        let hi = cpu_demand_pct(200.0, 8.0, 0.0);
        assert!(hi > 2.0 * (cpu - 2.0));
    }

    #[test]
    fn zero_load_costs_idle_only() {
        let r = required_resources(&load(0.0), &VmPerfProfile::default(), 60.0);
        assert!((r.cpu - 2.0).abs() < 1e-9);
        assert!((r.mem_mb - 256.0).abs() < 1e-9);
        assert_eq!(r.net_in_kbps, 0.0);
        assert_eq!(r.net_out_kbps, 0.0);
    }

    #[test]
    fn network_demand_is_rate_times_size() {
        let r = required_resources(&load(50.0), &VmPerfProfile::default(), 60.0);
        assert!((r.net_in_kbps - 25.0).abs() < 1e-9);
        assert!((r.net_out_kbps - 200.0).abs() < 1e-9);
    }

    #[test]
    fn backlog_adds_demand() {
        let mut l = load(50.0);
        let without = required_resources(&l, &VmPerfProfile::default(), 60.0);
        l.backlog = 600.0; // 10 extra rps over a 60 s tick
        let with = required_resources(&l, &VmPerfProfile::default(), 60.0);
        assert!(with.cpu > without.cpu);
        assert!(with.mem_mb > without.mem_mb);
        assert!((l.total_rps(60.0) - 60.0).abs() < 1e-9);
    }

    #[test]
    fn memory_grows_with_concurrency() {
        let lo = required_resources(&load(10.0), &VmPerfProfile::default(), 60.0);
        let hi = required_resources(&load(200.0), &VmPerfProfile::default(), 60.0);
        assert!(hi.mem_mb > lo.mem_mb + 2.0);
    }

    #[test]
    fn demand_is_monotone_in_rate() {
        let p = VmPerfProfile::default();
        let mut last = Resources::ZERO;
        for i in 0..50 {
            let r = required_resources(&load(i as f64 * 10.0), &p, 60.0);
            assert!(r.cpu >= last.cpu && r.mem_mb >= last.mem_mb);
            last = r;
        }
    }
}
