//! Resource sharing under contention — the paper's `fOccupation`
//! (constraint 5.2): how a host splits its capacity among the VMs it
//! hosts when their combined demand exceeds what it has.
//!
//! The hypervisor grants each VM its demand when everything fits;
//! otherwise each over-subscribed component is scaled down proportionally
//! (weighted fair sharing, the VirtualBox/Xen default behaviour for CPU
//! shares without explicit caps).

use pamdc_infra::resources::Resources;

/// Splits `capacity` among demands. Returns one granted vector per
/// demand, component-wise `granted_i = demand_i * min(1, cap_c / Σ demand_c)`.
pub fn share_proportionally(demands: &[Resources], capacity: Resources) -> Vec<Resources> {
    let mut out = Vec::new();
    share_proportionally_into(demands, capacity, &mut out);
    out
}

/// [`share_proportionally`] writing into a reusable buffer (cleared
/// first) — the simulation tick loop calls this once per host per tick
/// and must not allocate.
pub fn share_proportionally_into(
    demands: &[Resources],
    capacity: Resources,
    out: &mut Vec<Resources>,
) {
    out.clear();
    if demands.is_empty() {
        return;
    }
    let total: Resources = demands.iter().copied().sum();
    let factor = |cap: f64, tot: f64| {
        if tot > cap && tot > 0.0 {
            cap / tot
        } else {
            1.0
        }
    };
    let f_cpu = factor(capacity.cpu, total.cpu);
    let f_mem = factor(capacity.mem_mb, total.mem_mb);
    let f_in = factor(capacity.net_in_kbps, total.net_in_kbps);
    let f_out = factor(capacity.net_out_kbps, total.net_out_kbps);
    out.extend(demands.iter().map(|d| Resources {
        cpu: d.cpu * f_cpu,
        mem_mb: d.mem_mb * f_mem,
        net_in_kbps: d.net_in_kbps * f_in,
        net_out_kbps: d.net_out_kbps * f_out,
    }));
}

/// Stress level of a host: the largest over-subscription ratio across
/// components (1.0 = everything fits exactly; 2.0 = demand is double the
/// capacity somewhere).
pub fn oversubscription(demands: &[Resources], capacity: Resources) -> f64 {
    let total: Resources = demands.iter().copied().sum();
    let ratio = |tot: f64, cap: f64| {
        if cap > 0.0 {
            tot / cap
        } else if tot > 0.0 {
            f64::INFINITY
        } else {
            0.0
        }
    };
    ratio(total.cpu, capacity.cpu)
        .max(ratio(total.mem_mb, capacity.mem_mb))
        .max(ratio(total.net_in_kbps, capacity.net_in_kbps))
        .max(ratio(total.net_out_kbps, capacity.net_out_kbps))
        .max(0.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn r(cpu: f64, mem: f64) -> Resources {
        Resources::new(cpu, mem, 10.0, 10.0)
    }

    #[test]
    fn underloaded_host_grants_demand() {
        let cap = Resources::new(400.0, 4096.0, 1000.0, 1000.0);
        let demands = vec![r(100.0, 512.0), r(150.0, 1024.0)];
        let granted = share_proportionally(&demands, cap);
        assert_eq!(granted, demands);
    }

    #[test]
    fn overloaded_component_scales_down_proportionally() {
        let cap = Resources::new(400.0, 4096.0, 1000.0, 1000.0);
        // CPU demand 600 vs capacity 400 -> factor 2/3; memory fits.
        let demands = vec![r(400.0, 512.0), r(200.0, 512.0)];
        let granted = share_proportionally(&demands, cap);
        assert!((granted[0].cpu - 400.0 * 2.0 / 3.0).abs() < 1e-9);
        assert!((granted[1].cpu - 200.0 * 2.0 / 3.0).abs() < 1e-9);
        // Non-contended components untouched.
        assert_eq!(granted[0].mem_mb, 512.0);
        // Total grant equals capacity on the contended axis.
        let total: Resources = granted.iter().copied().sum();
        assert!((total.cpu - 400.0).abs() < 1e-9);
    }

    #[test]
    fn grants_never_exceed_demand_or_capacity() {
        let cap = Resources::new(400.0, 2048.0, 100.0, 100.0);
        let demands = vec![r(300.0, 1500.0), r(300.0, 1500.0), r(300.0, 1500.0)];
        let granted = share_proportionally(&demands, cap);
        let total: Resources = granted.iter().copied().sum();
        assert!(total.fits_within(&cap));
        for (g, d) in granted.iter().zip(&demands) {
            assert!(g.fits_within(d));
        }
    }

    #[test]
    fn empty_input() {
        assert!(share_proportionally(&[], Resources::ZERO).is_empty());
    }

    #[test]
    fn oversubscription_ratio() {
        let cap = Resources::new(400.0, 4096.0, 1000.0, 1000.0);
        assert!((oversubscription(&[r(200.0, 1024.0)], cap) - 0.5).abs() < 1e-9);
        assert!((oversubscription(&[r(400.0, 512.0), r(400.0, 512.0)], cap) - 2.0).abs() < 1e-9);
        assert_eq!(oversubscription(&[], cap), 0.0);
    }
}

/// Work-conserving effective capacity: what each VM can actually consume
/// on a host whose scheduler redistributes slack — `demand_i · cap / Σdemand`
/// per component (≥ demand when the host is underloaded, the contended
/// share when overloaded). CPU and network behave this way; memory does
/// not (it is space-shared, use [`share_proportionally`] for it).
pub fn share_work_conserving(demands: &[Resources], capacity: Resources) -> Vec<Resources> {
    let mut out = Vec::new();
    share_work_conserving_into(demands, capacity, &mut out);
    out
}

/// [`share_work_conserving`] writing into a reusable buffer (cleared
/// first) — allocation-free companion for the tick loop.
pub fn share_work_conserving_into(
    demands: &[Resources],
    capacity: Resources,
    out: &mut Vec<Resources>,
) {
    out.clear();
    if demands.is_empty() {
        return;
    }
    let total: Resources = demands.iter().copied().sum();
    let factor = |cap: f64, tot: f64| if tot > 0.0 { cap / tot } else { f64::INFINITY };
    let f_cpu = factor(capacity.cpu, total.cpu);
    let f_in = factor(capacity.net_in_kbps, total.net_in_kbps);
    let f_out = factor(capacity.net_out_kbps, total.net_out_kbps);
    let scale = |d: f64, f: f64| {
        if d <= 0.0 {
            // A VM demanding nothing can still burst into idle capacity;
            // report it as unconstrained.
            f64::INFINITY
        } else {
            d * f
        }
    };
    out.extend(demands.iter().map(|d| Resources {
        cpu: scale(d.cpu, f_cpu),
        mem_mb: d.mem_mb, // memory is not work-conserving
        net_in_kbps: scale(d.net_in_kbps, f_in),
        net_out_kbps: scale(d.net_out_kbps, f_out),
    }));
}

#[cfg(test)]
mod wc_tests {
    use super::*;

    #[test]
    fn underloaded_host_lets_vms_burst() {
        let cap = Resources::new(400.0, 4096.0, 1000.0, 1000.0);
        let demands = vec![Resources::new(50.0, 512.0, 10.0, 10.0)];
        let burst = share_work_conserving(&demands, cap);
        assert!(
            (burst[0].cpu - 400.0).abs() < 1e-9,
            "single VM can use the whole host"
        );
    }

    #[test]
    fn contended_host_gives_proportional_share() {
        let cap = Resources::new(400.0, 4096.0, 1000.0, 1000.0);
        let demands = vec![
            Resources::new(300.0, 0.0, 0.0, 0.0),
            Resources::new(100.0, 0.0, 0.0, 0.0),
        ];
        let burst = share_work_conserving(&demands, cap);
        assert!((burst[0].cpu - 300.0).abs() < 1e-9);
        assert!((burst[1].cpu - 100.0).abs() < 1e-9);
    }

    #[test]
    fn zero_demand_is_unconstrained() {
        let cap = Resources::new(400.0, 4096.0, 1000.0, 1000.0);
        let demands = vec![Resources::ZERO, Resources::new(100.0, 0.0, 0.0, 0.0)];
        let burst = share_work_conserving(&demands, cap);
        assert_eq!(burst[0].cpu, f64::INFINITY);
    }
}
