//! # pamdc-perf — ground-truth performance and SLA models
//!
//! The paper measures response times on a real Apache/PHP/MySQL stack;
//! this crate replaces that stack with an analytical model of the same
//! observable shape: required resources as a function of load
//! ([`demand`]), contention sharing on a host ([`contention`]),
//! processor-sharing response times with thrashing and bandwidth caps
//! ([`rt`], [`queueing`]), and the paper's piecewise-linear SLA
//! fulfillment function ([`sla`]).
//!
//! Everything here is the **ground truth** the simulator executes; the
//! machine-learning layer (`pamdc-ml`) never sees these equations — it
//! learns them from noisy monitored observations, exactly as the paper's
//! WEKA models learned the real testbed.

pub mod contention;
pub mod demand;
pub mod queueing;
pub mod rt;
pub mod sla;

/// Common imports.
pub mod prelude {
    pub use crate::contention::{
        oversubscription, share_proportionally, share_proportionally_into, share_work_conserving,
        share_work_conserving_into,
    };
    pub use crate::demand::{cpu_demand_pct, required_resources, OfferedLoad, VmPerfProfile};
    pub use crate::queueing::{drain_time, little_l, ps_sojourn_time, utilization};
    pub use crate::rt::{evaluate, PerfOutcome, RtModelConfig};
    pub use crate::sla::SlaFunction;
}
