//! Property-based tests for the performance ground truth.

use pamdc_infra::resources::Resources;
use pamdc_perf::prelude::*;
use proptest::prelude::*;

const ATOM: Resources = Resources::new(400.0, 4096.0, 64_000.0, 64_000.0);

fn arb_load() -> impl Strategy<Value = OfferedLoad> {
    (
        0.0f64..800.0,
        0.1f64..2.0,
        0.5f64..30.0,
        1.0f64..15.0,
        0.0f64..3000.0,
    )
        .prop_map(|(rps, kb_in, kb_out, cpu_ms, backlog)| OfferedLoad {
            rps,
            kb_in_per_req: kb_in,
            kb_out_per_req: kb_out,
            cpu_ms_per_req: cpu_ms,
            backlog,
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// SLA fulfillment is a proper piecewise-linear function: bounded,
    /// non-increasing, exact at the knees.
    #[test]
    fn sla_function_well_formed(rt0 in 0.01f64..2.0, alpha in 1.01f64..20.0, rt in 0.0f64..50.0) {
        let f = SlaFunction::new(rt0, alpha);
        let v = f.fulfillment(rt);
        prop_assert!((0.0..=1.0).contains(&v));
        prop_assert_eq!(f.fulfillment(rt0), 1.0);
        prop_assert_eq!(f.fulfillment(alpha * rt0 + 1e-9), 0.0);
        // Monotonicity.
        prop_assert!(f.fulfillment(rt + 0.1) <= v + 1e-12);
    }

    /// The RT model's outputs are always physical: finite RT within
    /// [0, max], served ≤ offered, usage within burst caps.
    #[test]
    fn rt_model_outputs_physical(load in arb_load()) {
        let profile = VmPerfProfile::default();
        let req = required_resources(&load, &profile, 60.0);
        let cfg = RtModelConfig::deterministic();
        let o = evaluate(&load, &profile, &req, &req, &ATOM, &cfg, 60.0, None);
        prop_assert!(o.rt_process_secs.is_finite());
        prop_assert!((0.0..=cfg.max_rt_secs + 1e-9).contains(&o.rt_process_secs));
        prop_assert!(o.served_rps >= 0.0);
        prop_assert!(o.served_rps <= load.total_rps(60.0) + 1e-9);
        prop_assert!(o.used.is_valid());
        prop_assert!(o.used.cpu <= ATOM.cpu + 1e-9);
        prop_assert!(o.used.net_out_kbps <= ATOM.net_out_kbps + 1e-9);
    }

    /// RT is monotone in offered load (all else equal).
    #[test]
    fn rt_monotone_in_rps(base in arb_load(), extra in 1.0f64..200.0) {
        let profile = VmPerfProfile::default();
        let cfg = RtModelConfig::deterministic();
        let mut heavier = base;
        heavier.rps += extra;
        let req_a = required_resources(&base, &profile, 60.0);
        let req_b = required_resources(&heavier, &profile, 60.0);
        let a = evaluate(&base, &profile, &req_a, &req_a, &ATOM, &cfg, 60.0, None);
        let b = evaluate(&heavier, &profile, &req_b, &req_b, &ATOM, &cfg, 60.0, None);
        prop_assert!(
            b.rt_process_secs >= a.rt_process_secs - 1e-9,
            "more load cannot speed things up: {} vs {}",
            a.rt_process_secs,
            b.rt_process_secs
        );
    }

    /// Proportional sharing conserves: total grants never exceed
    /// capacity, each grant never exceeds its demand.
    #[test]
    fn sharing_conserves(
        demands in proptest::collection::vec(
            (0.0f64..400.0, 0.0f64..4096.0).prop_map(|(c, m)| Resources::new(c, m, 10.0, 10.0)),
            1..8,
        )
    ) {
        let granted = share_proportionally(&demands, ATOM);
        let total: Resources = granted.iter().copied().sum();
        prop_assert!(total.cpu <= ATOM.cpu + 1e-6);
        prop_assert!(total.mem_mb <= ATOM.mem_mb + 1e-6);
        for (g, d) in granted.iter().zip(&demands) {
            prop_assert!(g.fits_within(d));
        }
    }

    /// Work-conserving shares are at least the proportional grants.
    #[test]
    fn burst_at_least_grant(
        demands in proptest::collection::vec(
            (1.0f64..400.0, 1.0f64..4096.0).prop_map(|(c, m)| Resources::new(c, m, 10.0, 10.0)),
            1..8,
        )
    ) {
        let granted = share_proportionally(&demands, ATOM);
        let burst = share_work_conserving(&demands, ATOM);
        for (g, b) in granted.iter().zip(&burst) {
            prop_assert!(b.cpu >= g.cpu - 1e-9, "burst {} < grant {}", b.cpu, g.cpu);
        }
    }

    /// Demand is monotone in every load dimension.
    #[test]
    fn demand_monotone(load in arb_load()) {
        let p = VmPerfProfile::default();
        let base = required_resources(&load, &p, 60.0);
        let mut more = load;
        more.rps += 10.0;
        more.kb_out_per_req += 1.0;
        more.backlog += 100.0;
        let bigger = required_resources(&more, &p, 60.0);
        prop_assert!(bigger.cpu >= base.cpu);
        prop_assert!(bigger.mem_mb >= base.mem_mb);
        prop_assert!(bigger.net_out_kbps >= base.net_out_kbps);
    }
}
